package vtime

import (
	"container/heap"
	"sync"
	"time"
)

// Virtual is a deterministic Clock: time stands still until Advance (or
// AdvanceUntilIdle) moves it, and due timers fire in (deadline,
// registration) order — two timers never fire in different orders on two
// runs. AfterFunc callbacks run synchronously inside the advancing call,
// one at a time, which is what makes schedules built on them (transport
// delivery, retry backoff) fully deterministic.
//
// Waiter accounting makes advancing race-free against Sleep: when a
// sleeper's timer fires, the clock counts the goroutine as waking until
// its Sleep call has actually returned, and the advancing goroutine
// waits that count out before firing the next timer. BlockUntil
// additionally lets a test wait until a known number of goroutines are
// parked in Sleep before advancing at all.
type Virtual struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast on sleeper/waking transitions

	now      time.Time
	seq      uint64
	timers   vheap
	sleepers int // goroutines inside Sleep (parked or waking)
	waking   int // fired sleepers whose Sleep has not returned yet

	// advMu serializes advancing so concurrent Advance calls cannot
	// interleave their firing sequences. Timer callbacks run holding it:
	// advancing the clock from inside a callback would self-deadlock and
	// is a programming error.
	advMu sync.Mutex
}

// NewVirtual returns a virtual clock reading start. A zero start is
// pinned to a fixed epoch so transcripts never depend on the wall clock.
func NewVirtual(start time.Time) *Virtual {
	if start.IsZero() {
		start = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	v := &Virtual{now: start}
	v.cond = sync.NewCond(&v.mu)
	return v
}

var _ Clock = (*Virtual)(nil)

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns Now().Sub(t).
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep blocks until the clock has been advanced d past the current
// virtual time. Nonpositive d returns immediately.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	v.schedule(d, &vtimer{ch: ch, sleeper: true})
	v.sleepers++
	v.cond.Broadcast()
	v.mu.Unlock()
	<-ch
	v.mu.Lock()
	v.sleepers--
	v.waking--
	v.cond.Broadcast()
	v.mu.Unlock()
}

// After returns a channel receiving the virtual time once d has elapsed.
func (v *Virtual) After(d time.Duration) <-chan time.Time { return v.NewTimer(d).C() }

// NewTimer returns a single-shot virtual timer firing after d.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	t := &vtimer{ch: make(chan time.Time, 1)}
	v.mu.Lock()
	v.schedule(d, t)
	v.mu.Unlock()
	return t
}

// NewTicker returns a virtual ticker firing every d. Ticks that find the
// buffer full are dropped, so a consumer that falls behind coalesces
// them, like time.Ticker's.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("vtime: non-positive ticker period")
	}
	t := &vtimer{ch: make(chan time.Time, 1), period: d}
	v.mu.Lock()
	v.schedule(d, t)
	v.mu.Unlock()
	return vticker{t}
}

// AfterFunc schedules fn to run once d has elapsed. fn runs synchronously
// inside the Advance call that reaches its deadline — deterministic, and
// therefore forbidden to advance the clock itself.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) Timer {
	t := &vtimer{fn: fn}
	v.mu.Lock()
	v.schedule(d, t)
	v.mu.Unlock()
	return t
}

// schedule arms t for d from now and pushes it. Callers hold v.mu.
func (v *Virtual) schedule(d time.Duration, t *vtimer) {
	if d < 0 {
		d = 0
	}
	t.v = v
	t.when = v.now.Add(d)
	v.seq++
	t.seq = v.seq
	t.idx = -1
	heap.Push(&v.timers, t)
}

// Advance moves the clock forward by d, firing every timer due in the
// window in (deadline, registration) order, one at a time. Between
// firings it waits for woken sleepers to return from Sleep. d must be
// nonnegative.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic("vtime: negative advance")
	}
	v.advMu.Lock()
	defer v.advMu.Unlock()
	v.mu.Lock()
	v.advanceLocked(v.now.Add(d), false, nil)
	v.mu.Unlock()
}

// AdvanceUntilIdle advances the clock, firing due timers one at a time,
// until no timer remains due within limit of the starting time (limit <=
// 0 drains the heap completely). After each firing it waits out the
// waiter accounting — every woken Sleep must have returned — and then
// calls settle (if non-nil), the caller's own quiescence barrier, so all
// work one timer triggered, and any timers that work scheduled, are
// registered before the next timer fires. With limit > 0 the clock ends
// exactly at start+limit. It returns the virtual time advanced.
func (v *Virtual) AdvanceUntilIdle(limit time.Duration, settle func()) time.Duration {
	v.advMu.Lock()
	defer v.advMu.Unlock()
	v.mu.Lock()
	start := v.now
	var target time.Time
	bounded := limit > 0
	if bounded {
		target = start.Add(limit)
	}
	v.advanceLocked(target, !bounded, settle)
	d := v.now.Sub(start)
	v.mu.Unlock()
	return d
}

// advanceLocked is the shared firing loop. Callers hold v.advMu and
// v.mu; the lock is dropped around callbacks and settle.
func (v *Virtual) advanceLocked(target time.Time, unbounded bool, settle func()) {
	for {
		for v.waking > 0 {
			v.cond.Wait()
		}
		if settle != nil {
			v.mu.Unlock()
			settle()
			v.mu.Lock()
			continueWaiting := v.waking > 0
			if continueWaiting {
				continue
			}
		}
		t := v.timers.peek()
		if t == nil || (!unbounded && t.when.After(target)) {
			break
		}
		if t.when.After(v.now) {
			v.now = t.when
		}
		heap.Remove(&v.timers, t.idx)
		v.fireLocked(t)
	}
	if !unbounded && v.now.Before(target) {
		v.now = target
	}
}

// fireLocked delivers one due timer. Callers hold v.mu; it is dropped
// around callback execution.
func (v *Virtual) fireLocked(t *vtimer) {
	if t.period > 0 {
		// Re-arm the ticker relative to its own deadline, keeping the
		// cadence independent of when the tick is consumed.
		t.when = t.when.Add(t.period)
		v.seq++
		t.seq = v.seq
		heap.Push(&v.timers, t)
	}
	if t.fn != nil {
		fn := t.fn
		v.mu.Unlock()
		fn()
		v.mu.Lock()
		return
	}
	if t.sleeper {
		v.waking++
	}
	select {
	case t.ch <- v.now:
	default: // coalesce: the previous firing was never consumed
	}
}

// Pending returns the number of armed timers (tickers count once).
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}

// NextDeadline returns the earliest armed deadline.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := v.timers.peek()
	if t == nil {
		return time.Time{}, false
	}
	return t.when, true
}

// Sleepers returns the number of goroutines currently inside Sleep.
func (v *Virtual) Sleepers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.sleepers
}

// BlockUntil waits until at least n goroutines are parked in Sleep — the
// race-free handshake for tests that advance a clock other goroutines
// are about to sleep on.
func (v *Virtual) BlockUntil(n int) {
	v.mu.Lock()
	for v.sleepers < n {
		v.cond.Wait()
	}
	v.mu.Unlock()
}

// vtimer is one armed (or fired) timer of a Virtual clock.
type vtimer struct {
	v       *Virtual
	when    time.Time
	seq     uint64
	idx     int // heap index; -1 when not armed
	ch      chan time.Time
	fn      func()
	period  time.Duration
	sleeper bool
}

var _ Timer = (*vtimer)(nil)

// C returns the firing channel (nil for AfterFunc timers).
func (t *vtimer) C() <-chan time.Time { return t.ch }

// Stop disarms the timer, reporting whether it prevented a firing.
func (t *vtimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	if t.idx < 0 {
		return false
	}
	heap.Remove(&t.v.timers, t.idx)
	t.idx = -1
	return true
}

// Reset rearms the timer for d from the clock's now, reporting whether
// it was still armed.
func (t *vtimer) Reset(d time.Duration) bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	active := t.idx >= 0
	if active {
		heap.Remove(&t.v.timers, t.idx)
	}
	if d < 0 {
		d = 0
	}
	t.when = t.v.now.Add(d)
	t.v.seq++
	t.seq = t.v.seq
	heap.Push(&t.v.timers, t)
	return active
}

// vticker adapts a periodic vtimer to the Ticker interface.
type vticker struct{ t *vtimer }

var _ Ticker = vticker{}

func (tk vticker) C() <-chan time.Time { return tk.t.ch }
func (tk vticker) Stop()               { tk.t.Stop() }

// vheap orders timers by (deadline, registration sequence).
type vheap []*vtimer

func (h vheap) Len() int { return len(h) }
func (h vheap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h vheap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *vheap) Push(x any) {
	t := x.(*vtimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *vheap) Pop() any {
	old := *h
	t := old[len(old)-1]
	old[len(old)-1] = nil
	t.idx = -1
	*h = old[:len(old)-1]
	return t
}
func (h vheap) peek() *vtimer {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}
