package vtime

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	c := Real()
	start := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(start) <= 0 {
		t.Fatal("Since did not move")
	}
	tm := c.NewTimer(time.Millisecond)
	<-tm.C()
	if tm.Stop() {
		t.Error("Stop after firing reported true")
	}
	tk := c.NewTicker(time.Millisecond)
	<-tk.C()
	tk.Stop()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	<-done
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("After never fired")
	}
}

func TestOr(t *testing.T) {
	if Or(nil) == nil {
		t.Fatal("Or(nil) returned nil")
	}
	v := NewVirtual(time.Time{})
	if Or(v) != Clock(v) {
		t.Fatal("Or did not pass through a non-nil clock")
	}
}

func TestVirtualAdvanceMovesNow(t *testing.T) {
	v := NewVirtual(time.Time{})
	start := v.Now()
	v.Advance(3 * time.Second)
	if got := v.Since(start); got != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", got)
	}
	// Advancing with no timers still lands exactly on target.
	v.Advance(0)
	if got := v.Since(start); got != 3*time.Second {
		t.Fatalf("Advance(0) moved time: %v", got)
	}
}

// TestVirtualFiringOrder is the ordering property test: regardless of
// registration order, timers fire in (deadline, registration) order, and
// AfterFunc callbacks observe the clock already at their own deadline.
func TestVirtualFiringOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		v := NewVirtual(time.Time{})
		start := v.Now()
		n := 2 + rng.Intn(30)
		type reg struct {
			d   time.Duration
			seq int
		}
		regs := make([]reg, n)
		var fired []reg
		for i := 0; i < n; i++ {
			regs[i] = reg{d: time.Duration(rng.Intn(10)) * time.Second, seq: i}
		}
		for i := 0; i < n; i++ {
			r := regs[i]
			v.AfterFunc(r.d, func() {
				if got := v.Since(start); got != r.d {
					t.Fatalf("callback for +%v ran at +%v", r.d, got)
				}
				fired = append(fired, r)
			})
		}
		v.Advance(10 * time.Second)
		if len(fired) != n {
			t.Fatalf("fired %d of %d timers", len(fired), n)
		}
		for i := 1; i < len(fired); i++ {
			a, b := fired[i-1], fired[i]
			if a.d > b.d || (a.d == b.d && a.seq > b.seq) {
				t.Fatalf("trial %d: out of order: %+v before %+v", trial, a, b)
			}
		}
	}
}

func TestVirtualAfterFuncCascade(t *testing.T) {
	// A callback scheduling another timer inside the same Advance window:
	// the new timer fires in the same call, at the right instant.
	v := NewVirtual(time.Time{})
	start := v.Now()
	var at []time.Duration
	v.AfterFunc(time.Second, func() {
		at = append(at, v.Since(start))
		v.AfterFunc(2*time.Second, func() {
			at = append(at, v.Since(start))
		})
	})
	v.Advance(5 * time.Second)
	if len(at) != 2 || at[0] != time.Second || at[1] != 3*time.Second {
		t.Fatalf("cascade fired at %v, want [1s 3s]", at)
	}
	if v.Pending() != 0 {
		t.Fatalf("%d timers still pending", v.Pending())
	}
}

func TestVirtualTimerStopReset(t *testing.T) {
	v := NewVirtual(time.Time{})
	ran := false
	tm := v.AfterFunc(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop on armed timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	v.Advance(2 * time.Second)
	if ran {
		t.Fatal("stopped callback ran")
	}
	if tm.Reset(time.Second) {
		t.Fatal("Reset of stopped timer reported active")
	}
	v.Advance(time.Second)
	if !ran {
		t.Fatal("reset callback did not run")
	}

	// Reset of a pending channel timer pushes the deadline out.
	tm2 := v.NewTimer(time.Second)
	if !tm2.Reset(3 * time.Second) {
		t.Fatal("Reset of armed timer reported inactive")
	}
	v.Advance(2 * time.Second)
	select {
	case <-tm2.C():
		t.Fatal("timer fired before reset deadline")
	default:
	}
	v.Advance(time.Second)
	select {
	case ts := <-tm2.C():
		if !ts.Equal(v.Now()) {
			t.Fatalf("fired with %v, now %v", ts, v.Now())
		}
	default:
		t.Fatal("timer did not fire at reset deadline")
	}
}

func TestVirtualTicker(t *testing.T) {
	v := NewVirtual(time.Time{})
	tk := v.NewTicker(time.Second)
	var ticks []time.Time
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case ts := <-tk.C():
				ticks = append(ticks, ts)
			case <-done:
				return
			}
		}
	}()
	// Advance one period at a time so the consumer keeps up and no tick
	// coalesces; AdvanceUntilIdle with a ticker would spin forever, so
	// bounded Advance is the right call here.
	for i := 0; i < 5; i++ {
		v.Advance(time.Second)
		// Yield until the consumer drained the tick.
		for {
			v.mu.Lock()
			drained := len(tk.(vticker).t.ch) == 0
			v.mu.Unlock()
			if drained {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	close(done)
	wg.Wait()
	tk.Stop()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, ts := range ticks {
		want := NewVirtual(time.Time{}).Now().Add(time.Duration(i+1) * time.Second)
		if !ts.Equal(want) {
			t.Fatalf("tick %d at %v, want %v", i, ts, want)
		}
	}
	if v.Pending() != 0 {
		t.Fatalf("stopped ticker left %d timers pending", v.Pending())
	}
}

func TestVirtualTickerCoalesces(t *testing.T) {
	v := NewVirtual(time.Time{})
	tk := v.NewTicker(time.Second)
	defer tk.Stop()
	v.Advance(10 * time.Second) // nobody consuming: ticks coalesce
	if got := len(tk.(vticker).t.ch); got != 1 {
		t.Fatalf("buffered ticks = %d, want 1", got)
	}
}

// TestVirtualSleepRace is the concurrent Advance-vs-Sleep race test: many
// goroutines sleeping while another advances. BlockUntil removes the
// register-vs-advance race; waiter accounting guarantees every sleeper
// observes a fully advanced clock. Run under -race.
func TestVirtualSleepRace(t *testing.T) {
	v := NewVirtual(time.Time{})
	const sleepers = 16
	var done atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < sleepers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := v.Now()
			d := time.Duration(i+1) * time.Second
			v.Sleep(d)
			if got := v.Since(start); got < d {
				t.Errorf("sleeper %d woke after %v, wanted >= %v", i, got, d)
			}
			done.Add(1)
		}(i)
	}
	v.BlockUntil(sleepers)
	v.Advance(sleepers * time.Second)
	wg.Wait()
	if done.Load() != sleepers {
		t.Fatalf("%d sleepers finished, want %d", done.Load(), sleepers)
	}
	if v.Sleepers() != 0 {
		t.Fatalf("%d sleepers still registered", v.Sleepers())
	}
}

// TestVirtualAdvanceSerialized: concurrent Advance calls do not
// interleave firings (advMu) and the clock ends at the sum.
func TestVirtualAdvanceSerialized(t *testing.T) {
	v := NewVirtual(time.Time{})
	start := v.Now()
	var firing atomic.Int32
	for i := 0; i < 100; i++ {
		v.AfterFunc(time.Duration(i)*time.Millisecond, func() {
			if firing.Add(1) != 1 {
				t.Error("two callbacks running at once")
			}
			firing.Add(-1)
		})
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Advance(25 * time.Millisecond)
		}()
	}
	wg.Wait()
	if got := v.Since(start); got != 100*time.Millisecond {
		t.Fatalf("clock at +%v, want +100ms", got)
	}
	if v.Pending() != 0 {
		t.Fatalf("%d timers left", v.Pending())
	}
}

func TestVirtualAdvanceUntilIdle(t *testing.T) {
	v := NewVirtual(time.Time{})
	start := v.Now()
	var at []time.Duration
	v.AfterFunc(time.Second, func() {
		at = append(at, v.Since(start))
		v.AfterFunc(30*time.Second, func() { at = append(at, v.Since(start)) })
	})

	// Unbounded: drains the cascade completely.
	adv := v.AdvanceUntilIdle(0, nil)
	if adv != 31*time.Second {
		t.Fatalf("advanced %v, want 31s", adv)
	}
	if len(at) != 2 || at[1] != 31*time.Second {
		t.Fatalf("firings at %v", at)
	}

	// Bounded: stops at the limit even with a timer beyond it, and lands
	// exactly on start+limit.
	fired := false
	v.AfterFunc(time.Hour, func() { fired = true })
	adv = v.AdvanceUntilIdle(time.Minute, nil)
	if adv != time.Minute || fired {
		t.Fatalf("advanced %v (fired=%v), want 1m, not fired", adv, fired)
	}
	if v.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", v.Pending())
	}

	// settle runs between firings and can observe a quiesced world.
	var settles atomic.Int32
	v.AdvanceUntilIdle(2*time.Hour, func() { settles.Add(1) })
	if !fired {
		t.Fatal("hour timer did not fire")
	}
	if settles.Load() < 2 { // once before the firing, once before returning
		t.Fatalf("settle ran %d times, want >= 2", settles.Load())
	}
}

func TestVirtualNextDeadline(t *testing.T) {
	v := NewVirtual(time.Time{})
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("empty clock reported a deadline")
	}
	v.NewTimer(5 * time.Second)
	v.NewTimer(2 * time.Second)
	when, ok := v.NextDeadline()
	if !ok || !when.Equal(v.Now().Add(2*time.Second)) {
		t.Fatalf("NextDeadline = %v, %v", when, ok)
	}
}

func TestVirtualSleepZero(t *testing.T) {
	v := NewVirtual(time.Time{})
	v.Sleep(0)  // must not block
	v.Sleep(-1) // must not block
	if v.Pending() != 0 {
		t.Fatal("nonpositive Sleep left a timer")
	}
}

func TestVirtualDeterministicInterleaving(t *testing.T) {
	// Two identical runs produce identical firing transcripts.
	run := func() []string {
		v := NewVirtual(time.Time{})
		var log []string
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 50; i++ {
			id := i
			d := time.Duration(rng.Intn(20)) * time.Second
			v.AfterFunc(d, func() {
				log = append(log, time.Duration(id).String()+"@"+v.Now().String())
			})
		}
		v.AdvanceUntilIdle(0, nil)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transcripts diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
