// Package vtime abstracts the flow of time so every timing-dependent
// layer of the system — transport delivery delays, retry backoff,
// heartbeat probes, idle eviction, profiling tickers — can run either on
// the wall clock or on a deterministic virtual clock that compresses
// hours of schedule into milliseconds of CPU.
//
// The Clock interface mirrors the subset of package time the codebase
// uses. Real() returns the wall-clock implementation; NewVirtual returns
// a clock whose time only moves when Advance (or AdvanceUntilIdle) is
// called, firing due timers in timestamp order. Scenario execution
// (internal/scenario) and deflaked timing tests are built on Virtual.
package vtime

import "time"

// Clock is the time source of a component. Implementations must be safe
// for concurrent use.
type Clock interface {
	// Now returns the current time of this clock.
	Now() time.Time
	// Since returns Now().Sub(t).
	Since(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d of this clock's time.
	// Nonpositive d returns immediately.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once d has
	// elapsed. The timer cannot be stopped; prefer NewTimer when the
	// wait may be abandoned.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker that fires every d. d must be positive.
	NewTicker(d time.Duration) Ticker
	// AfterFunc schedules fn to run once d has elapsed. On the real
	// clock fn runs on its own goroutine; on a virtual clock it runs
	// synchronously inside Advance, in deadline order — the property
	// deterministic scenario execution is built on. The returned timer's
	// C is nil.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is a single-shot timer. C returns the firing channel (nil for
// AfterFunc timers). Stop reports whether it prevented the firing; a
// stopped AfterFunc timer's callback will not run. Reset rearms the
// timer for d from the clock's now and reports whether the timer was
// still pending.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
	Reset(d time.Duration) bool
}

// Ticker is a repeating timer. Ticks that find the channel's buffer full
// are dropped, like time.Ticker's.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Real returns the wall-clock implementation, backed by package time.
// All calls return the same instance.
func Real() Clock { return realClock{} }

// Or returns c, or the real clock when c is nil — the idiom every
// config's zero value uses.
func Or(c Clock) Clock {
	if c == nil {
		return Real()
	}
	return c
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) NewTimer(d time.Duration) Timer   { return realTimer{time.NewTimer(d)} }
func (realClock) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }
func (realClock) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{time.AfterFunc(d, fn)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time        { return r.t.C }
func (r realTimer) Stop() bool                 { return r.t.Stop() }
func (r realTimer) Reset(d time.Duration) bool { return r.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }
