package model

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewBuilderCreatesInitialCheckpoints(t *testing.T) {
	b := NewBuilder(3)
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	if p.N != 3 {
		t.Fatalf("N = %d, want 3", p.N)
	}
	for i := 0; i < 3; i++ {
		cs := p.Checkpoints[i]
		if len(cs) != 1 {
			t.Fatalf("process %d has %d checkpoints, want 1", i, len(cs))
		}
		if cs[0].Kind != KindInitial || cs[0].Index != 0 {
			t.Errorf("process %d initial checkpoint = %+v", i, cs[0])
		}
	}
}

func TestBuilderRecordsIntervals(t *testing.T) {
	b := NewBuilder(2)
	m := b.Send(0, 1) // sent in I_{0,1}
	b.Checkpoint(0, KindBasic, nil)
	if err := b.Deliver(m); err != nil { // delivered in I_{1,1}
		t.Fatalf("deliver: %v", err)
	}
	b.Checkpoint(1, KindBasic, nil)
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	if len(p.Messages) != 1 {
		t.Fatalf("messages = %d, want 1", len(p.Messages))
	}
	msg := p.Messages[0]
	if msg.SendInterval != 1 || msg.DeliverInterval != 1 {
		t.Errorf("intervals = (%d,%d), want (1,1)", msg.SendInterval, msg.DeliverInterval)
	}
	if msg.From != 0 || msg.To != 1 {
		t.Errorf("endpoints = (%d,%d), want (0,1)", msg.From, msg.To)
	}
}

func TestBuilderFinalizeClosesOpenIntervals(t *testing.T) {
	b := NewBuilder(2)
	m := b.Send(0, 1)
	if err := b.Deliver(m); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	for i := 0; i < 2; i++ {
		cs := p.Checkpoints[i]
		last := cs[len(cs)-1]
		if last.Kind != KindFinal {
			t.Errorf("process %d last checkpoint kind = %v, want final", i, last.Kind)
		}
	}
}

func TestBuilderFinalizeRejectsInFlightMessages(t *testing.T) {
	b := NewBuilder(2)
	b.Send(0, 1)
	if _, err := b.Finalize(); err == nil {
		t.Fatal("finalize accepted an in-flight message")
	}
}

func TestBuilderDeliverUnknownHandle(t *testing.T) {
	b := NewBuilder(2)
	if err := b.Deliver(42); err == nil {
		t.Fatal("deliver accepted an unknown handle")
	}
	m := b.Send(0, 1)
	if err := b.Deliver(m); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if err := b.Deliver(m); err == nil {
		t.Fatal("deliver accepted a duplicate delivery")
	}
}

func TestBuilderEventsSinceCheckpoint(t *testing.T) {
	b := NewBuilder(2)
	if got := b.EventsSinceCheckpoint(0); got != 0 {
		t.Fatalf("events = %d, want 0", got)
	}
	m := b.Send(0, 1)
	if got := b.EventsSinceCheckpoint(0); got != 1 {
		t.Fatalf("events after send = %d, want 1", got)
	}
	if err := b.Deliver(m); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if got := b.EventsSinceCheckpoint(1); got != 1 {
		t.Fatalf("receiver events = %d, want 1", got)
	}
	b.Checkpoint(0, KindBasic, nil)
	if got := b.EventsSinceCheckpoint(0); got != 0 {
		t.Fatalf("events after checkpoint = %d, want 0", got)
	}
}

func TestBuilderCopiesTDV(t *testing.T) {
	b := NewBuilder(1)
	tdv := []int{7}
	b.Checkpoint(0, KindBasic, tdv)
	tdv[0] = 99
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	if got := p.Checkpoints[0][1].TDV[0]; got != 7 {
		t.Errorf("TDV was not copied: got %d, want 7", got)
	}
}

func TestValidateRejectsCorruptPatterns(t *testing.T) {
	valid := func() *Pattern {
		b := NewBuilder(2)
		m := b.Send(0, 1)
		b.Checkpoint(0, KindBasic, nil)
		if err := b.Deliver(m); err != nil {
			t.Fatalf("deliver: %v", err)
		}
		b.Checkpoint(1, KindBasic, nil)
		p, err := b.Finalize()
		if err != nil {
			t.Fatalf("finalize: %v", err)
		}
		return p
	}

	tests := []struct {
		name    string
		corrupt func(p *Pattern)
	}{
		{"no processes", func(p *Pattern) { p.N = 0 }},
		{"row mismatch", func(p *Pattern) { p.N = 3 }},
		{"empty process", func(p *Pattern) { p.Checkpoints[0] = nil }},
		{"bad index", func(p *Pattern) { p.Checkpoints[0][1].Index = 5 }},
		{"bad proc", func(p *Pattern) { p.Checkpoints[0][1].Proc = 1 }},
		{"non-increasing seq", func(p *Pattern) { p.Checkpoints[0][1].Seq = 0 }},
		{"first not initial", func(p *Pattern) { p.Checkpoints[0][0].Kind = KindBasic }},
		{"tdv length", func(p *Pattern) { p.Checkpoints[0][1].TDV = []int{1, 2, 3} }},
		{"duplicate message id", func(p *Pattern) { p.Messages = append(p.Messages, p.Messages[0]) }},
		{"message proc range", func(p *Pattern) { p.Messages[0].To = 9 }},
		{"interval zero", func(p *Pattern) { p.Messages[0].SendInterval = 0 }},
		{"interval beyond", func(p *Pattern) { p.Messages[0].DeliverInterval = 9 }},
		{"send after interval checkpoint", func(p *Pattern) { p.Messages[0].SendSeq = 99 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := valid()
			if err := p.Validate(); err != nil {
				t.Fatalf("fixture invalid before corruption: %v", err)
			}
			tt.corrupt(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("corrupted pattern passed validation")
			}
			if !errors.Is(err, ErrInvalidPattern) && !strings.Contains(err.Error(), "invalid pattern") {
				t.Errorf("error %v does not wrap ErrInvalidPattern", err)
			}
		})
	}
}

func TestPatternStats(t *testing.T) {
	b := NewBuilder(2)
	m := b.Send(0, 1)
	b.Checkpoint(0, KindBasic, nil)
	if err := b.Deliver(m); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	b.Checkpoint(1, KindForced, nil)
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	s := p.Stats()
	if s.Initial != 2 || s.Basic != 1 || s.Forced != 1 || s.Messages != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Total() != s.Initial+s.Basic+s.Forced+s.Final {
		t.Errorf("total inconsistent: %+v", s)
	}
	if got := s.ForcedPerBasic(); got != 1 {
		t.Errorf("forced/basic = %v, want 1", got)
	}
	if got := s.ForcedPerMessage(); got != 1 {
		t.Errorf("forced/message = %v, want 1", got)
	}
}

func TestStatsZeroDenominators(t *testing.T) {
	var s Stats
	if s.ForcedPerBasic() != 0 || s.ForcedPerMessage() != 0 {
		t.Error("zero-denominator ratios should be 0")
	}
}

func TestCheckpointLookup(t *testing.T) {
	b := NewBuilder(2)
	b.Checkpoint(1, KindBasic, nil)
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	ck, err := p.Checkpoint(CkptID{Proc: 1, Index: 1})
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if ck.Kind != KindBasic {
		t.Errorf("kind = %v, want basic", ck.Kind)
	}
	if _, err := p.Checkpoint(CkptID{Proc: 5, Index: 0}); err == nil {
		t.Error("lookup accepted out-of-range process")
	}
	if _, err := p.Checkpoint(CkptID{Proc: 0, Index: 7}); err == nil {
		t.Error("lookup accepted out-of-range index")
	}
}

func TestGlobalCheckpointOps(t *testing.T) {
	g := GlobalCheckpoint{1, 2, 3}
	clone := g.Clone()
	clone[0] = 9
	if g[0] != 1 {
		t.Error("clone aliases original")
	}
	if !g.Equal(GlobalCheckpoint{1, 2, 3}) {
		t.Error("Equal failed on equal values")
	}
	if g.Equal(GlobalCheckpoint{1, 2}) {
		t.Error("Equal ignored length")
	}
	if !g.DominatedBy(GlobalCheckpoint{1, 2, 4}) {
		t.Error("DominatedBy failed")
	}
	if g.DominatedBy(GlobalCheckpoint{0, 2, 4}) {
		t.Error("DominatedBy accepted a smaller entry")
	}
	if got := g.String(); got != "{1,2,3}" {
		t.Errorf("String = %q", got)
	}
}

func TestCkptIDString(t *testing.T) {
	id := CkptID{Proc: 2, Index: 5}
	if got := id.String(); got != "C{2,5}" {
		t.Errorf("String = %q", got)
	}
}

func TestCheckpointKindString(t *testing.T) {
	tests := []struct {
		kind CheckpointKind
		want string
	}{
		{KindInitial, "initial"},
		{KindBasic, "basic"},
		{KindForced, "forced"},
		{KindFinal, "final"},
		{CheckpointKind(42), "kind(42)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestDOTRendersAllCheckpointsAndMessages(t *testing.T) {
	b := NewBuilder(2)
	m := b.Send(0, 1)
	b.Checkpoint(0, KindBasic, nil)
	if err := b.Deliver(m); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	dot := p.DOT()
	for _, want := range []string{"digraph", "c0_0", "c0_1", "c1_0", "m0", "subgraph cluster_p1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestPrefix(t *testing.T) {
	b := NewBuilder(2)
	m1 := b.Send(0, 1)
	b.Checkpoint(0, KindBasic, []int{1, 0}) // C_{0,1}
	if err := b.Deliver(m1); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	b.Checkpoint(1, KindBasic, nil) // C_{1,1}
	m2 := b.Send(1, 0)              // in transit at the cut {1,1}
	if err := b.Deliver(m2); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}

	pre, err := p.Prefix(GlobalCheckpoint{1, 1})
	if err != nil {
		t.Fatalf("prefix: %v", err)
	}
	if len(pre.Messages) != 1 || pre.Messages[0].ID != m1 {
		t.Errorf("prefix messages = %v, want only m1", pre.Messages)
	}
	if pre.LastIndex(0) != 1 || pre.LastIndex(1) != 1 {
		t.Errorf("prefix checkpoints truncated wrongly")
	}
	if pre.Checkpoints[0][1].TDV[0] != 1 {
		t.Error("prefix lost the TDV annotation")
	}
	// The prefix owns its TDV slices.
	pre.Checkpoints[0][1].TDV[0] = 9
	if p.Checkpoints[0][1].TDV[0] != 1 {
		t.Error("prefix aliases the original TDVs")
	}

	// An inconsistent cut is rejected: {0,1} makes m1 orphan.
	if _, err := p.Prefix(GlobalCheckpoint{0, 1}); err == nil {
		t.Error("inconsistent cut accepted")
	}
	if _, err := p.Prefix(GlobalCheckpoint{1}); err == nil {
		t.Error("short cut accepted")
	}
	if _, err := p.Prefix(GlobalCheckpoint{9, 1}); err == nil {
		t.Error("out-of-range cut accepted")
	}
}

func TestASCIIRendering(t *testing.T) {
	b := NewBuilder(2)
	m := b.Send(0, 1)
	b.Checkpoint(0, KindBasic, nil)
	if err := b.Deliver(m); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	art := p.ASCII()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lanes = %d, want 2:\n%s", len(lines), art)
	}
	if !strings.HasPrefix(lines[0], "P0") || !strings.HasPrefix(lines[1], "P1") {
		t.Errorf("lane labels wrong:\n%s", art)
	}
	for _, want := range []string{"s0", "d0", "[0]", "[1]"} {
		if !strings.Contains(art, want) {
			t.Errorf("diagram missing %q:\n%s", want, art)
		}
	}
	// The send column must precede the delivery column.
	if strings.Index(lines[0], "s0") > strings.Index(lines[1], "d0") {
		t.Errorf("send rendered after delivery:\n%s", art)
	}
	// All lanes have equal width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("ragged lanes:\n%s", art)
	}
}

// TestQuickBuilderAlwaysProducesValidPatterns drives the builder with
// random operation sequences (testing/quick supplies the seeds): whatever
// the interleaving, a drained, finalized builder yields a pattern that
// passes validation.
func TestQuickBuilderAlwaysProducesValidPatterns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		b := NewBuilder(n)
		var inflight []int
		for e := 0; e < 30+rng.Intn(40); e++ {
			switch r := rng.Float64(); {
			case r < 0.4:
				from := ProcID(rng.Intn(n))
				to := ProcID(rng.Intn(n - 1))
				if to >= from {
					to++
				}
				inflight = append(inflight, b.Send(from, to))
			case r < 0.75 && len(inflight) > 0:
				k := rng.Intn(len(inflight))
				if err := b.Deliver(inflight[k]); err != nil {
					t.Logf("deliver: %v", err)
					return false
				}
				inflight = append(inflight[:k], inflight[k+1:]...)
			default:
				b.Checkpoint(ProcID(rng.Intn(n)), KindBasic, nil)
			}
		}
		for _, h := range inflight {
			if err := b.Deliver(h); err != nil {
				t.Logf("drain: %v", err)
				return false
			}
		}
		p, err := b.Finalize()
		if err != nil {
			t.Logf("finalize: %v", err)
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSmallAccessors(t *testing.T) {
	b := NewBuilder(2)
	if b.N() != 2 {
		t.Errorf("builder N = %d", b.N())
	}
	m := b.Send(0, 1)
	if b.InFlight() != 1 {
		t.Errorf("in flight = %d", b.InFlight())
	}
	if b.NextMessageID() != 1 {
		t.Errorf("next id = %d", b.NextMessageID())
	}
	if err := b.Deliver(m); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	if p.NumCheckpoints() != 4 { // 2 initial + 2 final
		t.Errorf("checkpoints = %d", p.NumCheckpoints())
	}
	msg := p.Messages[0]
	if got := msg.String(); !strings.Contains(got, "m0") || !strings.Contains(got, "P0[I1] -> P1[I1]") {
		t.Errorf("message string = %q", got)
	}
}

func TestBuilderSnapshotLeavesBuilderOpen(t *testing.T) {
	b := NewBuilder(2)
	m1 := b.Send(0, 1)
	if err := b.Deliver(m1); err != nil {
		t.Fatal(err)
	}
	b.Checkpoint(1, KindBasic, nil)
	m2 := b.Send(1, 0) // still in flight at the snapshot

	snap, lost, err := b.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if len(lost) != 1 || lost[0].ID != m2 {
		t.Fatalf("snapshot lost = %v, want just message %d", lost, m2)
	}
	if len(snap.Messages) != 1 {
		t.Fatalf("snapshot has %d messages, want 1 (the delivered one)", len(snap.Messages))
	}
	// The snapshot closed P0's interval (it delivered m1); the live
	// builder must still be open and able to finish the run.
	if got := snap.CountKind(KindFinal); got != 2 {
		t.Fatalf("snapshot has %d final checkpoints, want 2 (both have events)", got)
	}
	if err := b.Deliver(m2); err != nil {
		t.Fatalf("deliver on the live builder after snapshot: %v", err)
	}
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize after snapshot: %v", err)
	}
	if len(p.Messages) != 2 {
		t.Fatalf("final pattern has %d messages, want 2", len(p.Messages))
	}
	if snap.NumCheckpoints() == p.NumCheckpoints() && len(snap.Messages) == len(p.Messages) {
		t.Fatal("snapshot aliases the live builder")
	}
}

func TestBuilderCloneIsIndependent(t *testing.T) {
	b := NewBuilder(2)
	m := b.Send(0, 1)
	c := b.Clone()
	if err := c.Deliver(m); err != nil {
		t.Fatalf("deliver on clone: %v", err)
	}
	c.Checkpoint(0, KindBasic, []int{9, 9})
	// The original must still see m in flight and only initial checkpoints.
	if b.InFlight() != 1 {
		t.Fatalf("original in-flight = %d after mutating the clone, want 1", b.InFlight())
	}
	if b.NextIndex(0) != 1 {
		t.Fatalf("original next index = %d after clone checkpointed, want 1", b.NextIndex(0))
	}
	if err := b.Deliver(m); err != nil {
		t.Fatalf("deliver on original: %v", err)
	}
}
