package model

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the pattern as a Graphviz digraph: one horizontal rank per
// process, checkpoints as boxes, messages as arrows between the intervals
// that contain their endpoints. Useful for debugging traces and for the
// documentation examples.
func (p *Pattern) DOT() string { return p.dot(nil, nil) }

// DOTWitness renders the pattern like DOT with a witness path
// highlighted: the messages whose IDs appear in witness draw red and
// bold (ordinary messages fade to gray), and the two endpoint
// checkpoints — the untrackable R-path's source and target — draw with
// a red border. The ordered witness typically comes from
// rgraph.Witness.MessageIDs.
func (p *Pattern) DOTWitness(witness []int, endpoints ...CkptID) string {
	return p.dot(witness, endpoints)
}

func (p *Pattern) dot(witness []int, endpoints []CkptID) string {
	onPath := make(map[int]bool, len(witness))
	for _, id := range witness {
		onPath[id] = true
	}
	marked := make(map[CkptID]bool, len(endpoints))
	for _, c := range endpoints {
		marked[c] = true
	}
	var b strings.Builder
	b.WriteString("digraph pattern {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	for i, cs := range p.Checkpoints {
		fmt.Fprintf(&b, "  subgraph cluster_p%d {\n    label=\"P%d\";\n", i, i)
		for x := range cs {
			attrs := ""
			if marked[CkptID{Proc: ProcID(i), Index: x}] {
				attrs = ", color=red, penwidth=2"
			}
			fmt.Fprintf(&b, "    c%d_%d [label=\"C(%d,%d)\\n%s\"%s];\n", i, x, i, x, cs[x].Kind, attrs)
		}
		for x := 1; x < len(cs); x++ {
			fmt.Fprintf(&b, "    c%d_%d -> c%d_%d [style=dotted];\n", i, x-1, i, x)
		}
		b.WriteString("  }\n")
	}
	msgs := make([]Message, len(p.Messages))
	copy(msgs, p.Messages)
	sort.Slice(msgs, func(a, c int) bool { return msgs[a].ID < msgs[c].ID })
	for i := range msgs {
		m := &msgs[i]
		style := "color=blue"
		if onPath[m.ID] {
			style = "color=red, penwidth=2, fontcolor=red"
		} else if len(witness) > 0 {
			style = "color=gray"
		}
		// Draw from the checkpoint that ends the send interval to the
		// checkpoint that ends the delivery interval — the R-graph edge.
		fmt.Fprintf(&b, "  c%d_%d -> c%d_%d [label=\"m%d\", %s];\n",
			m.From, p.clampIndex(m.From, m.SendInterval), m.To, p.clampIndex(m.To, m.DeliverInterval), m.ID, style)
	}
	b.WriteString("}\n")
	return b.String()
}

func (p *Pattern) clampIndex(i ProcID, x int) int {
	last := p.LastIndex(i)
	if x > last {
		return last
	}
	return x
}
