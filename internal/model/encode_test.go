package model

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// randomBuilder drives b through ops random events and returns the
// handles of in-flight messages, so the caller can continue the run.
func randomBuilder(t *testing.T, rng *rand.Rand, b *Builder, ops int) []int {
	t.Helper()
	var inflight []int
	n := b.N()
	for k := 0; k < ops; k++ {
		switch r := rng.Intn(10); {
		case r < 4 && n > 1:
			from := ProcID(rng.Intn(n))
			to := ProcID(rng.Intn(n - 1))
			if to >= from {
				to++
			}
			inflight = append(inflight, b.Send(from, to))
		case r < 7 && len(inflight) > 0:
			i := rng.Intn(len(inflight))
			if err := b.Deliver(inflight[i]); err != nil {
				t.Fatalf("deliver: %v", err)
			}
			inflight = append(inflight[:i], inflight[i+1:]...)
		default:
			i := ProcID(rng.Intn(n))
			kind := KindBasic
			if rng.Intn(4) == 0 {
				kind = KindForced
			}
			var tdv []int
			if rng.Intn(2) == 0 {
				tdv = make([]int, n)
				for j := range tdv {
					tdv[j] = rng.Intn(5)
				}
			}
			b.Checkpoint(i, kind, tdv)
		}
	}
	return inflight
}

func TestBuilderEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		b := NewBuilder(n)
		randomBuilder(t, rng, b, rng.Intn(60))

		enc := b.AppendBinary(nil)
		dec, err := DecodeBuilder(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if re := dec.AppendBinary(nil); !bytes.Equal(enc, re) {
			t.Fatalf("trial %d: re-encode differs: %d vs %d bytes", trial, len(enc), len(re))
		}

		// The decoded builder must continue exactly like the original:
		// same ops applied to both end in byte-identical state and equal
		// finalized patterns.
		cont := rand.New(rand.NewSource(int64(1000 + trial)))
		contDec := rand.New(rand.NewSource(int64(1000 + trial)))
		more := randomBuilder(t, cont, b, 30)
		moreDec := randomBuilder(t, contDec, dec, 30)
		if !reflect.DeepEqual(more, moreDec) {
			t.Fatalf("trial %d: continuation handles diverged: %v vs %v", trial, more, moreDec)
		}
		if !bytes.Equal(b.AppendBinary(nil), dec.AppendBinary(nil)) {
			t.Fatalf("trial %d: state diverged after continuation", trial)
		}
		p1, l1, err1 := b.Snapshot()
		p2, l2, err2 := dec.Snapshot()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: snapshot errors diverged: %v vs %v", trial, err1, err2)
		}
		if err1 == nil && (!reflect.DeepEqual(p1, p2) || !reflect.DeepEqual(l1, l2)) {
			t.Fatalf("trial %d: snapshot patterns diverged", trial)
		}
	}
}

func TestDecodeBuilderRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder(3)
	randomBuilder(t, rng, b, 40)
	enc := b.AppendBinary(nil)
	if _, err := DecodeBuilder(enc); err != nil {
		t.Fatalf("valid encoding rejected: %v", err)
	}

	// Every truncation must be rejected, never panic.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeBuilder(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeBuilder(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Single-byte corruption is either rejected or yields a builder that
	// still re-encodes cleanly (a flip can land in a don't-care value,
	// e.g. a seq number); it must never panic.
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x01
		if dec, err := DecodeBuilder(mut); err == nil {
			dec.AppendBinary(nil)
		}
	}
}
