package model

import (
	"fmt"
	"sort"
	"strings"
)

// ASCII renders the pattern as a space-time diagram: one lane per process,
// one column per event, in a causally consistent global order. Checkpoints
// appear as [x] (their index), sends as sNN and deliveries as dNN (NN the
// message id), idle positions as dashes:
//
//	P0 [0]─s0──────[1]─
//	P1 [0]─────d0──────
//
// The rendering is meant for debugging small traces (tests, examples, the
// rdtcheck CLI); width grows linearly with the number of events.
func (p *Pattern) ASCII() string {
	type ev struct {
		proc ProcID
		seq  int
		text string
		msg  int // message id for sends; -1 otherwise
	}
	var evs []ev
	for i := range p.Checkpoints {
		for x := range p.Checkpoints[i] {
			ck := &p.Checkpoints[i][x]
			evs = append(evs, ev{proc: ck.Proc, seq: ck.Seq, text: fmt.Sprintf("[%d]", x), msg: -1})
		}
	}
	for i := range p.Messages {
		m := &p.Messages[i]
		evs = append(evs, ev{proc: m.From, seq: m.SendSeq, text: fmt.Sprintf("s%d", m.ID), msg: m.ID})
		evs = append(evs, ev{proc: m.To, seq: m.DeliverSeq, text: fmt.Sprintf("d%d", m.ID), msg: -1})
	}

	// Assign columns in a causally consistent order: per-process order by
	// seq, deliveries only after their send. Repeatedly emit the runnable
	// prefix of each process.
	perProc := make([][]ev, p.N)
	for _, e := range evs {
		perProc[e.proc] = append(perProc[e.proc], e)
	}
	for i := range perProc {
		lane := perProc[i]
		sort.Slice(lane, func(a, b int) bool { return lane[a].seq < lane[b].seq })
	}
	var (
		pos      = make([]int, p.N)
		sent     = make(map[int]bool, len(p.Messages))
		sendOf   = make(map[int]int, len(p.Messages)) // message id -> sender
		column   = make(map[[2]int]int)               // (proc, seq) -> column
		colWidth []int
		col      int
	)
	for i := range p.Messages {
		sendOf[p.Messages[i].ID] = int(p.Messages[i].From)
	}
	remaining := len(evs)
	for remaining > 0 {
		progressed := false
		for i := 0; i < p.N; i++ {
			for pos[i] < len(perProc[i]) {
				e := perProc[i][pos[i]]
				if strings.HasPrefix(e.text, "d") {
					var id int
					fmt.Sscanf(e.text, "d%d", &id)
					if !sent[id] {
						break
					}
				}
				if e.msg >= 0 {
					sent[e.msg] = true
				}
				column[[2]int{i, e.seq}] = col
				colWidth = append(colWidth, len(e.text))
				col++
				pos[i]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return "(pattern admits no causally consistent order)"
		}
	}

	var b strings.Builder
	for i := 0; i < p.N; i++ {
		fmt.Fprintf(&b, "P%-2d ", i)
		next := 0
		for c := 0; c < col; c++ {
			cell := strings.Repeat("-", colWidth[c]+1)
			if next < len(perProc[i]) {
				e := perProc[i][next]
				if column[[2]int{i, e.seq}] == c {
					cell = e.text + "-"
					next++
				}
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
