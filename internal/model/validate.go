package model

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInvalidPattern is wrapped by every validation failure so callers can
// match the whole class with errors.Is.
var ErrInvalidPattern = errors.New("invalid pattern")

// Validate checks the structural well-formedness of the pattern:
//
//   - at least one process, every process has an initial checkpoint at
//     index 0 and contiguous indexes;
//   - local event sequence numbers are strictly increasing along each
//     process timeline (checkpoints and message endpoints interleaved);
//   - every message endpoint names an existing process, a send interval of
//     at least 1, and interval annotations consistent with the event
//     sequence numbers: an event with sequence s in interval x must satisfy
//     Seq(C_{i,x-1}) < s and, if C_{i,x} exists, s < Seq(C_{i,x});
//   - message IDs are unique.
func (p *Pattern) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("%w: no processes", ErrInvalidPattern)
	}
	if len(p.Checkpoints) != p.N {
		return fmt.Errorf("%w: %d checkpoint rows for %d processes", ErrInvalidPattern, len(p.Checkpoints), p.N)
	}
	for i, cs := range p.Checkpoints {
		if len(cs) == 0 {
			return fmt.Errorf("%w: process %d has no checkpoints", ErrInvalidPattern, i)
		}
		for x := range cs {
			ck := &cs[x]
			if int(ck.Proc) != i {
				return fmt.Errorf("%w: checkpoint %v stored under process %d", ErrInvalidPattern, ck.ID(), i)
			}
			if ck.Index != x {
				return fmt.Errorf("%w: process %d checkpoint %d has index %d", ErrInvalidPattern, i, x, ck.Index)
			}
			if x > 0 && ck.Seq <= cs[x-1].Seq {
				return fmt.Errorf("%w: process %d checkpoints %d,%d have non-increasing seq", ErrInvalidPattern, i, x-1, x)
			}
			if ck.TDV != nil && len(ck.TDV) != p.N {
				return fmt.Errorf("%w: checkpoint %v TDV has length %d, want %d", ErrInvalidPattern, ck.ID(), len(ck.TDV), p.N)
			}
		}
		if cs[0].Kind != KindInitial {
			return fmt.Errorf("%w: process %d first checkpoint has kind %v", ErrInvalidPattern, i, cs[0].Kind)
		}
	}

	seen := make(map[int]bool, len(p.Messages))
	type endpoint struct {
		proc     ProcID
		seq      int
		interval int
		what     string
		id       int
	}
	var eps []endpoint
	for i := range p.Messages {
		m := &p.Messages[i]
		if seen[m.ID] {
			return fmt.Errorf("%w: duplicate message id %d", ErrInvalidPattern, m.ID)
		}
		seen[m.ID] = true
		if err := p.checkProc(m.From); err != nil {
			return fmt.Errorf("message %d from: %w", m.ID, err)
		}
		if err := p.checkProc(m.To); err != nil {
			return fmt.Errorf("message %d to: %w", m.ID, err)
		}
		eps = append(eps,
			endpoint{proc: m.From, seq: m.SendSeq, interval: m.SendInterval, what: "send", id: m.ID},
			endpoint{proc: m.To, seq: m.DeliverSeq, interval: m.DeliverInterval, what: "delivery", id: m.ID},
		)
	}

	for _, ep := range eps {
		cs := p.Checkpoints[ep.proc]
		if ep.interval < 1 {
			return fmt.Errorf("%w: %s of message %d has interval %d < 1", ErrInvalidPattern, ep.what, ep.id, ep.interval)
		}
		if ep.interval > len(cs) {
			return fmt.Errorf("%w: %s of message %d in interval %d but process %d has only %d checkpoints",
				ErrInvalidPattern, ep.what, ep.id, ep.interval, ep.proc, len(cs))
		}
		if ep.seq <= cs[ep.interval-1].Seq {
			return fmt.Errorf("%w: %s of message %d (seq %d) not after C{%d,%d} (seq %d)",
				ErrInvalidPattern, ep.what, ep.id, ep.seq, ep.proc, ep.interval-1, cs[ep.interval-1].Seq)
		}
		if ep.interval < len(cs) && ep.seq >= cs[ep.interval].Seq {
			return fmt.Errorf("%w: %s of message %d (seq %d) not before C{%d,%d} (seq %d)",
				ErrInvalidPattern, ep.what, ep.id, ep.seq, ep.proc, ep.interval, cs[ep.interval].Seq)
		}
	}

	// Sequence numbers must be unique per process across all event types.
	sort.Slice(eps, func(a, b int) bool {
		if eps[a].proc != eps[b].proc {
			return eps[a].proc < eps[b].proc
		}
		return eps[a].seq < eps[b].seq
	})
	for i := 1; i < len(eps); i++ {
		if eps[i].proc == eps[i-1].proc && eps[i].seq == eps[i-1].seq {
			return fmt.Errorf("%w: process %d has two events with seq %d", ErrInvalidPattern, eps[i].proc, eps[i].seq)
		}
	}
	return nil
}

func (p *Pattern) checkProc(i ProcID) error {
	if i < 0 || int(i) >= p.N {
		return fmt.Errorf("%w: process %d out of range [0,%d)", ErrInvalidPattern, i, p.N)
	}
	return nil
}
