package model

import (
	"fmt"
	"sort"
)

// Builder incrementally constructs a Pattern from a stream of per-process
// events (checkpoints, sends, deliveries). Builders are used directly in
// tests, by the discrete-event simulator and — behind a mutex — by the
// concurrent runtime.
//
// The builder enforces the sequential-process model: events of one process
// are totally ordered by the order of the builder calls naming that process.
// Events of different processes may be interleaved arbitrarily.
type Builder struct {
	n      int
	seq    []int // next local event-sequence number per process
	ckpts  [][]Checkpoint
	msgs   []Message
	sent   map[int]*pendingSend
	nextID int
}

type pendingSend struct {
	from         ProcID
	to           ProcID
	sendInterval int
	sendSeq      int
}

// NewBuilder returns a builder for n processes. Each process starts with an
// initial checkpoint C_{i,0} (Kind KindInitial), matching the model
// assumption of the paper.
func NewBuilder(n int) *Builder {
	b := &Builder{
		n:     n,
		seq:   make([]int, n),
		ckpts: make([][]Checkpoint, n),
		sent:  make(map[int]*pendingSend),
	}
	for i := 0; i < n; i++ {
		b.ckpts[i] = []Checkpoint{{
			Proc: ProcID(i),
			Kind: KindInitial,
			Seq:  b.nextSeq(ProcID(i)),
		}}
	}
	return b
}

// N returns the number of processes.
func (b *Builder) N() int { return b.n }

// NextIndex returns the index the next checkpoint of process i will get;
// equivalently the index of the current checkpoint interval I_{i,x}.
func (b *Builder) NextIndex(i ProcID) int { return len(b.ckpts[i]) }

// EventsSinceCheckpoint reports how many events (sends and deliveries)
// process i executed in its current checkpoint interval.
func (b *Builder) EventsSinceCheckpoint(i ProcID) int {
	last := b.ckpts[i][len(b.ckpts[i])-1]
	return b.seq[i] - last.Seq - 1
}

// Checkpoint records a local checkpoint of process i with the given kind and
// optional transitive dependency vector (tdv may be nil; it is copied).
// It returns the identifier of the new checkpoint.
func (b *Builder) Checkpoint(i ProcID, kind CheckpointKind, tdv []int) CkptID {
	var tdvCopy []int
	if tdv != nil {
		tdvCopy = make([]int, len(tdv))
		copy(tdvCopy, tdv)
	}
	ck := Checkpoint{
		Proc:  i,
		Index: len(b.ckpts[i]),
		Seq:   b.nextSeq(i),
		Kind:  kind,
		TDV:   tdvCopy,
	}
	b.ckpts[i] = append(b.ckpts[i], ck)
	return ck.ID()
}

// Send records that process from sent a message to process to, in from's
// current checkpoint interval. It returns an opaque message handle that must
// later be passed to Deliver exactly once.
func (b *Builder) Send(from, to ProcID) int {
	id := b.nextID
	b.nextID++
	b.sent[id] = &pendingSend{
		from:         from,
		to:           to,
		sendInterval: b.NextIndex(from),
		sendSeq:      b.nextSeq(from),
	}
	return id
}

// Deliver records the delivery, in the destination's current checkpoint
// interval, of the message previously created by Send.
func (b *Builder) Deliver(msg int) error {
	ps, ok := b.sent[msg]
	if !ok {
		return fmt.Errorf("deliver: unknown or already delivered message handle %d", msg)
	}
	delete(b.sent, msg)
	b.msgs = append(b.msgs, Message{
		ID:              msg,
		From:            ps.from,
		To:              ps.to,
		SendInterval:    ps.sendInterval,
		SendSeq:         ps.sendSeq,
		DeliverInterval: b.NextIndex(ps.to),
		DeliverSeq:      b.nextSeq(ps.to),
	})
	return nil
}

// InFlight returns the number of sent but not yet delivered messages.
func (b *Builder) InFlight() int { return len(b.sent) }

// Finalize closes the pattern: every process whose current interval contains
// at least one event receives a final checkpoint (Kind KindFinal), so that
// every event belongs to a closed interval, as the model assumes. Messages
// still in flight make Finalize fail — channels are reliable, so a finite
// run must deliver everything it sent.
func (b *Builder) Finalize() (*Pattern, error) {
	if len(b.sent) > 0 {
		return nil, fmt.Errorf("finalize: %d messages still in flight", len(b.sent))
	}
	for i := 0; i < b.n; i++ {
		if b.EventsSinceCheckpoint(ProcID(i)) > 0 {
			b.Checkpoint(ProcID(i), KindFinal, nil)
		}
	}
	msgs := make([]Message, len(b.msgs))
	copy(msgs, b.msgs)
	sort.Slice(msgs, func(a, c int) bool { return msgs[a].ID < msgs[c].ID })
	ckpts := make([][]Checkpoint, b.n)
	for i := range b.ckpts {
		ckpts[i] = make([]Checkpoint, len(b.ckpts[i]))
		copy(ckpts[i], b.ckpts[i])
	}
	p := &Pattern{N: b.n, Checkpoints: ckpts, Messages: msgs}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("finalize: %w", err)
	}
	return p, nil
}

// LostMessage records a send whose delivery never happened — a frame
// that died with a crashed process or a lossy link. Lost messages cannot
// appear in a Pattern (patterns model complete executions); they are
// reported alongside it by FinalizeLossy so recovery can replay the ones
// sent at or before the recovery line.
type LostMessage struct {
	ID           int
	From, To     ProcID
	SendInterval int
}

// FinalizeLossy closes the pattern like Finalize, but tolerates messages
// still in flight: they are dropped from the pattern and returned as
// lost messages. It is the finalization path for crashed or chaotic
// runs, where "channels are reliable" no longer holds at the instant the
// run is cut.
func (b *Builder) FinalizeLossy() (*Pattern, []LostMessage, error) {
	var lost []LostMessage
	for id, ps := range b.sent {
		lost = append(lost, LostMessage{
			ID:           id,
			From:         ps.from,
			To:           ps.to,
			SendInterval: ps.sendInterval,
		})
	}
	sort.Slice(lost, func(a, c int) bool { return lost[a].ID < lost[c].ID })
	b.sent = make(map[int]*pendingSend)
	p, err := b.Finalize()
	if err != nil {
		return nil, nil, err
	}
	return p, lost, nil
}

// Clone returns a deep copy of the builder: recording further events on
// either copy leaves the other untouched. It is what lets a long-running
// session snapshot its pattern-so-far without stopping ingestion.
func (b *Builder) Clone() *Builder {
	nb := &Builder{
		n:      b.n,
		seq:    append([]int(nil), b.seq...),
		ckpts:  make([][]Checkpoint, b.n),
		msgs:   append([]Message(nil), b.msgs...),
		sent:   make(map[int]*pendingSend, len(b.sent)),
		nextID: b.nextID,
	}
	for i := range b.ckpts {
		nb.ckpts[i] = append([]Checkpoint(nil), b.ckpts[i]...)
	}
	for id, ps := range b.sent {
		cp := *ps
		nb.sent[id] = &cp
	}
	return nb
}

// Snapshot finalizes a copy of the builder's current state, leaving the
// builder itself untouched and open: the returned pattern is the run as
// if it ended now, with final checkpoints closing every event-bearing
// interval and in-flight messages reported as lost (FinalizeLossy
// semantics).
func (b *Builder) Snapshot() (*Pattern, []LostMessage, error) {
	return b.Clone().FinalizeLossy()
}

func (b *Builder) nextSeq(i ProcID) int {
	s := b.seq[i]
	b.seq[i]++
	return s
}

// NextMessageID returns the number of Send calls so far (message IDs are
// assigned sequentially from zero).
func (b *Builder) NextMessageID() int { return b.nextID }
