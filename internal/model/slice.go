package model

import "fmt"

// Prefix returns the sub-pattern "as of" the global checkpoint g: the
// checkpoints up to and including g[i] for every process, and the messages
// both sent and delivered before the cut. Messages in transit at the cut
// (sent before, delivered after) are dropped — rolling back empties the
// channels; orphan messages make the prefix ill-defined, so g must be
// consistent. The result is what a recovered system's history looks like
// after rolling back to g.
func (p *Pattern) Prefix(g GlobalCheckpoint) (*Pattern, error) {
	orphanFree := true
	if len(g) != p.N {
		return nil, fmt.Errorf("prefix: cut has %d entries, want %d", len(g), p.N)
	}
	for i, x := range g {
		if x < 0 || x > p.LastIndex(ProcID(i)) {
			return nil, fmt.Errorf("prefix: entry %d = %d out of range [0,%d]", i, x, p.LastIndex(ProcID(i)))
		}
	}
	out := &Pattern{N: p.N, Checkpoints: make([][]Checkpoint, p.N)}
	for i := 0; i < p.N; i++ {
		cs := make([]Checkpoint, g[i]+1)
		copy(cs, p.Checkpoints[i][:g[i]+1])
		for x := range cs {
			if cs[x].TDV != nil {
				cs[x].TDV = append([]int(nil), cs[x].TDV...)
			}
		}
		out.Checkpoints[i] = cs
	}
	for i := range p.Messages {
		m := p.Messages[i]
		sentBefore := m.SendInterval <= g[m.From]
		deliveredBefore := m.DeliverInterval <= g[m.To]
		switch {
		case sentBefore && deliveredBefore:
			out.Messages = append(out.Messages, m)
		case !sentBefore && deliveredBefore:
			orphanFree = false
		}
	}
	if !orphanFree {
		return nil, fmt.Errorf("prefix: cut %v is not consistent (orphan message)", g)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("prefix: %w", err)
	}
	return out, nil
}
