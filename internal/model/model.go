// Package model defines checkpoint and communication patterns — the formal
// objects (Ĥ, C_Ĥ) of Definition 2.1 — together with builders, validators and
// renderers for them.
//
// A pattern records, for a finite computation of n sequential processes, the
// per-process sequences of local checkpoints and the set of application
// messages exchanged, each message annotated with the checkpoint intervals
// containing its send and delivery events and with the local positions of
// those events inside their process timelines. Positions make the intra-
// interval event order visible, which is what distinguishes a causal message
// chain from a zigzag (non-causal) one.
//
// Terminology used throughout the repository:
//
//   - C_{i,x} is the x-th local checkpoint of process i (x starts at 0; every
//     process takes an initial checkpoint C_{i,0}).
//   - I_{i,x} (x >= 1) is the checkpoint interval: the events of process i
//     that occur after C_{i,x-1} and before C_{i,x}.
//   - An event in interval x therefore "belongs to" checkpoint C_{i,x'} for
//     all x' >= x, and is undone when process i rolls back to any checkpoint
//     C_{i,x'} with x' < x.
package model

import (
	"fmt"
	"strconv"
)

// ProcID identifies a process. Processes are numbered 0..N-1.
type ProcID int

// CheckpointKind classifies how a local checkpoint was taken.
type CheckpointKind int

// Checkpoint kinds. Initial checkpoints exist by assumption, basic
// checkpoints are taken independently by the application, forced checkpoints
// are induced by a communication-induced checkpointing protocol, and final
// checkpoints close the last interval of every process when a finite run
// ends (the model assumes every event is eventually followed by a
// checkpoint).
const (
	KindInitial CheckpointKind = iota + 1
	KindBasic
	KindForced
	KindFinal
)

// String returns a short human-readable name for the kind.
func (k CheckpointKind) String() string {
	switch k {
	case KindInitial:
		return "initial"
	case KindBasic:
		return "basic"
	case KindForced:
		return "forced"
	case KindFinal:
		return "final"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// CkptID names one local checkpoint C_{Proc,Index} inside a pattern.
type CkptID struct {
	Proc  ProcID
	Index int
}

// String renders the checkpoint as C{proc,index}. Hand-rolled rather
// than fmt.Sprintf: the online checker formats an id per violation, and
// on violation-dense workloads the formatter otherwise shows up ahead of
// the checker itself in ingest profiles.
func (c CkptID) String() string {
	buf := make([]byte, 0, 16)
	buf = append(buf, 'C', '{')
	buf = strconv.AppendInt(buf, int64(c.Proc), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(c.Index), 10)
	buf = append(buf, '}')
	return string(buf)
}

// Checkpoint is one recorded local checkpoint of a pattern.
type Checkpoint struct {
	Proc  ProcID         `json:"proc"`
	Index int            `json:"index"` // x in C_{i,x}
	Seq   int            `json:"seq"`   // position in the process's local event sequence
	Kind  CheckpointKind `json:"kind"`

	// TDV is the transitive dependency vector recorded with the checkpoint
	// by the protocol that took it, or nil when the run was not annotated.
	// Under RDT, TDV is also the minimum consistent global checkpoint
	// containing this checkpoint (Corollary 4.5).
	TDV []int `json:"tdv,omitempty"`
}

// ID returns the checkpoint's identifier.
func (c *Checkpoint) ID() CkptID { return CkptID{Proc: c.Proc, Index: c.Index} }

// Message is one application message of a pattern.
type Message struct {
	ID   int    `json:"id"`
	From ProcID `json:"from"`
	To   ProcID `json:"to"`

	// SendInterval is the x such that send(m) ∈ I_{From,x}; equivalently the
	// index of the first checkpoint of From taken at or after the send.
	SendInterval int `json:"sendInterval"`
	// DeliverInterval is the y such that deliver(m) ∈ I_{To,y}.
	DeliverInterval int `json:"deliverInterval"`

	// SendSeq and DeliverSeq are the local event-sequence positions of the
	// send and delivery events inside their respective process timelines.
	SendSeq    int `json:"sendSeq"`
	DeliverSeq int `json:"deliverSeq"`
}

// String renders the message with its interval endpoints.
func (m *Message) String() string {
	return fmt.Sprintf("m%d: P%d[I%d] -> P%d[I%d]", m.ID, m.From, m.SendInterval, m.To, m.DeliverInterval)
}

// Pattern is a checkpoint and communication pattern (Ĥ, C_Ĥ): the recorded
// checkpoints of every process plus every delivered message. Patterns are
// produced by the builder, by the simulator, or by the concurrent runtime,
// and consumed by the rollback-dependency analyses in internal/rgraph.
type Pattern struct {
	N int `json:"n"` // number of processes

	// Checkpoints[i][x] is C_{i,x}. Every process has at least the initial
	// checkpoint at index 0.
	Checkpoints [][]Checkpoint `json:"checkpoints"`

	// Messages lists every delivered message, in no particular order.
	Messages []Message `json:"messages"`
}

// NumCheckpoints returns the total number of local checkpoints.
func (p *Pattern) NumCheckpoints() int {
	total := 0
	for _, cs := range p.Checkpoints {
		total += len(cs)
	}
	return total
}

// LastIndex returns the index of the last checkpoint of process i.
func (p *Pattern) LastIndex(i ProcID) int { return len(p.Checkpoints[i]) - 1 }

// Checkpoint returns the checkpoint with the given identifier.
func (p *Pattern) Checkpoint(id CkptID) (*Checkpoint, error) {
	if id.Proc < 0 || int(id.Proc) >= p.N {
		return nil, fmt.Errorf("checkpoint %v: process out of range [0,%d)", id, p.N)
	}
	if id.Index < 0 || id.Index >= len(p.Checkpoints[id.Proc]) {
		return nil, fmt.Errorf("checkpoint %v: index out of range [0,%d)", id, len(p.Checkpoints[id.Proc]))
	}
	return &p.Checkpoints[id.Proc][id.Index], nil
}

// CountKind returns the number of checkpoints of the given kind.
func (p *Pattern) CountKind(kind CheckpointKind) int {
	count := 0
	for _, cs := range p.Checkpoints {
		for i := range cs {
			if cs[i].Kind == kind {
				count++
			}
		}
	}
	return count
}

// Stats summarizes a pattern for reporting.
type Stats struct {
	Processes int
	Messages  int
	Initial   int
	Basic     int
	Forced    int
	Final     int
}

// Total returns the total number of local checkpoints.
func (s Stats) Total() int { return s.Initial + s.Basic + s.Forced + s.Final }

// ForcedPerBasic returns the paper's overhead ratio R = forced/basic, or 0
// when no basic checkpoint was taken.
func (s Stats) ForcedPerBasic() float64 {
	if s.Basic == 0 {
		return 0
	}
	return float64(s.Forced) / float64(s.Basic)
}

// ForcedPerMessage returns the number of forced checkpoints per delivered
// message, or 0 when no message was delivered.
func (s Stats) ForcedPerMessage() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.Forced) / float64(s.Messages)
}

// Stats computes summary statistics of the pattern.
func (p *Pattern) Stats() Stats {
	return Stats{
		Processes: p.N,
		Messages:  len(p.Messages),
		Initial:   p.CountKind(KindInitial),
		Basic:     p.CountKind(KindBasic),
		Forced:    p.CountKind(KindForced),
		Final:     p.CountKind(KindFinal),
	}
}

// GlobalCheckpoint is a global checkpoint: one local checkpoint index per
// process; entry i selects C_{i,g[i]}.
type GlobalCheckpoint []int

// Clone returns a copy of the global checkpoint.
func (g GlobalCheckpoint) Clone() GlobalCheckpoint {
	out := make(GlobalCheckpoint, len(g))
	copy(out, g)
	return out
}

// Equal reports whether two global checkpoints select the same local
// checkpoints.
func (g GlobalCheckpoint) Equal(other GlobalCheckpoint) bool {
	if len(g) != len(other) {
		return false
	}
	for i := range g {
		if g[i] != other[i] {
			return false
		}
	}
	return true
}

// DominatedBy reports whether g <= other componentwise.
func (g GlobalCheckpoint) DominatedBy(other GlobalCheckpoint) bool {
	if len(g) != len(other) {
		return false
	}
	for i := range g {
		if g[i] > other[i] {
			return false
		}
	}
	return true
}

// String renders the global checkpoint as {x0,x1,...}.
func (g GlobalCheckpoint) String() string {
	out := "{"
	for i, x := range g {
		if i > 0 {
			out += ","
		}
		out += strconv.Itoa(x)
	}
	return out + "}"
}
