package model

import (
	"fmt"
	"sort"

	"github.com/rdt-go/rdt/internal/binenc"
)

// Deterministic binary state codec for Builder, used by the checking
// service's session snapshots: AppendBinary serializes every field a
// later DecodeBuilder needs to continue the event stream with behavior
// identical to the original builder — same pattern, same handles, same
// sequence numbers. Encoding the same builder state always yields the
// same bytes (maps are emitted in sorted key order), so snapshots are
// reproducible and diffable.

var builderMagic = []byte("RDTBLDR1")

// maxDecodeN bounds the process count a decoded builder or checker will
// allocate for; it matches the service's hard cap on session size.
const maxDecodeN = 1 << 20

// AppendBinary appends the builder's complete state to buf and returns
// the extended slice.
func (b *Builder) AppendBinary(buf []byte) []byte {
	buf = append(buf, builderMagic...)
	buf = binenc.AppendInt(buf, b.n)
	for _, s := range b.seq {
		buf = binenc.AppendInt(buf, s)
	}
	for i := 0; i < b.n; i++ {
		buf = binenc.AppendInt(buf, len(b.ckpts[i]))
		for _, ck := range b.ckpts[i] {
			// Proc and Index are implied by position.
			buf = binenc.AppendInt(buf, ck.Seq)
			buf = append(buf, byte(ck.Kind))
			if ck.TDV == nil {
				buf = binenc.AppendBool(buf, false)
			} else {
				buf = binenc.AppendBool(buf, true)
				buf = binenc.AppendInts(buf, ck.TDV)
			}
		}
	}
	buf = binenc.AppendInt(buf, len(b.msgs))
	for _, m := range b.msgs {
		buf = binenc.AppendInt(buf, m.ID)
		buf = binenc.AppendInt(buf, int(m.From))
		buf = binenc.AppendInt(buf, int(m.To))
		buf = binenc.AppendInt(buf, m.SendInterval)
		buf = binenc.AppendInt(buf, m.SendSeq)
		buf = binenc.AppendInt(buf, m.DeliverInterval)
		buf = binenc.AppendInt(buf, m.DeliverSeq)
	}
	ids := make([]int, 0, len(b.sent))
	for id := range b.sent {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	buf = binenc.AppendInt(buf, len(ids))
	for _, id := range ids {
		ps := b.sent[id]
		buf = binenc.AppendInt(buf, id)
		buf = binenc.AppendInt(buf, int(ps.from))
		buf = binenc.AppendInt(buf, int(ps.to))
		buf = binenc.AppendInt(buf, ps.sendInterval)
		buf = binenc.AppendInt(buf, ps.sendSeq)
	}
	buf = binenc.AppendInt(buf, b.nextID)
	return buf
}

// DecodeBuilder reconstructs a builder from AppendBinary output. The
// input is validated structurally (counts, process ranges), so corrupt
// snapshot bytes fail cleanly instead of yielding a builder that
// panics later.
func DecodeBuilder(data []byte) (*Builder, error) {
	r := binenc.NewReader(data)
	r.Expect(builderMagic)
	n := r.IntMax(maxDecodeN)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decode builder: %w", err)
	}
	if n < 1 {
		return nil, fmt.Errorf("decode builder: process count %d", n)
	}
	b := &Builder{
		n:     n,
		seq:   make([]int, n),
		ckpts: make([][]Checkpoint, n),
		sent:  make(map[int]*pendingSend),
	}
	for i := range b.seq {
		b.seq[i] = r.Int()
	}
	for i := 0; i < n; i++ {
		cnt := r.IntMax(maxDecodeN)
		if r.Err() != nil {
			break
		}
		if cnt < 1 {
			return nil, fmt.Errorf("decode builder: process %d has no initial checkpoint", i)
		}
		b.ckpts[i] = make([]Checkpoint, cnt)
		for x := range b.ckpts[i] {
			ck := &b.ckpts[i][x]
			ck.Proc, ck.Index = ProcID(i), x
			ck.Seq = r.Int()
			ck.Kind = CheckpointKind(r.Byte())
			if r.Bool() {
				ck.TDV = r.Ints(maxDecodeN)
			}
			if r.Err() == nil && (ck.Kind < KindInitial || ck.Kind > KindFinal) {
				return nil, fmt.Errorf("decode builder: checkpoint C{%d,%d} has kind %d", i, x, ck.Kind)
			}
		}
	}
	msgCount := r.IntMax(maxDecodeN)
	if r.Err() == nil && msgCount > 0 {
		b.msgs = make([]Message, msgCount)
		for k := range b.msgs {
			m := &b.msgs[k]
			m.ID = r.Int()
			m.From = ProcID(r.IntMax(n - 1))
			m.To = ProcID(r.IntMax(n - 1))
			m.SendInterval = r.Int()
			m.SendSeq = r.Int()
			m.DeliverInterval = r.Int()
			m.DeliverSeq = r.Int()
		}
	}
	sentCount := r.IntMax(maxDecodeN)
	for k := 0; k < sentCount && r.Err() == nil; k++ {
		id := r.Int()
		ps := &pendingSend{
			from:         ProcID(r.IntMax(n - 1)),
			to:           ProcID(r.IntMax(n - 1)),
			sendInterval: r.Int(),
			sendSeq:      r.Int(),
		}
		if _, dup := b.sent[id]; dup {
			return nil, fmt.Errorf("decode builder: duplicate in-flight message %d", id)
		}
		b.sent[id] = ps
	}
	b.nextID = r.Int()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("decode builder: %w", err)
	}
	return b, nil
}
