package vclock

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVecClone(t *testing.T) {
	v := Vec{1, 2, 3}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Error("clone aliases original")
	}
}

func TestVecMaxInto(t *testing.T) {
	v := Vec{1, 5, 3}
	v.MaxInto(Vec{2, 4, 3})
	if !v.Equal(Vec{2, 5, 3}) {
		t.Errorf("max = %v", v)
	}
}

func TestVecEqualAndDominated(t *testing.T) {
	if !(Vec{1, 2}).Equal(Vec{1, 2}) {
		t.Error("Equal failed")
	}
	if (Vec{1, 2}).Equal(Vec{1}) {
		t.Error("Equal ignored length")
	}
	if !(Vec{1, 2}).DominatedBy(Vec{1, 3}) {
		t.Error("DominatedBy failed")
	}
	if (Vec{1, 4}).DominatedBy(Vec{1, 3}) {
		t.Error("DominatedBy accepted larger entry")
	}
	if (Vec{1}).DominatedBy(Vec{1, 3}) {
		t.Error("DominatedBy ignored length")
	}
}

func TestVecString(t *testing.T) {
	if got := (Vec{1, 0, 7}).String(); got != "[1 0 7]" {
		t.Errorf("String = %q", got)
	}
}

// genVecs yields two random same-length vectors for quick properties.
func genVecs(r *rand.Rand) (Vec, Vec) {
	n := 1 + r.Intn(8)
	a, b := NewVec(n), NewVec(n)
	for i := 0; i < n; i++ {
		a[i] = r.Intn(10)
		b[i] = r.Intn(10)
	}
	return a, b
}

func TestQuickMaxIntoCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVecs(r)
		x := a.Clone()
		x.MaxInto(b)
		y := b.Clone()
		y.MaxInto(a)
		return x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxIntoIdempotentAndMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVecs(r)
		x := a.Clone()
		x.MaxInto(b)
		once := x.Clone()
		x.MaxInto(b)
		return x.Equal(once) && a.DominatedBy(x) && b.DominatedBy(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxIntoAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVecs(r)
		c, _ := genVecs(r)
		if len(c) != len(a) {
			c = NewVec(len(a))
			for i := range c {
				c[i] = r.Intn(10)
			}
		}
		left := a.Clone()
		left.MaxInto(b)
		left.MaxInto(c)
		bc := b.Clone()
		bc.MaxInto(c)
		right := a.Clone()
		right.MaxInto(bc)
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolsBasics(t *testing.T) {
	b := NewBools(4)
	if b.Any() {
		t.Error("fresh vector should be all false")
	}
	b[2] = true
	if !b.Any() || b.Count() != 1 {
		t.Errorf("Any/Count wrong: %v", b)
	}
	c := b.Clone()
	c[2] = false
	if !b[2] {
		t.Error("clone aliases original")
	}
	b.Reset()
	if b.Any() {
		t.Error("reset left true entries")
	}
}

func TestBoolsString(t *testing.T) {
	b := Bools{false, true, true, false}
	if got := b.String(); got != "0110" {
		t.Errorf("String = %q", got)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	m.Set(1, 2, true)
	if !m.At(1, 2) || m.At(2, 1) {
		t.Error("Set/At wrong")
	}
	c := m.Clone()
	c.Set(0, 0, true)
	if m.At(0, 0) {
		t.Error("clone aliases original")
	}
	if m.Equal(c) {
		t.Error("Equal missed a difference")
	}
	c.Set(0, 0, false)
	if !m.Equal(c) {
		t.Error("Equal failed on equal matrices")
	}
}

func TestIdentityMatrix(t *testing.T) {
	m := IdentityMatrix(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if m.At(r, c) != (r == c) {
				t.Errorf("identity wrong at (%d,%d)", r, c)
			}
		}
	}
}

func TestMatrixRowOps(t *testing.T) {
	src := NewMatrix(3)
	src.Set(1, 0, true)
	src.Set(1, 2, true)

	dst := NewMatrix(3)
	dst.Set(1, 1, true)
	dst.OrRow(1, src)
	if !dst.At(1, 0) || !dst.At(1, 1) || !dst.At(1, 2) {
		t.Errorf("OrRow wrong: %v", dst)
	}

	dst2 := NewMatrix(3)
	dst2.Set(1, 1, true)
	dst2.CopyRow(1, src)
	if dst2.At(1, 1) || !dst2.At(1, 0) || !dst2.At(1, 2) {
		t.Errorf("CopyRow wrong: %v", dst2)
	}
}

func TestMatrixOrColInto(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, true) // row 0 has column 1 set
	m.Set(2, 1, true)
	m.OrColInto(2, 1)
	if !m.At(0, 2) || !m.At(2, 2) || m.At(1, 2) {
		t.Errorf("OrColInto wrong:\n%v", m)
	}
}

func TestMatrixClearOps(t *testing.T) {
	m := IdentityMatrix(3)
	m.Set(1, 0, true)
	m.Set(1, 2, true)
	m.ClearRowExcept(1, 1)
	if m.At(1, 0) || !m.At(1, 1) || m.At(1, 2) {
		t.Errorf("ClearRowExcept wrong:\n%v", m)
	}
	m.ClearRowExcept(1, -1)
	if m.At(1, 1) {
		t.Error("ClearRowExcept(-1) kept the diagonal")
	}
	m2 := IdentityMatrix(3)
	m2.ClearDiagonal()
	for k := 0; k < 3; k++ {
		if m2.At(k, k) {
			t.Errorf("diagonal (%d,%d) still set", k, k)
		}
	}
}

func TestMatrixString(t *testing.T) {
	m := IdentityMatrix(2)
	if got := m.String(); got != "10\n01" {
		t.Errorf("String = %q", got)
	}
}

func TestCheckDims(t *testing.T) {
	if err := CheckDims(3, NewVec(3)); err != nil {
		t.Errorf("CheckDims rejected matching length: %v", err)
	}
	if err := CheckDims(3, NewVec(2)); err == nil {
		t.Error("CheckDims accepted mismatched length")
	}
}

func TestQuickOrRowMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a, b := NewMatrix(n), NewMatrix(n)
		for i := 0; i < n*n/2; i++ {
			a.Set(r.Intn(n), r.Intn(n), true)
			b.Set(r.Intn(n), r.Intn(n), true)
		}
		row := r.Intn(n)
		merged := a.Clone()
		merged.OrRow(row, b)
		// Every bit of a survives; every bit of b's row appears.
		for c := 0; c < n; c++ {
			if a.At(row, c) && !merged.At(row, c) {
				return false
			}
			if b.At(row, c) && !merged.At(row, c) {
				return false
			}
		}
		// Other rows untouched.
		for rr := 0; rr < n; rr++ {
			if rr == row {
				continue
			}
			for c := 0; c < n; c++ {
				if merged.At(rr, c) != a.At(rr, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecReflectEquality(t *testing.T) {
	// Guards against Vec accidentally becoming a struct: analyses rely on
	// slice semantics for JSON round-trips.
	v := Vec{1, 2}
	if !reflect.DeepEqual([]int(v), []int{1, 2}) {
		t.Error("Vec lost slice semantics")
	}
}

func TestMatrixCellsRoundTrip(t *testing.T) {
	m := IdentityMatrix(3)
	m.Set(0, 2, true)
	cells := m.CloneCells()
	cells[1] = true // mutating the copy must not touch the matrix
	if m.At(0, 1) {
		t.Error("CloneCells aliases the matrix")
	}
	back, err := MatrixFromCells(3, m.CloneCells())
	if err != nil {
		t.Fatalf("from cells: %v", err)
	}
	if !back.Equal(m) {
		t.Error("round trip lost cells")
	}
	if _, err := MatrixFromCells(3, make([]bool, 5)); err == nil {
		t.Error("wrong cell count accepted")
	}
}
