// Package vclock provides the dependency-tracking data structures used by
// the checkpointing protocols and analyses: integer transitive dependency
// vectors (TDV), boolean vectors (the protocol's simple and sent_to arrays)
// and boolean matrices (the protocol's causal matrix), with exactly the
// merge rules the protocol of Figure 6 performs on message arrival.
package vclock

import (
	"fmt"
	"strconv"
	"strings"
)

// Vec is an integer dependency vector. Entry k of process i's vector records
// the highest checkpoint-interval index of process k on which i's current
// state transitively depends through causal message chains; entry i is the
// index of i's current interval.
type Vec []int

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of the vector.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// MaxInto sets v to the componentwise maximum of v and other.
func (v Vec) MaxInto(other Vec) {
	for k := range v {
		if other[k] > v[k] {
			v[k] = other[k]
		}
	}
}

// Equal reports componentwise equality.
func (v Vec) Equal(other Vec) bool {
	if len(v) != len(other) {
		return false
	}
	for k := range v {
		if v[k] != other[k] {
			return false
		}
	}
	return true
}

// DominatedBy reports whether v <= other componentwise.
func (v Vec) DominatedBy(other Vec) bool {
	if len(v) != len(other) {
		return false
	}
	for k := range v {
		if v[k] > other[k] {
			return false
		}
	}
	return true
}

// String renders the vector as [a b c ...].
func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.Itoa(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Bools is a boolean vector (the protocol's simple_i and sent_to_i arrays).
type Bools []bool

// NewBools returns an all-false vector of length n.
func NewBools(n int) Bools { return make(Bools, n) }

// Clone returns a copy of the vector.
func (b Bools) Clone() Bools {
	out := make(Bools, len(b))
	copy(out, b)
	return out
}

// Reset sets every entry to false.
func (b Bools) Reset() {
	for k := range b {
		b[k] = false
	}
}

// Any reports whether at least one entry is true.
func (b Bools) Any() bool {
	for _, x := range b {
		if x {
			return true
		}
	}
	return false
}

// Count returns the number of true entries.
func (b Bools) Count() int {
	n := 0
	for _, x := range b {
		if x {
			n++
		}
	}
	return n
}

// String renders the vector as a bit string, e.g. "0110".
func (b Bools) String() string {
	var sb strings.Builder
	for _, x := range b {
		if x {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Matrix is a square boolean matrix; cell (k,l) of process i's causal matrix
// is true when, to i's knowledge, there is an on-line trackable R-path from
// C_{k,TDV_i[k]} to C_{l,TDV_i[l]}.
type Matrix struct {
	n     int
	cells []bool
}

// NewMatrix returns an n x n all-false matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{n: n, cells: make([]bool, n*n)}
}

// IdentityMatrix returns an n x n matrix with a true diagonal, the initial
// value of the protocol's causal matrix.
func IdentityMatrix(n int) *Matrix {
	m := NewMatrix(n)
	for k := 0; k < n; k++ {
		m.Set(k, k, true)
	}
	return m
}

// N returns the dimension of the matrix.
func (m *Matrix) N() int { return m.n }

// At returns cell (row, col).
func (m *Matrix) At(row, col int) bool { return m.cells[row*m.n+col] }

// Set assigns cell (row, col).
func (m *Matrix) Set(row, col int, v bool) { m.cells[row*m.n+col] = v }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{n: m.n, cells: make([]bool, len(m.cells))}
	copy(out.cells, m.cells)
	return out
}

// Equal reports cellwise equality.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.n != other.n {
		return false
	}
	for i := range m.cells {
		if m.cells[i] != other.cells[i] {
			return false
		}
	}
	return true
}

// CopyRow overwrites row of m with the same row of src.
func (m *Matrix) CopyRow(row int, src *Matrix) {
	copy(m.cells[row*m.n:(row+1)*m.n], src.cells[row*src.n:(row+1)*src.n])
}

// OrRow ORs the given row of src into the same row of m.
func (m *Matrix) OrRow(row int, src *Matrix) {
	dst := m.cells[row*m.n : (row+1)*m.n]
	s := src.cells[row*src.n : (row+1)*src.n]
	for k := range dst {
		dst[k] = dst[k] || s[k]
	}
}

// OrColInto ORs column srcCol into column dstCol: for every row l,
// m[l][dstCol] |= m[l][srcCol]. This is the transitive-closure column update
// the protocol performs after a delivery from the sender's column.
func (m *Matrix) OrColInto(dstCol, srcCol int) {
	for l := 0; l < m.n; l++ {
		if m.cells[l*m.n+srcCol] {
			m.cells[l*m.n+dstCol] = true
		}
	}
}

// ClearRowExcept sets every entry of the row to false except the given
// column (used by take_checkpoint, which resets causal_i[i][j] for j != i).
func (m *Matrix) ClearRowExcept(row, keep int) {
	base := row * m.n
	for c := 0; c < m.n; c++ {
		if c != keep {
			m.cells[base+c] = false
		}
	}
}

// ClearDiagonal sets every diagonal entry to false (protocol variant B keeps
// the diagonal permanently false).
func (m *Matrix) ClearDiagonal() {
	for k := 0; k < m.n; k++ {
		m.Set(k, k, false)
	}
}

// String renders the matrix with one bit-string row per line.
func (m *Matrix) String() string {
	var sb strings.Builder
	for r := 0; r < m.n; r++ {
		if r > 0 {
			sb.WriteByte('\n')
		}
		for c := 0; c < m.n; c++ {
			if m.At(r, c) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
	}
	return sb.String()
}

// CheckDims verifies that a vector has the expected length; analyses use it
// to reject piggybacks from a differently-sized system.
func CheckDims(n int, v Vec) error {
	if len(v) != n {
		return fmt.Errorf("vector has length %d, want %d", len(v), n)
	}
	return nil
}

// CloneCells returns a copy of the matrix cells in row-major order, for
// wire encoding.
func (m *Matrix) CloneCells() []bool {
	out := make([]bool, len(m.cells))
	copy(out, m.cells)
	return out
}

// MatrixFromCells rebuilds a matrix from row-major cells produced by
// CloneCells.
func MatrixFromCells(n int, cells []bool) (*Matrix, error) {
	if len(cells) != n*n {
		return nil, fmt.Errorf("matrix cells: got %d, want %d", len(cells), n*n)
	}
	m := NewMatrix(n)
	copy(m.cells, cells)
	return m, nil
}

// Reuse reinitializes the matrix in place to an n x n all-false matrix,
// growing its cell buffer only when needed, and returns it; a nil receiver
// yields a fresh matrix. It is the allocation-free counterpart of
// NewMatrix for decode scratch that is reused across messages.
func (m *Matrix) Reuse(n int) *Matrix {
	if m == nil {
		return NewMatrix(n)
	}
	need := n * n
	if cap(m.cells) < need {
		m.cells = make([]bool, need)
	} else {
		m.cells = m.cells[:need]
		for i := range m.cells {
			m.cells[i] = false
		}
	}
	m.n = n
	return m
}

// AppendBits appends the matrix cells to buf, bit-packed in row-major
// order (LSB-first within each byte), and returns the extended buffer.
func (m *Matrix) AppendBits(buf []byte) []byte {
	return appendPackedBools(buf, m.cells)
}

// LoadBits fills the matrix cells from bit-packed row-major data produced
// by AppendBits; bits must hold at least ceil(n*n/8) bytes.
func (m *Matrix) LoadBits(bits []byte) error {
	return loadPackedBools(m.cells, bits)
}

// AppendBits appends the boolean vector to buf, bit-packed LSB-first, and
// returns the extended buffer.
func (b Bools) AppendBits(buf []byte) []byte {
	return appendPackedBools(buf, b)
}

// LoadBits fills the vector from bit-packed data produced by AppendBits;
// bits must hold at least ceil(len(b)/8) bytes.
func (b Bools) LoadBits(bits []byte) error {
	return loadPackedBools(b, bits)
}

// PackedLen returns the number of bytes a bit-packed vector of n booleans
// occupies on the wire.
func PackedLen(n int) int { return (n + 7) / 8 }

func appendPackedBools(buf []byte, cells []bool) []byte {
	var cur byte
	for i, v := range cells {
		if v {
			cur |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	if len(cells)&7 != 0 {
		buf = append(buf, cur)
	}
	return buf
}

func loadPackedBools(cells []bool, bits []byte) error {
	if len(bits) < PackedLen(len(cells)) {
		return fmt.Errorf("packed bools: got %d bytes, need %d", len(bits), PackedLen(len(cells)))
	}
	for i := range cells {
		cells[i] = bits[i>>3]&(1<<(uint(i)&7)) != 0
	}
	return nil
}
