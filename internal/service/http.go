package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/trace"
	"github.com/rdt-go/rdt/internal/version"
)

// NewHandler builds the service's HTTP API:
//
//	POST   /v1/sessions              create a session      {"n": 3, "id": "optional"}
//	GET    /v1/sessions              list sessions
//	POST   /v1/sessions/{id}/events  ingest events         202, or 429 + Retry-After
//	GET    /v1/sessions/{id}/verdict live RDT verdict      ?flush=1&violations=N
//	GET    /v1/sessions/{id}/explain violation witnesses   ?violations=N&dot=1
//	GET    /v1/sessions/{id}/timeline Chrome trace-event timeline of the pattern
//	GET    /v1/sessions/{id}/line    recovery-line query
//	GET    /v1/sessions/{id}/trace   pattern-so-far dump   (rdtcheck - compatible)
//	POST   /v1/sessions/{id}/seal    finalize the session
//	DELETE /v1/sessions/{id}         evict the session
//	GET    /healthz                  liveness (503 while draining)
//
// When the service has a Registry/Tracer, /metrics and /debug/events
// are mounted too, so one listener serves both the API and the
// introspection endpoints.
func NewHandler(svc *Service) http.Handler {
	a := &api{svc: svc}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", a.timed("create", a.createSession))
	mux.HandleFunc("GET /v1/sessions", a.timed("list", a.listSessions))
	mux.HandleFunc("POST /v1/sessions/{id}/events", a.timed("ingest", a.ingest))
	mux.HandleFunc("GET /v1/sessions/{id}/verdict", a.timed("verdict", a.verdict))
	mux.HandleFunc("GET /v1/sessions/{id}/explain", a.timed("explain", a.explain))
	mux.HandleFunc("GET /v1/sessions/{id}/timeline", a.timed("timeline", a.timeline))
	mux.HandleFunc("GET /v1/sessions/{id}/line", a.timed("line", a.line))
	mux.HandleFunc("GET /v1/sessions/{id}/trace", a.timed("trace", a.trace))
	mux.HandleFunc("POST /v1/sessions/{id}/seal", a.timed("seal", a.seal))
	mux.HandleFunc("DELETE /v1/sessions/{id}", a.timed("delete", a.deleteSession))
	mux.HandleFunc("GET /healthz", a.timed("healthz", a.healthz))
	if svc.cfg.Registry != nil {
		mux.Handle("GET /metrics", obs.MetricsHandler(svc.cfg.Registry))
	}
	if svc.cfg.Tracer != nil {
		mux.Handle("GET /debug/events", obs.EventsHandler(svc.cfg.Tracer))
	}
	return mux
}

type api struct {
	svc *Service
}

// timed wraps a handler with the per-endpoint latency histogram.
func (a *api) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := a.svc.cfg.Registry.Histogram(
		"rdt_service_request_seconds", obs.LatencyBuckets, "endpoint", endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start).Seconds())
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// writeSessionError maps session/service sentinel errors to statuses.
func writeSessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBackpressure):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrSealed), errors.Is(err, ErrFailed):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrDegraded):
		writeError(w, http.StatusInsufficientStorage, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusGone, err)
	case errors.Is(err, ErrNoSession):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrSessionExists):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (a *api) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	sess, err := a.svc.Session(r.PathValue("id"))
	if err != nil {
		a.sessionError(w, r, err)
		return nil, false
	}
	return sess, true
}

// sessionError maps a lookup/ingest error, turning a shard move into a
// 307 at the owner (same path and query; Go clients re-send the body
// automatically, curl needs -L).
func (a *api) sessionError(w http.ResponseWriter, r *http.Request, err error) {
	var mv *MovedError
	if errors.As(err, &mv) && mv.HTTP != "" {
		u := *r.URL
		u.Scheme = "http"
		u.Host = mv.HTTP
		w.Header().Set("X-Rdt-Owner", mv.Owner)
		http.Redirect(w, r, u.String(), http.StatusTemporaryRedirect)
		return
	}
	writeSessionError(w, err)
}

type createRequest struct {
	ID string `json:"id"`
	N  int    `json:"n"`
}

type createResponse struct {
	ID string `json:"id"`
	N  int    `json:"n"`
}

func (a *api) createSession(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	body := http.MaxBytesReader(w, r.Body, 4096)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	sess, err := a.svc.CreateSession(req.ID, req.N)
	if err != nil {
		var mv *MovedError
		switch {
		case errors.As(err, &mv):
			a.sessionError(w, r, err)
		case errors.Is(err, ErrDraining), errors.Is(err, ErrSessionExists):
			writeSessionError(w, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, createResponse{ID: sess.ID, N: sess.N})
}

func (a *api) listSessions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Sessions []Info `json:"sessions"`
	}{Sessions: a.svc.Sessions()})
}

type ingestResponse struct {
	Enqueued int `json:"enqueued"`
}

func (a *api) ingest(w http.ResponseWriter, r *http.Request) {
	sess, ok := a.session(w, r)
	if !ok {
		return
	}
	// A declared oversize is refused before reading a byte; a lying
	// Content-Length still hits MaxBytesReader below.
	if r.ContentLength > a.svc.cfg.MaxBody {
		a.svc.reject(reasonInvalid, 1)
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body %d bytes exceeds limit %d", r.ContentLength, a.svc.cfg.MaxBody))
		return
	}
	events, release, err := DecodeEventsPooled(
		http.MaxBytesReader(w, r.Body, a.svc.cfg.MaxBody), a.svc.cfg.MaxBatch)
	if err != nil {
		a.svc.reject(reasonInvalid, 1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The scratch returns to the pool once the worker is done with the
	// batch — notify fires after apply — never while the queue holds it.
	n := len(events)
	if err := sess.EnqueueNotify(events, func(error) { release() }); err != nil {
		release()
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, ingestResponse{Enqueued: n})
}

func (a *api) verdict(w http.ResponseWriter, r *http.Request) {
	sess, ok := a.session(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	if q.Get("flush") == "1" {
		// The barrier orders the verdict after every acknowledged batch;
		// its own failure (a poisoned prefix or a degraded store) still
		// yields a verdict — the state and error ride inside it — so only
		// transport-level errors abort the request.
		if err := sess.Flush(r.Context()); err != nil && !errors.Is(err, ErrFailed) && !errors.Is(err, ErrDegraded) {
			writeSessionError(w, err)
			return
		}
	}
	maxViolations := 0
	if v := q.Get("violations"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &maxViolations); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad violations: %w", err))
			return
		}
	}
	writeJSON(w, http.StatusOK, sess.Verdict(maxViolations))
}

// witnessInfo renders one violation witness on the wire: the convicted
// pair, the minimal zigzag chain hop by hop, and a one-line rendering.
type witnessInfo struct {
	Violation ViolationInfo `json:"violation"`
	Hops      []rgraph.Hop  `json:"hops"`
	NonCausal int           `json:"non_causal"`
	String    string        `json:"string"`
}

type explainResponse struct {
	Session   string        `json:"session"`
	RDT       bool          `json:"rdt"`
	Witnesses []witnessInfo `json:"witnesses"`
	// DOT, present with ?dot=1, is the space-time diagram with the first
	// witness highlighted.
	DOT string `json:"dot,omitempty"`
}

func (a *api) explain(w http.ResponseWriter, r *http.Request) {
	sess, ok := a.session(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	maxViolations := 0
	if v := q.Get("violations"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &maxViolations); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad violations: %w", err))
			return
		}
	}
	p, witnesses, err := sess.Explain(maxViolations)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := explainResponse{
		Session:   sess.ID,
		RDT:       len(witnesses) == 0,
		Witnesses: make([]witnessInfo, 0, len(witnesses)),
	}
	for _, wit := range witnesses {
		resp.Witnesses = append(resp.Witnesses, witnessInfo{
			Violation: violationInfo(wit.Violation),
			Hops:      wit.Hops,
			NonCausal: wit.NonCausal,
			String:    wit.String(),
		})
	}
	if q.Get("dot") == "1" && len(witnesses) > 0 {
		first := witnesses[0]
		resp.DOT = p.DOTWitness(first.MessageIDs(),
			first.Violation.From, first.Violation.To)
	}
	writeJSON(w, http.StatusOK, resp)
}

// timeline serves the session's pattern-so-far as Chrome trace-event
// JSON (load it in chrome://tracing or Perfetto): sends, deliveries and
// checkpoints on one logical-clock track per process.
func (a *api) timeline(w http.ResponseWriter, r *http.Request) {
	sess, ok := a.session(w, r)
	if !ok {
		return
	}
	p, lost, err := sess.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Rdt-Lost-Messages", fmt.Sprint(len(lost)))
	_ = trace.WriteTimeline(w, p)
}

type lineResponse struct {
	Line          []int `json:"line"`
	Bounds        []int `json:"bounds"`
	Depth         []int `json:"depth"`
	TotalRollback int   `json:"total_rollback"`
}

func (a *api) line(w http.ResponseWriter, r *http.Request) {
	sess, ok := a.session(w, r)
	if !ok {
		return
	}
	plan, err := sess.Line()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, lineResponse{
		Line:          plan.Line,
		Bounds:        plan.Bounds,
		Depth:         plan.Depth,
		TotalRollback: plan.TotalRollback(),
	})
}

func (a *api) trace(w http.ResponseWriter, r *http.Request) {
	sess, ok := a.session(w, r)
	if !ok {
		return
	}
	p, lost, err := sess.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Rdt-Lost-Messages", fmt.Sprint(len(lost)))
	_ = trace.Save(w, p)
}

func (a *api) seal(w http.ResponseWriter, r *http.Request) {
	sess, ok := a.session(w, r)
	if !ok {
		return
	}
	// A failed prefix still seals: the client gets the verdict of what
	// was applied, with the failure reported in the verdict state.
	if err := sess.Seal(r.Context()); err != nil && !errors.Is(err, ErrFailed) {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.Verdict(0))
}

func (a *api) deleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Evict bypasses Session(), so the ownership gate runs explicitly: a
	// moved session's DELETE belongs to its owner.
	if err := a.svc.CheckGate(id); err != nil {
		a.sessionError(w, r, err)
		return
	}
	if !a.svc.Evict(id, "explicit") {
		writeSessionError(w, fmt.Errorf("%w: %q", ErrNoSession, id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *api) healthz(w http.ResponseWriter, _ *http.Request) {
	status, code := "ok", http.StatusOK
	if a.svc.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status           string `json:"status"`
		Sessions         int    `json:"sessions"`
		DegradedSessions int64  `json:"degraded_sessions"`
		Durable          bool   `json:"durable"`
		Version          string `json:"version"`
		Commit           string `json:"commit"`
		Shard            any    `json:"shard,omitempty"`
	}{
		Status: status, Sessions: a.svc.SessionCount(),
		DegradedSessions: a.svc.DegradedCount(), Durable: a.svc.durable(),
		Version: version.Version, Commit: version.Commit,
		Shard: a.svc.ShardInfo(),
	})
}

// Server is the service bound to a listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the HTTP API on addr (":0" for an ephemeral port).
func Serve(addr string, svc *Service) (*Server, error) {
	return ServeHandler(addr, NewHandler(svc))
}

// ServeHandler starts an HTTP server on addr with a caller-composed
// handler — shard mode mounts the cluster endpoints next to the API.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown drains the HTTP server: the listener closes immediately,
// in-flight requests run to completion or the context deadline.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
