package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDecodeEventsPooledReuse exercises the dirty-scratch hazard: a
// recycled batch slice must not leak the previous request's field
// values into events whose JSON omits them (omitempty peers and ids).
func TestDecodeEventsPooledReuse(t *testing.T) {
	first := `[{"op":"send","proc":3,"peer":2,"msg":9},{"op":"send","proc":2,"peer":3,"msg":10}]`
	events, release, err := DecodeEventsPooled(strings.NewReader(first), 16)
	if err != nil {
		t.Fatalf("decode first: %v", err)
	}
	if len(events) != 2 || events[1].Peer != 3 {
		t.Fatalf("first decode: %+v", events)
	}
	release()
	release() // idempotent

	// Same pool, a body whose events omit peer/msg/kind entirely.
	second := `[{"op":"checkpoint","proc":0},{"op":"checkpoint","proc":1}]`
	for i := 0; i < 8; i++ { // pools are probabilistic; hammer it
		events, release, err = DecodeEventsPooled(strings.NewReader(second), 16)
		if err != nil {
			t.Fatalf("decode second: %v", err)
		}
		for j, ev := range events {
			if ev.Peer != 0 || ev.Msg != 0 || ev.Kind != "" {
				t.Fatalf("round %d event %d inherited stale fields: %+v", i, j, ev)
			}
		}
		release()
	}
}

// TestJSONDecodeAllocBudget pins the pooled JSON path's allocations:
// with the body buffer and batch slice recycled, what remains is
// encoding/json's per-event work (roughly one string per op field), so
// a 64-event batch must stay far below one-allocation-per-byte chaos.
// The budget has headroom over the measured count to absorb runtime
// changes without masking a lost pool.
func TestJSONDecodeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; alloc counts are noise there")
	}
	var body bytes.Buffer
	body.WriteByte('[')
	for i := 0; i < 64; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		fmt.Fprintf(&body, `{"op":"send","proc":0,"peer":1,"msg":%d}`, i)
	}
	body.WriteByte(']')
	raw := body.Bytes()

	// Warm the pool so steady state is measured.
	r := bytes.NewReader(raw)
	if _, release, err := DecodeEventsPooled(r, 128); err != nil {
		t.Fatalf("warmup: %v", err)
	} else {
		release()
	}
	avg := testing.AllocsPerRun(200, func() {
		r.Reset(raw)
		events, release, err := DecodeEventsPooled(r, 128)
		if err != nil || len(events) != 64 {
			t.Fatalf("decode: %d events, %v", len(events), err)
		}
		release()
	})
	// Unpooled, the same decode costs ~90 allocations (body growth chain,
	// batch slice growth, per-event strings). Pooled steady state
	// measures ~70; gate at 80 to catch a regression to per-request
	// buffers without flaking on runtime noise.
	if avg > 80 {
		t.Fatalf("pooled JSON decode costs %.1f allocs for 64 events, budget 80", avg)
	}
}

func TestIngestBodyLimit(t *testing.T) {
	c, _, _ := newTestServer(t, Config{MaxBody: 512, MaxBatch: 10000})
	c.expect("POST", "/v1/sessions", createRequest{ID: "big", N: 2}, http.StatusCreated, nil)

	// An honest oversized body: rejected up front via Content-Length.
	huge := make([]Event, 0, 2048)
	for i := 0; i < 2048; i++ {
		huge = append(huge, Event{Op: OpCheckpoint, Proc: 0})
	}
	resp, _ := c.do("POST", "/v1/sessions/big/events", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// A body under the limit still ingests.
	c.expect("POST", "/v1/sessions/big/events", []Event{{Op: OpCheckpoint, Proc: 0}}, http.StatusAccepted, nil)

	// A reader that exceeds the limit without declaring it (chunked
	// transfer) is caught by MaxBytesReader mid-read.
	events, _, err := DecodeEventsPooled(http.MaxBytesReader(nil,
		readCloser{strings.NewReader(strings.Repeat(" ", 600) + `{"op":"checkpoint","proc":0}`)}, 512), 10)
	var tooBig *http.MaxBytesError
	if !errors.As(err, &tooBig) {
		t.Fatalf("undeclared oversize: events=%v err=%v, want MaxBytesError", events, err)
	}
}

type readCloser struct{ *strings.Reader }

func (readCloser) Close() error { return nil }

func TestEnqueueSeqDedupAndGaps(t *testing.T) {
	svc, _ := testService(t, Config{})
	sess, err := svc.CreateSession("s", 2)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	ck := []Event{{Op: OpCheckpoint, Proc: 0}}

	if dup, err := sess.EnqueueSeq("p", 1, ck, false, nil); dup || err != nil {
		t.Fatalf("seq 1: dup=%v err=%v", dup, err)
	}
	// Replays of an accepted frame are duplicates, regardless of content.
	if dup, err := sess.EnqueueSeq("p", 1, nil, false, nil); !dup || err != nil {
		t.Fatalf("seq 1 replay: dup=%v err=%v", dup, err)
	}
	// Skipping ahead is a protocol violation.
	if _, err := sess.EnqueueSeq("p", 3, ck, false, nil); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("seq 3: %v, want ErrSeqGap", err)
	}
	// Producers number independently.
	if dup, err := sess.EnqueueSeq("q", 1, ck, false, nil); dup || err != nil {
		t.Fatalf("producer q seq 1: dup=%v err=%v", dup, err)
	}
	if got := sess.ProducerSeq("p"); got != 1 {
		t.Fatalf("ProducerSeq(p) = %d, want 1", got)
	}
	if got := sess.ProducerSeq("nobody"); got != 0 {
		t.Fatalf("ProducerSeq(nobody) = %d, want 0", got)
	}

	// A rejected frame must not advance the sequence: park the worker,
	// fill the queue, and watch a backpressured frame retry cleanly.
	gate := make(chan struct{})
	svc2, _ := testService(t, Config{QueueDepth: 1})
	s2, err := svc2.CreateSession("s2", 2)
	if err != nil {
		t.Fatalf("create s2: %v", err)
	}
	if err := s2.enqueue(batch{gate: gate}); err != nil {
		t.Fatalf("gate batch: %v", err)
	}
	waitFor(t, func() bool { return len(s2.queue) == 0 })
	if _, err := s2.EnqueueSeq("p", 1, ck, false, nil); err != nil { // fills the slot
		t.Fatalf("seq 1: %v", err)
	}
	if _, err := s2.EnqueueSeq("p", 2, ck, false, nil); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("seq 2 against a full queue: %v, want ErrBackpressure", err)
	}
	if got := s2.ProducerSeq("p"); got != 1 {
		t.Fatalf("backpressured frame advanced seq to %d", got)
	}
	close(gate)
	if dup, err := retrySeq(s2, "p", 2, ck); dup || err != nil {
		t.Fatalf("seq 2 retry: dup=%v err=%v", dup, err)
	}
}

func retrySeq(s *Session, producer string, seq uint64, events []Event) (bool, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		dup, err := s.EnqueueSeq(producer, seq, events, false, nil)
		if !errors.Is(err, ErrBackpressure) || time.Now().After(deadline) {
			return dup, err
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEnqueueNotifyOrdering pins the barrier trick the stream layer's
// duplicate re-acks rely on: a nil-events notify enqueued after a
// mutating batch fires after that batch has been applied.
func TestEnqueueNotifyOrdering(t *testing.T) {
	svc, _ := testService(t, Config{})
	sess, err := svc.CreateSession("s", 2)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	var mu sync.Mutex
	var order []string
	note := func(tag string) func(error) {
		return func(error) {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}
	}
	if _, err := sess.EnqueueSeq("p", 1, []Event{{Op: OpCheckpoint, Proc: 0}}, false, note("events")); err != nil {
		t.Fatalf("events: %v", err)
	}
	if err := sess.EnqueueNotify(nil, note("barrier")); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sess.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "events" || order[1] != "barrier" {
		t.Fatalf("notify order %v, want [events barrier]", order)
	}
	if v := sess.Verdict(0); v.EventsApplied != 1 {
		t.Fatalf("applied %d, want 1", v.EventsApplied)
	}
}
