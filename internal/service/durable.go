package service

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/rdt-go/rdt/internal/binenc"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/wal"
)

// Durability. With Config.DataDir set, every session is durable: each
// mutating batch is appended to a per-session write-ahead log and
// fsync'd before it is applied, and the combined builder + checker
// state is snapshotted every SnapshotEvery events. A session directory
//
//	<DataDir>/sessions/<id>/
//	    meta.json            process count, creation time
//	    wal.log              framed, CRC32C-checksummed batches
//	    snap_<seq>.bin       state snapshots (the last two are kept)
//
// survives kill -9: Recover scans the tree, loads each session's
// newest valid snapshot (a corrupt one is renamed *.corrupt and the
// previous one used, at the price of a longer replay), replays the WAL
// tail through the exact apply path live ingestion uses, truncates any
// torn tail, and resumes the session with bit-identical verdicts —
// sealed, failed, and applied-count state included.
//
// Failure is contained per session: a disk write error degrades only
// that session to read-only (HTTP 507 on further mutation) and is
// never made durable itself — the WAL remains the source of truth, so
// a restart recovers the session to its last committed batch, clean.

// ErrDegraded means the session's persistence failed; it is read-only
// until the daemon restarts and recovers it from disk.
var ErrDegraded = errors.New("session degraded: persistence failed")

const reasonDegraded = "degraded"

// StateDegraded is reported by sessions whose persistence failed.
const StateDegraded = "degraded"

// Test hooks for crash-point injection: when non-nil they run while
// the session lock is held, immediately after a WAL append was synced
// and immediately after the batch was applied (before any snapshot).
// The durability tests copy the session directory inside them — a
// faithful image of kill -9 at that instant.
var (
	testHookAppended func(sessionID string)
	testHookApplied  func(sessionID string)
)

// durableSession is the persistence side of a Session, guarded by the
// session mutex.
type durableSession struct {
	dir         string
	wal         *wal.Log
	snapSeq     uint64 // sequence number of the next snapshot
	snapOffset  int64  // WAL offset covered by the newest snapshot
	sinceSnap   int    // events appended since the newest snapshot
	degraded    bool
	degradedErr error
}

func (d *durableSession) closeLocked() {
	if d.wal != nil {
		_ = d.wal.Close()
		d.wal = nil
	}
}

// sessionMeta is the per-session meta.json: everything needed to
// reconstruct the Session shell before state is loaded.
type sessionMeta struct {
	ID      string    `json:"id"`
	N       int       `json:"n"`
	Created time.Time `json:"created"`
}

func (s *Service) durable() bool               { return s.cfg.DataDir != "" }
func (s *Service) sessionsRoot() string        { return filepath.Join(s.cfg.DataDir, "sessions") }
func (s *Service) sessionDir(id string) string { return filepath.Join(s.sessionsRoot(), id) }

// attachDurable creates the on-disk identity of a fresh session: its
// directory (Mkdir, so a concurrent create of the same id loses), the
// meta file, and an empty WAL.
func (s *Service) attachDurable(sess *Session) error {
	dir := s.sessionDir(sess.ID)
	if err := os.Mkdir(dir, 0o755); err != nil {
		if errors.Is(err, os.ErrExist) {
			return fmt.Errorf("%w: %q", ErrSessionExists, sess.ID)
		}
		return fmt.Errorf("create session dir: %w", err)
	}
	if err := storage.SyncDir(s.sessionsRoot()); err != nil {
		return fmt.Errorf("create session dir: %w", err)
	}
	meta, err := json.Marshal(sessionMeta{ID: sess.ID, N: sess.N, Created: sess.created})
	if err != nil {
		return fmt.Errorf("encode session meta: %w", err)
	}
	if err := storage.WriteFileDurable(filepath.Join(dir, "meta.json"), meta); err != nil {
		return fmt.Errorf("write session meta: %w", err)
	}
	l, err := wal.OpenAppend(filepath.Join(dir, "wal.log"))
	if err != nil {
		return err
	}
	sess.dur = &durableSession{dir: dir, wal: l, snapSeq: 1}
	return nil
}

// WAL record payloads: one batch per record.
const recBatch = 1

var opBytes = map[string]byte{OpCheckpoint: 1, OpSend: 2, OpDeliver: 3}
var opNames = map[byte]string{1: OpCheckpoint, 2: OpSend, 3: OpDeliver}

// encodeBatchRecord frames the mutating content of a batch, including
// the stream producer/seq watermark (empty/0 for HTTP batches) so
// replay restores the dedup state alongside the events it guards. The
// kind strings "" and "basic" are both KindBasic downstream, so one
// byte suffices and replay is still behaviorally identical.
func encodeBatchRecord(buf []byte, events []Event, seal bool, producer string, seq uint64) []byte {
	buf = append(buf, recBatch)
	buf = binenc.AppendBool(buf, seal)
	buf = binenc.AppendString(buf, producer)
	buf = binenc.AppendUvarint(buf, seq)
	buf = binenc.AppendInt(buf, len(events))
	for i := range events {
		ev := &events[i]
		buf = append(buf, opBytes[ev.Op])
		if ev.Kind == "forced" {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binenc.AppendInt(buf, ev.Proc)
		buf = binenc.AppendInt(buf, ev.Peer)
		buf = binenc.AppendInt(buf, ev.Msg)
	}
	return buf
}

func decodeBatchRecord(payload []byte) (events []Event, seal bool, producer string, seq uint64, err error) {
	r := binenc.NewReader(payload)
	if r.Byte() != recBatch {
		return nil, false, "", 0, fmt.Errorf("wal record: unknown kind")
	}
	seal = r.Bool()
	producer = r.String()
	seq = r.Uvarint()
	count := r.IntMax(wal.MaxRecord)
	if r.Err() == nil && count > 0 {
		events = make([]Event, count)
		for i := range events {
			ev := &events[i]
			op, known := opNames[r.Byte()]
			if r.Err() == nil && !known {
				return nil, false, "", 0, fmt.Errorf("wal record: unknown op byte")
			}
			ev.Op = op
			if r.Byte() == 1 {
				ev.Kind = "forced"
			}
			ev.Proc = r.Int()
			ev.Peer = r.Int()
			ev.Msg = r.Int()
		}
	}
	if err := r.Done(); err != nil {
		return nil, false, "", 0, fmt.Errorf("wal record: %w", err)
	}
	return events, seal, producer, seq, nil
}

// Snapshot files: the full session state as of a WAL offset, with a
// trailing CRC32C so disk rot is detected even though the write itself
// was atomic. Revision 2 added the per-producer stream sequence
// watermarks.
var snapMagic = []byte("RDTSNAP2")

func (s *Session) encodeSnapshotLocked() []byte {
	buf := append([]byte(nil), snapMagic...)
	buf = binenc.AppendUvarint(buf, uint64(s.dur.wal.Offset()))
	buf = binenc.AppendUvarint(buf, uint64(s.applied))
	buf = binenc.AppendBool(buf, s.sealed)
	if s.failErr != nil {
		buf = binenc.AppendBool(buf, true)
		buf = binenc.AppendString(buf, s.failErr.Error())
	} else {
		buf = binenc.AppendBool(buf, false)
	}
	ids := make([]int, 0, len(s.msgs))
	for id := range s.msgs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	buf = binenc.AppendInt(buf, len(ids))
	for _, id := range ids {
		ref := s.msgs[id]
		buf = binenc.AppendInt(buf, id)
		buf = binenc.AppendInt(buf, ref.builder)
		buf = binenc.AppendInt(buf, ref.inc)
	}
	ids = ids[:0]
	for id := range s.usedMsg {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	buf = binenc.AppendInts(buf, ids)
	producers := make([]string, 0, len(s.prodSeq))
	for p := range s.prodSeq {
		producers = append(producers, p)
	}
	sort.Strings(producers)
	buf = binenc.AppendInt(buf, len(producers))
	for _, p := range producers {
		buf = binenc.AppendString(buf, p)
		buf = binenc.AppendUvarint(buf, s.prodSeq[p])
	}
	buf = binenc.AppendBytes(buf, s.builder.AppendBinary(nil))
	buf = binenc.AppendBytes(buf, s.inc.AppendBinary(nil))
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crc32.MakeTable(crc32.Castagnoli)))
}

// snapState is a decoded snapshot, ready to be grafted onto a Session.
type snapState struct {
	walOffset int64
	applied   int64
	sealed    bool
	failErr   error
	msgs      map[int]msgRef
	usedMsg   map[int]bool
	prodSeq   map[string]uint64
	builder   *model.Builder
	inc       *rgraph.Incremental
}

func decodeSnapshot(data []byte) (*snapState, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("snapshot: %w: too short", binenc.ErrCorrupt)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != sum {
		return nil, fmt.Errorf("snapshot: %w: checksum mismatch", binenc.ErrCorrupt)
	}
	r := binenc.NewReader(body)
	r.Expect(snapMagic)
	st := &snapState{
		walOffset: int64(r.Uvarint()),
		applied:   int64(r.Uvarint()),
		sealed:    r.Bool(),
		msgs:      make(map[int]msgRef),
		usedMsg:   make(map[int]bool),
	}
	if r.Bool() {
		st.failErr = errors.New(r.String())
	}
	msgCount := r.IntMax(wal.MaxRecord)
	for k := 0; k < msgCount && r.Err() == nil; k++ {
		id := r.Int()
		ref := msgRef{builder: r.Int(), inc: r.Int()}
		if _, dup := st.msgs[id]; dup {
			return nil, fmt.Errorf("snapshot: duplicate in-flight message %d", id)
		}
		st.msgs[id] = ref
	}
	for _, id := range r.Ints(wal.MaxRecord) {
		st.usedMsg[id] = true
	}
	prodCount := r.IntMax(wal.MaxRecord)
	if prodCount > 0 {
		st.prodSeq = make(map[string]uint64, prodCount)
	}
	for k := 0; k < prodCount && r.Err() == nil; k++ {
		p := r.String()
		seq := r.Uvarint()
		if _, dup := st.prodSeq[p]; dup {
			return nil, fmt.Errorf("snapshot: duplicate producer %q", p)
		}
		st.prodSeq[p] = seq
	}
	builderBlob := r.Bytes()
	incBlob := r.Bytes()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var err error
	if st.builder, err = model.DecodeBuilder(builderBlob); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if st.inc, err = rgraph.DecodeIncremental(incBlob); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return st, nil
}

func snapName(seq uint64) string { return fmt.Sprintf("snap_%016d.bin", seq) }

// snapSeqOf parses a snapshot file name; ok is false for anything else
// (including quarantined *.corrupt files).
func snapSeqOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap_") || !strings.HasSuffix(name, ".bin") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap_"), ".bin"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// persistLocked makes a mutating batch durable before it is applied:
// frame, append, fsync. Any failure degrades the session — the batch
// is NOT applied, so memory never runs ahead of the medium. A stream
// frame's watermark advances only here, once the record is on disk, so
// the persisted dedup state never claims a frame the WAL lost.
func (s *Session) persistLocked(events []Event, seal bool, producer string, seq uint64) error {
	d := s.dur
	payload := encodeBatchRecord(nil, events, seal, producer, seq)
	start := time.Now()
	err := d.wal.Append(payload)
	if err == nil {
		err = d.wal.Sync()
	}
	if err != nil {
		s.degradeLocked(err)
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	s.svc.mWALAppends.Inc()
	s.svc.mWALAppendBytes.Add(int64(len(payload)))
	s.svc.hWALAppend.Observe(time.Since(start).Seconds())
	d.sinceSnap += len(events)
	s.noteProducerLocked(producer, seq)
	if testHookAppended != nil {
		testHookAppended(s.ID)
	}
	return nil
}

// noteProducerLocked advances the persisted stream-dedup watermark.
func (s *Session) noteProducerLocked(producer string, seq uint64) {
	if seq == 0 {
		return
	}
	if s.prodSeq == nil {
		s.prodSeq = make(map[string]uint64)
	}
	if seq > s.prodSeq[producer] {
		s.prodSeq[producer] = seq
	}
}

// degradeLocked poisons the session's persistence: it becomes
// read-only until a restart recovers it from its last committed batch.
func (s *Session) degradeLocked(err error) {
	d := s.dur
	if d.degraded {
		return
	}
	d.degraded = true
	d.degradedErr = err
	d.closeLocked()
	s.svc.mDegraded.Add(1)
	s.svc.degradedCount.Add(1)
}

// maybeSnapshotLocked writes a snapshot when the cadence is due or the
// session just sealed (a sealed session's state is final — snapshotting
// now makes its restart replay-free).
func (s *Session) maybeSnapshotLocked(sealedNow bool) {
	d := s.dur
	if d.degraded || d.wal == nil {
		return
	}
	if !sealedNow && d.sinceSnap < s.svc.cfg.SnapshotEvery {
		return
	}
	if err := s.snapshotLocked(); err != nil {
		s.degradeLocked(err)
	}
}

// snapshotLocked writes the current state as the next snapshot file
// and prunes all but the newest two.
func (s *Session) snapshotLocked() error {
	d := s.dur
	data := s.encodeSnapshotLocked()
	if err := storage.WriteFileDurable(filepath.Join(d.dir, snapName(d.snapSeq)), data); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	d.snapOffset = d.wal.Offset()
	d.snapSeq++
	d.sinceSnap = 0
	s.svc.mSnapshots.Inc()
	s.pruneSnapshotsLocked()
	return nil
}

// pruneSnapshotsLocked removes snapshots older than the newest two.
// Failures are ignored: stale files cost disk, not correctness, and
// the next prune retries.
func (s *Session) pruneSnapshotsLocked() {
	entries, err := os.ReadDir(s.dur.dir)
	if err != nil {
		return
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := snapSeqOf(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) <= 2 {
		return
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs[2:] {
		_ = os.Remove(filepath.Join(s.dur.dir, snapName(seq)))
	}
}

// retire is the durable tail of the worker: on eviction it passivates
// the session (final snapshot, so a reactivation or restart replays
// zero records) or — for an explicit delete — removes its directory.
// Drain takes the same path, which is what makes SIGTERM→restart
// replay-free.
func (s *Session) retire() {
	s.mu.Lock()
	if d := s.dur; d != nil {
		switch {
		case s.dropDisk:
			d.closeLocked()
			_ = storage.RemoveDurable(d.dir)
		case d.degraded:
			// Nothing to flush: the WAL already holds the last committed
			// batch, and writing more would use the failing medium. The
			// session leaves memory, so it no longer counts as degraded —
			// a restart recovers it clean from its last committed state.
			s.svc.mDegraded.Add(-1)
			s.svc.degradedCount.Add(-1)
		default:
			if d.wal.Offset() != d.snapOffset || d.snapSeq == 1 {
				if err := s.snapshotLocked(); err != nil {
					s.degradeLocked(err)
				}
			}
			d.closeLocked()
		}
	}
	s.mu.Unlock()
	if s.dur != nil {
		s.svc.retiredDone(s)
	}
	close(s.workerDone)
}

// retiredDone removes the session from the shard's retiring set; a
// waiting reactivation then finds the directory free to load.
func (s *Service) retiredDone(sess *Session) {
	sh := s.shardFor(sess.ID)
	sh.mu.Lock()
	if sh.retired[sess.ID] == sess {
		delete(sh.retired, sess.ID)
	}
	sh.mu.Unlock()
}

// RecoverStats summarizes a startup recovery scan.
type RecoverStats struct {
	// Sessions is the number of sessions brought back.
	Sessions int
	// Records and Events count what the WAL replay re-applied.
	Records int64
	Events  int64
	// Truncations counts torn or corrupt WAL tails cut off.
	Truncations int
	// QuarantinedSnapshots counts snapshot files renamed *.corrupt.
	QuarantinedSnapshots int
	// QuarantinedSessions counts session directories renamed *.corrupt
	// because their meta.json was unreadable.
	QuarantinedSessions int
}

// Recover scans the data directory and restores every session found
// there. Call it once, after New and before serving traffic. Recovery
// is conservative: a session that cannot be restored is quarantined
// (directory renamed *.corrupt), never silently dropped, and never
// stops the others from recovering.
func (s *Service) Recover() (RecoverStats, error) {
	var st RecoverStats
	if !s.durable() {
		return st, nil
	}
	root := s.sessionsRoot()
	entries, err := os.ReadDir(root)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return st, nil
		}
		return st, fmt.Errorf("recover: %w", err)
	}
	// Sweep import leftovers before loading. A crash mid-import can
	// leave a staged image ("#import#*": never installed, safe to drop)
	// or a displaced copy ("#old#<id>": the import renamed the local
	// copy aside but died before or after renaming its replacement in).
	// If the session directory exists the import won and the displaced
	// copy is covered state; if not, the displaced copy is the only
	// copy — restore it.
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || validSessionID(name) {
			continue
		}
		switch {
		case strings.HasPrefix(name, "#import#"):
			_ = os.RemoveAll(filepath.Join(root, name))
		case strings.HasPrefix(name, "#old#"):
			id := strings.TrimPrefix(name, "#old#")
			if !validSessionID(id) {
				continue
			}
			if _, err := os.Stat(filepath.Join(root, id)); errors.Is(err, os.ErrNotExist) {
				_ = os.Rename(filepath.Join(root, name), filepath.Join(root, id))
			} else {
				_ = os.RemoveAll(filepath.Join(root, name))
			}
		}
	}
	entries, err = os.ReadDir(root)
	if err != nil {
		return st, fmt.Errorf("recover: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !validSessionID(e.Name()) {
			continue
		}
		id := e.Name()
		sess, ls, err := s.loadSession(id)
		st.Truncations += ls.truncations
		st.QuarantinedSnapshots += ls.quarantinedSnaps
		if err != nil {
			// Unrecoverable shell (bad meta.json): quarantine the whole
			// directory so the bytes survive for forensics.
			_ = os.Rename(filepath.Join(root, id), filepath.Join(root, id+".corrupt"))
			st.QuarantinedSessions++
			continue
		}
		if !s.install(sess) {
			// Impossible during single-threaded startup; be safe anyway.
			sess.mu.Lock()
			sess.dur.closeLocked()
			sess.mu.Unlock()
			continue
		}
		st.Sessions++
		st.Records += ls.records
		st.Events += ls.events
	}
	return st, nil
}

type loadStats struct {
	records          int64
	events           int64
	truncations      int
	quarantinedSnaps int
}

// loadSession rebuilds one session from its directory: newest valid
// snapshot (corrupt ones quarantined), then the WAL tail replayed
// through the exact apply path live ingestion uses, then a torn tail
// truncated. The returned session is not yet installed or running.
func (s *Service) loadSession(id string) (*Session, loadStats, error) {
	var ls loadStats
	dir := s.sessionDir(id)
	metaRaw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, ls, fmt.Errorf("load %q: meta: %w", id, err)
	}
	var meta sessionMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return nil, ls, fmt.Errorf("load %q: meta: %w", id, err)
	}
	if meta.N < 1 || meta.N > s.cfg.MaxProcs {
		return nil, ls, fmt.Errorf("load %q: meta: process count %d out of range", id, meta.N)
	}

	sess, err := newSession(s, id, meta.N)
	if err != nil {
		return nil, ls, fmt.Errorf("load %q: %w", id, err)
	}
	if !meta.Created.IsZero() {
		sess.created = meta.Created
	}

	// Newest valid snapshot wins; invalid ones are renamed aside and the
	// scan falls back to the previous (a longer replay, not data loss).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, ls, fmt.Errorf("load %q: %w", id, err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := snapSeqOf(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	var snap *snapState
	nextSeq := uint64(1)
	if len(seqs) > 0 {
		nextSeq = seqs[0] + 1
	}
	for _, seq := range seqs {
		path := filepath.Join(dir, snapName(seq))
		data, err := os.ReadFile(path)
		if err == nil {
			if snap, err = decodeSnapshot(data); err == nil && snap.builder.N() == meta.N && snap.inc.N() == meta.N {
				break
			}
			snap = nil
		}
		_ = os.Rename(path, path+".corrupt")
		ls.quarantinedSnaps++
		s.mSnapQuarantined.Inc()
	}

	var from int64
	if snap != nil {
		sess.builder = snap.builder
		sess.inc = snap.inc
		sess.msgs = snap.msgs
		sess.usedMsg = snap.usedMsg
		sess.prodSeq = snap.prodSeq
		sess.applied = snap.applied
		sess.sealed = snap.sealed
		sess.failErr = snap.failErr
		s.observeInc(sess.inc)
		from = snap.walOffset
	}

	// Replay. The session is unpublished, so no lock is needed; apply
	// errors are deterministic re-poisonings, not replay failures. A
	// record that passes its CRC but does not decode is corruption the
	// frame missed: replay stops before it and the tail is cut there.
	walPath := filepath.Join(dir, "wal.log")
	start := time.Now()
	var replayed int64 // frame bytes consumed by decodable records
	var badRecord bool
	end, torn, err := wal.ScanFrom(walPath, from, func(payload []byte) error {
		events, seal, producer, seq, derr := decodeBatchRecord(payload)
		if derr != nil {
			badRecord = true
			return derr
		}
		sess.applyBatchLocked(events, seal)
		sess.noteProducerLocked(producer, seq)
		replayed += int64(8 + len(payload))
		ls.records++
		ls.events += int64(len(events))
		s.mWALReplayRecords.Inc()
		return nil
	})
	if err != nil && !badRecord {
		return nil, ls, fmt.Errorf("load %q: replay: %w", id, err)
	}
	if badRecord {
		end, torn = from+replayed, true
	}
	if torn {
		if err := wal.Truncate(walPath, end); err != nil {
			return nil, ls, fmt.Errorf("load %q: %w", id, err)
		}
		ls.truncations++
		s.mWALTruncations.Inc()
	}
	s.hWALReplay.Observe(time.Since(start).Seconds())

	l, err := wal.OpenAppend(walPath)
	if err != nil {
		return nil, ls, fmt.Errorf("load %q: %w", id, err)
	}
	sess.dur = &durableSession{
		dir:        dir,
		wal:        l,
		snapSeq:    nextSeq,
		snapOffset: from,
		sinceSnap:  int(ls.events),
	}
	// Reseed the live dedup watermark from the persisted one: a
	// resuming producer is told exactly where the durable record ends
	// and replays from there, no more and no less.
	if len(sess.prodSeq) > 0 {
		sess.strmSeq = make(map[string]uint64, len(sess.prodSeq))
		for p, seq := range sess.prodSeq {
			sess.strmSeq[p] = seq
		}
	}
	return sess, ls, nil
}

// install publishes a loaded session and starts its worker; it reports
// false if the id is already live (the caller discards the loaded
// copy).
func (s *Service) install(sess *Session) bool {
	sh := s.shardFor(sess.ID)
	sh.mu.Lock()
	if _, ok := sh.sessions[sess.ID]; ok {
		sh.mu.Unlock()
		return false
	}
	sh.sessions[sess.ID] = sess
	sh.mu.Unlock()
	s.workers.Add(1)
	go sess.run()
	s.mSessions.Add(1)
	return true
}

// activate brings a passivated session back from disk on first touch.
// A singleflight per id prevents double loads; a session mid-retirement
// is waited for (its final snapshot must land before the directory is
// read).
func (s *Service) activate(id string) (*Session, error) {
	for {
		if s.draining.Load() {
			return nil, ErrDraining
		}
		sh := s.shardFor(id)
		sh.mu.RLock()
		if sess, ok := sh.sessions[id]; ok {
			sh.mu.RUnlock()
			return sess, nil
		}
		retiring := sh.retired[id]
		sh.mu.RUnlock()
		if retiring != nil {
			<-retiring.workerDone
			continue
		}

		s.loadMu.Lock()
		ch, inFlight := s.loads[id]
		if inFlight {
			s.loadMu.Unlock()
			<-ch
			continue
		}
		ch = make(chan struct{})
		s.loads[id] = ch
		s.loadMu.Unlock()

		sess, err := s.activateLocked(id)

		s.loadMu.Lock()
		delete(s.loads, id)
		s.loadMu.Unlock()
		close(ch)
		if err != nil || sess != nil {
			return sess, err
		}
		// Lost a race with a concurrent create/recover; retry the lookup.
	}
}

// activateLocked runs under the id's singleflight: it re-checks
// liveness, loads the directory, and installs the session.
func (s *Service) activateLocked(id string) (*Session, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	sess, ok := sh.sessions[id]
	retiring := sh.retired[id]
	sh.mu.RUnlock()
	if ok {
		return sess, nil
	}
	if retiring != nil {
		return nil, nil // retry outside the singleflight
	}
	if _, err := os.Stat(s.sessionDir(id)); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	loaded, _, err := s.loadSession(id)
	if err != nil {
		return nil, fmt.Errorf("%w: %q: unrecoverable: %v", ErrNoSession, id, err)
	}
	if !s.install(loaded) {
		loaded.mu.Lock()
		loaded.dur.closeLocked()
		loaded.mu.Unlock()
		return nil, nil // someone else won; retry
	}
	s.mReactivated.Inc()
	return loaded, nil
}

// dropPassivated deletes the on-disk state of a session that is not
// live (explicit DELETE of a passivated session). It waits out an
// in-flight retirement and holds the id's singleflight so it cannot
// race a reactivation.
func (s *Service) dropPassivated(id string) bool {
	for {
		sh := s.shardFor(id)
		sh.mu.RLock()
		_, live := sh.sessions[id]
		retiring := sh.retired[id]
		sh.mu.RUnlock()
		if live {
			return false // re-appeared; caller's Evict already missed it
		}
		if retiring != nil {
			<-retiring.workerDone
			continue
		}

		s.loadMu.Lock()
		ch, inFlight := s.loads[id]
		if inFlight {
			s.loadMu.Unlock()
			<-ch
			continue
		}
		ch = make(chan struct{})
		s.loads[id] = ch
		s.loadMu.Unlock()

		_, err := os.Stat(s.sessionDir(id))
		existed := err == nil
		if existed {
			_ = storage.RemoveDurable(s.sessionDir(id))
		}

		s.loadMu.Lock()
		delete(s.loads, id)
		s.loadMu.Unlock()
		close(ch)
		return existed
	}
}
