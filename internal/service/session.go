package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/recovery"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/storage"
)

// Sentinel errors of the session state machine; the HTTP layer maps
// them to status codes (429, 409, 410).
var (
	// ErrBackpressure means the session's ingestion queue is full; the
	// client should retry after a moment.
	ErrBackpressure = errors.New("session queue full")
	// ErrSealed means the session no longer accepts events.
	ErrSealed = errors.New("session is sealed")
	// ErrFailed wraps the apply error that poisoned the session.
	ErrFailed = errors.New("session failed")
	// ErrClosed means the session was evicted or the service drained.
	ErrClosed = errors.New("session closed")
)

// batch is one unit of work on a session queue: a slice of events to
// apply, a seal request, or a pure barrier (both nil/false). When done
// is non-nil the worker reports completion on it (buffered, so the
// worker never blocks on a caller that gave up); when notify is non-nil
// the worker invokes it after processing — the async counterpart of
// done, used by the ingest paths to release pooled event buffers and by
// the stream layer to emit acks. notify must not block.
type batch struct {
	events []Event
	seal   bool
	done   chan error
	notify func(error)
	gate   chan struct{} // test hook: the worker parks here before processing

	// producer/seq identify a stream frame (EnqueueSeq); they ride the
	// WAL record so the dedup watermark is as durable as the events it
	// guards. seq 0 means the batch did not come from the stream wire.
	producer string
	seq      uint64
}

// Session is one tenant's live RDT analysis: a model.Builder and an
// rgraph.Incremental fed the same events in lockstep, so the service
// can serve both incremental verdicts and the full pattern-so-far. All
// mutation flows through the queue and is applied by the single worker
// goroutine; queries take the mutex directly.
type Session struct {
	// ID is the session identifier (immutable).
	ID string
	// N is the process count (immutable).
	N int

	svc     *Service
	queue   chan batch
	created time.Time

	// workerDone closes when the worker has exited — for a durable
	// session, after its final snapshot landed (or its directory was
	// removed), so reactivation can safely wait on it.
	workerDone chan struct{}

	lastActive atomic.Int64 // unix nanoseconds of the last API touch

	// Stream-ingest dedup state: the highest frame sequence accepted per
	// producer. Held outside mu so the check-and-enqueue of EnqueueSeq is
	// atomic across concurrent connections without ordering against the
	// apply lock. On a durable session the watermark is reseeded from
	// prodSeq (the persisted mirror) at load, so a reconnecting producer
	// resumes its numbering across passivation, restart, and handoff.
	strmMu  sync.Mutex
	strmSeq map[string]uint64

	mu       sync.Mutex
	closed   bool // queue closed; no further enqueues
	sealed   bool
	failErr  error // first apply error; poisons further ingestion
	dropDisk bool  // explicit delete: the worker removes the directory
	dur      *durableSession
	builder  *model.Builder
	inc      *rgraph.Incremental
	msgs     map[int]msgRef // client message id -> handles, in flight
	usedMsg  map[int]bool   // every client message id ever sent
	applied  int64          // events applied
	// prodSeq mirrors strmSeq for the frames that made it into the WAL:
	// the worker advances it after a successful append, snapshots carry
	// it, and replay rebuilds it — which is what makes stream dedup
	// exactly-once across crash recovery and shard handoff.
	prodSeq map[string]uint64
}

// msgRef pairs the two internal handles a client message id maps to.
// Builder and Incremental assign handles in the same order, but keeping
// both avoids relying on that coincidence.
type msgRef struct {
	builder int
	inc     int
}

func newSession(svc *Service, id string, n int) (*Session, error) {
	inc, err := rgraph.NewIncremental(n)
	if err != nil {
		return nil, err
	}
	s := &Session{
		ID:         id,
		N:          n,
		svc:        svc,
		queue:      make(chan batch, svc.cfg.QueueDepth),
		workerDone: make(chan struct{}),
		created:    svc.clock.Now(),
		builder:    model.NewBuilder(n),
		inc:        inc,
		msgs:       make(map[int]msgRef),
		usedMsg:    make(map[int]bool),
	}
	s.touch()
	svc.observeInc(inc)
	return s, nil
}

// observeInc routes a checker's violations into the service's metrics
// and tracer. Recovery calls it again for a checker decoded from a
// snapshot (which replaces the one newSession wired up).
func (svc *Service) observeInc(inc *rgraph.Incremental) {
	inc.OnViolation(func(v rgraph.Violation) {
		svc.mViolations.Inc()
		if svc.cfg.Tracer == nil {
			// Formatting the violation (v.String allocates) costs more
			// than the rest of the callback; don't pay it to feed a
			// discarded event.
			return
		}
		svc.cfg.Tracer.Record(obs.Event{
			Type:   obs.EventViolation,
			Proc:   int(v.From.Proc),
			Peer:   int(v.To.Proc),
			Value:  v.From.Index,
			Detail: v.String(),
		})
	})
}

// touch refreshes the idle-eviction clock.
func (s *Session) touch() { s.lastActive.Store(s.svc.clock.Now().UnixNano()) }

// run is the session worker: it drains the queue until the session is
// closed, applying every batch in arrival order, then retires the
// session (for a durable one: final snapshot or directory removal).
func (s *Session) run() {
	defer s.svc.workers.Done()
	for b := range s.queue {
		s.process(b)
	}
	s.retire()
}

// process handles one batch with write-ahead ordering: a mutating
// batch is framed, appended, and fsync'd before any of it is applied,
// so the medium never lags memory. A persistence failure degrades the
// session and the batch is NOT applied.
func (s *Session) process(b batch) {
	if b.gate != nil {
		<-b.gate
	}
	s.mu.Lock()
	var err error
	mutates := (len(b.events) > 0 && !s.sealed && s.failErr == nil) || (b.seal && !s.sealed)
	if s.dur != nil && mutates {
		if s.dur.degraded {
			err = fmt.Errorf("%w: %v", ErrDegraded, s.dur.degradedErr)
		} else {
			err = s.persistLocked(b.events, b.seal, b.producer, b.seq)
		}
	}
	if err == nil {
		err = s.applyBatchLocked(b.events, b.seal)
		if s.dur != nil {
			if testHookApplied != nil && mutates {
				testHookApplied(s.ID)
			}
			s.maybeSnapshotLocked(mutates && b.seal && s.sealed)
		}
	}
	if err == nil && s.dur != nil && s.dur.degraded {
		// Barriers (Flush, Seal) on a degraded session report the
		// persistence failure even when the batch itself is a no-op, so
		// async producers learn their earlier batches were dropped.
		err = fmt.Errorf("%w: %v", ErrDegraded, s.dur.degradedErr)
	}
	s.mu.Unlock()
	if b.done != nil {
		b.done <- err
	}
	if b.notify != nil {
		b.notify(err)
	}
}

// applyBatchLocked is the single apply path, shared verbatim by live
// ingestion and WAL replay — which is what makes replay bit-identical.
func (s *Session) applyBatchLocked(events []Event, seal bool) error {
	var err error
	for _, ev := range events {
		if err = s.applyLocked(ev); err != nil {
			break
		}
	}
	if err == nil && seal && !s.sealed {
		s.inc.Seal()
		s.sealed = true
	}
	return err
}

// applyLocked applies one event to both the builder and the incremental
// checker. The first error poisons the session: events already applied
// cannot be unwound, so a partially applied stream must not pretend to
// be a coherent run.
func (s *Session) applyLocked(ev Event) error {
	if s.sealed {
		s.svc.reject(reasonSealed, 1)
		return ErrSealed
	}
	if s.failErr != nil {
		s.svc.reject(reasonFailed, 1)
		return fmt.Errorf("%w: %v", ErrFailed, s.failErr)
	}
	if err := s.applyOneLocked(ev); err != nil {
		s.failErr = err
		s.svc.reject(reasonInvalid, 1)
		return fmt.Errorf("%w: %v", ErrFailed, err)
	}
	s.applied++
	s.svc.mIngested.Inc()
	return nil
}

func (s *Session) applyOneLocked(ev Event) error {
	switch ev.Op {
	case OpCheckpoint:
		kind, err := ev.checkpointKind()
		if err != nil {
			return err
		}
		if int(ev.Proc) >= s.N {
			return fmt.Errorf("checkpoint: process %d out of range [0,%d)", ev.Proc, s.N)
		}
		if s.inc.NumCheckpoints() >= s.svc.cfg.MaxCheckpoints {
			return fmt.Errorf("checkpoint limit %d reached; seal the session", s.svc.cfg.MaxCheckpoints)
		}
		_, tdv, err := s.inc.Checkpoint(model.ProcID(ev.Proc))
		if err != nil {
			return err
		}
		s.builder.Checkpoint(model.ProcID(ev.Proc), kind, tdv)
		return nil
	case OpSend:
		if ev.Proc >= s.N || ev.Peer >= s.N {
			return fmt.Errorf("send %d -> %d: process out of range [0,%d)", ev.Proc, ev.Peer, s.N)
		}
		if ev.Proc == ev.Peer {
			return fmt.Errorf("send %d -> %d: a process cannot message itself", ev.Proc, ev.Peer)
		}
		if s.usedMsg[ev.Msg] {
			return fmt.Errorf("send: message id %d already used", ev.Msg)
		}
		ih, err := s.inc.Send(model.ProcID(ev.Proc), model.ProcID(ev.Peer))
		if err != nil {
			return err
		}
		bh := s.builder.Send(model.ProcID(ev.Proc), model.ProcID(ev.Peer))
		s.usedMsg[ev.Msg] = true
		s.msgs[ev.Msg] = msgRef{builder: bh, inc: ih}
		return nil
	case OpDeliver:
		ref, ok := s.msgs[ev.Msg]
		if !ok {
			return fmt.Errorf("deliver: message id %d unknown or already delivered", ev.Msg)
		}
		if err := s.inc.Deliver(ref.inc); err != nil {
			return err
		}
		delete(s.msgs, ev.Msg)
		return s.builder.Deliver(ref.builder)
	default:
		return fmt.Errorf("unknown op %q", ev.Op)
	}
}

// enqueue places a batch on the queue without ever blocking: a full
// queue is backpressure the caller reports to the client. Holding mu
// across the non-blocking send makes the close in closeQueue safe.
func (s *Session) enqueue(b batch) error {
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(b.events) > 0 {
		if s.sealed {
			s.svc.reject(reasonSealed, len(b.events))
			return ErrSealed
		}
		if s.failErr != nil {
			s.svc.reject(reasonFailed, len(b.events))
			return fmt.Errorf("%w: %v", ErrFailed, s.failErr)
		}
	}
	// A degraded session cannot make new mutations durable; reject them
	// up front (pure barriers still pass — reads remain served).
	if (len(b.events) > 0 || b.seal) && s.dur != nil && s.dur.degraded {
		s.svc.reject(reasonDegraded, max(len(b.events), 1))
		return fmt.Errorf("%w: %v", ErrDegraded, s.dur.degradedErr)
	}
	select {
	case s.queue <- b:
		return nil
	default:
		// Two series: the per-event rejection breakdown and the plain
		// request-level backpressure counter alert rules key on.
		s.svc.mBackpressure.Inc()
		s.svc.reject(reasonBackpressure, max(len(b.events), 1))
		return ErrBackpressure
	}
}

// Enqueue submits events for asynchronous application. It returns
// ErrBackpressure when the queue is full, ErrSealed/ErrFailed/ErrClosed
// when the session no longer ingests. Acceptance is not application: an
// event racing a concurrent seal may still be rejected by the worker.
func (s *Session) Enqueue(events []Event) error {
	return s.enqueue(batch{events: events})
}

// EnqueueNotify is Enqueue with a completion callback: when the batch
// has been accepted (nil return), notify runs in the session worker
// after the batch is applied (or rejected at apply time), with the apply
// error. Callers use it to recycle the events slice — the session
// retains it only until notify fires — and to order acks after
// application. notify must not block; on a non-nil return it never runs.
func (s *Session) EnqueueNotify(events []Event, notify func(error)) error {
	return s.enqueue(batch{events: events, notify: notify})
}

// ProducerSeq returns the highest frame sequence accepted from producer
// (0 before the first frame) — the value a resuming stream client
// replays from.
func (s *Session) ProducerSeq(producer string) uint64 {
	s.strmMu.Lock()
	defer s.strmMu.Unlock()
	return s.strmSeq[producer]
}

// ErrSeqGap means a producer skipped ahead of its accepted sequence —
// frames were lost in a way TCP ordering cannot explain, so the
// connection is broken by protocol.
var ErrSeqGap = errors.New("sequence gap")

// EnqueueSeq enqueues one stream frame with at-least-once dedup: seq
// numbers a producer's mutating frames contiguously from 1. A frame one
// past the accepted sequence is enqueued (advancing the sequence only
// when acceptance succeeds, so a backpressured frame retries with the
// same seq); a frame at or below it is a replay of something already
// accepted — possibly not yet applied — and is reported as a duplicate
// with no effect; a frame further ahead fails with ErrSeqGap. seal
// marks a seal frame (its events must be nil). notify follows
// EnqueueNotify semantics and never runs for duplicates.
func (s *Session) EnqueueSeq(producer string, seq uint64, events []Event, seal bool, notify func(error)) (dup bool, err error) {
	s.strmMu.Lock()
	defer s.strmMu.Unlock()
	last := s.strmSeq[producer]
	switch {
	case seq <= last:
		return true, nil
	case seq > last+1:
		return false, fmt.Errorf("%w: producer %q sent seq %d after %d", ErrSeqGap, producer, seq, last)
	}
	if err := s.enqueue(batch{events: events, seal: seal, notify: notify, producer: producer, seq: seq}); err != nil {
		return false, err
	}
	if s.strmSeq == nil {
		s.strmSeq = make(map[string]uint64)
	}
	s.strmSeq[producer] = seq
	return false, nil
}

// Flush waits until every batch enqueued before it has been applied: a
// read barrier for verdict queries that must observe all acknowledged
// events. The barrier itself is subject to backpressure.
func (s *Session) Flush(ctx context.Context) error {
	done := make(chan error, 1)
	if err := s.enqueue(batch{done: done}); err != nil {
		return err
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Seal finalizes the session the way Builder.FinalizeLossy ends a run:
// in-flight messages are dropped and event-bearing open intervals get
// final checkpoints. Sealing is ordered through the queue, so every
// previously acknowledged batch is applied first. Idempotent.
func (s *Session) Seal(ctx context.Context) error {
	s.mu.Lock()
	sealed := s.sealed
	s.mu.Unlock()
	if sealed {
		return nil
	}
	done := make(chan error, 1)
	if err := s.enqueue(batch{seal: true, done: done}); err != nil {
		return err
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// closeQueue stops ingestion permanently (eviction, drain). The worker
// drains batches already accepted, then exits.
func (s *Session) closeQueue() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
}

// CkptRef names a checkpoint on the wire.
type CkptRef struct {
	Proc  int `json:"proc"`
	Index int `json:"index"`
}

// ViolationInfo renders one untrackable R-path on the wire.
type ViolationInfo struct {
	From   CkptRef `json:"from"`
	To     CkptRef `json:"to"`
	String string  `json:"string"`
}

func violationInfo(v rgraph.Violation) ViolationInfo {
	return ViolationInfo{
		From:   CkptRef{Proc: int(v.From.Proc), Index: v.From.Index},
		To:     CkptRef{Proc: int(v.To.Proc), Index: v.To.Index},
		String: v.String(),
	}
}

// Session states reported by Verdict and the session list.
const (
	StateActive = "active"
	StateSealed = "sealed"
	StateFailed = "failed"
)

// Verdict is the live RDT verdict of a session: the seal-now report of
// the incremental checker plus session bookkeeping.
type Verdict struct {
	Session        string          `json:"session"`
	N              int             `json:"n"`
	State          string          `json:"state"`
	Error          string          `json:"error,omitempty"`
	EventsApplied  int64           `json:"events_applied"`
	Checkpoints    int             `json:"checkpoints"`
	InFlight       int             `json:"in_flight"`
	RDT            bool            `json:"rdt"`
	RPathPairs     int             `json:"rpath_pairs"`
	TrackablePairs int             `json:"trackable_pairs"`
	Violations     []ViolationInfo `json:"violations,omitempty"`
	FirstViolation *ViolationInfo  `json:"first_violation,omitempty"`
}

// Verdict evaluates the seal-now pattern (see Incremental.Report),
// listing at most maxViolations untrackable pairs (<= 0 for the service
// default).
func (s *Session) Verdict(maxViolations int) *Verdict {
	if maxViolations <= 0 {
		maxViolations = s.svc.cfg.MaxViolations
	}
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := s.inc.Report(maxViolations)
	v := &Verdict{
		Session:        s.ID,
		N:              s.N,
		State:          s.stateLocked(),
		EventsApplied:  s.applied,
		Checkpoints:    s.inc.NumCheckpoints(),
		InFlight:       s.inc.InFlight(),
		RDT:            rep.RDT,
		RPathPairs:     rep.RPathPairs,
		TrackablePairs: rep.TrackablePairs,
	}
	if s.failErr != nil {
		v.Error = s.failErr.Error()
	} else if s.dur != nil && s.dur.degraded {
		v.Error = fmt.Sprintf("%v: %v", ErrDegraded, s.dur.degradedErr)
	}
	for _, viol := range rep.Violations {
		v.Violations = append(v.Violations, violationInfo(viol))
	}
	if len(rep.Violations) > 0 {
		first := violationInfo(rep.Violations[0])
		v.FirstViolation = &first
	}
	return v
}

func (s *Session) stateLocked() string {
	switch {
	case s.failErr != nil:
		return StateFailed
	case s.dur != nil && s.dur.degraded:
		return StateDegraded
	case s.sealed:
		return StateSealed
	default:
		return StateActive
	}
}

// Info is one row of the session list.
type Info struct {
	ID            string    `json:"id"`
	N             int       `json:"n"`
	State         string    `json:"state"`
	EventsApplied int64     `json:"events_applied"`
	Checkpoints   int       `json:"checkpoints"`
	QueuedBatches int       `json:"queued_batches"`
	Created       time.Time `json:"created"`
	LastActive    time.Time `json:"last_active"`
}

// Info returns the session-list row.
func (s *Session) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Info{
		ID:            s.ID,
		N:             s.N,
		State:         s.stateLocked(),
		EventsApplied: s.applied,
		Checkpoints:   s.inc.NumCheckpoints(),
		QueuedBatches: len(s.queue),
		Created:       s.created,
		LastActive:    time.Unix(0, s.lastActive.Load()),
	}
}

// Snapshot finalizes a copy of the pattern-so-far (FinalizeLossy
// semantics: final checkpoints close event-bearing intervals, in-flight
// messages are reported as lost), leaving the session ingesting.
func (s *Session) Snapshot() (*model.Pattern, []model.LostMessage, error) {
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.builder.Snapshot()
}

// Explain finalizes a lockstep snapshot of the pattern-so-far and
// derives a minimal witness — the concrete non-causal zigzag chain —
// for each of the incremental checker's violations (at most
// maxViolations of them; <= 0 for the service default). The pattern is
// returned with the witnesses so callers can render them (DOT, JSON).
func (s *Session) Explain(maxViolations int) (*model.Pattern, []*rgraph.Witness, error) {
	if maxViolations <= 0 {
		maxViolations = s.svc.cfg.MaxViolations
	}
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	p, _, err := s.builder.Snapshot()
	if err != nil {
		return nil, nil, err
	}
	_, ws, err := s.inc.Explain(p, maxViolations)
	if err != nil {
		return nil, nil, err
	}
	return p, ws, nil
}

// Line computes the recovery line from the session's closed
// checkpoints: each process is bounded by its latest taken checkpoint
// and the stored dependency vectors drive the fixpoint, exactly as
// recovery.Manager does over a real checkpoint store.
func (s *Session) Line() (*recovery.Plan, error) {
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	mgr, err := recovery.NewManager(incStore{inc: s.inc}, s.N)
	if err != nil {
		return nil, err
	}
	mgr.Observe(s.svc.cfg.Registry, s.svc.cfg.Tracer)
	bounds := make(model.GlobalCheckpoint, s.N)
	for i := range bounds {
		bounds[i] = s.inc.NextIndex(model.ProcID(i)) - 1
	}
	return mgr.LineFrom(bounds)
}

// incStore adapts the incremental checker's recorded dependency vectors
// to the storage.Store interface the recovery manager reads (it only
// calls Get and Indexes; writes are rejected).
type incStore struct {
	inc *rgraph.Incremental
}

var _ storage.Store = incStore{}

func (st incStore) Get(proc, index int) (storage.Checkpoint, error) {
	tdv := st.inc.TDVAt(model.CkptID{Proc: model.ProcID(proc), Index: index})
	if tdv == nil {
		return storage.Checkpoint{}, fmt.Errorf("process %d index %d: %w", proc, index, storage.ErrNotFound)
	}
	return storage.Checkpoint{Proc: proc, Index: index, TDV: tdv}, nil
}

func (st incStore) Latest(proc int) (storage.Checkpoint, error) {
	return st.Get(proc, st.inc.NextIndex(model.ProcID(proc))-1)
}

func (st incStore) Indexes(proc int) ([]int, error) {
	out := make([]int, st.inc.NextIndex(model.ProcID(proc)))
	for i := range out {
		out[i] = i
	}
	return out, nil
}

func (st incStore) Put(storage.Checkpoint) error { return errors.New("session store is read-only") }
func (st incStore) Delete(int, int) error        { return errors.New("session store is read-only") }
