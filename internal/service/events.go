// Package service is the multi-session RDT checking service: it accepts
// streaming checkpoint/send/deliver events from many concurrent client
// sessions, maintains per-session incremental RDT state (an
// rgraph.Incremental fed in lockstep with a model.Builder), and serves
// live verdicts, recovery-line queries, and pattern dumps over HTTP.
//
// Sessions are sharded by id hash; each session owns a bounded ingestion
// queue drained by one worker goroutine, so event application is
// serialized per session while sessions proceed in parallel. A full
// queue surfaces as backpressure (HTTP 429 + Retry-After), never as
// blocking the ingest handler.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/rdt-go/rdt/internal/model"
)

// Event operations accepted on the wire.
const (
	OpCheckpoint = "checkpoint"
	OpSend       = "send"
	OpDeliver    = "deliver"
)

// Event is one streamed session event. The ingest endpoint accepts a
// single event object or an array of them.
//
//   - checkpoint: Proc takes a local checkpoint; Kind is "basic"
//     (default) or "forced".
//   - send: Proc sends message Msg to Peer. Msg is a client-chosen
//     id, unique over the session's lifetime.
//   - deliver: the message Msg is delivered (the destination was fixed
//     at send time, so only the id is needed).
type Event struct {
	Op   string `json:"op"`
	Proc int    `json:"proc"`
	Peer int    `json:"peer,omitempty"`
	Msg  int    `json:"msg,omitempty"`
	Kind string `json:"kind,omitempty"`
}

// ErrBatchTooLarge is wrapped by DecodeEvents when a batch exceeds the
// configured event count.
var ErrBatchTooLarge = errors.New("event batch too large")

// decodeScratch is reusable per-request decode state: the body buffer
// and the event slice. Pooling it removes the two allocations that
// dominate the JSON ingest profile (io.ReadAll's growth chain and the
// batch slice), leaving only encoding/json's own per-event work.
type decodeScratch struct {
	buf    []byte
	events []Event
}

var decodePool = sync.Pool{New: func() any { return new(decodeScratch) }}

// DecodeEvents parses an ingest request body: either one event object
// or a JSON array of events, at most maxBatch of them (0 means the
// DefaultMaxBatch). Only the shape is validated here — process ranges
// and message-id bookkeeping need session state and are checked at
// apply time. Callers bound the reader (the HTTP layer uses
// MaxBytesReader) so a hostile body cannot exhaust memory.
//
// The returned slice is freshly owned by the caller; the hot ingest
// path uses DecodeEventsPooled instead.
func DecodeEvents(r io.Reader, maxBatch int) ([]Event, error) {
	return decodeEventsInto(new(decodeScratch), r, maxBatch)
}

// DecodeEventsPooled is DecodeEvents over pooled scratch: the returned
// events share a recycled backing array, and the caller must invoke
// release — exactly when the events are no longer referenced (for the
// ingest handler: from the batch's completion notify) — to return the
// scratch to the pool. release is idempotent; on error there is nothing
// to release.
func DecodeEventsPooled(r io.Reader, maxBatch int) (events []Event, release func(), err error) {
	sc := decodePool.Get().(*decodeScratch)
	events, err = decodeEventsInto(sc, r, maxBatch)
	if err != nil {
		decodePool.Put(sc)
		return nil, nil, err
	}
	var once sync.Once
	return events, func() { once.Do(func() { decodePool.Put(sc) }) }, nil
}

func decodeEventsInto(sc *decodeScratch, r io.Reader, maxBatch int) ([]Event, error) {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	var err error
	sc.buf, err = readAllInto(sc.buf[:0], r)
	if err != nil {
		return nil, fmt.Errorf("decode events: %w", err)
	}
	trimmed := bytes.TrimSpace(sc.buf)
	if len(trimmed) == 0 {
		return nil, errors.New("decode events: empty body")
	}
	// json reuses existing elements when decoding into spare capacity,
	// and absent keys (omitempty peers, message ids) would inherit the
	// previous request's values — zero the recycled elements first.
	clear(sc.events[:cap(sc.events)])
	events := sc.events[:0]
	if trimmed[0] == '[' {
		if err := strictUnmarshal(trimmed, &events); err != nil {
			return nil, fmt.Errorf("decode events: %w", err)
		}
	} else {
		var ev Event
		if err := strictUnmarshal(trimmed, &ev); err != nil {
			return nil, fmt.Errorf("decode events: %w", err)
		}
		events = append(events, ev)
	}
	sc.events = events
	if len(events) == 0 {
		return nil, errors.New("decode events: empty batch")
	}
	if len(events) > maxBatch {
		return nil, fmt.Errorf("decode events: %w: %d events, limit %d", ErrBatchTooLarge, len(events), maxBatch)
	}
	for i := range events {
		if err := events[i].validateShape(); err != nil {
			return nil, fmt.Errorf("decode events: event %d: %w", i, err)
		}
	}
	return events, nil
}

// readAllInto is io.ReadAll reusing buf's capacity across requests.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	if cap(buf) == 0 {
		buf = make([]byte, 0, 2048)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// strictUnmarshal decodes one JSON value and rejects trailing data, so
// a concatenation of two bodies (a symptom of a confused client) is an
// error instead of a silent half-ingest.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after events")
	}
	return nil
}

// validateShape rejects events no session could accept, regardless of
// its state: unknown operations, unknown checkpoint kinds, negative
// identifiers.
func (ev *Event) validateShape() error {
	switch ev.Op {
	case OpCheckpoint:
		if _, err := ev.checkpointKind(); err != nil {
			return err
		}
	case OpSend, OpDeliver:
		if ev.Kind != "" {
			return fmt.Errorf("op %q does not take a kind", ev.Op)
		}
		if ev.Msg < 0 {
			return fmt.Errorf("message id %d is negative", ev.Msg)
		}
	default:
		return fmt.Errorf("unknown op %q", ev.Op)
	}
	if ev.Proc < 0 {
		return fmt.Errorf("process %d is negative", ev.Proc)
	}
	if ev.Peer < 0 {
		return fmt.Errorf("peer %d is negative", ev.Peer)
	}
	return nil
}

// checkpointKind maps the wire kind to the model kind; streamed
// checkpoints are basic or forced (initial and final checkpoints are
// created by the session itself).
func (ev *Event) checkpointKind() (model.CheckpointKind, error) {
	switch ev.Kind {
	case "", "basic":
		return model.KindBasic, nil
	case "forced":
		return model.KindForced, nil
	default:
		return 0, fmt.Errorf("unknown checkpoint kind %q", ev.Kind)
	}
}
