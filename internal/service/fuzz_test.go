package service

import (
	"strings"
	"testing"
)

// FuzzDecodeEvents hammers the ingest decoder with arbitrary bodies:
// it must never panic, and anything it accepts must satisfy the
// invariants the session apply path assumes (known ops, non-negative
// identifiers, batch within the limit).
func FuzzDecodeEvents(f *testing.F) {
	f.Add(`{"op":"checkpoint","proc":0}`)
	f.Add(`{"op":"checkpoint","proc":2,"kind":"forced"}`)
	f.Add(`[{"op":"send","proc":0,"peer":1,"msg":0},{"op":"deliver","msg":0}]`)
	f.Add(`[]`)
	f.Add(`[{"op":"send","proc":0,"peer":1,"msg":0}`)
	f.Add(`{"op":"send","proc":1e9,"peer":-3,"msg":0.5}`)
	f.Add(`"checkpoint"`)
	f.Add(`nope`)
	f.Add("[" + strings.Repeat(`{"op":"checkpoint","proc":0},`, 32) + `{"op":"checkpoint","proc":0}]`)

	const maxBatch = 16
	f.Fuzz(func(t *testing.T, body string) {
		events, err := DecodeEvents(strings.NewReader(body), maxBatch)
		if err != nil {
			return
		}
		if len(events) == 0 || len(events) > maxBatch {
			t.Fatalf("accepted a batch of %d events (limit %d)", len(events), maxBatch)
		}
		for i, ev := range events {
			if err := ev.validateShape(); err != nil {
				t.Fatalf("accepted event %d fails shape validation: %v", i, err)
			}
			switch ev.Op {
			case OpCheckpoint, OpSend, OpDeliver:
			default:
				t.Fatalf("accepted event %d has unknown op %q", i, ev.Op)
			}
		}
	})
}
