package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
)

// Defaults for the zero Config.
const (
	DefaultShards         = 16
	DefaultQueueDepth     = 256
	DefaultMaxBatch       = 512
	DefaultMaxBody        = 1 << 20 // 1 MiB per ingest request
	DefaultMaxCheckpoints = 1 << 16
	DefaultMaxViolations  = 16
	DefaultMaxProcs       = 1024
	DefaultSweepInterval  = 30 * time.Second
)

// Config tunes a Service. The zero value is usable: every limit falls
// back to its default and idle eviction is off.
type Config struct {
	// Shards is the number of session-map shards (lock striping).
	Shards int
	// QueueDepth bounds each session's ingestion queue, in batches; a
	// full queue is backpressure.
	QueueDepth int
	// MaxBatch bounds the events per ingest request.
	MaxBatch int
	// MaxBody bounds the ingest request body, in bytes.
	MaxBody int64
	// MaxCheckpoints bounds the closed checkpoints per session; beyond
	// it, checkpoint events fail and the client must seal.
	MaxCheckpoints int
	// MaxViolations is the default number of violations listed in a
	// verdict.
	MaxViolations int
	// MaxProcs bounds the process count of a session.
	MaxProcs int
	// IdleTimeout evicts sessions untouched for this long; 0 disables
	// idle eviction.
	IdleTimeout time.Duration
	// SweepInterval is how often the janitor looks for idle sessions.
	SweepInterval time.Duration
	// Registry and Tracer receive the service's metrics and violation
	// events; either may be nil.
	Registry *obs.Registry
	Tracer   *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxBody <= 0 {
		c.MaxBody = DefaultMaxBody
	}
	if c.MaxCheckpoints <= 0 {
		c.MaxCheckpoints = DefaultMaxCheckpoints
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = DefaultMaxViolations
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = DefaultMaxProcs
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = DefaultSweepInterval
	}
	return c
}

// Rejection reasons for the rdt_service_events_rejected_total counter.
const (
	reasonBackpressure = "backpressure"
	reasonInvalid      = "invalid"
	reasonSealed       = "sealed"
	reasonFailed       = "failed"
)

// Service errors the HTTP layer maps to status codes.
var (
	// ErrDraining means the service is shutting down.
	ErrDraining = errors.New("service is draining")
	// ErrSessionExists means the requested session id is taken.
	ErrSessionExists = errors.New("session already exists")
	// ErrNoSession means the session id is unknown.
	ErrNoSession = errors.New("no such session")
)

// Service is the multi-session checker: sharded session state, one
// worker goroutine per session, and a janitor evicting idle sessions.
type Service struct {
	cfg      Config
	shards   []*shard
	workers  sync.WaitGroup
	janitor  sync.WaitGroup
	stop     chan struct{}
	draining atomic.Bool
	drainOne sync.Once

	mSessions     *obs.Gauge
	mCreated      *obs.Counter
	mIngested     *obs.Counter
	mViolations   *obs.Counter
	mBackpressure *obs.Counter
}

type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// New starts a service. Call Drain to stop it.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:           cfg,
		shards:        make([]*shard, cfg.Shards),
		stop:          make(chan struct{}),
		mSessions:     cfg.Registry.Gauge("rdt_service_sessions"),
		mCreated:      cfg.Registry.Counter("rdt_service_sessions_created_total"),
		mIngested:     cfg.Registry.Counter("rdt_service_events_ingested_total"),
		mViolations:   cfg.Registry.Counter("rdt_service_violations_total"),
		mBackpressure: cfg.Registry.Counter("rdt_service_backpressure_total"),
	}
	for i := range s.shards {
		s.shards[i] = &shard{sessions: make(map[string]*Session)}
	}
	if cfg.IdleTimeout > 0 {
		s.janitor.Add(1)
		go s.runJanitor()
	}
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

func (s *Service) reject(reason string, n int) {
	s.cfg.Registry.Counter("rdt_service_events_rejected_total", "reason", reason).Add(int64(n))
}

func (s *Service) shardFor(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// validSessionID accepts ids safe to embed in URL paths and file names.
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

func randomID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// The entropy pool failing is unheard of; fall back to a
		// time-based id rather than refusing service.
		return fmt.Sprintf("s-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(buf[:])
}

// CreateSession registers a session of n processes. An empty id asks
// the service to generate one.
func (s *Service) CreateSession(id string, n int) (*Session, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	if n < 1 || n > s.cfg.MaxProcs {
		return nil, fmt.Errorf("process count %d out of range [1,%d]", n, s.cfg.MaxProcs)
	}
	if id == "" {
		id = randomID()
	} else if !validSessionID(id) {
		return nil, fmt.Errorf("invalid session id %q: want 1-64 characters of [a-zA-Z0-9._-]", id)
	}
	sess, err := newSession(s, id, n)
	if err != nil {
		return nil, err
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.sessions[id]; ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
	}
	sh.sessions[id] = sess
	sh.mu.Unlock()
	s.workers.Add(1)
	go sess.run()
	s.mCreated.Inc()
	s.mSessions.Add(1)
	return sess, nil
}

// Session looks a session up by id.
func (s *Service) Session(id string) (*Session, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	sess, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	return sess, nil
}

// Evict removes a session, stopping its ingestion; batches already
// accepted are still applied before the worker exits. The reason labels
// the eviction counter ("explicit", "idle").
func (s *Service) Evict(id, reason string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	sess, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	sess.closeQueue()
	s.mSessions.Add(-1)
	s.cfg.Registry.Counter("rdt_service_sessions_evicted_total", "reason", reason).Inc()
	return true
}

// Sessions lists every live session, sorted by id.
func (s *Service) Sessions() []Info {
	var all []*Session
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, sess := range sh.sessions {
			all = append(all, sess)
		}
		sh.mu.RUnlock()
	}
	out := make([]Info, 0, len(all))
	for _, sess := range all {
		out = append(out, sess.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SessionCount returns the number of live sessions.
func (s *Service) SessionCount() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return total
}

// Draining reports whether Drain has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

func (s *Service) runJanitor() {
	defer s.janitor.Done()
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sweep()
		}
	}
}

// sweep evicts every session untouched for longer than the idle
// timeout.
func (s *Service) sweep() {
	cut := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
	var idle []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, sess := range sh.sessions {
			if sess.lastActive.Load() < cut {
				idle = append(idle, id)
			}
		}
		sh.mu.RUnlock()
	}
	for _, id := range idle {
		s.Evict(id, "idle")
	}
}

// Drain stops the service gracefully: no new sessions or events are
// accepted, every queue is closed, and Drain waits — up to the context
// deadline — for the workers to apply what was already acknowledged.
// Sessions remain queryable afterwards. Idempotent.
func (s *Service) Drain(ctx context.Context) error {
	s.drainOne.Do(func() {
		s.draining.Store(true)
		close(s.stop)
	})
	s.janitor.Wait()
	for _, sh := range s.shards {
		sh.mu.RLock()
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			sessions = append(sessions, sess)
		}
		sh.mu.RUnlock()
		for _, sess := range sessions {
			sess.closeQueue()
		}
	}
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %w", ctx.Err())
	}
}
