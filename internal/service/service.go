package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/vtime"
)

// Defaults for the zero Config.
const (
	DefaultShards         = 16
	DefaultQueueDepth     = 256
	DefaultMaxBatch       = 512
	DefaultMaxBody        = 1 << 20 // 1 MiB per ingest request
	DefaultMaxCheckpoints = 1 << 16
	DefaultMaxViolations  = 16
	DefaultMaxProcs       = 1024
	DefaultSweepInterval  = 30 * time.Second
	DefaultSnapshotEvery  = 4096
)

// Config tunes a Service. The zero value is usable: every limit falls
// back to its default and idle eviction is off.
type Config struct {
	// Shards is the number of session-map shards (lock striping).
	Shards int
	// QueueDepth bounds each session's ingestion queue, in batches; a
	// full queue is backpressure.
	QueueDepth int
	// MaxBatch bounds the events per ingest request.
	MaxBatch int
	// MaxBody bounds the ingest request body, in bytes.
	MaxBody int64
	// MaxCheckpoints bounds the closed checkpoints per session; beyond
	// it, checkpoint events fail and the client must seal.
	MaxCheckpoints int
	// MaxViolations is the default number of violations listed in a
	// verdict.
	MaxViolations int
	// MaxProcs bounds the process count of a session.
	MaxProcs int
	// IdleTimeout evicts sessions untouched for this long; 0 disables
	// idle eviction. With DataDir set, idle eviction is passivation: the
	// session's state stays on disk and the next touch reactivates it.
	IdleTimeout time.Duration
	// SweepInterval is how often the janitor looks for idle sessions.
	SweepInterval time.Duration
	// DataDir enables durability: every session keeps a write-ahead log
	// and snapshots under DataDir/sessions/<id>/ and survives restarts
	// (call Recover after New). Empty means in-memory only, with
	// behavior identical to previous releases.
	DataDir string
	// SnapshotEvery is the snapshot cadence in applied events.
	SnapshotEvery int
	// Registry and Tracer receive the service's metrics and violation
	// events; either may be nil.
	Registry *obs.Registry
	Tracer   *obs.Tracer
	// Clock drives the janitor's sweep ticker and the idle cut, plus
	// session created/last-active stamps. Nil means the real clock;
	// tests pass a vtime.Virtual to make idle eviction deterministic.
	Clock vtime.Clock
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxBody <= 0 {
		c.MaxBody = DefaultMaxBody
	}
	if c.MaxCheckpoints <= 0 {
		c.MaxCheckpoints = DefaultMaxCheckpoints
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = DefaultMaxViolations
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = DefaultMaxProcs
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = DefaultSweepInterval
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = DefaultSnapshotEvery
	}
	return c
}

// Rejection reasons for the rdt_service_events_rejected_total counter.
const (
	reasonBackpressure = "backpressure"
	reasonInvalid      = "invalid"
	reasonSealed       = "sealed"
	reasonFailed       = "failed"
)

// Service errors the HTTP layer maps to status codes.
var (
	// ErrDraining means the service is shutting down.
	ErrDraining = errors.New("service is draining")
	// ErrSessionExists means the requested session id is taken.
	ErrSessionExists = errors.New("session already exists")
	// ErrNoSession means the session id is unknown.
	ErrNoSession = errors.New("no such session")
)

// MovedError reports that a session belongs to another cluster member.
// The shard gate (see SetGate) returns it for sessions this daemon does
// not own; the HTTP layer answers 307 and the stream layer a MOVED
// error frame, both pointing at the owner's addresses.
type MovedError struct {
	// Owner is the owning member's name; HTTP and Stream are its
	// advertised addresses (Stream may be empty).
	Owner  string
	HTTP   string
	Stream string
}

func (e *MovedError) Error() string {
	return fmt.Sprintf("session moved to member %q (http %s)", e.Owner, e.HTTP)
}

// gateFuncs is the installed shard hook pair (see SetGate).
type gateFuncs struct {
	check func(id string) error
	info  func() any
}

// Service is the multi-session checker: sharded session state, one
// worker goroutine per session, and a janitor evicting idle sessions.
type Service struct {
	cfg       Config
	clock     vtime.Clock
	shards    []*shard
	workers   sync.WaitGroup
	janitor   sync.WaitGroup
	stop      chan struct{}
	draining  atomic.Bool
	drainOne  sync.Once
	unlockOne sync.Once

	// Reactivation/deletion singleflight, keyed by session id.
	loadMu sync.Mutex
	loads  map[string]chan struct{}

	// unlock releases the data-dir lock (durable services only).
	unlock func()

	// gate holds the cluster ownership hook; nil outside shard mode.
	gate atomic.Pointer[gateFuncs]

	degradedCount atomic.Int64

	mSessions     *obs.Gauge
	mCreated      *obs.Counter
	mIngested     *obs.Counter
	mViolations   *obs.Counter
	mBackpressure *obs.Counter

	mWALAppends       *obs.Counter
	mWALAppendBytes   *obs.Counter
	hWALAppend        *obs.Histogram
	mWALReplayRecords *obs.Counter
	hWALReplay        *obs.Histogram
	mWALTruncations   *obs.Counter
	mSnapshots        *obs.Counter
	mSnapQuarantined  *obs.Counter
	mDegraded         *obs.Gauge
	mPassivated       *obs.Counter
	mReactivated      *obs.Counter
}

type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	// retired holds durable sessions evicted from the map whose worker
	// has not yet finished passivating; reactivation waits them out.
	retired map[string]*Session
}

// New starts a service. Call Drain to stop it, and — when DataDir is
// set — Recover right after New to restore persisted sessions. A
// durable service locks its data directory exclusively: a second
// daemon pointed at the same root fails here instead of corrupting
// WALs.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:           cfg,
		clock:         vtime.Or(cfg.Clock),
		shards:        make([]*shard, cfg.Shards),
		stop:          make(chan struct{}),
		loads:         make(map[string]chan struct{}),
		mSessions:     cfg.Registry.Gauge("rdt_service_sessions"),
		mCreated:      cfg.Registry.Counter("rdt_service_sessions_created_total"),
		mIngested:     cfg.Registry.Counter("rdt_service_events_ingested_total"),
		mViolations:   cfg.Registry.Counter("rdt_service_violations_total"),
		mBackpressure: cfg.Registry.Counter("rdt_service_backpressure_total"),

		mWALAppends:       cfg.Registry.Counter("rdt_wal_appends_total"),
		mWALAppendBytes:   cfg.Registry.Counter("rdt_wal_append_bytes_total"),
		hWALAppend:        cfg.Registry.Histogram("rdt_wal_append_seconds", obs.LatencyBuckets),
		mWALReplayRecords: cfg.Registry.Counter("rdt_wal_replay_records_total"),
		hWALReplay:        cfg.Registry.Histogram("rdt_wal_replay_seconds", obs.LatencyBuckets),
		mWALTruncations:   cfg.Registry.Counter("rdt_wal_truncations_total"),
		mSnapshots:        cfg.Registry.Counter("rdt_wal_snapshots_total"),
		mSnapQuarantined:  cfg.Registry.Counter("rdt_wal_snapshots_quarantined_total"),
		mDegraded:         cfg.Registry.Gauge("rdt_service_degraded_sessions"),
		mPassivated:       cfg.Registry.Counter("rdt_service_sessions_passivated_total"),
		mReactivated:      cfg.Registry.Counter("rdt_service_sessions_reactivated_total"),
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			sessions: make(map[string]*Session),
			retired:  make(map[string]*Session),
		}
	}
	if s.durable() {
		if err := os.MkdirAll(s.sessionsRoot(), 0o755); err != nil {
			return nil, fmt.Errorf("create sessions root: %w", err)
		}
		unlock, err := lockDataDir(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		s.unlock = unlock
	}
	if cfg.IdleTimeout > 0 {
		// Arm the ticker here, not in the goroutine: under a virtual
		// clock the janitor must be registered the moment New returns, or
		// an immediate Advance would pass it by.
		t := s.clock.NewTicker(cfg.SweepInterval)
		s.janitor.Add(1)
		go s.runJanitor(t)
	}
	return s, nil
}

// SetGate installs the cluster ownership hook: check runs on every
// session lookup/create with the session id and returns nil when this
// daemon serves it, a *MovedError when another member owns it, or any
// other error to fail the request. It may block (the shard layer pulls
// a moved-in session's state inside it). info, when non-nil, is
// embedded in /healthz as the "shard" field. Install before serving
// traffic; outside shard mode no gate exists and every id is local.
func (s *Service) SetGate(check func(id string) error, info func() any) {
	s.gate.Store(&gateFuncs{check: check, info: info})
}

// CheckGate runs the installed ownership gate for id; nil without one.
func (s *Service) CheckGate(id string) error {
	if g := s.gate.Load(); g != nil && g.check != nil {
		return g.check(id)
	}
	return nil
}

// ShardInfo returns the shard layer's /healthz view (nil outside shard
// mode).
func (s *Service) ShardInfo() any {
	if g := s.gate.Load(); g != nil && g.info != nil {
		return g.info()
	}
	return nil
}

// DegradedCount returns the number of sessions whose persistence
// failed since startup (living or evicted); /healthz surfaces it.
func (s *Service) DegradedCount() int64 { return s.degradedCount.Load() }

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

func (s *Service) reject(reason string, n int) {
	s.cfg.Registry.Counter("rdt_service_events_rejected_total", "reason", reason).Add(int64(n))
}

func (s *Service) shardFor(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// validSessionID accepts ids safe to embed in URL paths and file
// names. "." and ".." would escape the session tree as directory
// names, and a ".corrupt" suffix is reserved for quarantined state.
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	if id == "." || id == ".." || strings.HasSuffix(id, ".corrupt") {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// idSeq disambiguates fallback ids minted in the same instant — a
// wall-clock id alone collides under rapid creation (and always under
// a frozen virtual clock). idNonce keeps fallback ids from different
// processes apart.
var (
	idSeq   atomic.Uint64
	idNonce = uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano())&0xffffffff
)

func randomID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// The entropy pool failing is unheard of; fall back to a
		// counter-based id rather than refusing service.
		return fallbackID()
	}
	return hex.EncodeToString(buf[:])
}

// fallbackID mints a session id without entropy: unique within the
// process by the counter, distinct across processes by the nonce.
func fallbackID() string {
	return fmt.Sprintf("s-%x-%d", idNonce, idSeq.Add(1))
}

// CreateSession registers a session of n processes. An empty id asks
// the service to generate one.
func (s *Service) CreateSession(id string, n int) (*Session, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	if n < 1 || n > s.cfg.MaxProcs {
		return nil, fmt.Errorf("process count %d out of range [1,%d]", n, s.cfg.MaxProcs)
	}
	if id == "" {
		id = randomID()
		// In shard mode a minted id must land on this member, or the
		// client would be redirected to a session it never asked for.
		for tries := 0; s.CheckGate(id) != nil && tries < 128; tries++ {
			id = randomID()
		}
	} else if !validSessionID(id) {
		return nil, fmt.Errorf("invalid session id %q: want 1-64 characters of [a-zA-Z0-9._-]", id)
	}
	if err := s.CheckGate(id); err != nil {
		return nil, err
	}
	sess, err := newSession(s, id, n)
	if err != nil {
		return nil, err
	}
	var loadCh chan struct{}
	if s.durable() {
		// A session's birth is a disk↔memory transition like any other:
		// hold the id's load singleflight across it, or a shard export
		// can read (and ship) the half-born directory while the create
		// goes on to win locally.
		loadCh = s.acquireLoad(id)
		// The Mkdir inside doubles as the existence check: a passivated
		// session owns its directory even while absent from the map.
		if err := s.attachDurable(sess); err != nil {
			s.releaseLoad(id, loadCh)
			return nil, err
		}
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.sessions[id]; ok {
		sh.mu.Unlock()
		if sess.dur != nil {
			sess.dur.closeLocked()
			_ = storage.RemoveDurable(sess.dur.dir)
		}
		if loadCh != nil {
			s.releaseLoad(id, loadCh)
		}
		return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
	}
	sh.sessions[id] = sess
	sh.mu.Unlock()
	if loadCh != nil {
		s.releaseLoad(id, loadCh)
	}
	s.workers.Add(1)
	go sess.run()
	s.mCreated.Inc()
	s.mSessions.Add(1)
	if s.durable() {
		// The ring can reassign the id between the gate check at entry
		// and the install above — and by now the new epoch's rebalance
		// walk may already have run and seen nothing to move. Re-check:
		// if the id lives elsewhere now, passivate the newborn where the
		// owner's pull walk will find it, and redirect the client.
		if err := s.CheckGate(id); err != nil {
			s.Passivate(id, "moved")
			return nil, err
		}
	}
	return sess, nil
}

// acquireLoad takes the id's load singleflight, waiting out any
// in-flight holder (activation, export, import, drop, or create).
func (s *Service) acquireLoad(id string) chan struct{} {
	s.loadMu.Lock()
	for {
		ch, inFlight := s.loads[id]
		if !inFlight {
			break
		}
		s.loadMu.Unlock()
		<-ch
		s.loadMu.Lock()
	}
	ch := make(chan struct{})
	s.loads[id] = ch
	s.loadMu.Unlock()
	return ch
}

func (s *Service) releaseLoad(id string, ch chan struct{}) {
	s.loadMu.Lock()
	delete(s.loads, id)
	s.loadMu.Unlock()
	close(ch)
}

// Session looks a session up by id; on a durable service a passivated
// session is transparently reactivated from disk. In shard mode the
// ownership gate runs first: a session owned elsewhere fails with
// *MovedError even if a stale local copy exists, and a session owned
// here may be pulled from its previous owner before the lookup
// proceeds.
func (s *Service) Session(id string) (*Session, error) {
	if err := s.CheckGate(id); err != nil {
		return nil, err
	}
	sh := s.shardFor(id)
	sh.mu.RLock()
	sess, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if ok {
		return sess, nil
	}
	if s.durable() && validSessionID(id) {
		return s.activate(id)
	}
	return nil, fmt.Errorf("%w: %q", ErrNoSession, id)
}

// Evict removes a session, stopping its ingestion; batches already
// accepted are still applied before the worker exits. The reason labels
// the eviction counter ("explicit", "idle").
//
// On a durable service the reason decides the disk's fate: "explicit"
// deletes the session's directory (including that of a passivated
// session no longer in memory), anything else passivates — the worker
// writes a final snapshot and the state waits on disk for the next
// touch.
func (s *Service) Evict(id, reason string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	sess, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
		if sess.dur != nil {
			sh.retired[id] = sess
		}
	}
	sh.mu.Unlock()
	if !ok {
		if reason == "explicit" && s.durable() && validSessionID(id) {
			return s.dropPassivated(id)
		}
		return false
	}
	if sess.dur != nil {
		if reason == "explicit" {
			sess.mu.Lock()
			sess.dropDisk = true
			sess.mu.Unlock()
		} else {
			s.mPassivated.Inc()
		}
	}
	sess.closeQueue()
	s.mSessions.Add(-1)
	s.cfg.Registry.Counter("rdt_service_sessions_evicted_total", "reason", reason).Inc()
	return true
}

// Sessions lists every live session, sorted by id.
func (s *Service) Sessions() []Info {
	var all []*Session
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, sess := range sh.sessions {
			all = append(all, sess)
		}
		sh.mu.RUnlock()
	}
	out := make([]Info, 0, len(all))
	for _, sess := range all {
		out = append(out, sess.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SessionCount returns the number of live sessions.
func (s *Service) SessionCount() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return total
}

// Draining reports whether Drain has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

func (s *Service) runJanitor(t vtime.Ticker) {
	defer s.janitor.Done()
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C():
			s.sweep()
		}
	}
}

// sweep evicts every session untouched for longer than the idle
// timeout.
func (s *Service) sweep() {
	cut := s.clock.Now().Add(-s.cfg.IdleTimeout).UnixNano()
	var idle []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, sess := range sh.sessions {
			if sess.lastActive.Load() < cut {
				idle = append(idle, id)
			}
		}
		sh.mu.RUnlock()
	}
	for _, id := range idle {
		s.Evict(id, "idle")
	}
}

// Drain stops the service gracefully: no new sessions or events are
// accepted, every queue is closed, and Drain waits — up to the context
// deadline — for the workers to apply what was already acknowledged.
// Sessions remain queryable afterwards. Idempotent.
func (s *Service) Drain(ctx context.Context) error {
	s.drainOne.Do(func() {
		s.draining.Store(true)
		close(s.stop)
	})
	s.janitor.Wait()
	for _, sh := range s.shards {
		sh.mu.RLock()
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			sessions = append(sessions, sess)
		}
		sh.mu.RUnlock()
		for _, sess := range sessions {
			sess.closeQueue()
		}
	}
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.unlockOne.Do(func() {
			if s.unlock != nil {
				s.unlock()
			}
		})
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %w", ctx.Err())
	}
}
