package service

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestDataDirLock: two services on the same data directory is exactly
// the operator mistake that corrupts WALs — the second must fail fast
// at startup, and the lock must release on drain.
func TestDataDirLock(t *testing.T) {
	dir := t.TempDir()
	first, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := New(Config{DataDir: dir}); err == nil {
		t.Fatal("second service on the same data dir started; want a lock failure")
	} else if !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second service failed with %v; want an 'in use' lock error", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := first.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Drain released the lock: the directory is usable again.
	second, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("service on a drained data dir: %v", err)
	}
	if err := second.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDataDirLockDistinctDirs: sibling directories do not conflict.
func TestDataDirLockDistinctDirs(t *testing.T) {
	a, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
