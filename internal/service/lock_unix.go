//go:build unix

package service

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// lockDataDir takes an exclusive advisory lock on <root>/LOCK so two
// daemons pointed at the same data directory fail fast instead of
// interleaving WAL appends and corrupting each other's sessions. The
// lock is per open file description, so even two services inside one
// process (tests) conflict. The returned release closes the file,
// which drops the lock; an exiting or killed process releases it
// implicitly — no stale-lock recovery is ever needed.
func lockDataDir(root string) (release func(), err error) {
	path := filepath.Join(root, "LOCK")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("data dir lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		owner, _ := os.ReadFile(path)
		_ = f.Close()
		if holder := strings.TrimSpace(string(owner)); holder != "" {
			return nil, fmt.Errorf("data dir %q is already in use by process %s: %w", root, holder, err)
		}
		return nil, fmt.Errorf("data dir %q is already in use by another process: %w", root, err)
	}
	// Record the holder for the error message of whoever loses next.
	_ = f.Truncate(0)
	_, _ = f.WriteAt([]byte(fmt.Sprintf("%d\n", os.Getpid())), 0)
	return func() { _ = f.Close() }, nil
}
