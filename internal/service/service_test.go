package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/trace"
	"github.com/rdt-go/rdt/internal/vtime"
)

func TestDecodeEvents(t *testing.T) {
	cases := []struct {
		name    string
		body    string
		want    int
		wantErr bool
	}{
		{"single object", `{"op":"checkpoint","proc":1}`, 1, false},
		{"single send", `{"op":"send","proc":0,"peer":1,"msg":7}`, 1, false},
		{"array", `[{"op":"send","proc":0,"peer":1,"msg":0},{"op":"deliver","msg":0,"proc":1}]`, 2, false},
		{"forced kind", `{"op":"checkpoint","proc":0,"kind":"forced"}`, 1, false},
		{"empty body", ``, 0, true},
		{"empty array", `[]`, 0, true},
		{"trailing garbage", `{"op":"checkpoint","proc":0} {"op":"checkpoint","proc":1}`, 0, true},
		{"unknown op", `{"op":"rollback","proc":0}`, 0, true},
		{"bad kind", `{"op":"checkpoint","proc":0,"kind":"initial"}`, 0, true},
		{"kind on send", `{"op":"send","proc":0,"peer":1,"msg":0,"kind":"basic"}`, 0, true},
		{"negative proc", `{"op":"checkpoint","proc":-1}`, 0, true},
		{"negative msg", `{"op":"deliver","msg":-4}`, 0, true},
		{"not json", `checkpoint please`, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			events, err := DecodeEvents(strings.NewReader(tc.body), 16)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("decoded %v, want error", events)
				}
				return
			}
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(events) != tc.want {
				t.Fatalf("decoded %d events, want %d", len(events), tc.want)
			}
		})
	}
}

func TestDecodeEventsBatchLimit(t *testing.T) {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < 5; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"op":"checkpoint","proc":%d}`, i)
	}
	sb.WriteByte(']')
	if _, err := DecodeEvents(strings.NewReader(sb.String()), 4); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("got %v, want ErrBatchTooLarge", err)
	}
	if _, err := DecodeEvents(strings.NewReader(sb.String()), 5); err != nil {
		t.Fatalf("batch at the limit rejected: %v", err)
	}
}

// testService builds a service whose metrics land in a fresh registry.
func testService(t *testing.T, cfg Config) (*Service, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Registry = reg
	cfg.Tracer = obs.NewTracer(1024)
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("new service: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := svc.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return svc, reg
}

func mustCreate(t *testing.T, svc *Service, id string, n int) *Session {
	t.Helper()
	sess, err := svc.CreateSession(id, n)
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	return sess
}

func flush(t *testing.T, sess *Session) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return sess.Flush(ctx)
}

func TestSessionVerdictMatchesBatch(t *testing.T) {
	svc, _ := testService(t, Config{})
	sess := mustCreate(t, svc, "fig", 2)

	// A same-interval zigzag closing an R-graph cycle: P1 sends in
	// I_{1,1} and receives P0's reply in the same interval, so rolling
	// back past C_{0,2} forces rolling back past C_{0,1} through P1 —
	// a dependency no vector witnesses.
	events := []Event{
		{Op: OpSend, Proc: 1, Peer: 0, Msg: 0},
		{Op: OpDeliver, Msg: 0},
		{Op: OpCheckpoint, Proc: 0},
		{Op: OpSend, Proc: 0, Peer: 1, Msg: 1},
		{Op: OpDeliver, Msg: 1},
		{Op: OpCheckpoint, Proc: 1},
	}
	if err := sess.Enqueue(events); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if err := flush(t, sess); err != nil {
		t.Fatalf("flush: %v", err)
	}
	v := sess.Verdict(0)
	if v.EventsApplied != int64(len(events)) {
		t.Fatalf("applied %d events, want %d", v.EventsApplied, len(events))
	}

	p, _, err := sess.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := rgraph.VerifyRecordedTDVs(p); err != nil {
		t.Fatalf("recorded TDVs: %v", err)
	}
	rep, err := rgraph.CheckRDT(p, svc.Config().MaxViolations)
	if err != nil {
		t.Fatalf("batch check: %v", err)
	}
	compareVerdict(t, v, rep)
	if v.RDT {
		t.Fatal("zigzag scenario judged RDT")
	}
}

func compareVerdict(t *testing.T, v *Verdict, rep *rgraph.Report) {
	t.Helper()
	if v.RDT != rep.RDT || v.RPathPairs != rep.RPathPairs || v.TrackablePairs != rep.TrackablePairs {
		t.Fatalf("verdict (rdt=%v pairs=%d/%d) != batch (rdt=%v pairs=%d/%d)",
			v.RDT, v.TrackablePairs, v.RPathPairs, rep.RDT, rep.TrackablePairs, rep.RPathPairs)
	}
	if len(v.Violations) != len(rep.Violations) {
		t.Fatalf("verdict lists %d violations, batch %d", len(v.Violations), len(rep.Violations))
	}
	for i, viol := range rep.Violations {
		if v.Violations[i] != violationInfo(viol) {
			t.Fatalf("violation %d: %+v != %+v", i, v.Violations[i], violationInfo(viol))
		}
	}
}

func TestSessionFailurePoisons(t *testing.T) {
	svc, reg := testService(t, Config{})
	sess := mustCreate(t, svc, "bad", 2)
	if err := sess.Enqueue([]Event{{Op: OpCheckpoint, Proc: 5}}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if err := flush(t, sess); err != nil {
		t.Fatalf("flush after poison: %v", err)
	}
	v := sess.Verdict(0)
	if v.State != StateFailed || v.Error == "" {
		t.Fatalf("state %q error %q, want failed with an error", v.State, v.Error)
	}
	if err := sess.Enqueue([]Event{{Op: OpCheckpoint, Proc: 0}}); !errors.Is(err, ErrFailed) {
		t.Fatalf("ingest into failed session: %v, want ErrFailed", err)
	}
	if got := reg.Snapshot().CounterValue("rdt_service_events_rejected_total", "reason", "invalid"); got < 1 {
		t.Fatalf("rejected{invalid} = %d, want >= 1", got)
	}
}

func TestSessionSealIsFinal(t *testing.T) {
	svc, _ := testService(t, Config{})
	sess := mustCreate(t, svc, "seal", 2)
	events := []Event{
		{Op: OpSend, Proc: 0, Peer: 1, Msg: 0},
		{Op: OpCheckpoint, Proc: 0},
	}
	if err := sess.Enqueue(events); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	ctx := context.Background()
	if err := sess.Seal(ctx); err != nil {
		t.Fatalf("seal: %v", err)
	}
	if err := sess.Seal(ctx); err != nil {
		t.Fatalf("second seal: %v", err)
	}
	v := sess.Verdict(0)
	if v.State != StateSealed {
		t.Fatalf("state %q, want sealed", v.State)
	}
	if v.InFlight != 0 {
		t.Fatalf("sealed session has %d in-flight messages", v.InFlight)
	}
	if err := sess.Enqueue([]Event{{Op: OpCheckpoint, Proc: 0}}); !errors.Is(err, ErrSealed) {
		t.Fatalf("ingest into sealed session: %v, want ErrSealed", err)
	}
}

func TestSessionLine(t *testing.T) {
	svc, reg := testService(t, Config{})
	sess := mustCreate(t, svc, "line", 2)
	// P1's checkpoint depends on P0's open interval 1: an orphan
	// delivery, so P1 must roll back to its initial checkpoint.
	events := []Event{
		{Op: OpSend, Proc: 0, Peer: 1, Msg: 0},
		{Op: OpDeliver, Msg: 0, Proc: 1},
		{Op: OpCheckpoint, Proc: 1},
	}
	if err := sess.Enqueue(events); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if err := flush(t, sess); err != nil {
		t.Fatalf("flush: %v", err)
	}
	plan, err := sess.Line()
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	wantLine := model.GlobalCheckpoint{0, 0}
	wantBounds := model.GlobalCheckpoint{0, 1}
	for i := range wantLine {
		if plan.Line[i] != wantLine[i] || plan.Bounds[i] != wantBounds[i] {
			t.Fatalf("line %v bounds %v, want %v %v", plan.Line, plan.Bounds, wantLine, wantBounds)
		}
	}
	if plan.TotalRollback() != 1 {
		t.Fatalf("total rollback %d, want 1", plan.TotalRollback())
	}
	if got := reg.Snapshot().CounterValue("rdt_recoveries_total"); got != 1 {
		t.Fatalf("rdt_recoveries_total = %d, want 1", got)
	}
}

func TestBackpressure(t *testing.T) {
	svc, reg := testService(t, Config{QueueDepth: 1})
	sess := mustCreate(t, svc, "slow", 2)

	// Park the worker on a gate, fill the single queue slot, and watch
	// the next enqueue bounce.
	gate := make(chan struct{})
	if err := sess.enqueue(batch{gate: gate}); err != nil {
		t.Fatalf("gate batch: %v", err)
	}
	waitFor(t, func() bool { return len(sess.queue) == 0 }) // worker picked the gate up
	if err := sess.Enqueue([]Event{{Op: OpCheckpoint, Proc: 0}}); err != nil {
		t.Fatalf("first batch should fit: %v", err)
	}
	if err := sess.Enqueue([]Event{{Op: OpCheckpoint, Proc: 1}}); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("second batch: %v, want ErrBackpressure", err)
	}
	close(gate)
	waitFor(t, func() bool { return len(sess.queue) == 0 }) // room for the barrier
	if err := flush(t, sess); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if v := sess.Verdict(0); v.EventsApplied != 1 {
		t.Fatalf("applied %d events, want 1", v.EventsApplied)
	}
	if got := reg.Snapshot().CounterValue("rdt_service_events_rejected_total", "reason", "backpressure"); got < 1 {
		t.Fatalf("rejected{backpressure} = %d, want >= 1", got)
	}
	if got := reg.Snapshot().CounterValue("rdt_service_backpressure_total"); got < 1 {
		t.Fatalf("rdt_service_backpressure_total = %d, want >= 1", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIdleEviction(t *testing.T) {
	v := vtime.NewVirtual(time.Time{})
	svc, reg := testService(t, Config{IdleTimeout: time.Minute, SweepInterval: 15 * time.Second, Clock: v})
	mustCreate(t, svc, "idle", 2)
	// A sweep before the timeout must keep the session (sweep called
	// directly: the cut logic is what's under test here).
	v.Advance(30 * time.Second)
	svc.sweep()
	if _, err := svc.Session("idle"); err != nil {
		t.Fatalf("evicted before the idle timeout: %v", err)
	}
	// Past the timeout the janitor's own ticker does the eviction; the
	// janitor goroutine runs on the scheduler, so wait for it.
	v.Advance(2 * time.Minute)
	waitFor(t, func() bool {
		_, err := svc.Session("idle")
		return errors.Is(err, ErrNoSession)
	})
	if got := reg.Snapshot().CounterValue("rdt_service_sessions_evicted_total", "reason", "idle"); got != 1 {
		t.Fatalf("evicted{idle} = %d, want 1", got)
	}
	if got := svc.SessionCount(); got != 0 {
		t.Fatalf("%d sessions left after eviction", got)
	}
}

// TestFallbackIDUnique: the entropy-less session-id fallback must not
// collide even when many ids are minted in the same (frozen) instant.
func TestFallbackIDUnique(t *testing.T) {
	const workers, per = 8, 200
	ids := make(chan string, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids <- fallbackID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[string]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("fallback id %q minted twice", id)
		}
		seen[id] = true
		if !validSessionID(id) {
			t.Fatalf("fallback id %q is not a valid session id", id)
		}
	}
}

func TestDrainAppliesAcknowledged(t *testing.T) {
	reg := obs.NewRegistry()
	svc, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatalf("new service: %v", err)
	}
	sess, err := svc.CreateSession("d", 2)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	const batches = 50
	for i := 0; i < batches; i++ {
		if err := sess.Enqueue([]Event{{Op: OpCheckpoint, Proc: i % 2}}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := svc.CreateSession("late", 2); !errors.Is(err, ErrDraining) {
		t.Fatalf("create while draining: %v, want ErrDraining", err)
	}
	if err := sess.Enqueue([]Event{{Op: OpCheckpoint, Proc: 0}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after drain: %v, want ErrClosed", err)
	}
	// Everything acknowledged before the drain must have been applied.
	if v := sess.Verdict(0); v.EventsApplied != batches {
		t.Fatalf("applied %d events, want %d", v.EventsApplied, batches)
	}
}

func TestSessionIDValidation(t *testing.T) {
	svc, _ := testService(t, Config{})
	for _, id := range []string{"ok-id_1.x", "A"} {
		if _, err := svc.CreateSession(id, 2); err != nil {
			t.Fatalf("id %q rejected: %v", id, err)
		}
	}
	for _, id := range []string{"has space", "slash/y", strings.Repeat("x", 65), "Ω"} {
		if _, err := svc.CreateSession(id, 2); err == nil {
			t.Fatalf("id %q accepted", id)
		}
	}
	if _, err := svc.CreateSession("dup", 2); err != nil {
		t.Fatalf("create dup: %v", err)
	}
	if _, err := svc.CreateSession("dup", 2); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate id: %v, want ErrSessionExists", err)
	}
	if _, err := svc.CreateSession("", 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	auto, err := svc.CreateSession("", 3)
	if err != nil || auto.ID == "" {
		t.Fatalf("auto id: %q, %v", auto.ID, err)
	}
}

// --- HTTP layer ---

type client struct {
	t    *testing.T
	base string
	http *http.Client
}

func newClient(t *testing.T, base string) *client {
	return &client{t: t, base: base, http: &http.Client{Timeout: 10 * time.Second}}
}

func (c *client) do(method, path string, body any) (*http.Response, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			c.t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatalf("new request: %v", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("read response: %v", err)
	}
	return resp, data
}

func (c *client) expect(method, path string, body any, code int, out any) {
	c.t.Helper()
	resp, data := c.do(method, path, body)
	if resp.StatusCode != code {
		c.t.Fatalf("%s %s: status %d, want %d (body %s)", method, path, resp.StatusCode, code, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			c.t.Fatalf("%s %s: decode %q: %v", method, path, data, err)
		}
	}
}

func newTestServer(t *testing.T, cfg Config) (*client, *Service, *obs.Registry) {
	t.Helper()
	svc, reg := testService(t, cfg)
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	return newClient(t, ts.URL), svc, reg
}

func TestHTTPLifecycle(t *testing.T) {
	c, _, reg := newTestServer(t, Config{})

	var created createResponse
	c.expect("POST", "/v1/sessions", createRequest{ID: "alpha", N: 3}, http.StatusCreated, &created)
	if created.ID != "alpha" || created.N != 3 {
		t.Fatalf("created %+v", created)
	}
	c.expect("POST", "/v1/sessions", createRequest{ID: "alpha", N: 3}, http.StatusConflict, nil)
	c.expect("POST", "/v1/sessions", createRequest{N: 0}, http.StatusBadRequest, nil)

	var auto createResponse
	c.expect("POST", "/v1/sessions", createRequest{N: 2}, http.StatusCreated, &auto)

	var list struct {
		Sessions []Info `json:"sessions"`
	}
	c.expect("GET", "/v1/sessions", nil, http.StatusOK, &list)
	if len(list.Sessions) != 2 {
		t.Fatalf("listed %d sessions, want 2", len(list.Sessions))
	}

	var ing ingestResponse
	c.expect("POST", "/v1/sessions/alpha/events", []Event{
		{Op: OpSend, Proc: 0, Peer: 1, Msg: 0},
		{Op: OpDeliver, Msg: 0, Proc: 1},
		{Op: OpCheckpoint, Proc: 1},
	}, http.StatusAccepted, &ing)
	if ing.Enqueued != 3 {
		t.Fatalf("enqueued %d, want 3", ing.Enqueued)
	}
	// A single bare event object works too.
	c.expect("POST", "/v1/sessions/alpha/events", Event{Op: OpCheckpoint, Proc: 0}, http.StatusAccepted, nil)
	c.expect("POST", "/v1/sessions/missing/events", Event{Op: OpCheckpoint, Proc: 0}, http.StatusNotFound, nil)

	var v Verdict
	c.expect("GET", "/v1/sessions/alpha/verdict?flush=1", nil, http.StatusOK, &v)
	if v.EventsApplied != 4 || v.State != StateActive {
		t.Fatalf("verdict %+v", v)
	}

	var line lineResponse
	c.expect("GET", "/v1/sessions/alpha/line", nil, http.StatusOK, &line)
	if len(line.Line) != 3 {
		t.Fatalf("line %+v", line)
	}

	resp, data := c.do("GET", "/v1/sessions/alpha/trace", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d (%s)", resp.StatusCode, data)
	}
	p, err := trace.Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("load trace: %v", err)
	}
	if err := rgraph.VerifyRecordedTDVs(p); err != nil {
		t.Fatalf("trace TDVs: %v", err)
	}

	var sealed Verdict
	c.expect("POST", "/v1/sessions/alpha/seal", nil, http.StatusOK, &sealed)
	if sealed.State != StateSealed {
		t.Fatalf("seal verdict %+v", sealed)
	}
	c.expect("POST", "/v1/sessions/alpha/events", Event{Op: OpCheckpoint, Proc: 0}, http.StatusConflict, nil)

	c.expect("DELETE", "/v1/sessions/alpha", nil, http.StatusNoContent, nil)
	c.expect("DELETE", "/v1/sessions/alpha", nil, http.StatusNotFound, nil)
	c.expect("GET", "/v1/sessions/alpha/verdict", nil, http.StatusNotFound, nil)

	var health struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	c.expect("GET", "/healthz", nil, http.StatusOK, &health)
	if health.Status != "ok" || health.Sessions != 1 {
		t.Fatalf("health %+v", health)
	}

	// The latency histograms observed every endpoint touched above.
	snap := reg.Snapshot()
	for _, ep := range []string{"create", "list", "ingest", "verdict", "line", "trace", "seal", "delete", "healthz"} {
		if m, ok := snap.Get("rdt_service_request_seconds", "endpoint", ep); !ok || m.Count == 0 {
			t.Fatalf("endpoint %q has no latency observations", ep)
		}
	}

	// /metrics is mounted on the same mux and includes service series.
	resp, data = c.do("GET", "/metrics", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte("rdt_service_events_ingested_total")) {
		t.Fatalf("metrics endpoint: %d (%.120s)", resp.StatusCode, data)
	}
}

// TestHTTPExplainAndTimeline drives the zigzag scenario of
// TestSessionVerdictMatchesBatch through the HTTP API and checks the two
// observability endpoints: /explain returns an independently verifiable
// witness (plus the highlighted DOT), /timeline returns Chrome
// trace-event JSON of the pattern-so-far.
func TestHTTPExplainAndTimeline(t *testing.T) {
	c, _, _ := newTestServer(t, Config{})
	c.expect("POST", "/v1/sessions", createRequest{ID: "zig", N: 2}, http.StatusCreated, nil)
	c.expect("POST", "/v1/sessions/zig/events", []Event{
		{Op: OpSend, Proc: 1, Peer: 0, Msg: 0},
		{Op: OpDeliver, Msg: 0},
		{Op: OpCheckpoint, Proc: 0},
		{Op: OpSend, Proc: 0, Peer: 1, Msg: 1},
		{Op: OpDeliver, Msg: 1},
		{Op: OpCheckpoint, Proc: 1},
	}, http.StatusAccepted, nil)
	c.expect("GET", "/v1/sessions/zig/verdict?flush=1", nil, http.StatusOK, nil)

	var exp explainResponse
	c.expect("GET", "/v1/sessions/zig/explain?dot=1", nil, http.StatusOK, &exp)
	if exp.RDT || len(exp.Witnesses) == 0 {
		t.Fatalf("explain found no witnesses for the zigzag scenario: %+v", exp)
	}
	for _, w := range exp.Witnesses {
		if len(w.Hops) < 2 {
			t.Fatalf("witness %q has %d hops, want >= 2", w.String, len(w.Hops))
		}
		if w.NonCausal < 1 {
			t.Fatalf("witness %q has no non-causal continuation", w.String)
		}
	}
	if !strings.Contains(exp.DOT, "color=red") {
		t.Fatalf("witness DOT does not highlight the witness:\n%s", exp.DOT)
	}

	// The witness survives independent re-verification against the
	// pattern the /trace endpoint serves.
	resp, data := c.do("GET", "/v1/sessions/zig/trace", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d", resp.StatusCode)
	}
	p, err := trace.Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("load trace: %v", err)
	}
	_, witnesses, err := rgraph.Explain(p, 16)
	if err != nil {
		t.Fatalf("batch explain: %v", err)
	}
	if len(witnesses) != len(exp.Witnesses) {
		t.Fatalf("batch explain found %d witnesses, endpoint %d", len(witnesses), len(exp.Witnesses))
	}
	for i, w := range witnesses {
		if err := rgraph.VerifyWitness(p, w); err != nil {
			t.Fatalf("witness %d: %v", i, err)
		}
		if w.String() != exp.Witnesses[i].String {
			t.Fatalf("witness %d: batch %q != endpoint %q", i, w.String(), exp.Witnesses[i].String)
		}
	}

	resp, data = c.do("GET", "/v1/sessions/zig/timeline", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline: %d (%s)", resp.StatusCode, data)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v\n%s", err, data)
	}
	// Two spans per message plus one per non-initial checkpoint.
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) < 2*len(p.Messages) {
		t.Fatalf("timeline has %d events (unit %q), want >= %d", len(doc.TraceEvents), doc.DisplayTimeUnit, 2*len(p.Messages))
	}
}

func TestHTTPBadBodies(t *testing.T) {
	c, _, _ := newTestServer(t, Config{})
	c.expect("POST", "/v1/sessions", createRequest{ID: "s", N: 2}, http.StatusCreated, nil)

	for _, body := range []string{``, `{"op":"explode"}`, `[{"op":"send","proc":0,"peer":1,"msg":-1}]`, `{]`, `[]`} {
		resp, err := http.Post(c.base+"/v1/sessions/s/events", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post %q: %v", body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestHTTPBackpressureStatus(t *testing.T) {
	c, svc, _ := newTestServer(t, Config{QueueDepth: 1})
	c.expect("POST", "/v1/sessions", createRequest{ID: "bp", N: 2}, http.StatusCreated, nil)
	sess, err := svc.Session("bp")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	gate := make(chan struct{})
	defer close(gate)
	if err := sess.enqueue(batch{gate: gate}); err != nil {
		t.Fatalf("gate: %v", err)
	}
	waitFor(t, func() bool { return len(sess.queue) == 0 })
	c.expect("POST", "/v1/sessions/bp/events", Event{Op: OpCheckpoint, Proc: 0}, http.StatusAccepted, nil)

	resp, _ := c.do("POST", "/v1/sessions/bp/events", Event{Op: OpCheckpoint, Proc: 1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestHTTPDifferentialRandom drives a random event stream through the
// HTTP API while mirroring it into a local Builder, then checks the
// flushed verdict against the batch checker on the mirrored snapshot —
// wire-to-verdict parity, complementing the rgraph-level differential
// test.
func TestHTTPDifferentialRandom(t *testing.T) {
	c, _, _ := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(0xbead))

	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(3)
		id := fmt.Sprintf("diff-%d", trial)
		c.expect("POST", "/v1/sessions", createRequest{ID: id, N: n}, http.StatusCreated, nil)

		mirror := model.NewBuilder(n)
		handles := map[int]int{}
		nextMsg := 0
		var pending []Event
		var inFlight []int

		steps := 30 + rng.Intn(60)
		for s := 0; s < steps; s++ {
			switch k := rng.Intn(10); {
			case k < 4:
				proc := rng.Intn(n)
				pending = append(pending, Event{Op: OpCheckpoint, Proc: proc})
				mirror.Checkpoint(model.ProcID(proc), model.KindBasic, nil)
			case k < 8 || len(inFlight) == 0:
				from := rng.Intn(n)
				to := rng.Intn(n - 1)
				if to >= from {
					to++
				}
				msg := nextMsg
				nextMsg++
				pending = append(pending, Event{Op: OpSend, Proc: from, Peer: to, Msg: msg})
				handles[msg] = mirror.Send(model.ProcID(from), model.ProcID(to))
				inFlight = append(inFlight, msg)
			default:
				i := rng.Intn(len(inFlight))
				msg := inFlight[i]
				inFlight = append(inFlight[:i], inFlight[i+1:]...)
				pending = append(pending, Event{Op: OpDeliver, Msg: msg})
				if err := mirror.Deliver(handles[msg]); err != nil {
					t.Fatalf("mirror deliver: %v", err)
				}
			}
			// Ship in irregular batches, as a real client would.
			if len(pending) >= 1+rng.Intn(6) {
				c.expect("POST", "/v1/sessions/"+id+"/events", pending, http.StatusAccepted, nil)
				pending = nil
			}
		}
		if len(pending) > 0 {
			c.expect("POST", "/v1/sessions/"+id+"/events", pending, http.StatusAccepted, nil)
		}

		var v Verdict
		c.expect("GET", "/v1/sessions/"+id+"/verdict?flush=1", nil, http.StatusOK, &v)
		p, _, err := mirror.Snapshot()
		if err != nil {
			t.Fatalf("mirror snapshot: %v", err)
		}
		rep, err := rgraph.CheckRDT(p, DefaultMaxViolations)
		if err != nil {
			t.Fatalf("batch check: %v", err)
		}
		compareVerdict(t, &v, rep)

		// Sealing must not change the verdict: the seal-now report
		// already evaluated the finalized pattern.
		var sealed Verdict
		c.expect("POST", "/v1/sessions/"+id+"/seal", nil, http.StatusOK, &sealed)
		compareVerdict(t, &sealed, rep)
	}
}
