//go:build race

package service

// Under the race detector sync.Pool deliberately drops a fraction of
// Puts, so pooled allocation counts are nondeterministic there.
const raceEnabled = true
