package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/storage"
)

// newDurableService builds a durable service without auto-drain; the
// caller controls when it stops (durability tests restart services).
func newDurableService(dataDir string, snapshotEvery int) (*Service, *obs.Registry) {
	reg := obs.NewRegistry()
	svc, err := New(Config{
		DataDir:       dataDir,
		SnapshotEvery: snapshotEvery,
		Registry:      reg,
		Tracer:        obs.NewTracer(256),
	})
	if err != nil {
		panic(err)
	}
	return svc, reg
}

func drainNow(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// genWorkload produces a valid random event stream: checkpoints,
// sends with fresh client message ids, deliveries of in-flight ones.
func genWorkload(rng *rand.Rand, n, steps int) []Event {
	var events []Event
	var inFlight []int
	nextMsg := 0
	for s := 0; s < steps; s++ {
		switch k := rng.Intn(10); {
		case k < 3:
			ev := Event{Op: OpCheckpoint, Proc: rng.Intn(n)}
			if rng.Intn(4) == 0 {
				ev.Kind = "forced"
			}
			events = append(events, ev)
		case k < 7 || len(inFlight) == 0:
			from := rng.Intn(n)
			to := rng.Intn(n - 1)
			if to >= from {
				to++
			}
			events = append(events, Event{Op: OpSend, Proc: from, Peer: to, Msg: nextMsg})
			inFlight = append(inFlight, nextMsg)
			nextMsg++
		default:
			i := rng.Intn(len(inFlight))
			events = append(events, Event{Op: OpDeliver, Msg: inFlight[i]})
			inFlight = append(inFlight[:i], inFlight[i+1:]...)
		}
	}
	return events
}

// feed pushes events through the session in irregular batches and
// flushes, so everything is applied (and, on a durable service,
// persisted) when it returns.
func feed(t *testing.T, rng *rand.Rand, sess *Session, events []Event) {
	t.Helper()
	for len(events) > 0 {
		k := 1 + rng.Intn(6)
		if k > len(events) {
			k = len(events)
		}
		if err := sess.Enqueue(events[:k]); err != nil {
			if errors.Is(err, ErrBackpressure) {
				if err := flush(t, sess); err != nil {
					t.Fatalf("flush under backpressure: %v", err)
				}
				continue
			}
			t.Fatalf("enqueue: %v", err)
		}
		events = events[k:]
	}
	if err := flush(t, sess); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatalf("mkdir %s: %v", dst, err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("read %s: %v", src, err)
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyDir(t, sp, dp)
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatalf("read %s: %v", sp, err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatalf("write %s: %v", dp, err)
		}
	}
}

func verdictJSON(t *testing.T, v *Verdict) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal verdict: %v", err)
	}
	return string(data)
}

// stripSession blanks the session id inside a verdict JSON so verdicts
// of differently-named sessions compare.
func sameVerdict(t *testing.T, a, b *Verdict) bool {
	t.Helper()
	ca, cb := *a, *b
	ca.Session, cb.Session = "", ""
	return verdictJSON(t, &ca) == verdictJSON(t, &cb)
}

// TestDurableRestartRoundTrip is the basic end-to-end: ingest, drain,
// restart, and the recovered session answers with the identical
// verdict, recovery line, and state — replaying zero WAL records,
// because Drain passivates with a final snapshot.
func TestDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(41))
	events := genWorkload(rng, 3, 120)

	svc1, _ := newDurableService(dir, 16)
	sess := mustCreate(t, svc1, "alpha", 3)
	feed(t, rng, sess, events)
	want := sess.Verdict(0)
	wantLine, err := sess.Line()
	if err != nil {
		t.Fatalf("line: %v", err)
	}
	drainNow(t, svc1)

	svc2, reg2 := newDurableService(dir, 16)
	stats, err := svc2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer drainNow(t, svc2)
	if stats.Sessions != 1 {
		t.Fatalf("recovered %d sessions, want 1", stats.Sessions)
	}
	if stats.Records != 0 {
		t.Fatalf("drain must passivate with a final snapshot; replayed %d records, want 0", stats.Records)
	}
	got, err := svc2.Session("alpha")
	if err != nil {
		t.Fatalf("session after recover: %v", err)
	}
	if gv := got.Verdict(0); verdictJSON(t, gv) != verdictJSON(t, want) {
		t.Fatalf("verdict changed across restart:\n  %s\n  %s", verdictJSON(t, gv), verdictJSON(t, want))
	}
	gotLine, err := got.Line()
	if err != nil {
		t.Fatalf("line after recover: %v", err)
	}
	if !reflect.DeepEqual(gotLine, wantLine) {
		t.Fatalf("recovery line changed across restart: %+v != %+v", gotLine, wantLine)
	}
	if v := reg2.Snapshot().CounterValue("rdt_wal_replay_records_total"); v != 0 {
		t.Fatalf("rdt_wal_replay_records_total = %d, want 0", v)
	}
}

// crashModes are the injection points of the differential test.
const (
	crashAfterAppend = iota // WAL synced, batch not yet applied
	crashAfterApply         // batch applied, snapshot possibly pending
	crashMidSnapshot        // snapshot tmp written, rename not yet done
	crashModes
)

// TestCrashPointDifferential is the heart of the durability story:
// across 500+ seeded runs it crashes a durable session at a seeded
// point (a directory copy under the session lock is a faithful kill -9
// image), restarts from the image, feeds the not-yet-applied suffix,
// and requires the verdict, recovery line, and witness output to be
// bit-identical to an uninterrupted reference run — which itself
// matches the batch checker.
func TestCrashPointDifferential(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 60
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			n := 2 + rng.Intn(3)
			events := genWorkload(rng, n, 10+rng.Intn(40))
			seal := rng.Intn(2) == 0
			mode := rng.Intn(crashModes)
			trigger := 1 + rng.Intn(8)
			id := fmt.Sprintf("crash-%d", seed)

			root := t.TempDir()
			liveDir := filepath.Join(root, "live")
			crashDir := filepath.Join(root, "crash")
			svc, _ := newDurableService(liveDir, 1+rng.Intn(6))

			// The hooks run on the worker goroutine with the session lock
			// held; the copy they take is exactly what kill -9 would leave.
			var hookMu sync.Mutex
			fired := 0
			captured := false
			capture := func() {
				hookMu.Lock()
				defer hookMu.Unlock()
				if fired++; fired == trigger && !captured {
					captured = true
					copyDir(t, filepath.Join(liveDir, "sessions", id), filepath.Join(crashDir, "sessions", id))
				}
			}
			switch mode {
			case crashAfterAppend:
				testHookAppended = func(sid string) {
					if sid == id {
						capture()
					}
				}
			case crashAfterApply:
				testHookApplied = func(sid string) {
					if sid == id {
						capture()
					}
				}
			case crashMidSnapshot:
				marker := filepath.Join("sessions", id, "snap_")
				storage.TestingBeforeRename = func(path string) {
					if strings.Contains(path, marker) {
						capture()
					}
				}
			}
			defer func() {
				testHookAppended, testHookApplied, storage.TestingBeforeRename = nil, nil, nil
			}()

			sess := mustCreate(t, svc, id, n)
			feed(t, rng, sess, events)
			if seal {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				if err := sess.Seal(ctx); err != nil {
					t.Fatalf("seal: %v", err)
				}
				cancel()
			}
			hookMu.Lock()
			if !captured {
				// The seeded point was past the end of the run; crash at the
				// very end instead.
				captured = true
				copyDir(t, filepath.Join(liveDir, "sessions", id), filepath.Join(crashDir, "sessions", id))
			}
			hookMu.Unlock()
			testHookAppended, testHookApplied, storage.TestingBeforeRename = nil, nil, nil
			drainNow(t, svc)

			// Reference: the same stream, uninterrupted, in memory only.
			ref, _ := testService(t, Config{})
			refSess := mustCreate(t, ref, id, n)
			feed(t, rng, refSess, events)
			if seal {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				if err := refSess.Seal(ctx); err != nil {
					t.Fatalf("reference seal: %v", err)
				}
				cancel()
			}

			// Restart from the crash image and finish the run.
			rec, _ := newDurableService(crashDir, 4)
			defer drainNow(t, rec)
			if _, err := rec.Recover(); err != nil {
				t.Fatalf("recover from crash image: %v", err)
			}
			recSess, err := rec.Session(id)
			if err != nil {
				t.Fatalf("session after crash recovery: %v", err)
			}
			applied := int(recSess.Verdict(0).EventsApplied)
			if applied > len(events) {
				t.Fatalf("recovered %d events, only %d were sent", applied, len(events))
			}
			feed(t, rng, recSess, events[applied:])
			if seal {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				if err := recSess.Seal(ctx); err != nil {
					t.Fatalf("seal after recovery: %v", err)
				}
				cancel()
			}

			// Bit-identical observables: verdict, recovery line, witnesses —
			// and the reference itself agrees with the batch checker.
			gv, rv := recSess.Verdict(0), refSess.Verdict(0)
			if !sameVerdict(t, gv, rv) {
				t.Fatalf("mode %d trigger %d: verdict diverged\n  recovered: %s\n  reference: %s",
					mode, trigger, verdictJSON(t, gv), verdictJSON(t, rv))
			}
			gl, gerr := recSess.Line()
			rl, rerr := refSess.Line()
			if (gerr == nil) != (rerr == nil) || (gerr == nil && !reflect.DeepEqual(gl, rl)) {
				t.Fatalf("recovery line diverged: %+v (%v) != %+v (%v)", gl, gerr, rl, rerr)
			}
			_, gw, gerr := recSess.Explain(0)
			_, rw, rerr := refSess.Explain(0)
			if (gerr == nil) != (rerr == nil) || len(gw) != len(rw) {
				t.Fatalf("witnesses diverged: %d (%v) != %d (%v)", len(gw), gerr, len(rw), rerr)
			}
			for i := range gw {
				if gw[i].String() != rw[i].String() {
					t.Fatalf("witness %d diverged:\n  %s\n  %s", i, gw[i].String(), rw[i].String())
				}
			}
			p, _, err := refSess.Snapshot()
			if err != nil {
				t.Fatalf("reference snapshot: %v", err)
			}
			rep, err := rgraph.CheckRDT(p, DefaultMaxViolations)
			if err != nil {
				t.Fatalf("batch check: %v", err)
			}
			compareVerdict(t, gv, rep)
		})
	}
}

// TestTornWALTailRecovers damages the WAL tail the way a machine crash
// would (partial frame, flipped bit) and checks recovery truncates to
// the longest valid prefix — counting it — instead of failing.
func TestTornWALTailRecovers(t *testing.T) {
	for _, damage := range []string{"partial", "bitflip"} {
		t.Run(damage, func(t *testing.T) {
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(7))
			events := genWorkload(rng, 2, 60)

			// Build state with NO final snapshot: copy the tree mid-flight,
			// like the crash harness, then damage the copy's WAL.
			svc, _ := newDurableService(dir, 1<<20)
			sess := mustCreate(t, svc, "torn", 2)
			feed(t, rng, sess, events)
			before := sess.Verdict(0)
			crash := t.TempDir()
			sess.mu.Lock()
			copyDir(t, filepath.Join(dir, "sessions", "torn"), filepath.Join(crash, "sessions", "torn"))
			sess.mu.Unlock()
			drainNow(t, svc)

			walPath := filepath.Join(crash, "sessions", "torn", "wal.log")
			data, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatalf("read wal: %v", err)
			}
			if len(data) < 16 {
				t.Fatalf("wal too small to damage: %d bytes", len(data))
			}
			switch damage {
			case "partial":
				data = data[:len(data)-3]
			case "bitflip":
				data[len(data)-2] ^= 0x20
			}
			if err := os.WriteFile(walPath, data, 0o644); err != nil {
				t.Fatalf("write damaged wal: %v", err)
			}

			rec, reg := newDurableService(crash, 1<<20)
			defer drainNow(t, rec)
			stats, err := rec.Recover()
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if stats.Truncations != 1 {
				t.Fatalf("truncations = %d, want 1", stats.Truncations)
			}
			if v := reg.Snapshot().CounterValue("rdt_wal_truncations_total"); v != 1 {
				t.Fatalf("rdt_wal_truncations_total = %d, want 1", v)
			}
			got, err := rec.Session("torn")
			if err != nil {
				t.Fatalf("session: %v", err)
			}
			v := got.Verdict(0)
			if v.State == StateFailed {
				t.Fatalf("recovered session failed: %s", v.Error)
			}
			if v.EventsApplied >= before.EventsApplied && damage == "partial" {
				// The damaged record was lost, so the recovered prefix must
				// be strictly shorter (the last record held >= 1 event).
				t.Fatalf("events applied %d, want < %d", v.EventsApplied, before.EventsApplied)
			}
			// The session still ingests after truncation.
			if err := got.Enqueue([]Event{{Op: OpCheckpoint, Proc: 0}}); err != nil {
				t.Fatalf("ingest after truncation: %v", err)
			}
			if err := flush(t, got); err != nil {
				t.Fatalf("flush after truncation: %v", err)
			}
		})
	}
}

// TestCorruptSnapshotQuarantined rots the newest snapshot and checks
// recovery quarantines it (*.corrupt) and falls back to the previous
// snapshot plus a longer replay — same verdict, nothing lost.
func TestCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	events := genWorkload(rng, 3, 150)

	svc, _ := newDurableService(dir, 8) // frequent snapshots: several on disk
	sess := mustCreate(t, svc, "rot", 3)
	feed(t, rng, sess, events)
	want := sess.Verdict(0)
	drainNow(t, svc)

	sessDir := filepath.Join(dir, "sessions", "rot")
	entries, err := os.ReadDir(sessDir)
	if err != nil {
		t.Fatalf("read session dir: %v", err)
	}
	var snaps []string
	for _, e := range entries {
		if _, ok := snapSeqOf(e.Name()); ok {
			snaps = append(snaps, e.Name())
		}
	}
	if len(snaps) < 2 {
		t.Fatalf("want >= 2 snapshots on disk, have %v", snaps)
	}
	newest := snaps[len(snaps)-1]
	path := filepath.Join(sessDir, newest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write rotted snapshot: %v", err)
	}

	rec, reg := newDurableService(dir, 8)
	defer drainNow(t, rec)
	stats, err := rec.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.QuarantinedSnapshots != 1 {
		t.Fatalf("quarantined %d snapshots, want 1", stats.QuarantinedSnapshots)
	}
	if v := reg.Snapshot().CounterValue("rdt_wal_snapshots_quarantined_total"); v != 1 {
		t.Fatalf("rdt_wal_snapshots_quarantined_total = %d, want 1", v)
	}
	if stats.Records == 0 {
		t.Fatal("fallback to the previous snapshot must replay records")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantined snapshot not preserved: %v", err)
	}
	got, err := rec.Session("rot")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if gv := got.Verdict(0); verdictJSON(t, gv) != verdictJSON(t, want) {
		t.Fatalf("verdict changed after snapshot fallback:\n  %s\n  %s",
			verdictJSON(t, gv), verdictJSON(t, want))
	}
}

// TestPassivationReactivation: idle eviction of a durable session keeps
// its directory; the next lookup (as POST events would do) loads it
// back with identical state; an explicit delete removes the directory
// even when the session is passivated.
func TestPassivationReactivation(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	events := genWorkload(rng, 2, 80)

	svc, reg := newDurableService(dir, 16)
	defer drainNow(t, svc)
	sess := mustCreate(t, svc, "nap", 2)
	feed(t, rng, sess, events)
	want := sess.Verdict(0)

	if !svc.Evict("nap", "idle") {
		t.Fatal("evict failed")
	}
	waitFor(t, func() bool {
		select {
		case <-sess.workerDone:
			return true
		default:
			return false
		}
	})
	if _, err := os.Stat(filepath.Join(dir, "sessions", "nap")); err != nil {
		t.Fatalf("passivation removed the directory: %v", err)
	}
	if svc.SessionCount() != 0 {
		t.Fatalf("session still live after passivation")
	}

	back, err := svc.Session("nap")
	if err != nil {
		t.Fatalf("reactivate: %v", err)
	}
	if gv := back.Verdict(0); verdictJSON(t, gv) != verdictJSON(t, want) {
		t.Fatalf("verdict changed across passivation:\n  %s\n  %s", verdictJSON(t, gv), verdictJSON(t, want))
	}
	if v := reg.Snapshot().CounterValue("rdt_service_sessions_reactivated_total"); v != 1 {
		t.Fatalf("reactivated counter = %d, want 1", v)
	}
	// The reactivated session keeps ingesting and persisting.
	if err := back.Enqueue([]Event{{Op: OpCheckpoint, Proc: 0}}); err != nil {
		t.Fatalf("ingest after reactivation: %v", err)
	}
	if err := flush(t, back); err != nil {
		t.Fatalf("flush after reactivation: %v", err)
	}

	// Explicit delete of a live session removes the directory.
	if !svc.Evict("nap", "explicit") {
		t.Fatal("explicit evict failed")
	}
	waitFor(t, func() bool {
		_, err := os.Stat(filepath.Join(dir, "sessions", "nap"))
		return errors.Is(err, os.ErrNotExist)
	})

	// And an explicit delete of a *passivated* session works too.
	again := mustCreate(t, svc, "nap2", 2)
	feed(t, rng, again, events[:10])
	svc.Evict("nap2", "idle")
	waitFor(t, func() bool {
		select {
		case <-again.workerDone:
			return true
		default:
			return false
		}
	})
	if !svc.Evict("nap2", "explicit") {
		t.Fatal("explicit evict of passivated session failed")
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions", "nap2")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("passivated session directory survived explicit delete: %v", err)
	}
	if _, err := svc.Session("nap2"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("deleted session still resolvable: %v", err)
	}
}

// TestDegradedSession forces a WAL append failure and checks the blast
// radius: that session turns read-only (507 semantics, degraded state,
// gauge raised), other sessions keep working, and a restart recovers
// the degraded session clean at its last committed batch.
func TestDegradedSession(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(13))
	svc, reg := newDurableService(dir, 1<<20)
	sess := mustCreate(t, svc, "sick", 2)
	healthy := mustCreate(t, svc, "well", 2)
	feed(t, rng, sess, genWorkload(rng, 2, 40))
	committed := sess.Verdict(0)

	// Close the WAL file under the session: the next append fails the
	// way a dying disk would.
	sess.mu.Lock()
	_ = sess.dur.wal.Close()
	sess.mu.Unlock()

	if err := sess.Enqueue([]Event{{Op: OpCheckpoint, Proc: 0}}); err != nil {
		t.Fatalf("enqueue into about-to-degrade session: %v", err)
	}
	err := flush(t, sess)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("flush: %v, want ErrDegraded", err)
	}
	v := sess.Verdict(0)
	if v.State != StateDegraded || v.Error == "" {
		t.Fatalf("state %q error %q, want degraded with an error", v.State, v.Error)
	}
	// The rejected batch was NOT applied: memory never runs ahead of
	// the medium.
	if v.EventsApplied != committed.EventsApplied {
		t.Fatalf("events applied %d, want %d (batch must not apply)", v.EventsApplied, committed.EventsApplied)
	}
	if err := sess.Enqueue([]Event{{Op: OpCheckpoint, Proc: 0}}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("enqueue into degraded session: %v, want ErrDegraded", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := sess.Seal(ctx); !errors.Is(err, ErrDegraded) {
		t.Fatalf("seal of degraded session: %v, want ErrDegraded", err)
	}
	cancel()
	if g := reg.Snapshot().CounterValue("rdt_service_degraded_sessions"); g != 1 {
		t.Fatalf("degraded gauge = %d, want 1", g)
	}
	if svc.DegradedCount() != 1 {
		t.Fatalf("DegradedCount = %d, want 1", svc.DegradedCount())
	}
	// Reads still work, and other sessions are untouched.
	if !sameVerdict(t, sess.Verdict(0), committed) {
		sv := sess.Verdict(0)
		sv.State, sv.Error = committed.State, committed.Error
		if verdictJSON(t, sv) != verdictJSON(t, committed) {
			t.Fatalf("degraded session lost committed state")
		}
	}
	if err := healthy.Enqueue([]Event{{Op: OpCheckpoint, Proc: 0}}); err != nil {
		t.Fatalf("healthy session rejected: %v", err)
	}
	if err := flush(t, healthy); err != nil {
		t.Fatalf("healthy flush: %v", err)
	}
	drainNow(t, svc)

	// Restart: the degraded session recovers clean at its last durable
	// state — degradation is never persisted.
	rec, _ := newDurableService(dir, 1<<20)
	defer drainNow(t, rec)
	if _, err := rec.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got, err := rec.Session("sick")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	gv := got.Verdict(0)
	if gv.State == StateDegraded {
		t.Fatal("degradation survived a restart")
	}
	if gv.EventsApplied != committed.EventsApplied {
		t.Fatalf("recovered %d events, want %d", gv.EventsApplied, committed.EventsApplied)
	}
	if err := got.Enqueue([]Event{{Op: OpCheckpoint, Proc: 1}}); err != nil {
		t.Fatalf("ingest after recovery: %v", err)
	}
	if err := flush(t, got); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
}

// TestHTTPReactivation exercises the satellite end to end over the
// wire: a passivated session transparently reactivates on POST events,
// and healthz reports durability.
func TestHTTPReactivation(t *testing.T) {
	dir := t.TempDir()
	c, svc, _ := newTestServer(t, Config{DataDir: dir, SnapshotEvery: 8})

	c.expect("POST", "/v1/sessions", createRequest{ID: "web", N: 2}, http.StatusCreated, nil)
	c.expect("POST", "/v1/sessions/web/events", []Event{
		{Op: OpSend, Proc: 0, Peer: 1, Msg: 0},
		{Op: OpDeliver, Msg: 0},
		{Op: OpCheckpoint, Proc: 1},
	}, http.StatusAccepted, nil)
	var before Verdict
	c.expect("GET", "/v1/sessions/web/verdict?flush=1", nil, http.StatusOK, &before)

	sess, err := svc.Session("web")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	svc.Evict("web", "idle")
	waitFor(t, func() bool {
		select {
		case <-sess.workerDone:
			return true
		default:
			return false
		}
	})

	// POST events to the passivated session: transparent reactivation.
	c.expect("POST", "/v1/sessions/web/events", Event{Op: OpCheckpoint, Proc: 0}, http.StatusAccepted, nil)
	var after Verdict
	c.expect("GET", "/v1/sessions/web/verdict?flush=1", nil, http.StatusOK, &after)
	if after.EventsApplied != before.EventsApplied+1 {
		t.Fatalf("events applied %d, want %d", after.EventsApplied, before.EventsApplied+1)
	}

	var health struct {
		Status           string `json:"status"`
		DegradedSessions int64  `json:"degraded_sessions"`
		Durable          bool   `json:"durable"`
	}
	c.expect("GET", "/healthz", nil, http.StatusOK, &health)
	if !health.Durable || health.DegradedSessions != 0 {
		t.Fatalf("healthz = %+v, want durable with 0 degraded", health)
	}

	// DELETE removes the directory.
	c.expect("DELETE", "/v1/sessions/web", nil, http.StatusNoContent, nil)
	waitFor(t, func() bool {
		_, err := os.Stat(filepath.Join(dir, "sessions", "web"))
		return errors.Is(err, os.ErrNotExist)
	})
	resp, _ := c.do("GET", "/v1/sessions/web/verdict", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session answered %d, want 404", resp.StatusCode)
	}
}

// TestDurableCreateCollisions pins the id/disk interactions: recreating
// a passivated id conflicts, ".."-style and ".corrupt" ids are
// rejected, and a quarantined directory is skipped by recovery.
func TestDurableCreateCollisions(t *testing.T) {
	dir := t.TempDir()
	svc, _ := newDurableService(dir, 8)
	sess := mustCreate(t, svc, "dot", 2)
	feed(t, rand.New(rand.NewSource(1)), sess, genWorkload(rand.New(rand.NewSource(2)), 2, 10))
	svc.Evict("dot", "idle")
	waitFor(t, func() bool {
		select {
		case <-sess.workerDone:
			return true
		default:
			return false
		}
	})
	if _, err := svc.CreateSession("dot", 2); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("create over passivated id: %v, want ErrSessionExists", err)
	}
	for _, bad := range []string{".", "..", "x.corrupt"} {
		if _, err := svc.CreateSession(bad, 2); err == nil {
			t.Fatalf("id %q accepted", bad)
		}
	}
	drainNow(t, svc)

	// A directory with rotten meta.json is quarantined on recovery.
	badDir := filepath.Join(dir, "sessions", "bad")
	if err := os.MkdirAll(badDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(badDir, "meta.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, _ := newDurableService(dir, 8)
	defer drainNow(t, rec)
	stats, err := rec.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.QuarantinedSessions != 1 || stats.Sessions != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined / 1 recovered", stats)
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions", "bad.corrupt")); err != nil {
		t.Fatalf("quarantined directory missing: %v", err)
	}
}

var _ = io.Discard // keep io imported if assertions above change
