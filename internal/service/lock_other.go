//go:build !unix

package service

// lockDataDir is a no-op where flock is unavailable; the collision
// protection is advisory and unix-only.
func lockDataDir(root string) (release func(), err error) {
	return func() {}, nil
}
