package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/wal"
)

// Shard handoff support. The cluster layer (internal/shard) moves a
// session between daemons as passivate → ship the session directory →
// reactivate: ExportSession turns a live session back into its on-disk
// form and returns the files, ImportSession installs those files under
// a new owner's root, and DropPassivated deletes the old copy once the
// new owner acknowledges. All three hold the session's load
// singleflight, so they cannot interleave with a reactivation — and in
// shard mode the ownership gate has already stopped routing traffic at
// the exporting side, so nothing reactivates the session mid-move.

// ErrSessionLive is returned by ImportSession when the local copy of
// the session already covers the imported image: every producer
// watermark and the applied count are at least the image's. The sender
// may safely drop its copy — nothing in it is missing here.
var ErrSessionLive = errors.New("session already present")

// ErrStateDiverged is returned by ImportSession when the local copy
// and the imported image each hold state the other lacks (one producer
// ahead here, another ahead there). Same-lineage copies cannot do
// this; it means a session forked. The import is refused and the
// sender MUST NOT drop its copy — both need manual reconciliation.
var ErrStateDiverged = errors.New("session state diverged")

// Live reports whether the session is currently in memory.
func (s *Service) Live(id string) bool {
	sh := s.shardFor(id)
	sh.mu.RLock()
	_, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return ok
}

// HasLocal reports whether this daemon holds any state for the session:
// live in memory, retiring, or passivated on disk.
func (s *Service) HasLocal(id string) bool {
	sh := s.shardFor(id)
	sh.mu.RLock()
	_, live := sh.sessions[id]
	retiring := sh.retired[id] != nil
	sh.mu.RUnlock()
	if live || retiring {
		return true
	}
	if !s.durable() || !validSessionID(id) {
		return false
	}
	_, err := os.Stat(s.sessionDir(id))
	return err == nil
}

// SessionsOnDisk lists every session directory under the data root,
// sorted — live and passivated alike (a live durable session owns its
// directory too). Empty on a non-durable service.
func (s *Service) SessionsOnDisk() ([]string, error) {
	if !s.durable() {
		return nil, nil
	}
	entries, err := os.ReadDir(s.sessionsRoot())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("scan sessions: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && validSessionID(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Passivate evicts a live session to disk (final snapshot) and waits
// for the worker to finish retiring, so the directory is complete and
// closed when Passivate returns. It reports whether the session was
// live. The reason labels the eviction counter.
func (s *Service) Passivate(id, reason string) bool {
	sh := s.shardFor(id)
	sh.mu.RLock()
	sess := sh.sessions[id]
	sh.mu.RUnlock()
	if sess == nil {
		return false
	}
	// Losing the Evict race is fine: whoever won also closed the queue,
	// and the workerDone wait below covers both.
	s.Evict(id, reason)
	<-sess.workerDone
	return true
}

// exportable file names inside a session directory.
func exportableFile(name string) bool {
	if name == "meta.json" || name == "wal.log" {
		return true
	}
	_, ok := snapSeqOf(name)
	return ok
}

// ExportSession passivates the session if it is live and returns its
// directory's files, keyed by name. The caller must already have
// stopped routing the session's traffic here (in shard mode the
// ownership gate does); a session that keeps reactivating underneath
// the export fails after a few attempts rather than looping.
func (s *Service) ExportSession(id string) (map[string][]byte, error) {
	if !s.durable() {
		return nil, errors.New("export: service is not durable")
	}
	if !validSessionID(id) {
		return nil, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	for tries := 0; ; tries++ {
		if tries > 8 {
			return nil, fmt.Errorf("export %q: session keeps reactivating", id)
		}
		sh := s.shardFor(id)
		sh.mu.RLock()
		_, live := sh.sessions[id]
		retiring := sh.retired[id]
		sh.mu.RUnlock()
		if live {
			s.Passivate(id, "handoff")
			continue
		}
		if retiring != nil {
			<-retiring.workerDone
			continue
		}

		s.loadMu.Lock()
		ch, inFlight := s.loads[id]
		if inFlight {
			s.loadMu.Unlock()
			<-ch
			continue
		}
		ch = make(chan struct{})
		s.loads[id] = ch
		s.loadMu.Unlock()

		files, retry, err := s.readSessionDirLocked(id)

		s.loadMu.Lock()
		delete(s.loads, id)
		s.loadMu.Unlock()
		close(ch)
		if retry {
			continue
		}
		return files, err
	}
}

// readSessionDirLocked reads a passivated session's files under the
// id's singleflight. retry means the session went live between the
// shard check and here (an activation won the singleflight first).
func (s *Service) readSessionDirLocked(id string) (files map[string][]byte, retry bool, err error) {
	if s.Live(id) {
		return nil, true, nil
	}
	dir := s.sessionDir(id)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, false, fmt.Errorf("%w: %q", ErrNoSession, id)
		}
		return nil, false, fmt.Errorf("export %q: %w", id, err)
	}
	files = make(map[string][]byte)
	for _, e := range entries {
		if e.IsDir() || !exportableFile(e.Name()) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, false, fmt.Errorf("export %q: %w", id, err)
		}
		files[e.Name()] = data
	}
	if _, ok := files["meta.json"]; !ok {
		return nil, false, fmt.Errorf("export %q: no meta.json", id)
	}
	return files, false, nil
}

// imageState is the comparable summary of one copy of a session's
// durable state: the per-producer watermark of frames in the WAL plus
// the total events the copy restores. Copies of the same lineage form
// a prefix chain, so "covers" is a sound better-or-equal order; two
// copies where neither covers the other have forked.
type imageState struct {
	prodSeq map[string]uint64
	applied int64
}

// covers reports whether a holds everything b does.
func (a imageState) covers(b imageState) bool {
	for p, seq := range b.prodSeq {
		if a.prodSeq[p] < seq {
			return false
		}
	}
	return a.applied >= b.applied
}

// strictlyCovers reports whether a covers b and holds more.
func (a imageState) strictlyCovers(b imageState) bool {
	if !a.covers(b) {
		return false
	}
	if a.applied > b.applied {
		return true
	}
	for p, seq := range a.prodSeq {
		if seq > b.prodSeq[p] {
			return true
		}
	}
	return false
}

// durableState snapshots the live session's durable watermarks — what
// a passivation right now would persist (modulo queued batches, which
// drain into both counters before any passivated comparison).
func (s *Session) durableState() imageState {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := make(map[string]uint64, len(s.prodSeq))
	for p, q := range s.prodSeq {
		ps[p] = q
	}
	return imageState{prodSeq: ps, applied: s.applied}
}

// stateOfDir peeks a passivated session directory's durable state
// without installing it: the newest decodable snapshot, then the WAL
// tail scanned (not applied) up to the first torn or undecodable
// record — exactly the state activation would restore from the copy.
func stateOfDir(dir string) (imageState, error) {
	st := imageState{prodSeq: make(map[string]uint64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return st, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := snapSeqOf(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	var from int64
	for _, seq := range seqs {
		data, err := os.ReadFile(filepath.Join(dir, snapName(seq)))
		if err != nil {
			continue
		}
		snap, err := decodeSnapshot(data)
		if err != nil {
			continue
		}
		for p, q := range snap.prodSeq {
			st.prodSeq[p] = q
		}
		st.applied = snap.applied
		from = snap.walOffset
		break
	}
	// Scan errors (torn tail, undecodable record, missing WAL) end the
	// scan where activation's replay would: the decodable prefix IS
	// this copy's restorable state.
	_, _, _ = wal.ScanFrom(filepath.Join(dir, "wal.log"), from, func(payload []byte) error {
		events, _, producer, seq, derr := decodeBatchRecord(payload)
		if derr != nil {
			return derr
		}
		if producer != "" && seq > st.prodSeq[producer] {
			st.prodSeq[producer] = seq
		}
		st.applied += int64(len(events))
		return nil
	})
	return st, nil
}

// errRetryImport asks ImportSession's outer loop to re-run its
// live/retiring checks (an activation won the singleflight first).
var errRetryImport = errors.New("retry import")

// ImportSession installs a session directory shipped from another
// daemon. The files land under a temporary name and are renamed into
// place, so a crash mid-import leaves no half session; the session
// stays passivated — the first touch reactivates it through the normal
// load path, which also reseeds the stream dedup watermark.
//
// A local copy of the id is resolved by durable watermark, not by
// arrival order: under churned membership the same session legitimately
// exports at different points in its life (an early copy passivated at
// one member, a later copy grown elsewhere), and first-wins would let a
// stale copy beat the real state and get it dropped. If the local copy
// covers the image, ErrSessionLive tells the sender its copy is
// redundant (safe to drop). If the image strictly covers the local copy
// — including a live session, which is then a stale incarnation and is
// passivated out from under its clients; they resume onto the newer
// state — the image replaces it. If neither covers the other the
// session has forked: ErrStateDiverged, and the sender must keep its
// copy.
func (s *Service) ImportSession(id string, files map[string][]byte) error {
	if s.draining.Load() {
		return ErrDraining
	}
	if !s.durable() {
		return errors.New("import: service is not durable")
	}
	if !validSessionID(id) {
		return fmt.Errorf("import: invalid session id %q", id)
	}
	if _, ok := files["meta.json"]; !ok {
		return fmt.Errorf("import %q: no meta.json", id)
	}
	for name := range files {
		if !exportableFile(name) {
			return fmt.Errorf("import %q: unexpected file %q", id, name)
		}
	}

	// Stage the image first ('#' is rejected by validSessionID, so the
	// staging name can never collide with a real session directory) and
	// summarize it once for every comparison below.
	tmp, err := os.MkdirTemp(s.sessionsRoot(), "#import#"+id+"#")
	if err != nil {
		return fmt.Errorf("import %q: %w", id, err)
	}
	defer os.RemoveAll(tmp) //nolint:errcheck // no-op once renamed into place
	for name, data := range files {
		if err := storage.WriteFileDurable(filepath.Join(tmp, name), data); err != nil {
			return fmt.Errorf("import %q: %w", id, err)
		}
	}
	img, err := stateOfDir(tmp)
	if err != nil {
		return fmt.Errorf("import %q: %w", id, err)
	}

	for {
		sh := s.shardFor(id)
		sh.mu.RLock()
		sess := sh.sessions[id]
		retiring := sh.retired[id]
		sh.mu.RUnlock()
		if sess != nil {
			if sess.durableState().covers(img) {
				return fmt.Errorf("%w: %q is live", ErrSessionLive, id)
			}
			// The image holds state the live session's durable counters
			// lack: either the live session is a stale incarnation of
			// this state, or its queued batches have not drained into
			// the counters yet. Passivating settles both — clients
			// resume onto whichever copy the on-disk comparison below
			// keeps.
			s.Passivate(id, "superseded")
			continue
		}
		if retiring != nil {
			<-retiring.workerDone
			continue
		}

		s.loadMu.Lock()
		ch, inFlight := s.loads[id]
		if inFlight {
			s.loadMu.Unlock()
			<-ch
			continue
		}
		ch = make(chan struct{})
		s.loads[id] = ch
		s.loadMu.Unlock()

		err := s.installImportLocked(id, tmp, img)

		s.loadMu.Lock()
		delete(s.loads, id)
		s.loadMu.Unlock()
		close(ch)
		if errors.Is(err, errRetryImport) {
			continue
		}
		return err
	}
}

// installImportLocked resolves the staged image against whatever is on
// disk under the id's singleflight and renames it into place if it
// wins.
func (s *Service) installImportLocked(id, tmp string, img imageState) error {
	if s.Live(id) {
		return errRetryImport // an activation won; re-run the live comparison
	}
	dir := s.sessionDir(id)
	if _, err := os.Stat(dir); err == nil {
		cur, err := stateOfDir(dir)
		if err != nil {
			return fmt.Errorf("import %q: inspect local copy: %w", id, err)
		}
		if cur.covers(img) {
			return fmt.Errorf("%w: %q is on disk", ErrSessionLive, id)
		}
		if !img.strictlyCovers(cur) {
			return fmt.Errorf("%w: %q", ErrStateDiverged, id)
		}
		// The image strictly covers the local copy: replace it. The
		// displaced copy moves to the '#old#' namespace first (rename
		// cannot clobber a non-empty directory); recovery restores or
		// clears such leftovers if we crash between the renames.
		old := filepath.Join(s.sessionsRoot(), "#old#"+id)
		_ = os.RemoveAll(old)
		if err := os.Rename(dir, old); err != nil {
			return fmt.Errorf("import %q: displace local copy: %w", id, err)
		}
		if err := os.Rename(tmp, dir); err != nil {
			_ = os.Rename(old, dir) // put the local copy back
			return fmt.Errorf("import %q: %w", id, err)
		}
		_ = os.RemoveAll(old)
		if err := storage.SyncDir(s.sessionsRoot()); err != nil {
			return fmt.Errorf("import %q: %w", id, err)
		}
		return nil
	}
	if err := os.Rename(tmp, dir); err != nil {
		return fmt.Errorf("import %q: %w", id, err)
	}
	if err := storage.SyncDir(s.sessionsRoot()); err != nil {
		return fmt.Errorf("import %q: %w", id, err)
	}
	return nil
}

// DropPassivated deletes the on-disk state of a session that is not
// live — the old owner's cleanup once a handoff is acknowledged. It
// reports whether anything was deleted; a live session is left alone.
func (s *Service) DropPassivated(id string) bool {
	if !s.durable() || !validSessionID(id) {
		return false
	}
	return s.dropPassivated(id)
}

// SetCrashHooks installs the crash-point injection hooks (test use
// only): appended runs right after a WAL record is fsync'd, applied
// right after a batch is applied, both under the session lock. The
// returned restore puts the previous hooks back. Not safe to call
// while traffic is in flight.
func SetCrashHooks(appended, applied func(sessionID string)) (restore func()) {
	prevAppended, prevApplied := testHookAppended, testHookApplied
	testHookAppended, testHookApplied = appended, applied
	return func() { testHookAppended, testHookApplied = prevAppended, prevApplied }
}
