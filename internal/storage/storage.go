// Package storage persists local checkpoints for the concurrent runtime:
// an in-memory store and a file-backed store with the same interface. A
// stored checkpoint carries the application state snapshot and the
// dependency vector the protocol recorded with it — everything the
// recovery manager needs to compute recovery lines without replaying the
// computation.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/rdt-go/rdt/internal/model"
)

// Checkpoint is one persisted local checkpoint.
type Checkpoint struct {
	Proc  int                  `json:"proc"`
	Index int                  `json:"index"`
	Kind  model.CheckpointKind `json:"kind"`
	TDV   []int                `json:"tdv"`
	State []byte               `json:"state,omitempty"`
}

// ErrNotFound is returned when a requested checkpoint does not exist.
var ErrNotFound = errors.New("checkpoint not found")

// ErrCorrupt is wrapped by Get when a checkpoint exists but cannot be
// decoded — typically a file torn by a machine crash. Recovery treats a
// corrupt checkpoint differently from a missing one: it is quarantined
// and the previous index is used instead.
var ErrCorrupt = errors.New("checkpoint is corrupt")

// Store persists checkpoints. Implementations are safe for concurrent use.
type Store interface {
	// Put persists a checkpoint, overwriting any previous checkpoint with
	// the same (proc, index).
	Put(cp Checkpoint) error
	// Get retrieves one checkpoint, or ErrNotFound.
	Get(proc, index int) (Checkpoint, error)
	// Latest retrieves the highest-index checkpoint of a process, or
	// ErrNotFound when the process has none.
	Latest(proc int) (Checkpoint, error)
	// Indexes lists the stored checkpoint indexes of a process, ascending.
	Indexes(proc int) ([]int, error)
	// Delete removes one checkpoint; deleting a missing checkpoint is not
	// an error.
	Delete(proc, index int) error
}

// Quarantiner is implemented by stores that can move a damaged
// checkpoint aside — out of Indexes and Get, but preserved for forensics
// where the medium allows it — instead of destroying it. The recovery
// manager prefers Quarantine over Delete when it encounters ErrCorrupt.
type Quarantiner interface {
	Quarantine(proc, index int) error
}

// Quarantine moves a damaged checkpoint aside through the store's
// Quarantiner implementation, falling back to Delete for stores without
// one (in memory there is nothing worth preserving).
func Quarantine(s Store, proc, index int) error {
	if q, ok := s.(Quarantiner); ok {
		return q.Quarantine(proc, index)
	}
	return s.Delete(proc, index)
}

// Memory is an in-memory store.
type Memory struct {
	mu   sync.RWMutex
	data map[int]map[int]Checkpoint
}

var _ Store = (*Memory)(nil)

// NewMemory creates an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{data: make(map[int]map[int]Checkpoint)}
}

// Put implements Store.
func (m *Memory) Put(cp Checkpoint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	byIndex, ok := m.data[cp.Proc]
	if !ok {
		byIndex = make(map[int]Checkpoint)
		m.data[cp.Proc] = byIndex
	}
	cp.TDV = append([]int(nil), cp.TDV...)
	cp.State = append([]byte(nil), cp.State...)
	byIndex[cp.Index] = cp
	return nil
}

// Get implements Store.
func (m *Memory) Get(proc, index int) (Checkpoint, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	cp, ok := m.data[proc][index]
	if !ok {
		return Checkpoint{}, fmt.Errorf("process %d index %d: %w", proc, index, ErrNotFound)
	}
	return cp, nil
}

// Latest implements Store.
func (m *Memory) Latest(proc int) (Checkpoint, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	best, found := Checkpoint{}, false
	for _, cp := range m.data[proc] {
		if !found || cp.Index > best.Index {
			best, found = cp, true
		}
	}
	if !found {
		return Checkpoint{}, fmt.Errorf("process %d: %w", proc, ErrNotFound)
	}
	return best, nil
}

// Indexes implements Store.
func (m *Memory) Indexes(proc int) ([]int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []int
	for idx := range m.data[proc] {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out, nil
}

// Delete implements Store.
func (m *Memory) Delete(proc, index int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.data[proc], index)
	return nil
}

// Purge removes every checkpoint of every process in [0, n). A recovery
// that reuses the old incarnation's store must purge it: the new
// incarnation restarts its checkpoint indexes at zero, so any leftover
// old-incarnation checkpoint — below, at, or above the recovery line —
// would shadow the new history in a later Latest and corrupt the next
// recovery. The recovery line's state is not lost: it has already been
// restored and is immediately re-persisted as the new incarnation's
// initial checkpoints.
func Purge(s Store, n int) (int, error) {
	removed := 0
	for proc := 0; proc < n; proc++ {
		indexes, err := s.Indexes(proc)
		if err != nil {
			return removed, err
		}
		for _, idx := range indexes {
			if err := s.Delete(proc, idx); err != nil {
				return removed, err
			}
			removed++
		}
	}
	return removed, nil
}

// GCBelow removes, for every process, all checkpoints strictly below the
// given global checkpoint — the garbage collection a recovery line
// permits. It returns the number of checkpoints removed.
func GCBelow(s Store, line model.GlobalCheckpoint) (int, error) {
	removed := 0
	for proc, keep := range line {
		indexes, err := s.Indexes(proc)
		if err != nil {
			return removed, err
		}
		for _, idx := range indexes {
			if idx < keep {
				if err := s.Delete(proc, idx); err != nil {
					return removed, err
				}
				removed++
			}
		}
	}
	return removed, nil
}
