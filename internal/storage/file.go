package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// File is a file-backed store: one JSON file per checkpoint inside a
// directory, named ckpt_<proc>_<index>.json. It tolerates process
// restarts: a new File over the same directory sees the old checkpoints.
type File struct {
	dir string
	mu  sync.Mutex
}

var (
	_ Store       = (*File)(nil)
	_ Quarantiner = (*File)(nil)
)

// NewFile creates (if needed) the directory and returns a store over it.
// Leftover .tmp files — a Put interrupted by a crash between write and
// rename — are removed: the checkpoint they held was never committed, so
// the store must not resurrect it. Quarantined .corrupt files are kept
// for forensics; Indexes never reports them.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "ckpt_") && strings.HasSuffix(name, ".tmp") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return nil, fmt.Errorf("remove stale %s: %w", name, err)
			}
		}
	}
	return &File{dir: dir}, nil
}

// Dir returns the backing directory.
func (f *File) Dir() string { return f.dir }

// Put implements Store. The checkpoint is committed durably through the
// shared torn-write discipline (WriteFileDurable): the temp file is
// fsynced before the rename and the directory after it, so a checkpoint
// that Put reported as stored survives a machine crash (power loss),
// not just a process crash.
func (f *File) Put(cp Checkpoint) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("encode checkpoint: %w", err)
	}
	if err := WriteFileDurable(f.path(cp.Proc, cp.Index), data); err != nil {
		return fmt.Errorf("put checkpoint: %w", err)
	}
	return nil
}

// Get implements Store. An unreadable-but-present checkpoint file is
// reported with ErrCorrupt wrapped in the error, so recovery can
// distinguish damage from absence.
func (f *File) Get(proc, index int) (Checkpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.getLocked(proc, index)
}

func (f *File) getLocked(proc, index int) (Checkpoint, error) {
	data, err := os.ReadFile(f.path(proc, index))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Checkpoint{}, fmt.Errorf("process %d index %d: %w", proc, index, ErrNotFound)
		}
		return Checkpoint{}, fmt.Errorf("read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("process %d index %d: %w: %v", proc, index, ErrCorrupt, err)
	}
	return cp, nil
}

// Latest implements Store. The scan for the highest index and the read
// of that checkpoint happen under one critical section, so a concurrent
// Delete (recovery's GC) can never make Latest spuriously report
// ErrNotFound for a checkpoint that was listed a moment before.
func (f *File) Latest(proc int) (Checkpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	indexes, err := f.indexesLocked(proc)
	if err != nil {
		return Checkpoint{}, err
	}
	if len(indexes) == 0 {
		return Checkpoint{}, fmt.Errorf("process %d: %w", proc, ErrNotFound)
	}
	return f.getLocked(proc, indexes[len(indexes)-1])
}

// Indexes implements Store.
func (f *File) Indexes(proc int) ([]int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.indexesLocked(proc)
}

func (f *File) indexesLocked(proc int) ([]int, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("list checkpoints: %w", err)
	}
	prefix := "ckpt_" + strconv.Itoa(proc) + "_"
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".json") {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".json"))
		if err != nil {
			continue // foreign file, ignore
		}
		out = append(out, idx)
	}
	sort.Ints(out)
	return out, nil
}

// Delete implements Store.
func (f *File) Delete(proc, index int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	err := os.Remove(f.path(proc, index))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("delete checkpoint: %w", err)
	}
	return nil
}

// Quarantine implements Quarantiner: the checkpoint file is renamed to
// <name>.corrupt, taking it out of Indexes/Get/Latest while preserving
// the bytes for post-mortem inspection. Quarantining an already-missing
// checkpoint is not an error.
func (f *File) Quarantine(proc, index int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	path := f.path(proc, index)
	if err := os.Rename(path, path+".corrupt"); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("quarantine checkpoint: %w", err)
	}
	return nil
}

func (f *File) path(proc, index int) string {
	return filepath.Join(f.dir, fmt.Sprintf("ckpt_%d_%d.json", proc, index))
}
