package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/rdt-go/rdt/internal/model"
)

func stores(t *testing.T) map[string]Store {
	t.Helper()
	file, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatalf("file store: %v", err)
	}
	return map[string]Store{
		"memory": NewMemory(),
		"file":   file,
	}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			want := Checkpoint{
				Proc:  1,
				Index: 3,
				Kind:  model.KindForced,
				TDV:   []int{1, 3, 0},
				State: []byte("state-bytes"),
			}
			if err := s.Put(want); err != nil {
				t.Fatalf("put: %v", err)
			}
			got, err := s.Get(1, 3)
			if err != nil {
				t.Fatalf("get: %v", err)
			}
			if got.Proc != want.Proc || got.Index != want.Index || got.Kind != want.Kind {
				t.Errorf("got %+v, want %+v", got, want)
			}
			if string(got.State) != "state-bytes" || len(got.TDV) != 3 || got.TDV[1] != 3 {
				t.Errorf("payload mismatch: %+v", got)
			}
		})
	}
}

func TestStoreGetMissing(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Get(0, 0); !errors.Is(err, ErrNotFound) {
				t.Errorf("err = %v, want ErrNotFound", err)
			}
			if _, err := s.Latest(2); !errors.Is(err, ErrNotFound) {
				t.Errorf("latest err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestStoreLatestAndIndexes(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for _, idx := range []int{0, 2, 1, 5, 3} {
				if err := s.Put(Checkpoint{Proc: 0, Index: idx, TDV: []int{idx}}); err != nil {
					t.Fatalf("put: %v", err)
				}
			}
			latest, err := s.Latest(0)
			if err != nil {
				t.Fatalf("latest: %v", err)
			}
			if latest.Index != 5 {
				t.Errorf("latest index = %d, want 5", latest.Index)
			}
			idxs, err := s.Indexes(0)
			if err != nil {
				t.Fatalf("indexes: %v", err)
			}
			want := []int{0, 1, 2, 3, 5}
			if len(idxs) != len(want) {
				t.Fatalf("indexes = %v, want %v", idxs, want)
			}
			for i := range want {
				if idxs[i] != want[i] {
					t.Fatalf("indexes = %v, want %v", idxs, want)
				}
			}
		})
	}
}

func TestStoreOverwrite(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put(Checkpoint{Proc: 0, Index: 1, State: []byte("a")}); err != nil {
				t.Fatalf("put: %v", err)
			}
			if err := s.Put(Checkpoint{Proc: 0, Index: 1, State: []byte("b")}); err != nil {
				t.Fatalf("overwrite: %v", err)
			}
			got, err := s.Get(0, 1)
			if err != nil {
				t.Fatalf("get: %v", err)
			}
			if string(got.State) != "b" {
				t.Errorf("state = %q, want b", got.State)
			}
		})
	}
}

func TestStoreDelete(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put(Checkpoint{Proc: 0, Index: 1}); err != nil {
				t.Fatalf("put: %v", err)
			}
			if err := s.Delete(0, 1); err != nil {
				t.Fatalf("delete: %v", err)
			}
			if _, err := s.Get(0, 1); !errors.Is(err, ErrNotFound) {
				t.Errorf("get after delete: %v", err)
			}
			if err := s.Delete(0, 1); err != nil {
				t.Errorf("deleting missing checkpoint errored: %v", err)
			}
		})
	}
}

func TestMemoryPutCopiesSlices(t *testing.T) {
	s := NewMemory()
	tdv := []int{1, 2}
	state := []byte("s")
	if err := s.Put(Checkpoint{Proc: 0, Index: 0, TDV: tdv, State: state}); err != nil {
		t.Fatalf("put: %v", err)
	}
	tdv[0] = 9
	state[0] = 'x'
	got, err := s.Get(0, 0)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got.TDV[0] != 1 || got.State[0] != 's' {
		t.Error("stored checkpoint aliases caller slices")
	}
}

func TestGCBelow(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for proc := 0; proc < 2; proc++ {
				for idx := 0; idx <= 4; idx++ {
					if err := s.Put(Checkpoint{Proc: proc, Index: idx}); err != nil {
						t.Fatalf("put: %v", err)
					}
				}
			}
			removed, err := GCBelow(s, model.GlobalCheckpoint{2, 4})
			if err != nil {
				t.Fatalf("gc: %v", err)
			}
			if removed != 2+4 {
				t.Errorf("removed = %d, want 6", removed)
			}
			if _, err := s.Get(0, 1); !errors.Is(err, ErrNotFound) {
				t.Error("checkpoint below line survived GC")
			}
			if _, err := s.Get(0, 2); err != nil {
				t.Error("checkpoint on the line was collected")
			}
		})
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFile(dir)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s1.Put(Checkpoint{Proc: 1, Index: 2, TDV: []int{0, 2}, State: []byte("persisted")}); err != nil {
		t.Fatalf("put: %v", err)
	}
	s2, err := NewFile(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := s2.Get(1, 2)
	if err != nil {
		t.Fatalf("get after reopen: %v", err)
	}
	if string(got.State) != "persisted" {
		t.Errorf("state = %q", got.State)
	}
	if s2.Dir() != dir {
		t.Errorf("dir = %q, want %q", s2.Dir(), dir)
	}
}

func TestFileStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for _, name := range []string{"README.txt", "ckpt_0_x.json", "ckpt_.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := s.Put(Checkpoint{Proc: 0, Index: 1}); err != nil {
		t.Fatalf("put: %v", err)
	}
	idxs, err := s.Indexes(0)
	if err != nil {
		t.Fatalf("indexes: %v", err)
	}
	if len(idxs) != 1 || idxs[0] != 1 {
		t.Errorf("indexes = %v, want [1]", idxs)
	}
}

func TestFileStoreRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt_0_0.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := s.Get(0, 0); err == nil {
		t.Error("corrupt checkpoint decoded successfully")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for proc := 0; proc < 4; proc++ {
				wg.Add(1)
				go func(proc int) {
					defer wg.Done()
					for idx := 0; idx < 20; idx++ {
						if err := s.Put(Checkpoint{Proc: proc, Index: idx, TDV: []int{idx}}); err != nil {
							t.Errorf("put: %v", err)
							return
						}
						if _, err := s.Latest(proc); err != nil {
							t.Errorf("latest: %v", err)
							return
						}
					}
				}(proc)
			}
			wg.Wait()
			for proc := 0; proc < 4; proc++ {
				latest, err := s.Latest(proc)
				if err != nil {
					t.Fatalf("latest: %v", err)
				}
				if latest.Index != 19 {
					t.Errorf("process %d latest = %d, want 19", proc, latest.Index)
				}
			}
		})
	}
}

func TestFileStoreBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := NewFile(filepath.Join(file, "sub")); err == nil {
		t.Error("NewFile succeeded under a regular file")
	}
}

func ExampleGCBelow() {
	s := NewMemory()
	for idx := 0; idx <= 3; idx++ {
		_ = s.Put(Checkpoint{Proc: 0, Index: idx})
		_ = s.Put(Checkpoint{Proc: 1, Index: idx})
	}
	removed, _ := GCBelow(s, model.GlobalCheckpoint{2, 1})
	fmt.Println(removed)
	// Output: 3
}

// TestFileStoreIgnoresTmpFiles: a Put interrupted between write and
// rename leaves a .tmp file behind; it must never surface as a
// checkpoint.
func TestFileStoreIgnoresTmpFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s.Put(Checkpoint{Proc: 0, Index: 0, TDV: []int{0}}); err != nil {
		t.Fatalf("put: %v", err)
	}
	// A torn write of the would-be next checkpoint.
	torn := filepath.Join(dir, "ckpt_0_1.json.tmp")
	if err := os.WriteFile(torn, []byte("{torn"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	idxs, err := s.Indexes(0)
	if err != nil {
		t.Fatalf("indexes: %v", err)
	}
	if len(idxs) != 1 || idxs[0] != 0 {
		t.Errorf("indexes = %v, want [0]", idxs)
	}
	if cp, err := s.Latest(0); err != nil || cp.Index != 0 {
		t.Errorf("latest = (%v, %v), want index 0", cp, err)
	}
}

// TestFileStoreCleansTmpOnReopen: reopening the directory (a process
// restart) removes stale .tmp files and leaves committed checkpoints.
func TestFileStoreCleansTmpOnReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFile(dir)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s1.Put(Checkpoint{Proc: 2, Index: 3, TDV: []int{0, 0, 3}}); err != nil {
		t.Fatalf("put: %v", err)
	}
	torn := filepath.Join(dir, "ckpt_2_4.json.tmp")
	if err := os.WriteFile(torn, []byte("{torn"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	s2, err := NewFile(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Errorf("stale tmp file survived reopen: %v", err)
	}
	if cp, err := s2.Latest(2); err != nil || cp.Index != 3 {
		t.Errorf("latest = (%v, %v), want index 3", cp, err)
	}
}

// TestFilePutFsyncs: a committed checkpoint is durable — the data file
// is flushed before the rename publishes it, and the directory after.
func TestFilePutFsyncs(t *testing.T) {
	s, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	var fileSyncs, dirSyncs int
	origFile, origDir := fsyncFile, fsyncDir
	defer func() { fsyncFile, fsyncDir = origFile, origDir }()
	fsyncFile = func(f *os.File) error { fileSyncs++; return origFile(f) }
	fsyncDir = func(d *os.File) error { dirSyncs++; return origDir(d) }

	if err := s.Put(Checkpoint{Proc: 0, Index: 0, TDV: []int{0}}); err != nil {
		t.Fatalf("put: %v", err)
	}
	if fileSyncs != 1 || dirSyncs != 1 {
		t.Errorf("put synced file %d times and dir %d times, want 1 and 1", fileSyncs, dirSyncs)
	}
}

// TestFilePutFsyncFailure: a sync failure must fail the Put and leave no
// committed checkpoint behind — a checkpoint the medium did not accept
// must not become part of a recovery line.
func TestFilePutFsyncFailure(t *testing.T) {
	origFile, origDir := fsyncFile, fsyncDir
	defer func() { fsyncFile, fsyncDir = origFile, origDir }()

	t.Run("file", func(t *testing.T) {
		dir := t.TempDir()
		s, err := NewFile(dir)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		fsyncFile = func(*os.File) error { return errors.New("medium error") }
		fsyncDir = origDir
		if err := s.Put(Checkpoint{Proc: 0, Index: 0, TDV: []int{0}}); err == nil {
			t.Fatal("put succeeded over a failing fsync")
		}
		if _, err := s.Get(0, 0); !errors.Is(err, ErrNotFound) {
			t.Errorf("get after failed put = %v, want ErrNotFound", err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("readdir: %v", err)
		}
		if len(entries) != 0 {
			t.Errorf("failed put left %d files behind", len(entries))
		}
	})
	t.Run("dir", func(t *testing.T) {
		s, err := NewFile(t.TempDir())
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		fsyncFile = origFile
		fsyncDir = func(*os.File) error { return errors.New("medium error") }
		if err := s.Put(Checkpoint{Proc: 0, Index: 0, TDV: []int{0}}); err == nil {
			t.Fatal("put succeeded over a failing directory fsync")
		}
	})
}

// TestFileLatestConcurrentDelete: Latest's scan and read are one
// critical section, so a concurrent Delete of older checkpoints (what
// recovery GC does) can never make it report ErrNotFound while
// checkpoints exist.
func TestFileLatestConcurrentDelete(t *testing.T) {
	s, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	const rounds = 200
	if err := s.Put(Checkpoint{Proc: 0, Index: 0, TDV: []int{0}}); err != nil {
		t.Fatalf("put: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i < rounds; i++ {
			if err := s.Put(Checkpoint{Proc: 0, Index: i, TDV: []int{i}}); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
			// Delete everything below the new highest, like GC would.
			if err := s.Delete(0, i-1); err != nil {
				t.Errorf("delete %d: %v", i-1, err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		if _, err := s.Latest(0); err != nil {
			t.Fatalf("latest raced to %v while checkpoints exist", err)
		}
	}
}

// TestFileGetCorrupt: damage is distinguishable from absence.
func TestFileGetCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt_0_0.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := s.Get(0, 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("get corrupt = %v, want ErrCorrupt", err)
	}
	if _, err := s.Latest(0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("latest corrupt = %v, want ErrCorrupt", err)
	}
}

// TestFileQuarantine: a quarantined checkpoint leaves Indexes/Get/Latest
// but its bytes survive as <name>.corrupt for the post-mortem.
func TestFileQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s.Put(Checkpoint{Proc: 0, Index: 0, TDV: []int{0}}); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt_0_1.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := Quarantine(s, 0, 1); err != nil {
		t.Fatalf("quarantine: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt_0_1.json.corrupt")); err != nil {
		t.Errorf("quarantined bytes missing: %v", err)
	}
	indexes, err := s.Indexes(0)
	if err != nil {
		t.Fatalf("indexes: %v", err)
	}
	if len(indexes) != 1 || indexes[0] != 0 {
		t.Errorf("indexes = %v after quarantine, want [0]", indexes)
	}
	if _, err := s.Get(0, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("get quarantined = %v, want ErrNotFound", err)
	}
	// Re-opening the directory still ignores the quarantined file.
	s2, err := NewFile(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if indexes, err := s2.Indexes(0); err != nil || len(indexes) != 1 {
		t.Errorf("reopened indexes = %v (%v), want [0]", indexes, err)
	}
	// Quarantining something already gone is not an error.
	if err := Quarantine(s, 0, 9); err != nil {
		t.Errorf("quarantine missing = %v, want nil", err)
	}
}

// TestQuarantineFallback: stores without a rename (memory) fall back to
// deletion — the corrupt entry still leaves the index space.
func TestQuarantineFallback(t *testing.T) {
	s := NewMemory()
	if err := s.Put(Checkpoint{Proc: 1, Index: 2, TDV: []int{0, 0}}); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := Quarantine(s, 1, 2); err != nil {
		t.Fatalf("quarantine: %v", err)
	}
	if _, err := s.Get(1, 2); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after fallback quarantine = %v, want ErrNotFound", err)
	}
}

// TestPurge removes every checkpoint of every process — the reset a
// reused store needs between incarnations.
func TestPurge(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			want := 0
			for proc := 0; proc < 3; proc++ {
				for idx := 0; idx <= proc; idx++ {
					if err := s.Put(Checkpoint{Proc: proc, Index: idx, TDV: []int{0, 0, 0}}); err != nil {
						t.Fatalf("put: %v", err)
					}
					want++
				}
			}
			got, err := Purge(s, 3)
			if err != nil {
				t.Fatalf("purge: %v", err)
			}
			if got != want {
				t.Errorf("purged %d checkpoints, want %d", got, want)
			}
			for proc := 0; proc < 3; proc++ {
				indexes, err := s.Indexes(proc)
				if err != nil {
					t.Fatalf("indexes: %v", err)
				}
				if len(indexes) != 0 {
					t.Errorf("P%d still has indexes %v after purge", proc, indexes)
				}
			}
		})
	}
}
