package storage

import (
	"fmt"
	"os"
	"path/filepath"
)

// This file is the single implementation of the torn-write discipline
// every durable artifact of the repo shares: checkpoint files
// (File.Put), session snapshots and metadata (internal/service), and
// the write-ahead log's truncation path (internal/wal). The rules:
//
//  1. write the new content to <path>.tmp;
//  2. fsync the temp file, so the bytes are on the medium before any
//     name points at them;
//  3. rename <path>.tmp over <path> — the atomic commit point;
//  4. fsync the parent directory, so the rename itself survives a
//     machine crash.
//
// A crash before step 3 leaves only a .tmp file, which readers ignore
// and recovery removes; a crash after step 3 leaves the complete new
// content. No interleaving exposes a half-written committed name.

// fsyncFile and fsyncDir are seams for the durability tests: they flush
// a written file (before the rename) and a directory (after renames or
// removes), and the tests replace them to inject medium failures.
var (
	fsyncFile = func(f *os.File) error { return f.Sync() }
	fsyncDir  = func(d *os.File) error { return d.Sync() }
)

// TestingBeforeRename, when non-nil, runs after the temp file of a
// durable write has been synced and closed, immediately before the
// rename publishes it — the window in which a crash leaves a .tmp
// behind. Crash-point tests use it to capture mid-snapshot disk images;
// production code must never set it.
var TestingBeforeRename func(path string)

// SyncFile flushes an open file to the medium (through the test seam).
func SyncFile(f *os.File) error { return fsyncFile(f) }

// SyncDir opens the directory and flushes its entry table — required
// after a rename or remove inside it before the operation can be
// considered durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sync dir: %w", err)
	}
	defer d.Close()
	if err := fsyncDir(d); err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	return nil
}

// WriteFileDurable writes data to path with the full torn-write
// discipline above. On error nothing is committed: the temp file is
// removed and any previous content of path is untouched.
func WriteFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("write %s: %w", tmp, err)
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("write %s: %w", tmp, err)
	}
	if err := fsyncFile(tf); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("sync %s: %w", tmp, err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("close %s: %w", tmp, err)
	}
	if TestingBeforeRename != nil {
		TestingBeforeRename(path)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("commit %s: %w", path, err)
	}
	return SyncDir(filepath.Dir(path))
}

// RemoveDurable removes path (file or directory tree) and syncs the
// parent directory, so the removal survives a machine crash. Removing
// an already-missing path is not an error.
func RemoveDurable(path string) error {
	if err := os.RemoveAll(path); err != nil {
		return fmt.Errorf("remove %s: %w", path, err)
	}
	return SyncDir(filepath.Dir(path))
}
