// Package stats provides the small statistics and report-formatting
// toolkit used by the experiment harness: sample aggregation with
// confidence intervals, aligned text tables, and CSV series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is a collection of replicated measurements.
type Sample []float64

// Mean returns the arithmetic mean (0 for an empty sample).
func (s Sample) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range s {
		total += v
	}
	return total / float64(len(s))
}

// Std returns the sample standard deviation (0 for fewer than 2 values).
func (s Sample) Std() float64 {
	if len(s) < 2 {
		return 0
	}
	m := s.Mean()
	acc := 0.0
	for _, v := range s {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s)-1))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s Sample) CI95() float64 {
	if len(s) < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(len(s)))
}

// Min returns the smallest value (0 for an empty sample).
func (s Sample) Min() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		m = math.Min(m, v)
	}
	return m
}

// Max returns the largest value (0 for an empty sample).
func (s Sample) Max() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		m = math.Max(m, v)
	}
	return m
}

// Table is a simple report table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells are blank-filled when rendering.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned monospaced text.
func (t *Table) Render() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := range t.Header {
			if i > 0 {
				b.WriteString("  ")
			}
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (no quoting: callers
// only emit numeric and identifier cells).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is a figure: a swept x-axis and one named line per protocol.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Lines  map[string][]float64
}

// NewSeries creates an empty series.
func NewSeries(title, xlabel, ylabel string) *Series {
	return &Series{Title: title, XLabel: xlabel, YLabel: ylabel, Lines: make(map[string][]float64)}
}

// Add appends a point to the named line.
func (s *Series) Add(line string, y float64) {
	s.Lines[line] = append(s.Lines[line], y)
}

// LineNames returns the line names in deterministic order.
func (s *Series) LineNames() []string {
	names := make([]string, 0, len(s.Lines))
	for name := range s.Lines {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Table converts the series to a table with one row per x value.
func (s *Series) Table() *Table {
	names := s.LineNames()
	t := &Table{Title: s.Title, Header: append([]string{s.XLabel}, names...)}
	for i, x := range s.X {
		row := []string{Format(x)}
		for _, name := range names {
			ys := s.Lines[name]
			if i < len(ys) {
				row = append(row, Format(ys[i]))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Format renders a float compactly (4 significant decimals, no trailing
// zeros).
func Format(v float64) string {
	out := fmt.Sprintf("%.4f", v)
	out = strings.TrimRight(out, "0")
	out = strings.TrimRight(out, ".")
	if out == "" || out == "-" {
		return "0"
	}
	return out
}
