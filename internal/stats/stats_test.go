package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleMoments(t *testing.T) {
	s := Sample{2, 4, 4, 4, 5, 5, 7, 9}
	if got := s.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := s.Std(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("std = %v, want ~2.138", got)
	}
	if got := s.CI95(); got <= 0 || got > s.Std() {
		t.Errorf("ci95 = %v out of range", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleDegenerate(t *testing.T) {
	var empty Sample
	if empty.Mean() != 0 || empty.Std() != 0 || empty.CI95() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Error("empty sample should yield zeros")
	}
	one := Sample{3}
	if one.Mean() != 3 || one.Std() != 0 || one.CI95() != 0 {
		t.Error("singleton sample moments wrong")
	}
}

func TestQuickMeanBounds(t *testing.T) {
	f := func(vals []float64) bool {
		s := Sample(nil)
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"proto", "R"}}
	tb.AddRow("bhmr", "0.12")
	tb.AddRow("fdas", "0.25")
	out := tb.Render()
	for _, want := range []string{"demo", "proto", "bhmr", "0.25", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("rendered %d lines, want 5", len(lines))
	}
}

func TestTableRenderShortRows(t *testing.T) {
	tb := &Table{Header: []string{"a", "b", "c"}}
	tb.AddRow("only")
	out := tb.Render()
	if !strings.Contains(out, "only") {
		t.Error("short row dropped")
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"x", "y"}}
	tb.AddRow("1", "2")
	want := "x,y\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("fig", "x", "R")
	s.X = []float64{1, 2}
	s.Add("bhmr", 0.1)
	s.Add("bhmr", 0.2)
	s.Add("fdas", 0.3)
	names := s.LineNames()
	if len(names) != 2 || names[0] != "bhmr" || names[1] != "fdas" {
		t.Errorf("names = %v", names)
	}
	tb := s.Table()
	if tb.Title != "fig" || len(tb.Rows) != 2 {
		t.Errorf("table = %+v", tb)
	}
	// fdas has only one point: second row blank-fills.
	if tb.Rows[1][2] != "" {
		t.Errorf("missing point rendered as %q", tb.Rows[1][2])
	}
}

func TestFormat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1.5, "1.5"},
		{0.1234567, "0.1235"},
		{3.0000, "3"},
		{-2.5, "-2.5"},
	}
	for _, tt := range tests {
		if got := Format(tt.in); got != tt.want {
			t.Errorf("Format(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
