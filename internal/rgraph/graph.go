// Package rgraph implements the rollback-dependency theory of the paper on
// top of recorded checkpoint and communication patterns: the R-graph
// (Section 3.1), message chains — causal and zigzag (Definitions 3.1–3.2) —
// on-line trackability and the offline RDT checker (Definitions 3.3–3.4),
// consistency of global checkpoints (Definition 2.2), the Netzer–Xu
// extensibility criterion, and minimum / maximum consistent global
// checkpoint computations (Corollary 4.5 and its dual).
//
// Everything here is computed from the trace alone, independently of any
// protocol state, so the package acts as the ground-truth oracle against
// which the on-line protocols of internal/core are verified.
package rgraph

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rdt-go/rdt/internal/model"
)

// Graph is the rollback-dependency graph (R-graph) of a pattern. Nodes are
// the local checkpoints; there is an edge C_{i,x} -> C_{i,x+1} for every
// consecutive pair of checkpoints of a process, and an edge
// C_{i,x} -> C_{j,y} for every message sent in I_{i,x} and delivered in
// I_{j,y}. An R-path C -> C' means: rolling process i back past C forces
// rolling process j back past C'.
type Graph struct {
	p      *model.Pattern
	offset []int   // node id of C_{i,0}
	nodes  int     // total node count
	adj    [][]int // adjacency lists (deduplicated)
	reach  []bitset
}

// Build constructs the R-graph of the pattern and precomputes its
// reachability relation. The pattern must be finalized: every message
// endpoint must lie in a closed checkpoint interval.
func Build(p *model.Pattern) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("rgraph: %w", err)
	}
	g := &Graph{p: p, offset: make([]int, p.N)}
	for i := 0; i < p.N; i++ {
		g.offset[i] = g.nodes
		g.nodes += len(p.Checkpoints[i])
	}
	edges := make([][2]int, 0, g.nodes+len(p.Messages))
	for i := 0; i < p.N; i++ {
		for x := 1; x < len(p.Checkpoints[i]); x++ {
			edges = append(edges, [2]int{g.id(model.ProcID(i), x-1), g.id(model.ProcID(i), x)})
		}
	}
	for i := range p.Messages {
		m := &p.Messages[i]
		if m.SendInterval > p.LastIndex(m.From) {
			return nil, fmt.Errorf("rgraph: message %d sent in open interval %d of process %d", m.ID, m.SendInterval, m.From)
		}
		if m.DeliverInterval > p.LastIndex(m.To) {
			return nil, fmt.Errorf("rgraph: message %d delivered in open interval %d of process %d", m.ID, m.DeliverInterval, m.To)
		}
		edges = append(edges, [2]int{g.id(m.From, m.SendInterval), g.id(m.To, m.DeliverInterval)})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
	// Sorted order groups each node's successors and makes duplicates
	// (parallel messages between one interval pair) adjacent.
	dedup := edges[:0]
	var prev [2]int
	for i, e := range edges {
		if i > 0 && e == prev {
			continue
		}
		prev = e
		dedup = append(dedup, e)
	}
	// The adjacency lists share one arena, sliced per source node.
	targets := make([]int, len(dedup))
	for i, e := range dedup {
		targets[i] = e[1]
	}
	g.adj = make([][]int, g.nodes)
	for start := 0; start < len(dedup); {
		end := start
		for end < len(dedup) && dedup[end][0] == dedup[start][0] {
			end++
		}
		g.adj[dedup[start][0]] = targets[start:end]
		start = end
	}
	g.computeReach()
	return g, nil
}

// Pattern returns the pattern the graph was built from.
func (g *Graph) Pattern() *model.Pattern { return g.p }

// NumNodes returns the number of local checkpoints.
func (g *Graph) NumNodes() int { return g.nodes }

// NumEdges returns the number of distinct R-graph edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total
}

// HasRPath reports whether there is an R-path (a directed path of length at
// least one) from checkpoint a to checkpoint b. Note that HasRPath(c, c) is
// true exactly when c lies on a cycle of the R-graph.
func (g *Graph) HasRPath(a, b model.CkptID) bool {
	return g.reach[g.id(a.Proc, a.Index)].get(g.id(b.Proc, b.Index))
}

// Successors returns the direct successors of a checkpoint in the R-graph.
func (g *Graph) Successors(a model.CkptID) []model.CkptID {
	var out []model.CkptID
	for _, t := range g.adj[g.id(a.Proc, a.Index)] {
		out = append(out, g.ckpt(t))
	}
	return out
}

// ReachableCount returns the number of checkpoints reachable from a by an
// R-path of length at least one.
func (g *Graph) ReachableCount(a model.CkptID) int {
	return g.reach[g.id(a.Proc, a.Index)].count()
}

// OnCycle reports whether the checkpoint lies on an R-graph cycle. A
// checkpoint on a cycle can never belong to any consistent global
// checkpoint (it is "useless").
func (g *Graph) OnCycle(a model.CkptID) bool { return g.HasRPath(a, a) }

func (g *Graph) id(i model.ProcID, x int) int { return g.offset[i] + x }

func (g *Graph) ckpt(id int) model.CkptID {
	// Binary search over offsets would be overkill: N is small.
	for i := g.p.N - 1; i >= 0; i-- {
		if id >= g.offset[i] {
			return model.CkptID{Proc: model.ProcID(i), Index: id - g.offset[i]}
		}
	}
	return model.CkptID{}
}

// computeReach computes, for every node, the set of nodes reachable by a
// path of length >= 1, via Tarjan SCC condensation followed by a reverse
// topological sweep with bitset rows. Within a non-trivial SCC every member
// reaches every member (including itself).
func (g *Graph) computeReach() {
	sccOf, order := g.tarjan() // order: SCC ids in reverse topological order
	numSCC := len(order)

	members := make([][]int, numSCC)
	for v := 0; v < g.nodes; v++ {
		members[sccOf[v]] = append(members[sccOf[v]], v)
	}
	cyclic := make([]bool, numSCC)
	for v := 0; v < g.nodes; v++ {
		for _, w := range g.adj[v] {
			if sccOf[v] == sccOf[w] {
				cyclic[sccOf[v]] = true
			}
		}
	}
	for s := 0; s < numSCC; s++ {
		if len(members[s]) > 1 {
			cyclic[s] = true
		}
	}

	sccReach := make([]bitset, numSCC)
	// Tarjan assigns SCC ids such that every edge goes from a higher id to a
	// lower-or-equal id; processing ids in increasing order therefore visits
	// successors before predecessors.
	for s := 0; s < numSCC; s++ {
		row := newBitset(g.nodes)
		for _, v := range members[s] {
			for _, w := range g.adj[v] {
				t := sccOf[w]
				if t == s {
					continue
				}
				for _, u := range members[t] {
					row.set(u)
				}
				row.or(sccReach[t])
			}
		}
		if cyclic[s] {
			for _, v := range members[s] {
				row.set(v)
			}
		}
		sccReach[s] = row
	}

	g.reach = make([]bitset, g.nodes)
	for v := 0; v < g.nodes; v++ {
		g.reach[v] = sccReach[sccOf[v]]
	}
}

// tarjan computes strongly connected components iteratively. It returns the
// SCC id of every node and the list of SCC ids; ids are assigned in reverse
// topological order (an edge u->w with sccOf[u] != sccOf[w] always has
// sccOf[u] > sccOf[w]).
func (g *Graph) tarjan() (sccOf []int, order []int) {
	const unvisited = -1
	var (
		index   = make([]int, g.nodes)
		lowlink = make([]int, g.nodes)
		onStack = make([]bool, g.nodes)
		stack   []int
		next    int
		numSCC  int
	)
	sccOf = make([]int, g.nodes)
	for v := range index {
		index[v] = unvisited
		sccOf[v] = unvisited
	}

	type frame struct {
		v  int
		ei int // next adjacency index to explore
	}
	for root := 0; root < g.nodes; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: root}}
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.adj[f.v]) {
				w := g.adj[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
				continue
			}
			// All successors explored: maybe emit an SCC, then pop.
			if lowlink[f.v] == index[f.v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					sccOf[w] = numSCC
					if w == f.v {
						break
					}
				}
				numSCC++
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if lowlink[v] < lowlink[parent.v] {
					lowlink[parent.v] = lowlink[v]
				}
			}
		}
	}
	order = make([]int, numSCC)
	for s := range order {
		order[s] = s
	}
	return sccOf, order
}

// RollbackClosure returns every checkpoint that must also be discarded
// when the computation is rolled back past each of the given checkpoints:
// the union of the targets with everything reachable from them in the
// R-graph (that is the operational meaning of an R-path, Section 3.1).
// The result is sorted by process, then index.
func (g *Graph) RollbackClosure(targets ...model.CkptID) []model.CkptID {
	doomed := newBitset(g.nodes)
	for _, c := range targets {
		id := g.id(c.Proc, c.Index)
		doomed.set(id)
		doomed.or(g.reach[id])
	}
	var out []model.CkptID
	for v := 0; v < g.nodes; v++ {
		if doomed.get(v) {
			out = append(out, g.ckpt(v))
		}
	}
	return out
}

// DOT renders the R-graph as a Graphviz digraph, with one cluster per
// process and the checkpoints that lie on cycles (useless checkpoints)
// highlighted.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph rgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	p := g.p
	for i := 0; i < p.N; i++ {
		fmt.Fprintf(&b, "  subgraph cluster_p%d {\n    label=\"P%d\";\n", i, i)
		for x := range p.Checkpoints[i] {
			id := model.CkptID{Proc: model.ProcID(i), Index: x}
			attrs := ""
			if g.OnCycle(id) {
				attrs = ", style=filled, fillcolor=salmon"
			}
			fmt.Fprintf(&b, "    r%d_%d [label=\"C(%d,%d)\"%s];\n", i, x, i, x, attrs)
		}
		b.WriteString("  }\n")
	}
	for v := 0; v < g.nodes; v++ {
		from := g.ckpt(v)
		for _, w := range g.adj[v] {
			to := g.ckpt(w)
			style := ""
			if from.Proc == to.Proc {
				style = " [style=dotted]"
			}
			fmt.Fprintf(&b, "  r%d_%d -> r%d_%d%s;\n", from.Proc, from.Index, to.Proc, to.Index, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
