package rgraph

import (
	"fmt"

	"github.com/rdt-go/rdt/internal/model"
)

// ReplayIncremental streams a finalized pattern through a fresh
// incremental checker, event by event in a causally consistent order,
// and seals it. It is the bridge from a recorded run back to the online
// verdict: deterministic scenario execution replays its final pattern
// here and cross-checks the result against the batch analyzer, so the
// two characterizations can never silently diverge.
func ReplayIncremental(p *model.Pattern) (*Incremental, error) {
	inc, err := NewIncremental(p.N)
	if err != nil {
		return nil, err
	}
	var a Analyzer
	a.prepare(p)
	handles := make([]int, len(p.Messages))
	var ferr error
	fail := func(err error) {
		if ferr == nil {
			ferr = err
		}
	}
	if err := a.run(func(e event) {
		if ferr != nil {
			return
		}
		switch e.kind {
		case evCheckpoint:
			if e.index == 0 {
				return // initial checkpoints exist by construction
			}
			if _, _, err := inc.Checkpoint(e.proc); err != nil {
				fail(fmt.Errorf("replay checkpoint (%d,%d): %w", e.proc, e.index, err))
			}
		case evSend:
			m := &p.Messages[e.msgIdx]
			h, err := inc.Send(m.From, m.To)
			if err != nil {
				fail(fmt.Errorf("replay send m%d: %w", m.ID, err))
				return
			}
			handles[e.msgIdx] = h
		case evDeliver:
			if err := inc.Deliver(handles[e.msgIdx]); err != nil {
				fail(fmt.Errorf("replay deliver m%d: %w", p.Messages[e.msgIdx].ID, err))
			}
		}
	}); err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	inc.Seal()
	return inc, nil
}
