package rgraph

import (
	"fmt"
	"sort"

	"github.com/rdt-go/rdt/internal/binenc"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/vclock"
)

// Deterministic binary state codec for Incremental, used by the
// checking service's session snapshots. AppendBinary emits only the
// primitive state — running vectors, in-flight stamps, interval
// bookkeeping, node table, and the R-graph edge list (direct
// predecessors in insertion order). DecodeIncremental re-inserts the
// edges through addEdge, which rebuilds the transitive closure and,
// because every node's taken flag and recorded vector are restored
// first, re-judges every untrackable pair exactly once: the violation
// count and first violation come out identical to the original
// checker's without being stored. A decoded checker is behaviorally
// indistinguishable from one that consumed the original event stream.

var incMagic = []byte("RDTINCR1")

const (
	// maxDecodeProcs and maxDecodeNodes bound the allocations a corrupt
	// snapshot can request.
	maxDecodeProcs = 1 << 20
	maxDecodeNodes = 1 << 24
)

// AppendBinary appends the checker's complete state to buf and returns
// the extended slice. Maps are emitted in sorted key order, so equal
// states encode to equal bytes.
func (inc *Incremental) AppendBinary(buf []byte) []byte {
	buf = append(buf, incMagic...)
	buf = binenc.AppendInt(buf, inc.n)
	buf = binenc.AppendBool(buf, inc.sealed)
	for i := 0; i < inc.n; i++ {
		buf = appendVec(buf, inc.cur[i])
	}
	buf = binenc.AppendInt(buf, inc.nextMsg)
	handles := make([]int, 0, len(inc.flight))
	for h := range inc.flight {
		handles = append(handles, h)
	}
	sort.Ints(handles)
	buf = binenc.AppendInt(buf, len(handles))
	for _, h := range handles {
		pe := inc.flight[h]
		buf = binenc.AppendInt(buf, h)
		buf = binenc.AppendInt(buf, int(pe.from))
		buf = binenc.AppendInt(buf, int(pe.to))
		buf = binenc.AppendInt(buf, pe.sendInterval)
		buf = appendVec(buf, inc.stamps[h])
	}
	for i := 0; i < inc.n; i++ {
		buf = binenc.AppendInt(buf, inc.nextIndex[i])
		buf = binenc.AppendInt(buf, inc.events[i])
	}
	buf = binenc.AppendInt(buf, len(inc.nodeProc))
	for v := range inc.nodeProc {
		buf = binenc.AppendInt(buf, int(inc.nodeProc[v]))
		buf = binenc.AppendInt(buf, int(inc.nodeIndex[v]))
		buf = binenc.AppendBool(buf, inc.taken[v])
		if inc.taken[v] {
			for _, x := range inc.tdvs[v] {
				buf = binenc.AppendInt(buf, x)
			}
		}
	}
	for v := range inc.preds {
		buf = binenc.AppendInt(buf, len(inc.preds[v]))
		for _, p := range inc.preds[v] {
			buf = binenc.AppendInt(buf, int(p))
		}
	}
	return buf
}

func appendVec(buf []byte, v vclock.Vec) []byte {
	for _, x := range v {
		buf = binenc.AppendInt(buf, x)
	}
	return buf
}

// DecodeIncremental reconstructs a checker from AppendBinary output,
// validating the structural invariants the checker's own operations
// maintain (per-process node allocation order, one pending node per
// process, closed prefixes taken) so corrupt snapshot bytes fail
// cleanly instead of producing a checker that panics later.
func DecodeIncremental(data []byte) (*Incremental, error) {
	r := binenc.NewReader(data)
	r.Expect(incMagic)
	n := r.IntMax(maxDecodeProcs)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decode checker: %w", err)
	}
	if n < 1 {
		return nil, fmt.Errorf("decode checker: process count %d", n)
	}
	inc := &Incremental{
		n:         n,
		sealed:    r.Bool(),
		cur:       make([]vclock.Vec, n),
		stamps:    make(map[int]vclock.Vec),
		flight:    make(map[int]pendingEdge),
		ids:       make([][]int32, n),
		nextIndex: make([]int, n),
		events:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		inc.cur[i] = readVec(r, n)
	}
	inc.nextMsg = r.Int()
	flightCount := r.IntMax(maxDecodeNodes)
	for k := 0; k < flightCount && r.Err() == nil; k++ {
		h := r.Int()
		pe := pendingEdge{
			from:         model.ProcID(r.IntMax(n - 1)),
			to:           model.ProcID(r.IntMax(n - 1)),
			sendInterval: r.Int(),
		}
		stamp := readVec(r, n)
		if _, dup := inc.flight[h]; dup {
			return nil, fmt.Errorf("decode checker: duplicate in-flight handle %d", h)
		}
		inc.flight[h] = pe
		inc.stamps[h] = stamp
	}
	for i := 0; i < n; i++ {
		inc.nextIndex[i] = r.Int()
		inc.events[i] = r.Int()
	}
	numNodes := r.IntMax(maxDecodeNodes)
	for v := 0; v < numNodes && r.Err() == nil; v++ {
		proc := r.IntMax(n - 1)
		index := r.Int()
		taken := r.Bool()
		if r.Err() != nil {
			break
		}
		if index != len(inc.ids[proc]) {
			return nil, fmt.Errorf("decode checker: node %d is C{%d,%d}, want index %d",
				v, proc, index, len(inc.ids[proc]))
		}
		nv := inc.newNode(model.ProcID(proc), index)
		if taken {
			inc.taken[nv] = true
			inc.tdvs[nv] = readVec(r, n)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decode checker: %w", err)
	}
	for i := 0; i < n; i++ {
		if len(inc.ids[i]) != inc.nextIndex[i]+1 {
			return nil, fmt.Errorf("decode checker: process %d has %d nodes, want %d",
				i, len(inc.ids[i]), inc.nextIndex[i]+1)
		}
		for x, v := range inc.ids[i] {
			if closed := x < inc.nextIndex[i]; inc.taken[v] != closed {
				return nil, fmt.Errorf("decode checker: C{%d,%d} taken=%v, want %v",
					i, x, inc.taken[v], closed)
			}
		}
	}
	// Re-inserting the edges rebuilds the closure; with every taken flag
	// and recorded vector already in place, judge fires exactly once per
	// untrackable pair, restoring the violation count and first
	// violation. No callback is registered yet, so decoding is silent.
	for v := 0; v < numNodes && r.Err() == nil; v++ {
		degree := r.IntMax(maxDecodeNodes)
		for k := 0; k < degree && r.Err() == nil; k++ {
			p := r.IntMax(numNodes - 1)
			if p == v {
				return nil, fmt.Errorf("decode checker: node %d has a self edge", v)
			}
			inc.addEdge(int32(p), int32(v))
		}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("decode checker: %w", err)
	}
	return inc, nil
}

func readVec(r *binenc.Reader, n int) vclock.Vec {
	v := vclock.NewVec(n)
	for i := range v {
		v[i] = r.Int()
	}
	return v
}
