package rgraph

import (
	"errors"
	"fmt"

	"github.com/rdt-go/rdt/internal/model"
)

// ErrNoConsistentGlobal is returned when no consistent global checkpoint
// satisfies the requested constraints (for instance because a pinned
// checkpoint is useless).
var ErrNoConsistentGlobal = errors.New("no consistent global checkpoint satisfies the constraints")

// Orphan describes a message that is orphan with respect to a global
// checkpoint: it is delivered before the receiver's checkpoint although it
// is sent after the sender's checkpoint.
type Orphan struct {
	Message model.Message
	Global  model.GlobalCheckpoint
}

// Error renders the orphan as a diagnostic.
func (o *Orphan) Error() string {
	return fmt.Sprintf("message %d (P%d I%d -> P%d I%d) is orphan w.r.t. %v",
		o.Message.ID, o.Message.From, o.Message.SendInterval, o.Message.To, o.Message.DeliverInterval, o.Global)
}

// FindOrphan returns an orphan message of the global checkpoint, or nil if
// the global checkpoint is consistent (Definition 2.2). The global
// checkpoint must have one entry per process, each within range.
func FindOrphan(p *model.Pattern, g model.GlobalCheckpoint) (*Orphan, error) {
	if err := checkGlobal(p, g); err != nil {
		return nil, err
	}
	for i := range p.Messages {
		m := &p.Messages[i]
		if m.SendInterval > g[m.From] && m.DeliverInterval <= g[m.To] {
			return &Orphan{Message: *m, Global: g.Clone()}, nil
		}
	}
	return nil, nil
}

// IsConsistent reports whether the global checkpoint is consistent: no pair
// of its local checkpoints has an orphan message.
func IsConsistent(p *model.Pattern, g model.GlobalCheckpoint) (bool, error) {
	o, err := FindOrphan(p, g)
	if err != nil {
		return false, err
	}
	return o == nil, nil
}

// MinConsistentContaining computes the minimum consistent global checkpoint
// containing every checkpoint of the set, by a least fixpoint that raises
// sender entries until no orphan remains. It fails with
// ErrNoConsistentGlobal when the fixpoint needs to move a pinned entry.
//
// Under RDT, for a single checkpoint C_{i,x}, the result equals the
// dependency vector recorded with C_{i,x} (Corollary 4.5).
func MinConsistentContaining(p *model.Pattern, set ...model.CkptID) (model.GlobalCheckpoint, error) {
	pinned, g, err := pinSet(p, set)
	if err != nil {
		return nil, err
	}
	for changed := true; changed; {
		changed = false
		for i := range p.Messages {
			m := &p.Messages[i]
			if m.DeliverInterval <= g[m.To] && m.SendInterval > g[m.From] {
				if pinned[m.From] && m.SendInterval > pinnedIndex(set, m.From) {
					return nil, fmt.Errorf("%w: raising P%d past pinned checkpoint", ErrNoConsistentGlobal, m.From)
				}
				g[m.From] = m.SendInterval
				changed = true
			}
		}
	}
	return g, nil
}

// MaxConsistentContaining computes the maximum consistent global checkpoint
// containing every checkpoint of the set, by a greatest fixpoint that
// lowers receiver entries until no orphan remains.
func MaxConsistentContaining(p *model.Pattern, set ...model.CkptID) (model.GlobalCheckpoint, error) {
	pinned, g, err := pinSet(p, set)
	if err != nil {
		return nil, err
	}
	for k := range g {
		if !pinned[k] {
			g[k] = p.LastIndex(model.ProcID(k))
		}
	}
	for changed := true; changed; {
		changed = false
		for i := range p.Messages {
			m := &p.Messages[i]
			if m.SendInterval > g[m.From] && m.DeliverInterval <= g[m.To] {
				if pinned[m.To] {
					return nil, fmt.Errorf("%w: lowering P%d below pinned checkpoint", ErrNoConsistentGlobal, m.To)
				}
				g[m.To] = m.DeliverInterval - 1
				changed = true
			}
		}
	}
	return g, nil
}

// RecoveryLine computes the maximum consistent global checkpoint dominated
// by the given per-process bounds — the recovery line used after a failure,
// when each process may restart at most from bounds[i]. It always exists:
// the all-initial global checkpoint is consistent.
func RecoveryLine(p *model.Pattern, bounds model.GlobalCheckpoint) (model.GlobalCheckpoint, error) {
	if err := checkGlobal(p, bounds); err != nil {
		return nil, err
	}
	g := bounds.Clone()
	for changed := true; changed; {
		changed = false
		for i := range p.Messages {
			m := &p.Messages[i]
			if m.SendInterval > g[m.From] && m.DeliverInterval <= g[m.To] {
				g[m.To] = m.DeliverInterval - 1
				changed = true
			}
		}
	}
	return g, nil
}

// RollbackDepth returns, per process, how many checkpoint intervals are
// lost when rolling back from bounds to line (the domino-effect metric).
func RollbackDepth(bounds, line model.GlobalCheckpoint) []int {
	depth := make([]int, len(bounds))
	for i := range bounds {
		depth[i] = bounds[i] - line[i]
	}
	return depth
}

func pinSet(p *model.Pattern, set []model.CkptID) (pinned []bool, g model.GlobalCheckpoint, err error) {
	if len(set) == 0 {
		return nil, nil, errors.New("empty checkpoint set")
	}
	pinned = make([]bool, p.N)
	g = make(model.GlobalCheckpoint, p.N)
	for _, c := range set {
		if _, err := p.Checkpoint(c); err != nil {
			return nil, nil, err
		}
		if pinned[c.Proc] && g[c.Proc] != c.Index {
			return nil, nil, fmt.Errorf("%w: two different checkpoints of P%d pinned", ErrNoConsistentGlobal, c.Proc)
		}
		pinned[c.Proc] = true
		g[c.Proc] = c.Index
	}
	return pinned, g, nil
}

func pinnedIndex(set []model.CkptID, proc model.ProcID) int {
	for _, c := range set {
		if c.Proc == proc {
			return c.Index
		}
	}
	return -1
}

func checkGlobal(p *model.Pattern, g model.GlobalCheckpoint) error {
	if len(g) != p.N {
		return fmt.Errorf("global checkpoint has %d entries, want %d", len(g), p.N)
	}
	for i, x := range g {
		if x < 0 || x > p.LastIndex(model.ProcID(i)) {
			return fmt.Errorf("global checkpoint entry %d = %d out of range [0,%d]", i, x, p.LastIndex(model.ProcID(i)))
		}
	}
	return nil
}

// InTransit returns the messages that are in the channels at the cut g:
// sent at or before the sender's checkpoint and delivered only after the
// receiver's. When a system rolls back to g these messages are lost with
// the channel state; a recovery implementation replays them from a
// message log. (For a consistent g there are no orphans, so in-transit
// messages are the only channel repair needed.)
func InTransit(p *model.Pattern, g model.GlobalCheckpoint) ([]model.Message, error) {
	if err := checkGlobal(p, g); err != nil {
		return nil, err
	}
	var out []model.Message
	for i := range p.Messages {
		m := &p.Messages[i]
		if m.SendInterval <= g[m.From] && m.DeliverInterval > g[m.To] {
			out = append(out, *m)
		}
	}
	return out, nil
}
