package rgraph

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/vclock"
)

// Incremental is the on-line RDT checker: it consumes the same event
// stream a model.Builder does — checkpoints, sends, deliveries — and
// maintains, per event, everything the visible characterization needs:
//
//   - the running transitive dependency vector of every process, updated
//     exactly as an ideal on-line tracker would (copy on checkpoint,
//     stamp on send, componentwise max on delivery), so the vector
//     recorded with checkpoint C_{i,x} equals the offline TDV that
//     Analyzer.ComputeTDVs would compute for it;
//   - the R-graph of the run so far, including one *pending* node per
//     process for the checkpoint that will close its current interval
//     (messages create edges between intervals before the checkpoints
//     closing them exist), with its transitive closure maintained
//     incrementally under edge insertions;
//   - the set of untrackable R-paths among closed checkpoints, which is
//     monotone — a checkpoint's vector is immutable once taken and
//     R-paths are never removed — so each violating pair is detected
//     exactly once, at the event that creates it.
//
// Report renders the verdict of the *seal-now* pattern: the pattern a
// Seal call would produce at this instant (final checkpoints closing
// every interval that contains an event, undelivered messages dropped).
// After Seal, Report matches Analyzer.CheckRDT on the finalized pattern
// — verdict, pair counts, and first violation — which the differential
// property test asserts on generated runs.
//
// An Incremental is not safe for concurrent use; callers (the service's
// session workers) serialize access.
type Incremental struct {
	n      int
	sealed bool

	cur     []vclock.Vec        // running dependency vector per process
	stamps  map[int]vclock.Vec  // send-time vector of each in-flight message
	flight  map[int]pendingEdge // in-flight message -> future R-graph edge
	nextMsg int

	// R-graph over interval nodes. ids[i][x] is the node of C_{i,x};
	// per process the allocated indexes always cover 0..nextIndex[i],
	// where nextIndex[i] is the open interval (its node is pending).
	ids       [][]int32
	nextIndex []int
	events    []int // sends+deliveries in the open interval, per process

	nodeProc  []int32
	nodeIndex []int32
	taken     []bool
	tdvs      [][]int   // recorded vector per taken node
	reach     []dynbits // transitive closure: reach[u] = nodes reachable from u by a path of length >= 1
	preds     [][]int32 // direct predecessors, deduplicated

	// Monotone violation accounting over closed checkpoints.
	violations  int
	first       *Violation
	onViolation func(Violation)

	scratch []int32 // newly-set bits during closure propagation
	work    []int32 // propagation worklist
}

type pendingEdge struct {
	from, to     model.ProcID
	sendInterval int
}

// NewIncremental returns a checker for n processes, each starting with
// its initial checkpoint C_{i,0} (zero dependency vector), mirroring
// model.NewBuilder.
func NewIncremental(n int) (*Incremental, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rgraph: incremental checker needs at least 1 process, have %d", n)
	}
	inc := &Incremental{
		n:         n,
		cur:       make([]vclock.Vec, n),
		stamps:    make(map[int]vclock.Vec),
		flight:    make(map[int]pendingEdge),
		ids:       make([][]int32, n),
		nextIndex: make([]int, n),
		events:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		inc.cur[i] = vclock.NewVec(n)
		initial := inc.newNode(model.ProcID(i), 0)
		inc.taken[initial] = true
		inc.tdvs[initial] = make([]int, n) // C_{i,0} depends on nothing
		inc.cur[i][i] = 1
		inc.nextIndex[i] = 1
		pending := inc.newNode(model.ProcID(i), 1)
		inc.addEdge(initial, pending)
	}
	return inc, nil
}

// N returns the number of processes.
func (inc *Incremental) N() int { return inc.n }

// OnViolation registers a callback invoked once per untrackable R-path
// between closed checkpoints, at the event that creates it. The callback
// runs synchronously inside Checkpoint/Deliver/Seal.
func (inc *Incremental) OnViolation(fn func(Violation)) { inc.onViolation = fn }

// Violations returns the number of untrackable R-paths detected so far
// among closed checkpoints. (Pairs ending at a still-open interval are
// judged by Report, which evaluates the seal-now pattern.)
func (inc *Incremental) Violations() int { return inc.violations }

// FirstViolation returns the least violating pair detected so far — the
// one Analyzer.CheckRDT would report first — or nil while the closed
// prefix is RDT. The returned value must not be modified.
func (inc *Incremental) FirstViolation() *Violation { return inc.first }

// RDT reports whether every R-path between closed checkpoints is
// trackable so far.
func (inc *Incremental) RDT() bool { return inc.violations == 0 }

// NextIndex returns the index of the open checkpoint interval of process
// i — the index its next checkpoint will get.
func (inc *Incremental) NextIndex(i model.ProcID) int { return inc.nextIndex[i] }

// Current returns the running dependency vector of process i: the vector
// its next checkpoint would record. The returned slice is live; callers
// must not modify it.
func (inc *Incremental) Current(i model.ProcID) vclock.Vec { return inc.cur[i] }

// TDVAt returns the vector recorded with a closed checkpoint, or nil if
// the checkpoint has not been taken. The returned slice must not be
// modified.
func (inc *Incremental) TDVAt(c model.CkptID) []int {
	if int(c.Proc) < 0 || int(c.Proc) >= inc.n || c.Index < 0 || c.Index >= len(inc.ids[c.Proc]) {
		return nil
	}
	v := inc.ids[c.Proc][c.Index]
	if !inc.taken[v] {
		return nil
	}
	return inc.tdvs[v]
}

// Checkpoint closes the open interval of process i: the pending node
// becomes the checkpoint C_{i,x}, its dependency vector is recorded, and
// every R-path already ending at it is judged. It returns the checkpoint
// identifier and the recorded vector (a copy the caller may keep, e.g.
// to annotate the pattern a parallel Builder accumulates).
func (inc *Incremental) Checkpoint(i model.ProcID) (model.CkptID, []int, error) {
	if inc.sealed {
		return model.CkptID{}, nil, fmt.Errorf("rgraph: incremental checker is sealed")
	}
	if int(i) < 0 || int(i) >= inc.n {
		return model.CkptID{}, nil, fmt.Errorf("rgraph: checkpoint: process %d out of range [0,%d)", i, inc.n)
	}
	id, tdv := inc.close(i)
	return id, tdv, nil
}

func (inc *Incremental) close(i model.ProcID) (model.CkptID, []int) {
	idx := inc.nextIndex[i]
	v := inc.ids[i][idx]

	tdv := make([]int, inc.n)
	copy(tdv, inc.cur[i])
	inc.taken[v] = true
	inc.tdvs[v] = tdv
	inc.cur[i][i] = idx + 1

	// Every R-path into C_{i,idx} is now judgeable, and no later event
	// can add one whose detection this scan would miss: a future edge
	// insertion that makes v newly reachable runs through propagate,
	// which checks the pair then.
	for a := int32(0); a < int32(len(inc.reach)); a++ {
		if inc.reach[a].get(v) {
			inc.judge(a, v)
		}
	}

	inc.events[i] = 0
	inc.nextIndex[i] = idx + 1
	pending := inc.newNode(i, idx+1)
	inc.addEdge(v, pending)
	return model.CkptID{Proc: i, Index: idx}, tdv
}

// Send records that process from sent a message to process to in from's
// open interval, stamping it with from's running vector. It returns a
// handle to pass to Deliver exactly once.
func (inc *Incremental) Send(from, to model.ProcID) (int, error) {
	if inc.sealed {
		return 0, fmt.Errorf("rgraph: incremental checker is sealed")
	}
	if int(from) < 0 || int(from) >= inc.n || int(to) < 0 || int(to) >= inc.n {
		return 0, fmt.Errorf("rgraph: send %d -> %d: process out of range [0,%d)", from, to, inc.n)
	}
	h := inc.nextMsg
	inc.nextMsg++
	inc.stamps[h] = inc.cur[from].Clone()
	inc.flight[h] = pendingEdge{from: from, to: to, sendInterval: inc.nextIndex[from]}
	inc.events[from]++
	return h, nil
}

// Deliver records the delivery of a previously sent message: the
// receiver's running vector absorbs the send-time stamp, and the message
// edge I_{from,x} -> I_{to,y} enters the R-graph, possibly completing
// untrackable R-paths (which are reported through OnViolation).
func (inc *Incremental) Deliver(handle int) error {
	if inc.sealed {
		return fmt.Errorf("rgraph: incremental checker is sealed")
	}
	pe, ok := inc.flight[handle]
	if !ok {
		return fmt.Errorf("rgraph: deliver: unknown or already delivered message handle %d", handle)
	}
	delete(inc.flight, handle)
	stamp := inc.stamps[handle]
	delete(inc.stamps, handle)

	inc.cur[pe.to].MaxInto(stamp)
	inc.events[pe.to]++
	u := inc.ids[pe.from][pe.sendInterval]
	v := inc.ids[pe.to][inc.nextIndex[pe.to]]
	inc.addEdge(u, v)
	return nil
}

// InFlight returns the number of sent but undelivered messages.
func (inc *Incremental) InFlight() int { return len(inc.flight) }

// Seal finalizes the run the way Builder.FinalizeLossy does: undelivered
// messages are dropped and every process whose open interval contains an
// event takes a final checkpoint, so all events belong to closed
// intervals. Further mutations fail. Seal is idempotent.
func (inc *Incremental) Seal() {
	if inc.sealed {
		return
	}
	for h := range inc.flight {
		delete(inc.flight, h)
		delete(inc.stamps, h)
	}
	for i := 0; i < inc.n; i++ {
		if inc.events[i] > 0 {
			inc.close(model.ProcID(i))
		}
	}
	inc.sealed = true
}

// Sealed reports whether Seal has run.
func (inc *Incremental) Sealed() bool { return inc.sealed }

// NumCheckpoints returns the number of closed checkpoints.
func (inc *Incremental) NumCheckpoints() int {
	total := 0
	for i := 0; i < inc.n; i++ {
		total += inc.nextIndex[i]
	}
	return total
}

// Report evaluates the seal-now pattern: the run as if Seal were called
// at this instant. Pending checkpoints of event-bearing intervals are
// judged with the vector they would record (the process's running
// vector); eventless open intervals do not exist in the sealed pattern
// and are excluded. After Seal the result equals Analyzer.CheckRDT on
// the finalized pattern: same verdict, same RPathPairs/TrackablePairs,
// and Violations sorted in the batch checker's enumeration order (so the
// first violation coincides), capped at maxViolations (<= 0 means 16).
func (inc *Incremental) Report(maxViolations int) *Report {
	if maxViolations <= 0 {
		maxViolations = 16
	}
	rep := &Report{RDT: true}
	var viol []Violation
	for a := int32(0); a < int32(len(inc.reach)); a++ {
		if !inc.materialized(a) {
			continue
		}
		aProc, aIdx := inc.nodeProc[a], int(inc.nodeIndex[a])
		inc.scratch = inc.reach[a].appendBits(inc.scratch[:0])
		for _, b := range inc.scratch {
			if !inc.materialized(b) {
				continue
			}
			rep.RPathPairs++
			var tdvB []int
			if inc.taken[b] {
				tdvB = inc.tdvs[b]
			} else {
				tdvB = inc.cur[inc.nodeProc[b]]
			}
			if tdvB[aProc] >= aIdx {
				rep.TrackablePairs++
				continue
			}
			rep.RDT = false
			viol = append(viol, Violation{
				From: model.CkptID{Proc: model.ProcID(aProc), Index: aIdx},
				To:   model.CkptID{Proc: model.ProcID(inc.nodeProc[b]), Index: int(inc.nodeIndex[b])},
			})
		}
	}
	sort.Slice(viol, func(x, y int) bool { return lessViolation(viol[x], viol[y]) })
	if len(viol) > maxViolations {
		viol = viol[:maxViolations]
	}
	rep.Violations = viol
	return rep
}

func lessViolation(a, b Violation) bool {
	if a.From.Proc != b.From.Proc {
		return a.From.Proc < b.From.Proc
	}
	if a.From.Index != b.From.Index {
		return a.From.Index < b.From.Index
	}
	if a.To.Proc != b.To.Proc {
		return a.To.Proc < b.To.Proc
	}
	return a.To.Index < b.To.Index
}

// materialized reports whether the node exists in the seal-now pattern:
// every closed checkpoint does, and the pending checkpoint of an
// interval that contains at least one event (Seal would close it).
func (inc *Incremental) materialized(v int32) bool {
	if inc.taken[v] {
		return true
	}
	i := inc.nodeProc[v]
	return int(inc.nodeIndex[v]) == inc.nextIndex[i] && inc.events[i] > 0
}

// judge checks the now-complete pair (a, closed b) against b's recorded
// vector, accounting for a violation exactly once (each reach bit is set
// exactly once, and closed nodes are scanned once, at close).
func (inc *Incremental) judge(a, b int32) {
	aProc, aIdx := inc.nodeProc[a], int(inc.nodeIndex[a])
	if inc.tdvs[b][aProc] >= aIdx {
		return
	}
	v := Violation{
		From: model.CkptID{Proc: model.ProcID(aProc), Index: aIdx},
		To:   model.CkptID{Proc: model.ProcID(inc.nodeProc[b]), Index: int(inc.nodeIndex[b])},
	}
	inc.violations++
	if inc.first == nil || lessViolation(v, *inc.first) {
		first := v
		inc.first = &first
	}
	if inc.onViolation != nil {
		inc.onViolation(v)
	}
}

// newNode allocates the R-graph node of C_{i,x}.
func (inc *Incremental) newNode(i model.ProcID, x int) int32 {
	v := int32(len(inc.nodeProc))
	inc.nodeProc = append(inc.nodeProc, int32(i))
	inc.nodeIndex = append(inc.nodeIndex, int32(x))
	inc.taken = append(inc.taken, false)
	inc.tdvs = append(inc.tdvs, nil)
	inc.reach = append(inc.reach, nil)
	inc.preds = append(inc.preds, nil)
	inc.ids[i] = append(inc.ids[i], v)
	return v
}

// addEdge inserts u -> v and restores the transitive closure, judging
// every pair (w, b) with b closed that the edge newly creates.
func (inc *Incremental) addEdge(u, v int32) {
	for _, p := range inc.preds[v] {
		if p == u {
			return // parallel message between the same interval pair
		}
	}
	inc.preds[v] = append(inc.preds[v], u)

	// Worklist propagation: a node is revisited whenever its reach set
	// grows, and bits only ever get set, so the fixpoint terminates and
	// each (node, target) pair is reported as new at most once.
	if !inc.grow(u, v) {
		return
	}
	work := append(inc.work[:0], u)
	for len(work) > 0 {
		w := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range inc.preds[w] {
			if inc.grow(p, w) {
				work = append(work, p)
			}
		}
	}
	inc.work = work
}

// grow merges {v} ∪ reach(v) into reach(p), judges the newly reachable
// closed targets, and reports whether reach(p) changed.
func (inc *Incremental) grow(p, v int32) bool {
	inc.scratch = inc.reach[p].merge(inc.reach[v], v, inc.scratch[:0])
	if len(inc.scratch) == 0 {
		return false
	}
	for _, b := range inc.scratch {
		if inc.taken[b] {
			inc.judge(p, b)
		}
	}
	return true
}

// dynbits is a growable bitset keyed by node id.
type dynbits []uint64

func (d dynbits) get(i int32) bool {
	w := int(i >> 6)
	return w < len(d) && d[w]&(1<<(uint(i)&63)) != 0
}

// merge ors src and the single bit v into d, appending every newly-set
// bit position to newBits and returning it.
func (d *dynbits) merge(src dynbits, v int32, newBits []int32) []int32 {
	need := int(v>>6) + 1
	if len(src) > need {
		need = len(src)
	}
	for len(*d) < need {
		*d = append(*d, 0)
	}
	dd := *d
	for w := 0; w < len(src); w++ {
		diff := src[w] &^ dd[w]
		if diff == 0 {
			continue
		}
		dd[w] |= diff
		base := int32(w << 6)
		for diff != 0 {
			newBits = append(newBits, base+int32(bits.TrailingZeros64(diff)))
			diff &= diff - 1
		}
	}
	if w, bit := int(v>>6), uint64(1)<<(uint(v)&63); dd[w]&bit == 0 {
		dd[w] |= bit
		newBits = append(newBits, v)
	}
	return newBits
}

// appendBits appends every set bit position to out and returns it.
func (d dynbits) appendBits(out []int32) []int32 {
	for w, word := range d {
		base := int32(w << 6)
		for word != 0 {
			out = append(out, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return out
}
