package rgraph

import "github.com/rdt-go/rdt/internal/model"

// This file provides the chain-level characterizations of RDT — the
// "visible" formulations the paper builds its protocol conditions from —
// implemented independently of the TDV-based checker so the two can be
// cross-validated:
//
//   - a message chain from C_{i,x} to C_{j,y} is *causally doubled* when a
//     causal message chain links the same rollback dependency, i.e. starts
//     in an interval x' >= x of P_i and ends in an interval y' <= y of
//     P_j (its "causal sibling");
//   - a pattern satisfies RDT iff every message chain is causally doubled
//     (Wang's characterization; same-process backward chains can never be
//     doubled, which is exactly the case the protocol's condition C2
//     guards).

// CausallyDoubled reports whether the rollback dependency carried by any
// chain from a to b is witnessed causally: there is a causal message chain
// from C_{a.Proc,x'} to C_{b.Proc,y'} with x' >= a.Index and y' <= b.Index.
func (c *Chains) CausallyDoubled(a, b model.CkptID) bool {
	for _, i := range c.bySender[a.Proc] {
		if c.p.Messages[i].SendInterval < a.Index {
			continue
		}
		row := c.causalReach[i]
		for _, j := range c.byReceiver[b.Proc] {
			if c.p.Messages[j].DeliverInterval <= b.Index && row.get(j) {
				return true
			}
		}
	}
	return false
}

// CheckRDTByChains decides the RDT property purely at the message-chain
// level: every chain whose endpoints are not trivially ordered (same
// process, forward) must be causally doubled. It returns the same verdict
// as CheckRDT (the equivalence is property-tested), with up to
// maxViolations undoubled chains reported as Violations (<= 0 means 16).
//
// Same-process forward chains (from C_{i,x} to C_{i,y}, x <= y) are
// exempt: the dependency they carry is subsumed by the process's own
// order, so Definition 3.3 declares the corresponding R-paths trackable
// outright. Same-process *backward* chains (x > y) can never be doubled —
// a causal chain cannot return to an earlier interval of its origin — so
// any such chain is a violation; breaking them is what condition C2 is
// for.
func (c *Chains) CheckRDTByChains(maxViolations int) *Report {
	if maxViolations <= 0 {
		maxViolations = 16
	}
	p := c.p
	rep := &Report{RDT: true}
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			a := model.CkptID{Proc: model.ProcID(i), Index: x}
			for j := 0; j < p.N; j++ {
				for y := range p.Checkpoints[j] {
					b := model.CkptID{Proc: model.ProcID(j), Index: y}
					if a.Proc == b.Proc && a.Index <= b.Index {
						continue
					}
					if !c.HasChain(a, b) {
						continue
					}
					rep.RPathPairs++
					if c.CausallyDoubled(a, b) {
						rep.TrackablePairs++
						continue
					}
					rep.RDT = false
					if len(rep.Violations) < maxViolations {
						rep.Violations = append(rep.Violations, Violation{From: a, To: b})
					}
				}
			}
		}
	}
	return rep
}
