package rgraph

import (
	"errors"
	"strings"
	"testing"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/trace"
)

func figure1(t *testing.T) *model.Pattern {
	t.Helper()
	p, err := trace.Figure1()
	if err != nil {
		t.Fatalf("figure1: %v", err)
	}
	return p
}

func ck(proc model.ProcID, index int) model.CkptID {
	return model.CkptID{Proc: proc, Index: index}
}

func TestBuildFigure1(t *testing.T) {
	g, err := Build(figure1(t))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if g.NumNodes() != 12 {
		t.Errorf("nodes = %d, want 12", g.NumNodes())
	}
	// 9 interval edges + 6 distinct message edges (m4 and m6 connect the
	// same pair of intervals).
	if g.NumEdges() != 15 {
		t.Errorf("edges = %d, want 15", g.NumEdges())
	}
}

func TestRPathsOfFigure1(t *testing.T) {
	g, err := Build(figure1(t))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tests := []struct {
		name string
		from model.CkptID
		to   model.CkptID
		want bool
	}{
		{"chain m3,m2 gives C_k1 -> C_i2", ck(trace.Pk, 1), ck(trace.Pi, 2), true},
		{"chains m5,m4 / m5,m6 give C_i3 -> C_k2", ck(trace.Pi, 3), ck(trace.Pk, 2), true},
		{"long chain gives C_k1 -> C_j3", ck(trace.Pk, 1), ck(trace.Pj, 3), true},
		{"interval edges C_i0 -> C_i3", ck(trace.Pi, 0), ck(trace.Pi, 3), true},
		{"m1 gives C_i1 -> C_j1", ck(trace.Pi, 1), ck(trace.Pj, 1), true},
		{"no backward path C_j3 -> C_i1", ck(trace.Pj, 3), ck(trace.Pi, 1), false},
		{"no path C_i3 -> C_j1", ck(trace.Pi, 3), ck(trace.Pj, 1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := g.HasRPath(tt.from, tt.to); got != tt.want {
				t.Errorf("HasRPath(%v,%v) = %v, want %v", tt.from, tt.to, got, tt.want)
			}
		})
	}
}

func TestFigure1HasNoCycles(t *testing.T) {
	p := figure1(t)
	g, err := Build(p)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			id := ck(model.ProcID(i), x)
			if g.OnCycle(id) {
				t.Errorf("%v unexpectedly on a cycle", id)
			}
		}
	}
}

func TestSuccessorsOfFigure1(t *testing.T) {
	g, err := Build(figure1(t))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	succ := g.Successors(ck(trace.Pi, 3))
	// C_{i,3} has the message edge of m5 (sent in I_{i,3}, delivered in
	// I_{j,2}) — and no interval successor, being P_i's last checkpoint.
	if len(succ) != 1 || succ[0] != ck(trace.Pj, 2) {
		t.Errorf("successors of C_i3 = %v, want [C{1,2}]", succ)
	}
}

func TestOfflineTDVsOfFigure1(t *testing.T) {
	p := figure1(t)
	tdvs, err := ComputeTDVs(p)
	if err != nil {
		t.Fatalf("compute: %v", err)
	}
	tests := []struct {
		at   model.CkptID
		want []int
	}{
		// C_{i,2} causally depends on C_{j,1}'s interval through m2 (which
		// carries P_j's interval index 1) and on nothing of P_k (the chain
		// [m3 m2] is non-causal).
		{ck(trace.Pi, 2), []int{2, 1, 0}},
		// C_{j,2} depends on m5 (I_{i,3}) and on m3 (I_{k,1}).
		{ck(trace.Pj, 2), []int{3, 2, 1}},
		// C_{k,2} depends on m4's piggyback: P_j interval 2, which itself
		// carried P_i interval 1 (via m1) but not m5 (sent later).
		{ck(trace.Pk, 2), []int{3, 2, 2}},
		// C_{j,3} depends on m7 from I_{k,2}.
		{ck(trace.Pj, 3), []int{3, 3, 2}},
	}
	for _, tt := range tests {
		got := tdvs.At(tt.at)
		for k := range tt.want {
			if got[k] != tt.want[k] {
				t.Errorf("TDV(%v) = %v, want %v", tt.at, got, tt.want)
				break
			}
		}
	}
}

func TestFigure1ViolatesRDT(t *testing.T) {
	rep, err := CheckRDT(figure1(t), 0)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if rep.RDT {
		t.Fatal("figure 1 reported as RDT; the chain [m3 m2] has no causal sibling")
	}
	found := false
	for _, v := range rep.Violations {
		if v.From == ck(trace.Pk, 1) && v.To == ck(trace.Pi, 2) {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v do not include C_k1 ~> C_i2", rep.Violations)
	}
	if rep.TrackablePairs >= rep.RPathPairs {
		t.Errorf("trackable %d, r-paths %d: expected strict gap", rep.TrackablePairs, rep.RPathPairs)
	}
}

func TestChainsOfFigure1(t *testing.T) {
	c, err := NewChains(figure1(t))
	if err != nil {
		t.Fatalf("chains: %v", err)
	}
	tests := []struct {
		name     string
		from, to model.CkptID
		chain    bool
		causal   bool
	}{
		{"m3m2: zigzag only", ck(trace.Pk, 1), ck(trace.Pi, 2), true, false},
		{"m5m4 has causal sibling m5m6", ck(trace.Pi, 3), ck(trace.Pk, 2), true, true},
		{"m3m4m7 causal", ck(trace.Pk, 1), ck(trace.Pj, 3), true, true},
		{"m1 direct", ck(trace.Pi, 1), ck(trace.Pj, 1), true, true},
		{"no chain backwards", ck(trace.Pj, 3), ck(trace.Pk, 1), false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.HasChain(tt.from, tt.to); got != tt.chain {
				t.Errorf("HasChain = %v, want %v", got, tt.chain)
			}
			if got := c.HasCausalChain(tt.from, tt.to); got != tt.causal {
				t.Errorf("HasCausalChain = %v, want %v", got, tt.causal)
			}
		})
	}
}

func TestChainImpliesRPath(t *testing.T) {
	p := figure1(t)
	g, err := Build(p)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	c, err := NewChains(p)
	if err != nil {
		t.Fatalf("chains: %v", err)
	}
	forEachPair(p, func(a, b model.CkptID) {
		if c.HasChain(a, b) && !g.HasRPath(a, b) {
			t.Errorf("chain %v -> %v without R-path", a, b)
		}
		if c.HasCausalChain(a, b) && !c.HasChain(a, b) {
			t.Errorf("causal chain %v -> %v not a chain", a, b)
		}
	})
}

func TestConsistencyOfFigure1Globals(t *testing.T) {
	p := figure1(t)
	ok, err := IsConsistent(p, model.GlobalCheckpoint{1, 1, 1})
	if err != nil {
		t.Fatalf("consistent: %v", err)
	}
	if !ok {
		t.Error("{C_i1, C_j1, C_k1} should be consistent")
	}
	orphan, err := FindOrphan(p, model.GlobalCheckpoint{2, 2, 1})
	if err != nil {
		t.Fatalf("orphan: %v", err)
	}
	if orphan == nil {
		t.Fatal("{C_i2, C_j2, C_k1} should be inconsistent (orphan m5)")
	}
	if orphan.Message.ID != trace.M5 {
		t.Errorf("orphan = m%d, want m%d", orphan.Message.ID, trace.M5)
	}
	if orphan.Error() == "" {
		t.Error("orphan error string empty")
	}
}

func TestFindOrphanValidatesGlobal(t *testing.T) {
	p := figure1(t)
	if _, err := FindOrphan(p, model.GlobalCheckpoint{1, 1}); err == nil {
		t.Error("accepted short global checkpoint")
	}
	if _, err := FindOrphan(p, model.GlobalCheckpoint{9, 1, 1}); err == nil {
		t.Error("accepted out-of-range entry")
	}
}

func TestMinConsistentContainingFigure1(t *testing.T) {
	p := figure1(t)
	g, err := MinConsistentContaining(p, ck(trace.Pi, 2))
	if err != nil {
		t.Fatalf("min: %v", err)
	}
	want := model.GlobalCheckpoint{2, 1, 1}
	if !g.Equal(want) {
		t.Errorf("min containing C_i2 = %v, want %v", g, want)
	}
	ok, err := IsConsistent(p, g)
	if err != nil || !ok {
		t.Errorf("min result inconsistent: %v %v", ok, err)
	}
}

func TestMaxConsistentContainingFigure1(t *testing.T) {
	p := figure1(t)
	g, err := MaxConsistentContaining(p, ck(trace.Pk, 1))
	if err != nil {
		t.Fatalf("max: %v", err)
	}
	ok, err := IsConsistent(p, g)
	if err != nil || !ok {
		t.Fatalf("max result inconsistent: %v %v", ok, err)
	}
	if g[trace.Pk] != 1 {
		t.Errorf("pinned entry moved: %v", g)
	}
	// Maximality: raising any non-pinned entry by one must break
	// consistency or exceed the range.
	for i := range g {
		if model.ProcID(i) == trace.Pk {
			continue
		}
		if g[i] == p.LastIndex(model.ProcID(i)) {
			continue
		}
		bumped := g.Clone()
		bumped[i]++
		ok, err := IsConsistent(p, bumped)
		if err != nil {
			t.Fatalf("bumped: %v", err)
		}
		if ok {
			t.Errorf("result %v not maximal: %v also consistent", g, bumped)
		}
	}
}

func TestMinMaxPinnedConflicts(t *testing.T) {
	p := figure1(t)
	if _, err := MinConsistentContaining(p); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := MinConsistentContaining(p, ck(trace.Pi, 1), ck(trace.Pi, 2)); !errors.Is(err, ErrNoConsistentGlobal) {
		t.Errorf("conflicting pins: err = %v", err)
	}
	if _, err := MinConsistentContaining(p, ck(trace.Pi, 9)); err == nil {
		t.Error("out-of-range checkpoint accepted")
	}
	// Pinning both C_{i,2} and C_{j,2} is impossible: m5 is orphan.
	if _, err := MinConsistentContaining(p, ck(trace.Pi, 2), ck(trace.Pj, 2)); !errors.Is(err, ErrNoConsistentGlobal) {
		t.Errorf("inconsistent pair: err = %v", err)
	}
	if _, err := MaxConsistentContaining(p, ck(trace.Pi, 2), ck(trace.Pj, 2)); !errors.Is(err, ErrNoConsistentGlobal) {
		t.Errorf("inconsistent pair (max): err = %v", err)
	}
}

func TestRecoveryLineFigure1(t *testing.T) {
	p := figure1(t)
	last := model.GlobalCheckpoint{3, 3, 3}
	line, err := RecoveryLine(p, last)
	if err != nil {
		t.Fatalf("recovery line: %v", err)
	}
	ok, err := IsConsistent(p, line)
	if err != nil || !ok {
		t.Fatalf("line %v inconsistent: %v %v", line, ok, err)
	}
	if !line.DominatedBy(last) {
		t.Errorf("line %v exceeds bounds", line)
	}
	depth := RollbackDepth(last, line)
	for i, d := range depth {
		if d < 0 {
			t.Errorf("negative rollback depth %d for process %d", d, i)
		}
	}
}

func TestZigzagNXAndExtensibility(t *testing.T) {
	p := figure1(t)
	c, err := NewChains(p)
	if err != nil {
		t.Fatalf("chains: %v", err)
	}
	// m5 is sent after C_{i,2} and delivered before C_{j,2}: zigzag.
	if !c.ZigzagNX(ck(trace.Pi, 2), ck(trace.Pj, 2)) {
		t.Error("expected zigzag C_i2 ~> C_j2 (orphan m5)")
	}
	if c.CanExtend([]model.CkptID{ck(trace.Pi, 2), ck(trace.Pj, 2)}) {
		t.Error("{C_i2, C_j2} should not be extensible")
	}
	if !c.CanExtend([]model.CkptID{ck(trace.Pi, 1), ck(trace.Pj, 1), ck(trace.Pk, 1)}) {
		t.Error("{C_i1, C_j1, C_k1} should be extensible")
	}
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			if c.Useless(ck(model.ProcID(i), x)) {
				t.Errorf("C{%d,%d} reported useless in an acyclic figure", i, x)
			}
		}
	}
}

// TestExtensibilityMatchesMinFixpoint cross-validates Netzer–Xu
// extensibility against the orphan fixpoint: a pair of checkpoints can be
// extended to a consistent global checkpoint iff pinning both succeeds.
func TestExtensibilityMatchesMinFixpoint(t *testing.T) {
	p := figure1(t)
	c, err := NewChains(p)
	if err != nil {
		t.Fatalf("chains: %v", err)
	}
	forEachPair(p, func(a, b model.CkptID) {
		if a.Proc == b.Proc {
			return
		}
		_, minErr := MinConsistentContaining(p, a, b)
		canPin := minErr == nil
		canExtend := c.CanExtend([]model.CkptID{a, b})
		if canPin != canExtend {
			t.Errorf("pair (%v,%v): fixpoint %v, zigzag extensibility %v", a, b, canPin, canExtend)
		}
	})
}

func TestTrackableImpliesRPathOrSelf(t *testing.T) {
	p := figure1(t)
	g, err := Build(p)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tdvs, err := ComputeTDVs(p)
	if err != nil {
		t.Fatalf("tdvs: %v", err)
	}
	forEachPair(p, func(a, b model.CkptID) {
		// Index-0 dependencies are vacuous: TDV entries start at 0, so
		// every checkpoint "depends" on every initial checkpoint.
		if a.Index == 0 || a == b {
			return
		}
		if tdvs.Trackable(a, b) && !g.HasRPath(a, b) {
			t.Errorf("trackable %v -> %v without R-path", a, b)
		}
	})
}

func TestVerifyRecordedTDVs(t *testing.T) {
	p := figure1(t)
	// Figure 1 carries no recorded vectors: trivially consistent.
	if err := VerifyRecordedTDVs(p); err != nil {
		t.Fatalf("unannotated pattern: %v", err)
	}
	// Inject the correct vector: still fine.
	tdvs, err := ComputeTDVs(p)
	if err != nil {
		t.Fatalf("tdvs: %v", err)
	}
	p.Checkpoints[trace.Pi][2].TDV = tdvs.At(ck(trace.Pi, 2)).Clone()
	if err := VerifyRecordedTDVs(p); err != nil {
		t.Fatalf("correct annotation rejected: %v", err)
	}
	// Corrupt it: must be detected.
	p.Checkpoints[trace.Pi][2].TDV[2] = 7
	if err := VerifyRecordedTDVs(p); err == nil {
		t.Fatal("corrupted TDV annotation not detected")
	}
}

func TestCheckLemma41OnFigure1(t *testing.T) {
	// Figure 1 has no pair of trackable paths violating Lemma 4.1 (the
	// violating structure needs a trackable cycle through consecutive
	// checkpoints, which the figure lacks).
	if err := CheckLemma41(figure1(t)); err != nil {
		t.Errorf("lemma 4.1 on figure 1: %v", err)
	}
}

func TestBuildRejectsOpenIntervals(t *testing.T) {
	b := model.NewBuilder(2)
	m := b.Send(0, 1)
	b.Checkpoint(0, model.KindBasic, nil)
	if err := b.Deliver(m); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	// Strip process 1's final checkpoint to leave the delivery in an open
	// interval.
	p.Checkpoints[1] = p.Checkpoints[1][:1]
	if _, err := Build(p); err == nil {
		t.Fatal("graph built over an open interval")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{From: ck(0, 1), To: ck(1, 2)}
	if got := v.String(); got != "C{0,1} ~> C{1,2} untrackable" {
		t.Errorf("String = %q", got)
	}
}

// forEachPair enumerates all ordered checkpoint pairs of the pattern.
func forEachPair(p *model.Pattern, fn func(a, b model.CkptID)) {
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			for j := 0; j < p.N; j++ {
				for y := range p.Checkpoints[j] {
					fn(ck(model.ProcID(i), x), ck(model.ProcID(j), y))
				}
			}
		}
	}
}

func TestInTransitFigure1(t *testing.T) {
	p := figure1(t)
	// At the consistent cut {1,1,1}: m2 (sent I_{j,1}, delivered I_{i,2})
	// and m3?  m3 is delivered in I_{j,1} <= 1, so only m2 is in transit.
	msgs, err := InTransit(p, model.GlobalCheckpoint{1, 1, 1})
	if err != nil {
		t.Fatalf("in transit: %v", err)
	}
	if len(msgs) != 1 || msgs[0].ID != trace.M2 {
		t.Errorf("in transit at {1,1,1} = %v, want [m2]", msgs)
	}
	// At the all-initial cut nothing is in transit (nothing sent in
	// interval <= 0).
	msgs, err = InTransit(p, model.GlobalCheckpoint{0, 0, 0})
	if err != nil {
		t.Fatalf("in transit: %v", err)
	}
	if len(msgs) != 0 {
		t.Errorf("in transit at origin = %v, want none", msgs)
	}
	if _, err := InTransit(p, model.GlobalCheckpoint{9, 9}); err == nil {
		t.Error("bad cut accepted")
	}
}

func TestCheckRDTByChainsOnFigure1(t *testing.T) {
	p := figure1(t)
	c, err := NewChains(p)
	if err != nil {
		t.Fatalf("chains: %v", err)
	}
	rep := c.CheckRDTByChains(8)
	if rep.RDT {
		t.Fatal("chain characterization missed the Figure 1 violation")
	}
	found := false
	for _, v := range rep.Violations {
		if v.From == ck(trace.Pk, 1) && v.To == ck(trace.Pi, 2) {
			found = true
		}
	}
	if !found {
		t.Errorf("violations = %v, want to include C_k1 ~> C_i2", rep.Violations)
	}
	// The doubled chain of the figure: [m5 m4] has sibling [m5 m6].
	if !c.CausallyDoubled(ck(trace.Pi, 3), ck(trace.Pk, 2)) {
		t.Error("[m5 m4] should be causally doubled by [m5 m6]")
	}
	if c.CausallyDoubled(ck(trace.Pk, 1), ck(trace.Pi, 2)) {
		t.Error("[m3 m2] has no causal sibling")
	}
}

func TestRollbackClosureFigure1(t *testing.T) {
	g, err := Build(figure1(t))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	got := g.RollbackClosure(ck(trace.Pi, 3))
	want := []model.CkptID{
		ck(trace.Pi, 3),
		ck(trace.Pj, 2), ck(trace.Pj, 3),
		ck(trace.Pk, 2), ck(trace.Pk, 3),
	}
	if len(got) != len(want) {
		t.Fatalf("closure = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("closure = %v, want %v", got, want)
		}
	}
	// Rolling back past an initial checkpoint dooms everything downstream
	// of its messages; closure of all initials covers the whole graph.
	all := g.RollbackClosure(ck(trace.Pi, 0), ck(trace.Pj, 0), ck(trace.Pk, 0))
	if len(all) != g.NumNodes() {
		t.Errorf("closure of initials = %d nodes, want %d", len(all), g.NumNodes())
	}
}

func TestReachableCountFigure1(t *testing.T) {
	g, err := Build(figure1(t))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// C_{i,3} reaches the four checkpoints listed in the rollback-closure
	// test (itself excluded: paths have length >= 1 and there is no cycle).
	if got := g.ReachableCount(ck(trace.Pi, 3)); got != 4 {
		t.Errorf("reachable from C_i3 = %d, want 4", got)
	}
}

func TestRGraphDOT(t *testing.T) {
	g, err := Build(figure1(t))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph rgraph", "r0_0", "r2_3", "cluster_p1", "style=dotted"} {
		if !strings.Contains(dot, want) {
			t.Errorf("R-graph DOT missing %q", want)
		}
	}
	if strings.Contains(dot, "salmon") {
		t.Error("acyclic figure rendered cycle highlights")
	}
}

func TestCountChainsFigure1(t *testing.T) {
	c, err := NewChains(figure1(t))
	if err != nil {
		t.Fatalf("chains: %v", err)
	}
	chains, causal := c.CountChains()
	if causal > chains {
		t.Fatalf("causal pairs %d exceed chain pairs %d", causal, chains)
	}
	if chains == 0 || causal == 0 {
		t.Fatalf("counts degenerate: %d %d", chains, causal)
	}
	// Figure 1 is not RDT, so some chain pair must lack a causal chain.
	if causal == chains {
		t.Error("all chain pairs causal although the figure violates RDT")
	}
}
