package rgraph

import (
	"testing"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/trace"
)

// TestExplainFigure1: the paper's own example. (C_{k,1}, C_{i,2}) is an
// R-path witnessed only by the non-causal chain [m3 m2], so the checker
// convicts the pair and the explainer must hand back exactly that chain.
func TestExplainFigure1(t *testing.T) {
	p, err := trace.Figure1()
	if err != nil {
		t.Fatalf("figure 1: %v", err)
	}
	rep, witnesses, err := Explain(p, 0)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if rep.RDT {
		t.Fatalf("figure 1 should violate RDT")
	}
	if len(witnesses) != len(rep.Violations) {
		t.Fatalf("%d witnesses for %d violations", len(witnesses), len(rep.Violations))
	}
	target := Violation{
		From: model.CkptID{Proc: trace.Pk, Index: 1},
		To:   model.CkptID{Proc: trace.Pi, Index: 2},
	}
	var w *Witness
	for _, cand := range witnesses {
		if cand.Violation == target {
			w = cand
		}
	}
	if w == nil {
		t.Fatalf("no witness for %v among %v", target, rep.Violations)
	}
	ids := w.MessageIDs()
	if len(ids) != 2 || ids[0] != trace.M3 || ids[1] != trace.M2 {
		t.Fatalf("witness chain %v, want [m3 m2]", ids)
	}
	if w.NonCausal != 1 || w.Hops[0].CausalToNext {
		t.Fatalf("the m3 -> m2 continuation must be the zigzag: %+v", w)
	}
	for _, cand := range witnesses {
		if err := VerifyWitness(p, cand); err != nil {
			t.Fatalf("verify: %v", err)
		}
	}
}

// TestExplainRejectsTrackablePairs: asking for a witness of a pair that
// is not a violation must fail rather than fabricate evidence.
func TestExplainRejectsTrackablePairs(t *testing.T) {
	p, err := trace.Figure1()
	if err != nil {
		t.Fatalf("figure 1: %v", err)
	}
	e, err := NewExplainer(p)
	if err != nil {
		t.Fatalf("explainer: %v", err)
	}
	samePair := Violation{
		From: model.CkptID{Proc: trace.Pi, Index: 0},
		To:   model.CkptID{Proc: trace.Pi, Index: 2},
	}
	if _, err := e.Explain(samePair); err == nil {
		t.Fatalf("same-process pair must not be explainable")
	}
	// No message chain runs from C_{i,3}'s sends back into I_{k,1}.
	noPath := Violation{
		From: model.CkptID{Proc: trace.Pk, Index: 2},
		To:   model.CkptID{Proc: trace.Pi, Index: 1},
	}
	if _, err := e.Explain(noPath); err == nil {
		t.Fatalf("chainless pair must not be explainable")
	}
}

// TestExplainProperty: over >= 500 seeded random patterns, every
// conviction of the batch checker yields a witness that the independent
// verifier confirms is a valid, non-causally-doubled zigzag chain with
// at least two messages and at least one non-causal continuation.
func TestExplainProperty(t *testing.T) {
	const seeds = 500
	violating := 0
	for seed := int64(1); seed <= seeds; seed++ {
		p := randomPattern(t, seed, 3+int(seed%3), 50)
		rep, witnesses, err := Explain(p, 64)
		if err != nil {
			t.Fatalf("seed %d: explain: %v", seed, err)
		}
		if rep.RDT {
			continue
		}
		violating++
		if len(witnesses) != len(rep.Violations) {
			t.Fatalf("seed %d: %d witnesses for %d violations", seed, len(witnesses), len(rep.Violations))
		}
		chains, err := NewChains(p)
		if err != nil {
			t.Fatalf("seed %d: chains: %v", seed, err)
		}
		for i, w := range witnesses {
			if w.Violation != rep.Violations[i] {
				t.Fatalf("seed %d: witness %d explains %v, violation is %v", seed, i, w.Violation, rep.Violations[i])
			}
			if len(w.Hops) < 2 {
				t.Fatalf("seed %d: witness %v has %d hops; violations need >= 2", seed, w.Violation, len(w.Hops))
			}
			if err := VerifyWitnessChains(p, chains, w); err != nil {
				t.Fatalf("seed %d: verify: %v", seed, err)
			}
		}
	}
	if violating == 0 {
		t.Fatalf("no seed produced a violation — the property test is vacuous")
	}
}

// TestExplainMinimal: the witness is minimal — no shorter chain links
// the violating pair. Checked by brute-force BFS-free enumeration of all
// chains up to the witness length on small patterns.
func TestExplainMinimal(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		p := randomPattern(t, seed, 3, 40)
		rep, witnesses, err := Explain(p, 32)
		if err != nil {
			t.Fatalf("seed %d: explain: %v", seed, err)
		}
		for _, w := range witnesses {
			if n := shortestChainLen(p, w.Violation); n != len(w.Hops) {
				t.Fatalf("seed %d: witness for %v has %d hops, shortest chain has %d",
					seed, w.Violation, len(w.Hops), n)
			}
		}
		_ = rep
	}
}

// shortestChainLen computes, by independent breadth-first layering over
// message sets, the fewest messages in a chain realizing the pair.
func shortestChainLen(p *model.Pattern, v Violation) int {
	frontier := map[int]bool{}
	for i := range p.Messages {
		m := &p.Messages[i]
		if m.From == v.From.Proc && m.SendInterval >= v.From.Index {
			frontier[i] = true
		}
	}
	seen := map[int]bool{}
	for length := 1; length <= len(p.Messages)+1; length++ {
		next := map[int]bool{}
		for i := range frontier {
			m := &p.Messages[i]
			if m.To == v.To.Proc && m.DeliverInterval <= v.To.Index {
				return length
			}
			seen[i] = true
			for j := range p.Messages {
				mj := &p.Messages[j]
				if !seen[j] && m.To == mj.From && m.DeliverInterval <= mj.SendInterval {
					next[j] = true
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return -1
}

// TestIncrementalExplain: the on-line checker explains its own
// violations against the lockstep pattern snapshot, matching the batch
// explainer witness for witness.
func TestIncrementalExplain(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		p := randomPattern(t, seed, 3+int(seed%3), 50)
		inc := streamPattern(t, p)
		irep, iws, err := inc.Explain(p, 32)
		if err != nil {
			t.Fatalf("seed %d: incremental explain: %v", seed, err)
		}
		brep, bws, err := Explain(p, 32)
		if err != nil {
			t.Fatalf("seed %d: batch explain: %v", seed, err)
		}
		if irep.RDT != brep.RDT || len(iws) != len(bws) {
			t.Fatalf("seed %d: incremental (rdt=%v, %d witnesses) vs batch (rdt=%v, %d witnesses)",
				seed, irep.RDT, len(iws), brep.RDT, len(bws))
		}
		for i := range iws {
			if iws[i].String() != bws[i].String() {
				t.Fatalf("seed %d: witness %d differs:\n  incremental %v\n  batch       %v",
					seed, i, iws[i], bws[i])
			}
		}
	}
}
