package rgraph

import "math/bits"

// bitset is a fixed-capacity bit vector used for transitive-closure rows.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) or(other bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}

func (b bitset) count() int {
	total := 0
	for _, w := range b {
		total += bits.OnesCount64(w)
	}
	return total
}
