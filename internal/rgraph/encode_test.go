package rgraph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/rdt-go/rdt/internal/model"
)

// driveIncremental applies ops random events to inc. The same rng seed
// produces the same op sequence, so two checkers in the same state can
// be driven in lockstep.
func driveIncremental(t *testing.T, rng *rand.Rand, inc *Incremental, ops int) {
	t.Helper()
	n := inc.N()
	var inflight []int
	for k := 0; k < ops; k++ {
		switch r := rng.Intn(10); {
		case r < 4 && n > 1:
			from := model.ProcID(rng.Intn(n))
			to := model.ProcID(rng.Intn(n - 1))
			if to >= from {
				to++
			}
			h, err := inc.Send(from, to)
			if err != nil {
				t.Fatalf("send: %v", err)
			}
			inflight = append(inflight, h)
		case r < 7 && len(inflight) > 0:
			i := rng.Intn(len(inflight))
			if err := inc.Deliver(inflight[i]); err != nil {
				t.Fatalf("deliver: %v", err)
			}
			inflight = append(inflight[:i], inflight[i+1:]...)
		default:
			if _, _, err := inc.Checkpoint(model.ProcID(rng.Intn(n))); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}
}

// TestIncrementalEncodeRoundTrip encodes a checker mid-run, decodes it,
// and verifies the decoded checker is indistinguishable: identical
// re-encoding, identical violation accounting (recomputed during decode,
// not stored), and identical behavior when both consume the same
// remaining events through to Seal.
func TestIncrementalEncodeRoundTrip(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		n := 1 + rng.Intn(5)
		inc, err := NewIncremental(n)
		if err != nil {
			t.Fatal(err)
		}
		driveIncremental(t, rng, inc, rng.Intn(80))

		enc := inc.AppendBinary(nil)
		dec, err := DecodeIncremental(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if re := dec.AppendBinary(nil); !bytes.Equal(enc, re) {
			t.Fatalf("trial %d: re-encode differs: %d vs %d bytes", trial, len(enc), len(re))
		}
		if dec.Violations() != inc.Violations() {
			t.Fatalf("trial %d: violations %d, want %d", trial, dec.Violations(), inc.Violations())
		}
		if !reflect.DeepEqual(dec.FirstViolation(), inc.FirstViolation()) {
			t.Fatalf("trial %d: first violation %+v, want %+v",
				trial, dec.FirstViolation(), inc.FirstViolation())
		}
		if !reflect.DeepEqual(dec.Report(0), inc.Report(0)) {
			t.Fatalf("trial %d: reports differ", trial)
		}

		// Lockstep continuation: same events into both checkers, then
		// Seal; every observable must match.
		seed := int64(5000 + trial)
		driveIncremental(t, rand.New(rand.NewSource(seed)), inc, 40)
		driveIncremental(t, rand.New(rand.NewSource(seed)), dec, 40)
		inc.Seal()
		dec.Seal()
		if !bytes.Equal(inc.AppendBinary(nil), dec.AppendBinary(nil)) {
			t.Fatalf("trial %d: state diverged after continuation", trial)
		}
		if !reflect.DeepEqual(dec.Report(0), inc.Report(0)) {
			t.Fatalf("trial %d: sealed reports differ", trial)
		}
		if dec.Violations() != inc.Violations() || dec.NumCheckpoints() != inc.NumCheckpoints() {
			t.Fatalf("trial %d: sealed accounting differs", trial)
		}
		for i := 0; i < n; i++ {
			for x := 0; x <= inc.NextIndex(model.ProcID(i)); x++ {
				id := model.CkptID{Proc: model.ProcID(i), Index: x}
				if !reflect.DeepEqual(inc.TDVAt(id), dec.TDVAt(id)) {
					t.Fatalf("trial %d: TDVAt(%v) differs", trial, id)
				}
			}
		}
	}
}

// TestIncrementalEncodeSealed covers the sealed checker: decoding one
// yields a checker that is still sealed and still rejects mutations.
func TestIncrementalEncodeSealed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inc, err := NewIncremental(3)
	if err != nil {
		t.Fatal(err)
	}
	driveIncremental(t, rng, inc, 50)
	inc.Seal()
	dec, err := DecodeIncremental(inc.AppendBinary(nil))
	if err != nil {
		t.Fatalf("decode sealed: %v", err)
	}
	if !dec.Sealed() {
		t.Fatal("decoded checker not sealed")
	}
	if _, err := dec.Send(0, 1); err == nil {
		t.Fatal("sealed checker accepted a send")
	}
	if !reflect.DeepEqual(dec.Report(0), inc.Report(0)) {
		t.Fatal("sealed reports differ")
	}
}

func TestDecodeIncrementalRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	inc, err := NewIncremental(4)
	if err != nil {
		t.Fatal(err)
	}
	driveIncremental(t, rng, inc, 60)
	enc := inc.AppendBinary(nil)
	if _, err := DecodeIncremental(enc); err != nil {
		t.Fatalf("valid encoding rejected: %v", err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeIncremental(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeIncremental(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Bit flips must never panic; when they decode, the result must
	// still re-encode (the structural invariants held).
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x01
		if dec, err := DecodeIncremental(mut); err == nil {
			dec.AppendBinary(nil)
		}
	}
}
