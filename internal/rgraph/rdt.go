package rgraph

import (
	"fmt"

	"github.com/rdt-go/rdt/internal/model"
)

// Violation describes one R-path that is not on-line trackable: rolling
// back past From forces rolling back past To, but no causal message chain
// (and hence no transitive dependency vector) witnesses the dependency.
type Violation struct {
	From, To model.CkptID
}

// String renders the violation as "C{i,x} ~> C{j,y} untrackable". Built
// by concatenation, not fmt: the service formats every violation it
// traces, and on untrackable-heavy traffic Sprintf dominated the ingest
// profile.
func (v Violation) String() string {
	return v.From.String() + " ~> " + v.To.String() + " untrackable"
}

// Report is the result of an offline RDT check of a pattern.
type Report struct {
	// RDT is true when every R-path of the pattern is on-line trackable
	// (Definition 3.4).
	RDT bool
	// Violations lists the untrackable R-paths (capped at the limit given
	// to CheckRDT); empty when RDT holds.
	Violations []Violation
	// RPathPairs is the number of ordered checkpoint pairs (a, b) with an
	// R-path a -> b.
	RPathPairs int
	// TrackablePairs is the number of such pairs that are on-line
	// trackable.
	TrackablePairs int
}

// CheckRDT verifies the Rollback-Dependency Trackability property of a
// pattern: for every ordered pair of checkpoints connected by an R-path,
// the dependency must be trackable through a causal message chain, i.e.
// TDV_{to}[from.Proc] >= from.Index on the offline dependency vectors.
// maxViolations caps the number of reported violations (<= 0 means 16).
func CheckRDT(p *model.Pattern, maxViolations int) (*Report, error) {
	g, err := Build(p)
	if err != nil {
		return nil, err
	}
	tdvs, err := ComputeTDVs(p)
	if err != nil {
		return nil, err
	}
	return checkRDT(g, tdvs, maxViolations), nil
}

// CheckRDTGraph is CheckRDT on an already-built graph and TDV table.
func CheckRDTGraph(g *Graph, tdvs *TDVTable, maxViolations int) *Report {
	return checkRDT(g, tdvs, maxViolations)
}

func checkRDT(g *Graph, tdvs *TDVTable, maxViolations int) *Report {
	if maxViolations <= 0 {
		maxViolations = 16
	}
	p := g.Pattern()
	rep := &Report{RDT: true}
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			a := model.CkptID{Proc: model.ProcID(i), Index: x}
			for j := 0; j < p.N; j++ {
				for y := range p.Checkpoints[j] {
					b := model.CkptID{Proc: model.ProcID(j), Index: y}
					if !g.HasRPath(a, b) {
						continue
					}
					rep.RPathPairs++
					if tdvs.Trackable(a, b) {
						rep.TrackablePairs++
						continue
					}
					rep.RDT = false
					if len(rep.Violations) < maxViolations {
						rep.Violations = append(rep.Violations, Violation{From: a, To: b})
					}
				}
			}
		}
	}
	return rep
}

// VerifyRecordedTDVs checks that the dependency vectors recorded with the
// checkpoints of the pattern (by an on-line protocol) match the offline
// ones. Checkpoints without a recorded vector are skipped. It returns the
// first mismatch found, or nil.
func VerifyRecordedTDVs(p *model.Pattern) error {
	tdvs, err := ComputeTDVs(p)
	if err != nil {
		return err
	}
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			ck := &p.Checkpoints[i][x]
			if ck.TDV == nil {
				continue
			}
			want := tdvs.At(ck.ID())
			for k := range want {
				if ck.TDV[k] != want[k] {
					return fmt.Errorf("checkpoint %v: recorded TDV %v differs from offline TDV %v",
						ck.ID(), ck.TDV, want)
				}
			}
		}
	}
	return nil
}

// CheckLemma41 verifies Lemma 4.1 on the pattern: for any two distinct
// processes i and k, there are never two on-line trackable R-paths
// C_{i,x} -> C_{k,z-1} and C_{k,z} -> C_{i,x}. It returns an error
// describing the first counterexample found, or nil. The lemma holds for
// every run of an RDT protocol; it can fail on uncoordinated patterns.
func CheckLemma41(p *model.Pattern) error {
	tdvs, err := ComputeTDVs(p)
	if err != nil {
		return err
	}
	g, err := Build(p)
	if err != nil {
		return err
	}
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			a := model.CkptID{Proc: model.ProcID(i), Index: x}
			for k := 0; k < p.N; k++ {
				if k == i {
					continue
				}
				for z := 1; z < len(p.Checkpoints[k]); z++ {
					prev := model.CkptID{Proc: model.ProcID(k), Index: z - 1}
					cur := model.CkptID{Proc: model.ProcID(k), Index: z}
					if g.HasRPath(a, prev) && tdvs.Trackable(a, prev) &&
						g.HasRPath(cur, a) && tdvs.Trackable(cur, a) {
						return fmt.Errorf("lemma 4.1 violated: trackable %v -> %v and %v -> %v",
							a, prev, cur, a)
					}
				}
			}
		}
	}
	return nil
}
