package rgraph

import (
	"testing"

	"github.com/rdt-go/rdt/internal/model"
)

// TestAnalyzerReuseMatchesFresh runs one Analyzer across many
// differently-shaped patterns and checks every reused result against a
// freshly allocated computation: scratch reuse must never leak state from
// one pattern into the next.
func TestAnalyzerReuseMatchesFresh(t *testing.T) {
	a := NewAnalyzer()
	for seed := int64(0); seed < 20; seed++ {
		p := randomPattern(t, seed, 2+int(seed%5), 30+int(seed%60))

		want, err := ComputeTDVs(p)
		if err != nil {
			t.Fatalf("seed %d: fresh tdvs: %v", seed, err)
		}
		got, err := a.ComputeTDVs(p)
		if err != nil {
			t.Fatalf("seed %d: reused tdvs: %v", seed, err)
		}
		for i := 0; i < p.N; i++ {
			for x := range p.Checkpoints[i] {
				id := model.CkptID{Proc: model.ProcID(i), Index: x}
				if !want.At(id).Equal(got.At(id)) {
					t.Fatalf("seed %d: TDV of %v = %v, want %v", seed, id, got.At(id), want.At(id))
				}
			}
		}

		wantRep, err := CheckRDT(p, 8)
		if err != nil {
			t.Fatalf("seed %d: fresh check: %v", seed, err)
		}
		gotRep, err := a.CheckRDT(p, 8)
		if err != nil {
			t.Fatalf("seed %d: reused check: %v", seed, err)
		}
		if wantRep.RDT != gotRep.RDT ||
			wantRep.RPathPairs != gotRep.RPathPairs ||
			wantRep.TrackablePairs != gotRep.TrackablePairs ||
			len(wantRep.Violations) != len(gotRep.Violations) {
			t.Fatalf("seed %d: reused report %+v, fresh report %+v", seed, gotRep, wantRep)
		}
	}
}

// TestAnalyzerResultsSurviveReuse: a TDVTable returned by an Analyzer must
// stay valid after the Analyzer processes another pattern (only scratch is
// reused, never result storage).
func TestAnalyzerResultsSurviveReuse(t *testing.T) {
	a := NewAnalyzer()
	p1 := randomPattern(t, 1, 4, 80)
	first, err := a.ComputeTDVs(p1)
	if err != nil {
		t.Fatalf("tdvs: %v", err)
	}
	snapshot := make(map[model.CkptID]string)
	for i := 0; i < p1.N; i++ {
		for x := range p1.Checkpoints[i] {
			id := model.CkptID{Proc: model.ProcID(i), Index: x}
			snapshot[id] = first.At(id).String()
		}
	}

	// Churn the analyzer with other patterns.
	for seed := int64(2); seed < 6; seed++ {
		if _, err := a.ComputeTDVs(randomPattern(t, seed, 3, 120)); err != nil {
			t.Fatalf("churn: %v", err)
		}
	}

	for id, want := range snapshot {
		if got := first.At(id).String(); got != want {
			t.Fatalf("TDV of %v mutated by later analyses: %s, was %s", id, got, want)
		}
	}
}
