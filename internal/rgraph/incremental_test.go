package rgraph

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/sim"
	"github.com/rdt-go/rdt/internal/trace"
	"github.com/rdt-go/rdt/internal/workload"
)

// compareReports asserts full parity between the batch checker's report
// and the incremental one: verdict, pair counts, and the capped
// violation list (whose head is the "first violation").
func compareReports(t *testing.T, label string, batch, inc *Report) {
	t.Helper()
	if batch.RDT != inc.RDT {
		t.Fatalf("%s: verdict mismatch: batch RDT=%v, incremental RDT=%v", label, batch.RDT, inc.RDT)
	}
	if batch.RPathPairs != inc.RPathPairs || batch.TrackablePairs != inc.TrackablePairs {
		t.Fatalf("%s: pair counts mismatch: batch %d/%d, incremental %d/%d",
			label, batch.TrackablePairs, batch.RPathPairs, inc.TrackablePairs, inc.RPathPairs)
	}
	if len(batch.Violations) != len(inc.Violations) {
		t.Fatalf("%s: violation list length mismatch: batch %v, incremental %v",
			label, batch.Violations, inc.Violations)
	}
	for i := range batch.Violations {
		if batch.Violations[i] != inc.Violations[i] {
			t.Fatalf("%s: violation %d mismatch: batch %v, incremental %v",
				label, i, batch.Violations[i], inc.Violations[i])
		}
	}
}

// streamPattern replays a finalized pattern into a fresh incremental
// checker, event by event, in a causally consistent order.
func streamPattern(t *testing.T, p *model.Pattern) *Incremental {
	t.Helper()
	inc, err := NewIncremental(p.N)
	if err != nil {
		t.Fatalf("new incremental: %v", err)
	}
	var a Analyzer
	a.prepare(p)
	handles := make([]int, len(p.Messages))
	if err := a.run(func(e event) {
		switch e.kind {
		case evCheckpoint:
			if e.index == 0 {
				return // initial checkpoints exist by construction
			}
			if _, _, err := inc.Checkpoint(e.proc); err != nil {
				t.Fatalf("incremental checkpoint: %v", err)
			}
		case evSend:
			m := &p.Messages[e.msgIdx]
			h, err := inc.Send(m.From, m.To)
			if err != nil {
				t.Fatalf("incremental send: %v", err)
			}
			handles[e.msgIdx] = h
		case evDeliver:
			if err := inc.Deliver(handles[e.msgIdx]); err != nil {
				t.Fatalf("incremental deliver: %v", err)
			}
		}
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	inc.Seal()
	return inc
}

// checkPattern streams a finalized pattern through the incremental
// checker and asserts parity with the batch analyzer.
func checkPattern(t *testing.T, label string, p *model.Pattern) {
	t.Helper()
	inc := streamPattern(t, p)
	batch, err := NewAnalyzer().CheckRDT(p, 32)
	if err != nil {
		t.Fatalf("%s: batch check: %v", label, err)
	}
	irep := inc.Report(32)
	compareReports(t, label, batch, irep)
	if got, want := inc.Violations(), batch.RPathPairs-batch.TrackablePairs; got != want {
		t.Fatalf("%s: online violation count %d, batch says %d", label, got, want)
	}
	if !batch.RDT {
		if inc.FirstViolation() == nil || *inc.FirstViolation() != batch.Violations[0] {
			t.Fatalf("%s: online first violation %v, batch first %v",
				label, inc.FirstViolation(), batch.Violations[0])
		}
	}
	// Recorded vectors must equal the offline TDVs checkpoint by
	// checkpoint — the visibility claim the service's live verdicts
	// rest on.
	tdvs, err := ComputeTDVs(p)
	if err != nil {
		t.Fatalf("%s: compute tdvs: %v", label, err)
	}
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			id := model.CkptID{Proc: model.ProcID(i), Index: x}
			got := inc.TDVAt(id)
			want := tdvs.At(id)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%s: %v: incremental TDV %v, offline %v", label, id, got, want)
				}
			}
		}
	}
}

func TestIncrementalFigure1(t *testing.T) {
	p, err := trace.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	checkPattern(t, "figure1", p)
}

func TestIncrementalErrors(t *testing.T) {
	if _, err := NewIncremental(0); err == nil {
		t.Fatal("NewIncremental(0) should fail")
	}
	inc, err := NewIncremental(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Deliver(42); err == nil {
		t.Fatal("delivering an unknown handle should fail")
	}
	h, err := inc.Send(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Deliver(h); err != nil {
		t.Fatal(err)
	}
	if err := inc.Deliver(h); err == nil {
		t.Fatal("double delivery should fail")
	}
	if _, _, err := inc.Checkpoint(5); err == nil {
		t.Fatal("checkpoint on an out-of-range process should fail")
	}
	inc.Seal()
	inc.Seal() // idempotent
	if !inc.Sealed() {
		t.Fatal("Sealed() should report true after Seal")
	}
	if _, err := inc.Send(0, 1); err == nil {
		t.Fatal("send after seal should fail")
	}
	if _, _, err := inc.Checkpoint(0); err == nil {
		t.Fatal("checkpoint after seal should fail")
	}
	if err := inc.Deliver(0); err == nil {
		t.Fatal("deliver after seal should fail")
	}
}

// TestIncrementalViolationCallback asserts the callback fires once per
// untrackable pair, synchronously with the events that create them.
func TestIncrementalViolationCallback(t *testing.T) {
	inc, err := NewIncremental(2)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Violation]int)
	inc.OnViolation(func(v Violation) { seen[v]++ })

	// P1 sends m in I_{1,1}; P0 delivers, checkpoints C_{0,1}, then
	// sends m' delivered by P1 in I_{1,1} before C_{1,1}: the chain
	// [m m'] is a same-interval zigzag, so C_{0,1} -> C_{1,1} has an
	// R-path the vector of C_{1,1} cannot witness... in fact here the
	// delivery of m' puts C_{0,1} into P1's vector, so the violating
	// pair is the backward one: C_{1,1} -> C_{0,1} is untrackable once
	// the R-graph closes the cycle.
	m, _ := inc.Send(1, 0)
	if err := inc.Deliver(m); err != nil {
		t.Fatal(err)
	}
	if _, _, err := inc.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
	m2, _ := inc.Send(0, 1)
	if err := inc.Deliver(m2); err != nil {
		t.Fatal(err)
	}
	inc.Seal()

	rep := inc.Report(0)
	total := rep.RPathPairs - rep.TrackablePairs
	fired := 0
	for v, n := range seen {
		fired += n
		if n != 1 {
			t.Fatalf("violation %v reported %d times", v, n)
		}
	}
	if fired != total || inc.Violations() != total {
		t.Fatalf("callback fired %d times, online count %d, report says %d violations",
			fired, inc.Violations(), total)
	}
}

// TestIncrementalDifferentialRandom feeds hundreds of uncoordinated
// random event streams through a Builder and an Incremental in lockstep,
// asserting seal-now parity with the batch checker at sampled prefixes
// and full parity on the finalized pattern. Uncoordinated streams
// violate RDT often, so both verdicts are exercised.
func TestIncrementalDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	patterns := 0
	violating := 0
	for trial := 0; trial < 750; trial++ {
		n := 2 + rng.Intn(4)
		steps := 20 + rng.Intn(60)
		if runRandomStream(t, rng, n, steps) {
			violating++
		}
		patterns++
	}
	if patterns < 750 {
		t.Fatalf("ran %d random patterns, want >= 750", patterns)
	}
	if violating == 0 || violating == patterns {
		t.Fatalf("degenerate sample: %d/%d patterns violated RDT", violating, patterns)
	}
	t.Logf("random differential: %d patterns, %d violating", patterns, violating)
}

// runRandomStream drives one random run and reports whether the final
// pattern violated RDT.
func runRandomStream(t *testing.T, rng *rand.Rand, n, steps int) bool {
	t.Helper()
	b := model.NewBuilder(n)
	inc, err := NewIncremental(n)
	if err != nil {
		t.Fatal(err)
	}
	handles := make(map[int]int) // builder handle -> incremental handle
	var inFlight []int           // undelivered builder handles

	deliver := func(k int) {
		bh := inFlight[k]
		inFlight[k] = inFlight[len(inFlight)-1]
		inFlight = inFlight[:len(inFlight)-1]
		if err := b.Deliver(bh); err != nil {
			t.Fatal(err)
		}
		if err := inc.Deliver(handles[bh]); err != nil {
			t.Fatal(err)
		}
	}

	for s := 0; s < steps; s++ {
		switch op := rng.Intn(10); {
		case op < 3: // basic checkpoint
			i := model.ProcID(rng.Intn(n))
			if _, tdv, err := inc.Checkpoint(i); err != nil {
				t.Fatal(err)
			} else {
				b.Checkpoint(i, model.KindBasic, tdv)
			}
		case op < 7 || len(inFlight) == 0: // send
			from := model.ProcID(rng.Intn(n))
			to := model.ProcID(rng.Intn(n - 1))
			if to >= from {
				to++
			}
			bh := b.Send(from, to)
			ih, err := inc.Send(from, to)
			if err != nil {
				t.Fatal(err)
			}
			handles[bh] = ih
			inFlight = append(inFlight, bh)
		default: // deliver a random in-flight message
			deliver(rng.Intn(len(inFlight)))
		}
		if s%17 == 11 {
			snap, _, err := b.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			batch, err := NewAnalyzer().CheckRDT(snap, 32)
			if err != nil {
				t.Fatalf("batch check on snapshot: %v", err)
			}
			compareReports(t, "prefix", batch, inc.Report(32))
		}
	}
	for len(inFlight) > 0 {
		deliver(rng.Intn(len(inFlight)))
	}

	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	inc.Seal()
	batch, err := NewAnalyzer().CheckRDT(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "final", batch, inc.Report(32))
	if err := VerifyRecordedTDVs(p); err != nil {
		t.Fatalf("recorded TDVs diverge from offline ones: %v", err)
	}
	return !batch.RDT
}

// TestIncrementalDifferentialSim streams simulator-generated patterns —
// protocol-coordinated runs over the paper's workloads — through the
// incremental checker. Together with the random streams this puts the
// total differential corpus above 1000 patterns.
func TestIncrementalDifferentialSim(t *testing.T) {
	protocols := []core.Kind{core.KindNone, core.KindBCS, core.KindBHMR, core.KindFDAS}
	patterns := 0
	for seed := int64(1); seed <= 70; seed++ {
		for _, kind := range protocols {
			cfg := sim.DefaultConfig(kind, seed)
			cfg.N = 3 + int(seed%4)
			cfg.Duration = 40
			cfg.BasicMean = 6
			res, err := sim.Run(cfg, &workload.Random{MeanGap: 1})
			if err != nil {
				t.Fatalf("sim %v seed %d: %v", kind, seed, err)
			}
			checkPattern(t, res.Protocol.String(), res.Pattern)
			patterns++
		}
	}
	if patterns < 280 {
		t.Fatalf("ran %d sim patterns, want >= 280", patterns)
	}
}

// TestIncrementalReportSorted asserts the report's violation list is in
// the batch checker's enumeration order even when violations were
// detected out of order.
func TestIncrementalReportSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := model.NewBuilder(3)
		inc, _ := NewIncremental(3)
		var inFlight []int
		handles := make(map[int]int)
		for s := 0; s < 40; s++ {
			switch op := rng.Intn(3); {
			case op == 0:
				i := model.ProcID(rng.Intn(3))
				_, tdv, _ := inc.Checkpoint(i)
				b.Checkpoint(i, model.KindBasic, tdv)
			case op == 1 || len(inFlight) == 0:
				from := model.ProcID(rng.Intn(3))
				to := (from + model.ProcID(1+rng.Intn(2))) % 3
				bh := b.Send(from, to)
				ih, _ := inc.Send(from, to)
				handles[bh] = ih
				inFlight = append(inFlight, bh)
			default:
				k := rng.Intn(len(inFlight))
				bh := inFlight[k]
				inFlight = append(inFlight[:k], inFlight[k+1:]...)
				_ = b.Deliver(bh)
				_ = inc.Deliver(handles[bh])
			}
		}
		rep := inc.Report(1000)
		if !sort.SliceIsSorted(rep.Violations, func(x, y int) bool {
			return lessViolation(rep.Violations[x], rep.Violations[y])
		}) {
			t.Fatalf("violations not sorted: %v", rep.Violations)
		}
	}
}
