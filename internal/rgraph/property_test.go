package rgraph

// Property-based cross-validation on randomly generated checkpoint and
// communication patterns: the package contains several independent
// implementations of the same theory (R-graph reachability vs message-
// chain closures; TDV replay vs causal-chain search; orphan fixpoints vs
// zigzag extensibility; the TDV-based RDT checker vs the chain-doubling
// characterization), and on every random pattern they must agree exactly.

import (
	"math/rand"
	"testing"

	"github.com/rdt-go/rdt/internal/model"
)

// randomPattern builds an arbitrary valid pattern: a random interleaving
// of sends, deliveries and checkpoints over n processes.
func randomPattern(t *testing.T, seed int64, n, events int) *model.Pattern {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := model.NewBuilder(n)
	var inflight []int
	for e := 0; e < events; e++ {
		switch r := rng.Float64(); {
		case r < 0.45:
			from := model.ProcID(rng.Intn(n))
			to := model.ProcID(rng.Intn(n - 1))
			if to >= from {
				to++
			}
			inflight = append(inflight, b.Send(from, to))
		case r < 0.80 && len(inflight) > 0:
			pick := rng.Intn(len(inflight))
			if err := b.Deliver(inflight[pick]); err != nil {
				t.Fatalf("deliver: %v", err)
			}
			inflight = append(inflight[:pick], inflight[pick+1:]...)
		default:
			b.Checkpoint(model.ProcID(rng.Intn(n)), model.KindBasic, nil)
		}
	}
	for _, h := range inflight {
		if err := b.Deliver(h); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	p, err := b.Finalize()
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

type fixture struct {
	p      *model.Pattern
	g      *Graph
	chains *Chains
	tdvs   *TDVTable
}

func buildFixture(t *testing.T, seed int64) fixture {
	t.Helper()
	p := randomPattern(t, seed, 3+int(seed%3), 60+int(seed%40))
	g, err := Build(p)
	if err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	chains, err := NewChains(p)
	if err != nil {
		t.Fatalf("seed %d: chains: %v", seed, err)
	}
	tdvs, err := ComputeTDVs(p)
	if err != nil {
		t.Fatalf("seed %d: tdvs: %v", seed, err)
	}
	return fixture{p: p, g: g, chains: chains, tdvs: tdvs}
}

const propertySeeds = 30

// TestPropertyRPathChainEquivalence: an R-path a -> b exists iff b follows
// a on the same process, or some chain links a dominating pair
// (a.Proc, x” >= a.Index) -> (b.Proc, y” <= b.Index).
func TestPropertyRPathChainEquivalence(t *testing.T) {
	for seed := int64(1); seed <= propertySeeds; seed++ {
		f := buildFixture(t, seed)
		forEachPair(f.p, func(a, b model.CkptID) {
			want := a.Proc == b.Proc && a.Index < b.Index
			if !want {
			dominating:
				for x := a.Index; x <= f.p.LastIndex(a.Proc); x++ {
					for y := 1; y <= b.Index; y++ {
						if f.chains.HasChain(model.CkptID{Proc: a.Proc, Index: x}, model.CkptID{Proc: b.Proc, Index: y}) {
							want = true
							break dominating
						}
					}
				}
			}
			if got := f.g.HasRPath(a, b); got != want {
				t.Fatalf("seed %d: HasRPath(%v,%v) = %v, chain analysis says %v", seed, a, b, got, want)
			}
		})
	}
}

// TestPropertyTrackableEqualsCausallyDoubled: the TDV replay and the
// causal-chain closure implement the same relation.
func TestPropertyTrackableEqualsCausallyDoubled(t *testing.T) {
	for seed := int64(1); seed <= propertySeeds; seed++ {
		f := buildFixture(t, seed)
		forEachPair(f.p, func(a, b model.CkptID) {
			if a.Proc == b.Proc || a.Index == 0 {
				return
			}
			tdv := f.tdvs.Trackable(a, b)
			doubled := f.chains.CausallyDoubled(a, b)
			if tdv != doubled {
				t.Fatalf("seed %d: Trackable(%v,%v) = %v but CausallyDoubled = %v", seed, a, b, tdv, doubled)
			}
		})
	}
}

// TestPropertyRDTCheckersAgree: the reachability/TDV checker and the
// chain-doubling characterization give the same verdict.
func TestPropertyRDTCheckersAgree(t *testing.T) {
	sawViolation := false
	for seed := int64(1); seed <= propertySeeds; seed++ {
		f := buildFixture(t, seed)
		byGraph := CheckRDTGraph(f.g, f.tdvs, 1)
		byChains := f.chains.CheckRDTByChains(1)
		if byGraph.RDT != byChains.RDT {
			t.Fatalf("seed %d: graph checker says RDT=%v, chain checker says %v",
				seed, byGraph.RDT, byChains.RDT)
		}
		if !byGraph.RDT {
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Error("no random pattern violated RDT; properties are vacuous")
	}
}

// TestPropertyUselessIffUnpinnable: a checkpoint lies on a zigzag cycle
// iff no consistent global checkpoint contains it.
func TestPropertyUselessIffUnpinnable(t *testing.T) {
	sawUseless := false
	for seed := int64(1); seed <= propertySeeds; seed++ {
		f := buildFixture(t, seed)
		for i := 0; i < f.p.N; i++ {
			for x := range f.p.Checkpoints[i] {
				id := model.CkptID{Proc: model.ProcID(i), Index: x}
				useless := f.chains.Useless(id)
				_, err := MinConsistentContaining(f.p, id)
				if useless != (err != nil) {
					t.Fatalf("seed %d: %v useless=%v but min-pin err=%v", seed, id, useless, err)
				}
				if useless {
					sawUseless = true
					if !f.g.OnCycle(id) {
						t.Fatalf("seed %d: %v useless but not on an R-graph cycle", seed, id)
					}
				}
			}
		}
	}
	if !sawUseless {
		t.Error("no random pattern produced a useless checkpoint; generator too tame")
	}
}

// TestPropertyMinMaxAreTightAndConsistent: when a checkpoint is pinnable,
// the min (max) fixpoints return consistent cuts that cannot be lowered
// (raised) in any coordinate.
func TestPropertyMinMaxAreTightAndConsistent(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		f := buildFixture(t, seed)
		for i := 0; i < f.p.N; i++ {
			x := f.p.LastIndex(model.ProcID(i)) / 2
			id := model.CkptID{Proc: model.ProcID(i), Index: x}
			min, err := MinConsistentContaining(f.p, id)
			if err != nil {
				continue // useless checkpoint
			}
			assertConsistent(t, f.p, min, "min")
			for k := range min {
				if model.ProcID(k) == id.Proc || min[k] == 0 {
					continue
				}
				lowered := min.Clone()
				lowered[k]--
				if ok, _ := IsConsistent(f.p, lowered); ok {
					t.Fatalf("seed %d: min %v for %v not minimal at %d", seed, min, id, k)
				}
			}
			max, err := MaxConsistentContaining(f.p, id)
			if err != nil {
				t.Fatalf("seed %d: max for pinnable %v failed: %v", seed, id, err)
			}
			assertConsistent(t, f.p, max, "max")
			if !min.DominatedBy(max) {
				t.Fatalf("seed %d: min %v above max %v", seed, min, max)
			}
			for k := range max {
				if model.ProcID(k) == id.Proc || max[k] == f.p.LastIndex(model.ProcID(k)) {
					continue
				}
				raised := max.Clone()
				raised[k]++
				if ok, _ := IsConsistent(f.p, raised); ok {
					t.Fatalf("seed %d: max %v for %v not maximal at %d", seed, max, id, k)
				}
			}
		}
	}
}

// TestPropertyRecoveryLineIsMaximalConsistent: the recovery line is the
// greatest consistent cut below the bounds.
func TestPropertyRecoveryLineIsMaximalConsistent(t *testing.T) {
	for seed := int64(1); seed <= propertySeeds; seed++ {
		f := buildFixture(t, seed)
		bounds := make(model.GlobalCheckpoint, f.p.N)
		for i := range bounds {
			bounds[i] = f.p.LastIndex(model.ProcID(i))
		}
		line, err := RecoveryLine(f.p, bounds)
		if err != nil {
			t.Fatalf("seed %d: line: %v", seed, err)
		}
		assertConsistent(t, f.p, line, "recovery line")
		if !line.DominatedBy(bounds) {
			t.Fatalf("seed %d: line %v exceeds bounds %v", seed, line, bounds)
		}
		for k := range line {
			if line[k] == bounds[k] {
				continue
			}
			raised := line.Clone()
			raised[k]++
			if ok, _ := IsConsistent(f.p, raised); ok {
				t.Fatalf("seed %d: line %v not maximal at %d", seed, line, k)
			}
		}
	}
}

// TestPropertyCanExtendMatchesPinning mirrors the Figure 1 test on random
// patterns: the Netzer–Xu zigzag criterion for a cross-process pair agrees
// with the orphan fixpoint.
func TestPropertyCanExtendMatchesPinning(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		f := buildFixture(t, seed)
		forEachPair(f.p, func(a, b model.CkptID) {
			if a.Proc == b.Proc {
				return
			}
			_, err := MinConsistentContaining(f.p, a, b)
			if got := f.chains.CanExtend([]model.CkptID{a, b}); got != (err == nil) {
				t.Fatalf("seed %d: CanExtend(%v,%v) = %v but pin err = %v", seed, a, b, got, err)
			}
		})
	}
}

func assertConsistent(t *testing.T, p *model.Pattern, g model.GlobalCheckpoint, what string) {
	t.Helper()
	ok, err := IsConsistent(p, g)
	if err != nil {
		t.Fatalf("%s %v: %v", what, g, err)
	}
	if !ok {
		orphan, _ := FindOrphan(p, g)
		t.Fatalf("%s %v inconsistent: %v", what, g, orphan)
	}
}

// TestPropertyPrefixAtRecoveryLinePreservesAnnotations: slicing a pattern
// at a consistent cut keeps a valid pattern whose recorded dependency
// vectors still match an offline recomputation — the history a recovered
// system keeps is itself a well-formed, correctly annotated run.
func TestPropertyPrefixAtRecoveryLinePreservesAnnotations(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := randomPattern(t, seed, 3+int(seed%3), 60)
		// Annotate with the offline vectors so the prefix has something to
		// preserve.
		tdvs, err := ComputeTDVs(p)
		if err != nil {
			t.Fatalf("seed %d: tdvs: %v", seed, err)
		}
		for i := 0; i < p.N; i++ {
			for x := range p.Checkpoints[i] {
				p.Checkpoints[i][x].TDV = tdvs.At(model.CkptID{Proc: model.ProcID(i), Index: x}).Clone()
			}
		}
		bounds := make(model.GlobalCheckpoint, p.N)
		for i := range bounds {
			bounds[i] = p.LastIndex(model.ProcID(i))
		}
		line, err := RecoveryLine(p, bounds)
		if err != nil {
			t.Fatalf("seed %d: line: %v", seed, err)
		}
		prefix, err := p.Prefix(line)
		if err != nil {
			t.Fatalf("seed %d: prefix at %v: %v", seed, line, err)
		}
		if err := prefix.Validate(); err != nil {
			t.Fatalf("seed %d: prefix invalid: %v", seed, err)
		}
		if err := VerifyRecordedTDVs(prefix); err != nil {
			t.Fatalf("seed %d: prefix annotations broken: %v", seed, err)
		}
	}
}
