package rgraph

import (
	"fmt"

	"github.com/rdt-go/rdt/internal/model"
)

// Chains analyzes message chains (Definition 3.1) of a pattern: sequences
// of messages [m1 ... mq] where each m_{u+1} is sent by the receiver of m_u
// in the same or a later checkpoint interval. A chain is causal when every
// delivery precedes the send of the next message; otherwise it is a zigzag
// (non-causal) chain — Netzer and Xu's zigzag paths.
type Chains struct {
	p *model.Pattern
	// chainReach/causalReach are reflexive-transitive closures over the
	// chain-continuation relation between messages.
	chainReach  []bitset
	causalReach []bitset
	msgIndex    map[int]int // message ID -> position in p.Messages
	// bySender[i] / byReceiver[i] index the messages sent by / delivered
	// to process i, so endpoint queries touch only relevant messages.
	bySender   [][]int
	byReceiver [][]int
}

// NewChains builds the chain-closure structures. Cost is O(M^2/64) space
// and O(M * E) time over the message graph, so it is meant for analysis of
// test- and experiment-sized traces rather than for the hot path.
func NewChains(p *model.Pattern) (*Chains, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("chains: %w", err)
	}
	mcount := len(p.Messages)
	c := &Chains{
		p:          p,
		msgIndex:   make(map[int]int, mcount),
		bySender:   make([][]int, p.N),
		byReceiver: make([][]int, p.N),
	}
	for i := range p.Messages {
		m := &p.Messages[i]
		c.msgIndex[m.ID] = i
		c.bySender[m.From] = append(c.bySender[m.From], i)
		c.byReceiver[m.To] = append(c.byReceiver[m.To], i)
	}

	chainAdj := make([][]int, mcount)
	causalAdj := make([][]int, mcount)
	for a := range p.Messages {
		ma := &p.Messages[a]
		for b := range p.Messages {
			mb := &p.Messages[b]
			if ma.To != mb.From {
				continue
			}
			// Chain condition: deliver(ma) in I_{k,s}, send(mb) in I_{k,t},
			// s <= t.
			if ma.DeliverInterval <= mb.SendInterval {
				chainAdj[a] = append(chainAdj[a], b)
				// Causal continuation: the delivery event precedes the send
				// event on the shared process timeline.
				if ma.DeliverSeq < mb.SendSeq {
					causalAdj[a] = append(causalAdj[a], b)
				}
			}
		}
	}
	c.chainReach = closure(chainAdj, mcount)
	c.causalReach = closure(causalAdj, mcount)
	return c, nil
}

// closure computes reflexive-transitive closure rows of the message graph.
func closure(adj [][]int, n int) []bitset {
	rows := make([]bitset, n)
	// Repeated DFS with memoization via Kahn-like iteration: the message
	// graph can contain cycles only through... it cannot: a chain edge a->b
	// implies deliver(a) happens in an interval <= send(b)'s interval, and
	// following sends strictly advances the (process, position) order of
	// events; cycles would need a message chain returning to an earlier
	// send of the same message, which the happened-before relation on a
	// single run forbids for the *causal* graph but not in general for the
	// zigzag graph. Use an iterative fixpoint that is correct regardless.
	for i := range rows {
		rows[i] = newBitset(n)
		rows[i].set(i)
	}
	for changed := true; changed; {
		changed = false
		for a := 0; a < n; a++ {
			before := rows[a].count()
			for _, b := range adj[a] {
				rows[a].or(rows[b])
			}
			if rows[a].count() != before {
				changed = true
			}
		}
	}
	return rows
}

// HasChain reports whether a message chain (causal or not) connects a to b:
// a chain [m1 ... mq] with send(m1) in I_{a.Proc,a.Index} and deliver(mq)
// in I_{b.Proc,b.Index}.
func (c *Chains) HasChain(a, b model.CkptID) bool { return c.hasChain(a, b, c.chainReach) }

// HasCausalChain reports whether a causal message chain connects a to b.
func (c *Chains) HasCausalChain(a, b model.CkptID) bool { return c.hasChain(a, b, c.causalReach) }

func (c *Chains) hasChain(a, b model.CkptID, reach []bitset) bool {
	for _, i := range c.bySender[a.Proc] {
		if c.p.Messages[i].SendInterval != a.Index {
			continue
		}
		row := reach[i]
		for _, j := range c.byReceiver[b.Proc] {
			if c.p.Messages[j].DeliverInterval == b.Index && row.get(j) {
				return true
			}
		}
	}
	return false
}

// ZigzagNX reports whether there is a Netzer–Xu zigzag path from checkpoint
// a to checkpoint b: a message chain whose first message is sent *after* a
// (interval > a.Index) and whose last message is delivered *before* b
// (interval <= b.Index). A set of checkpoints extends to a consistent
// global checkpoint iff no member has a zigzag path to another member
// (including itself).
func (c *Chains) ZigzagNX(a, b model.CkptID) bool {
	for _, i := range c.bySender[a.Proc] {
		if c.p.Messages[i].SendInterval <= a.Index {
			continue
		}
		row := c.chainReach[i]
		for _, j := range c.byReceiver[b.Proc] {
			if c.p.Messages[j].DeliverInterval <= b.Index && row.get(j) {
				return true
			}
		}
	}
	return false
}

// Useless reports whether the checkpoint lies on a zigzag cycle, in which
// case it can belong to no consistent global checkpoint.
func (c *Chains) Useless(a model.CkptID) bool { return c.ZigzagNX(a, a) }

// CanExtend reports whether the given set of checkpoints can be extended to
// a consistent global checkpoint (Netzer–Xu): no zigzag path may connect
// any member to any member.
func (c *Chains) CanExtend(set []model.CkptID) bool {
	for _, a := range set {
		for _, b := range set {
			if c.ZigzagNX(a, b) {
				return false
			}
		}
	}
	return true
}

// CountChains returns how many ordered checkpoint pairs are linked by some
// chain and by some causal chain — a coarse measure of how much of the
// dependency structure is causally visible.
func (c *Chains) CountChains() (chains, causal int) {
	p := c.p
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			a := model.CkptID{Proc: model.ProcID(i), Index: x}
			for j := 0; j < p.N; j++ {
				for y := range p.Checkpoints[j] {
					b := model.CkptID{Proc: model.ProcID(j), Index: y}
					if c.HasChain(a, b) {
						chains++
						if c.HasCausalChain(a, b) {
							causal++
						}
					}
				}
			}
		}
	}
	return chains, causal
}
