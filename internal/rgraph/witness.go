package rgraph

import (
	"fmt"
	"strings"

	"github.com/rdt-go/rdt/internal/model"
)

// Witness extraction: turning an RDT conviction into evidence. A
// violation (a, b) says there is an R-path from checkpoint a to
// checkpoint b that no causal message chain doubles. The witness makes
// the conviction concrete: the actual zigzag message chain [m1 ... mq]
// realizing the R-path, minimal in its number of messages, with the
// visible predicate (causal or zigzag continuation) evaluated at every
// hop.
//
// The correspondence used throughout (and cross-checked by the property
// tests): an R-path C_{i,x} ~> C_{j,y} that is not the process's own
// forward order exists iff some message chain starts with a message sent
// by i in an interval >= x and ends with a message delivered to j in an
// interval <= y. Violations are such pairs: either cross-process, or
// same-process *backward* (y < x, a zigzag cycle through C_{i,y}) —
// same-process forward pairs are always trackable (TDV_{i,y}[i] = y).
// No violation is witnessed by a single message (a one-message chain is
// causal and never backward, so the pair would be doubled); hence every
// witness has at least two messages and — because a fully causal
// witnessing chain would make the pair trackable — at least one
// non-causal continuation.

// Hop is one message of a witness chain, with the data needed to check
// the chain and continuation conditions by eye: interval indexes place
// the endpoints among the checkpoints, sequence positions order the
// events inside their process timelines.
type Hop struct {
	MsgID           int          `json:"msg_id"`
	From            model.ProcID `json:"from"`
	To              model.ProcID `json:"to"`
	SendInterval    int          `json:"send_interval"`
	DeliverInterval int          `json:"deliver_interval"`
	SendSeq         int          `json:"send_seq"`
	DeliverSeq      int          `json:"deliver_seq"`

	// CausalToNext is the visible predicate at this hop: whether the
	// continuation to the next message is causal (the delivery event
	// precedes the next send on the shared process). Vacuously true on
	// the last hop. A witness of a genuine violation has at least one
	// false entry — the zigzag.
	CausalToNext bool `json:"causal_to_next"`
}

// Witness is a minimal message chain realizing one untrackable R-path.
type Witness struct {
	Violation Violation `json:"violation"`
	Hops      []Hop     `json:"hops"`
	// NonCausal counts the hops whose continuation is not causal.
	NonCausal int `json:"non_causal"`
}

// MessageIDs returns the witness chain's message identifiers in order.
func (w *Witness) MessageIDs() []int {
	ids := make([]int, len(w.Hops))
	for i := range w.Hops {
		ids[i] = w.Hops[i].MsgID
	}
	return ids
}

// String renders the witness as the violation followed by the chain,
// marking each continuation causal (->) or zigzag (~>).
func (w *Witness) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v ~> %v via [", w.Violation.From, w.Violation.To)
	for i := range w.Hops {
		h := &w.Hops[i]
		if i > 0 {
			if w.Hops[i-1].CausalToNext {
				b.WriteString(" -> ")
			} else {
				b.WriteString(" ~> ")
			}
		}
		fmt.Fprintf(&b, "m%d(P%d[I%d]→P%d[I%d])", h.MsgID, h.From, h.SendInterval, h.To, h.DeliverInterval)
	}
	b.WriteString("]")
	return b.String()
}

// Explainer extracts minimal witnesses for the violations of a pattern.
// Construction is O(M^2) over the messages (like Chains); each Explain
// call is a breadth-first search, O(M + edges).
type Explainer struct {
	p *model.Pattern
	// adj is the chain-continuation relation between message positions:
	// adj[a] lists the b with To(a) == From(b) and
	// DeliverInterval(a) <= SendInterval(b), ascending, so the search
	// order — and with it the reported witness — is deterministic.
	adj      [][]int32
	bySender [][]int32

	dist []int32 // BFS scratch: -1 unvisited, else chain length so far
	pred []int32 // BFS scratch: previous message position, -1 for roots
	work []int32 // BFS scratch: queue
}

// NewExplainer builds the witness extractor for a validated pattern.
func NewExplainer(p *model.Pattern) (*Explainer, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("explainer: %w", err)
	}
	mcount := len(p.Messages)
	e := &Explainer{
		p:        p,
		adj:      make([][]int32, mcount),
		bySender: make([][]int32, p.N),
		dist:     make([]int32, mcount),
		pred:     make([]int32, mcount),
		work:     make([]int32, 0, mcount),
	}
	for a := 0; a < mcount; a++ {
		e.bySender[p.Messages[a].From] = append(e.bySender[p.Messages[a].From], int32(a))
		ma := &p.Messages[a]
		for b := 0; b < mcount; b++ {
			mb := &p.Messages[b]
			if ma.To == mb.From && ma.DeliverInterval <= mb.SendInterval {
				e.adj[a] = append(e.adj[a], int32(b))
			}
		}
	}
	return e, nil
}

// Explain returns a minimal witness for the violation: the chain with
// the fewest messages among those realizing the R-path, ties broken by
// message position so repeated calls return the same chain. It fails if
// no chain realizes the pair — i.e. if v is not actually an R-path
// between distinct processes of this pattern.
func (e *Explainer) Explain(v Violation) (*Witness, error) {
	if v.From.Proc == v.To.Proc && v.From.Index <= v.To.Index {
		return nil, fmt.Errorf("explain %v: same-process forward R-paths are always trackable — not a violation", v)
	}
	msgs := e.p.Messages
	for i := range e.dist {
		e.dist[i] = -1
	}
	queue := e.work[:0]
	goal := int32(-1)
	// Roots: messages sent by From.Proc at or after checkpoint From (the
	// R-graph edge out of C_{i,x'} exists for every send in I_{i,x'},
	// x' >= x). Positions ascend, so the root order is deterministic.
	for _, a := range e.bySender[v.From.Proc] {
		if msgs[a].SendInterval < v.From.Index {
			continue
		}
		e.dist[a] = 1
		e.pred[a] = -1
		if e.isGoal(a, v.To) {
			goal = a
			break
		}
		queue = append(queue, a)
	}
	for head := 0; goal < 0 && head < len(queue); head++ {
		a := queue[head]
		for _, b := range e.adj[a] {
			if e.dist[b] >= 0 {
				continue
			}
			e.dist[b] = e.dist[a] + 1
			e.pred[b] = a
			if e.isGoal(b, v.To) {
				goal = b
				break
			}
			queue = append(queue, b)
		}
	}
	e.work = queue[:0]
	if goal < 0 {
		return nil, fmt.Errorf("explain %v: no message chain realizes the R-path", v)
	}

	// Walk predecessors back to the root, then reverse into hops.
	chain := make([]int32, 0, e.dist[goal])
	for at := goal; at >= 0; at = e.pred[at] {
		chain = append(chain, at)
	}
	for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
		chain[l], chain[r] = chain[r], chain[l]
	}
	w := &Witness{Violation: v, Hops: make([]Hop, len(chain))}
	for i, pos := range chain {
		m := &msgs[pos]
		w.Hops[i] = Hop{
			MsgID:           m.ID,
			From:            m.From,
			To:              m.To,
			SendInterval:    m.SendInterval,
			DeliverInterval: m.DeliverInterval,
			SendSeq:         m.SendSeq,
			DeliverSeq:      m.DeliverSeq,
			CausalToNext:    true,
		}
		if i > 0 && msgs[chain[i-1]].DeliverSeq >= m.SendSeq {
			w.Hops[i-1].CausalToNext = false
			w.NonCausal++
		}
	}
	return w, nil
}

// isGoal reports whether the message closes a chain into checkpoint b:
// delivered to b's process in an interval at or before b.
func (e *Explainer) isGoal(pos int32, b model.CkptID) bool {
	m := &e.p.Messages[pos]
	return m.To == b.Proc && m.DeliverInterval <= b.Index
}

// ExplainAll extracts one minimal witness per violation.
func (e *Explainer) ExplainAll(violations []Violation) ([]*Witness, error) {
	out := make([]*Witness, 0, len(violations))
	for _, v := range violations {
		w, err := e.Explain(v)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// Explain runs the batch RDT check and extracts one minimal witness per
// reported violation. maxViolations caps the report as in CheckRDT.
func Explain(p *model.Pattern, maxViolations int) (*Report, []*Witness, error) {
	rep, err := CheckRDT(p, maxViolations)
	if err != nil {
		return nil, nil, err
	}
	if rep.RDT {
		return rep, nil, nil
	}
	e, err := NewExplainer(p)
	if err != nil {
		return nil, nil, err
	}
	ws, err := e.ExplainAll(rep.Violations)
	if err != nil {
		return nil, nil, err
	}
	return rep, ws, nil
}

// Explain extracts minimal witnesses for the incremental checker's
// current violations, on demand. The checker does not retain message
// metadata (its hot path keeps only vectors and closure bits), so the
// caller supplies the pattern snapshot of the same event stream — the
// lockstep Builder the service sessions already maintain. The report is
// the seal-now Report(maxViolations).
func (inc *Incremental) Explain(p *model.Pattern, maxViolations int) (*Report, []*Witness, error) {
	rep := inc.Report(maxViolations)
	if rep.RDT {
		return rep, nil, nil
	}
	e, err := NewExplainer(p)
	if err != nil {
		return nil, nil, err
	}
	ws, err := e.ExplainAll(rep.Violations)
	if err != nil {
		return nil, nil, err
	}
	return rep, ws, nil
}

// VerifyWitness independently re-checks a witness against the pattern,
// using only the raw message fields and the causal-chain closure — none
// of the structures Explain searched. It confirms that:
//
//  1. the hops form a valid message chain of the pattern with endpoints
//     matching the violation (first send by From.Proc at interval >=
//     From.Index, last delivery to To.Proc at interval <= To.Index);
//  2. the chain is a zigzag: at least one continuation is non-causal,
//     and every CausalToNext flag matches the event order;
//  3. the conviction stands: no causal chain doubles the pair, checked
//     through the chain-closure characterization (Chains.CausallyDoubled)
//     rather than the TDV replay that produced the violation.
func VerifyWitness(p *model.Pattern, w *Witness) error {
	c, err := NewChains(p)
	if err != nil {
		return err
	}
	return VerifyWitnessChains(p, c, w)
}

// VerifyWitnessChains is VerifyWitness with a caller-provided chain
// closure, for verifying many witnesses of one pattern.
func VerifyWitnessChains(p *model.Pattern, c *Chains, w *Witness) error {
	if len(w.Hops) == 0 {
		return fmt.Errorf("witness %v: empty chain", w.Violation)
	}
	byID := make(map[int]*model.Message, len(p.Messages))
	for i := range p.Messages {
		byID[p.Messages[i].ID] = &p.Messages[i]
	}
	msgs := make([]*model.Message, len(w.Hops))
	for i, h := range w.Hops {
		m, ok := byID[h.MsgID]
		if !ok {
			return fmt.Errorf("witness %v: hop %d: message m%d is not in the pattern", w.Violation, i, h.MsgID)
		}
		if m.From != h.From || m.To != h.To ||
			m.SendInterval != h.SendInterval || m.DeliverInterval != h.DeliverInterval ||
			m.SendSeq != h.SendSeq || m.DeliverSeq != h.DeliverSeq {
			return fmt.Errorf("witness %v: hop %d: fields differ from pattern message m%d", w.Violation, i, h.MsgID)
		}
		msgs[i] = m
	}
	first, last := msgs[0], msgs[len(msgs)-1]
	if first.From != w.Violation.From.Proc || first.SendInterval < w.Violation.From.Index {
		return fmt.Errorf("witness %v: chain does not start at the R-path source (m%d sent by P%d in I%d)",
			w.Violation, first.ID, first.From, first.SendInterval)
	}
	if last.To != w.Violation.To.Proc || last.DeliverInterval > w.Violation.To.Index {
		return fmt.Errorf("witness %v: chain does not end at the R-path target (m%d delivered to P%d in I%d)",
			w.Violation, last.ID, last.To, last.DeliverInterval)
	}
	nonCausal := 0
	for i := 0; i+1 < len(msgs); i++ {
		a, b := msgs[i], msgs[i+1]
		if a.To != b.From || a.DeliverInterval > b.SendInterval {
			return fmt.Errorf("witness %v: m%d -> m%d is not a chain continuation", w.Violation, a.ID, b.ID)
		}
		causal := a.DeliverSeq < b.SendSeq
		if causal != w.Hops[i].CausalToNext {
			return fmt.Errorf("witness %v: hop %d: causal_to_next=%v contradicts event order", w.Violation, i, w.Hops[i].CausalToNext)
		}
		if !causal {
			nonCausal++
		}
	}
	if nonCausal == 0 {
		return fmt.Errorf("witness %v: chain is fully causal — the pair would be trackable", w.Violation)
	}
	if nonCausal != w.NonCausal {
		return fmt.Errorf("witness %v: non_causal=%d but %d continuations are non-causal", w.Violation, w.NonCausal, nonCausal)
	}
	if c.CausallyDoubled(w.Violation.From, w.Violation.To) {
		return fmt.Errorf("witness %v: the pair is causally doubled — not a violation", w.Violation)
	}
	return nil
}
