package rgraph

import (
	"fmt"
	"sort"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/vclock"
)

// TDVTable holds, for every local checkpoint of a pattern, the transitive
// dependency vector an ideal on-line tracker would have recorded with it:
// entry k of the vector of C_{i,x} is the highest interval index z of
// process k such that a causal message chain links C_{k,z} to the state
// recorded by C_{i,x} (entry i is x itself).
type TDVTable struct {
	n    int
	vecs [][]vclock.Vec // [proc][index]
}

// At returns the offline dependency vector of the checkpoint. The returned
// vector is shared; callers must not modify it.
func (t *TDVTable) At(c model.CkptID) vclock.Vec { return t.vecs[c.Proc][c.Index] }

// Trackable reports whether the R-path a -> b is on-line trackable: by the
// paper's characterization, C_{i,x} -> C_{j,y} is on-line trackable iff
// TDV_{j,y}[i] >= x (for i == j this degenerates to x <= y).
func (t *TDVTable) Trackable(a, b model.CkptID) bool {
	return t.At(b)[a.Proc] >= a.Index
}

// ComputeTDVs replays the pattern in a causally consistent interleaving and
// computes the offline dependency vector of every checkpoint. It fails if
// the pattern admits no such interleaving (which Validate-clean patterns
// recorded from real runs always do).
func ComputeTDVs(p *model.Pattern) (*TDVTable, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("compute tdvs: %w", err)
	}
	replay, err := newReplayer(p)
	if err != nil {
		return nil, err
	}

	table := &TDVTable{n: p.N, vecs: make([][]vclock.Vec, p.N)}
	cur := make([]vclock.Vec, p.N)
	for i := 0; i < p.N; i++ {
		table.vecs[i] = make([]vclock.Vec, len(p.Checkpoints[i]))
		cur[i] = vclock.NewVec(p.N)
	}
	stamps := make(map[int]vclock.Vec, len(p.Messages))

	err = replay.run(func(e event) {
		i := int(e.proc)
		switch e.kind {
		case evCheckpoint:
			table.vecs[i][e.index] = cur[i].Clone()
			cur[i][i] = e.index + 1 // TDV_i[i] is always the current interval index
		case evSend:
			stamps[e.msg.ID] = cur[i].Clone()
		case evDeliver:
			cur[i].MaxInto(stamps[e.msg.ID])
		}
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

type eventKind int

const (
	evCheckpoint eventKind = iota + 1
	evSend
	evDeliver
)

type event struct {
	kind  eventKind
	proc  model.ProcID
	seq   int
	index int            // checkpoint index, for evCheckpoint
	msg   *model.Message // for evSend / evDeliver
}

// replayer executes the per-process event sequences of a pattern in an
// order consistent with the happened-before relation: a delivery runs only
// after its send.
type replayer struct {
	perProc [][]event
	pos     []int
}

func newReplayer(p *model.Pattern) (*replayer, error) {
	r := &replayer{perProc: make([][]event, p.N), pos: make([]int, p.N)}
	for i := 0; i < p.N; i++ {
		for x := range p.Checkpoints[i] {
			ck := &p.Checkpoints[i][x]
			r.perProc[i] = append(r.perProc[i], event{kind: evCheckpoint, proc: ck.Proc, seq: ck.Seq, index: ck.Index})
		}
	}
	for i := range p.Messages {
		m := &p.Messages[i]
		r.perProc[m.From] = append(r.perProc[m.From], event{kind: evSend, proc: m.From, seq: m.SendSeq, msg: m})
		r.perProc[m.To] = append(r.perProc[m.To], event{kind: evDeliver, proc: m.To, seq: m.DeliverSeq, msg: m})
	}
	for i := range r.perProc {
		evs := r.perProc[i]
		sort.Slice(evs, func(a, b int) bool { return evs[a].seq < evs[b].seq })
	}
	return r, nil
}

// run invokes fn once per event, in a valid causal interleaving.
func (r *replayer) run(fn func(event)) error {
	sent := make(map[int]bool)
	remaining := 0
	for _, evs := range r.perProc {
		remaining += len(evs)
	}
	for remaining > 0 {
		progressed := false
		for i := range r.perProc {
			for r.pos[i] < len(r.perProc[i]) {
				e := r.perProc[i][r.pos[i]]
				if e.kind == evDeliver && !sent[e.msg.ID] {
					break
				}
				if e.kind == evSend {
					sent[e.msg.ID] = true
				}
				fn(e)
				r.pos[i]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return fmt.Errorf("replay: no causally consistent interleaving (stuck with %d events left)", remaining)
		}
	}
	return nil
}
