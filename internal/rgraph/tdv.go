package rgraph

import (
	"fmt"
	"sort"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/vclock"
)

// TDVTable holds, for every local checkpoint of a pattern, the transitive
// dependency vector an ideal on-line tracker would have recorded with it:
// entry k of the vector of C_{i,x} is the highest interval index z of
// process k such that a causal message chain links C_{k,z} to the state
// recorded by C_{i,x} (entry i is x itself).
type TDVTable struct {
	n    int
	vecs [][]vclock.Vec // [proc][index]
}

// At returns the offline dependency vector of the checkpoint. The returned
// vector is shared; callers must not modify it.
func (t *TDVTable) At(c model.CkptID) vclock.Vec { return t.vecs[c.Proc][c.Index] }

// Trackable reports whether the R-path a -> b is on-line trackable: by the
// paper's characterization, C_{i,x} -> C_{j,y} is on-line trackable iff
// TDV_{j,y}[i] >= x (for i == j this degenerates to x <= y).
func (t *TDVTable) Trackable(a, b model.CkptID) bool {
	return t.At(b)[a.Proc] >= a.Index
}

// Analyzer computes the offline analyses while reusing its replay scratch
// (event lists, send stamps, running vectors) across calls. The experiment
// grid runs thousands of patterns through ComputeTDVs and CheckRDT; a
// per-worker Analyzer removes the per-pattern allocation churn of those
// calls. An Analyzer is not safe for concurrent use: give each goroutine
// its own.
//
// Results (TDVTable, Report) are freshly allocated and stay valid after
// further calls; only the internal scratch is reused.
type Analyzer struct {
	events  []event   // backing arena for the per-process event lists
	perProc [][]event // event lists, sorted by per-process sequence
	pos     []int     // replay cursor per process
	sent    []bool    // by position of the message in p.Messages
	stamps  []int     // len(p.Messages) send-time vectors, n ints each
	cur     []vclock.Vec
	curMem  []int // backing arena for cur
}

// NewAnalyzer returns an empty Analyzer; scratch grows on first use.
func NewAnalyzer() *Analyzer { return &Analyzer{} }

// ComputeTDVs replays the pattern in a causally consistent interleaving and
// computes the offline dependency vector of every checkpoint. It fails if
// the pattern admits no such interleaving (which Validate-clean patterns
// recorded from real runs always do).
func ComputeTDVs(p *model.Pattern) (*TDVTable, error) {
	return NewAnalyzer().ComputeTDVs(p)
}

// ComputeTDVs is the package-level ComputeTDVs with scratch reuse.
func (a *Analyzer) ComputeTDVs(p *model.Pattern) (*TDVTable, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("compute tdvs: %w", err)
	}
	a.prepare(p)
	n := p.N

	// The table outlives the call, so its storage is freshly allocated —
	// but as two arenas (headers, ints) instead of one slice per checkpoint.
	total := 0
	for i := 0; i < n; i++ {
		total += len(p.Checkpoints[i])
	}
	table := &TDVTable{n: n, vecs: make([][]vclock.Vec, n)}
	headers := make([]vclock.Vec, total)
	mem := make([]int, total*n)
	offset := 0
	for i := 0; i < n; i++ {
		table.vecs[i] = headers[offset : offset+len(p.Checkpoints[i])]
		for x := range table.vecs[i] {
			table.vecs[i][x] = vclock.Vec(mem[(offset+x)*n : (offset+x+1)*n])
		}
		offset += len(p.Checkpoints[i])
	}

	cur := a.currentVectors(n)
	err := a.run(func(e event) {
		i := int(e.proc)
		switch e.kind {
		case evCheckpoint:
			copy(table.vecs[i][e.index], cur[i])
			cur[i][i] = e.index + 1 // TDV_i[i] is always the current interval index
		case evSend:
			copy(a.stamps[e.msgIdx*n:(e.msgIdx+1)*n], cur[i])
		case evDeliver:
			cur[i].MaxInto(vclock.Vec(a.stamps[e.msgIdx*n : (e.msgIdx+1)*n]))
		}
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// CheckRDT is the package-level CheckRDT with scratch reuse.
func (a *Analyzer) CheckRDT(p *model.Pattern, maxViolations int) (*Report, error) {
	g, err := Build(p)
	if err != nil {
		return nil, err
	}
	tdvs, err := a.ComputeTDVs(p)
	if err != nil {
		return nil, err
	}
	return checkRDT(g, tdvs, maxViolations), nil
}

// currentVectors returns n zeroed running vectors of length n backed by the
// reused arena.
func (a *Analyzer) currentVectors(n int) []vclock.Vec {
	if cap(a.curMem) < n*n {
		a.curMem = make([]int, n*n)
	} else {
		a.curMem = a.curMem[:n*n]
		for i := range a.curMem {
			a.curMem[i] = 0
		}
	}
	if cap(a.cur) < n {
		a.cur = make([]vclock.Vec, n)
	} else {
		a.cur = a.cur[:n]
	}
	for i := 0; i < n; i++ {
		a.cur[i] = vclock.Vec(a.curMem[i*n : (i+1)*n])
	}
	return a.cur
}

// prepare rebuilds the per-process event lists for the pattern inside the
// reused arenas.
func (a *Analyzer) prepare(p *model.Pattern) {
	n := p.N
	if cap(a.perProc) < n {
		a.perProc = make([][]event, n)
	} else {
		a.perProc = a.perProc[:n]
	}
	if cap(a.pos) < n {
		a.pos = make([]int, n)
	} else {
		a.pos = a.pos[:n]
	}

	// First pass: events per process, reusing pos as the counter.
	counts := a.pos
	for i := range counts {
		counts[i] = len(p.Checkpoints[i])
	}
	for i := range p.Messages {
		m := &p.Messages[i]
		counts[m.From]++
		counts[m.To]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if cap(a.events) < total {
		a.events = make([]event, total)
	} else {
		a.events = a.events[:total]
	}
	offset := 0
	for i := 0; i < n; i++ {
		a.perProc[i] = a.events[offset : offset : offset+counts[i]]
		offset += counts[i]
	}

	// Second pass: fill and sort by per-process sequence number.
	for i := 0; i < n; i++ {
		for x := range p.Checkpoints[i] {
			ck := &p.Checkpoints[i][x]
			a.perProc[i] = append(a.perProc[i], event{kind: evCheckpoint, proc: ck.Proc, seq: ck.Seq, index: ck.Index})
		}
	}
	for i := range p.Messages {
		m := &p.Messages[i]
		a.perProc[m.From] = append(a.perProc[m.From], event{kind: evSend, proc: m.From, seq: m.SendSeq, msgIdx: i})
		a.perProc[m.To] = append(a.perProc[m.To], event{kind: evDeliver, proc: m.To, seq: m.DeliverSeq, msgIdx: i})
	}
	for i := range a.perProc {
		evs := a.perProc[i]
		sort.Slice(evs, func(x, y int) bool { return evs[x].seq < evs[y].seq })
	}

	for i := range a.pos {
		a.pos[i] = 0
	}
	if cap(a.sent) < len(p.Messages) {
		a.sent = make([]bool, len(p.Messages))
	} else {
		a.sent = a.sent[:len(p.Messages)]
		for i := range a.sent {
			a.sent[i] = false
		}
	}
	// The stamp arena needs no zeroing: a delivery's read is always
	// preceded by its send's full-width copy.
	if cap(a.stamps) < len(p.Messages)*n {
		a.stamps = make([]int, len(p.Messages)*n)
	} else {
		a.stamps = a.stamps[:len(p.Messages)*n]
	}
}

type eventKind int8

const (
	evCheckpoint eventKind = iota + 1
	evSend
	evDeliver
)

type event struct {
	kind   eventKind
	proc   model.ProcID
	seq    int
	index  int // checkpoint index, for evCheckpoint
	msgIdx int // position in p.Messages, for evSend / evDeliver
}

// run invokes fn once per event, in a valid causal interleaving: a
// delivery runs only after its send.
func (a *Analyzer) run(fn func(event)) error {
	remaining := 0
	for _, evs := range a.perProc {
		remaining += len(evs)
	}
	for remaining > 0 {
		progressed := false
		for i := range a.perProc {
			for a.pos[i] < len(a.perProc[i]) {
				e := a.perProc[i][a.pos[i]]
				if e.kind == evDeliver && !a.sent[e.msgIdx] {
					break
				}
				if e.kind == evSend {
					a.sent[e.msgIdx] = true
				}
				fn(e)
				a.pos[i]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return fmt.Errorf("replay: no causally consistent interleaving (stuck with %d events left)", remaining)
		}
	}
	return nil
}
