package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// collector gathers delivered frames.
type collector struct {
	mu     sync.Mutex
	frames []Frame
}

func (c *collector) handler(f Frame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames = append(c.frames, f)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func (c *collector) waitFor(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d frames, have %d", n, c.count())
		}
		time.Sleep(time.Millisecond)
	}
}

func testTransport(t *testing.T, makeTransport func(n int) Transport) {
	t.Helper()
	t.Run("delivers frames to the right process", func(t *testing.T) {
		tr := makeTransport(3)
		defer tr.Close()
		var c0, c1, c2 collector
		for i, c := range []*collector{&c0, &c1, &c2} {
			if err := tr.Register(i, c.handler); err != nil {
				t.Fatalf("register %d: %v", i, err)
			}
		}
		for i := 0; i < 10; i++ {
			if err := tr.Send(Frame{From: 0, To: 1, Data: []byte{byte(i)}}); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		if err := tr.Send(Frame{From: 1, To: 2, Data: []byte("x")}); err != nil {
			t.Fatalf("send: %v", err)
		}
		c1.waitFor(t, 10)
		c2.waitFor(t, 1)
		if c0.count() != 0 {
			t.Errorf("process 0 received %d frames, want 0", c0.count())
		}
		for _, f := range c1.frames {
			if f.From != 0 || f.To != 1 {
				t.Errorf("misrouted frame %+v", f)
			}
		}
	})

	t.Run("rejects duplicate registration", func(t *testing.T) {
		tr := makeTransport(2)
		defer tr.Close()
		if err := tr.Register(0, func(Frame) {}); err != nil {
			t.Fatalf("register: %v", err)
		}
		if err := tr.Register(0, func(Frame) {}); err == nil {
			t.Error("duplicate registration accepted")
		}
	})

	t.Run("close is idempotent and rejects further use", func(t *testing.T) {
		tr := makeTransport(2)
		if err := tr.Register(0, func(Frame) {}); err != nil {
			t.Fatalf("register: %v", err)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
		if err := tr.Register(1, func(Frame) {}); err == nil {
			t.Error("register accepted after close")
		}
	})

	t.Run("concurrent senders", func(t *testing.T) {
		tr := makeTransport(4)
		defer tr.Close()
		var sink collector
		if err := tr.Register(3, sink.handler); err != nil {
			t.Fatalf("register: %v", err)
		}
		for i := 0; i < 3; i++ {
			if err := tr.Register(i, func(Frame) {}); err != nil {
				t.Fatalf("register: %v", err)
			}
		}
		var wg sync.WaitGroup
		const perSender = 50
		for s := 0; s < 3; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < perSender; i++ {
					if err := tr.Send(Frame{From: s, To: 3, Data: []byte(fmt.Sprintf("%d-%d", s, i))}); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		sink.waitFor(t, 3*perSender)
	})
}

func TestLocalTransport(t *testing.T) {
	testTransport(t, func(n int) Transport { return NewLocal(0) })
}

func TestLocalTransportWithDelay(t *testing.T) {
	testTransport(t, func(n int) Transport { return NewLocal(2 * time.Millisecond) })
}

func TestTCPTransport(t *testing.T) {
	testTransport(t, func(n int) Transport {
		tr, err := NewTCP(n)
		if err != nil {
			t.Fatalf("new tcp: %v", err)
		}
		return tr
	})
}

func TestLocalSendToUnregistered(t *testing.T) {
	tr := NewLocal(0)
	defer tr.Close()
	if err := tr.Send(Frame{From: 0, To: 5}); err == nil {
		t.Error("send to unregistered process accepted")
	}
}

func TestLocalSendAfterClose(t *testing.T) {
	tr := NewLocal(0)
	if err := tr.Register(0, func(Frame) {}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := tr.Send(Frame{From: 1, To: 0}); err == nil {
		t.Error("send accepted after close")
	}
}

func TestTCPAddrAndBadDestination(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatalf("new tcp: %v", err)
	}
	defer tr.Close()
	if tr.Addr(0) == "" || tr.Addr(1) == "" {
		t.Error("empty listen address")
	}
	if err := tr.Send(Frame{From: 0, To: 7}); err == nil {
		t.Error("send to out-of-range process accepted")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatalf("new tcp: %v", err)
	}
	if err := tr.Register(0, func(Frame) {}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := tr.Send(Frame{From: 1, To: 0}); err == nil {
		t.Error("send accepted after close")
	}
}

// TestTCPLargeFrames pushes frames the size of a big BHMR piggyback
// (n=128 matrix ≈ 16 KiB gob-encoded) through TCP to catch framing bugs.
func TestTCPLargeFrames(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatalf("new tcp: %v", err)
	}
	defer tr.Close()
	var sink collector
	if err := tr.Register(1, sink.handler); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := tr.Register(0, func(Frame) {}); err != nil {
		t.Fatalf("register: %v", err)
	}
	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = byte(i * 31)
	}
	const frames = 20
	for i := 0; i < frames; i++ {
		if err := tr.Send(Frame{From: 0, To: 1, Data: big}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	sink.waitFor(t, frames)
	for _, f := range sink.frames {
		if len(f.Data) != len(big) {
			t.Fatalf("frame truncated: %d bytes", len(f.Data))
		}
		for i := 0; i < len(big); i += 4096 {
			if f.Data[i] != big[i] {
				t.Fatal("frame corrupted")
			}
		}
	}
}

// TestLocalCloseWaitsForInFlight: Close must not return before delayed
// deliveries have run.
func TestLocalCloseWaitsForInFlight(t *testing.T) {
	tr := NewLocal(5 * time.Millisecond)
	var sink collector
	if err := tr.Register(0, sink.handler); err != nil {
		t.Fatalf("register: %v", err)
	}
	const frames = 10
	for i := 0; i < frames; i++ {
		if err := tr.Send(Frame{From: 1, To: 0}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := sink.count(); got != frames {
		t.Errorf("Close returned with %d/%d deliveries done", got, frames)
	}
}
