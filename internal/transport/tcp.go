package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// TCP is a loopback TCP transport: every process owns a listener, frames
// are gob-encoded over persistent connections dialed on first use. It
// exists so the runtime can be exercised over a real network stack.
type TCP struct {
	n     int
	addrs []string

	mu        sync.Mutex
	handlers  map[int]Handler
	listeners []net.Listener
	conns     map[int]*tcpConn
	closed    bool
	wg        sync.WaitGroup
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

var _ Transport = (*TCP)(nil)

// NewTCP creates listeners for n processes on 127.0.0.1 and starts their
// accept loops. Handlers must be registered before peers send to them;
// frames arriving for an unregistered process are dropped after Close.
func NewTCP(n int) (*TCP, error) {
	t := &TCP{
		n:        n,
		addrs:    make([]string, n),
		handlers: make(map[int]Handler),
		conns:    make(map[int]*tcpConn),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("listen for process %d: %w", i, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs[i] = ln.Addr().String()
		t.wg.Add(1)
		go t.acceptLoop(ln)
	}
	return t, nil
}

// Addr returns the listen address of a process, for diagnostics.
func (t *TCP) Addr(proc int) string { return t.addrs[proc] }

// Name identifies the transport in metric labels.
func (t *TCP) Name() string { return "tcp" }

// Register implements Transport.
func (t *TCP) Register(proc int, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if _, dup := t.handlers[proc]; dup {
		return fmt.Errorf("process %d already registered", proc)
	}
	t.handlers[proc] = h
	return nil
}

// Send implements Transport.
func (t *TCP) Send(f Frame) error {
	if f.To < 0 || f.To >= t.n {
		return fmt.Errorf("send to unknown process %d", f.To)
	}
	c, err := t.dial(f.To)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(f); err != nil {
		// The stream is poisoned (a dead socket, or a partial write
		// desynchronizing the gob stream): drop it from the cache so the
		// next send redials instead of failing forever.
		_ = c.conn.Close()
		t.mu.Lock()
		if t.conns[f.To] == c {
			delete(t.conns, f.To)
		}
		t.mu.Unlock()
		return fmt.Errorf("encode frame to %d: %w", f.To, err)
	}
	return nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	listeners := t.listeners
	conns := t.conns
	t.mu.Unlock()

	for _, ln := range listeners {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.conn.Close()
	}
	t.wg.Wait()
	return nil
}

func (t *TCP) dial(to int) (*tcpConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if c, ok := t.conns[to]; ok {
		return c, nil
	}
	conn, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("dial process %d: %w", to, err)
	}
	c := &tcpConn{conn: conn, enc: gob.NewEncoder(conn)}
	t.conns[to] = c
	return c, nil
}

func (t *TCP) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			// EOF or teardown during shutdown ends the stream.
			return
		}
		t.mu.Lock()
		h := t.handlers[f.To]
		t.mu.Unlock()
		if h != nil {
			h(f)
		}
	}
}
