// Package transport provides the message transports of the concurrent
// runtime: an in-process transport built on goroutines, and a TCP
// transport over the loopback interface with gob-encoded frames. Both
// deliver frames asynchronously and reliably with unpredictable (but
// finite) delays, matching the channel model of the paper.
package transport

import "errors"

// Frame is one addressed, opaque message. The runtime encodes the
// application payload and the protocol piggyback into Data.
type Frame struct {
	From int
	To   int
	Data []byte
}

// Handler consumes delivered frames. Handlers must be quick and must not
// block: they typically enqueue into the destination process's mailbox.
type Handler func(Frame)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport is closed")

// Transport moves frames between processes.
type Transport interface {
	// Register installs the delivery handler for a process. All processes
	// must be registered before frames are sent to them.
	Register(proc int, h Handler) error
	// Send queues the frame for asynchronous delivery. It never blocks on
	// the receiver.
	Send(f Frame) error
	// Close stops the transport and waits for in-flight deliveries to
	// drain.
	Close() error
}
