package transport

import (
	"encoding/binary"
	"errors"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
)

// instrumented decorates a Transport with observability: it counts
// frames, payload bytes, and send errors, and measures the per-hop
// delay (send to handler invocation) in a histogram. It never retries —
// a retry after an error that surfaced mid-transmission could deliver
// the frame twice, and an observability wrapper must not change
// delivery semantics. The decorator owns both ends of the channel, so
// it carries the send timestamp as an 8-byte prefix on the frame data
// and strips it before the inner handler runs.
type instrumented struct {
	inner      Transport
	frames     *obs.Counter
	bytes      *obs.Counter
	sendErrors *obs.Counter
	hop        *obs.Histogram
	tracer     *obs.Tracer
}

var _ Transport = (*instrumented)(nil)

// stampLen is the size of the nanosecond send timestamp prefixed to
// every instrumented frame.
const stampLen = 8

// WithObs wraps a transport with frame/byte/error counters, a per-hop
// delay histogram, and send-error events. A nil registry and tracer
// return the inner transport unchanged. The transport's Name method
// (when present) labels the series; unnamed transports are labeled
// "custom".
func WithObs(inner Transport, reg *obs.Registry, tr *obs.Tracer) Transport {
	if reg == nil && tr == nil {
		return inner
	}
	name := "custom"
	if n, ok := inner.(interface{ Name() string }); ok {
		name = n.Name()
	}
	return &instrumented{
		inner:      inner,
		frames:     reg.Counter("rdt_transport_frames_total", "transport", name),
		bytes:      reg.Counter("rdt_transport_bytes_total", "transport", name),
		sendErrors: reg.Counter("rdt_transport_send_errors_total", "transport", name),
		hop:        reg.Histogram("rdt_transport_hop_seconds", obs.LatencyBuckets, "transport", name),
		tracer:     tr,
	}
}

// Register implements Transport: the handler is wrapped to strip the
// timestamp prefix and observe the hop delay before delivering.
func (t *instrumented) Register(proc int, h Handler) error {
	return t.inner.Register(proc, func(f Frame) {
		if len(f.Data) >= stampLen {
			sent := int64(binary.BigEndian.Uint64(f.Data[:stampLen]))
			if d := time.Now().UnixNano() - sent; d >= 0 {
				t.hop.Observe(float64(d) / 1e9)
			}
			f.Data = f.Data[stampLen:]
		}
		h(f)
	})
}

// Send implements Transport: it accounts for the frame, stamps the
// send time, and counts and traces any error. The error is returned
// unchanged — never retried, because the decorator cannot tell whether
// the frame left the wire before the error surfaced, and a duplicate
// delivery would corrupt the runtime's exactly-once accounting.
func (t *instrumented) Send(f Frame) error {
	t.frames.Inc()
	t.bytes.Add(int64(len(f.Data)))
	stamped := make([]byte, stampLen+len(f.Data))
	binary.BigEndian.PutUint64(stamped, uint64(time.Now().UnixNano()))
	copy(stamped[stampLen:], f.Data)
	f.Data = stamped

	err := t.inner.Send(f)
	if err != nil && !errors.Is(err, ErrClosed) {
		t.sendErrors.Inc()
		t.tracer.Record(obs.Event{
			Type:   obs.EventSendError,
			Proc:   f.From,
			Peer:   f.To,
			Detail: err.Error(),
		})
	}
	return err
}

// Close implements Transport.
func (t *instrumented) Close() error { return t.inner.Close() }
