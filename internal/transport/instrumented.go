package transport

import (
	"encoding/binary"
	"errors"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
)

// instrumented decorates a Transport with observability: it counts
// frames and payload bytes, measures the per-hop delay (send to handler
// invocation) in a histogram, and retries one transient send failure,
// recording the retry. The decorator owns both ends of the channel, so
// it carries the send timestamp as an 8-byte prefix on the frame data
// and strips it before the inner handler runs.
type instrumented struct {
	inner   Transport
	frames  *obs.Counter
	bytes   *obs.Counter
	retries *obs.Counter
	hop     *obs.Histogram
	tracer  *obs.Tracer
}

var _ Transport = (*instrumented)(nil)

// stampLen is the size of the nanosecond send timestamp prefixed to
// every instrumented frame.
const stampLen = 8

// WithObs wraps a transport with frame/byte counters, a per-hop delay
// histogram, and retry events. A nil registry and tracer return the
// inner transport unchanged. The transport's Name method (when present)
// labels the series; unnamed transports are labeled "custom".
func WithObs(inner Transport, reg *obs.Registry, tr *obs.Tracer) Transport {
	if reg == nil && tr == nil {
		return inner
	}
	name := "custom"
	if n, ok := inner.(interface{ Name() string }); ok {
		name = n.Name()
	}
	return &instrumented{
		inner:   inner,
		frames:  reg.Counter("rdt_transport_frames_total", "transport", name),
		bytes:   reg.Counter("rdt_transport_bytes_total", "transport", name),
		retries: reg.Counter("rdt_transport_retries_total", "transport", name),
		hop:     reg.Histogram("rdt_transport_hop_seconds", obs.LatencyBuckets, "transport", name),
		tracer:  tr,
	}
}

// Register implements Transport: the handler is wrapped to strip the
// timestamp prefix and observe the hop delay before delivering.
func (t *instrumented) Register(proc int, h Handler) error {
	return t.inner.Register(proc, func(f Frame) {
		if len(f.Data) >= stampLen {
			sent := int64(binary.BigEndian.Uint64(f.Data[:stampLen]))
			if d := time.Now().UnixNano() - sent; d >= 0 {
				t.hop.Observe(float64(d) / 1e9)
			}
			f.Data = f.Data[stampLen:]
		}
		h(f)
	})
}

// Send implements Transport: it accounts for the frame, stamps the send
// time, and retries once on a transient error.
func (t *instrumented) Send(f Frame) error {
	t.frames.Inc()
	t.bytes.Add(int64(len(f.Data)))
	stamped := make([]byte, stampLen+len(f.Data))
	binary.BigEndian.PutUint64(stamped, uint64(time.Now().UnixNano()))
	copy(stamped[stampLen:], f.Data)
	f.Data = stamped

	err := t.inner.Send(f)
	if err == nil || errors.Is(err, ErrClosed) {
		return err
	}
	// One retry covers transient failures (e.g. a TCP dial racing the
	// peer's listener); a closed transport is final.
	t.retries.Inc()
	t.tracer.Record(obs.Event{
		Type:   obs.EventRetry,
		Proc:   f.From,
		Peer:   f.To,
		Detail: err.Error(),
	})
	return t.inner.Send(f)
}

// Close implements Transport.
func (t *instrumented) Close() error { return t.inner.Close() }
