package transport

import (
	"errors"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
)

func TestFaultyZeroConfigIsTransparent(t *testing.T) {
	testTransport(t, func(n int) Transport {
		return WithFaults(NewLocal(0), FaultConfig{Seed: 7})
	})
}

func TestFaultyDropsSilently(t *testing.T) {
	tr := WithFaults(NewLocal(0), FaultConfig{Seed: 1, Default: FaultProbs{Drop: 1}})
	defer tr.Close()
	var sink collector
	if err := tr.Register(1, sink.handler); err != nil {
		t.Fatalf("register: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := tr.Send(Frame{From: 0, To: 1, Data: []byte{byte(i)}}); err != nil {
			t.Fatalf("drop must report success, got %v", err)
		}
	}
	time.Sleep(10 * time.Millisecond)
	if got := sink.count(); got != 0 {
		t.Errorf("%d frames survived a 100%% drop link", got)
	}
	if got := tr.Injected()[FaultDrop]; got != 10 {
		t.Errorf("drop count = %d, want 10", got)
	}
}

func TestFaultyDuplicates(t *testing.T) {
	tr := WithFaults(NewLocal(0), FaultConfig{Seed: 1, Default: FaultProbs{Duplicate: 1}})
	var sink collector
	if err := tr.Register(1, sink.handler); err != nil {
		t.Fatalf("register: %v", err)
	}
	const frames = 5
	for i := 0; i < frames; i++ {
		if err := tr.Send(Frame{From: 0, To: 1, Data: []byte{byte(i)}}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := tr.Close(); err != nil { // waits for deferred copies
		t.Fatalf("close: %v", err)
	}
	if got := sink.count(); got != 2*frames {
		t.Errorf("delivered %d frames, want %d (each duplicated)", got, 2*frames)
	}
}

func TestFaultyInjectsSendErrors(t *testing.T) {
	reg := obs.NewRegistry()
	tr := WithFaults(NewLocal(0), FaultConfig{
		Seed:    1,
		Default: FaultProbs{SendError: 1},
		Obs:     reg,
	})
	defer tr.Close()
	if err := tr.Register(1, func(Frame) {}); err != nil {
		t.Fatalf("register: %v", err)
	}
	err := tr.Send(Frame{From: 0, To: 1})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("send error = %v, want ErrInjected", err)
	}
	if got := reg.Counter("rdt_faults_injected_total", "kind", FaultSendError).Value(); got != 1 {
		t.Errorf("rdt_faults_injected_total{kind=send-error} = %d, want 1", got)
	}
}

func TestFaultyPartitionAndHeal(t *testing.T) {
	tr := WithFaults(NewLocal(0), FaultConfig{Seed: 1})
	defer tr.Close()
	var sink collector
	if err := tr.Register(1, sink.handler); err != nil {
		t.Fatalf("register: %v", err)
	}
	tr.Partition(0, 1)
	if err := tr.Send(Frame{From: 0, To: 1}); err != nil {
		t.Fatalf("partitioned send must report success, got %v", err)
	}
	if err := tr.Send(Frame{From: 1, To: 0}); err != nil { // both directions cut
		t.Fatalf("send: %v", err)
	}
	time.Sleep(5 * time.Millisecond)
	if sink.count() != 0 {
		t.Error("frame crossed a partition")
	}
	if got := tr.Injected()[FaultPartition]; got != 2 {
		t.Errorf("partition count = %d, want 2", got)
	}
	tr.Heal(0, 1)
	if err := tr.Send(Frame{From: 0, To: 1}); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	sink.waitFor(t, 1)
}

func TestFaultyReorderDeliversEverything(t *testing.T) {
	tr := WithFaults(NewLocal(0), FaultConfig{
		Seed:    3,
		Default: FaultProbs{Reorder: 0.5, MaxExtraDelay: 2 * time.Millisecond},
	})
	var sink collector
	if err := tr.Register(1, sink.handler); err != nil {
		t.Fatalf("register: %v", err)
	}
	const frames = 40
	for i := 0; i < frames; i++ {
		if err := tr.Send(Frame{From: 0, To: 1, Data: []byte{byte(i)}}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := sink.count(); got != frames {
		t.Errorf("delivered %d, want %d (reorder must not lose frames)", got, frames)
	}
	if tr.Injected()[FaultReorder] == 0 {
		t.Error("no reorders injected at probability 0.5 over 40 frames")
	}
}

func TestFaultyPerLinkOverrides(t *testing.T) {
	tr := WithFaults(NewLocal(0), FaultConfig{
		Seed:  1,
		Links: map[Link]FaultProbs{{From: 0, To: 1}: {Drop: 1}},
	})
	defer tr.Close()
	var to1, to2 collector
	if err := tr.Register(1, to1.handler); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := tr.Register(2, to2.handler); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := tr.Send(Frame{From: 0, To: 1}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := tr.Send(Frame{From: 0, To: 2}); err != nil {
		t.Fatalf("send: %v", err)
	}
	to2.waitFor(t, 1)
	if to1.count() != 0 {
		t.Error("frame survived the per-link 100% drop")
	}
}

func TestFaultyDeterministicSchedule(t *testing.T) {
	run := func(seed int64) map[string]int64 {
		tr := WithFaults(NewLocal(0), FaultConfig{
			Seed:    seed,
			Default: FaultProbs{Drop: 0.3, Duplicate: 0.2, Reorder: 0.2, SendError: 0.1},
		})
		if err := tr.Register(1, func(Frame) {}); err != nil {
			t.Fatalf("register: %v", err)
		}
		for i := 0; i < 100; i++ {
			_ = tr.Send(Frame{From: 0, To: 1, Data: []byte{byte(i)}})
		}
		counts := tr.Injected()
		_ = tr.Close()
		return counts
	}
	a, b := run(42), run(42)
	for _, kind := range []string{FaultDrop, FaultDuplicate, FaultReorder, FaultSendError} {
		if a[kind] != b[kind] {
			t.Errorf("kind %s: %d vs %d across identical seeds", kind, a[kind], b[kind])
		}
	}
	c := run(43)
	same := true
	for _, kind := range []string{FaultDrop, FaultDuplicate, FaultReorder, FaultSendError} {
		if a[kind] != c[kind] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical fault schedule")
	}
}

// TestTCPRedialsAfterConnDeath is the regression test for the cached-
// connection bug: a dead connection used to stay in the cache, failing
// every later send to that peer.
func TestTCPRedialsAfterConnDeath(t *testing.T) {
	tr, err := NewTCP(2)
	if err != nil {
		t.Fatalf("new tcp: %v", err)
	}
	defer tr.Close()
	var sink collector
	if err := tr.Register(1, sink.handler); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := tr.Register(0, func(Frame) {}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := tr.Send(Frame{From: 0, To: 1, Data: []byte("a")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	sink.waitFor(t, 1)

	// Kill the cached connection under the transport, as a peer crash or
	// middlebox reset would.
	tr.mu.Lock()
	conn := tr.conns[1]
	tr.mu.Unlock()
	if conn == nil {
		t.Fatal("no cached connection after a successful send")
	}
	if err := conn.conn.Close(); err != nil {
		t.Fatalf("kill conn: %v", err)
	}

	// Sends eventually succeed again: the first failing send evicts the
	// dead connection, the next one redials.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := tr.Send(Frame{From: 0, To: 1, Data: []byte("b")}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sends never recovered after connection death")
		}
		time.Sleep(time.Millisecond)
	}
	sink.waitFor(t, 2)
}
