package transport

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/vtime"
)

// ErrGiveUp is surfaced (through ReliableConfig.OnGiveUp) when the
// reliable transport abandons a frame after exhausting its retries —
// the receiver is unreachable for longer than the retry budget covers.
var ErrGiveUp = errors.New("transport: gave up delivering frame")

// ReliableConfig parameterizes Reliable.
type ReliableConfig struct {
	// MaxRetries bounds the retransmissions per frame (the first
	// transmission is free). Default 10.
	MaxRetries int
	// Backoff is the initial ack-wait; it doubles per retry up to
	// MaxBackoff, with up to 50% random jitter. Defaults 2ms / 100ms.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed makes the jitter schedule reproducible. Zero seeds from 1.
	Seed int64
	// OnGiveUp, if non-nil, is called once per abandoned frame with the
	// original frame and ErrGiveUp. It runs on the retry goroutine and
	// must not block.
	OnGiveUp func(f Frame, err error)

	// Obs, if non-nil, receives rdt_send_retries_total,
	// rdt_reliable_giveups_total, and rdt_reliable_dups_suppressed_total.
	Obs *obs.Registry
	// Tracer, if non-nil, records EventRetry and EventGiveUp.
	Tracer *obs.Tracer

	// Clock drives the retry backoff. Nil means the wall clock; a
	// vtime.Virtual makes retransmissions fire deterministically inside
	// Advance, in deadline order.
	Clock vtime.Clock
}

// ReliableTransport decorates any Transport with exactly-once delivery
// over a lossy, duplicating, reordering wire: every frame carries a
// per-(sender,receiver) sequence number, the receiver acknowledges and
// deduplicates, and the sender retransmits unacknowledged frames with
// exponential backoff and jitter until acked or the retry budget is
// spent (ErrGiveUp). Send errors from the wrapped transport are treated
// as transient and retried — safe, because the receiver-side dedup makes
// a double transmission deliver once.
//
// Acks travel as extra frames through the wrapped transport from the
// receiver's process id back to the sender's, so every process that
// sends must also be registered (the cluster runtime always is).
type ReliableTransport struct {
	inner Transport
	cfg   ReliableConfig

	clock vtime.Clock

	mu      sync.Mutex
	rng     *rand.Rand
	nextSeq map[Link]uint64
	pending map[pendingKey]*pendingFrame
	seen    map[Link]*dedupWindow
	closed  bool
	wg      sync.WaitGroup // one slot per live pending frame

	retries *obs.Counter
	giveups *obs.Counter
	dups    *obs.Counter
}

var _ Transport = (*ReliableTransport)(nil)

type pendingKey struct {
	link Link
	seq  uint64
}

// pendingFrame is one unacked frame's retry state machine, driven by a
// chain of clock timers instead of a parked goroutine: each firing
// retransmits and arms the next timer. All fields are guarded by
// ReliableTransport.mu. Exactly one party releases the frame's waitgroup
// slot: whoever flips done — the ack/close path when it stops the armed
// timer, otherwise the in-flight retry firing when it observes done.
type pendingFrame struct {
	orig    Frame // the caller's frame, for OnGiveUp
	frame   Frame // the framed (headered) wire frame
	link    Link
	seq     uint64
	attempt int
	backoff time.Duration
	timer   vtime.Timer // armed retry; nil while the initial Send runs
	done    bool        // acked, given up, or closed
}

// Reliable wraps a transport with the retry/dedup layer.
func Reliable(inner Transport, cfg ReliableConfig) *ReliableTransport {
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 10
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 2 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 100 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &ReliableTransport{
		inner:   inner,
		cfg:     cfg,
		clock:   vtime.Or(cfg.Clock),
		rng:     rand.New(rand.NewSource(seed)),
		nextSeq: make(map[Link]uint64),
		pending: make(map[pendingKey]*pendingFrame),
		seen:    make(map[Link]*dedupWindow),
		retries: cfg.Obs.Counter("rdt_send_retries_total"),
		giveups: cfg.Obs.Counter("rdt_reliable_giveups_total"),
		dups:    cfg.Obs.Counter("rdt_reliable_dups_suppressed_total"),
	}
}

// Name identifies the transport in metric labels.
func (t *ReliableTransport) Name() string {
	if n, ok := t.inner.(interface{ Name() string }); ok {
		return "reliable+" + n.Name()
	}
	return "reliable"
}

// Wire framing: one type byte, 8 sequence bytes, then the payload (data
// frames only).
const (
	relHeaderLen       = 9
	relData      uint8 = 0xD1
	relAck       uint8 = 0xA1
)

func relFrame(typ uint8, seq uint64, payload []byte) []byte {
	buf := make([]byte, relHeaderLen+len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint64(buf[1:relHeaderLen], seq)
	copy(buf[relHeaderLen:], payload)
	return buf
}

// Register implements Transport: the handler is wrapped to consume acks,
// acknowledge and deduplicate data frames, and deliver each sequence
// number at most once. Frames without the reliable header (from an
// unwrapped sender) pass through untouched.
func (t *ReliableTransport) Register(proc int, h Handler) error {
	return t.inner.Register(proc, func(f Frame) {
		if len(f.Data) < relHeaderLen || (f.Data[0] != relData && f.Data[0] != relAck) {
			h(f)
			return
		}
		seq := binary.BigEndian.Uint64(f.Data[1:relHeaderLen])
		if f.Data[0] == relAck {
			// The ack frame goes receiver→sender, so the acked link is
			// the reverse of the ack's own addressing.
			t.onAck(Link{From: f.To, To: f.From}, seq)
			return
		}
		link := Link{From: f.From, To: f.To}
		// Ack first: even a duplicate must be re-acked, because the
		// duplicate usually means the first ack was lost.
		ack := Frame{From: f.To, To: f.From, Data: relFrame(relAck, seq, nil)}
		_ = t.inner.Send(ack) // a lost ack is retried via the data path
		t.mu.Lock()
		w := t.seen[link]
		if w == nil {
			w = &dedupWindow{delivered: make(map[uint64]struct{})}
			t.seen[link] = w
		}
		fresh := w.admit(seq)
		t.mu.Unlock()
		if !fresh {
			t.dups.Inc()
			return
		}
		h(Frame{From: f.From, To: f.To, Data: f.Data[relHeaderLen:]})
	})
}

func (t *ReliableTransport) onAck(link Link, seq uint64) {
	t.mu.Lock()
	pf, ok := t.pending[pendingKey{link, seq}]
	if !ok {
		t.mu.Unlock()
		return
	}
	delete(t.pending, pendingKey{link, seq})
	pf.done = true
	release := pf.timer != nil && pf.timer.Stop()
	t.mu.Unlock()
	// With the timer stopped no retry firing remains; the slot is ours.
	// Otherwise a firing is in flight (or the initial Send is still
	// arming) and releases the slot when it observes done.
	if release {
		t.wg.Done()
	}
}

// Send implements Transport: it assigns the frame's sequence number,
// transmits, and leaves a chain of retry timers behind until the ack
// arrives. Transient errors of the first transmission are absorbed (the
// retry path covers them); only ErrClosed is returned.
func (t *ReliableTransport) Send(f Frame) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	link := Link{From: f.From, To: f.To}
	t.nextSeq[link]++
	seq := t.nextSeq[link]
	wire := Frame{From: f.From, To: f.To, Data: relFrame(relData, seq, f.Data)}
	pf := &pendingFrame{
		orig: f, frame: wire, link: link, seq: seq, backoff: t.cfg.Backoff,
	}
	t.pending[pendingKey{link, seq}] = pf
	t.wg.Add(1)
	t.mu.Unlock()

	err := t.inner.Send(wire)
	t.mu.Lock()
	if pf.done {
		// Acked (or closed) before the retry timer was even armed.
		t.mu.Unlock()
		t.wg.Done()
		return nil
	}
	if errors.Is(err, ErrClosed) {
		pf.done = true
		delete(t.pending, pendingKey{link, seq})
		t.mu.Unlock()
		t.wg.Done()
		return err
	}
	t.armLocked(pf)
	t.mu.Unlock()
	return nil
}

// armLocked schedules pf's next retry firing. Callers hold t.mu.
func (t *ReliableTransport) armLocked(pf *pendingFrame) {
	pf.timer = t.clock.AfterFunc(t.jitterLocked(pf.backoff), func() { t.retryFire(pf) })
}

// retryFire is one firing of a frame's retry chain: retransmit and re-arm,
// or give up once the budget is spent. On the real clock it runs on a
// timer goroutine; on a virtual clock it runs inside Advance.
func (t *ReliableTransport) retryFire(pf *pendingFrame) {
	t.mu.Lock()
	if pf.done {
		// Acked or closed after this firing left the timer heap; the
		// stopper could not reclaim the slot, so we release it.
		t.mu.Unlock()
		t.wg.Done()
		return
	}
	if pf.attempt >= t.cfg.MaxRetries {
		pf.done = true
		delete(t.pending, pendingKey{pf.link, pf.seq})
		t.mu.Unlock()
		t.giveups.Inc()
		t.cfg.Tracer.Record(obs.Event{
			Type: obs.EventGiveUp, Proc: pf.orig.From, Peer: pf.orig.To, Value: int(pf.seq),
		})
		if t.cfg.OnGiveUp != nil {
			t.cfg.OnGiveUp(pf.orig, ErrGiveUp)
		}
		t.wg.Done()
		return
	}
	pf.attempt++
	attempt := pf.attempt
	t.mu.Unlock()

	t.retries.Inc()
	t.cfg.Tracer.Record(obs.Event{
		Type: obs.EventRetry, Proc: pf.orig.From, Peer: pf.orig.To, Value: attempt,
	})
	err := t.inner.Send(pf.frame)

	t.mu.Lock()
	if pf.done {
		t.mu.Unlock()
		t.wg.Done()
		return
	}
	if errors.Is(err, ErrClosed) {
		pf.done = true
		delete(t.pending, pendingKey{pf.link, pf.seq})
		t.mu.Unlock()
		t.wg.Done()
		return
	}
	if pf.backoff < t.cfg.MaxBackoff {
		pf.backoff *= 2
		if pf.backoff > t.cfg.MaxBackoff {
			pf.backoff = t.cfg.MaxBackoff
		}
	}
	t.armLocked(pf)
	t.mu.Unlock()
}

// jitterLocked returns d plus up to 50% random extra. Callers hold t.mu.
func (t *ReliableTransport) jitterLocked(d time.Duration) time.Duration {
	return d + time.Duration(t.rng.Int63n(int64(d)/2+1))
}

// Close implements Transport: it stops the retry chains, waits for
// in-flight firings, and closes the inner transport. Frames still unacked
// at close are dropped without a give-up callback — shutdown is not a
// delivery failure.
func (t *ReliableTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	var released int
	for key, pf := range t.pending {
		delete(t.pending, key)
		pf.done = true
		if pf.timer != nil && pf.timer.Stop() {
			released++
		}
		// Frames whose firing is in flight (or whose initial Send is
		// still arming) release their own slot on observing done.
	}
	t.mu.Unlock()
	for i := 0; i < released; i++ {
		t.wg.Done()
	}
	t.wg.Wait()
	return t.inner.Close()
}

// dedupWindow tracks the delivered sequence numbers of one link with a
// contiguous low-water mark plus a sparse set above it, so memory stays
// proportional to the reorder window, not the run length.
type dedupWindow struct {
	low       uint64 // every seq <= low has been delivered
	delivered map[uint64]struct{}
}

// admit reports whether seq is new, recording it if so.
func (w *dedupWindow) admit(seq uint64) bool {
	if seq <= w.low {
		return false
	}
	if _, dup := w.delivered[seq]; dup {
		return false
	}
	w.delivered[seq] = struct{}{}
	for {
		if _, ok := w.delivered[w.low+1]; !ok {
			break
		}
		delete(w.delivered, w.low+1)
		w.low++
	}
	return true
}
