package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/vtime"
)

// ErrInjected is the transient send error the fault injector returns. It
// wraps nothing deliberately: callers that retry (transport.Reliable)
// treat any non-ErrClosed error as retryable, and tests assert on this
// sentinel with errors.Is.
var ErrInjected = errors.New("transport: injected transient send error")

// FaultProbs is one link's (or the default) fault mix. All probabilities
// are in [0, 1] and are evaluated independently per frame, in the order
// partition, send-error, drop, duplicate, reorder/delay.
type FaultProbs struct {
	// Drop is the probability a frame is silently lost (Send reports
	// success, nothing arrives).
	Drop float64
	// Duplicate is the probability a frame is delivered twice.
	Duplicate float64
	// Reorder is the probability a frame is held back for a random
	// extra delay in (0, MaxExtraDelay], letting later frames overtake
	// it (delay-based reordering).
	Reorder float64
	// SendError is the probability Send returns ErrInjected before the
	// frame leaves — a transient failure the sender may retry.
	SendError float64
	// MaxExtraDelay bounds the extra delay of reordered (and duplicated)
	// frames. Zero means DefaultMaxExtraDelay when Reorder or Duplicate
	// is set.
	MaxExtraDelay time.Duration
}

// DefaultMaxExtraDelay is the extra-delay bound used when a fault mix
// enables reordering or duplication without setting one.
const DefaultMaxExtraDelay = 3 * time.Millisecond

// Link addresses one directed sender→receiver channel for per-link fault
// overrides.
type Link struct {
	From, To int
}

// FaultConfig parameterizes WithFaults.
type FaultConfig struct {
	// Seed makes the fault schedule reproducible. Zero seeds from 1.
	Seed int64
	// Default is the fault mix applied to every link without an
	// override.
	Default FaultProbs
	// Links overrides the mix per directed link.
	Links map[Link]FaultProbs

	// Obs, if non-nil, receives rdt_faults_injected_total{kind=...}.
	Obs *obs.Registry
	// Tracer, if non-nil, records one EventFault per injected fault.
	Tracer *obs.Tracer

	// Clock, when non-nil, schedules deferred (delayed/duplicated) sends
	// as clock timers instead of goroutine sleeps, so under vtime.Virtual
	// they fire deterministically inside Advance. Deferred frames still
	// pending when the injector closes are dropped — indistinguishable
	// from loss, which they already are to the sender.
	Clock vtime.Clock
}

// Faulty is a fault-injecting transport decorator: it wraps any Transport
// and, per frame, probabilistically drops, duplicates, delays (reorders),
// or fails sends, and enforces dynamic pair-wise partitions. The schedule
// is driven by a single seeded generator, so a fixed seed and a fixed
// send sequence replay the same faults. Faults apply only on the send
// path; registration and delivery pass through unchanged, which lets the
// decorator compose under WithObs and over Reliable.
type Faulty struct {
	inner Transport
	cfg   FaultConfig

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned map[Link]bool
	closed      bool
	wg          sync.WaitGroup // deferred (delayed/duplicated) sends

	nextID uint64
	timers map[uint64]vtime.Timer // armed clock-deferred sends, by id

	counts map[string]int64
}

var _ Transport = (*Faulty)(nil)

// Fault kinds, used as metric label values and event details.
const (
	FaultDrop      = "drop"
	FaultDuplicate = "duplicate"
	FaultReorder   = "reorder"
	FaultSendError = "send-error"
	FaultPartition = "partition"
)

// WithFaults wraps a transport with the fault injector.
func WithFaults(inner Transport, cfg FaultConfig) *Faulty {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	t := &Faulty{
		inner:       inner,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(seed)),
		partitioned: make(map[Link]bool),
		counts:      make(map[string]int64),
	}
	if cfg.Clock != nil {
		t.timers = make(map[uint64]vtime.Timer)
	}
	return t
}

// Name identifies the transport in metric labels.
func (t *Faulty) Name() string {
	if n, ok := t.inner.(interface{ Name() string }); ok {
		return "faulty+" + n.Name()
	}
	return "faulty"
}

// Partition cuts both directions between two processes: every frame
// between them is dropped until Heal. Safe to call while traffic flows.
func (t *Faulty) Partition(a, b int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitioned[Link{a, b}] = true
	t.partitioned[Link{b, a}] = true
}

// Heal removes the partition between two processes.
func (t *Faulty) Heal(a, b int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.partitioned, Link{a, b})
	delete(t.partitioned, Link{b, a})
}

// HealAll removes every partition.
func (t *Faulty) HealAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitioned = make(map[Link]bool)
}

// Injected returns a copy of the per-kind injected-fault counts — the
// same numbers rdt_faults_injected_total reports, available without a
// registry.
func (t *Faulty) Injected() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

// inject accounts for one injected fault. Callers hold t.mu.
func (t *Faulty) inject(kind string, f Frame) {
	t.counts[kind]++
	t.cfg.Obs.Counter("rdt_faults_injected_total", "kind", kind).Inc()
	t.cfg.Tracer.Record(obs.Event{
		Type: obs.EventFault, Proc: f.From, Peer: f.To, Detail: kind,
	})
}

// probsFor returns the fault mix of one directed link.
func (t *Faulty) probsFor(from, to int) FaultProbs {
	if p, ok := t.cfg.Links[Link{from, to}]; ok {
		return p
	}
	return t.cfg.Default
}

// Register implements Transport: delivery is not perturbed (faults are
// injected at the sender, where the wire is).
func (t *Faulty) Register(proc int, h Handler) error {
	return t.inner.Register(proc, h)
}

// Send implements Transport. Drops and partitions report success — the
// frame is lost silently, exactly like a lossy wire. Injected send errors
// report failure without transmitting, so a retry cannot double-deliver.
func (t *Faulty) Send(f Frame) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	if t.partitioned[Link{f.From, f.To}] {
		t.inject(FaultPartition, f)
		t.mu.Unlock()
		return nil
	}
	p := t.probsFor(f.From, f.To)
	if p.SendError > 0 && t.rng.Float64() < p.SendError {
		t.inject(FaultSendError, f)
		t.mu.Unlock()
		return fmt.Errorf("%d->%d: %w", f.From, f.To, ErrInjected)
	}
	if p.Drop > 0 && t.rng.Float64() < p.Drop {
		t.inject(FaultDrop, f)
		t.mu.Unlock()
		return nil
	}
	maxDelay := p.MaxExtraDelay
	if maxDelay <= 0 {
		maxDelay = DefaultMaxExtraDelay
	}
	var dup, reorder bool
	var delay, dupDelay time.Duration
	if p.Duplicate > 0 && t.rng.Float64() < p.Duplicate {
		dup = true
		dupDelay = time.Duration(t.rng.Int63n(int64(maxDelay))) + 1
		t.inject(FaultDuplicate, f)
	}
	if p.Reorder > 0 && t.rng.Float64() < p.Reorder {
		reorder = true
		delay = time.Duration(t.rng.Int63n(int64(maxDelay))) + 1
		t.inject(FaultReorder, f)
	}
	if dup {
		t.deferSend(f, dupDelay)
	}
	if reorder {
		t.deferSend(f, delay)
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	return t.inner.Send(f)
}

// deferSend transmits the frame after a delay, off the caller's
// goroutine. Callers hold t.mu. Errors are dropped: a deferred frame is
// already reported as sent, so a late failure is just loss.
func (t *Faulty) deferSend(f Frame, delay time.Duration) {
	t.wg.Add(1)
	if t.cfg.Clock != nil {
		id := t.nextID
		t.nextID++
		t.timers[id] = t.cfg.Clock.AfterFunc(delay, func() {
			t.mu.Lock()
			if _, armed := t.timers[id]; !armed {
				// Close stopped this send and consumed the slot.
				t.mu.Unlock()
				return
			}
			delete(t.timers, id)
			t.mu.Unlock()
			defer t.wg.Done()
			_ = t.inner.Send(f)
		})
		return
	}
	go func() {
		defer t.wg.Done()
		time.Sleep(delay)
		// The inner transport stays open until Close has waited for
		// every deferred send, so a delayed frame still drains.
		_ = t.inner.Send(f)
	}()
}

// Close implements Transport: it waits for deferred sends, then closes
// the inner transport. Clock-deferred sends still armed are dropped.
func (t *Faulty) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for id, tm := range t.timers {
		if tm.Stop() {
			delete(t.timers, id)
			t.wg.Done()
		}
	}
	t.mu.Unlock()
	t.wg.Wait()
	return t.inner.Close()
}
