package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/vtime"
)

func TestReliableOverPerfectLink(t *testing.T) {
	testTransport(t, func(n int) Transport {
		return Reliable(NewLocal(0), ReliableConfig{Seed: 5})
	})
}

// TestReliableExactlyOnceUnderChaos is the core property: with drops,
// duplicates, reorders, and transient send errors all enabled, every
// frame is delivered exactly once. The whole exchange runs on a virtual
// clock — no wall-clock polling, no flake, and the schedule is identical
// on every run.
func TestReliableExactlyOnceUnderChaos(t *testing.T) {
	v := vtime.NewVirtual(time.Time{})
	reg := obs.NewRegistry()
	faulty := WithFaults(NewLocalWith(LocalConfig{MaxDelay: time.Millisecond, Clock: v}), FaultConfig{
		Seed: 11,
		Default: FaultProbs{
			Drop: 0.25, Duplicate: 0.25, Reorder: 0.25, SendError: 0.1,
			MaxExtraDelay: 2 * time.Millisecond,
		},
		Obs:   reg,
		Clock: v,
	})
	tr := Reliable(faulty, ReliableConfig{
		Seed: 11, Backoff: time.Millisecond, MaxRetries: 30, Obs: reg, Clock: v,
	})

	var mu sync.Mutex
	got := make(map[byte]int)
	if err := tr.Register(1, func(f Frame) {
		mu.Lock()
		got[f.Data[0]]++
		mu.Unlock()
	}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := tr.Register(0, func(Frame) {}); err != nil { // ack path home
		t.Fatalf("register: %v", err)
	}

	const frames = 150
	for i := 0; i < frames; i++ {
		if err := tr.Send(Frame{From: 0, To: 1, Data: []byte{byte(i)}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Drain the whole retry/ack machine: the heap empties only once every
	// frame is acked or abandoned.
	v.AdvanceUntilIdle(0, nil)
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != frames {
		t.Fatalf("only %d/%d distinct frames arrived", len(got), frames)
	}
	for b, n := range got {
		if n != 1 {
			t.Errorf("frame %d delivered %d times", b, n)
		}
	}
	if reg.Counter("rdt_send_retries_total").Value() == 0 {
		t.Error("no retries recorded under a 25% drop link")
	}
}

func TestReliableGivesUpAcrossDeadLink(t *testing.T) {
	v := vtime.NewVirtual(time.Time{})
	faulty := WithFaults(NewLocalWith(LocalConfig{Clock: v}), FaultConfig{
		Seed:    1,
		Default: FaultProbs{Drop: 1},
		Clock:   v,
	})
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var gaveUp []Frame
	var gotErr error
	tr := Reliable(faulty, ReliableConfig{
		Seed:       1,
		MaxRetries: 3,
		Backoff:    500 * time.Microsecond,
		Obs:        reg,
		Clock:      v,
		OnGiveUp: func(f Frame, err error) {
			mu.Lock()
			gaveUp = append(gaveUp, f)
			gotErr = err
			mu.Unlock()
		},
	})
	if err := tr.Register(0, func(Frame) {}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := tr.Register(1, func(Frame) {}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := tr.Send(Frame{From: 0, To: 1, Data: []byte("doomed")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	v.AdvanceUntilIdle(0, nil) // the retry budget burns down virtually
	mu.Lock()
	defer mu.Unlock()
	if len(gaveUp) != 1 {
		t.Fatalf("OnGiveUp fired %d times on a 100%% drop link, want 1", len(gaveUp))
	}
	if !errors.Is(gotErr, ErrGiveUp) {
		t.Errorf("give-up error = %v, want ErrGiveUp", gotErr)
	}
	if string(gaveUp[0].Data) != "doomed" {
		t.Errorf("give-up frame carries %q, want original payload", gaveUp[0].Data)
	}
	if reg.Counter("rdt_reliable_giveups_total").Value() != 1 {
		t.Error("giveups counter not bumped")
	}
	_ = tr.Close()
}

// TestReliableRidesOutPartition: frames sent into a partition are
// delivered after it heals, by the retry path.
func TestReliableRidesOutPartition(t *testing.T) {
	v := vtime.NewVirtual(time.Time{})
	faulty := WithFaults(NewLocalWith(LocalConfig{Clock: v}), FaultConfig{Seed: 1, Clock: v})
	tr := Reliable(faulty, ReliableConfig{
		Seed: 1, Backoff: time.Millisecond, MaxRetries: 50, Clock: v,
	})
	var sink collector
	if err := tr.Register(1, sink.handler); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := tr.Register(0, func(Frame) {}); err != nil {
		t.Fatalf("register: %v", err)
	}
	faulty.Partition(0, 1)
	for i := 0; i < 5; i++ {
		if err := tr.Send(Frame{From: 0, To: 1, Data: []byte{byte(i)}}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	v.Advance(3 * time.Millisecond) // a few retries burn into the partition
	if sink.count() != 0 {
		t.Fatal("frame crossed the partition")
	}
	faulty.Heal(0, 1)
	v.AdvanceUntilIdle(0, nil) // remaining retry budget delivers everything
	if got := sink.count(); got != 5 {
		t.Fatalf("%d frames delivered after heal, want 5", got)
	}
	_ = tr.Close()
}

func TestReliablePassesUnframedTraffic(t *testing.T) {
	local := NewLocal(0)
	tr := Reliable(local, ReliableConfig{Seed: 1})
	var sink collector
	if err := tr.Register(1, sink.handler); err != nil {
		t.Fatalf("register: %v", err)
	}
	// A frame injected under the decorator (no reliable header) must
	// still reach the handler untouched.
	if err := local.Send(Frame{From: 0, To: 1, Data: []byte("raw")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	sink.waitFor(t, 1)
	if string(sink.frames[0].Data) != "raw" {
		t.Errorf("payload = %q, want raw", sink.frames[0].Data)
	}
	_ = tr.Close()
}

func TestReliableSendAfterClose(t *testing.T) {
	tr := Reliable(NewLocal(0), ReliableConfig{})
	if err := tr.Register(0, func(Frame) {}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := tr.Send(Frame{From: 1, To: 0}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close = %v, want ErrClosed", err)
	}
}

func TestDedupWindow(t *testing.T) {
	w := &dedupWindow{delivered: make(map[uint64]struct{})}
	if !w.admit(1) || w.admit(1) {
		t.Error("seq 1 dedup broken")
	}
	if !w.admit(3) || !w.admit(2) {
		t.Error("out-of-order admit broken")
	}
	if w.admit(2) || w.admit(3) {
		t.Error("re-admitted after compaction")
	}
	if w.low != 3 {
		t.Errorf("low water = %d, want 3", w.low)
	}
	if len(w.delivered) != 0 {
		t.Errorf("window retains %d entries after compaction", len(w.delivered))
	}
	if w.admit(1) {
		t.Error("seq below low water admitted")
	}
}

func TestReliableName(t *testing.T) {
	tr := Reliable(WithFaults(NewLocal(0), FaultConfig{}), ReliableConfig{})
	if got := tr.Name(); got != "reliable+faulty+local" {
		t.Errorf("name = %q", got)
	}
	_ = tr.Close()
}
