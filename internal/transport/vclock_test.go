package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/vtime"
)

// TestLocalDeterministicSchedule: two identically configured transports
// on virtual clocks deliver the same frames in the same order — the
// seeded-jitter satellite plus clock-driven delivery, end to end.
func TestLocalDeterministicSchedule(t *testing.T) {
	run := func() []string {
		v := vtime.NewVirtual(time.Time{})
		l := NewLocalWith(LocalConfig{MaxDelay: 5 * time.Millisecond, Seed: 3, Clock: v})
		var mu sync.Mutex
		var order []string
		for p := 0; p < 3; p++ {
			p := p
			if err := l.Register(p, func(f Frame) {
				mu.Lock()
				order = append(order, fmt.Sprintf("%d<-%d:%s@%s", f.To, f.From, f.Data, v.Now().Format("15:04:05.000")))
				mu.Unlock()
			}); err != nil {
				t.Fatalf("register: %v", err)
			}
		}
		for i := 0; i < 40; i++ {
			f := Frame{From: i % 3, To: (i + 1) % 3, Data: []byte{byte(i)}}
			if err := l.Send(f); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		v.AdvanceUntilIdle(0, nil)
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("delivered %d/%d frames, want 40/40", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestLocalDefaultSeedDeterministic: even the plain NewLocal constructor
// now has a fixed delay schedule (the local.go:37 wall-clock seed fix).
func TestLocalDefaultSeedDeterministic(t *testing.T) {
	delays := func() []time.Duration {
		l := NewLocal(10 * time.Millisecond)
		defer l.Close()
		var out []time.Duration
		for i := 0; i < 20; i++ {
			out = append(out, time.Duration(l.rng.Int63n(int64(l.maxDelay))))
		}
		return out
	}
	a, b := delays(), delays()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("default-seed jitter diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestLocalCloseDropsParkedFrames: closing a clock-driven transport with
// undelivered frames must not hang waiting for an Advance that will
// never come.
func TestLocalCloseDropsParkedFrames(t *testing.T) {
	v := vtime.NewVirtual(time.Time{})
	l := NewLocalWith(LocalConfig{MaxDelay: time.Second, Clock: v})
	delivered := 0
	if err := l.Register(1, func(Frame) { delivered++ }); err != nil {
		t.Fatalf("register: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Send(Frame{From: 0, To: 1}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	done := make(chan struct{})
	go func() {
		_ = l.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on parked virtual deliveries")
	}
	if delivered != 0 {
		t.Errorf("%d frames delivered after drop-on-close, want 0", delivered)
	}
}

// TestFaultyCloseDropsDeferredSends: same drop-on-close guarantee for the
// injector's clock-deferred duplicate/reorder sends.
func TestFaultyCloseDropsDeferredSends(t *testing.T) {
	v := vtime.NewVirtual(time.Time{})
	inner := NewLocalWith(LocalConfig{Clock: v})
	f := WithFaults(inner, FaultConfig{Seed: 9, Default: FaultProbs{Reorder: 1}, Clock: v})
	if err := f.Register(1, func(Frame) {}); err != nil {
		t.Fatalf("register: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := f.Send(Frame{From: 0, To: 1}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	done := make(chan struct{})
	go func() {
		_ = f.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on deferred virtual sends")
	}
}
