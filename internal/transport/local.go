package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/vtime"
)

// DefaultLocalDelay is the delivery-delay bound of the in-process
// transport a cluster creates when none is configured. It is the single
// source of truth for that default: cluster.Config's documentation
// refers to it.
const DefaultLocalDelay = 2 * time.Millisecond

// LocalConfig configures an in-process transport.
type LocalConfig struct {
	// MaxDelay > 0 adds a uniform random delivery delay in [0, MaxDelay)
	// to every frame.
	MaxDelay time.Duration
	// Seed seeds the delay jitter; 0 means 1. Seeding is deterministic by
	// default so two runs with the same configuration see the same delay
	// schedule.
	Seed int64
	// Clock, when non-nil, schedules deliveries as clock timers instead
	// of goroutine sleeps. Under vtime.Virtual every delivery then fires
	// synchronously inside Advance, in deadline order — the property
	// scenario execution relies on. Frames still undelivered when the
	// transport closes are dropped.
	Clock vtime.Clock
}

// Local is an in-process transport: frames are delivered by short-lived
// goroutines, optionally after a random delay, so concurrent runs exhibit
// genuine asynchrony while staying inside one process. With a Clock
// configured, deliveries ride clock timers instead.
type Local struct {
	mu       sync.Mutex
	handlers map[int]Handler
	closed   bool
	wg       sync.WaitGroup

	maxDelay time.Duration
	rng      *rand.Rand

	clock  vtime.Clock // nil ⇒ goroutine + time.Sleep path
	nextID uint64
	timers map[uint64]vtime.Timer // armed clock deliveries, by id
}

var _ Transport = (*Local)(nil)

// NewLocal creates an in-process transport. maxDelay > 0 adds a uniform
// random delivery delay in [0, maxDelay) to every frame.
func NewLocal(maxDelay time.Duration) *Local {
	return NewLocalWith(LocalConfig{MaxDelay: maxDelay})
}

// NewLocalWith creates an in-process transport from an explicit config.
func NewLocalWith(cfg LocalConfig) *Local {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	l := &Local{
		handlers: make(map[int]Handler),
		maxDelay: cfg.MaxDelay,
		rng:      rand.New(rand.NewSource(seed)),
		clock:    cfg.Clock,
	}
	if l.clock != nil {
		l.timers = make(map[uint64]vtime.Timer)
	}
	return l
}

// Name identifies the transport in metric labels.
func (l *Local) Name() string { return "local" }

// Register implements Transport.
func (l *Local) Register(proc int, h Handler) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, dup := l.handlers[proc]; dup {
		return fmt.Errorf("process %d already registered", proc)
	}
	l.handlers[proc] = h
	return nil
}

// Send implements Transport.
func (l *Local) Send(f Frame) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	h, ok := l.handlers[f.To]
	if !ok {
		l.mu.Unlock()
		return fmt.Errorf("no handler registered for process %d", f.To)
	}
	var delay time.Duration
	if l.maxDelay > 0 {
		delay = time.Duration(l.rng.Int63n(int64(l.maxDelay)))
	}
	l.wg.Add(1)

	if l.clock != nil {
		// Even a zero delay goes through the clock, so no frame is
		// delivered outside an Advance window.
		id := l.nextID
		l.nextID++
		l.timers[id] = l.clock.AfterFunc(delay, func() {
			l.mu.Lock()
			if _, armed := l.timers[id]; !armed {
				// Close stopped this delivery and already consumed
				// the waitgroup slot.
				l.mu.Unlock()
				return
			}
			delete(l.timers, id)
			l.mu.Unlock()
			defer l.wg.Done()
			h(f)
		})
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	go func() {
		defer l.wg.Done()
		if delay > 0 {
			time.Sleep(delay)
		}
		h(f)
	}()
	return nil
}

// Close implements Transport.
func (l *Local) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for id, tm := range l.timers {
		if tm.Stop() {
			// The delivery will never fire; drop the frame.
			delete(l.timers, id)
			l.wg.Done()
		}
	}
	l.mu.Unlock()
	l.wg.Wait()
	return nil
}
