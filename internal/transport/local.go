package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// DefaultLocalDelay is the delivery-delay bound of the in-process
// transport a cluster creates when none is configured. It is the single
// source of truth for that default: cluster.Config's documentation
// refers to it.
const DefaultLocalDelay = 2 * time.Millisecond

// Local is an in-process transport: frames are delivered by short-lived
// goroutines, optionally after a random delay, so concurrent runs exhibit
// genuine asynchrony while staying inside one process.
type Local struct {
	mu       sync.Mutex
	handlers map[int]Handler
	closed   bool
	wg       sync.WaitGroup

	maxDelay time.Duration
	rng      *rand.Rand
}

var _ Transport = (*Local)(nil)

// NewLocal creates an in-process transport. maxDelay > 0 adds a uniform
// random delivery delay in [0, maxDelay) to every frame.
func NewLocal(maxDelay time.Duration) *Local {
	return &Local{
		handlers: make(map[int]Handler),
		maxDelay: maxDelay,
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Name identifies the transport in metric labels.
func (l *Local) Name() string { return "local" }

// Register implements Transport.
func (l *Local) Register(proc int, h Handler) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, dup := l.handlers[proc]; dup {
		return fmt.Errorf("process %d already registered", proc)
	}
	l.handlers[proc] = h
	return nil
}

// Send implements Transport.
func (l *Local) Send(f Frame) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	h, ok := l.handlers[f.To]
	if !ok {
		l.mu.Unlock()
		return fmt.Errorf("no handler registered for process %d", f.To)
	}
	var delay time.Duration
	if l.maxDelay > 0 {
		delay = time.Duration(l.rng.Int63n(int64(l.maxDelay)))
	}
	l.wg.Add(1)
	l.mu.Unlock()

	go func() {
		defer l.wg.Done()
		if delay > 0 {
			time.Sleep(delay)
		}
		h(f)
	}()
	return nil
}

// Close implements Transport.
func (l *Local) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.wg.Wait()
	return nil
}
