package obs

import (
	"encoding/json"
	"fmt"
	"sync"
)

// EventType classifies a structured trace event.
type EventType uint8

// The event types recorded by the runtime and the protocol family.
const (
	// EventSend is an application message send (Proc → Peer).
	EventSend EventType = iota + 1
	// EventDeliver is an application message delivery (Peer → Proc).
	EventDeliver
	// EventBasicCheckpoint is an application-initiated checkpoint.
	EventBasicCheckpoint
	// EventForcedCheckpoint is a protocol-forced checkpoint; Predicate
	// names the visible condition that fired.
	EventForcedCheckpoint
	// EventRollback is one process rolling back during recovery; Value
	// is the number of checkpoint intervals lost.
	EventRollback
	// EventSendError is a transport-level send failure; Detail carries
	// the error text.
	EventSendError
	// EventFault is an injected transport fault; Detail names the kind
	// (drop, duplicate, reorder, delay, send-error, partition).
	EventFault
	// EventRetry is a reliable-transport retransmission (Proc → Peer);
	// Value is the attempt number.
	EventRetry
	// EventGiveUp is a frame the reliable transport abandoned after
	// exhausting its retries.
	EventGiveUp
	// EventCrash is a process fail-stop (Node.Crash).
	EventCrash
	// EventRestart is a crashed process resuming (Cluster.Restart).
	EventRestart
	// EventRecovery is one end-to-end crash recovery (Cluster.Recover);
	// Value is the number of replayed in-transit messages.
	EventRecovery
	// EventStoreError is a checkpoint-store write failure; Detail
	// carries the error text.
	EventStoreError
	// EventSuspicion is a supervisor suspecting a process of having
	// failed; Detail names the reason (crash, timeout, unreachable) and
	// Value carries the observed heartbeat gap in microseconds.
	EventSuspicion
	// EventEscalation is a supervisor giving up on autonomous recovery
	// after exhausting its attempts; Detail carries the last error.
	EventEscalation
	// EventQuarantine is a corrupt stored checkpoint moved aside during
	// recovery-line computation; Value is the quarantined index.
	EventQuarantine
	// EventViolation is an untrackable rollback dependency detected by
	// the on-line checker: Proc/Value name the checkpoint rolled back
	// past (the R-path source) and Detail renders the full pair.
	EventViolation
)

// String returns the event type's wire name.
func (t EventType) String() string {
	switch t {
	case EventSend:
		return "send"
	case EventDeliver:
		return "deliver"
	case EventBasicCheckpoint:
		return "basic-checkpoint"
	case EventForcedCheckpoint:
		return "forced-checkpoint"
	case EventRollback:
		return "rollback"
	case EventSendError:
		return "send-error"
	case EventFault:
		return "fault"
	case EventRetry:
		return "retry"
	case EventGiveUp:
		return "give-up"
	case EventCrash:
		return "crash"
	case EventRestart:
		return "restart"
	case EventRecovery:
		return "recovery"
	case EventStoreError:
		return "store-error"
	case EventSuspicion:
		return "suspicion"
	case EventEscalation:
		return "escalation"
	case EventQuarantine:
		return "quarantine"
	case EventViolation:
		return "violation"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// MarshalJSON encodes the type as its string name.
func (t EventType) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// UnmarshalJSON decodes a string name back into the type.
func (t *EventType) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for ev := EventSend; ev <= EventViolation; ev++ {
		if ev.String() == name {
			*t = ev
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event type %q", name)
}

// Event is one structured trace record. Seq is a logical timestamp
// assigned by the tracer: it increases by one per recorded event and
// never repeats, so gaps in a tail reveal overwritten history.
type Event struct {
	Seq       uint64    `json:"seq"`
	Type      EventType `json:"type"`
	Proc      int       `json:"proc"`
	Peer      int       `json:"peer,omitempty"`
	Predicate string    `json:"predicate,omitempty"`
	Detail    string    `json:"detail,omitempty"`
	Value     int       `json:"value,omitempty"`
}

// Tracer is a bounded ring buffer of events. When full, new events
// overwrite the oldest; the loss is counted, not silent — Dropped
// reports how many events were overwritten, and ObserveDrops mirrors
// the count into a registry counter. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops).
type Tracer struct {
	mu      sync.Mutex
	seq     uint64
	buf     []Event
	next    int  // slot the next event goes into
	full    bool // the ring has wrapped at least once
	dropped uint64
	drops   *Counter
}

// DefaultTracerCapacity is the ring size used by the cmd tools.
const DefaultTracerCapacity = 8192

// NewTracer returns a tracer retaining the last capacity events
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Record appends an event, assigning its logical timestamp. The
// caller's Seq field is ignored. Safe on a nil receiver.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	ev.Seq = t.seq
	if t.full {
		// The slot still holds the oldest retained event; writing into
		// it discards history.
		t.dropped++
		t.drops.Inc()
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Dropped returns how many events were overwritten before they could be
// read — the ring's total loss. Safe on a nil receiver.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// ObserveDrops mirrors every future overwrite into the registry's
// rdt_obs_events_dropped_total counter. Safe on nil receivers (either
// side).
func (t *Tracer) ObserveDrops(reg *Registry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.drops = reg.Counter("rdt_obs_events_dropped_total")
	t.mu.Unlock()
}

// Seq returns the logical timestamp of the most recent event (0 when
// none was recorded). Safe on a nil receiver.
func (t *Tracer) Seq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Len returns the number of retained events. Safe on a nil receiver.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Tail returns up to n of the most recent events, oldest first. n <= 0
// returns every retained event. Safe on a nil receiver (nil slice).
func (t *Tracer) Tail(n int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.full {
		size = len(t.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	// Oldest retained event sits at next when full, at 0 otherwise;
	// start n events before the write cursor.
	start := t.next - n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}
