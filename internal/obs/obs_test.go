package obs

import (
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// with -race to verify the lock-free implementation.
func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "label", "x")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

// TestHistogramConcurrent checks bucket assignment and totals under
// concurrent observation.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{1, 10, 100})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range []float64{0.5, 1, 5, 50, 500} {
				h.Observe(v)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*5 {
		t.Errorf("count = %d, want %d", got, workers*5)
	}
	wantSum := float64(workers) * (0.5 + 1 + 5 + 50 + 500)
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum = %g, want %g", got, wantSum)
	}
	m, ok := reg.Snapshot().Get("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// 0.5 and 1 land in le=1 (le semantics), 5 in le=10, 50 in le=100,
	// 500 overflows.
	want := []int64{2 * workers, workers, workers, workers}
	for i, c := range m.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

// TestNilFastPath verifies the observability-off path: a nil registry
// returns nil instruments and every method is a no-op.
func TestNilFastPath(t *testing.T) {
	var reg *Registry
	c := reg.Counter("a")
	g := reg.Gauge("b")
	h := reg.Histogram("c", LatencyBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported nonzero values")
	}
	if s := reg.Snapshot(); len(s.Metrics) != 0 {
		t.Errorf("nil registry snapshot has %d metrics", len(s.Metrics))
	}
	var tr *Tracer
	tr.Record(Event{Type: EventSend})
	if tr.Tail(10) != nil || tr.Len() != 0 || tr.Seq() != 0 {
		t.Error("nil tracer retained events")
	}
}

// TestRegistryIdentity checks that the same name and labels (in any
// order) return the same instrument, and different labels a different
// one.
func TestRegistryIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "proto", "bhmr", "kind", "forced")
	b := reg.Counter("x_total", "kind", "forced", "proto", "bhmr")
	if a != b {
		t.Error("label order changed instrument identity")
	}
	c := reg.Counter("x_total", "kind", "basic", "proto", "bhmr")
	if a == c {
		t.Error("different labels shared an instrument")
	}
	a.Inc()
	snap := reg.Snapshot()
	if got := snap.CounterValue("x_total", "kind", "forced", "proto", "bhmr"); got != 1 {
		t.Errorf("snapshot lookup = %d, want 1", got)
	}
	if got := snap.SumCounters("x_total"); got != 1 {
		t.Errorf("SumCounters = %d, want 1", got)
	}
}

// TestRegistryConcurrentLookup races instrument creation.
func TestRegistryConcurrentLookup(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Counter("shared_total").Inc()
				reg.Histogram("shared_hist", DepthBuckets).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Snapshot().CounterValue("shared_total"); got != 8*200 {
		t.Errorf("shared counter = %d, want %d", got, 8*200)
	}
}

// TestRegistryConcurrentFirstLookup releases many goroutines from a
// barrier so the very first lookup of each series races: every caller
// must receive the same instrument (a divergent Counter pointer would
// silently drop increments), and concurrent Snapshots must never see a
// half-initialized histogram entry. Run with -race.
func TestRegistryConcurrentFirstLookup(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	start := make(chan struct{})
	counters := make([]*Counter, workers)
	hists := make([]*Histogram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			c := reg.Counter("first_total", "w", "same")
			c.Inc()
			counters[w] = c
			h := reg.Histogram("first_hist", DepthBuckets, "w", "same")
			h.Observe(1)
			hists[w] = h
			// Snapshot concurrently with creation: must not panic on a
			// nil histogram and must see whole instruments only.
			for _, m := range reg.Snapshot().Metrics {
				if m.Type == TypeHistogram && m.Bounds == nil {
					t.Errorf("snapshot saw histogram %s without bounds", m.Name)
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	for w := 1; w < workers; w++ {
		if counters[w] != counters[0] {
			t.Fatalf("worker %d got a distinct Counter instance", w)
		}
		if hists[w] != hists[0] {
			t.Fatalf("worker %d got a distinct Histogram instance", w)
		}
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("first_total", "w", "same"); got != workers {
		t.Errorf("counter = %d, want %d (increments lost to a racing instance)", got, workers)
	}
	if m, ok := snap.Get("first_hist", "w", "same"); !ok || m.Count != workers {
		t.Errorf("histogram count = %d, want %d", m.Count, workers)
	}
}

func TestSnapshotSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zzz")
	reg.Counter("aaa", "p", "1")
	reg.Counter("aaa", "p", "0")
	s := reg.Snapshot()
	var names []string
	for _, m := range s.Metrics {
		names = append(names, m.Name+promLabels(m.Labels))
	}
	want := []string{`aaa{p="0"}`, `aaa{p="1"}`, "zzz"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("snapshot[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}
