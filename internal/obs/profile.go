package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/vtime"
)

// runtimeSamples are the runtime/metrics series mirrored into gauges.
var runtimeSamples = []struct {
	name   string // runtime/metrics key
	metric string // registry gauge name
}{
	{"/sched/goroutines:goroutines", "rdt_go_goroutines"},
	{"/memory/classes/heap/objects:bytes", "rdt_go_heap_objects_bytes"},
	{"/gc/cycles/total:gc-cycles", "rdt_go_gc_cycles_total"},
	{"/gc/pauses:seconds", "rdt_go_gc_pause_us_total"},
}

// sampleRuntime reads the runtime/metrics samples once into the gauges.
func sampleRuntime(reg *Registry, samples []metrics.Sample) {
	metrics.Read(samples)
	for i := range samples {
		g := reg.Gauge(runtimeSamples[i].metric)
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			g.Set(int64(samples[i].Value.Uint64()))
		case metrics.KindFloat64Histogram:
			// GC pause distribution: export the cumulative pause time.
			h := samples[i].Value.Float64Histogram()
			var total float64
			for b, count := range h.Counts {
				// Bucket midpoint; the edges slice has len(Counts)+1 entries.
				lo, hi := h.Buckets[b], h.Buckets[b+1]
				if lo < 0 {
					lo = 0
				}
				mid := (lo + hi) / 2
				total += mid * float64(count)
			}
			g.Set(int64(total * 1e6))
		}
	}
}

// StartRuntimeGauges samples goroutine count, heap size, and GC
// activity from runtime/metrics into the registry every interval
// (default 1s) until the returned stop function is called. The gauges:
//
//	rdt_go_goroutines          live goroutines
//	rdt_go_heap_objects_bytes  bytes of live heap objects
//	rdt_go_gc_cycles_total     completed GC cycles
//	rdt_go_gc_pause_us_total   estimated cumulative GC pause (µs)
func StartRuntimeGauges(reg *Registry, interval time.Duration) (stop func()) {
	return StartRuntimeGaugesOn(nil, reg, interval)
}

// StartRuntimeGaugesOn is StartRuntimeGauges on an explicit clock (nil
// for the real one): a vtime.Virtual makes the sampling cadence part of
// a deterministic schedule. The ticker is armed before the sampling
// goroutine starts, so a virtual advance issued right after the call
// cannot miss it.
func StartRuntimeGaugesOn(clock vtime.Clock, reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i := range samples {
		samples[i].Name = runtimeSamples[i].name
	}
	sampleRuntime(reg, samples) // populate before the first tick
	done := make(chan struct{})
	tick := vtime.Or(clock).NewTicker(interval)
	go func() {
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C():
				sampleRuntime(reg, samples)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// mountPprof mounts the net/http/pprof handlers on the mux under
// /debug/pprof/, the standard layout `go tool pprof` expects.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
