package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentGrid hammers one Registry from many goroutines the
// way the parallel experiment grid does: every worker resolves instruments
// by name (racing on the lookup path), increments shared counters, moves
// gauges and observes histograms, interleaved with Snapshot readers. Run
// under -race this pins the registry's freedom from data races; the final
// counter values pin that no increment is lost.
func TestRegistryConcurrentGrid(t *testing.T) {
	const (
		workers = 16
		perWork = 500
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWork; i++ {
				// The shared progress counter every worker bumps.
				r.Counter("rdt_experiment_runs_total").Inc()
				// Labeled instruments, partly shared between workers.
				r.Counter("rdt_sim_forced_total", "protocol", fmt.Sprintf("p%d", w%4)).Inc()
				r.Gauge("rdt_grid_inflight").Set(int64(i))
				r.Histogram("rdt_sim_duration", LatencyBuckets).Observe(float64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("rdt_experiment_runs_total").Value(); got != workers*perWork {
		t.Errorf("rdt_experiment_runs_total = %d, want %d", got, workers*perWork)
	}
	var labeled int64
	for p := 0; p < 4; p++ {
		labeled += r.Counter("rdt_sim_forced_total", "protocol", fmt.Sprintf("p%d", p)).Value()
	}
	if labeled != workers*perWork {
		t.Errorf("labeled counters sum = %d, want %d", labeled, workers*perWork)
	}
}
