package obs

import (
	"runtime"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/vtime"
)

// TestRuntimeGaugesSampleOnStart: the gauges are populated synchronously
// before the first tick, so a scrape right after start sees them.
func TestRuntimeGaugesSampleOnStart(t *testing.T) {
	reg := NewRegistry()
	v := vtime.NewVirtual(time.Time{})
	stop := StartRuntimeGaugesOn(v, reg, time.Second)
	defer stop()
	if _, ok := reg.Snapshot().Get("rdt_go_goroutines"); !ok {
		t.Fatal("rdt_go_goroutines not populated at start")
	}
	if v.Pending() == 0 {
		t.Fatal("sampling ticker not armed before StartRuntimeGaugesOn returned")
	}
}

// TestRuntimeGaugesVirtualCadence: each virtual second drives one
// sample, so forced GC cycles become visible exactly when the test
// advances the clock — no wall-clock waiting in the cadence itself.
func TestRuntimeGaugesVirtualCadence(t *testing.T) {
	reg := NewRegistry()
	v := vtime.NewVirtual(time.Time{})
	stop := StartRuntimeGaugesOn(v, reg, time.Second)
	defer stop()
	before := reg.Snapshot().CounterValue("rdt_go_gc_cycles_total")
	runtime.GC()
	runtime.GC()
	v.Advance(time.Second)
	// The tick is delivered; the sampler goroutine consumes it on the
	// scheduler's time, so poll the snapshot (bounded by real time).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := reg.Snapshot().CounterValue("rdt_go_gc_cycles_total"); got >= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("gc cycle gauge never advanced past %d after virtual tick", before)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRuntimeGaugesStopIdempotent: stop twice, no panic, ticker gone.
func TestRuntimeGaugesStopIdempotent(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeGaugesOn(vtime.NewVirtual(time.Time{}), reg, time.Second)
	stop()
	stop()
}

// TestRuntimeGaugesNilRegistry: a nil registry is a no-op sampler.
func TestRuntimeGaugesNilRegistry(t *testing.T) {
	stop := StartRuntimeGauges(nil, time.Second)
	stop()
}
