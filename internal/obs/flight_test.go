package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerDropAccounting(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(4)
	tr.ObserveDrops(reg)
	for i := 0; i < 4; i++ {
		tr.Record(Event{Type: EventSend, Proc: i})
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d before overflow", tr.Dropped())
	}
	for i := 0; i < 10; i++ {
		tr.Record(Event{Type: EventDeliver, Proc: i})
	}
	if got := tr.Dropped(); got != 10 {
		t.Fatalf("dropped %d events, want 10", got)
	}
	if got := reg.Snapshot().CounterValue("rdt_obs_events_dropped_total"); got != 10 {
		t.Fatalf("rdt_obs_events_dropped_total = %d, want 10", got)
	}
	// The ring still holds the newest 4 events, gapless.
	tail := tr.Tail(0)
	if len(tail) != 4 || tail[0].Seq != 11 || tail[3].Seq != 14 {
		t.Fatalf("tail after overflow: %+v", tail)
	}
	// Nil tracer: everything is a no-op.
	var nilTr *Tracer
	nilTr.ObserveDrops(reg)
	nilTr.Record(Event{})
	if nilTr.Dropped() != 0 {
		t.Fatalf("nil tracer dropped %d", nilTr.Dropped())
	}
}

func TestFlightRecorderRing(t *testing.T) {
	reg := NewRegistry()
	f := NewFlightRecorder(3)
	f.ObserveDrops(reg)
	if f.NextID() != 1 || f.NextID() != 2 {
		t.Fatalf("NextID must count from 1")
	}
	for i := 0; i < 5; i++ {
		f.Record(Span{ID: uint64(i + 1), Kind: SpanSend, Proc: i, Start: int64(i * 10)})
	}
	if got := f.Dropped(); got != 2 {
		t.Fatalf("dropped %d spans, want 2", got)
	}
	if got := reg.Snapshot().CounterValue("rdt_obs_spans_dropped_total"); got != 2 {
		t.Fatalf("rdt_obs_spans_dropped_total = %d, want 2", got)
	}
	spans := f.Spans()
	if len(spans) != 3 || spans[0].ID != 3 || spans[2].ID != 5 {
		t.Fatalf("retained spans %+v", spans)
	}
	var nilF *FlightRecorder
	nilF.Record(Span{})
	if nilF.NextID() != 0 || nilF.Len() != 0 || nilF.Spans() != nil {
		t.Fatalf("nil flight recorder must no-op")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	spans := []Span{
		{TraceID: 7, ID: 1, Kind: SpanSend, Proc: 0, Peer: 1, Start: 10, Dur: 5, Detail: "m0"},
		{TraceID: 7, ID: 2, Parent: 1, Kind: SpanDeliver, Proc: 1, Peer: 0, Start: 20, Dur: 0},
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, spans); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Tid  int    `json:"tid"`
			Args struct {
				TraceID uint64 `json:"trace_id"`
				Parent  uint64 `json:"parent_id"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Name != "send" || doc.TraceEvents[0].Ph != "X" || doc.TraceEvents[0].Tid != 0 {
		t.Fatalf("first event: %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].Dur != 1 {
		t.Fatalf("zero-width span must render with dur 1, got %d", doc.TraceEvents[1].Dur)
	}
	if doc.TraceEvents[1].Args.Parent != 1 || doc.TraceEvents[1].Args.TraceID != 7 {
		t.Fatalf("span linkage lost: %+v", doc.TraceEvents[1].Args)
	}
	// Determinism: a second render is byte-identical.
	var b2 strings.Builder
	_ = WriteChromeTrace(&b2, spans)
	if b2.String() != out {
		t.Fatalf("chrome trace output is not deterministic")
	}
}
