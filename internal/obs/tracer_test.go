package obs

import (
	"sync"
	"testing"
)

// TestTracerWraparound fills a small ring past capacity and checks that
// the tail holds the most recent events, oldest first, with contiguous
// logical timestamps.
func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Type: EventSend, Proc: i})
	}
	if got := tr.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if got := tr.Seq(); got != 10 {
		t.Errorf("Seq = %d, want 10", got)
	}
	tail := tr.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("Tail(0) returned %d events, want 4", len(tail))
	}
	for i, ev := range tail {
		wantSeq := uint64(7 + i)
		if ev.Seq != wantSeq || ev.Proc != int(wantSeq)-1 {
			t.Errorf("tail[%d] = seq %d proc %d, want seq %d proc %d",
				i, ev.Seq, ev.Proc, wantSeq, wantSeq-1)
		}
	}
	// A bounded tail returns the newest n.
	short := tr.Tail(2)
	if len(short) != 2 || short[0].Seq != 9 || short[1].Seq != 10 {
		t.Errorf("Tail(2) = %+v, want seqs 9,10", short)
	}
	// Asking for more than retained returns everything.
	if got := tr.Tail(100); len(got) != 4 {
		t.Errorf("Tail(100) returned %d events, want 4", len(got))
	}
}

// TestTracerBeforeWrap covers the partially filled ring.
func TestTracerBeforeWrap(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Type: EventBasicCheckpoint, Proc: 1})
	tr.Record(Event{Type: EventForcedCheckpoint, Proc: 2, Predicate: "C1"})
	tail := tr.Tail(0)
	if len(tail) != 2 {
		t.Fatalf("Tail = %d events, want 2", len(tail))
	}
	if tail[0].Seq != 1 || tail[1].Seq != 2 || tail[1].Predicate != "C1" {
		t.Errorf("tail = %+v", tail)
	}
}

// TestTracerConcurrent records from many goroutines; with -race this
// verifies the ring's synchronization. Every retained event must have a
// unique seq.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Record(Event{Type: EventDeliver, Proc: w, Peer: i})
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Seq(); got != workers*per {
		t.Errorf("Seq = %d, want %d", got, workers*per)
	}
	seen := make(map[uint64]bool)
	for _, ev := range tr.Tail(0) {
		if seen[ev.Seq] {
			t.Errorf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	if len(seen) != 64 {
		t.Errorf("retained %d events, want 64", len(seen))
	}
}

func TestEventTypeStrings(t *testing.T) {
	want := map[EventType]string{
		EventSend:             "send",
		EventDeliver:          "deliver",
		EventBasicCheckpoint:  "basic-checkpoint",
		EventForcedCheckpoint: "forced-checkpoint",
		EventRollback:         "rollback",
		EventSendError:        "send-error",
		EventType(99):         "event(99)",
	}
	for typ, name := range want {
		if got := typ.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", typ, got, name)
		}
	}
}
