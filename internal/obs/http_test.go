package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestPrometheusGolden locks the exposition format down against the
// Prometheus text format (0.0.4): TYPE lines, label rendering,
// cumulative histogram buckets with le labels, _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rdt_checkpoints_total", "protocol", "bhmr", "kind", "forced").Add(3)
	reg.Counter("rdt_checkpoints_total", "protocol", "bhmr", "kind", "basic").Add(5)
	reg.Gauge("rdt_queue_depth", "proc", "0").Set(2)
	h := reg.Histogram("rdt_hop_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := `# TYPE rdt_checkpoints_total counter
rdt_checkpoints_total{kind="basic",protocol="bhmr"} 5
rdt_checkpoints_total{kind="forced",protocol="bhmr"} 3
# TYPE rdt_hop_seconds histogram
rdt_hop_seconds_bucket{le="0.001"} 1
rdt_hop_seconds_bucket{le="0.01"} 2
rdt_hop_seconds_bucket{le="+Inf"} 3
rdt_hop_seconds_sum 5.0025
rdt_hop_seconds_count 3
# TYPE rdt_queue_depth gauge
rdt_queue_depth{proc="0"} 2
`
	if b.String() != golden {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), golden)
	}
}

// TestPrometheusPrefixNames guards the family grouping: a labeled
// metric whose name is a strict prefix of another ("foo" vs "foo_bar")
// must still render as one contiguous run with a single # TYPE line.
// Sorting snapshots by series key would split it, because '{' sorts
// after '_'.
func TestPrometheusPrefixNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("foo", "a", "1").Inc()
	reg.Counter("foo_bar").Inc()
	reg.Counter("foo", "a", "2").Inc()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := `# TYPE foo counter
foo{a="1"} 1
foo{a="2"} 1
# TYPE foo_bar counter
foo_bar 1
`
	if b.String() != golden {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), golden)
	}
	if got := strings.Count(b.String(), "# TYPE foo counter"); got != 1 {
		t.Errorf("# TYPE foo emitted %d times, want 1", got)
	}
}

// TestServeEndpoints starts a real server on an ephemeral port and
// scrapes /metrics, /debug/events, and /debug/vars.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	tr := NewTracer(16)
	tr.Record(Event{Type: EventForcedCheckpoint, Proc: 3, Predicate: "C2"})
	tr.Record(Event{Type: EventRollback, Proc: 1, Value: 2})

	srv, err := Serve(":0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck // test cleanup

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close() //nolint:errcheck // test cleanup
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if metrics := get("/metrics"); !strings.Contains(metrics, "up_total 1") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}

	var events struct {
		Seq    uint64  `json:"seq"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(get("/debug/events")), &events); err != nil {
		t.Fatalf("/debug/events not JSON: %v", err)
	}
	if events.Seq != 2 || len(events.Events) != 2 {
		t.Fatalf("/debug/events = seq %d, %d events", events.Seq, len(events.Events))
	}
	if events.Events[0].Predicate != "C2" || events.Events[1].Type != EventRollback {
		t.Errorf("events content wrong: %+v", events.Events)
	}

	var events1 struct {
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(get("/debug/events?n=1")), &events1); err != nil {
		t.Fatal(err)
	}
	if len(events1.Events) != 1 || events1.Events[0].Seq != 2 {
		t.Errorf("?n=1 returned %+v", events1.Events)
	}

	if vars := get("/debug/vars"); !strings.Contains(vars, "memstats") {
		t.Error("/debug/vars missing expvar content")
	}

	// A bad ?n= is rejected.
	resp, err := http.Get("http://" + srv.Addr() + "/debug/events?n=zzz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck // test cleanup
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", resp.StatusCode)
	}
}

// TestEventJSONTypes checks the event type marshals as its name.
func TestEventJSONTypes(t *testing.T) {
	data, err := json.Marshal(Event{Seq: 1, Type: EventSend, Proc: 2, Peer: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"type":"send"`) {
		t.Errorf("event JSON = %s", data)
	}
}

// TestServerShutdown drains the server: the listener closes, requests
// already accepted complete, and a second Shutdown is harmless.
func TestServerShutdown(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	srv, err := Serve(":0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET before shutdown: %v", err)
	}
	resp.Body.Close() //nolint:errcheck // test cleanup

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
