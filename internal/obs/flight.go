package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// SpanKind classifies a flight-recorder span.
type SpanKind uint8

// The span kinds recorded by the runtime and the service.
const (
	// SpanSend covers one message send: protocol OnSend, piggyback
	// encode, transport submit.
	SpanSend SpanKind = iota + 1
	// SpanDeliver covers one message delivery: decode, the protocol's
	// forced-checkpoint decision, and the application handler.
	SpanDeliver
	// SpanForced is a forced checkpoint taken inside a delivery;
	// Detail names the visible predicate that fired.
	SpanForced
	// SpanCheckpoint covers one checkpoint write (basic or forced)
	// including the store round trip.
	SpanCheckpoint
	// SpanRecovery covers one end-to-end crash recovery.
	SpanRecovery
	// SpanRollback is one process rolling back during recovery.
	SpanRollback
	// SpanSeal is a service session being finalized.
	SpanSeal
)

// String returns the span kind's wire name.
func (k SpanKind) String() string {
	switch k {
	case SpanSend:
		return "send"
	case SpanDeliver:
		return "deliver"
	case SpanForced:
		return "forced-checkpoint"
	case SpanCheckpoint:
		return "checkpoint"
	case SpanRecovery:
		return "recovery"
	case SpanRollback:
		return "rollback"
	case SpanSeal:
		return "seal"
	default:
		return "span"
	}
}

// Span is one recorded operation. TraceID groups the spans of one
// causal trace (a message and everything its delivery forced); Parent
// is the span that caused this one (0 for roots), carried across
// processes on the message piggyback. Start and Dur are microseconds —
// wall-clock in the runtime, logical event counters in the service
// (which makes its timelines reproducible).
type Span struct {
	TraceID uint64   `json:"trace_id"`
	ID      uint64   `json:"span_id"`
	Parent  uint64   `json:"parent_id,omitempty"`
	Kind    SpanKind `json:"kind"`
	Proc    int      `json:"proc"`
	Peer    int      `json:"peer,omitempty"`
	Start   int64    `json:"start_us"`
	Dur     int64    `json:"dur_us"`
	Detail  string   `json:"detail,omitempty"`
}

// FlightRecorder is a bounded ring buffer of spans — the always-on
// crash-investigation record. When full, new spans overwrite the
// oldest and the loss is counted. All methods are safe for concurrent
// use and safe on a nil receiver (no-ops), so recording sites need no
// "is tracing on" branches beyond the nil check.
type FlightRecorder struct {
	ids atomic.Uint64

	mu      sync.Mutex
	buf     []Span
	next    int
	full    bool
	dropped uint64
	drops   *Counter
}

// DefaultFlightCapacity is the ring size used by the cmd tools.
const DefaultFlightCapacity = 16384

// NewFlightRecorder returns a recorder retaining the last capacity
// spans (minimum 1).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{buf: make([]Span, capacity)}
}

// NextID returns a fresh non-zero span/trace identifier. Safe on a nil
// receiver (returns 0, the "no span" id).
func (f *FlightRecorder) NextID() uint64 {
	if f == nil {
		return 0
	}
	return f.ids.Add(1)
}

// Record appends a span. Safe on a nil receiver.
func (f *FlightRecorder) Record(s Span) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.full {
		f.dropped++
		f.drops.Inc()
	}
	f.buf[f.next] = s
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
	f.mu.Unlock()
}

// Len returns the number of retained spans. Safe on a nil receiver.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.full {
		return len(f.buf)
	}
	return f.next
}

// Dropped returns how many spans were overwritten. Safe on a nil
// receiver.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// ObserveDrops mirrors every future overwrite into the registry's
// rdt_obs_spans_dropped_total counter. Safe on nil receivers.
func (f *FlightRecorder) ObserveDrops(reg *Registry) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.drops = reg.Counter("rdt_obs_spans_dropped_total")
	f.mu.Unlock()
}

// Spans returns the retained spans, oldest first. Safe on a nil
// receiver (nil slice).
func (f *FlightRecorder) Spans() []Span {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	size := f.next
	start := 0
	if f.full {
		size = len(f.buf)
		start = f.next
	}
	out := make([]Span, 0, size)
	for i := 0; i < size; i++ {
		out = append(out, f.buf[(start+i)%len(f.buf)])
	}
	return out
}

// chromeEvent is one complete ("ph":"X") trace event of the Chrome
// trace-event format; field order is fixed so the output is
// byte-identical across runs for the same spans.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	Ts   int64      `json:"ts"`
	Dur  int64      `json:"dur"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
	Parent  uint64 `json:"parent_id,omitempty"`
	Peer    int    `json:"peer,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// WriteChromeTrace renders spans in the Chrome trace-event JSON format
// (the "JSON Array Format" with a traceEvents wrapper), one track per
// process (tid), loadable in Perfetto and chrome://tracing. Timestamps
// are microseconds. Output is deterministic: spans render in the order
// given, one event per line.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i := range spans {
		s := &spans[i]
		dur := s.Dur
		if dur < 1 {
			dur = 1 // zero-width spans are invisible in the viewers
		}
		ev := chromeEvent{
			Name: s.Kind.String(),
			Cat:  "rdt",
			Ph:   "X",
			Ts:   s.Start,
			Dur:  dur,
			Pid:  0,
			Tid:  s.Proc,
			Args: chromeArgs{TraceID: s.TraceID, SpanID: s.ID, Parent: s.Parent, Peer: s.Peer, Detail: s.Detail},
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(spans)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(data, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// WriteChromeTrace renders the recorder's retained spans. Safe on a nil
// receiver (empty trace).
func (f *FlightRecorder) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, f.Spans())
}
