// Package obs is the observability layer of the library: lock-free
// counters, gauges, and fixed-bucket histograms behind a Registry, a
// bounded structured-event ring buffer (Tracer), and an HTTP server
// exposing both (Prometheus text exposition at /metrics, a JSON event
// tail at /debug/events) with no dependencies beyond the standard
// library.
//
// Everything is nil-safe: methods on a nil *Registry return nil
// instruments, and methods on nil instruments are no-ops, so
// instrumented hot paths pay a single predictable-branch nil check when
// observability is off. Instruments are identified by a name plus
// label pairs; asking for the same identity twice returns the same
// instrument, so concurrent layers share series naturally.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing lock-free counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a lock-free instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. Safe on a nil receiver (no-op).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// atomicFloat accumulates a float64 with compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a lock-free fixed-bucket histogram. Bucket i counts
// observations v with v <= bounds[i] (and v > bounds[i-1]); one
// implicit overflow bucket counts everything beyond the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	count  atomic.Int64
	sum    atomicFloat
}

// Observe records one value. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.value()
}

// Standard bucket layouts used across the runtime.
var (
	// LatencyBuckets covers sub-microsecond to ten-second latencies in
	// decades (values in seconds).
	LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
	// MicroLatencyBuckets resolves the µs-to-ms band the streaming
	// ingest path lives in (ack round trips, batch apply): decades alone
	// put every observation in two buckets, so each decade from 1µs to
	// 100ms is split at 1/2.5/5, with a 1s overflow bound.
	MicroLatencyBuckets = []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		1e-1, 1,
	}
	// DepthBuckets covers rollback distances and queue depths in powers
	// of two.
	DepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}
	// SizeBuckets covers message and piggyback sizes in bytes.
	SizeBuckets = []float64{16, 64, 256, 1024, 4096, 16384, 65536}
)

// MetricType classifies an instrument.
type MetricType string

// The instrument types.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// entry is one registered instrument with its identity.
type entry struct {
	name   string
	labels []string // alternating key, value
	typ    MetricType

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds the instruments of one runtime. The zero value is not
// usable; call NewRegistry. A nil *Registry is a valid "observability
// off" registry: its lookup methods return nil instruments.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// seriesKey canonicalizes name plus label pairs; label pairs are sorted
// by key so callers may pass them in any order.
func seriesKey(name string, labels []string) (string, []string) {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q has an odd label list %v", name, labels))
	}
	if len(labels) == 0 {
		return name, nil
	}
	pairs := make([][2]string, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, [2]string{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a][0] < pairs[b][0] })
	sorted := make([]string, 0, len(labels))
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p[0], p[1])
		sorted = append(sorted, p[0], p[1])
	}
	b.WriteByte('}')
	return b.String(), sorted
}

// lookup finds or creates the entry for an identity, checking the
// type. The typed instrument is instantiated while r.mu is held, so
// every caller — including concurrent first-time requests for the same
// series — receives the same fully-built instrument, and a concurrent
// Snapshot never sees a half-initialized entry.
func (r *Registry) lookup(name string, typ MetricType, labels []string, bounds []float64) *entry {
	key, sorted := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.typ != typ {
			panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", key, e.typ, typ))
		}
		return e
	}
	e := &entry{name: name, labels: sorted, typ: typ}
	switch typ {
	case TypeCounter:
		e.counter = &Counter{}
	case TypeGauge:
		e.gauge = &Gauge{}
	case TypeHistogram:
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %s bounds not sorted: %v", name, bounds))
		}
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		e.hist = h
	}
	r.entries[key] = e
	return e
}

// Counter returns the counter for the identity, creating it on first
// use. Labels are alternating key, value. Returns nil on a nil
// registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, TypeCounter, labels, nil).counter
}

// Gauge returns the gauge for the identity, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, TypeGauge, labels, nil).gauge
}

// Histogram returns the histogram for the identity, creating it with
// the given bucket bounds on first use (bounds must be sorted
// ascending; they are ignored on later lookups). Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, TypeHistogram, labels, bounds).hist
}

// Metric is one series of a Snapshot.
type Metric struct {
	// Name is the metric name; Labels are alternating key, value,
	// sorted by key.
	Name   string     `json:"name"`
	Labels []string   `json:"labels,omitempty"`
	Type   MetricType `json:"type"`

	// Value is the current count or gauge value (counter, gauge).
	Value int64 `json:"value,omitempty"`

	// Histogram payload (histogram only): per-bucket counts aligned
	// with Bounds plus one overflow bucket, the observation count, and
	// the observation sum.
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Count  int64     `json:"count,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
}

// Snapshot is a point-in-time copy of every registered series, sorted
// by name then labels.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot copies the current value of every series. Safe on a nil
// registry (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	// Sort by (name, labels), not by the rendered series key: '{' sorts
	// after '_', so key order would split a labeled metric whose name is
	// a strict prefix of another (foo{...} vs foo_bar) into non-adjacent
	// runs, and WritePrometheus would emit duplicate # TYPE lines.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.name != b.name {
			return a.name < b.name
		}
		for k := 0; k < len(a.labels) && k < len(b.labels); k++ {
			if a.labels[k] != b.labels[k] {
				return a.labels[k] < b.labels[k]
			}
		}
		return len(a.labels) < len(b.labels)
	})

	out := Snapshot{Metrics: make([]Metric, 0, len(entries))}
	for _, e := range entries {
		m := Metric{Name: e.name, Labels: e.labels, Type: e.typ}
		switch e.typ {
		case TypeCounter:
			m.Value = e.counter.Value()
		case TypeGauge:
			m.Value = e.gauge.Value()
		case TypeHistogram:
			h := e.hist
			m.Bounds = append([]float64(nil), h.bounds...)
			m.Counts = make([]int64, len(h.counts))
			for i := range h.counts {
				m.Counts[i] = h.counts[i].Load()
			}
			m.Count = h.count.Load()
			m.Sum = h.sum.value()
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

// labelsMatch reports whether the metric's sorted label pairs equal the
// canonicalized query pairs.
func labelsMatch(have []string, query []string) bool {
	_, sorted := seriesKey("", query)
	if len(have) != len(sorted) {
		return false
	}
	for i := range have {
		if have[i] != sorted[i] {
			return false
		}
	}
	return true
}

// Get returns the series with the given identity, if present.
func (s Snapshot) Get(name string, labels ...string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name && labelsMatch(m.Labels, labels) {
			return m, true
		}
	}
	return Metric{}, false
}

// CounterValue returns the value of a counter series (0 when absent).
func (s Snapshot) CounterValue(name string, labels ...string) int64 {
	m, ok := s.Get(name, labels...)
	if !ok {
		return 0
	}
	return m.Value
}

// SumCounters sums every series of the named counter across all label
// combinations.
func (s Snapshot) SumCounters(name string) int64 {
	var total int64
	for _, m := range s.Metrics {
		if m.Name == name && m.Type == TypeCounter {
			total += m.Value
		}
	}
	return total
}
