package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"

	"github.com/rdt-go/rdt/internal/vtime"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per metric name,
// histograms as cumulative _bucket/_sum/_count series. Safe on a nil
// registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, m := range s.Metrics {
		if m.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
				return err
			}
			lastName = m.Name
		}
		var err error
		switch m.Type {
		case TypeCounter, TypeGauge:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.Name, promLabels(m.Labels), m.Value)
		case TypeHistogram:
			err = writePromHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, m Metric) error {
	cum := int64(0)
	for i, c := range m.Counts {
		cum += c
		le := "+Inf"
		if i < len(m.Bounds) {
			le = formatFloat(m.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.Name, promLabels(append(append([]string(nil), m.Labels...), "le", le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, promLabels(m.Labels), formatFloat(m.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(m.Labels), m.Count)
	return err
}

// promLabels renders alternating key, value pairs as {k="v",...}, or
// the empty string when there are none.
func promLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus expects (shortest
// representation, no exponent for common values).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Server exposes a Registry and a Tracer over HTTP:
//
//	/metrics         — Prometheus text exposition of the registry
//	/debug/events    — JSON tail of the tracer ring (?n=100)
//	/debug/vars      — the standard expvar dump (cmdline, memstats)
//	/debug/timeline  — Chrome trace-event JSON (with WithFlight)
//	/debug/pprof/    — live profiling (with WithProfiling)
//
// Either the registry or the tracer may be nil; the corresponding
// endpoint then serves empty output.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	stop func()
}

// ServerOption configures optional endpoints of Serve.
type ServerOption func(*serverConfig)

type serverConfig struct {
	profiling bool
	clock     vtime.Clock
	flight    *FlightRecorder
}

// WithProfiling mounts the net/http/pprof handlers under /debug/pprof/
// and samples runtime/metrics gauges (goroutines, heap bytes, GC
// cycles and pause time) into the registry once a second for the
// server's lifetime.
func WithProfiling() ServerOption {
	return func(c *serverConfig) { c.profiling = true }
}

// WithClock drives the server's periodic work (the profiling sampler's
// ticker) from clock instead of the real one; tests pass a
// vtime.Virtual to step the cadence deterministically.
func WithClock(clock vtime.Clock) ServerOption {
	return func(c *serverConfig) { c.clock = clock }
}

// WithFlight serves the flight recorder's spans as Chrome trace-event
// JSON at /debug/timeline.
func WithFlight(f *FlightRecorder) ServerOption {
	return func(c *serverConfig) { c.flight = f }
}

// Serve starts an HTTP introspection server on addr (e.g. ":9090" or
// ":0" for an ephemeral port).
func Serve(addr string, reg *Registry, tr *Tracer, opts ...ServerOption) (*Server, error) {
	var cfg serverConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/events", EventsHandler(tr))
	mux.Handle("/debug/vars", expvar.Handler())
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, stop: func() {}}
	if cfg.flight != nil {
		mux.Handle("/debug/timeline", TimelineHandler(cfg.flight))
	}
	if cfg.profiling {
		mountPprof(mux)
		s.stop = StartRuntimeGaugesOn(cfg.clock, reg, 0)
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the server's listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error {
	s.stop()
	return s.srv.Close()
}

// Shutdown drains the server: the listener closes immediately, requests
// already in flight run to completion or the context deadline, whichever
// comes first. It falls back to an abrupt Close when the context expires
// so the listener never outlives the caller.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stop()
	if err := s.srv.Shutdown(ctx); err != nil {
		_ = s.srv.Close()
		return fmt.Errorf("obs: shutdown: %w", err)
	}
	return nil
}

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// TimelineHandler serves the flight recorder's retained spans as Chrome
// trace-event JSON, loadable in Perfetto.
func TimelineHandler(f *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = f.WriteChromeTrace(w)
	})
}

// EventsHandler serves the tracer tail as JSON; ?n= bounds the number
// of events (default 100, <=0 for the full retained ring).
func EventsHandler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 100
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad n: %v", err), http.StatusBadRequest)
				return
			}
			n = v
		}
		events := tr.Tail(n)
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Seq    uint64  `json:"seq"`
			Events []Event `json:"events"`
		}{Seq: tr.Seq(), Events: events})
	})
}
