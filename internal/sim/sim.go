// Package sim is a deterministic discrete-event simulator for checkpoint
// and communication patterns: n sequential processes connected by
// asynchronous reliable channels with unpredictable finite delays, each
// process running one communication-induced checkpointing protocol
// instance and taking basic checkpoints independently, with a pluggable
// workload generating the communication. It reproduces the simulation
// study of the paper's evaluation.
//
// Runs are fully deterministic for a given Config (single-threaded event
// loop, one seeded random source, stable tie-breaking), which makes the
// experiments and the property-based tests reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/obs"
)

// Config parameterizes one simulation run.
type Config struct {
	// N is the number of processes.
	N int
	// Protocol selects the checkpointing protocol every process runs.
	Protocol core.Kind
	// Seed seeds the simulation's random source.
	Seed int64
	// Duration is the simulated time horizon; no new workload activity or
	// basic checkpoint is initiated after it (in-flight messages still
	// arrive).
	Duration float64

	// BasicMean is the mean of the uniform distribution of the intervals
	// between basic-checkpoint attempts; BasicSpread is its half-width
	// relative to the mean (0.5 means U[0.5·mean, 1.5·mean]).
	BasicMean   float64
	BasicSpread float64
	// KeepEmptyBasic makes processes take a basic checkpoint even when no
	// event occurred since their last checkpoint. By default such
	// redundant checkpoints are skipped.
	KeepEmptyBasic bool

	// DelayMin and DelayMax bound the uniform message transmission delay.
	DelayMin, DelayMax float64

	// Monitor, when non-nil, is invoked for every message arrival before
	// the protocol processes it — the hook used by the predicate-hierarchy
	// tests.
	Monitor func(inst core.Instance, from int, pb core.Piggyback)

	// Obs, if non-nil, receives the run's metrics (messages, deliveries,
	// per-predicate forced checkpoints), labeled by protocol so
	// comparison sweeps share one registry. It does not perturb the
	// simulation's determinism.
	Obs *obs.Registry
	// Tracer, if non-nil, records the run's structured events into its
	// bounded ring.
	Tracer *obs.Tracer
}

// DefaultConfig returns a configuration with the baseline parameters used
// by the experiments: 8 processes, unit-mean send gaps assumed by the
// workloads, message delays U[0.1, 1.0], basic checkpoints every ~10 time
// units.
func DefaultConfig(protocol core.Kind, seed int64) Config {
	return Config{
		N:           8,
		Protocol:    protocol,
		Seed:        seed,
		Duration:    1000,
		BasicMean:   10,
		BasicSpread: 0.5,
		DelayMin:    0.1,
		DelayMax:    1.0,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("config: need at least 2 processes, have %d", c.N)
	case c.Duration <= 0:
		return errors.New("config: duration must be positive")
	case c.BasicMean <= 0:
		return errors.New("config: basic checkpoint mean must be positive")
	case c.BasicSpread < 0 || c.BasicSpread >= 1:
		return errors.New("config: basic spread must be in [0,1)")
	case c.DelayMin < 0 || c.DelayMax < c.DelayMin:
		return errors.New("config: delays must satisfy 0 <= min <= max")
	}
	if _, err := core.ParseKind(c.Protocol.String()); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

// Workload drives the application-level communication of a run.
type Workload interface {
	// Name identifies the environment in reports.
	Name() string
	// Start schedules the workload's initial activity.
	Start(e *Engine)
	// OnDeliver is invoked after every message delivery, so request/reply
	// workloads can react.
	OnDeliver(e *Engine, d Delivery)
}

// Delivery describes a delivered application message.
type Delivery struct {
	From, To int
	Payload  any
}

// Result is the outcome of a run.
type Result struct {
	// Pattern is the recorded, finalized checkpoint and communication
	// pattern, annotated with the dependency vectors of every checkpoint.
	Pattern *model.Pattern
	// Stats summarizes the pattern.
	Stats model.Stats
	// Protocol and Workload identify the run.
	Protocol core.Kind
	Workload string
	// WireBytesPerMessage is the published protocol's piggyback size.
	WireBytesPerMessage int
}

// Run executes one simulation and returns its recorded pattern.
func Run(cfg Config, w Workload) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		builder: model.NewBuilder(cfg.N),
		w:       w,
	}
	if cfg.Obs != nil || cfg.Tracer != nil {
		e.obs = newEngineObs(cfg.Obs, cfg.Tracer, cfg.Protocol)
	}
	e.insts = make([]core.Instance, cfg.N)
	for i := 0; i < cfg.N; i++ {
		inst, err := core.New(cfg.Protocol, i, cfg.N, e.sink)
		if err != nil {
			return nil, err
		}
		e.insts[i] = inst
	}
	w.Start(e)
	for i := 0; i < cfg.N; i++ {
		e.scheduleBasic(i)
	}
	for e.pq.Len() > 0 {
		item := heap.Pop(&e.pq).(*eventItem)
		e.now = item.at
		e.dispatch(item)
	}
	pattern, err := e.builder.Finalize()
	if err != nil {
		return nil, fmt.Errorf("run %v/%s: %w", cfg.Protocol, w.Name(), err)
	}
	return &Result{
		Pattern:             pattern,
		Stats:               pattern.Stats(),
		Protocol:            cfg.Protocol,
		Workload:            w.Name(),
		WireBytesPerMessage: e.insts[0].WireSize(),
	}, nil
}

// Engine is the event loop handed to workloads.
type Engine struct {
	cfg     Config
	rng     *rand.Rand
	now     float64
	seq     int64
	pq      eventHeap
	free    []*eventItem // recycled event items (hot-path scratch)
	builder *model.Builder
	insts   []core.Instance
	w       Workload
	obs     *engineObs // nil when observability is off
}

// engineObs bundles the pre-created series of one run, labeled by
// protocol so sweeps over several protocols share a registry.
type engineObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	proto  string

	messages   *obs.Counter
	deliveries *obs.Counter
	basic      *obs.Counter
	forced     *obs.Counter
}

func newEngineObs(reg *obs.Registry, tr *obs.Tracer, protocol core.Kind) *engineObs {
	proto := protocol.String()
	return &engineObs{
		reg:        reg,
		tracer:     tr,
		proto:      proto,
		messages:   reg.Counter("rdt_sim_messages_total", "protocol", proto),
		deliveries: reg.Counter("rdt_sim_deliveries_total", "protocol", proto),
		basic:      reg.Counter("rdt_checkpoints_total", "protocol", proto, "kind", "basic"),
		forced:     reg.Counter("rdt_checkpoints_total", "protocol", proto, "kind", "forced"),
	}
}

// N returns the number of processes.
func (e *Engine) N() int { return e.cfg.N }

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Active reports whether the run is still within its time horizon;
// workloads must not initiate new activity once it returns false.
func (e *Engine) Active() bool { return e.now <= e.cfg.Duration }

// Rand returns the run's random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Uniform draws from U[min, max].
func (e *Engine) Uniform(min, max float64) float64 {
	return min + e.rng.Float64()*(max-min)
}

// Exp draws from an exponential distribution with the given mean.
func (e *Engine) Exp(mean float64) float64 {
	return -mean * math.Log(1-e.rng.Float64())
}

// newItem takes an event item from the freelist (or allocates one) and
// stamps its time and tie-breaking sequence number.
func (e *Engine) newItem(at float64) *eventItem {
	var item *eventItem
	if n := len(e.free); n > 0 {
		item = e.free[n-1]
		e.free = e.free[:n-1]
		*item = eventItem{}
	} else {
		item = &eventItem{}
	}
	e.seq++
	item.at, item.seq = at, e.seq
	return item
}

// dispatch runs a popped event and recycles its item. The item's fields
// are read before the action runs, so the action can freely schedule new
// events (which may reuse the item).
func (e *Engine) dispatch(item *eventItem) {
	kind, fn := item.kind, item.fn
	handle, from, to := item.handle, item.from, item.to
	pb, payload := item.pb, item.payload
	item.fn, item.pb, item.payload = nil, core.Piggyback{}, nil
	e.free = append(e.free, item)
	switch kind {
	case itemFn:
		fn()
	case itemArrive:
		e.arrive(handle, from, to, pb, payload)
	case itemBasic:
		e.basicTick(from)
	}
}

// At schedules fn to run after the given delay.
func (e *Engine) At(delay float64, fn func()) {
	item := e.newItem(e.now + delay)
	item.kind = itemFn
	item.fn = fn
	heap.Push(&e.pq, item)
}

// Send emits an application message from one process to another: the
// protocol contributes its piggyback, the send is recorded, and the
// arrival is scheduled after a random channel delay.
func (e *Engine) Send(from, to int, payload any) {
	inst := e.insts[from]
	pb, forceAfter := inst.OnSend(to)
	handle := e.builder.Send(model.ProcID(from), model.ProcID(to))
	if e.obs != nil {
		e.obs.messages.Inc()
		e.obs.tracer.Record(obs.Event{
			Type: obs.EventSend, Proc: from, Peer: to, Value: handle,
		})
	}
	if forceAfter {
		inst.CheckpointAfterSend()
	}
	delay := e.Uniform(e.cfg.DelayMin, e.cfg.DelayMax)
	// The arrival is a typed event rather than a closure: with one message
	// per event this is the hottest allocation site of a run.
	item := e.newItem(e.now + delay)
	item.kind = itemArrive
	item.handle, item.from, item.to = handle, from, to
	item.pb, item.payload = pb, payload
	heap.Push(&e.pq, item)
}

func (e *Engine) arrive(handle, from, to int, pb core.Piggyback, payload any) {
	inst := e.insts[to]
	if e.cfg.Monitor != nil {
		e.cfg.Monitor(inst, from, pb)
	}
	inst.OnArrival(from, pb)
	if err := e.builder.Deliver(handle); err != nil {
		// Deliver can only fail on a corrupted handle, which would be an
		// engine bug; surface it loudly during development.
		panic(fmt.Sprintf("sim: %v", err))
	}
	if e.obs != nil {
		e.obs.deliveries.Inc()
		e.obs.tracer.Record(obs.Event{
			Type: obs.EventDeliver, Proc: to, Peer: from, Value: handle,
		})
	}
	e.w.OnDeliver(e, Delivery{From: from, To: to, Payload: payload})
}

// sink records protocol checkpoints into the trace. Initial checkpoints
// are pre-recorded by the builder and skipped here (their dependency
// vector is trivially all-zero).
func (e *Engine) sink(rec core.CheckpointRecord) {
	if rec.Kind == model.KindInitial {
		return
	}
	e.builder.Checkpoint(model.ProcID(rec.Proc), rec.Kind, rec.TDV)
	if e.obs == nil {
		return
	}
	switch rec.Kind {
	case model.KindBasic:
		e.obs.basic.Inc()
		e.obs.tracer.Record(obs.Event{
			Type: obs.EventBasicCheckpoint, Proc: rec.Proc, Value: rec.Index,
		})
	case model.KindForced:
		e.obs.forced.Inc()
		e.obs.reg.Counter("rdt_forced_checkpoints_total",
			"protocol", e.obs.proto, "predicate", rec.Predicate).Inc()
		e.obs.tracer.Record(obs.Event{
			Type:      obs.EventForcedCheckpoint,
			Proc:      rec.Proc,
			Predicate: rec.Predicate,
			Value:     rec.Index,
		})
	}
}

func (e *Engine) scheduleBasic(proc int) {
	gap := e.Uniform(e.cfg.BasicMean*(1-e.cfg.BasicSpread), e.cfg.BasicMean*(1+e.cfg.BasicSpread))
	item := e.newItem(e.now + gap)
	item.kind = itemBasic
	item.from = proc
	heap.Push(&e.pq, item)
}

// basicTick is one basic-checkpoint attempt of a process.
func (e *Engine) basicTick(proc int) {
	if !e.Active() {
		return
	}
	if e.cfg.KeepEmptyBasic || e.builder.EventsSinceCheckpoint(model.ProcID(proc)) > 0 {
		e.insts[proc].TakeBasicCheckpoint()
	}
	e.scheduleBasic(proc)
}

// itemKind selects the action of a scheduled event. Message arrivals and
// basic-checkpoint ticks — the two per-event hot paths — are typed so
// they need no closure allocation; everything a workload schedules via At
// remains a generic function event.
type itemKind int8

const (
	itemFn itemKind = iota
	itemArrive
	itemBasic
)

// eventItem is one scheduled action; seq breaks time ties deterministically.
type eventItem struct {
	at   float64
	seq  int64
	kind itemKind
	fn   func() // itemFn

	// itemArrive payload (from doubles as the process of an itemBasic).
	handle, from, to int
	pb               core.Piggyback
	payload          any
}

type eventHeap []*eventItem

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	return h[a].seq < h[b].seq
}
func (h eventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*eventItem)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return item
}
