package sim

import (
	"bytes"
	"container/heap"
	"math/rand"
	"testing"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/trace"
)

// pingpong is a minimal in-package workload for engine unit tests.
type pingpong struct{ gap float64 }

func (w *pingpong) Name() string { return "pingpong" }
func (w *pingpong) Start(e *Engine) {
	e.At(w.gap, func() { e.Send(0, 1, "ping") })
}
func (w *pingpong) OnDeliver(e *Engine, d Delivery) {
	if !e.Active() {
		return
	}
	e.At(w.gap, func() { e.Send(d.To, d.From, "pong") })
}

func shortConfig(k core.Kind, seed int64) Config {
	cfg := DefaultConfig(k, seed)
	cfg.N = 4
	cfg.Duration = 120
	return cfg
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(*Config)
	}{
		{"too few processes", func(c *Config) { c.N = 1 }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"zero basic mean", func(c *Config) { c.BasicMean = 0 }},
		{"bad spread", func(c *Config) { c.BasicSpread = 1 }},
		{"negative delay", func(c *Config) { c.DelayMin = -1 }},
		{"inverted delays", func(c *Config) { c.DelayMin = 2; c.DelayMax = 1 }},
		{"unknown protocol", func(c *Config) { c.Protocol = core.Kind(99) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(core.KindBHMR, 1)
			tt.corrupt(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("corrupted config accepted")
			}
		})
	}
	cfg := DefaultConfig(core.KindBHMR, 1)
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestRunProducesValidAnnotatedPattern(t *testing.T) {
	res, err := Run(shortConfig(core.KindBHMR, 7), &pingpong{gap: 0.5})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	p := res.Pattern
	if err := p.Validate(); err != nil {
		t.Fatalf("pattern invalid: %v", err)
	}
	if len(p.Messages) == 0 {
		t.Fatal("no messages exchanged")
	}
	if res.Stats.Basic == 0 {
		t.Fatal("no basic checkpoints taken")
	}
	// All non-initial checkpoints carry dependency vectors.
	for i := 0; i < p.N; i++ {
		for x := 1; x < len(p.Checkpoints[i]); x++ {
			ck := &p.Checkpoints[i][x]
			if ck.Kind != model.KindFinal && ck.TDV == nil {
				t.Fatalf("checkpoint %v lacks a TDV", ck.ID())
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	render := func() []byte {
		res, err := Run(shortConfig(core.KindBHMR, 42), &pingpong{gap: 0.3})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		var buf bytes.Buffer
		if err := trace.Save(&buf, res.Pattern); err != nil {
			t.Fatalf("save: %v", err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("two runs with the same seed produced different patterns")
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	a, err := Run(shortConfig(core.KindBHMR, 1), &pingpong{gap: 0.3})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := Run(shortConfig(core.KindBHMR, 2), &pingpong{gap: 0.3})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.Stats == b.Stats && len(a.Pattern.Messages) == len(b.Pattern.Messages) {
		// Equality of full stats across different seeds would be
		// suspicious for a randomized run of this length.
		t.Error("different seeds produced identical statistics")
	}
}

func TestKeepEmptyBasicCheckpoints(t *testing.T) {
	quiet := &pingpong{gap: 1e9} // effectively no traffic

	cfg := shortConfig(core.KindBHMR, 5)
	cfg.KeepEmptyBasic = true
	res, err := Run(cfg, quiet)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Stats.Basic == 0 {
		t.Error("KeepEmptyBasic run took no basic checkpoints")
	}

	cfg.KeepEmptyBasic = false
	res, err = Run(cfg, quiet)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Stats.Basic != 0 {
		t.Errorf("quiet run still took %d basic checkpoints", res.Stats.Basic)
	}
}

func TestMonitorHookSeesEveryArrival(t *testing.T) {
	cfg := shortConfig(core.KindBHMR, 9)
	arrivals := 0
	cfg.Monitor = func(inst core.Instance, from int, pb core.Piggyback) {
		arrivals++
		if pb.TDV == nil {
			t.Error("monitor saw a piggyback without TDV")
		}
		if inst == nil || from < 0 || from >= cfg.N {
			t.Error("monitor arguments malformed")
		}
	}
	res, err := Run(cfg, &pingpong{gap: 0.5})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if arrivals != len(res.Pattern.Messages) {
		t.Errorf("monitor saw %d arrivals, pattern has %d messages", arrivals, len(res.Pattern.Messages))
	}
}

func TestWireBytesReported(t *testing.T) {
	res, err := Run(shortConfig(core.KindFDAS, 3), &pingpong{gap: 0.5})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.WireBytesPerMessage != 4*res.Pattern.N {
		t.Errorf("wire bytes = %d, want %d", res.WireBytesPerMessage, 4*res.Pattern.N)
	}
}

func TestEngineDistributions(t *testing.T) {
	cfg := shortConfig(core.KindNone, 11)
	e := &Engine{cfg: cfg}
	e.rng = newTestRand(11)
	for i := 0; i < 1000; i++ {
		u := e.Uniform(2, 5)
		if u < 2 || u >= 5 {
			t.Fatalf("uniform sample %v out of range", u)
		}
		x := e.Exp(3)
		if x < 0 {
			t.Fatalf("exponential sample %v negative", x)
		}
	}
}

// newTestRand builds the engine's random source for distribution tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestEngineEventOrdering: events scheduled for the same instant run in
// insertion order; earlier times run first regardless of insertion order.
func TestEngineEventOrdering(t *testing.T) {
	cfg := shortConfig(core.KindNone, 1)
	e := &Engine{cfg: cfg, rng: newTestRand(1), builder: model.NewBuilder(cfg.N), w: &pingpong{gap: 1}}
	var got []int
	e.At(2.0, func() { got = append(got, 3) })
	e.At(1.0, func() { got = append(got, 1) })
	e.At(1.0, func() { got = append(got, 2) }) // same instant, later insertion
	for e.pq.Len() > 0 {
		item := heap.Pop(&e.pq).(*eventItem)
		e.now = item.at
		item.fn()
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", got)
	}
	if e.Now() != 2.0 {
		t.Errorf("clock = %v, want 2", e.Now())
	}
}

// TestBasicCheckpointSpread: basic checkpoints respect the configured mean
// roughly (loose bound — the run is stochastic but seeded).
func TestBasicCheckpointSpread(t *testing.T) {
	cfg := shortConfig(core.KindNone, 12)
	cfg.Duration = 400
	cfg.BasicMean = 10
	cfg.KeepEmptyBasic = true
	res, err := Run(cfg, &pingpong{gap: 1e9})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	perProc := float64(res.Stats.Basic) / float64(cfg.N)
	expect := cfg.Duration / cfg.BasicMean
	if perProc < expect*0.6 || perProc > expect*1.4 {
		t.Errorf("basic checkpoints per process = %.1f, expected about %.1f", perProc, expect)
	}
}

// TestAllProtocolsRunAllKinds is a sweep smoke test: every protocol
// terminates and produces a valid annotated pattern under the in-package
// workload.
func TestAllProtocolsRunAllKinds(t *testing.T) {
	for _, kind := range core.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			res, err := Run(shortConfig(kind, 33), &pingpong{gap: 0.4})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := res.Pattern.Validate(); err != nil {
				t.Fatalf("invalid pattern: %v", err)
			}
			if err := rgraph.VerifyRecordedTDVs(res.Pattern); err != nil {
				t.Fatalf("TDVs: %v", err)
			}
		})
	}
}

func TestEngineAccessors(t *testing.T) {
	cfg := shortConfig(core.KindNone, 2)
	e := &Engine{cfg: cfg, rng: newTestRand(2)}
	if e.N() != cfg.N {
		t.Errorf("N = %d", e.N())
	}
	if e.Rand() == nil {
		t.Error("nil rng")
	}
}
