// Package binenc is the little codec dialect every deterministic state
// encoder of the repo speaks: append-style writers over a byte slice
// (non-negative integers as uvarints, length-prefixed byte strings) and
// a bounds-checked reader that latches the first error, so decoders
// read an entire structure and check Err once. Untrusted inputs (WAL
// records, snapshot files) are decoded through the Reader, which never
// panics and never reads past the buffer.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is wrapped by every Reader failure: truncated buffer,
// malformed uvarint, value out of range, trailing bytes.
var ErrCorrupt = errors.New("binenc: corrupt encoding")

// AppendUvarint appends v as a uvarint.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendInt appends a non-negative int as a uvarint. Negative values
// are an encoder bug and panic.
func AppendInt(buf []byte, v int) []byte {
	if v < 0 {
		panic(fmt.Sprintf("binenc: negative value %d", v))
	}
	return binary.AppendUvarint(buf, uint64(v))
}

// AppendInts appends a length-prefixed slice of non-negative ints.
func AppendInts(buf []byte, vs []int) []byte {
	buf = AppendInt(buf, len(vs))
	for _, v := range vs {
		buf = AppendInt(buf, v)
	}
	return buf
}

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(buf, b []byte) []byte {
	buf = AppendInt(buf, len(b))
	return append(buf, b...)
}

// AppendString appends a length-prefixed string.
func AppendString(buf []byte, s string) []byte {
	buf = AppendInt(buf, len(s))
	return append(buf, s...)
}

// AppendBool appends a bool as one byte.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// Reader decodes a buffer written with the Append helpers. The zero
// value is not usable; call NewReader. After the first failure every
// further read returns a zero value and Err reports the failure.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decoding failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, r.off)
	}
}

// Expect consumes and verifies a fixed magic prefix.
func (r *Reader) Expect(magic []byte) {
	if r.err != nil {
		return
	}
	if r.Remaining() < len(magic) {
		r.fail("short magic")
		return
	}
	for i, b := range magic {
		if r.data[r.off+i] != b {
			r.fail("bad magic")
			return
		}
	}
	r.off += len(magic)
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail("short byte")
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

// Bool reads one byte as a bool, rejecting values other than 0 and 1.
func (r *Reader) Bool() bool {
	b := r.Byte()
	if r.err == nil && b > 1 {
		r.fail("bad bool")
		return false
	}
	return b == 1
}

// Uvarint reads one uvarint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

// Int reads a uvarint-encoded non-negative int.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if r.err == nil && v > math.MaxInt64 {
		r.fail("int overflow")
		return 0
	}
	return int(v)
}

// IntMax reads an int and rejects values above limit — decoders bound
// every count they then allocate for, so corrupt lengths cannot force
// huge allocations.
func (r *Reader) IntMax(limit int) int {
	v := r.Int()
	if r.err == nil && v > limit {
		r.fail("length out of range")
		return 0
	}
	return v
}

// Ints reads a length-prefixed int slice of at most limit entries.
func (r *Reader) Ints(limit int) []int {
	n := r.IntMax(limit)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Bytes reads a length-prefixed byte string (a sub-slice of the
// underlying buffer, not a copy).
func (r *Reader) Bytes() []byte {
	n := r.IntMax(r.Remaining())
	if r.err != nil {
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Done fails unless the buffer was consumed exactly; it returns Err.
func (r *Reader) Done() error {
	if r.err == nil && r.Remaining() != 0 {
		r.fail("trailing bytes")
	}
	return r.err
}
