package binenc

import (
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 1<<60)
	buf = AppendInt(buf, 42)
	buf = AppendInts(buf, []int{0, 1, 1 << 30})
	buf = AppendBytes(buf, []byte{9, 8, 7})
	buf = AppendString(buf, "hello")
	buf = AppendBool(buf, true)
	buf = AppendBool(buf, false)

	r := NewReader(buf)
	if v := r.Uvarint(); v != 1<<60 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := r.Int(); v != 42 {
		t.Fatalf("int = %d", v)
	}
	vs := r.Ints(10)
	if len(vs) != 3 || vs[2] != 1<<30 {
		t.Fatalf("ints = %v", vs)
	}
	if b := r.Bytes(); len(b) != 3 || b[0] != 9 {
		t.Fatalf("bytes = %v", b)
	}
	if s := r.String(); s != "hello" {
		t.Fatalf("string = %q", s)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools did not round-trip")
	}
	if err := r.Done(); err != nil {
		t.Fatalf("done: %v", err)
	}
}

func TestReaderFailsClosed(t *testing.T) {
	cases := []struct {
		name string
		run  func(r *Reader)
		data []byte
	}{
		{"short byte", func(r *Reader) { r.Byte() }, nil},
		{"bad uvarint", func(r *Reader) { r.Uvarint() }, []byte{0x80}},
		{"bad bool", func(r *Reader) { r.Bool() }, []byte{2}},
		{"length out of range", func(r *Reader) { r.IntMax(3) }, AppendInt(nil, 4)},
		{"bytes beyond buffer", func(r *Reader) { r.Bytes() }, AppendInt(nil, 100)},
		{"ints over limit", func(r *Reader) { r.Ints(2) }, AppendInts(nil, []int{1, 2, 3})},
		{"bad magic", func(r *Reader) { r.Expect([]byte("AB")) }, []byte("AX")},
		{"short magic", func(r *Reader) { r.Expect([]byte("AB")) }, []byte("A")},
		{"trailing bytes", func(r *Reader) {}, []byte{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(tc.data)
			tc.run(r)
			if err := r.Done(); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			// Latched: later reads stay zero and do not panic.
			if v := r.Int(); v != 0 {
				t.Fatalf("read after failure = %d", v)
			}
		})
	}
}

func TestAppendIntPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative int")
		}
	}()
	AppendInt(nil, -1)
}
