package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/rdt-go/rdt/internal/model"
)

func TestFigure1Shape(t *testing.T) {
	p, err := Figure1()
	if err != nil {
		t.Fatalf("figure1: %v", err)
	}
	if p.N != 3 {
		t.Fatalf("N = %d, want 3", p.N)
	}
	if len(p.Messages) != 7 {
		t.Fatalf("messages = %d, want 7", len(p.Messages))
	}
	for i := 0; i < 3; i++ {
		if got := len(p.Checkpoints[i]); got != 4 {
			t.Errorf("process %d has %d checkpoints, want 4 (C0..C3)", i, got)
		}
	}
	// Message placement straight from the paper's figure.
	tests := []struct {
		id                    int
		from, to              model.ProcID
		sendIntv, deliverIntv int
	}{
		{M1, Pi, Pj, 1, 1},
		{M2, Pj, Pi, 1, 2},
		{M3, Pk, Pj, 1, 1},
		{M4, Pj, Pk, 2, 2},
		{M5, Pi, Pj, 3, 2},
		{M6, Pj, Pk, 2, 2},
		{M7, Pk, Pj, 2, 3},
	}
	for _, tt := range tests {
		m := p.Messages[tt.id]
		if m.ID != tt.id {
			t.Fatalf("messages not sorted by id: %v", m)
		}
		if m.From != tt.from || m.To != tt.to || m.SendInterval != tt.sendIntv || m.DeliverInterval != tt.deliverIntv {
			t.Errorf("m%d = %v, want P%d[I%d] -> P%d[I%d]", tt.id, &m, tt.from, tt.sendIntv, tt.to, tt.deliverIntv)
		}
	}
	// The chain [m3 m2] is non-causal: m2 is sent before m3 is delivered.
	m2, m3 := p.Messages[M2], p.Messages[M3]
	if m2.SendSeq > m3.DeliverSeq {
		t.Error("m2 sent after m3 delivered; [m3 m2] would be causal")
	}
	// The chain [m5 m6] is causal, [m5 m4] is not.
	m4, m5, m6 := p.Messages[M4], p.Messages[M5], p.Messages[M6]
	if !(m5.DeliverSeq < m6.SendSeq) {
		t.Error("[m5 m6] not causal")
	}
	if !(m4.SendSeq < m5.DeliverSeq) {
		t.Error("[m5 m4] not a zigzag")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p, err := Figure1()
	if err != nil {
		t.Fatalf("figure1: %v", err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.N != p.N || len(got.Messages) != len(p.Messages) {
		t.Fatalf("round trip lost structure")
	}
	for i := range p.Messages {
		if got.Messages[i] != p.Messages[i] {
			t.Errorf("message %d: %v != %v", i, got.Messages[i], p.Messages[i])
		}
	}
	for i := range p.Checkpoints {
		for x := range p.Checkpoints[i] {
			a, b := got.Checkpoints[i][x], p.Checkpoints[i][x]
			if a.Proc != b.Proc || a.Index != b.Index || a.Seq != b.Seq || a.Kind != b.Kind {
				t.Errorf("checkpoint %v mismatch", b.ID())
			}
		}
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Error("accepted truncated JSON")
	}
	if _, err := Load(strings.NewReader(`{"n":0}`)); err == nil {
		t.Error("accepted invalid pattern")
	}
}

func TestSaveLoadFile(t *testing.T) {
	p, err := Figure1()
	if err != nil {
		t.Fatalf("figure1: %v", err)
	}
	path := filepath.Join(t.TempDir(), "fig1.json")
	if err := SaveFile(path, p); err != nil {
		t.Fatalf("save file: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("load file: %v", err)
	}
	if got.N != 3 {
		t.Errorf("N = %d", got.N)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loaded a missing file")
	}
	if err := SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f.json"), p); err == nil {
		t.Error("saved into a missing directory")
	}
}

func TestFigure1AnnotationFree(t *testing.T) {
	p, err := Figure1()
	if err != nil {
		t.Fatalf("figure1: %v", err)
	}
	for i := range p.Checkpoints {
		for x := range p.Checkpoints[i] {
			if p.Checkpoints[i][x].TDV != nil {
				t.Fatalf("figure fixture should carry no TDVs, %v does", p.Checkpoints[i][x].ID())
			}
		}
	}
}
