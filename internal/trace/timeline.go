package trace

import (
	"io"
	"sort"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/obs"
)

// Timeline converts a pattern into flight-recorder spans on a logical
// clock: timestamps are the recorded per-process event sequence
// positions (scaled to keep spans visibly apart), so the same pattern
// always yields byte-identical Chrome trace output — the determinism
// the golden tests pin down. Each message becomes a send span and a
// deliver span sharing a trace id, the delivery parented to the send
// (the causal link Perfetto draws as a flow); each non-initial
// checkpoint becomes a checkpoint span, forced checkpoints marked by
// kind.
func Timeline(p *model.Pattern) []obs.Span {
	const tick = 10 // logical µs per local event, so dur=tick/2 spans never touch
	msgs := make([]model.Message, len(p.Messages))
	copy(msgs, p.Messages)
	sort.Slice(msgs, func(a, b int) bool { return msgs[a].ID < msgs[b].ID })

	spans := make([]obs.Span, 0, 2*len(msgs)+p.NumCheckpoints())
	for i := range msgs {
		m := &msgs[i]
		traceID := uint64(m.ID) + 1
		sendID := 2*uint64(m.ID) + 1
		deliverID := sendID + 1
		spans = append(spans,
			obs.Span{
				TraceID: traceID, ID: sendID, Kind: obs.SpanSend,
				Proc: int(m.From), Peer: int(m.To),
				Start: int64(m.SendSeq) * tick, Dur: tick / 2,
				Detail: m.String(),
			},
			obs.Span{
				TraceID: traceID, ID: deliverID, Parent: sendID, Kind: obs.SpanDeliver,
				Proc: int(m.To), Peer: int(m.From),
				Start: int64(m.DeliverSeq) * tick, Dur: tick / 2,
				Detail: m.String(),
			})
	}
	ckptBase := 2 * uint64(len(msgs))
	for i, cs := range p.Checkpoints {
		for x := range cs {
			ck := &cs[x]
			if ck.Kind == model.KindInitial {
				continue
			}
			kind := obs.SpanCheckpoint
			if ck.Kind == model.KindForced {
				kind = obs.SpanForced
			}
			ckptBase++
			spans = append(spans, obs.Span{
				ID: ckptBase, Kind: kind,
				Proc:  i,
				Start: int64(ck.Seq) * tick, Dur: tick / 2,
				Detail: ck.ID().String() + " " + ck.Kind.String(),
			})
		}
	}
	sort.SliceStable(spans, func(a, b int) bool {
		if spans[a].Proc != spans[b].Proc {
			return spans[a].Proc < spans[b].Proc
		}
		if spans[a].Start != spans[b].Start {
			return spans[a].Start < spans[b].Start
		}
		return spans[a].ID < spans[b].ID
	})
	return spans
}

// WriteTimeline renders the pattern's logical timeline as Chrome
// trace-event JSON.
func WriteTimeline(w io.Writer, p *model.Pattern) error {
	return obs.WriteChromeTrace(w, Timeline(p))
}
