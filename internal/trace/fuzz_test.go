package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the trace loader: it must either
// reject the input or return a pattern that passes validation — never
// panic, never accept garbage.
func FuzzLoad(f *testing.F) {
	f.Add([]byte(`{`))
	f.Add([]byte(`{"n":0}`))
	f.Add([]byte(`{"n":1,"checkpoints":[[{"proc":0,"index":0,"seq":0,"kind":1}]],"messages":[]}`))
	p, err := Figure1()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(strings.Replace(buf.String(), `"sendSeq": 1`, `"sendSeq": -7`, 1)))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("loader accepted an invalid pattern: %v", err)
		}
	})
}
