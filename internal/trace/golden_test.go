package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/rdt-go/rdt/internal/model"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: output differs from golden file (run with -update to rewrite)\ngot:\n%s", name, got)
	}
}

// TestTimelineGolden pins the Chrome trace-event export of the Figure 1
// pattern byte for byte: the logical clock makes the timeline a pure
// function of the pattern.
func TestTimelineGolden(t *testing.T) {
	p, err := Figure1()
	if err != nil {
		t.Fatalf("figure 1: %v", err)
	}
	var b bytes.Buffer
	if err := WriteTimeline(&b, p); err != nil {
		t.Fatalf("write timeline: %v", err)
	}
	first := b.Bytes()
	var b2 bytes.Buffer
	if err := WriteTimeline(&b2, p); err != nil {
		t.Fatalf("write timeline: %v", err)
	}
	if !bytes.Equal(first, b2.Bytes()) {
		t.Fatalf("timeline export is not deterministic")
	}
	golden(t, "figure1_timeline.json", first)
}

// TestWitnessDOTGolden pins the space-time diagram of Figure 1 with the
// paper's own witness — the non-causal chain [m3 m2] convicting the
// pair (C_{k,1}, C_{i,2}) — highlighted.
func TestWitnessDOTGolden(t *testing.T) {
	p, err := Figure1()
	if err != nil {
		t.Fatalf("figure 1: %v", err)
	}
	out := p.DOTWitness([]int{M3, M2},
		model.CkptID{Proc: Pk, Index: 1},
		model.CkptID{Proc: Pi, Index: 2})
	if out != p.DOTWitness([]int{M3, M2},
		model.CkptID{Proc: Pk, Index: 1},
		model.CkptID{Proc: Pi, Index: 2}) {
		t.Fatalf("witness DOT export is not deterministic")
	}
	golden(t, "figure1_witness.dot", []byte(out))
}
