// Package trace serializes checkpoint and communication patterns to JSON
// and provides reference fixtures, notably the pattern of Figure 1 of the
// paper, reconstructed event by event from the statements the text makes
// about it.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/rdt-go/rdt/internal/model"
)

// Save writes the pattern as indented JSON.
func Save(w io.Writer, p *model.Pattern) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("save trace: %w", err)
	}
	return nil
}

// Load reads a pattern from JSON and validates it.
func Load(r io.Reader) (*model.Pattern, error) {
	var p model.Pattern
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("load trace: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("load trace: %w", err)
	}
	return &p, nil
}

// SaveFile writes the pattern to a JSON file.
func SaveFile(path string, p *model.Pattern) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save trace: %w", err)
	}
	defer f.Close()
	if err := Save(f, p); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a pattern from a JSON file.
func LoadFile(path string) (*model.Pattern, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load trace: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Figure1 message handles, exported so tests can reference the messages of
// the fixture by their paper names.
const (
	M1 = iota
	M2
	M3
	M4
	M5
	M6
	M7
)

// Figure-1 process identifiers: the paper calls them P_i, P_j, P_k.
const (
	Pi = model.ProcID(0)
	Pj = model.ProcID(1)
	Pk = model.ProcID(2)
)

// Figure1 builds the checkpoint and communication pattern of Figure 1.a of
// the paper. The reconstruction satisfies every statement the text makes
// about the figure:
//
//   - [m3 m2] is a (non-causal) message chain from C_{k,1} to C_{i,2};
//   - m5 is orphan w.r.t. (C_{i,2}, C_{j,2}), so {C_{i,2}, C_{j,2}, C_{k,1}}
//     is inconsistent while {C_{i,1}, C_{j,1}, C_{k,1}} is consistent;
//   - [m5 m4] and [m5 m6] are message chains for the R-path
//     C_{i,3} -> C_{k,2}; [m5 m6] is causal, a causal sibling of the
//     non-causal [m5 m4];
//   - [m3 m2 m5 m4 m7] is a non-causal chain, the concatenation of the
//     causal chains [m3], [m2 m5] and [m4 m7].
//
// Checkpoints beyond those required by the message placement are basic.
func Figure1() (*model.Pattern, error) {
	b := model.NewBuilder(3)

	// Interval I_{i,1}: P_i sends m1 to P_j.
	m1 := b.Send(Pi, Pj)
	b.Checkpoint(Pi, model.KindBasic, nil) // C_{i,1}

	// Interval I_{j,1}: P_j delivers m1, sends m2 to P_i, delivers m3
	// (sent by P_k in I_{k,1}); send(m2) precedes deliver(m3), so [m3 m2]
	// is a non-causal chain.
	if err := b.Deliver(m1); err != nil {
		return nil, err
	}
	m2 := b.Send(Pj, Pi)
	m3 := b.Send(Pk, Pj) // send in I_{k,1}
	if err := b.Deliver(m3); err != nil {
		return nil, err
	}
	b.Checkpoint(Pk, model.KindBasic, nil) // C_{k,1}
	b.Checkpoint(Pj, model.KindBasic, nil) // C_{j,1}

	// Interval I_{i,2}: P_i delivers m2 and checkpoints C_{i,2}.
	if err := b.Deliver(m2); err != nil {
		return nil, err
	}
	b.Checkpoint(Pi, model.KindBasic, nil) // C_{i,2}

	// Interval I_{j,2}: P_j sends m4 to P_k, then delivers m5 (sent by P_i
	// in I_{i,3}), then sends m6 to P_k. [m5 m4] is non-causal; [m5 m6] is
	// its causal sibling.
	m4 := b.Send(Pj, Pk)
	m5 := b.Send(Pi, Pj) // send in I_{i,3}
	if err := b.Deliver(m5); err != nil {
		return nil, err
	}
	m6 := b.Send(Pj, Pk)
	b.Checkpoint(Pj, model.KindBasic, nil) // C_{j,2}

	// Interval I_{k,2}: P_k delivers m4, sends m7 to P_j (causal [m4 m7]),
	// delivers m6, checkpoints C_{k,2}.
	if err := b.Deliver(m4); err != nil {
		return nil, err
	}
	m7 := b.Send(Pk, Pj)
	if err := b.Deliver(m6); err != nil {
		return nil, err
	}
	b.Checkpoint(Pk, model.KindBasic, nil) // C_{k,2}

	// Interval I_{i,3} closes with C_{i,3} (m5 was sent in it above).
	b.Checkpoint(Pi, model.KindBasic, nil) // C_{i,3}

	// Interval I_{j,3}: P_j delivers m7 and checkpoints C_{j,3}.
	if err := b.Deliver(m7); err != nil {
		return nil, err
	}
	b.Checkpoint(Pj, model.KindBasic, nil) // C_{j,3}

	// Interval I_{k,3}: close with C_{k,3} so the figure has the same
	// checkpoint counts as the paper's drawing.
	b.Checkpoint(Pk, model.KindBasic, nil) // C_{k,3} (empty interval)

	return b.Finalize()
}
