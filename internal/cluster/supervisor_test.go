package cluster_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/cluster"
	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/transport"
	"github.com/rdt-go/rdt/internal/vtime"
)

// injectCrash is the fault injector of the supervised suite: it picks a
// seeded victim and fail-stops it, the way an external failure would.
// The test bodies never call Crash or Recover themselves — healing is
// the supervisor's job.
func injectCrash(t *testing.T, c *cluster.Cluster, seed int64) int {
	t.Helper()
	victim := rand.New(rand.NewSource(seed)).Intn(c.N())
	if err := c.Node(victim).Crash(); err != nil {
		t.Fatalf("inject crash of P%d: %v", victim, err)
	}
	return victim
}

// pump advances a virtual clock in fixed steps until cond holds, with a
// tiny real yield per step so goroutines the advance woke (the monitor
// draining its tick) get scheduled. It replaces the wall-clock poll
// loops this file used to have: the waiting is now virtual, so the test
// burns real time only on actual work.
func pump(t *testing.T, v *vtime.Virtual, step time.Duration, cond func() bool, what string) {
	t.Helper()
	const maxSteps = 100000
	for i := 0; i < maxSteps; i++ {
		if cond() {
			return
		}
		v.Advance(step)
		time.Sleep(50 * time.Microsecond)
	}
	t.Fatalf("%s: not reached after %d virtual steps of %v", what, maxSteps, step)
}

// TestSupervisedChaosSelfHeals is the self-healing matrix: a supervised
// cluster over the full chaos stack loses a process to an injected
// crash; the supervisor must detect it from the heartbeat probes, drive
// the recovery autonomously, and hand back a live incarnation 2 whose
// pattern is again RDT — with zero manual Crash/Recover orchestration in
// the test body.
func TestSupervisedChaosSelfHeals(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const n = 4
			reg := obs.NewRegistry()
			tracer := obs.NewTracer(4096)
			rel1, _ := chaosTransport(seed, chaosProbs, reg)
			app := newCounterApp(n)
			c1, err := cluster.New(cluster.Config{
				N:           n,
				Protocol:    core.KindBHMR,
				Transport:   rel1,
				Snapshot:    app.snapshot,
				Handler:     app.handler,
				LogPayloads: true,
				Obs:         reg,
				Tracer:      tracer,
			})
			if err != nil {
				t.Fatalf("new: %v", err)
			}

			recovered := make(chan *cluster.RecoverResult, 1)
			sup, err := cluster.Supervise(c1, cluster.SupervisorConfig{
				Interval: 2 * time.Millisecond,
				// The failure this test injects is a crash, detected via
				// ErrCrashed regardless of gap size; a generous MinGap
				// keeps scheduler stalls on loaded CI runners from
				// triggering a spurious timeout failover of the healthy
				// second incarnation.
				MinGap:       time.Second,
				MaxAttempts:  3,
				Backoff:      2 * time.Millisecond,
				Seed:         seed,
				DrainTimeout: 10 * time.Second,
				Options: func(incarnation, attempt int) cluster.RecoverOptions {
					rel, _ := chaosTransport(seed+1000*int64(incarnation)+int64(attempt), chaosProbs, reg)
					return cluster.RecoverOptions{
						Store:     storage.NewMemory(),
						Transport: rel,
						Install:   func(cp storage.Checkpoint) { app.install(cp.Proc, cp.State) },
					}
				},
				OnRecover: func(res *cluster.RecoverResult) { recovered <- res },
				OnEscalate: func(err error) {
					t.Errorf("unexpected escalation: %v", err)
				},
			})
			if err != nil {
				t.Fatalf("supervise: %v", err)
			}
			defer sup.Stop()

			// Incarnation 1 runs under chaos with checkpoints, then loses a
			// seeded victim mid-traffic: sends racing the crash may fail
			// with ErrCrashed/ErrStopped, which is exactly what an
			// application sees during a real failover.
			for round := 0; round < 3; round++ {
				for proc := 0; proc < n; proc++ {
					if err := c1.Node(proc).Send((proc+1)%n, []byte{byte(2*round + 1), byte(proc)}); err != nil {
						t.Fatalf("send: %v", err)
					}
				}
				if err := c1.Node(round % n).Checkpoint(); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			}
			c1.Quiesce()
			victim := injectCrash(t, c1, seed)
			for proc := 0; proc < n; proc++ {
				if proc == victim {
					continue
				}
				// Best-effort traffic into the failover window.
				_ = c1.Node(proc).Send(victim, []byte{251, byte(proc)})
			}

			var res *cluster.RecoverResult
			select {
			case res = <-recovered:
			case <-time.After(30 * time.Second):
				t.Fatal("supervisor did not self-heal within 30s")
			}
			if got := sup.Incarnation(); got != 2 {
				t.Fatalf("incarnation = %d, want 2", got)
			}
			c2 := sup.Cluster()
			if c2 != res.Cluster || c2 == c1 {
				t.Fatal("supervisor did not adopt the recovered incarnation")
			}
			consistent, err := rgraph.IsConsistent(res.Pattern, res.Plan.Line)
			if err != nil {
				t.Fatalf("consistency: %v", err)
			}
			if !consistent {
				t.Fatalf("recovery line %v is not consistent", res.Plan.Line)
			}

			// Incarnation 2 is live and still supervised: drive fresh
			// traffic through it and verify its own pattern.
			const rounds2 = 2
			for round := 0; round < rounds2; round++ {
				for proc := 0; proc < n; proc++ {
					if err := c2.Node(proc).Send((proc+3)%n, []byte{byte(2*round + 7), 100 + byte(proc)}); err != nil {
						t.Fatalf("send in incarnation 2: %v", err)
					}
				}
			}
			c2.Quiesce()
			sup.Stop()
			pattern2, err := c2.Stop()
			if err != nil {
				t.Fatalf("stop incarnation 2: %v", err)
			}
			if got, want := len(pattern2.Messages), len(res.Replayed)+rounds2*n; got < want {
				t.Errorf("incarnation 2 delivered %d messages, want >= %d", got, want)
			}
			rep, err := rgraph.CheckRDT(pattern2, 2)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if !rep.RDT {
				t.Fatalf("incarnation 2 violated RDT: %v", rep.Violations)
			}

			if got := reg.Counter("rdt_supervisor_suspicions_total", "reason", cluster.SuspectCrash).Value(); got < 1 {
				t.Errorf("crash suspicions = %d, want >= 1", got)
			}
			if got := reg.Counter("rdt_supervisor_recoveries_total", "outcome", "ok").Value(); got != 1 {
				t.Errorf("recoveries{ok} = %d, want 1", got)
			}
			var sawSuspicion bool
			for _, ev := range tracer.Tail(tracer.Len()) {
				if ev.Type == obs.EventSuspicion && ev.Proc == victim {
					sawSuspicion = true
				}
			}
			if !sawSuspicion {
				t.Errorf("trace has no suspicion event for victim P%d", victim)
			}
		})
	}
}

// TestSupervisorDetectsStalledNode: a process whose handler wedges keeps
// accepting probes but never acks them — only the accrual timeout can
// see that. The supervisor must suspect it, fail-stop it itself, and
// recover; nothing in this test calls Crash or Recover.
func TestSupervisorDetectsStalledNode(t *testing.T) {
	const n, victim = 3, 1
	v := vtime.NewVirtual(time.Time{})
	reg := obs.NewRegistry()
	release := make(chan struct{})
	var releaseOnce sync.Once
	app := newCounterApp(n)
	handler := func(node *cluster.Node, from int, payload []byte) {
		if node.Proc() == victim && len(payload) == 1 && payload[0] == 0xee {
			<-release // wedged: the node goroutine is stuck right here
		}
		app.handler(node, from, payload)
	}
	c1, err := cluster.New(cluster.Config{
		N:           n,
		Protocol:    core.KindBHMR,
		Snapshot:    app.snapshot,
		Handler:     handler,
		LogPayloads: true,
		Obs:         reg,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	recovered := make(chan *cluster.RecoverResult, 1)
	sup, err := cluster.Supervise(c1, cluster.SupervisorConfig{
		Interval:     3 * time.Millisecond,
		MinGap:       60 * time.Millisecond,
		Phi:          5,
		ConfirmTicks: 2,
		Backoff:      time.Millisecond,
		DrainTimeout: 5 * time.Second,
		Clock:        v,
		OnRecover:    func(res *cluster.RecoverResult) { recovered <- res },
		OnEscalate:   func(err error) { t.Errorf("unexpected escalation: %v", err) },
	})
	if err != nil {
		t.Fatalf("supervise: %v", err)
	}
	defer sup.Stop()
	defer releaseOnce.Do(func() { close(release) })

	// Background traffic proves healthy nodes stay unsuspected while the
	// victim is wedged.
	if err := c1.Node(0).Send(2, []byte{1}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := c1.Node(0).Send(victim, []byte{0xee}); err != nil {
		t.Fatalf("send stall marker: %v", err)
	}

	suspicions := reg.Counter("rdt_supervisor_suspicions_total", "reason", cluster.SuspectTimeout)
	pump(t, v, 3*time.Millisecond, func() bool { return suspicions.Value() >= 1 },
		"timeout suspicions")
	// The failover is now fail-stopping the victim, which waits for the
	// wedged handler to return: unwedge it so the crash can complete —
	// in-process fail-stop cannot reap a stuck goroutine.
	releaseOnce.Do(func() { close(release) })

	var healed bool
	pump(t, v, 3*time.Millisecond, func() bool {
		select {
		case <-recovered:
			healed = true
		default:
		}
		return healed
	}, "autonomous recovery from the stall")
	if got := sup.Incarnation(); got != 2 {
		t.Fatalf("incarnation = %d, want 2", got)
	}
	if got := reg.Counter("rdt_supervisor_recoveries_total", "outcome", "ok").Value(); got != 1 {
		t.Errorf("recoveries{ok} = %d, want 1", got)
	}
	sup.Stop()
	if _, err := sup.Cluster().Stop(); err != nil {
		t.Fatalf("stop incarnation 2: %v", err)
	}
}

// TestSupervisorNoFalsePositivesUnderDelay: heavy injected delay and
// reordering slow the messages, not the event loops — the adaptive
// detector must not suspect anyone, and every message still arrives
// exactly once.
func TestSupervisorNoFalsePositivesUnderDelay(t *testing.T) {
	const n = 3
	v := vtime.NewVirtual(time.Time{})
	reg := obs.NewRegistry()
	faulty := transport.WithFaults(transport.NewLocal(time.Millisecond), transport.FaultConfig{
		Seed:    7,
		Default: transport.FaultProbs{Reorder: 0.8, MaxExtraDelay: 15 * time.Millisecond},
	})
	counts := newDeliveryCount()
	c, err := cluster.New(cluster.Config{
		N:           n,
		Protocol:    core.KindBHMR,
		Transport:   faulty,
		Handler:     counts.handler,
		LogPayloads: true,
		Obs:         reg,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	sup, err := cluster.Supervise(c, cluster.SupervisorConfig{
		Interval:     3 * time.Millisecond,
		MinGap:       150 * time.Millisecond,
		ConfirmTicks: 2,
		Clock:        v,
		OnRecover: func(*cluster.RecoverResult) {
			t.Error("unexpected autonomous recovery of a healthy cluster")
		},
		OnEscalate: func(err error) { t.Errorf("unexpected escalation: %v", err) },
	})
	if err != nil {
		t.Fatalf("supervise: %v", err)
	}
	defer sup.Stop()

	want := make(map[string]bool)
	for round := 0; round < 20; round++ {
		for proc := 0; proc < n; proc++ {
			payload := []byte{byte(2*round + 1), byte(proc)}
			if err := c.Node(proc).Send((proc+1)%n, payload); err != nil {
				t.Fatalf("send: %v", err)
			}
			want[string(payload)] = true
		}
		// Many virtual probe ticks per round, a sliver of real time for
		// the (real-clock) transport to move the messages.
		v.Advance(10 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	c.Quiesce()
	sup.Stop()

	for _, reason := range []string{cluster.SuspectCrash, cluster.SuspectTimeout, cluster.SuspectUnreachable} {
		if got := reg.Counter("rdt_supervisor_suspicions_total", "reason", reason).Value(); got != 0 {
			t.Errorf("suspicions{%s} = %d under delay-only faults, want 0", reason, got)
		}
	}
	if got := sup.Incarnation(); got != 1 {
		t.Errorf("incarnation = %d, want 1 (no failover)", got)
	}
	counts.assertExactlyOnce(t, want)
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestSupervisorRetriesThenRecovers: the first recovery attempt fails
// (its transport is already closed), the second succeeds — the backoff
// loop must absorb the failure and still heal.
func TestSupervisorRetriesThenRecovers(t *testing.T) {
	const n = 2
	reg := obs.NewRegistry()
	app := newCounterApp(n)
	c1, err := cluster.New(cluster.Config{
		N:           n,
		Protocol:    core.KindBHMR,
		Snapshot:    app.snapshot,
		Handler:     app.handler,
		LogPayloads: true,
		Obs:         reg,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	var mu sync.Mutex
	var attempts []int
	recovered := make(chan *cluster.RecoverResult, 1)
	sup, err := cluster.Supervise(c1, cluster.SupervisorConfig{
		Interval:    2 * time.Millisecond,
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		Options: func(incarnation, attempt int) cluster.RecoverOptions {
			mu.Lock()
			attempts = append(attempts, attempt)
			mu.Unlock()
			if attempt == 1 {
				broken := transport.NewLocal(0)
				broken.Close()
				return cluster.RecoverOptions{Transport: broken}
			}
			return cluster.RecoverOptions{Store: storage.NewMemory()}
		},
		OnRecover:  func(res *cluster.RecoverResult) { recovered <- res },
		OnEscalate: func(err error) { t.Errorf("unexpected escalation: %v", err) },
	})
	if err != nil {
		t.Fatalf("supervise: %v", err)
	}
	defer sup.Stop()

	if err := c1.Node(0).Send(1, []byte{1}); err != nil {
		t.Fatalf("send: %v", err)
	}
	c1.Quiesce()
	injectCrash(t, c1, 11)

	select {
	case <-recovered:
	case <-time.After(30 * time.Second):
		t.Fatal("supervisor did not recover within 30s")
	}
	mu.Lock()
	gotAttempts := append([]int(nil), attempts...)
	mu.Unlock()
	if len(gotAttempts) != 2 || gotAttempts[0] != 1 || gotAttempts[1] != 2 {
		t.Errorf("attempts = %v, want [1 2]", gotAttempts)
	}
	if got := reg.Counter("rdt_supervisor_recoveries_total", "outcome", "retry").Value(); got != 1 {
		t.Errorf("recoveries{retry} = %d, want 1", got)
	}
	if got := reg.Counter("rdt_supervisor_recoveries_total", "outcome", "ok").Value(); got != 1 {
		t.Errorf("recoveries{ok} = %d, want 1", got)
	}
	sup.Stop()
	if _, err := sup.Cluster().Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestSupervisorEscalates: when every attempt fails, the supervisor must
// burn exactly MaxAttempts, escalate with the last error, and stop.
func TestSupervisorEscalates(t *testing.T) {
	const n = 2
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	app := newCounterApp(n)
	c1, err := cluster.New(cluster.Config{
		N:           n,
		Protocol:    core.KindBHMR,
		Snapshot:    app.snapshot,
		Handler:     app.handler,
		LogPayloads: true,
		Obs:         reg,
		Tracer:      tracer,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	escalated := make(chan error, 1)
	sup, err := cluster.Supervise(c1, cluster.SupervisorConfig{
		Interval:    2 * time.Millisecond,
		MaxAttempts: 2,
		Backoff:     time.Millisecond,
		Options: func(incarnation, attempt int) cluster.RecoverOptions {
			broken := transport.NewLocal(0)
			broken.Close()
			return cluster.RecoverOptions{Transport: broken}
		},
		OnRecover:  func(*cluster.RecoverResult) { t.Error("unexpected recovery from broken options") },
		OnEscalate: func(err error) { escalated <- err },
	})
	if err != nil {
		t.Fatalf("supervise: %v", err)
	}
	defer sup.Stop()

	injectCrash(t, c1, 13)

	var lastErr error
	select {
	case lastErr = <-escalated:
	case <-time.After(30 * time.Second):
		t.Fatal("supervisor did not escalate within 30s")
	}
	if lastErr == nil {
		t.Error("escalation carried a nil error")
	}
	select {
	case <-sup.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not stop after escalating")
	}
	if got := reg.Counter("rdt_supervisor_recoveries_total", "outcome", "retry").Value(); got != 2 {
		t.Errorf("recoveries{retry} = %d, want 2 (MaxAttempts)", got)
	}
	if got := reg.Counter("rdt_supervisor_recoveries_total", "outcome", "escalated").Value(); got != 1 {
		t.Errorf("recoveries{escalated} = %d, want 1", got)
	}
	var sawEscalation bool
	for _, ev := range tracer.Tail(tracer.Len()) {
		if ev.Type == obs.EventEscalation {
			sawEscalation = true
		}
	}
	if !sawEscalation {
		t.Error("trace has no escalation event")
	}
	if got := sup.Incarnation(); got != 1 {
		t.Errorf("incarnation = %d after escalation, want 1", got)
	}
}

// TestSuperviseValidation: the entry conditions.
func TestSuperviseValidation(t *testing.T) {
	if _, err := cluster.Supervise(nil, cluster.SupervisorConfig{}); err == nil {
		t.Error("supervising a nil cluster should fail")
	}
	noLog, err := cluster.New(cluster.Config{N: 2, Protocol: core.KindBHMR})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if _, err := cluster.Supervise(noLog, cluster.SupervisorConfig{}); err == nil {
		t.Error("supervising without LogPayloads should fail")
	}
	if _, err := noLog.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if _, err := cluster.Supervise(noLog, cluster.SupervisorConfig{}); err == nil {
		t.Error("supervising a stopped cluster should fail")
	}
}

// TestSupervisorExternalStop: when the owner shuts the cluster down, the
// supervisor notices on its next probe and exits instead of "recovering"
// a deliberate shutdown.
func TestSupervisorExternalStop(t *testing.T) {
	c, err := cluster.New(cluster.Config{N: 2, Protocol: core.KindBHMR, LogPayloads: true})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	sup, err := cluster.Supervise(c, cluster.SupervisorConfig{
		Interval:   2 * time.Millisecond,
		OnRecover:  func(*cluster.RecoverResult) { t.Error("recovery after external stop") },
		OnEscalate: func(err error) { t.Errorf("escalation after external stop: %v", err) },
	})
	if err != nil {
		t.Fatalf("supervise: %v", err)
	}
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	select {
	case <-sup.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not exit after the cluster was stopped")
	}
	sup.Stop() // idempotent after the monitor already exited
}
