package cluster

import (
	"fmt"

	"github.com/rdt-go/rdt/internal/recovery"
)

// Resume starts the next incarnation of a computation after a rollback:
// a fresh cluster (the caller's application must already have reinstalled
// the state snapshots selected by the recovery line, via Restore) into
// which the in-transit messages of the previous incarnation are re-sent
// from the message log.
//
// Incarnation semantics follow standard rollback-recovery practice: the
// new incarnation starts a new checkpoint and communication pattern (its
// indexes restart at the initial checkpoints) and a fresh protocol state.
// That is safe — protocol knowledge only ever *reduces* forced
// checkpoints, never enables a violation — and correct, because the
// recovery line is consistent: the only channel state crossing the line
// is the in-transit messages, which are replayed here as the first sends
// of the new incarnation. The caller should give the new cluster its own
// checkpoint store (or GC the old one to the line first).
//
// Cluster.Recover packages the whole crash → line → restore → Resume
// sequence; Resume remains the building block for applications that need
// to drive the steps themselves.
func Resume(cfg Config, replay []recovery.ReplayMessage) (*Cluster, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("recovery: resume: %w", err)
	}
	for _, m := range replay {
		node := c.Node(m.From)
		if err := node.Send(m.To, m.Payload); err != nil {
			_, _ = c.Stop()
			return nil, fmt.Errorf("recovery: replay message %d: %w", m.ID, err)
		}
		// Send only enqueues; the transport-level send (and its jitter
		// draw) happens on the sender's goroutine. Replay messages come
		// from different senders, so without a barrier the transport sees
		// them in goroutine-scheduling order and replay timing stops
		// being reproducible. Synchronize with each sender before
		// enqueueing the next message to pin the replay order.
		if _, err := node.Status(); err != nil {
			_, _ = c.Stop()
			return nil, fmt.Errorf("recovery: replay message %d: %w", m.ID, err)
		}
	}
	// The new incarnation's registry accounts for the replayed channel
	// state (a no-op when observability is off).
	cfg.Obs.Counter("rdt_replayed_messages_total").Add(int64(len(replay)))
	return c, nil
}
