package cluster

import (
	"testing"

	"github.com/rdt-go/rdt/internal/core"
)

// bhmrPiggyback returns a full BHMR piggyback for an n-process system,
// after a little traffic so the structures are not all-zero.
func bhmrPiggyback(t *testing.T, n int) core.Piggyback {
	t.Helper()
	sender, err := core.New(core.KindBHMR, 0, n, nil)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	peer, err := core.New(core.KindBHMR, 1, n, nil)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	pb0, _ := peer.OnSend(0)
	peer.TakeBasicCheckpoint()
	sender.OnArrival(1, pb0)
	pb, _ := sender.OnSend(2)
	return pb
}

// TestCodecAllocBudget pins the per-message allocation cost of the wire
// codec at n=8: encoding allocates only the output frame, and decoding
// into a reused scratch allocates only the payload copy.
func TestCodecAllocBudget(t *testing.T) {
	pb := bhmrPiggyback(t, 8)
	payload := []byte("hello")

	// Warm the encode buffer pool.
	if _, err := encodeMsg(0, 1, payload, pb); err != nil {
		t.Fatalf("encode: %v", err)
	}
	encAllocs := testing.AllocsPerRun(200, func() {
		if _, err := encodeMsg(0, 1, payload, pb); err != nil {
			t.Fatalf("encode: %v", err)
		}
	})
	// One alloc for the exact-size frame; the builder scratch is pooled.
	// (sync.Pool is emptied by the GC AllocsPerRun forces between runs, so
	// allow the refill alloc too.)
	if encAllocs > 2 {
		t.Errorf("encodeMsg allocs/op = %v, want <= 2", encAllocs)
	}

	frame, err := encodeMsg(0, 1, payload, pb)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	var scratch pbScratch
	if _, _, _, _, err := decodeMsgInto(frame, &scratch); err != nil {
		t.Fatalf("decode: %v", err)
	}
	decAllocs := testing.AllocsPerRun(200, func() {
		if _, _, _, _, err := decodeMsgInto(frame, &scratch); err != nil {
			t.Fatalf("decode: %v", err)
		}
	})
	// Only the payload copy, which handlers may retain.
	if decAllocs > 1 {
		t.Errorf("decodeMsgInto allocs/op = %v, want <= 1", decAllocs)
	}
}

// TestDecodeMsgIntoMatchesFresh verifies scratch-reusing decodes produce
// exactly what allocating decodes produce, across differently-shaped
// frames sharing one scratch.
func TestDecodeMsgIntoMatchesFresh(t *testing.T) {
	frames := [][]byte{}
	for _, build := range []func() core.Piggyback{
		func() core.Piggyback { return bhmrPiggyback(t, 8) },
		func() core.Piggyback { return bhmrPiggyback(t, 3) },
		func() core.Piggyback {
			inst, err := core.New(core.KindFDAS, 2, 5, nil)
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			pb, _ := inst.OnSend(0)
			return pb
		},
		func() core.Piggyback {
			inst, err := core.New(core.KindBCS, 1, 4, nil)
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			inst.TakeBasicCheckpoint()
			pb, _ := inst.OnSend(0)
			return pb
		},
	} {
		frame, err := encodeMsg(3, 9, []byte("xyz"), build())
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		frames = append(frames, frame)
	}

	var scratch pbScratch
	for i, frame := range frames {
		wFrom, wHandle, wPayload, want, wErr := decodeMsg(frame)
		gFrom, gHandle, gPayload, got, gErr := decodeMsgInto(frame, &scratch)
		if wErr != nil || gErr != nil {
			t.Fatalf("frame %d: decode errors %v / %v", i, wErr, gErr)
		}
		if wFrom != gFrom || wHandle != gHandle || string(wPayload) != string(gPayload) {
			t.Errorf("frame %d: header mismatch", i)
		}
		if !want.TDV.Equal(got.TDV) || want.SN != got.SN {
			t.Errorf("frame %d: TDV/SN mismatch: %v/%d vs %v/%d", i, want.TDV, want.SN, got.TDV, got.SN)
		}
		if want.Simple.String() != got.Simple.String() {
			t.Errorf("frame %d: simple mismatch: %v vs %v", i, want.Simple, got.Simple)
		}
		switch {
		case (want.Causal == nil) != (got.Causal == nil):
			t.Errorf("frame %d: causal presence mismatch", i)
		case want.Causal != nil && !want.Causal.Equal(got.Causal):
			t.Errorf("frame %d: causal mismatch", i)
		}
	}
}
