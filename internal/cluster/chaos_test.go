package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/cluster"
	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/transport"
)

// chaosSeeds is the fixed seed matrix of the chaos suite: every run is
// deterministic in the fault schedule it draws.
var chaosSeeds = []int64{1, 7, 42}

// chaosProbs is the default chaos mix: every failure mode at once.
var chaosProbs = transport.FaultProbs{
	Drop:          0.15,
	Duplicate:     0.15,
	Reorder:       0.2,
	SendError:     0.05,
	MaxExtraDelay: 2 * time.Millisecond,
}

// chaosTransport builds the canonical robust stack for a test:
// Reliable(WithFaults(Local)). The cluster adds WithObs outermost.
func chaosTransport(seed int64, probs transport.FaultProbs, reg *obs.Registry) (*transport.ReliableTransport, *transport.Faulty) {
	faulty := transport.WithFaults(transport.NewLocal(time.Millisecond), transport.FaultConfig{
		Seed:    seed,
		Default: probs,
		Obs:     reg,
	})
	rel := transport.Reliable(faulty, transport.ReliableConfig{
		Seed:       seed,
		MaxRetries: 100,
		Backoff:    time.Millisecond,
		MaxBackoff: 10 * time.Millisecond,
		Obs:        reg,
	})
	return rel, faulty
}

// deliveryCount tallies deliveries per payload so the exactly-once
// property is checkable end to end.
type deliveryCount struct {
	mu  sync.Mutex
	got map[string]int
}

func newDeliveryCount() *deliveryCount {
	return &deliveryCount{got: make(map[string]int)}
}

func (d *deliveryCount) handler(_ *cluster.Node, _ int, payload []byte) {
	d.mu.Lock()
	d.got[string(payload)]++
	d.mu.Unlock()
}

// assertExactlyOnce fails unless every payload in want was delivered
// exactly once and nothing else was delivered.
func (d *deliveryCount) assertExactlyOnce(t *testing.T, want map[string]bool) {
	t.Helper()
	d.mu.Lock()
	defer d.mu.Unlock()
	for p := range want {
		if n := d.got[p]; n != 1 {
			t.Errorf("payload %x delivered %d times, want 1", p, n)
		}
	}
	for p := range d.got {
		if !want[p] {
			t.Errorf("unexpected delivery %x", p)
		}
	}
}

// TestChaosExactlyOnceAndRDT is the tentpole property: a 4-process
// cluster over a link that drops, duplicates, reorders, and fails sends
// still delivers every message exactly once (via the reliable layer),
// and the recorded pattern still satisfies RDT with correct TDVs.
func TestChaosExactlyOnceAndRDT(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const n, rounds = 4, 6
			reg := obs.NewRegistry()
			rel, faulty := chaosTransport(seed, chaosProbs, reg)
			counts := newDeliveryCount()
			c, err := cluster.New(cluster.Config{
				N:         n,
				Protocol:  core.KindBHMR,
				Transport: rel,
				Handler:   counts.handler,
				Obs:       reg,
			})
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			want := make(map[string]bool)
			for round := 0; round < rounds; round++ {
				for proc := 0; proc < n; proc++ {
					for _, to := range []int{(proc + 1) % n, (proc + 2) % n} {
						payload := []byte{byte(round), byte(proc), byte(to)}
						if err := c.Node(proc).Send(to, payload); err != nil {
							t.Fatalf("send: %v", err)
						}
						want[string(payload)] = true
					}
				}
				if err := c.Node(round % n).Checkpoint(); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := c.QuiesceCtx(ctx); err != nil {
				t.Fatalf("quiesce under chaos: %v (lost deliveries?)", err)
			}
			pattern, err := c.Stop()
			if err != nil {
				t.Fatalf("stop: %v", err)
			}

			counts.assertExactlyOnce(t, want)
			if got := len(pattern.Messages); got != len(want) {
				t.Errorf("pattern has %d messages, want %d", got, len(want))
			}
			rep, err := rgraph.CheckRDT(pattern, 4)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if !rep.RDT {
				t.Fatalf("pattern under chaos violated RDT: %v", rep.Violations)
			}
			if err := rgraph.VerifyRecordedTDVs(pattern); err != nil {
				t.Fatalf("TDVs: %v", err)
			}

			var injected int64
			for _, v := range faulty.Injected() {
				injected += v
			}
			if injected == 0 {
				t.Error("chaos run injected no faults — the suite tested nothing")
			}
		})
	}
}

// TestChaosWithoutReliableTimesOut: on a lossy link without the reliable
// layer, a dropped frame leaks an outstanding count; QuiesceCtx must
// degrade that to a timeout, and StopLossy must report the message lost.
func TestChaosWithoutReliableTimesOut(t *testing.T) {
	faulty := transport.WithFaults(transport.NewLocal(0), transport.FaultConfig{
		Seed:  3,
		Links: map[transport.Link]transport.FaultProbs{{From: 0, To: 1}: {Drop: 1}},
	})
	c, err := cluster.New(cluster.Config{N: 2, Protocol: core.KindBHMR, Transport: faulty})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := c.Node(0).Send(1, []byte("into the void")); err != nil {
		t.Fatalf("send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := c.QuiesceCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("quiesce over a dead link = %v, want deadline exceeded", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	pattern, lost, err := c.StopLossy(ctx2)
	if err != nil {
		t.Fatalf("stop lossy: %v", err)
	}
	if len(lost) != 1 || lost[0].From != 0 || lost[0].To != 1 {
		t.Fatalf("lost = %+v, want the one dropped 0->1 message", lost)
	}
	if len(pattern.Messages) != 0 {
		t.Errorf("pattern has %d delivered messages, want 0", len(pattern.Messages))
	}
}

// TestCrashRestart: a crashed process rejects operations, a restarted one
// works again, and messages that died with the crash surface as lost.
func TestCrashRestart(t *testing.T) {
	counts := newDeliveryCount()
	c, err := cluster.New(cluster.Config{N: 2, Protocol: core.KindBHMR, Handler: counts.handler})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := c.Node(1).Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := c.Node(1).Crash(); !errors.Is(err, cluster.ErrCrashed) {
		t.Errorf("second crash = %v, want ErrCrashed", err)
	}
	if err := c.Node(1).Send(0, nil); !errors.Is(err, cluster.ErrCrashed) {
		t.Errorf("send from crashed = %v, want ErrCrashed", err)
	}
	if _, err := c.Node(1).Status(); !errors.Is(err, cluster.ErrCrashed) {
		t.Errorf("status of crashed = %v, want ErrCrashed", err)
	}
	if got := c.Crashed(); len(got) != 1 || got[0] != 1 {
		t.Errorf("crashed = %v, want [1]", got)
	}
	// A message into the crash is consumed and lost, not left hanging.
	if err := c.Node(0).Send(1, []byte("dies")); err != nil {
		t.Fatalf("send: %v", err)
	}
	c.Quiesce()

	if err := c.Restart(0); !errors.Is(err, cluster.ErrNotCrashed) {
		t.Errorf("restart of running = %v, want ErrNotCrashed", err)
	}
	if err := c.Restart(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if len(c.Crashed()) != 0 {
		t.Errorf("crashed = %v after restart, want none", c.Crashed())
	}
	if err := c.Node(0).Send(1, []byte("lives")); err != nil {
		t.Fatalf("send after restart: %v", err)
	}
	c.Quiesce()

	pattern, lost, err := c.StopLossy(context.Background())
	if err != nil {
		t.Fatalf("stop lossy: %v", err)
	}
	if len(lost) != 1 {
		t.Fatalf("lost = %+v, want exactly the pre-restart message", lost)
	}
	if len(pattern.Messages) != 1 {
		t.Errorf("pattern has %d messages, want 1", len(pattern.Messages))
	}
	counts.assertExactlyOnce(t, map[string]bool{"lives": true})
}

// TestCrashRecoverEndToEnd drives the full in-process loop: run, crash,
// Recover — recovery line from stored vectors, state snapshots
// reinstalled, the message that died with the crash replayed into the
// new incarnation — and the new incarnation is again live and RDT.
func TestCrashRecoverEndToEnd(t *testing.T) {
	const n = 4
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1024)
	app := newCounterApp(n)
	c1, err := cluster.New(cluster.Config{
		N:           n,
		Protocol:    core.KindBHMR,
		Snapshot:    app.snapshot,
		Handler:     app.handler,
		LogPayloads: true,
		Obs:         reg,
		Tracer:      tracer,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for round := 0; round < 4; round++ {
		for proc := 0; proc < n; proc++ {
			if err := c1.Node(proc).Send((proc+1)%n, []byte{byte(2*round + 1)}); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		c1.Quiesce()
		for proc := 0; proc < n; proc++ {
			if err := c1.Node(proc).Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}
	c1.Quiesce()

	// Process 2 dies; a message sent to it afterwards is lost, and the
	// sender checkpoints past the send, putting it inside the recovery
	// line — channel state the new incarnation must replay.
	if err := c1.Node(2).Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := c1.Node(0).Send(2, []byte{101}); err != nil {
		t.Fatalf("send into crash: %v", err)
	}
	c1.Quiesce()
	if err := c1.Node(0).Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	c1.Quiesce()

	inc2 := newDeliveryCount()
	res, err := c1.Recover(context.Background(), cluster.RecoverOptions{
		Install: func(cp storage.Checkpoint) { app.install(cp.Proc, cp.State) },
	})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	c2 := res.Cluster

	// The line is a consistent cut of the old incarnation's pattern.
	consistent, err := rgraph.IsConsistent(res.Pattern, res.Plan.Line)
	if err != nil {
		t.Fatalf("consistency: %v", err)
	}
	if !consistent {
		t.Fatalf("recovery line %v is not consistent", res.Plan.Line)
	}
	if len(res.Lost) != 1 {
		t.Fatalf("lost = %+v, want the one message that died with P2", res.Lost)
	}
	found := false
	for _, rm := range res.Replayed {
		if rm.To == 2 && len(rm.Payload) == 1 && rm.Payload[0] == 101 {
			found = true
		}
	}
	if !found {
		t.Fatalf("replay set %+v does not re-send the lost message", res.Replayed)
	}
	if got := reg.Counter("rdt_recoveries_e2e_total", "protocol", "bhmr").Value(); got != 1 {
		t.Errorf("rdt_recoveries_e2e_total = %d, want 1", got)
	}

	// The new incarnation is live: drive it and check its own trace.
	// (The counting handler was not carried over — c2 inherited app's —
	// so tally via the app counters' monotone growth instead.)
	_ = inc2
	for proc := 0; proc < n; proc++ {
		if err := c2.Node(proc).Send((proc+3)%n, []byte{byte(2 * proc)}); err != nil {
			t.Fatalf("send in incarnation 2: %v", err)
		}
	}
	c2.Quiesce()
	pattern2, err := c2.Stop()
	if err != nil {
		t.Fatalf("stop 2: %v", err)
	}
	if len(pattern2.Messages) < len(res.Replayed)+n {
		t.Errorf("incarnation 2 delivered %d messages, want >= %d",
			len(pattern2.Messages), len(res.Replayed)+n)
	}
	rep, err := rgraph.CheckRDT(pattern2, 2)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.RDT {
		t.Fatalf("incarnation 2 violated RDT: %v", rep.Violations)
	}

	// The crash and the recovery left their marks in the event trace.
	var sawCrash, sawRecovery bool
	for _, ev := range tracer.Tail(tracer.Len()) {
		switch ev.Type {
		case obs.EventCrash:
			sawCrash = true
		case obs.EventRecovery:
			sawRecovery = true
		}
	}
	if !sawCrash || !sawRecovery {
		t.Errorf("trace missing lifecycle events: crash=%v recovery=%v", sawCrash, sawRecovery)
	}
}

// TestChaosCrashRecover composes everything: chaos on the wire, a crash
// mid-run, and a full recovery into a second chaotic incarnation. Every
// replayed message must arrive exactly once in incarnation 2, whose
// pattern is again RDT.
func TestChaosCrashRecover(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const n = 4
			rel1, _ := chaosTransport(seed, chaosProbs, nil)
			app := newCounterApp(n)
			c1, err := cluster.New(cluster.Config{
				N:           n,
				Protocol:    core.KindBHMR,
				Transport:   rel1,
				Snapshot:    app.snapshot,
				Handler:     app.handler,
				LogPayloads: true,
			})
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			for round := 0; round < 3; round++ {
				for proc := 0; proc < n; proc++ {
					if err := c1.Node(proc).Send((proc+1)%n, []byte{byte(2*round + 1), byte(proc)}); err != nil {
						t.Fatalf("send: %v", err)
					}
				}
				if err := c1.Node(round % n).Checkpoint(); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := c1.QuiesceCtx(ctx); err != nil {
				t.Fatalf("quiesce: %v", err)
			}
			if err := c1.Node(1).Crash(); err != nil {
				t.Fatalf("crash: %v", err)
			}

			rel2, _ := chaosTransport(seed+1000, chaosProbs, nil)
			res, err := c1.Recover(ctx, cluster.RecoverOptions{
				Transport: rel2,
				Install:   func(cp storage.Checkpoint) { app.install(cp.Proc, cp.State) },
			})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			c2 := res.Cluster
			if err := c2.QuiesceCtx(ctx); err != nil {
				t.Fatalf("quiesce 2: %v", err)
			}
			pattern2, lost2, err := c2.StopLossy(ctx)
			if err != nil {
				t.Fatalf("stop 2: %v", err)
			}
			if len(lost2) != 0 {
				t.Errorf("incarnation 2 lost %d messages under the reliable stack", len(lost2))
			}
			// Exactly-once for the replayed channel state: each replayed
			// message appears exactly once in incarnation 2's pattern.
			replayed := len(res.Replayed)
			if got := len(pattern2.Messages); got != replayed {
				t.Errorf("incarnation 2 delivered %d messages, want %d replayed", got, replayed)
			}
			rep, err := rgraph.CheckRDT(pattern2, 4)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if !rep.RDT {
				t.Fatalf("incarnation 2 violated RDT: %v", rep.Violations)
			}
		})
	}
}

// failingStore wraps a store and fails every Put after a threshold.
type failingStore struct {
	storage.Store
	mu    sync.Mutex
	allow int
}

func (s *failingStore) Put(cp storage.Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.allow <= 0 {
		return errors.New("disk full")
	}
	s.allow--
	return s.Store.Put(cp)
}

// TestStoreErrorsSurfaced: a failing checkpoint store no longer fails
// silently — the error sink fires and rdt_store_errors_total counts it.
func TestStoreErrorsSurfaced(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var sunk []error
	c, err := cluster.New(cluster.Config{
		N:        2,
		Protocol: core.KindBHMR,
		Store:    &failingStore{Store: storage.NewMemory(), allow: 2}, // the two initial checkpoints
		Obs:      reg,
		OnError: func(err error) {
			mu.Lock()
			sunk = append(sunk, err)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := c.Node(0).Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	c.Quiesce()
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sunk) != 1 {
		t.Fatalf("error sink got %d errors, want 1: %v", len(sunk), sunk)
	}
	if got := reg.Counter("rdt_store_errors_total", "protocol", "bhmr").Value(); got != 1 {
		t.Errorf("rdt_store_errors_total = %d, want 1", got)
	}
}

// TestSendErrorsSurfaced: with an always-failing link and no reliable
// layer, the node goroutine routes the transport error to the sink
// instead of panicking, and the send becomes a lost message.
func TestSendErrorsSurfaced(t *testing.T) {
	faulty := transport.WithFaults(transport.NewLocal(0), transport.FaultConfig{
		Seed:    1,
		Default: transport.FaultProbs{SendError: 1},
	})
	var mu sync.Mutex
	var sunk []error
	c, err := cluster.New(cluster.Config{
		N:         2,
		Protocol:  core.KindBHMR,
		Transport: faulty,
		OnError: func(err error) {
			mu.Lock()
			sunk = append(sunk, err)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := c.Node(0).Send(1, []byte("never leaves")); err != nil {
		t.Fatalf("send: %v", err)
	}
	c.Quiesce()
	_, lost, err := c.StopLossy(context.Background())
	if err != nil {
		t.Fatalf("stop lossy: %v", err)
	}
	mu.Lock()
	if len(sunk) != 1 || !errors.Is(sunk[0], transport.ErrInjected) {
		t.Errorf("error sink got %v, want one ErrInjected", sunk)
	}
	mu.Unlock()
	if len(lost) != 1 {
		t.Errorf("lost = %+v, want the failed send", lost)
	}
}

// TestRepeatedCrashRecoverReusedStore drives the crash/recovery loop
// twice over ONE reused checkpoint store with GC on: recovery must purge
// the old incarnation's history completely (indexes restart at zero), so
// the second failure computes its line from the new incarnation's
// checkpoints only — no old-incarnation checkpoint may leak through and
// shadow them.
func TestRepeatedCrashRecoverReusedStore(t *testing.T) {
	const n = 3
	store := storage.NewMemory()
	app := newCounterApp(n)
	c1, err := cluster.New(cluster.Config{
		N:           n,
		Protocol:    core.KindBHMR,
		Store:       store,
		Snapshot:    app.snapshot,
		Handler:     app.handler,
		LogPayloads: true,
	})
	if err != nil {
		t.Fatalf("incarnation 1: %v", err)
	}
	drive := func(c *cluster.Cluster, mark byte) {
		t.Helper()
		for round := 0; round < 3; round++ {
			for proc := 0; proc < n; proc++ {
				if err := c.Node(proc).Send((proc+1)%n, []byte{byte(2*round + 1), mark, byte(proc)}); err != nil {
					t.Fatalf("send: %v", err)
				}
			}
			c.Quiesce()
			for proc := 0; proc < n; proc++ {
				if err := c.Node(proc).Checkpoint(); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			}
		}
		c.Quiesce()
	}
	recoverReusing := func(c *cluster.Cluster, victim int) *cluster.RecoverResult {
		t.Helper()
		if err := c.Node(victim).Crash(); err != nil {
			t.Fatalf("crash P%d: %v", victim, err)
		}
		res, err := c.Recover(context.Background(), cluster.RecoverOptions{
			Store:   store, // same store, reused by the next incarnation
			GC:      true,
			Install: func(cp storage.Checkpoint) { app.install(cp.Proc, cp.State) },
		})
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		consistent, err := rgraph.IsConsistent(res.Pattern, res.Plan.Line)
		if err != nil {
			t.Fatalf("consistency: %v", err)
		}
		if !consistent {
			t.Fatalf("recovery line %v is not consistent", res.Plan.Line)
		}
		// The reused store must hold exactly the new incarnation's initial
		// checkpoints: one per process, at index 0. Anything else is an
		// old-incarnation leak that would corrupt the next recovery.
		for proc := 0; proc < n; proc++ {
			indexes, err := store.Indexes(proc)
			if err != nil {
				t.Fatalf("indexes P%d: %v", proc, err)
			}
			if len(indexes) != 1 || indexes[0] != 0 {
				t.Fatalf("after recovery, store has indexes %v for P%d, want [0]", indexes, proc)
			}
		}
		return res
	}

	drive(c1, 'a')
	res1 := recoverReusing(c1, 1)
	c2 := res1.Cluster

	drive(c2, 'b')
	res2 := recoverReusing(c2, 2)
	c3 := res2.Cluster

	// The third incarnation is live and its own trace is clean.
	for proc := 0; proc < n; proc++ {
		if err := c3.Node(proc).Send((proc+2)%n, []byte{byte(2*proc + 1), 'c'}); err != nil {
			t.Fatalf("send in incarnation 3: %v", err)
		}
	}
	c3.Quiesce()
	pattern3, err := c3.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if got, want := len(pattern3.Messages), len(res2.Replayed)+n; got < want {
		t.Errorf("incarnation 3 delivered %d messages, want >= %d", got, want)
	}
	rep, err := rgraph.CheckRDT(pattern3, 2)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.RDT {
		t.Fatalf("incarnation 3 violated RDT: %v", rep.Violations)
	}
}

// TestCrashRestartThenRecover mixes the two repair paths: a crashed
// process is first brought back with Restart (its pre-crash sends stay
// lost), and a later crash is repaired with a full Recover — which must
// still compute a consistent line and replay the channel state across
// it, restart gap and all.
func TestCrashRestartThenRecover(t *testing.T) {
	const n = 3
	app := newCounterApp(n)
	c1, err := cluster.New(cluster.Config{
		N:           n,
		Protocol:    core.KindBHMR,
		Snapshot:    app.snapshot,
		Handler:     app.handler,
		LogPayloads: true,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for proc := 0; proc < n; proc++ {
		if err := c1.Node(proc).Send((proc+1)%n, []byte{1, byte(proc)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	c1.Quiesce()
	for proc := 0; proc < n; proc++ {
		if err := c1.Node(proc).Checkpoint(); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
	}
	c1.Quiesce()

	// Crash P1, lose a message into it, and repair with Restart only.
	if err := c1.Node(1).Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := c1.Node(0).Send(1, []byte{3, 0xaa}); err != nil {
		t.Fatalf("send into crash: %v", err)
	}
	c1.Quiesce()
	if err := c1.Restart(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	for proc := 0; proc < n; proc++ {
		if err := c1.Node(proc).Send((proc+2)%n, []byte{5, byte(proc)}); err != nil {
			t.Fatalf("send after restart: %v", err)
		}
	}
	c1.Quiesce()
	for proc := 0; proc < n; proc++ {
		if err := c1.Node(proc).Checkpoint(); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
	}
	c1.Quiesce()

	// Now a second failure, repaired the heavy way.
	if err := c1.Node(2).Crash(); err != nil {
		t.Fatalf("crash 2: %v", err)
	}
	res, err := c1.Recover(context.Background(), cluster.RecoverOptions{
		Install: func(cp storage.Checkpoint) { app.install(cp.Proc, cp.State) },
	})
	if err != nil {
		t.Fatalf("recover after restart: %v", err)
	}
	consistent, err := rgraph.IsConsistent(res.Pattern, res.Plan.Line)
	if err != nil {
		t.Fatalf("consistency: %v", err)
	}
	if !consistent {
		t.Fatalf("recovery line %v is not consistent", res.Plan.Line)
	}
	if len(res.Lost) == 0 {
		t.Error("the restart-gap message is not reported lost")
	}
	c2 := res.Cluster
	for proc := 0; proc < n; proc++ {
		if err := c2.Node(proc).Send((proc+1)%n, []byte{7, byte(proc)}); err != nil {
			t.Fatalf("send in incarnation 2: %v", err)
		}
	}
	c2.Quiesce()
	pattern2, err := c2.Stop()
	if err != nil {
		t.Fatalf("stop 2: %v", err)
	}
	rep, err := rgraph.CheckRDT(pattern2, 2)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.RDT {
		t.Fatalf("incarnation 2 violated RDT: %v", rep.Violations)
	}
}
