package cluster

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/vclock"
)

// The wire format of an application message with its protocol piggyback
// and the trace handle used to match send and delivery events. It is a
// hand-rolled binary layout (the hot path of the cluster runtime used to
// run through encoding/gob, which dominated the per-message allocation
// count):
//
//	magic 'R', version 0x02
//	uvarint from          — sending process
//	uvarint handle        — trace handle
//	uvarint sn            — BCS checkpoint sequence number
//	uvarint len(payload)  — application payload, raw bytes
//	uvarint len(tdv)      — dependency vector, one uvarint per entry
//	uvarint len(simple)   — simple array, bit-packed LSB-first
//	uvarint n             — causal-matrix dimension (0 = no matrix),
//	                        n*n cells bit-packed row-major LSB-first
//	uvarint trace         — causal trace id (0 = tracing off)
//	uvarint span          — sender's span id (0 = tracing off)
//
// The trailing trace context is what ties a delivery span to the send
// span that caused it across processes. With tracing off both values
// are zero — two bytes on the wire and no allocations, keeping the
// codec inside its AllocsPerRun budgets.
//
// All header fields are non-negative by construction; the decoder
// validates every length against the bytes actually remaining, so
// arbitrary input can never provoke a huge allocation or a panic.
const (
	wireMagic   = 'R'
	wireVersion = 0x02

	// maxWireMatrixDim bounds the causal-matrix dimension a frame may
	// declare; real systems are orders of magnitude smaller.
	maxWireMatrixDim = 1 << 16
)

// encodeBufs pools the scratch buffers frames are built in, so encoding
// allocates only the final exact-size frame instead of growing a fresh
// buffer per message.
var encodeBufs = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// traceCtx is the causal trace context piggybacked on every frame: the
// trace the message belongs to and the send span that produced it. The
// zero value means tracing is off.
type traceCtx struct {
	trace uint64
	span  uint64
}

// encodeMsg serializes a message and its piggyback without trace
// context (tracing off).
func encodeMsg(from, handle int, payload []byte, pb core.Piggyback) ([]byte, error) {
	return encodeMsgTrace(from, handle, payload, pb, traceCtx{})
}

// encodeMsgTrace serializes a message, its piggyback, and the causal
// trace context.
func encodeMsgTrace(from, handle int, payload []byte, pb core.Piggyback, tc traceCtx) ([]byte, error) {
	if from < 0 || handle < 0 || pb.SN < 0 {
		return nil, fmt.Errorf("encode message: negative header field (from=%d handle=%d sn=%d)", from, handle, pb.SN)
	}
	bp := encodeBufs.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, wireMagic, wireVersion)
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = binary.AppendUvarint(buf, uint64(handle))
	buf = binary.AppendUvarint(buf, uint64(pb.SN))
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.AppendUvarint(buf, uint64(len(pb.TDV)))
	for _, x := range pb.TDV {
		if x < 0 {
			*bp = buf[:0]
			encodeBufs.Put(bp)
			return nil, fmt.Errorf("encode message: negative TDV entry %d", x)
		}
		buf = binary.AppendUvarint(buf, uint64(x))
	}
	buf = binary.AppendUvarint(buf, uint64(len(pb.Simple)))
	buf = pb.Simple.AppendBits(buf)
	if pb.Causal != nil {
		buf = binary.AppendUvarint(buf, uint64(pb.Causal.N()))
		buf = pb.Causal.AppendBits(buf)
	} else {
		buf = binary.AppendUvarint(buf, 0)
	}
	buf = binary.AppendUvarint(buf, tc.trace)
	buf = binary.AppendUvarint(buf, tc.span)
	out := make([]byte, len(buf))
	copy(out, buf)
	*bp = buf[:0]
	encodeBufs.Put(bp)
	return out, nil
}

// pbScratch holds reusable piggyback storage for decodeMsgInto. Each node
// goroutine owns one, so repeated deliveries stop allocating fresh
// vectors and matrices per message. The piggyback returned by a decode
// into a scratch aliases its buffers and is only valid until the next
// decode into the same scratch.
type pbScratch struct {
	tdv    vclock.Vec
	simple vclock.Bools
	causal *vclock.Matrix

	// tc is the trace context of the last decoded frame — an output,
	// not reusable storage; the node goroutine reads it right after
	// decodeMsgInto returns.
	tc traceCtx
}

// wireReader is a bounds-checked cursor over one frame.
type wireReader struct {
	data []byte
	pos  int
}

func (r *wireReader) remaining() int { return len(r.data) - r.pos }

// uvarint reads one varint-encoded unsigned value that must fit in int.
func (r *wireReader) uvarint() (int, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 || v > uint64(math.MaxInt) {
		return 0, fmt.Errorf("decode message: bad varint at offset %d", r.pos)
	}
	r.pos += n
	return int(v), nil
}

// uvarint64 reads one varint-encoded unsigned value at full range (the
// trace-context ids).
func (r *wireReader) uvarint64() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("decode message: bad varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *wireReader) take(n int) ([]byte, error) {
	if n > r.remaining() {
		return nil, fmt.Errorf("decode message: truncated (need %d bytes, have %d)", n, r.remaining())
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

// decodeMsg deserializes a wire message into freshly allocated storage.
func decodeMsg(data []byte) (from, handle int, payload []byte, pb core.Piggyback, err error) {
	return decodeMsgInto(data, nil)
}

// decodeMsgInto is decodeMsg with optional buffer reuse: when s is
// non-nil the piggyback's vectors and matrix are decoded into the
// scratch's storage (growing it as needed) instead of fresh allocations.
// The payload is always a fresh copy: handlers may retain it.
func decodeMsgInto(data []byte, s *pbScratch) (from, handle int, payload []byte, pb core.Piggyback, err error) {
	fail := func(e error) (int, int, []byte, core.Piggyback, error) {
		return 0, 0, nil, core.Piggyback{}, e
	}
	if len(data) < 2 || data[0] != wireMagic || data[1] != wireVersion {
		return fail(fmt.Errorf("decode message: bad magic/version"))
	}
	r := &wireReader{data: data, pos: 2}
	if from, err = r.uvarint(); err != nil {
		return fail(err)
	}
	if handle, err = r.uvarint(); err != nil {
		return fail(err)
	}
	if pb.SN, err = r.uvarint(); err != nil {
		return fail(err)
	}

	plen, err := r.uvarint()
	if err != nil {
		return fail(err)
	}
	raw, err := r.take(plen)
	if err != nil {
		return fail(err)
	}
	if plen > 0 {
		payload = make([]byte, plen)
		copy(payload, raw)
	}

	tdvLen, err := r.uvarint()
	if err != nil {
		return fail(err)
	}
	if tdvLen > r.remaining() { // every entry needs at least one byte
		return fail(fmt.Errorf("decode message: TDV length %d exceeds frame", tdvLen))
	}
	if tdvLen > 0 {
		var tdv vclock.Vec
		if s != nil {
			if cap(s.tdv) < tdvLen {
				s.tdv = make(vclock.Vec, tdvLen)
			}
			tdv = s.tdv[:tdvLen]
		} else {
			tdv = make(vclock.Vec, tdvLen)
		}
		for i := range tdv {
			if tdv[i], err = r.uvarint(); err != nil {
				return fail(err)
			}
		}
		pb.TDV = tdv
	}

	simpleLen, err := r.uvarint()
	if err != nil {
		return fail(err)
	}
	if vclock.PackedLen(simpleLen) > r.remaining() {
		return fail(fmt.Errorf("decode message: simple length %d exceeds frame", simpleLen))
	}
	if simpleLen > 0 {
		bits, err := r.take(vclock.PackedLen(simpleLen))
		if err != nil {
			return fail(err)
		}
		var simple vclock.Bools
		if s != nil {
			if cap(s.simple) < simpleLen {
				s.simple = make(vclock.Bools, simpleLen)
			}
			simple = s.simple[:simpleLen]
		} else {
			simple = make(vclock.Bools, simpleLen)
		}
		if err := simple.LoadBits(bits); err != nil {
			return fail(err)
		}
		pb.Simple = simple
	}

	dim, err := r.uvarint()
	if err != nil {
		return fail(err)
	}
	if dim > 0 {
		if dim > maxWireMatrixDim || vclock.PackedLen(dim*dim) > r.remaining() {
			return fail(fmt.Errorf("decode message: matrix dimension %d exceeds frame", dim))
		}
		bits, err := r.take(vclock.PackedLen(dim * dim))
		if err != nil {
			return fail(err)
		}
		var m *vclock.Matrix
		if s != nil {
			s.causal = s.causal.Reuse(dim)
			m = s.causal
		} else {
			m = vclock.NewMatrix(dim)
		}
		if err := m.LoadBits(bits); err != nil {
			return fail(err)
		}
		pb.Causal = m
	}

	var tc traceCtx
	if tc.trace, err = r.uvarint64(); err != nil {
		return fail(err)
	}
	if tc.span, err = r.uvarint64(); err != nil {
		return fail(err)
	}
	if s != nil {
		s.tc = tc
	}

	if r.remaining() != 0 {
		return fail(fmt.Errorf("decode message: %d trailing bytes", r.remaining()))
	}
	return from, handle, payload, pb, nil
}
