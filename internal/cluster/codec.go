package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/vclock"
)

// wireMsg is the on-the-wire representation of an application message with
// its protocol piggyback and the trace handle used to match send and
// delivery events.
type wireMsg struct {
	From    int
	Handle  int
	Payload []byte

	TDV    []int
	SN     int
	Simple []bool
	Causal []bool // row-major cells of the causal matrix, empty when unused
	N      int    // matrix dimension
}

// encodeMsg serializes a message and its piggyback.
func encodeMsg(from, handle int, payload []byte, pb core.Piggyback) ([]byte, error) {
	w := wireMsg{
		From:    from,
		Handle:  handle,
		Payload: payload,
		TDV:     pb.TDV,
		SN:      pb.SN,
		Simple:  pb.Simple,
	}
	if pb.Causal != nil {
		w.Causal = pb.Causal.CloneCells()
		w.N = pb.Causal.N()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("encode message: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeMsg deserializes a wire message back into payload and piggyback.
func decodeMsg(data []byte) (from, handle int, payload []byte, pb core.Piggyback, err error) {
	var w wireMsg
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return 0, 0, nil, core.Piggyback{}, fmt.Errorf("decode message: %w", err)
	}
	pb = core.Piggyback{TDV: w.TDV, SN: w.SN, Simple: w.Simple}
	if len(w.Causal) > 0 {
		m, err := vclock.MatrixFromCells(w.N, w.Causal)
		if err != nil {
			return 0, 0, nil, core.Piggyback{}, err
		}
		pb.Causal = m
	}
	return w.From, w.Handle, w.Payload, pb, nil
}
