package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/transport"
)

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{N: 1}); err == nil {
		t.Error("accepted single-process cluster")
	}
}

func TestClusterBasicExchange(t *testing.T) {
	var mu sync.Mutex
	delivered := make(map[int]int)
	c, err := New(Config{
		N:        3,
		Protocol: core.KindBHMR,
		Handler: func(n *Node, from int, payload []byte) {
			mu.Lock()
			delivered[n.Proc()]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Node(0).Send(1, []byte("hello")); err != nil {
			t.Fatalf("send: %v", err)
		}
		if err := c.Node(1).Send(2, []byte("world")); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := c.Node(2).Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	c.Quiesce()
	mu.Lock()
	got1, got2 := delivered[1], delivered[2]
	mu.Unlock()
	if got1 != 10 || got2 != 10 {
		t.Errorf("deliveries = (%d,%d), want (10,10)", got1, got2)
	}
	p, err := c.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if len(p.Messages) != 20 {
		t.Errorf("messages = %d, want 20", len(p.Messages))
	}
	if err := p.Validate(); err != nil {
		t.Errorf("pattern invalid: %v", err)
	}
}

// echoApp replies to every "ping" with a "pong", exercising handler
// cascades and quiescence.
func echoApp(n *Node, from int, payload []byte) {
	if string(payload) == "ping" {
		// Errors can only be ErrStopped during shutdown; drop then.
		_ = n.Send(from, []byte("pong"))
	}
}

func TestClusterHandlerCascadesAndQuiesce(t *testing.T) {
	c, err := New(Config{N: 2, Protocol: core.KindBHMR, Handler: echoApp})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	const pings = 25
	for i := 0; i < pings; i++ {
		if err := c.Node(0).Send(1, []byte("ping")); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	c.Quiesce()
	p, err := c.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if len(p.Messages) != 2*pings {
		t.Errorf("messages = %d, want %d", len(p.Messages), 2*pings)
	}
}

func TestClusterRunsAreRDT(t *testing.T) {
	for _, kind := range []core.Kind{core.KindBHMR, core.KindBHMRNoSimple, core.KindFDAS, core.KindCAS} {
		t.Run(kind.String(), func(t *testing.T) {
			c, err := New(Config{N: 4, Protocol: kind, Handler: echoApp})
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			for round := 0; round < 15; round++ {
				for proc := 0; proc < 4; proc++ {
					dest := (proc + 1 + round%3) % 4
					if err := c.Node(proc).Send(dest, []byte("ping")); err != nil {
						t.Fatalf("send: %v", err)
					}
				}
				if round%3 == 0 {
					if err := c.Node(round % 4).Checkpoint(); err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
				}
			}
			c.Quiesce()
			p, err := c.Stop()
			if err != nil {
				t.Fatalf("stop: %v", err)
			}
			rep, err := rgraph.CheckRDT(p, 4)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if !rep.RDT {
				t.Fatalf("cluster run violated RDT: %v", rep.Violations)
			}
			if err := rgraph.VerifyRecordedTDVs(p); err != nil {
				t.Fatalf("TDVs: %v", err)
			}
		})
	}
}

func TestClusterOverTCP(t *testing.T) {
	tr, err := transport.NewTCP(3)
	if err != nil {
		t.Fatalf("tcp: %v", err)
	}
	c, err := New(Config{N: 3, Protocol: core.KindBHMR, Transport: tr, Handler: echoApp})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Node(i%3).Send((i+1)%3, []byte("ping")); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	c.Quiesce()
	p, err := c.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if len(p.Messages) != 20 {
		t.Errorf("messages = %d, want 20", len(p.Messages))
	}
	rep, err := rgraph.CheckRDT(p, 4)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.RDT {
		t.Errorf("TCP cluster run violated RDT: %v", rep.Violations)
	}
}

func TestClusterStoresCheckpoints(t *testing.T) {
	store := storage.NewMemory()
	c, err := New(Config{
		N:        2,
		Protocol: core.KindBHMR,
		Store:    store,
		Snapshot: func(proc int) []byte { return []byte(fmt.Sprintf("state-%d", proc)) },
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := c.Node(0).Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	c.Quiesce()
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	// Initial checkpoints of both processes plus P0's basic one.
	cp, err := store.Get(0, 1)
	if err != nil {
		t.Fatalf("stored checkpoint missing: %v", err)
	}
	if string(cp.State) != "state-0" || cp.Kind != model.KindBasic {
		t.Errorf("stored checkpoint = %+v", cp)
	}
	if _, err := store.Get(1, 0); err != nil {
		t.Errorf("initial checkpoint of P1 not stored: %v", err)
	}
	if c.Store() != store {
		t.Error("Store() does not return the configured store")
	}
}

func TestClusterStatus(t *testing.T) {
	c, err := New(Config{N: 2, Protocol: core.KindBHMR})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := c.Node(0).Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	st, err := c.Node(0).Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Proc != 0 || st.Interval != 2 || st.Basic != 1 || st.Forced != 0 {
		t.Errorf("status = %+v", st)
	}
	if st.TDV[0] != 2 {
		t.Errorf("TDV = %v", st.TDV)
	}
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestClusterRejectsBadSends(t *testing.T) {
	c, err := New(Config{N: 2})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer c.Stop() //nolint:errcheck // cleanup
	if err := c.Node(0).Send(0, nil); err == nil {
		t.Error("self-send accepted")
	}
	if err := c.Node(0).Send(7, nil); err == nil {
		t.Error("out-of-range send accepted")
	}
}

func TestClusterStopSemantics(t *testing.T) {
	c, err := New(Config{N: 2})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := c.Node(0).Send(1, []byte("x")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if _, err := c.Stop(); !errors.Is(err, ErrStopped) {
		t.Errorf("second stop: %v, want ErrStopped", err)
	}
	if err := c.Node(0).Send(1, nil); !errors.Is(err, ErrStopped) {
		t.Errorf("send after stop: %v, want ErrStopped", err)
	}
	if err := c.Node(0).Checkpoint(); !errors.Is(err, ErrStopped) {
		t.Errorf("checkpoint after stop: %v, want ErrStopped", err)
	}
	if _, err := c.Node(0).Status(); !errors.Is(err, ErrStopped) {
		t.Errorf("status after stop: %v, want ErrStopped", err)
	}
}

func TestClusterConcurrentDrivers(t *testing.T) {
	c, err := New(Config{N: 4, Protocol: core.KindBHMR, Handler: echoApp})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	var wg sync.WaitGroup
	for proc := 0; proc < 4; proc++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				dest := (proc + 1 + i) % 4
				if dest == proc {
					dest = (dest + 1) % 4
				}
				if err := c.Node(proc).Send(dest, []byte("ping")); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				if i%5 == 0 {
					if err := c.Node(proc).Checkpoint(); err != nil {
						t.Errorf("checkpoint: %v", err)
						return
					}
				}
			}
		}(proc)
	}
	wg.Wait()
	c.Quiesce()
	p, err := c.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("pattern invalid: %v", err)
	}
	rep, err := rgraph.CheckRDT(p, 4)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.RDT {
		t.Fatalf("concurrent cluster run violated RDT: %v", rep.Violations)
	}
	if err := rgraph.VerifyRecordedTDVs(p); err != nil {
		t.Fatalf("TDVs: %v", err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	inst, err := core.New(core.KindBHMR, 0, 3, nil)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	pb, _ := inst.OnSend(1)
	data, err := encodeMsg(0, 42, []byte("payload"), pb)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	from, handle, payload, got, err := decodeMsg(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if from != 0 || handle != 42 || string(payload) != "payload" {
		t.Errorf("header = (%d,%d,%q)", from, handle, payload)
	}
	if !got.TDV.Equal(pb.TDV) {
		t.Errorf("TDV = %v, want %v", got.TDV, pb.TDV)
	}
	if got.Simple == nil || !got.Simple[0] {
		t.Errorf("simple = %v", got.Simple)
	}
	if got.Causal == nil || !got.Causal.Equal(pb.Causal) {
		t.Error("causal matrix did not survive the round trip")
	}
	if _, _, _, _, err := decodeMsg([]byte("garbage")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestCodecWithoutOptionalFields(t *testing.T) {
	inst, err := core.New(core.KindFDAS, 0, 3, nil)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	pb, _ := inst.OnSend(1)
	data, err := encodeMsg(0, 1, nil, pb)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	_, _, _, got, err := decodeMsg(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Simple != nil && len(got.Simple) != 0 {
		t.Errorf("simple = %v, want empty", got.Simple)
	}
	if got.Causal != nil {
		t.Error("causal matrix materialized from nothing")
	}
}

func TestLocalTransportDelayDoesNotBreakQuiesce(t *testing.T) {
	c, err := New(Config{
		N:         2,
		Transport: transport.NewLocal(5 * time.Millisecond),
		Handler:   echoApp,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Node(0).Send(1, []byte("ping")); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	c.Quiesce()
	p, err := c.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if len(p.Messages) != 10 {
		t.Errorf("messages = %d, want 10", len(p.Messages))
	}
}

func TestClusterPayloadLog(t *testing.T) {
	c, err := New(Config{N: 2, Protocol: core.KindBHMR, LogPayloads: true})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := c.Node(0).Send(1, []byte("logged")); err != nil {
		t.Fatalf("send: %v", err)
	}
	c.Quiesce()
	p, err := c.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if len(p.Messages) != 1 {
		t.Fatalf("messages = %d", len(p.Messages))
	}
	payload, ok := c.Payload(p.Messages[0].ID)
	if !ok || string(payload) != "logged" {
		t.Errorf("payload = %q, %v", payload, ok)
	}
	payload[0] = 'X'
	again, _ := c.Payload(p.Messages[0].ID)
	if string(again) != "logged" {
		t.Error("Payload returned an aliased slice")
	}
	if _, ok := c.Payload(999); ok {
		t.Error("unknown id produced a payload")
	}
}

func TestClusterPayloadLogDisabled(t *testing.T) {
	c, err := New(Config{N: 2})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := c.Node(0).Send(1, []byte("x")); err != nil {
		t.Fatalf("send: %v", err)
	}
	c.Quiesce()
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if _, ok := c.Payload(0); ok {
		t.Error("payload logged although logging is off")
	}
}

// TestClusterSixteenNodes is a scale smoke test: a 16-process cluster
// under the full protocol stays RDT and quiesces cleanly.
func TestClusterSixteenNodes(t *testing.T) {
	const n = 16
	c, err := New(Config{N: n, Protocol: core.KindBHMR, Handler: echoApp})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for round := 0; round < 8; round++ {
		for proc := 0; proc < n; proc++ {
			if err := c.Node(proc).Send((proc+round+1)%n, []byte("ping")); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		if err := c.Node(round).Checkpoint(); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
	}
	c.Quiesce()
	p, err := c.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if len(p.Messages) != 2*8*n {
		t.Errorf("messages = %d, want %d", len(p.Messages), 2*8*n)
	}
	rep, err := rgraph.CheckRDT(p, 2)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.RDT {
		t.Fatalf("16-node run violated RDT: %v", rep.Violations)
	}
}

// TestClusterBCSSequenceNumbersTravel verifies the BCS piggyback survives
// the wire codec end to end: a node far ahead in checkpoints forces its
// peers on first contact.
func TestClusterBCSSequenceNumbersTravel(t *testing.T) {
	c, err := New(Config{N: 2, Protocol: core.KindBCS})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Node(0).Checkpoint(); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
	}
	if err := c.Node(0).Send(1, []byte("from the future")); err != nil {
		t.Fatalf("send: %v", err)
	}
	c.Quiesce()
	st, err := c.Node(1).Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Forced != 1 {
		t.Errorf("P1 forced = %d, want 1 (sequence number must cross the codec)", st.Forced)
	}
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestClusterMetrics(t *testing.T) {
	c, err := New(Config{N: 2, Protocol: core.KindFDAS})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Node(0).Send(1, []byte("x")); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := c.Node(1).Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	c.Quiesce()
	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Sent != 5 || m.Basic != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.PiggybackBytes != 5*4*2 {
		t.Errorf("piggyback bytes = %d, want 40", m.PiggybackBytes)
	}
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if _, err := c.Metrics(); err == nil {
		t.Error("metrics available after stop")
	}
}
