package cluster

import (
	"testing"

	"github.com/rdt-go/rdt/internal/core"
)

// FuzzDecodeMsg feeds arbitrary bytes to the frame decoder: it must never
// panic, and everything a real encoder produced must round-trip.
func FuzzDecodeMsg(f *testing.F) {
	inst, err := core.New(core.KindBHMR, 0, 4, nil)
	if err != nil {
		f.Fatal(err)
	}
	pb, _ := inst.OnSend(1)
	good, err := encodeMsg(0, 7, []byte("payload"), pb)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(good[:len(good)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		from, handle, payload, got, err := decodeMsg(data)
		if err != nil {
			return
		}
		_ = from
		_ = handle
		_ = payload
		if got.Causal != nil && got.Causal.N() > 1<<16 {
			t.Fatal("decoder accepted an absurd matrix dimension")
		}
	})
}
