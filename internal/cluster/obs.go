package cluster

import (
	"strconv"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/obs"
)

// instruments bundles the cluster's pre-created observability series so
// the hot paths never take the registry lock. A nil *instruments means
// observability is off; every use is guarded by one nil check, and the
// individual series are themselves nil-safe.
type instruments struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	flight *obs.FlightRecorder
	proto  string

	sends          *obs.Counter
	deliveries     *obs.Counter
	piggybackBytes *obs.Counter
	basic          *obs.Counter
	forced         *obs.Counter
	storeErrors    *obs.Counter
	crashes        *obs.Counter
	restarts       *obs.Counter
	recoveries     *obs.Counter

	// deliveryLatency is the mailbox wait: frame arrival at the node to
	// execution in the node goroutine.
	deliveryLatency *obs.Histogram
	quiesceWait     *obs.Histogram
}

// newInstruments creates the cluster's series. reg, tr, and fl may each
// be nil (the corresponding series are nil and no-op).
func newInstruments(reg *obs.Registry, tr *obs.Tracer, fl *obs.FlightRecorder, protocol core.Kind) *instruments {
	proto := protocol.String()
	return &instruments{
		reg:             reg,
		tracer:          tr,
		flight:          fl,
		proto:           proto,
		sends:           reg.Counter("rdt_cluster_sends_total", "protocol", proto),
		deliveries:      reg.Counter("rdt_cluster_deliveries_total", "protocol", proto),
		piggybackBytes:  reg.Counter("rdt_cluster_piggyback_bytes_total", "protocol", proto),
		basic:           reg.Counter("rdt_checkpoints_total", "protocol", proto, "kind", "basic"),
		forced:          reg.Counter("rdt_checkpoints_total", "protocol", proto, "kind", "forced"),
		storeErrors:     reg.Counter("rdt_store_errors_total", "protocol", proto),
		crashes:         reg.Counter("rdt_cluster_crashes_total", "protocol", proto),
		restarts:        reg.Counter("rdt_cluster_restarts_total", "protocol", proto),
		recoveries:      reg.Counter("rdt_recoveries_e2e_total", "protocol", proto),
		deliveryLatency: reg.Histogram("rdt_cluster_delivery_latency_seconds", obs.LatencyBuckets, "protocol", proto),
		quiesceWait:     reg.Histogram("rdt_cluster_quiesce_wait_seconds", obs.LatencyBuckets, "protocol", proto),
	}
}

// storeError accounts for one failed checkpoint persist.
func (ins *instruments) storeError(proc int, err error) {
	if ins == nil {
		return
	}
	ins.storeErrors.Inc()
	ins.tracer.Record(obs.Event{
		Type: obs.EventStoreError, Proc: proc, Detail: err.Error(),
	})
}

// crash accounts for one fail-stop; droppedOps is the discarded backlog.
func (ins *instruments) crash(proc, droppedOps int) {
	if ins == nil {
		return
	}
	ins.crashes.Inc()
	ins.tracer.Record(obs.Event{
		Type: obs.EventCrash, Proc: proc, Value: droppedOps,
	})
}

// restart accounts for one crashed process coming back.
func (ins *instruments) restart(proc int) {
	if ins == nil {
		return
	}
	ins.restarts.Inc()
	ins.tracer.Record(obs.Event{Type: obs.EventRestart, Proc: proc})
}

// recovery accounts for one completed end-to-end recovery; replayed is
// the number of messages re-injected.
func (ins *instruments) recovery(replayed int) {
	if ins == nil {
		return
	}
	ins.recoveries.Inc()
	ins.tracer.Record(obs.Event{Type: obs.EventRecovery, Value: replayed})
}

// queueDepth returns the mailbox-depth gauge of one node.
func (ins *instruments) queueDepth(proc int) *obs.Gauge {
	if ins == nil {
		return nil
	}
	return ins.reg.Gauge("rdt_cluster_queue_depth", "proc", strconv.Itoa(proc))
}

// checkpoint accounts for one recorded checkpoint, attributing forced
// ones to the predicate that fired them. Initial checkpoints are not
// counted (they are part of the model, not of the overhead).
func (ins *instruments) checkpoint(rec core.CheckpointRecord) {
	if ins == nil {
		return
	}
	switch rec.Kind {
	case model.KindBasic:
		ins.basic.Inc()
		ins.tracer.Record(obs.Event{
			Type:  obs.EventBasicCheckpoint,
			Proc:  rec.Proc,
			Value: rec.Index,
		})
	case model.KindForced:
		ins.forced.Inc()
		// Checkpoints are orders of magnitude rarer than messages, so
		// the per-predicate series may take the registry lock here.
		ins.reg.Counter("rdt_forced_checkpoints_total",
			"protocol", ins.proto, "predicate", rec.Predicate).Inc()
		ins.tracer.Record(obs.Event{
			Type:      obs.EventForcedCheckpoint,
			Proc:      rec.Proc,
			Predicate: rec.Predicate,
			Value:     rec.Index,
		})
	}
}
