package cluster

import (
	"strconv"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/obs"
)

// instruments bundles the cluster's pre-created observability series so
// the hot paths never take the registry lock. A nil *instruments means
// observability is off; every use is guarded by one nil check, and the
// individual series are themselves nil-safe.
type instruments struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	proto  string

	sends          *obs.Counter
	deliveries     *obs.Counter
	piggybackBytes *obs.Counter
	basic          *obs.Counter
	forced         *obs.Counter

	// deliveryLatency is the mailbox wait: frame arrival at the node to
	// execution in the node goroutine.
	deliveryLatency *obs.Histogram
	quiesceWait     *obs.Histogram
}

// newInstruments creates the cluster's series. reg and tr may each be
// nil (the corresponding series are nil and no-op).
func newInstruments(reg *obs.Registry, tr *obs.Tracer, protocol core.Kind) *instruments {
	proto := protocol.String()
	return &instruments{
		reg:             reg,
		tracer:          tr,
		proto:           proto,
		sends:           reg.Counter("rdt_cluster_sends_total", "protocol", proto),
		deliveries:      reg.Counter("rdt_cluster_deliveries_total", "protocol", proto),
		piggybackBytes:  reg.Counter("rdt_cluster_piggyback_bytes_total", "protocol", proto),
		basic:           reg.Counter("rdt_checkpoints_total", "protocol", proto, "kind", "basic"),
		forced:          reg.Counter("rdt_checkpoints_total", "protocol", proto, "kind", "forced"),
		deliveryLatency: reg.Histogram("rdt_cluster_delivery_latency_seconds", obs.LatencyBuckets, "protocol", proto),
		quiesceWait:     reg.Histogram("rdt_cluster_quiesce_wait_seconds", obs.LatencyBuckets, "protocol", proto),
	}
}

// queueDepth returns the mailbox-depth gauge of one node.
func (ins *instruments) queueDepth(proc int) *obs.Gauge {
	if ins == nil {
		return nil
	}
	return ins.reg.Gauge("rdt_cluster_queue_depth", "proc", strconv.Itoa(proc))
}

// checkpoint accounts for one recorded checkpoint, attributing forced
// ones to the predicate that fired them. Initial checkpoints are not
// counted (they are part of the model, not of the overhead).
func (ins *instruments) checkpoint(rec core.CheckpointRecord) {
	if ins == nil {
		return
	}
	switch rec.Kind {
	case model.KindBasic:
		ins.basic.Inc()
		ins.tracer.Record(obs.Event{
			Type:  obs.EventBasicCheckpoint,
			Proc:  rec.Proc,
			Value: rec.Index,
		})
	case model.KindForced:
		ins.forced.Inc()
		// Checkpoints are orders of magnitude rarer than messages, so
		// the per-predicate series may take the registry lock here.
		ins.reg.Counter("rdt_forced_checkpoints_total",
			"protocol", ins.proto, "predicate", rec.Predicate).Inc()
		ins.tracer.Record(obs.Event{
			Type:      obs.EventForcedCheckpoint,
			Proc:      rec.Proc,
			Predicate: rec.Predicate,
			Value:     rec.Index,
		})
	}
}
