package cluster_test

import (
	"encoding/binary"
	"sync"
	"testing"

	"github.com/rdt-go/rdt/internal/cluster"
	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/recovery"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/storage"
)

// counterApp is a tiny replicated application: each process counts its
// deliveries and forwards even payloads once around the ring.
type counterApp struct {
	mu     sync.Mutex
	n      int
	values []uint64
}

func newCounterApp(n int) *counterApp {
	return &counterApp{n: n, values: make([]uint64, n)}
}

func (a *counterApp) handler(node *cluster.Node, _ int, payload []byte) {
	a.mu.Lock()
	a.values[node.Proc()]++
	a.mu.Unlock()
	if len(payload) > 0 && payload[0]%2 == 0 {
		_ = node.Send((node.Proc()+1)%a.n, payload[1:])
	}
}

func (a *counterApp) snapshot(proc int) []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, a.values[proc])
	return buf
}

func (a *counterApp) install(proc int, state []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(state) == 8 {
		a.values[proc] = binary.BigEndian.Uint64(state)
	} else {
		a.values[proc] = 0
	}
}

// TestFullCrashRecoveryCycle exercises the whole story end to end:
// incarnation 1 runs under BHMR with persistent checkpoints and a message
// log; process 2 "crashes"; the recovery line is computed from stored
// vectors only; application states are reinstalled; incarnation 2 resumes
// with the in-transit messages replayed, keeps running, and its own trace
// is again RDT.
func TestFullCrashRecoveryCycle(t *testing.T) {
	const n = 4
	store1 := storage.NewMemory()
	app := newCounterApp(n)

	c1, err := cluster.New(cluster.Config{
		N:           n,
		Protocol:    core.KindBHMR,
		Store:       store1,
		Snapshot:    app.snapshot,
		Handler:     app.handler,
		LogPayloads: true,
	})
	if err != nil {
		t.Fatalf("incarnation 1: %v", err)
	}
	for round := 0; round < 10; round++ {
		for proc := 0; proc < n; proc++ {
			if err := c1.Node(proc).Send((proc+1)%n, []byte{byte(round), byte(proc)}); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		if round%2 == 1 {
			if err := c1.Node(round % n).Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}
	c1.Quiesce()
	pattern1, err := c1.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}

	// ---- Crash of process 2. ----
	mgr, err := recovery.NewManager(store1, n)
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	plan, err := mgr.AfterCrash(2)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	states, err := mgr.Restore(plan.Line)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, cp := range states {
		app.install(cp.Proc, cp.State)
	}
	replay, err := recovery.ReplaySet(pattern1, plan.Line, c1.Payload)
	if err != nil {
		t.Fatalf("replay set: %v", err)
	}

	// ---- Incarnation 2. ----
	store2 := storage.NewMemory()
	c2, err := cluster.Resume(cluster.Config{
		N:           n,
		Protocol:    core.KindBHMR,
		Store:       store2,
		Snapshot:    app.snapshot,
		Handler:     app.handler,
		LogPayloads: true,
	}, replay)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	// The computation continues.
	for proc := 0; proc < n; proc++ {
		if err := c2.Node(proc).Send((proc+2)%n, []byte{1, byte(proc)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	c2.Quiesce()
	pattern2, err := c2.Stop()
	if err != nil {
		t.Fatalf("stop 2: %v", err)
	}

	// Incarnation 2 delivered the replayed messages plus the new ones.
	if len(pattern2.Messages) < len(replay)+n {
		t.Errorf("incarnation 2 has %d messages, want at least %d", len(pattern2.Messages), len(replay)+n)
	}
	rep, err := rgraph.CheckRDT(pattern2, 2)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.RDT {
		t.Fatalf("incarnation 2 violated RDT: %v", rep.Violations)
	}
	if err := rgraph.VerifyRecordedTDVs(pattern2); err != nil {
		t.Fatalf("TDVs: %v", err)
	}
	// And it persisted fresh checkpoints of its own (initials at least).
	mgr2, err := recovery.NewManager(store2, n)
	if err != nil {
		t.Fatalf("manager 2: %v", err)
	}
	if _, err := mgr2.Latest(); err != nil {
		t.Fatalf("incarnation 2 stored nothing: %v", err)
	}

	// App state survived the crash: counters are at least the restored
	// values (monotone counters only grow during incarnation 2).
	app.mu.Lock()
	defer app.mu.Unlock()
	for i, cp := range states {
		restored := uint64(0)
		if len(cp.State) == 8 {
			restored = binary.BigEndian.Uint64(cp.State)
		}
		if app.values[i] < restored {
			t.Errorf("process %d counter %d below restored value %d", i, app.values[i], restored)
		}
	}
}

func TestResumeRejectsBadReplay(t *testing.T) {
	_, err := cluster.Resume(cluster.Config{N: 2, Protocol: core.KindBHMR},
		[]recovery.ReplayMessage{{ID: 0, From: 0, To: 9}})
	if err == nil {
		t.Fatal("out-of-range replay destination accepted")
	}
	if _, err := cluster.Resume(cluster.Config{N: 1}, nil); err == nil {
		t.Fatal("invalid cluster config accepted")
	}
}
