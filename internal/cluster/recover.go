package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/recovery"
	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/transport"
)

// ErrNotCrashed is returned by Restart for a process that is running.
var ErrNotCrashed = errors.New("process has not crashed")

// Restart brings a crashed process back into the running cluster with a
// fresh mailbox and its protocol state intact — the process simply missed
// everything sent while it was down. Restart alone does NOT roll anything
// back: messages that died with the crash stay lost, so the application
// state may have diverged. Use Recover for the full rollback-recovery
// path; use Restart when the application can tolerate (or repair) the
// gap itself.
func (c *Cluster) Restart(proc int) error {
	if c.isStopped() {
		return ErrStopped
	}
	if proc < 0 || proc >= c.cfg.N {
		return fmt.Errorf("cluster: restart: invalid process %d", proc)
	}
	n := c.nodes[proc]
	if !n.isCrashed() {
		return ErrNotCrashed
	}
	n.restart()
	c.noteRestart(proc)
	return nil
}

// RecoverOptions parameterizes Cluster.Recover.
type RecoverOptions struct {
	// Store is the checkpoint store of the new incarnation; nil means a
	// fresh in-memory store. Reusing the old store is allowed only
	// together with GC: the new incarnation restarts its checkpoint
	// indexes at zero, so with GC on a reused store Recover purges the
	// entire old history (the recovery line's state survives as the new
	// incarnation's initial checkpoints) — any leftover old-incarnation
	// checkpoint would shadow the new history and corrupt a later
	// recovery.
	Store storage.Store
	// Transport is the transport of the new incarnation; nil means a new
	// default local transport. The old transport is closed by Recover and
	// cannot be reused.
	Transport transport.Transport
	// Install, if non-nil, is called once per process with the checkpoint
	// selected by the recovery line, so the application can reinstall its
	// state snapshot before the new incarnation starts.
	Install func(cp storage.Checkpoint)
	// GC removes old-incarnation checkpoints strictly below the recovery
	// line from the old store after the plan is computed.
	GC bool
}

// RecoverResult reports what one end-to-end recovery did.
type RecoverResult struct {
	// Cluster is the new incarnation, running.
	Cluster *Cluster
	// Plan is the recovery-line computation over the old store.
	Plan *recovery.Plan
	// Pattern is the old incarnation's recorded pattern (lossy-finalized).
	Pattern *model.Pattern
	// Lost are the old incarnation's sends that were never delivered.
	Lost []model.LostMessage
	// Replayed are the messages re-sent into the new incarnation: the
	// in-transit set at the line plus the lost messages sent at or before
	// it.
	Replayed []recovery.ReplayMessage
}

// Recover runs the full crash-recovery loop in-process: it stops the old
// incarnation (tolerating loss), computes the recovery line from the
// stored dependency vectors for the currently crashed processes, hands
// the line's state snapshots to Install, determines every message that
// crosses the line — in-transit in the recorded pattern, or lost outright
// to a crash or a lossy link — and starts a new incarnation with those
// messages replayed from the message log.
//
// The receiving cluster must have been built with LogPayloads; ctx bounds
// the drain of in-flight work (a timeout just classifies more messages
// as lost, it does not fail the recovery).
func (c *Cluster) Recover(ctx context.Context, opts RecoverOptions) (*RecoverResult, error) {
	pattern, lost, crashed, err := c.stopForRecovery(ctx)
	if err != nil {
		return nil, err
	}
	return c.recoverFrom(pattern, lost, crashed, opts)
}

// stopForRecovery is the irrevocable half of Recover: it validates the
// configuration, captures the crashed set, and stops the old incarnation
// tolerating loss. It runs once per recovery; the build half
// (recoverFrom) can then be retried — by the supervisor, with backoff —
// without re-stopping a cluster that is already gone.
func (c *Cluster) stopForRecovery(ctx context.Context) (*model.Pattern, []model.LostMessage, []int, error) {
	c.mu.Lock()
	logging := c.payloads != nil
	c.mu.Unlock()
	if !logging {
		return nil, nil, nil, errors.New("cluster: recover requires LogPayloads")
	}
	crashed := c.Crashed()

	pattern, lost, err := c.StopLossy(ctx)
	if err != nil {
		return nil, nil, nil, err
	}
	return pattern, lost, crashed, nil
}

// recoverFrom is the retryable half of Recover: recovery line from the
// stored vectors, state snapshots to Install, replay set, optional GC,
// and the next incarnation. The steps before GC are read-only over the
// old store and freshly parameterized per call (the options carry the
// new incarnation's store and transport), so a failed attempt can be
// retried with new options — except after a purge (GC with a reused
// store), which consumes the old history; retries should hand each
// attempt a fresh store, as the supervisor's default options do.
func (c *Cluster) recoverFrom(pattern *model.Pattern, lost []model.LostMessage, crashed []int, opts RecoverOptions) (*RecoverResult, error) {
	recStart := time.Now()
	mgr, err := recovery.NewManager(c.store, c.cfg.N)
	if err != nil {
		return nil, fmt.Errorf("cluster: recover: %w", err)
	}
	mgr.Observe(c.cfg.Obs, c.cfg.Tracer)
	plan, err := mgr.AfterCrash(crashed...)
	if err != nil {
		return nil, fmt.Errorf("cluster: recover: %w", err)
	}
	states, err := mgr.Restore(plan.Line)
	if err != nil {
		return nil, fmt.Errorf("cluster: recover: %w", err)
	}
	if opts.Install != nil {
		for _, cp := range states {
			opts.Install(cp)
		}
	}

	replay, err := recovery.ReplaySet(pattern, plan.Line, c.Payload)
	if err != nil {
		return nil, fmt.Errorf("cluster: recover: %w", err)
	}
	// A lost message is channel state exactly like an in-transit one: if
	// its send is inside the line, the receiver must still get it. (Lost
	// sends beyond the line are rolled back with their sender.)
	for _, lm := range lost {
		if lm.SendInterval > plan.Line[lm.From] {
			continue
		}
		data, ok := c.Payload(lm.ID)
		if !ok {
			return nil, fmt.Errorf("cluster: recover: lost message %d has no logged payload", lm.ID)
		}
		replay = append(replay, recovery.ReplayMessage{
			ID: lm.ID, From: int(lm.From), To: int(lm.To), Payload: data,
		})
	}

	if opts.GC {
		if opts.Store == c.store {
			// The new incarnation reuses the old store and restarts its
			// indexes at zero: purge the whole old history, or leftovers
			// at or above the line would shadow the new checkpoints in
			// the next recovery. (The line's state lives on as the new
			// incarnation's initial checkpoints.)
			if _, err := storage.Purge(c.store, c.cfg.N); err != nil {
				return nil, fmt.Errorf("cluster: recover: purge: %w", err)
			}
		} else if _, err := mgr.GC(plan.Line); err != nil {
			return nil, fmt.Errorf("cluster: recover: gc: %w", err)
		}
	}

	cfg := c.cfg
	cfg.Store = opts.Store
	if cfg.Store == nil {
		cfg.Store = storage.NewMemory()
	}
	cfg.Transport = opts.Transport // nil → New builds a default local one

	next, err := Resume(cfg, replay)
	if err != nil {
		return nil, fmt.Errorf("cluster: recover: %w", err)
	}
	c.ins.recovery(len(replay))
	if ins := c.ins; ins != nil && ins.flight != nil {
		// The recovery span covers line computation through the new
		// incarnation's start; it runs on no process, so it gets the
		// synthetic track after the last real one. Each rolled-back
		// process contributes a child span naming the checkpoint it
		// resumes from.
		fl := ins.flight
		recID := fl.NextID()
		end := time.Now()
		fl.Record(obs.Span{
			TraceID: recID, ID: recID, Kind: obs.SpanRecovery,
			Proc: c.cfg.N, Start: recStart.UnixMicro(),
			Dur:    end.Sub(recStart).Microseconds(),
			Detail: fmt.Sprintf("crashed=%v replayed=%d", crashed, len(replay)),
		})
		for proc, depth := range plan.Depth {
			if depth <= 0 {
				continue
			}
			fl.Record(obs.Span{
				TraceID: recID, ID: fl.NextID(), Parent: recID, Kind: obs.SpanRollback,
				Proc: proc, Start: recStart.UnixMicro(),
				Dur:    end.Sub(recStart).Microseconds(),
				Detail: fmt.Sprintf("rollback to C{%d,%d} (depth %d)", proc, plan.Line[proc], depth),
			})
		}
	}
	return &RecoverResult{
		Cluster:  next,
		Plan:     plan,
		Pattern:  pattern,
		Lost:     lost,
		Replayed: replay,
	}, nil
}
