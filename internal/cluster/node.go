package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/transport"
	"github.com/rdt-go/rdt/internal/vclock"
)

// ErrCrashed is returned by operations on a process that has fail-stopped
// (Node.Crash) and has not been restarted.
var ErrCrashed = errors.New("process has crashed")

// Node is the handle of one process of a cluster. Its exported methods are
// safe for concurrent use: they enqueue operations that the node's
// goroutine executes in order, preserving the sequential-process model.
type Node struct {
	c    *Cluster
	proc int
	inst core.Instance

	// dec is the piggyback decode scratch: the node goroutine is the only
	// decoder for this node, so delivered frames reuse one set of buffers.
	dec pbScratch

	// curTrace and curSpan are the active causal-trace context of the node
	// goroutine, set around OnSend/OnArrival so checkpoint spans recorded
	// by the protocol sink parent to the operation that forced them. Only
	// the node goroutine touches them; both are zero outside an operation.
	curTrace uint64
	curSpan  uint64

	// mu guards the crash/restart lifecycle: mailbox and done are
	// replaced on restart, crashed gates the operation entry points.
	mu      sync.Mutex
	crashed bool
	mailbox *mailbox
	done    chan struct{}
}

// op is one unit of work for the node goroutine.
type op struct {
	kind    opKind
	to      int    // opSend
	payload []byte // opSend
	frame   []byte // opFrame
	query   chan Status
	beat    func() // opBeat: liveness ack, runs in the node goroutine

	// arrived stamps when an opFrame entered the mailbox; zero when
	// observability is off.
	arrived time.Time
}

type opKind int

const (
	opSend opKind = iota + 1
	opCheckpoint
	opFrame
	opQuery
	opBeat
)

// Status is a point-in-time view of a node's protocol state.
type Status struct {
	Proc     int
	Interval int
	TDV      vclock.Vec
	Basic    int
	Forced   int
}

func newNode(c *Cluster, proc int) (*Node, error) {
	n := &Node{
		c:       c,
		proc:    proc,
		mailbox: newMailbox(c.ins.queueDepth(proc)),
		done:    make(chan struct{}),
	}
	inst, err := core.New(c.cfg.Protocol, proc, c.cfg.N, c.recordCheckpoint)
	if err != nil {
		return nil, err
	}
	n.inst = inst
	return n, nil
}

func (n *Node) start() {
	n.mu.Lock()
	mb, done := n.mailbox, n.done
	n.mu.Unlock()
	go n.loop(mb, done)
}

func (n *Node) stop() {
	n.mu.Lock()
	mb, done := n.mailbox, n.done
	n.mu.Unlock()
	mb.close()
	<-done
}

// Proc returns the node's process identifier.
func (n *Node) Proc() int { return n.proc }

// Send asynchronously sends an application message to another process.
func (n *Node) Send(to int, payload []byte) error {
	if to == n.proc || to < 0 || to >= n.c.cfg.N {
		return fmt.Errorf("send: invalid destination %d", to)
	}
	return n.enqueue(op{kind: opSend, to: to, payload: payload})
}

// Checkpoint asynchronously takes a basic local checkpoint.
func (n *Node) Checkpoint() error {
	return n.enqueue(op{kind: opCheckpoint})
}

// ping enqueues a liveness probe: ack runs in the node goroutine once
// every operation queued before it has executed. A crashed node rejects
// the probe with ErrCrashed immediately; a stalled node (wedged handler,
// unbounded backlog) accepts it and never acks — exactly the signal the
// supervisor's accrual detector consumes.
func (n *Node) ping(ack func()) error {
	return n.enqueue(op{kind: opBeat, beat: ack})
}

// Status returns the node's current protocol state. It synchronizes with
// the node goroutine, so it reflects all operations enqueued before it.
func (n *Node) Status() (Status, error) {
	reply := make(chan Status, 1)
	if err := n.enqueue(op{kind: opQuery, query: reply}); err != nil {
		return Status{}, err
	}
	st, ok := <-reply
	if !ok {
		// The node crashed with the query still queued.
		return Status{}, ErrCrashed
	}
	return st, nil
}

// Crash fail-stops the process: its goroutine exits, queued operations
// are discarded, and frames addressed to it are dropped until Restart.
// The protocol instance and everything already persisted survive —
// exactly the state a real process recovers from stable storage. Crash
// is the failure half of the crash/recovery loop; Cluster.Restart and
// Cluster.Recover are the repair halves.
func (n *Node) Crash() error {
	if n.c.isStopped() {
		return ErrStopped
	}
	n.mu.Lock()
	if n.crashed {
		n.mu.Unlock()
		return ErrCrashed
	}
	n.crashed = true
	mb, done := n.mailbox, n.done
	n.mu.Unlock()

	dropped := mb.crash()
	<-done
	for _, o := range dropped {
		// Every queued item held one outstanding and one active count; a
		// dropped query also has a caller blocked on its reply channel.
		n.c.active.done()
		n.c.outstanding.done()
		if o.query != nil {
			close(o.query)
		}
	}
	n.c.noteCrash(n.proc, len(dropped))
	return nil
}

// restart brings a crashed node back with a fresh mailbox; the protocol
// state resumes where the instance left off.
func (n *Node) restart() {
	n.mu.Lock()
	n.crashed = false
	n.mailbox = newMailbox(n.c.ins.queueDepth(n.proc))
	n.done = make(chan struct{})
	mb, done := n.mailbox, n.done
	n.mu.Unlock()
	go n.loop(mb, done)
}

// isCrashed reports whether the node is currently fail-stopped.
func (n *Node) isCrashed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed
}

func (n *Node) enqueue(o op) error {
	if n.c.isStopped() {
		return ErrStopped
	}
	n.mu.Lock()
	if n.crashed {
		n.mu.Unlock()
		return ErrCrashed
	}
	mb := n.mailbox
	n.mu.Unlock()
	n.c.outstanding.add(1)
	n.c.active.add(1)
	if !mb.put(o) {
		n.c.active.done()
		n.c.outstanding.done()
		return ErrStopped
	}
	return nil
}

// onFrame is the transport handler: it hands the frame to the node
// goroutine. It must not block. Frames for a crashed node are dropped —
// they died with the process; the message log replays them if the
// recovery line needs them.
func (n *Node) onFrame(f transport.Frame) {
	o := op{kind: opFrame, frame: f.Data}
	if n.c.ins != nil {
		o.arrived = time.Now()
	}
	n.mu.Lock()
	mb := n.mailbox
	n.mu.Unlock()
	// The sender already accounted for this frame in outstanding; the
	// active count starts only now, when the frame becomes a queued op.
	n.c.active.add(1)
	if !mb.put(o) {
		n.c.active.done()
		n.c.outstanding.done() // dropped: crash or shutdown
	}
}

func (n *Node) loop(mb *mailbox, done chan struct{}) {
	defer close(done)
	for {
		o, ok := mb.take()
		if !ok {
			return
		}
		n.execute(o)
	}
}

func (n *Node) execute(o op) {
	defer n.c.outstanding.done()
	defer n.c.active.done()
	switch o.kind {
	case opSend:
		n.doSend(o.to, o.payload)
	case opCheckpoint:
		n.inst.TakeBasicCheckpoint()
	case opFrame:
		if ins := n.c.ins; ins != nil && !o.arrived.IsZero() {
			ins.deliveryLatency.Observe(time.Since(o.arrived).Seconds())
		}
		n.doDeliver(o.frame)
	case opBeat:
		o.beat()
	case opQuery:
		o.query <- Status{
			Proc:     n.proc,
			Interval: n.inst.CurrentInterval(),
			TDV:      n.inst.TDV(),
			Basic:    n.inst.Basic(),
			Forced:   n.inst.Forced(),
		}
	}
}

func (n *Node) doSend(to int, payload []byte) {
	pb, forceAfter := n.inst.OnSend(to)
	handle := n.c.recordSend(n.proc, to, payload)
	if ins := n.c.ins; ins != nil {
		ins.sends.Inc()
		ins.piggybackBytes.Add(int64(n.inst.WireSize()))
		ins.tracer.Record(obs.Event{
			Type: obs.EventSend, Proc: n.proc, Peer: to, Value: handle,
		})
	}
	// With causal tracing on, the send opens a new trace: the span id
	// doubles as the trace id and rides the frame so the delivery span on
	// the other side can parent to it.
	var tc traceCtx
	var fl *obs.FlightRecorder
	var spanStart time.Time
	if ins := n.c.ins; ins != nil && ins.flight != nil {
		fl = ins.flight
		id := fl.NextID()
		tc = traceCtx{trace: id, span: id}
		n.curTrace, n.curSpan = tc.trace, tc.span
		spanStart = time.Now()
	}
	if forceAfter {
		n.inst.CheckpointAfterSend()
	}
	data, err := encodeMsgTrace(n.proc, handle, payload, pb, tc)
	if err != nil {
		// Encoding our own structures cannot fail in practice; losing the
		// message would corrupt the trace, so fail loudly.
		panic(fmt.Sprintf("cluster: %v", err))
	}
	n.c.outstanding.add(1) // the in-flight frame
	if err := n.c.trans.Send(transport.Frame{From: n.proc, To: to, Data: data}); err != nil {
		// The frame never left: release its accounting and surface the
		// error. The send stays in the trace as a lost message, exactly
		// what happened on the wire.
		n.c.outstanding.done()
		n.c.reportError(fmt.Errorf("transport send P%d->P%d: %w", n.proc, to, err))
	}
	if fl != nil {
		fl.Record(obs.Span{
			TraceID: tc.trace, ID: tc.span, Kind: obs.SpanSend,
			Proc: n.proc, Peer: to,
			Start: spanStart.UnixMicro(), Dur: time.Since(spanStart).Microseconds(),
			Detail: "m" + strconv.Itoa(handle),
		})
		n.curTrace, n.curSpan = 0, 0
	}
}

func (n *Node) doDeliver(frame []byte) {
	from, handle, payload, pb, err := decodeMsgInto(frame, &n.dec)
	if err != nil {
		panic(fmt.Sprintf("cluster: %v", err))
	}
	// With causal tracing on, the delivery span joins the sender's trace
	// and parents to its send span — the cross-process causal edge. The
	// context is installed before OnArrival so a checkpoint the protocol
	// forces before delivery parents to this span.
	var fl *obs.FlightRecorder
	var span obs.Span
	var spanStart time.Time
	if ins := n.c.ins; ins != nil && ins.flight != nil {
		fl = ins.flight
		span = obs.Span{
			TraceID: n.dec.tc.trace, ID: fl.NextID(), Parent: n.dec.tc.span,
			Kind: obs.SpanDeliver, Proc: n.proc, Peer: from,
			Detail: "m" + strconv.Itoa(handle),
		}
		n.curTrace, n.curSpan = span.TraceID, span.ID
		spanStart = time.Now()
	}
	n.inst.OnArrival(from, pb)
	if err := n.c.recordDeliver(handle); err != nil {
		panic(fmt.Sprintf("cluster: %v", err))
	}
	if ins := n.c.ins; ins != nil {
		ins.deliveries.Inc()
		ins.tracer.Record(obs.Event{
			Type: obs.EventDeliver, Proc: n.proc, Peer: from, Value: handle,
		})
	}
	if n.c.cfg.Handler != nil {
		n.c.cfg.Handler(n, from, payload)
	}
	if fl != nil {
		span.Start = spanStart.UnixMicro()
		span.Dur = time.Since(spanStart).Microseconds()
		fl.Record(span)
		n.curTrace, n.curSpan = 0, 0
	}
}

// mailbox is an unbounded FIFO queue with shutdown semantics. Transports
// deliver into it without blocking, which is what keeps the cluster free
// of send/receive deadlocks. The depth gauge (nil-safe, may be nil)
// tracks the queue length for live introspection.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []op
	closed bool
	depth  *obs.Gauge
}

func newMailbox(depth *obs.Gauge) *mailbox {
	m := &mailbox{depth: depth}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put appends an item; it reports false when the mailbox is closed.
func (m *mailbox) put(o op) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.items = append(m.items, o)
	m.depth.Set(int64(len(m.items)))
	m.cond.Signal()
	return true
}

// take removes the oldest item, blocking until one is available; it
// reports false once the mailbox is closed and drained.
func (m *mailbox) take() (op, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		return op{}, false
	}
	o := m.items[0]
	m.items = m.items[1:]
	m.depth.Set(int64(len(m.items)))
	return o, true
}

// close marks the mailbox closed and wakes the consumer; queued items
// are still drained.
func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// crash closes the mailbox and discards the backlog, returning the
// dropped items so the caller can release their accounting.
func (m *mailbox) crash() []op {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	dropped := m.items
	m.items = nil
	m.depth.Set(0)
	m.cond.Broadcast()
	return dropped
}
