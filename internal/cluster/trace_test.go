package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/obs"
)

// TestClusterCausalTracing runs a traced exchange and checks the causal
// structure of the recorded spans: every send opens its own trace (span
// id doubling as trace id), every delivery joins the sender's trace with
// the send span as parent, and every checkpoint span taken inside an
// operation parents to that operation's span.
func TestClusterCausalTracing(t *testing.T) {
	fl := obs.NewFlightRecorder(4096)
	c, err := New(Config{N: 3, Protocol: core.KindBHMR, Flight: fl})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	const rounds = 8
	for i := 0; i < rounds; i++ {
		if err := c.Node(0).Send(1, []byte("a")); err != nil {
			t.Fatalf("send: %v", err)
		}
		if err := c.Node(1).Send(2, []byte("b")); err != nil {
			t.Fatalf("send: %v", err)
		}
		c.Quiesce()
		if err := c.Node(2).Checkpoint(); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
	}
	c.Quiesce()
	p, err := c.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}

	spans := fl.Spans()
	sends := make(map[uint64]obs.Span) // span id -> send span
	var deliveries, checkpoints int
	for _, s := range spans {
		if s.Kind == obs.SpanSend {
			if s.TraceID != s.ID {
				t.Errorf("send span %d has trace id %d, want the span id", s.ID, s.TraceID)
			}
			sends[s.ID] = s
		}
	}
	if len(sends) != len(p.Messages) {
		t.Errorf("send spans = %d, want %d (one per message)", len(sends), len(p.Messages))
	}
	for _, s := range spans {
		switch s.Kind {
		case obs.SpanDeliver:
			deliveries++
			parent, ok := sends[s.Parent]
			if !ok {
				t.Fatalf("delivery span %d parents to unknown span %d", s.ID, s.Parent)
			}
			if s.TraceID != parent.TraceID {
				t.Errorf("delivery span %d trace %d != send trace %d", s.ID, s.TraceID, parent.TraceID)
			}
			if parent.Proc != s.Peer || parent.Peer != s.Proc {
				t.Errorf("delivery span %d endpoints (proc=%d peer=%d) do not mirror its send (proc=%d peer=%d)",
					s.ID, s.Proc, s.Peer, parent.Proc, parent.Peer)
			}
			if parent.Detail != s.Detail {
				t.Errorf("delivery span detail %q != send detail %q", s.Detail, parent.Detail)
			}
		case obs.SpanCheckpoint, obs.SpanForced:
			checkpoints++
			// A checkpoint inside a traced operation must belong to that
			// operation's trace; an explicit basic checkpoint has none.
			if s.Parent != 0 && s.TraceID == 0 {
				t.Errorf("checkpoint span %d has a parent but no trace", s.ID)
			}
		}
	}
	if deliveries != len(p.Messages) {
		t.Errorf("delivery spans = %d, want %d", deliveries, len(p.Messages))
	}
	if checkpoints < rounds {
		t.Errorf("checkpoint spans = %d, want >= %d (one per explicit basic checkpoint)", checkpoints, rounds)
	}

	// The recorder's Chrome export is valid JSON over exactly these spans.
	var buf bytes.Buffer
	if err := fl.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("chrome trace: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(spans) {
		t.Errorf("chrome events = %d, want %d", len(doc.TraceEvents), len(spans))
	}
}

// TestClusterRecoverySpans checks that an end-to-end recovery records a
// recovery span on the synthetic track plus one rollback child per
// process the line rolled back.
func TestClusterRecoverySpans(t *testing.T) {
	fl := obs.NewFlightRecorder(4096)
	c1, err := New(Config{N: 3, Protocol: core.KindBHMR, LogPayloads: true, Flight: fl})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for round := 0; round < 3; round++ {
		for proc := 0; proc < 3; proc++ {
			if err := c1.Node(proc).Send((proc+1)%3, []byte{byte(round)}); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		c1.Quiesce()
		for proc := 0; proc < 3; proc++ {
			if err := c1.Node(proc).Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}
	c1.Quiesce()
	if err := c1.Node(1).Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := c1.Recover(ctx, RecoverOptions{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer res.Cluster.Stop() //nolint:errcheck

	var recSpan *obs.Span
	var rollbacks int
	for _, s := range fl.Spans() {
		s := s
		switch s.Kind {
		case obs.SpanRecovery:
			recSpan = &s
			if s.Proc != 3 {
				t.Errorf("recovery span on track %d, want the synthetic track 3", s.Proc)
			}
		case obs.SpanRollback:
			rollbacks++
			if recSpan == nil || s.Parent != recSpan.ID {
				t.Errorf("rollback span %d does not parent to the recovery span", s.ID)
			}
		}
	}
	if recSpan == nil {
		t.Fatalf("no recovery span recorded")
	}
	want := 0
	for _, d := range res.Plan.Depth {
		if d > 0 {
			want++
		}
	}
	if rollbacks != want {
		t.Errorf("rollback spans = %d, want %d (per-process depths %v)", rollbacks, want, res.Plan.Depth)
	}
}

// TestClusterTracingOffNoSpans pins the off switch: a cluster without a
// flight recorder records nothing and the wire still carries the zero
// trace context (two bytes, no allocations — TestCodecAllocBudget holds
// the budget itself).
func TestClusterTracingOffNoSpans(t *testing.T) {
	c, err := New(Config{N: 2, Protocol: core.KindBHMR})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := c.Node(0).Send(1, nil); err != nil {
		t.Fatalf("send: %v", err)
	}
	c.Quiesce()
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	var zero *obs.FlightRecorder
	if zero.Len() != 0 || zero.Dropped() != 0 || zero.NextID() != 0 {
		t.Fatalf("nil flight recorder is not inert")
	}
}
