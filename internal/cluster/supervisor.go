package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/transport"
	"github.com/rdt-go/rdt/internal/vtime"
)

// Suspicion reasons, used as metric label values and event details.
const (
	// SuspectCrash: a heartbeat probe was rejected with ErrCrashed — the
	// process has explicitly fail-stopped.
	SuspectCrash = "crash"
	// SuspectTimeout: the accrual detector's suspicion level crossed the
	// threshold — the process accepts probes but is not executing them
	// (wedged handler, unbounded backlog).
	SuspectTimeout = "timeout"
	// SuspectUnreachable: an external signal (ReportUnreachable, e.g.
	// wired from transport.ReliableConfig.OnGiveUp) declared the process
	// unreachable — its links are partitioned beyond the retry budget.
	SuspectUnreachable = "unreachable"
)

// SupervisorConfig parameterizes Supervise.
type SupervisorConfig struct {
	// Interval is the heartbeat probe period. Each tick, the supervisor
	// enqueues a liveness probe into every node's mailbox; the node
	// goroutine acks it in order with its other operations, so the ack
	// gap measures the event loop's actual responsiveness. Default 10ms.
	Interval time.Duration
	// Window is the number of recent heartbeat gaps the accrual detector
	// keeps per process — the sample the expected-gap distribution is
	// estimated from. Default 64.
	Window int
	// Phi is the suspicion threshold, φ-accrual style: suspicion fires
	// when the current gap's upper-tail probability under the observed
	// gap distribution drops below 10^-Phi. Larger is more conservative.
	// Default 8.
	Phi float64
	// MinGap floors the gap below which suspicion never fires, whatever
	// φ says — the guard against false positives from scheduler hiccups
	// and load bursts the window has not absorbed yet. Default
	// 20×Interval.
	MinGap time.Duration
	// ConfirmTicks is the number of consecutive over-threshold
	// evaluations that confirm a timeout suspicion. Crash detection
	// confirms immediately — ErrCrashed is definitive. Default 2.
	ConfirmTicks int

	// MaxAttempts bounds the autonomous recovery attempts per detected
	// failure; when they are exhausted the supervisor escalates and
	// stops. Default 3.
	MaxAttempts int
	// Backoff is the delay before the second attempt; it doubles per
	// attempt up to MaxBackoff, with up to 50% seeded jitter. Defaults
	// 25ms / 1s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed makes the jitter schedule reproducible. Zero seeds from 1.
	Seed int64
	// DrainTimeout bounds the lossy stop's quiescence wait when a
	// failover begins; expiring just classifies more messages as lost.
	// Default 5s.
	DrainTimeout time.Duration

	// Options, if non-nil, supplies the RecoverOptions of each recovery
	// attempt: incarnation is the number of the incarnation being built
	// (the supervised cluster is incarnation 1, so the first recovery
	// builds 2), attempt restarts at 1 per failure. Each attempt should
	// get a fresh store and transport — a transport consumed by a failed
	// attempt cannot be reused. Nil means every attempt uses a fresh
	// in-memory store and a default local transport.
	Options func(incarnation, attempt int) RecoverOptions
	// OnRecover, if non-nil, is called after every successful autonomous
	// recovery; the new incarnation is already running and supervised.
	// It runs on the supervisor goroutine and must not block for long.
	OnRecover func(*RecoverResult)
	// OnEscalate, if non-nil, is called once when MaxAttempts recovery
	// attempts for one failure have all failed, with the last attempt's
	// error. The supervisor stops after escalating: the cluster is down
	// and repairing it now needs an operator.
	OnEscalate func(error)

	// Clock drives the probe ticker, the gap measurements, and the retry
	// backoff. Nil means the wall clock; a vtime.Virtual lets scenarios
	// compress minutes of suspicion windows into an Advance call.
	Clock vtime.Clock
}

// withDefaults fills the zero fields.
func (cfg SupervisorConfig) withDefaults() SupervisorConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.Phi <= 0 {
		cfg.Phi = 8
	}
	if cfg.MinGap <= 0 {
		cfg.MinGap = 20 * cfg.Interval
	}
	if cfg.ConfirmTicks <= 0 {
		cfg.ConfirmTicks = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	return cfg
}

// Supervisor watches a cluster through periodic heartbeat probes and
// drives Cluster.Recover autonomously when a process fails. Detection is
// φ-accrual style: per process, the supervisor keeps a window of
// observed heartbeat gaps and suspects when the current gap becomes
// implausible under that distribution — so a uniformly slow (loaded,
// delay-injected) but live node keeps raising its own expected gap and
// is never suspected, while a crashed or wedged one is. On confirmation
// the suspect is fail-stopped (Crash), the incarnation is stopped
// tolerating loss, and recovery is attempted with bounded retries,
// exponential backoff, and seeded jitter; exhausted retries escalate.
//
// The supervisor owns failover: do not call Stop, Recover, or Restart on
// a supervised cluster directly — call Supervisor.Stop first, then
// operate on Supervisor.Cluster().
type Supervisor struct {
	cfg   SupervisorConfig
	clock vtime.Clock
	rng   *rand.Rand // monitor goroutine only
	stop  chan struct{}
	done  chan struct{}

	mu       sync.Mutex
	c        *Cluster
	inc      int // incarnation number of c, starting at 1
	tracks   []*beatTrack
	stopOnce sync.Once

	ins supInstruments
}

// Supervise attaches a supervisor to a running cluster and starts
// monitoring. The cluster must have been built with LogPayloads (the
// autonomous recovery replays the message log, exactly like the manual
// path).
func Supervise(c *Cluster, cfg SupervisorConfig) (*Supervisor, error) {
	if c == nil {
		return nil, errors.New("cluster: supervise: nil cluster")
	}
	c.mu.Lock()
	logging := c.payloads != nil
	stopped := c.stopped
	c.mu.Unlock()
	if stopped {
		return nil, ErrStopped
	}
	if !logging {
		return nil, errors.New("cluster: supervise requires LogPayloads")
	}
	cfg = cfg.withDefaults()
	s := &Supervisor{
		cfg:   cfg,
		clock: vtime.Or(cfg.Clock),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		inc:   1,
		ins: supInstruments{
			reg:    c.cfg.Obs,
			tracer: c.cfg.Tracer,
			heartbeatGap: c.cfg.Obs.Histogram(
				"rdt_supervisor_heartbeat_gap_seconds", obs.LatencyBuckets),
		},
	}
	s.adopt(c)
	// Arm the probe ticker before the goroutine starts: under a virtual
	// clock the supervisor must be registered the moment Supervise
	// returns, or an immediate Advance would pass it by.
	ticker := s.clock.NewTicker(cfg.Interval)
	go s.monitor(ticker)
	return s, nil
}

// Cluster returns the current incarnation. After an autonomous recovery
// the returned cluster differs from the one Supervise was given; the
// supervisor is the stable handle.
func (s *Supervisor) Cluster() *Cluster {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// Incarnation returns the current incarnation number: 1 for the cluster
// Supervise was given, +1 per completed autonomous recovery.
func (s *Supervisor) Incarnation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inc
}

// Stop halts monitoring and waits for the monitor goroutine to exit. It
// does not stop the cluster: stop the supervisor first, then drive
// Cluster() through its normal shutdown. Stop is idempotent.
func (s *Supervisor) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Done is closed when the monitor goroutine has exited — after Stop, an
// external cluster shutdown, or an escalation.
func (s *Supervisor) Done() <-chan struct{} { return s.done }

// ReportUnreachable feeds an external unreachability signal for a
// process of the current incarnation: the next tick confirms it as a
// suspicion without waiting for the accrual detector. Out-of-range
// process ids are ignored.
func (s *Supervisor) ReportUnreachable(proc int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if proc >= 0 && proc < len(s.tracks) {
		s.tracks[proc].markUnreachable()
	}
}

// OnGiveUp adapts the supervisor to transport.ReliableConfig.OnGiveUp: a
// frame the reliable layer abandoned after its full retry budget means
// the destination's links are partitioned beyond repair, so the
// destination is reported unreachable and fail-stopped by the next
// failover — the classic conversion of an unreachable process into a
// crashed one.
func (s *Supervisor) OnGiveUp(f transport.Frame, err error) { s.ReportUnreachable(f.To) }

// adopt installs a (new) incarnation: fresh per-process gap windows,
// primed with the probe interval so φ is defined from the first tick.
func (s *Supervisor) adopt(c *Cluster) {
	tracks := make([]*beatTrack, c.cfg.N)
	now := s.clock.Now()
	for i := range tracks {
		tracks[i] = newBeatTrack(now, s.cfg.Window, s.cfg.Interval)
	}
	s.mu.Lock()
	if s.c != nil {
		s.inc++
	}
	s.c = c
	s.tracks = tracks
	s.mu.Unlock()
}

// monitor is the supervision loop: probe, evaluate, fail over.
func (s *Supervisor) monitor(ticker vtime.Ticker) {
	defer close(s.done)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C():
		}
		suspects, external := s.tick()
		if external {
			return // the owner stopped the cluster; nothing to supervise
		}
		if len(suspects) > 0 && !s.failover(suspects) {
			return // escalated, externally stopped, or supervisor stopped
		}
	}
}

// suspect is one confirmed suspicion of the current tick.
type suspect struct {
	proc   int
	reason string
	gap    time.Duration
}

// tick probes every node and evaluates the accrual detector, returning
// the confirmed suspicions. external reports that the cluster was
// stopped by its owner.
func (s *Supervisor) tick() (suspects []suspect, external bool) {
	s.mu.Lock()
	c, tracks := s.c, s.tracks
	s.mu.Unlock()

	now := s.clock.Now()
	for proc := 0; proc < c.cfg.N; proc++ {
		track := tracks[proc]
		hist := s.ins.heartbeatGap
		err := c.nodes[proc].ping(func() { track.beat(s.clock.Now(), hist) })
		switch {
		case err == nil:
		case errors.Is(err, ErrCrashed):
			gap := track.gapSince(now)
			s.ins.suspicion(proc, SuspectCrash, gap)
			suspects = append(suspects, suspect{proc, SuspectCrash, gap})
			continue
		case errors.Is(err, ErrStopped):
			return nil, true
		}
		if track.takeUnreachable() {
			gap := track.gapSince(now)
			s.ins.suspicion(proc, SuspectUnreachable, gap)
			suspects = append(suspects, suspect{proc, SuspectUnreachable, gap})
			continue
		}
		if gap, confirmed := track.check(now, s.cfg.MinGap, s.cfg.Phi, s.cfg.ConfirmTicks); confirmed {
			s.ins.suspicion(proc, SuspectTimeout, gap)
			suspects = append(suspects, suspect{proc, SuspectTimeout, gap})
		}
	}
	return suspects, false
}

// failover converts the suspicions into fail-stops and drives the
// autonomous recovery with bounded, jittered retries. It reports whether
// supervision continues (a new incarnation is adopted).
func (s *Supervisor) failover(suspects []suspect) bool {
	s.mu.Lock()
	c := s.c
	incarnation := s.inc
	s.mu.Unlock()

	// Enforce fail-stop: a suspect that is merely wedged or partitioned
	// is crashed so the recovery-line computation sees the same fault
	// model for every failure kind. Crash waits for the node's current
	// operation to return — a wedged handler must eventually unblock for
	// the failover to proceed (a forever-stuck goroutine cannot be
	// reaped in-process).
	for _, sp := range suspects {
		err := c.nodes[sp.proc].Crash()
		if errors.Is(err, ErrStopped) {
			return false
		}
		// ErrCrashed: already down, which is what we want.
	}

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	pattern, lost, crashed, err := c.stopForRecovery(ctx)
	cancel()
	if err != nil {
		if errors.Is(err, ErrStopped) {
			return false
		}
		s.escalate(fmt.Errorf("stop for recovery: %w", err))
		return false
	}

	backoff := s.cfg.Backoff
	var lastErr error
	for attempt := 1; attempt <= s.cfg.MaxAttempts; attempt++ {
		res, err := c.recoverFrom(pattern, lost, crashed, s.options(incarnation+1, attempt))
		if err == nil {
			s.adopt(res.Cluster)
			s.ins.recovery("ok")
			if s.cfg.OnRecover != nil {
				s.cfg.OnRecover(res)
			}
			return true
		}
		lastErr = err
		s.ins.recovery("retry")
		if attempt == s.cfg.MaxAttempts {
			break
		}
		select {
		case <-s.clock.After(s.jitter(backoff)):
		case <-s.stop:
			return false
		}
		if backoff < s.cfg.MaxBackoff {
			backoff *= 2
			if backoff > s.cfg.MaxBackoff {
				backoff = s.cfg.MaxBackoff
			}
		}
	}
	s.escalate(lastErr)
	return false
}

// options builds one attempt's RecoverOptions.
func (s *Supervisor) options(incarnation, attempt int) RecoverOptions {
	if s.cfg.Options != nil {
		return s.cfg.Options(incarnation, attempt)
	}
	// Fresh store, default transport: always retryable.
	return RecoverOptions{Store: storage.NewMemory()}
}

// escalate records that autonomous recovery is out of attempts and hands
// the failure to the operator callback.
func (s *Supervisor) escalate(err error) {
	s.ins.escalation(err)
	if s.cfg.OnEscalate != nil {
		s.cfg.OnEscalate(err)
	}
}

// jitter returns d plus up to 50% seeded random extra.
func (s *Supervisor) jitter(d time.Duration) time.Duration {
	return d + time.Duration(s.rng.Int63n(int64(d)/2+1))
}

// beatTrack is the per-process accrual state: the last heartbeat ack and
// a sliding window of inter-ack gaps with running first and second
// moments, so the suspicion level φ(gap) is O(1) per evaluation.
type beatTrack struct {
	mu          sync.Mutex
	last        time.Time
	win         []float64 // seconds
	n, idx      int
	sum, sumSq  float64
	over        int // consecutive over-threshold evaluations
	unreachable bool
}

// newBeatTrack primes the window with the probe interval so the
// distribution is defined before real samples arrive; the prior washes
// out of the sliding window as beats come in.
func newBeatTrack(now time.Time, window int, interval time.Duration) *beatTrack {
	t := &beatTrack{last: now, win: make([]float64, window)}
	prior := interval.Seconds()
	for i := 0; i < 4; i++ {
		t.observe(prior)
	}
	return t
}

// beat records one heartbeat ack; it runs in the node goroutine and must
// stay cheap. A beat clears any building timeout suspicion.
func (t *beatTrack) beat(now time.Time, hist *obs.Histogram) {
	t.mu.Lock()
	gap := now.Sub(t.last).Seconds()
	if gap < 0 {
		gap = 0
	}
	t.last = now
	t.observe(gap)
	t.over = 0
	t.mu.Unlock()
	hist.Observe(gap)
}

// observe pushes one gap into the sliding window. Callers hold t.mu
// (construction excepted).
func (t *beatTrack) observe(gap float64) {
	if t.n < len(t.win) {
		t.n++
	} else {
		old := t.win[t.idx]
		t.sum -= old
		t.sumSq -= old * old
	}
	t.win[t.idx] = gap
	t.idx = (t.idx + 1) % len(t.win)
	t.sum += gap
	t.sumSq += gap * gap
}

// gapSince returns the time since the last ack.
func (t *beatTrack) gapSince(now time.Time) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return now.Sub(t.last)
}

// markUnreachable latches an external unreachability report.
func (t *beatTrack) markUnreachable() {
	t.mu.Lock()
	t.unreachable = true
	t.mu.Unlock()
}

// takeUnreachable consumes the latch.
func (t *beatTrack) takeUnreachable() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	u := t.unreachable
	t.unreachable = false
	return u
}

// check evaluates the detector at one tick: suspicion requires the gap
// to clear the floor AND φ to clear the threshold on ConfirmTicks
// consecutive evaluations.
func (t *beatTrack) check(now time.Time, minGap time.Duration, phi float64, confirm int) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	gap := now.Sub(t.last)
	if gap < minGap || t.phiOf(gap.Seconds()) < phi {
		t.over = 0
		return gap, false
	}
	t.over++
	return gap, t.over >= confirm
}

// phiOf is the suspicion level of a gap under the windowed distribution:
// -log10 of the normal upper-tail probability, with the deviation
// floored (a too-regular window must not make any hiccup look infinitely
// unlikely).
func (t *beatTrack) phiOf(gap float64) float64 {
	mean := t.sum / float64(t.n)
	variance := t.sumSq/float64(t.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	sd := math.Sqrt(variance)
	if floor := mean / 4; sd < floor {
		sd = floor
	}
	const minSD = 100e-6 // scheduler-noise floor
	if sd < minSD {
		sd = minSD
	}
	p := 0.5 * math.Erfc((gap-mean)/(sd*math.Sqrt2))
	const minP = 1e-300 // Erfc underflows around z≈27
	if p < minP {
		p = minP
	}
	return -math.Log10(p)
}

// supInstruments is the supervisor's observability bundle; the obs
// primitives are nil-safe, so a cluster without a registry costs only
// the calls.
type supInstruments struct {
	reg          *obs.Registry
	tracer       *obs.Tracer
	heartbeatGap *obs.Histogram
}

// suspicion accounts for one confirmed suspicion. Suspicions are rare,
// so the labeled counter may take the registry lock here.
func (ins *supInstruments) suspicion(proc int, reason string, gap time.Duration) {
	ins.reg.Counter("rdt_supervisor_suspicions_total", "reason", reason).Inc()
	ins.tracer.Record(obs.Event{
		Type: obs.EventSuspicion, Proc: proc, Detail: reason,
		Value: int(gap.Microseconds()),
	})
}

// recovery accounts for one recovery attempt outcome: "ok" (a new
// incarnation is running), "retry" (the attempt failed), with
// "escalated" added by escalate when the budget is spent.
func (ins *supInstruments) recovery(outcome string) {
	ins.reg.Counter("rdt_supervisor_recoveries_total", "outcome", outcome).Inc()
}

// escalation accounts for one exhausted retry budget.
func (ins *supInstruments) escalation(err error) {
	ins.reg.Counter("rdt_supervisor_recoveries_total", "outcome", "escalated").Inc()
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	ins.tracer.Record(obs.Event{Type: obs.EventEscalation, Detail: detail})
}
