// Package cluster is the concurrent runtime of the library: one goroutine
// per process, a pluggable transport carrying application payloads with
// protocol piggybacks, persistent checkpoint storage, trace recording, and
// quiescence detection. It is the embedding a downstream application uses
// to obtain RDT guarantees for its own message passing.
//
// Lifecycle: New starts the nodes; the application drives them through
// Node.Send / Node.Checkpoint and receives deliveries through the Handler
// callback; Quiesce waits until no message or operation is outstanding;
// Stop shuts everything down and returns the recorded, finalized
// checkpoint and communication pattern.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/transport"
)

// Config parameterizes a cluster.
type Config struct {
	// N is the number of processes.
	N int
	// Protocol selects the checkpointing protocol (default KindBHMR).
	Protocol core.Kind
	// Transport moves frames between processes; defaults to an in-process
	// transport with up to transport.DefaultLocalDelay of delivery
	// delay. The cluster closes it on Stop.
	Transport transport.Transport
	// Store persists checkpoints; defaults to an in-memory store.
	Store storage.Store
	// Handler, if non-nil, is invoked in the destination node's goroutine
	// after every delivery.
	Handler func(n *Node, from int, payload []byte)
	// Snapshot, if non-nil, provides the application state persisted with
	// each checkpoint of a process.
	Snapshot func(proc int) []byte
	// LogPayloads keeps a copy of every sent payload, keyed by the message
	// id of the recorded pattern — the sender-based message log recovery
	// needs to replay in-transit messages after a rollback.
	LogPayloads bool

	// Obs, if non-nil, receives the cluster's metrics (sends,
	// deliveries, per-predicate forced checkpoints, queue depths,
	// latency histograms) and turns on transport instrumentation. Nil
	// disables observability at near-zero cost.
	Obs *obs.Registry
	// Tracer, if non-nil, records structured events (sends, deliveries,
	// checkpoints with their triggering predicate, transport send errors)
	// into its bounded ring.
	Tracer *obs.Tracer
	// Flight, if non-nil, turns on causal tracing: every send, delivery,
	// forced-checkpoint decision, checkpoint write, and recovery step
	// records a span into the flight recorder, and the trace context
	// (trace id + sending span) rides the message piggyback so delivery
	// spans parent to the send that caused them across processes. Nil
	// keeps the codec and OnSend hot paths allocation-free.
	Flight *obs.FlightRecorder

	// OnError, if non-nil, receives asynchronous runtime errors that have
	// no caller to return to: transport send failures from a node
	// goroutine and checkpoint-store write failures. It may be called
	// concurrently from several goroutines and must not block. Nil means
	// the errors are still counted and traced, just not delivered.
	OnError func(error)
}

// ErrStopped is returned by operations on a stopped cluster.
var ErrStopped = errors.New("cluster is stopped")

// Cluster runs N protocol-equipped processes.
type Cluster struct {
	cfg   Config
	trans transport.Transport
	store storage.Store
	nodes []*Node

	mu       sync.Mutex
	builder  *model.Builder
	payloads map[int][]byte
	stopped  bool
	crashed  map[int]bool

	// outstanding counts queued operations, executing operations, AND
	// in-flight frames — Quiesce's "nothing anywhere" barrier. active
	// counts only queued and executing operations: it drains while frames
	// are still parked in a virtual-clock transport, which is what makes
	// Settle usable between two timer firings.
	outstanding *pending
	active      *pending
	ins         *instruments // nil when observability is off
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 processes, have %d", cfg.N)
	}
	if cfg.Protocol == 0 {
		cfg.Protocol = core.KindBHMR
	}
	c := &Cluster{
		cfg:         cfg,
		trans:       cfg.Transport,
		store:       cfg.Store,
		builder:     model.NewBuilder(cfg.N),
		outstanding: newPending(),
		active:      newPending(),
		crashed:     make(map[int]bool),
	}
	if c.trans == nil {
		c.trans = transport.NewLocal(transport.DefaultLocalDelay)
	}
	if cfg.Obs != nil || cfg.Tracer != nil || cfg.Flight != nil {
		c.ins = newInstruments(cfg.Obs, cfg.Tracer, cfg.Flight, cfg.Protocol)
	}
	if cfg.Obs != nil || cfg.Tracer != nil {
		c.trans = transport.WithObs(c.trans, cfg.Obs, cfg.Tracer)
	}
	if cfg.LogPayloads {
		c.payloads = make(map[int][]byte)
	}
	if c.store == nil {
		c.store = storage.NewMemory()
	}

	c.nodes = make([]*Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		node, err := newNode(c, i)
		if err != nil {
			return nil, err
		}
		c.nodes[i] = node
	}
	for i := 0; i < cfg.N; i++ {
		node := c.nodes[i]
		if err := c.trans.Register(i, node.onFrame); err != nil {
			return nil, fmt.Errorf("cluster: register process %d: %w", i, err)
		}
	}
	for _, node := range c.nodes {
		node.start()
	}
	return c, nil
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.cfg.N }

// Node returns the handle of one process.
func (c *Cluster) Node(proc int) *Node { return c.nodes[proc] }

// Store returns the checkpoint store.
func (c *Cluster) Store() storage.Store { return c.store }

// Quiesce blocks until no operation or message is outstanding — including
// any cascade the Handler callback generates. It does not stop the
// cluster.
func (c *Cluster) Quiesce() {
	if c.ins == nil {
		c.outstanding.wait()
		return
	}
	start := time.Now()
	c.outstanding.wait()
	c.ins.quiesceWait.Observe(time.Since(start).Seconds())
}

// QuiesceCtx is Quiesce with a deadline: it returns nil once nothing is
// outstanding, or the context's error when it expires first. Under fault
// injection without a reliable transport, dropped frames leak outstanding
// counts — QuiesceCtx turns what would be a hang into a diagnosable
// timeout.
func (c *Cluster) QuiesceCtx(ctx context.Context) error {
	if c.ins == nil {
		return c.outstanding.waitCtx(ctx)
	}
	start := time.Now()
	err := c.outstanding.waitCtx(ctx)
	c.ins.quiesceWait.Observe(time.Since(start).Seconds())
	return err
}

// Settle blocks until no operation is queued or executing on any node —
// including the cascade a delivery's Handler generates. Unlike Quiesce
// it does not wait for in-flight frames, so under a virtual-clock
// transport (where frames park on clock timers between Advance calls) it
// is the barrier between two timer firings: everything the last firing
// triggered has executed, every send it caused is parked in the clock,
// and the next firing starts from a quiescent cluster. This is the
// settle hook deterministic scenario execution passes to
// vtime.Virtual.AdvanceUntilIdle.
func (c *Cluster) Settle() { c.active.wait() }

// Stop quiesces the cluster, shuts down the nodes and the transport, and
// returns the recorded pattern, finalized. Stop is idempotent; subsequent
// calls return ErrStopped.
func (c *Cluster) Stop() (*model.Pattern, error) {
	if err := c.beginStop(); err != nil {
		return nil, err
	}
	// New operations are rejected from here on; wait for the in-flight
	// ones (and their cascades) to drain before tearing down.
	c.Quiesce()
	if err := c.teardown(); err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	p, err := c.builder.Finalize()
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return p, nil
}

// StopLossy stops the cluster like Stop, but tolerates loss: it waits for
// quiescence only until the context expires, and messages still in flight
// at teardown (dropped by faults or dead with a crashed process) are
// returned as lost messages instead of failing finalization. It is the
// shutdown path for runs with crashes or a lossy transport.
func (c *Cluster) StopLossy(ctx context.Context) (*model.Pattern, []model.LostMessage, error) {
	if err := c.beginStop(); err != nil {
		return nil, nil, err
	}
	// Best-effort drain: a timeout here just means more messages land in
	// the lost set.
	_ = c.QuiesceCtx(ctx)
	if err := c.teardown(); err != nil {
		return nil, nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	p, lost, err := c.builder.FinalizeLossy()
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: %w", err)
	}
	return p, lost, nil
}

// beginStop atomically marks the cluster stopped.
func (c *Cluster) beginStop() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return ErrStopped
	}
	c.stopped = true
	return nil
}

// teardown stops the node goroutines and closes the transport.
func (c *Cluster) teardown() error {
	for _, node := range c.nodes {
		node.stop()
	}
	if err := c.trans.Close(); err != nil {
		return fmt.Errorf("cluster: close transport: %w", err)
	}
	return nil
}

// isStopped reports whether Stop has begun.
func (c *Cluster) isStopped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped
}

// reportError delivers an asynchronous runtime error to the configured
// sink, if any.
func (c *Cluster) reportError(err error) {
	if c.cfg.OnError != nil {
		c.cfg.OnError(err)
	}
}

// noteCrash records that a process fail-stopped.
func (c *Cluster) noteCrash(proc, droppedOps int) {
	c.mu.Lock()
	c.crashed[proc] = true
	c.mu.Unlock()
	c.ins.crash(proc, droppedOps)
}

// noteRestart records that a crashed process came back.
func (c *Cluster) noteRestart(proc int) {
	c.mu.Lock()
	delete(c.crashed, proc)
	c.mu.Unlock()
	c.ins.restart(proc)
}

// Crashed returns the processes currently fail-stopped, in ascending
// order.
func (c *Cluster) Crashed() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var procs []int
	for p := 0; p < c.cfg.N; p++ {
		if c.crashed[p] {
			procs = append(procs, p)
		}
	}
	return procs
}

// recordSend registers a send event in the trace (and, when payload
// logging is on, in the message log) and returns its handle.
func (c *Cluster) recordSend(from, to int, payload []byte) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	handle := c.builder.Send(model.ProcID(from), model.ProcID(to))
	if c.payloads != nil {
		c.payloads[handle] = append([]byte(nil), payload...)
	}
	return handle
}

// Payload returns the logged payload of a message (by the message id of
// the recorded pattern). It reports false when payload logging is off or
// the id is unknown.
func (c *Cluster) Payload(id int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.payloads[id]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// recordDeliver registers a delivery event in the trace.
func (c *Cluster) recordDeliver(handle int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.builder.Deliver(handle)
}

// recordCheckpoint registers a checkpoint in the trace and persists it.
// It is the protocol sink of every node, called from the node goroutine.
func (c *Cluster) recordCheckpoint(rec core.CheckpointRecord) {
	if rec.Kind != model.KindInitial {
		c.mu.Lock()
		c.builder.Checkpoint(model.ProcID(rec.Proc), rec.Kind, rec.TDV)
		c.mu.Unlock()
	}
	c.ins.checkpoint(rec)
	var fl *obs.FlightRecorder
	var ckStart time.Time
	if c.ins != nil && c.ins.flight != nil && rec.Kind != model.KindInitial {
		fl = c.ins.flight
		ckStart = time.Now()
	}
	var state []byte
	if c.cfg.Snapshot != nil {
		state = c.cfg.Snapshot(rec.Proc)
	}
	// The protocol cannot roll a checkpoint back, so a failed write has no
	// caller to return to — count it, trace it, and hand it to the error
	// sink so the application learns its stable storage is degraded before
	// a recovery needs it.
	if err := c.store.Put(storage.Checkpoint{
		Proc:  rec.Proc,
		Index: rec.Index,
		Kind:  rec.Kind,
		TDV:   rec.TDV,
		State: state,
	}); err != nil {
		c.ins.storeError(rec.Proc, err)
		c.reportError(fmt.Errorf("cluster: persist checkpoint (%d,%d): %w", rec.Proc, rec.Index, err))
	}
	if fl != nil {
		// The checkpoint span covers the state snapshot plus the store
		// round trip; forced checkpoints carry the visible predicate that
		// fired and parent to the span whose operation forced them (the
		// delivering or sending span of this node's goroutine).
		kind, detail := obs.SpanCheckpoint, rec.Kind.String()
		if rec.Kind == model.KindForced {
			kind, detail = obs.SpanForced, rec.Predicate
		}
		var trace, parent uint64
		if n := c.nodes[rec.Proc]; n != nil {
			trace, parent = n.curTrace, n.curSpan
		}
		fl.Record(obs.Span{
			TraceID: trace, ID: fl.NextID(), Parent: parent, Kind: kind,
			Proc: rec.Proc, Start: ckStart.UnixMicro(),
			Dur: time.Since(ckStart).Microseconds(), Detail: detail,
		})
	}
}

// Metrics is an aggregate snapshot of a cluster's activity.
type Metrics struct {
	// Sent counts messages sent (equals deliveries once quiesced).
	Sent int
	// Basic and Forced count checkpoints across all processes (initial
	// checkpoints excluded).
	Basic  int
	Forced int
	// PiggybackBytes is the published protocol's control information per
	// message times the number of messages sent.
	PiggybackBytes int
}

// Metrics synchronizes with every node and returns aggregate counters.
func (c *Cluster) Metrics() (Metrics, error) {
	var m Metrics
	for _, node := range c.nodes {
		st, err := node.Status()
		if err != nil {
			return Metrics{}, err
		}
		m.Basic += st.Basic
		m.Forced += st.Forced
	}
	c.mu.Lock()
	m.Sent = c.builder.NextMessageID()
	c.mu.Unlock()
	m.PiggybackBytes = m.Sent * c.nodes[0].inst.WireSize()
	return m, nil
}
