package cluster

import (
	"testing"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/obs"
)

// TestClusterObsMatchesProtocolCounters is the end-to-end accounting
// check: after a quiesced BHMR run, the registry's checkpoint counters
// must equal the protocol instances' own Basic()/Forced() counts (as
// reported by Node.Status()), the per-predicate attribution must sum to
// the forced total, and the traffic counters must match the recorded
// pattern.
func TestClusterObsMatchesProtocolCounters(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 14)
	c, err := New(Config{
		N:        4,
		Protocol: core.KindBHMR,
		Obs:      reg,
		Tracer:   tr,
		Handler:  echoApp,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	const rounds = 25
	for i := 0; i < rounds; i++ {
		for p := 0; p < 4; p++ {
			if err := c.Node(p).Send((p+1)%4, []byte("ping")); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		if i%5 == 0 {
			for p := 0; p < 4; p++ {
				if err := c.Node(p).Checkpoint(); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			}
		}
	}
	c.Quiesce()

	wantBasic, wantForced := 0, 0
	for p := 0; p < 4; p++ {
		st, err := c.Node(p).Status()
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		wantBasic += st.Basic
		wantForced += st.Forced
	}
	if wantBasic == 0 || wantForced == 0 {
		t.Fatalf("degenerate run: basic=%d forced=%d", wantBasic, wantForced)
	}

	snap := reg.Snapshot()
	if got := snap.CounterValue("rdt_checkpoints_total", "protocol", "bhmr", "kind", "basic"); got != int64(wantBasic) {
		t.Errorf("obs basic = %d, protocol counters say %d", got, wantBasic)
	}
	if got := snap.CounterValue("rdt_checkpoints_total", "protocol", "bhmr", "kind", "forced"); got != int64(wantForced) {
		t.Errorf("obs forced = %d, protocol counters say %d", got, wantForced)
	}
	if got := snap.SumCounters("rdt_forced_checkpoints_total"); got != int64(wantForced) {
		t.Errorf("predicate attribution sums to %d, forced total is %d", got, wantForced)
	}

	p, err := c.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	msgs := int64(len(p.Messages))
	if got := snap.CounterValue("rdt_cluster_sends_total", "protocol", "bhmr"); got != msgs {
		t.Errorf("obs sends = %d, pattern has %d messages", got, msgs)
	}
	if got := snap.CounterValue("rdt_cluster_deliveries_total", "protocol", "bhmr"); got != msgs {
		t.Errorf("obs deliveries = %d, pattern has %d messages", got, msgs)
	}
	if got := snap.CounterValue("rdt_transport_frames_total", "transport", "local"); got != msgs {
		t.Errorf("obs transport frames = %d, pattern has %d messages", got, msgs)
	}

	// The transport decorator timed every hop, and the node goroutine
	// timed every mailbox wait.
	hop, ok := snap.Get("rdt_transport_hop_seconds", "transport", "local")
	if !ok || hop.Count != msgs {
		t.Errorf("hop histogram count = %d (ok=%v), want %d", hop.Count, ok, msgs)
	}
	lat, ok := snap.Get("rdt_cluster_delivery_latency_seconds", "protocol", "bhmr")
	if !ok || lat.Count != msgs {
		t.Errorf("delivery latency count = %d (ok=%v), want %d", lat.Count, ok, msgs)
	}
	quiesce, ok := snap.Get("rdt_cluster_quiesce_wait_seconds", "protocol", "bhmr")
	if !ok || quiesce.Count != 1 {
		t.Errorf("quiesce wait count = %d (ok=%v), want 1", quiesce.Count, ok)
	}

	// Every forced checkpoint left a predicate-tagged event in the ring.
	forcedEvents := 0
	for _, ev := range tr.Tail(0) {
		if ev.Type == obs.EventForcedCheckpoint {
			forcedEvents++
			if ev.Predicate == "" {
				t.Errorf("forced-checkpoint event %d has no predicate", ev.Seq)
			}
		}
	}
	if forcedEvents != wantForced {
		t.Errorf("tracer has %d forced-checkpoint events, want %d", forcedEvents, wantForced)
	}
}

// TestClusterObsOffByDefault: without a registry or tracer the cluster
// must not allocate instruments (the nil fast path).
func TestClusterObsOffByDefault(t *testing.T) {
	c, err := New(Config{N: 2, Protocol: core.KindBHMR})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if c.ins != nil {
		t.Error("instruments allocated although observability is off")
	}
	if _, err := c.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}
