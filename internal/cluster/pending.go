package cluster

import (
	"context"
	"sync"
)

// pending counts outstanding work items (queued operations and in-flight
// frames) so Quiesce can wait for the cluster to become idle.
type pending struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int
}

func newPending() *pending {
	p := &pending{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pending) add(delta int) {
	p.mu.Lock()
	p.count += delta
	if p.count <= 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

func (p *pending) done() { p.add(-1) }

// wait blocks until the count reaches zero.
func (p *pending) wait() {
	p.mu.Lock()
	for p.count > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// waitCtx blocks until the count reaches zero or the context ends,
// returning the context's error in the latter case. This is what keeps a
// lost frame from hanging quiescence forever: the leaked count degrades
// to a timeout instead of a deadlock.
func (p *pending) waitCtx(ctx context.Context) error {
	if ctx.Done() == nil {
		p.wait()
		return nil
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			// Broadcast under the lock: a waiter holds it from its
			// ctx.Err check until cond.Wait suspends, so the wakeup
			// cannot slip into that window.
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		case <-stop:
		}
	}()
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.count > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.cond.Wait()
	}
	return nil
}
