package cluster

import "sync"

// pending counts outstanding work items (queued operations and in-flight
// frames) so Quiesce can wait for the cluster to become idle.
type pending struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int
}

func newPending() *pending {
	p := &pending{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pending) add(delta int) {
	p.mu.Lock()
	p.count += delta
	if p.count <= 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

func (p *pending) done() { p.add(-1) }

// wait blocks until the count reaches zero.
func (p *pending) wait() {
	p.mu.Lock()
	for p.count > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}
