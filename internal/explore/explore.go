// Package explore exhaustively enumerates the interleavings of a small
// distributed scenario — fixed per-process scripts of sends and basic
// checkpoints, plus every possible delivery order over asynchronous
// channels — and replays a checkpointing protocol over each interleaving.
// It is model checking in miniature: where the simulator samples the
// schedule space, the explorer covers it, so protocol properties (RDT,
// Z-cycle freedom, correct dependency vectors) are verified for *every*
// execution of the scenario, not just the sampled ones.
package explore

import (
	"errors"
	"fmt"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/model"
)

// OpKind classifies a scripted action.
type OpKind int

// Scripted actions: sending an application message and taking a basic
// checkpoint. (Deliveries are not scripted — the explorer enumerates every
// admissible position for them.)
const (
	OpSend OpKind = iota + 1
	OpCheckpoint
)

// Op is one scripted action of a process.
type Op struct {
	Kind OpKind
	To   int // destination, for OpSend
}

// Send returns a scripted send to the given process.
func Send(to int) Op { return Op{Kind: OpSend, To: to} }

// Checkpoint returns a scripted basic checkpoint.
func Checkpoint() Op { return Op{Kind: OpCheckpoint} }

// Choice is one step of a schedule: either the next scripted action of
// process Proc, or the delivery of message Msg.
type Choice struct {
	Deliver bool
	Proc    int // for script steps
	Msg     int // message id, for deliveries
}

// Result summarizes an exhaustive exploration.
type Result struct {
	// Executions is the number of complete schedules enumerated.
	Executions int
}

// Check inspects one complete execution: the schedule that produced it and
// the finalized pattern the protocol left behind (with all forced
// checkpoints and dependency-vector annotations). Returning an error
// aborts the exploration with that error, wrapped with the schedule.
type Check func(schedule []Choice, p *model.Pattern) error

// ErrTooManyExecutions guards against accidentally unbounded scenarios.
var ErrTooManyExecutions = errors.New("scenario exceeds the execution budget")

// maxExecutions bounds the number of schedules a scenario may generate.
const maxExecutions = 2_000_000

// Run enumerates every interleaving of the scripts (one per process) with
// every admissible delivery order, replays the protocol over each, and
// calls check on every complete execution.
func Run(kind core.Kind, scripts [][]Op, check Check) (*Result, error) {
	n := len(scripts)
	if n < 2 {
		return nil, fmt.Errorf("explore: need at least 2 processes, have %d", n)
	}
	for i, script := range scripts {
		for _, op := range script {
			if op.Kind == OpSend && (op.To < 0 || op.To >= n || op.To == i) {
				return nil, fmt.Errorf("explore: process %d has a send to invalid destination %d", i, op.To)
			}
		}
	}
	e := &explorer{
		kind:    kind,
		scripts: scripts,
		n:       n,
		pos:     make([]int, n),
		check:   check,
	}
	if err := e.dfs(); err != nil {
		return nil, err
	}
	return &Result{Executions: e.executions}, nil
}

// pendingMsg is a sent, not yet delivered message during enumeration.
type pendingMsg struct {
	id int
	to int
}

type explorer struct {
	kind    core.Kind
	scripts [][]Op
	n       int

	pos        []int // next script index per process
	pending    []pendingMsg
	nextMsg    int
	schedule   []Choice
	executions int
	check      Check
}

func (e *explorer) dfs() error {
	progressed := false

	// Option A: advance any process's script.
	for i := 0; i < e.n; i++ {
		if e.pos[i] >= len(e.scripts[i]) {
			continue
		}
		progressed = true
		op := e.scripts[i][e.pos[i]]
		e.pos[i]++
		e.schedule = append(e.schedule, Choice{Proc: i})
		if op.Kind == OpSend {
			e.pending = append(e.pending, pendingMsg{id: e.nextMsg, to: op.To})
			e.nextMsg++
		}
		err := e.dfs()
		// Undo.
		if op.Kind == OpSend {
			e.pending = e.pending[:len(e.pending)-1]
			e.nextMsg--
		}
		e.schedule = e.schedule[:len(e.schedule)-1]
		e.pos[i]--
		if err != nil {
			return err
		}
	}

	// Option B: deliver any pending message.
	for k := 0; k < len(e.pending); k++ {
		progressed = true
		msg := e.pending[k]
		e.pending = append(e.pending[:k:k], e.pending[k+1:]...)
		e.schedule = append(e.schedule, Choice{Deliver: true, Msg: msg.id})
		err := e.dfs()
		e.schedule = e.schedule[:len(e.schedule)-1]
		// Undo: reinsert at position k.
		e.pending = append(e.pending, pendingMsg{})
		copy(e.pending[k+1:], e.pending[k:])
		e.pending[k] = msg
		if err != nil {
			return err
		}
	}

	if progressed {
		return nil
	}
	// Leaf: a complete execution. Replay it under the protocol.
	e.executions++
	if e.executions > maxExecutions {
		return fmt.Errorf("explore: %w (over %d)", ErrTooManyExecutions, maxExecutions)
	}
	p, err := e.replay()
	if err != nil {
		return fmt.Errorf("explore: schedule %v: %w", e.schedule, err)
	}
	if err := e.check(e.schedule, p); err != nil {
		return fmt.Errorf("explore: schedule %v: %w", e.schedule, err)
	}
	return nil
}

// replay executes the current schedule against fresh protocol instances
// and returns the finalized pattern.
func (e *explorer) replay() (*model.Pattern, error) {
	builder := model.NewBuilder(e.n)
	insts := make([]core.Instance, e.n)
	for i := 0; i < e.n; i++ {
		inst, err := core.New(e.kind, i, e.n, func(rec core.CheckpointRecord) {
			if rec.Kind == model.KindInitial {
				return
			}
			builder.Checkpoint(model.ProcID(rec.Proc), rec.Kind, rec.TDV)
		})
		if err != nil {
			return nil, err
		}
		insts[i] = inst
	}

	type flight struct {
		from   int
		to     int
		handle int
		pb     core.Piggyback
	}
	var (
		pos     = make([]int, e.n)
		flights = make(map[int]flight)
		nextMsg int
	)
	for _, c := range e.schedule {
		if c.Deliver {
			f, ok := flights[c.Msg]
			if !ok {
				return nil, fmt.Errorf("replay: delivery of unknown message %d", c.Msg)
			}
			delete(flights, c.Msg)
			insts[f.to].OnArrival(f.from, f.pb)
			if err := builder.Deliver(f.handle); err != nil {
				return nil, err
			}
			continue
		}
		op := e.scripts[c.Proc][pos[c.Proc]]
		pos[c.Proc]++
		switch op.Kind {
		case OpSend:
			pb, forceAfter := insts[c.Proc].OnSend(op.To)
			handle := builder.Send(model.ProcID(c.Proc), model.ProcID(op.To))
			if forceAfter {
				insts[c.Proc].CheckpointAfterSend()
			}
			flights[nextMsg] = flight{from: c.Proc, to: op.To, handle: handle, pb: pb}
			nextMsg++
		case OpCheckpoint:
			insts[c.Proc].TakeBasicCheckpoint()
		default:
			return nil, fmt.Errorf("replay: unknown op kind %d", op.Kind)
		}
	}
	return builder.Finalize()
}
