package explore

import (
	"errors"
	"fmt"
	"testing"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/rgraph"
)

// twoProcScenario: P0 sends twice around a checkpoint, P1 answers once and
// checkpoints — a scenario dense in zigzag opportunities.
func twoProcScenario() [][]Op {
	return [][]Op{
		{Send(1), Checkpoint(), Send(1)},
		{Send(0), Checkpoint()},
	}
}

// threeProcScenario: a ring with one checkpoint, the minimal shape that
// produces multi-hop non-causal chains.
func threeProcScenario() [][]Op {
	return [][]Op{
		{Send(1)},
		{Send(2), Checkpoint()},
		{Send(0)},
	}
}

func TestRunValidatesScenario(t *testing.T) {
	if _, err := Run(core.KindBHMR, [][]Op{{Send(1)}}, nil); err == nil {
		t.Error("single-process scenario accepted")
	}
	if _, err := Run(core.KindBHMR, [][]Op{{Send(0)}, {}}, nil); err == nil {
		t.Error("self-send accepted")
	}
	if _, err := Run(core.KindBHMR, [][]Op{{Send(7)}, {}}, nil); err == nil {
		t.Error("out-of-range send accepted")
	}
}

func TestEnumerationCountsAndValidity(t *testing.T) {
	// Every enumerated execution must be a valid pattern delivering all
	// three messages, and the same scenario must produce the same count
	// for every protocol (the choice tree is protocol-independent).
	counts := make(map[core.Kind]int)
	for _, kind := range []core.Kind{core.KindNone, core.KindBHMR} {
		res, err := Run(kind, twoProcScenario(), func(_ []Choice, p *model.Pattern) error {
			if err := p.Validate(); err != nil {
				return err
			}
			if len(p.Messages) != 3 {
				return fmt.Errorf("got %d messages, want 3", len(p.Messages))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		counts[kind] = res.Executions
	}
	if counts[core.KindNone] != counts[core.KindBHMR] {
		t.Errorf("execution counts differ across protocols: %v", counts)
	}
	if counts[core.KindBHMR] < 100 {
		t.Errorf("suspiciously few executions: %d", counts[core.KindBHMR])
	}
}

// TestExhaustiveRDT is the exhaustive soundness theorem for small
// scenarios: over EVERY schedule of both scenarios, every RDT protocol
// yields a pattern with no untrackable rollback dependency and correct
// dependency-vector annotations.
func TestExhaustiveRDT(t *testing.T) {
	scenarios := map[string][][]Op{
		"2proc": twoProcScenario(),
		"3proc": threeProcScenario(),
	}
	kinds := []core.Kind{
		core.KindBHMR, core.KindBHMRNoSimple, core.KindBHMRCausalOnly,
		core.KindFDAS, core.KindFDI, core.KindNRAS, core.KindCBR, core.KindCAS,
	}
	for name, scripts := range scenarios {
		for _, kind := range kinds {
			t.Run(name+"/"+kind.String(), func(t *testing.T) {
				res, err := Run(kind, scripts, func(_ []Choice, p *model.Pattern) error {
					rep, err := rgraph.CheckRDT(p, 1)
					if err != nil {
						return err
					}
					if !rep.RDT {
						return fmt.Errorf("RDT violated: %v", rep.Violations)
					}
					return rgraph.VerifyRecordedTDVs(p)
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Executions == 0 {
					t.Fatal("no executions enumerated")
				}
			})
		}
	}
}

// TestExhaustiveCorollary45: over every schedule, the vector recorded with
// every checkpoint of the paper's protocol is the minimum consistent
// global checkpoint containing it.
func TestExhaustiveCorollary45(t *testing.T) {
	_, err := Run(core.KindBHMR, twoProcScenario(), func(_ []Choice, p *model.Pattern) error {
		for i := 0; i < p.N; i++ {
			for x := range p.Checkpoints[i] {
				ck := &p.Checkpoints[i][x]
				if ck.TDV == nil {
					continue
				}
				min, err := rgraph.MinConsistentContaining(p, ck.ID())
				if err != nil {
					return err
				}
				if !min.Equal(model.GlobalCheckpoint(ck.TDV)) {
					return fmt.Errorf("%v: TDV %v != min %v", ck.ID(), ck.TDV, min)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExhaustiveBCSZigzagFreedom: over every schedule, BCS leaves no
// useless checkpoint — while the uncoordinated baseline does, in at least
// one schedule of the same scenario.
func TestExhaustiveBCSZigzagFreedom(t *testing.T) {
	countUseless := func(p *model.Pattern) (int, error) {
		chains, err := rgraph.NewChains(p)
		if err != nil {
			return 0, err
		}
		useless := 0
		for i := 0; i < p.N; i++ {
			for x := range p.Checkpoints[i] {
				if chains.Useless(model.CkptID{Proc: model.ProcID(i), Index: x}) {
					useless++
				}
			}
		}
		return useless, nil
	}
	if _, err := Run(core.KindBCS, twoProcScenario(), func(_ []Choice, p *model.Pattern) error {
		useless, err := countUseless(p)
		if err != nil {
			return err
		}
		if useless > 0 {
			return fmt.Errorf("BCS produced %d useless checkpoints", useless)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	sawUseless := false
	if _, err := Run(core.KindNone, twoProcScenario(), func(_ []Choice, p *model.Pattern) error {
		useless, err := countUseless(p)
		if err != nil {
			return err
		}
		if useless > 0 {
			sawUseless = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawUseless {
		t.Error("no uncoordinated schedule produced a useless checkpoint; scenario too tame")
	}
}

// TestExhaustiveBHMRNeverWorseThanFDAS compares forced-checkpoint counts
// schedule by schedule: summed over the whole space, the paper's protocol
// takes no more forced checkpoints than FDAS, and strictly fewer in at
// least one schedule. (Per-schedule counts can cross in either direction
// because decisions change the downstream run; the aggregate cannot.)
func TestExhaustiveBHMRNeverWorseThanFDAS(t *testing.T) {
	forcedTotal := func(kind core.Kind) int {
		total := 0
		if _, err := Run(kind, twoProcScenario(), func(_ []Choice, p *model.Pattern) error {
			total += p.Stats().Forced
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return total
	}
	bhmr := forcedTotal(core.KindBHMR)
	fdas := forcedTotal(core.KindFDAS)
	if bhmr >= fdas {
		t.Errorf("BHMR forced %d, FDAS %d over the full schedule space", bhmr, fdas)
	}
}

// TestCheckErrorsAbortWithSchedule: a failing check surfaces the schedule
// that produced the counterexample.
func TestCheckErrorsAbortWithSchedule(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(core.KindBHMR, threeProcScenario(), func(_ []Choice, _ *model.Pattern) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

// TestExhaustiveRDTDeep covers a three-process scenario with checkpoints
// on every process — tens of thousands of schedules — for the paper's
// protocol. Skipped with -short.
func TestExhaustiveRDTDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep exploration skipped in short mode")
	}
	scripts := [][]Op{
		{Send(1), Checkpoint()},
		{Send(2), Checkpoint()},
		{Send(0), Checkpoint()},
	}
	res, err := Run(core.KindBHMR, scripts, func(_ []Choice, p *model.Pattern) error {
		rep, err := rgraph.CheckRDT(p, 1)
		if err != nil {
			return err
		}
		if !rep.RDT {
			return fmt.Errorf("RDT violated: %v", rep.Violations)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions < 10_000 {
		t.Errorf("deep scenario enumerated only %d schedules", res.Executions)
	}
	t.Logf("verified RDT over %d schedules", res.Executions)
}
