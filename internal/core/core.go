// Package core implements the communication-induced checkpointing
// protocols: the paper's protocol (called BHMR here, after its authors)
// with its two published variants, Wang's FDAS and FDI, Russell's
// no-receive-after-send, checkpoint-before-receive, Wu–Fuchs
// checkpoint-after-send, and an uncoordinated baseline.
//
// Each protocol is a per-process state machine (Instance) driven by three
// hooks: TakeBasicCheckpoint when the application checkpoints
// independently, OnSend when it sends, and OnArrival when a message
// arrives and is about to be delivered. OnArrival evaluates the protocol's
// visible condition and, when it holds, takes a forced checkpoint *before*
// the delivery, breaking the non-causal message chains the condition
// detected. All checkpoints are announced through a Sink callback so the
// embedding engine (simulator or runtime) can record them in the trace in
// the right order.
//
// Every instance — whatever the protocol — maintains and records
// transitive dependency vectors, so that all traces carry the annotation
// used by the offline analyses; WireSize reports the control information
// the *published* protocol actually piggybacks.
package core

import (
	"fmt"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/vclock"
)

// Kind identifies a checkpointing protocol.
type Kind int

// The protocols. All of them except KindNone and KindBCS guarantee the
// RDT property (KindBCS guarantees the weaker Z-cycle freedom); they are
// ordered roughly from least to most conservative (fewest to most forced
// checkpoints).
const (
	// KindNone takes no forced checkpoints: processes checkpoint
	// independently. Runs may violate RDT and exhibit useless checkpoints
	// and the domino effect.
	KindNone Kind = iota + 1
	// KindBCS is the Briatico–Ciuffoletti–Simoncini index-based protocol:
	// processes piggyback a checkpoint sequence number and take a forced
	// checkpoint (adopting the higher number) before delivering a message
	// from the future. It guarantees that no checkpoint is useless (every
	// checkpoint belongs to the consistent cut of its sequence number —
	// Z-cycle freedom) but NOT the stronger RDT property; it is included
	// as the classic weaker-guarantee comparator.
	KindBCS
	// KindBHMR is the paper's protocol (Figure 6): condition C1 ∨ C2 with
	// the full simple/causal tracking of causal siblings.
	KindBHMR
	// KindBHMRNoSimple is variant 1 of Section 5.1: the simple array is
	// dropped and C2 is replaced by C2' (any new dependency closing a
	// causal chain back to the current interval forces a checkpoint).
	KindBHMRNoSimple
	// KindBHMRCausalOnly is variant 2 of Section 5.1: the simple array is
	// dropped, the diagonal of the causal matrix is kept permanently
	// false, and C1 alone is used.
	KindBHMRCausalOnly
	// KindFDAS is Wang's Fixed-Dependency-After-Send: force when a message
	// carrying a new dependency arrives after the first send of the
	// current interval.
	KindFDAS
	// KindFDI is Wang's Fixed-Dependency-Interval: force when a message
	// carrying a new dependency arrives in a non-empty interval.
	KindFDI
	// KindNRAS is Russell's No-Receive-After-Send: force before any
	// delivery when a send already occurred in the current interval.
	KindNRAS
	// KindCBR is Checkpoint-Before-Receive: force before any delivery in a
	// non-empty interval, so every delivery opens its interval.
	KindCBR
	// KindCAS is Wu–Fuchs Checkpoint-After-Send: take a checkpoint
	// immediately after every send, so every send closes its interval.
	KindCAS
)

// String returns the protocol's conventional name.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindBCS:
		return "bcs"
	case KindBHMR:
		return "bhmr"
	case KindBHMRNoSimple:
		return "bhmr-a"
	case KindBHMRCausalOnly:
		return "bhmr-b"
	case KindFDAS:
		return "fdas"
	case KindFDI:
		return "fdi"
	case KindNRAS:
		return "nras"
	case KindCBR:
		return "cbr"
	case KindCAS:
		return "cas"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind maps a protocol name (as produced by String) back to its Kind.
func ParseKind(name string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown protocol %q", name)
}

// Kinds returns every protocol kind, least conservative first.
func Kinds() []Kind {
	return []Kind{
		KindNone, KindBCS, KindBHMR, KindBHMRNoSimple, KindBHMRCausalOnly,
		KindFDAS, KindFDI, KindNRAS, KindCBR, KindCAS,
	}
}

// RDTKinds returns the protocols that guarantee the RDT property.
func RDTKinds() []Kind {
	return []Kind{
		KindBHMR, KindBHMRNoSimple, KindBHMRCausalOnly,
		KindFDAS, KindFDI, KindNRAS, KindCBR, KindCAS,
	}
}

// Piggyback is the control information attached to an application message.
// Fields not used by a protocol are nil.
type Piggyback struct {
	// TDV is the sender's transitive dependency vector at send time.
	TDV vclock.Vec
	// SN is the sender's checkpoint sequence number (KindBCS only).
	SN int
	// Simple is the sender's simple array (KindBHMR only): Simple[k] is
	// true when all causal message chains known to the sender from
	// C_{k,TDV[k]} are simple (contain no intermediate checkpoint).
	Simple vclock.Bools
	// Causal is the sender's causal matrix (BHMR family): Causal[k][l] is
	// true when the sender knows an on-line trackable R-path from
	// C_{k,TDV[k]} to C_{l,TDV[l]}.
	Causal *vclock.Matrix
}

// Clone deep-copies the piggyback (transports that do not serialize must
// clone to preserve message-passing semantics).
func (pb Piggyback) Clone() Piggyback {
	out := Piggyback{SN: pb.SN}
	if pb.TDV != nil {
		out.TDV = pb.TDV.Clone()
	}
	if pb.Simple != nil {
		out.Simple = pb.Simple.Clone()
	}
	if pb.Causal != nil {
		out.Causal = pb.Causal.Clone()
	}
	return out
}

// CheckpointRecord announces a local checkpoint taken by an instance.
type CheckpointRecord struct {
	Proc  int
	Index int
	Kind  model.CheckpointKind
	TDV   vclock.Vec // the vector recorded with the checkpoint

	// Predicate names the visible condition that fired, for forced
	// checkpoints ("C1", "C2", "C2'", "fdas", "fdi", "nras", "cbr",
	// "after-send", "future-sn"); empty otherwise. It is what lets the
	// observability layer attribute forced-checkpoint overhead to the
	// exact clause of the protocol's visible characterization.
	Predicate string
}

// Sink receives checkpoint records in the order they are taken. It may be
// nil when the embedder does not record traces.
type Sink func(CheckpointRecord)

// Instance is the per-process protocol state machine. Instances are not
// safe for concurrent use; the embedding engine serializes calls.
type Instance interface {
	// Kind returns the protocol this instance runs.
	Kind() Kind
	// Proc returns the process this instance belongs to.
	Proc() int

	// TakeBasicCheckpoint records an application-initiated (basic) local
	// checkpoint.
	TakeBasicCheckpoint()

	// OnSend must be called when the process sends a message to process
	// to. It returns the piggyback to attach and whether the protocol
	// requires a forced checkpoint immediately after the send event; the
	// engine must then call CheckpointAfterSend once the send has been
	// recorded.
	//
	// The returned piggyback is an immutable snapshot of the sender's
	// control state: callers must not modify it (use Clone first), and
	// consecutive sends with no intervening checkpoint or delivery may
	// return the same shared snapshot, since sends do not change the
	// piggybacked state.
	OnSend(to int) (pb Piggyback, forceAfter bool)

	// CheckpointAfterSend takes the forced checkpoint requested by OnSend.
	CheckpointAfterSend()

	// OnArrival must be called when a message from process from, carrying
	// pb, arrives and is about to be delivered. It reports whether the
	// protocol took a forced checkpoint before the delivery, merges the
	// piggybacked control information, and accounts for the delivery.
	OnArrival(from int, pb Piggyback) (forced bool)

	// TDV returns a copy of the current transitive dependency vector.
	TDV() vclock.Vec
	// CurrentInterval returns the index of the current checkpoint interval
	// (the index of the next checkpoint).
	CurrentInterval() int
	// Forced and Basic return how many forced and basic checkpoints this
	// instance has taken (the initial checkpoint counts as neither).
	Forced() int
	Basic() int

	// WireSize returns the number of bytes of control information the
	// published protocol piggybacks per message for this system size
	// (4-byte checkpoint indexes, bit-packed boolean structures).
	WireSize() int
}

// New creates a protocol instance for process proc in a system of n
// processes. The sink may be nil. The instance immediately takes the
// initial checkpoint C_{proc,0}, announcing it to the sink, as the model
// prescribes.
func New(k Kind, proc, n int, sink Sink) (Instance, error) {
	if n <= 0 || proc < 0 || proc >= n {
		return nil, fmt.Errorf("new %v instance: process %d out of range [0,%d)", k, proc, n)
	}
	switch k {
	case KindNone, KindBCS, KindFDAS, KindFDI, KindNRAS, KindCBR, KindCAS:
		return newVector(k, proc, n, sink), nil
	case KindBHMR, KindBHMRNoSimple, KindBHMRCausalOnly:
		return newBHMR(k, proc, n, sink), nil
	default:
		return nil, fmt.Errorf("unknown protocol kind %d", int(k))
	}
}
