package core

import (
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/vclock"
)

// bhmr implements the paper's protocol (Figure 6) and its two variants
// (Section 5.1). The per-process state extends the base with:
//
//   - simple[j]  — true when, to this process's knowledge, every causal
//     message chain from C_{j,TDV[j]} to the current state is simple, i.e.
//     crosses no intermediate checkpoint (full protocol only);
//   - causal[k][l] — true when, to this process's knowledge, there is an
//     on-line trackable R-path from C_{k,TDV[k]} to C_{l,TDV[l]}.
//
// The visible condition forcing a checkpoint before delivering m is
// C1 ∨ C2 (full), C1 ∨ C2' (variant A, no simple array), or C1 alone with
// a permanently-false causal diagonal (variant B).
type bhmr struct {
	base

	simple vclock.Bools   // nil for variants A and B
	causal *vclock.Matrix // diagonal permanently false for variant B
}

var _ Instance = (*bhmr)(nil)

func newBHMR(kind Kind, proc, n int, sink Sink) *bhmr {
	b := &bhmr{base: newBase(kind, proc, n, sink)}
	if kind == KindBHMRCausalOnly {
		b.causal = vclock.NewMatrix(n) // all false, including the diagonal
	} else {
		b.causal = vclock.IdentityMatrix(n)
	}
	if kind == KindBHMR {
		b.simple = vclock.NewBools(n)
		b.simple[proc] = true // permanently true
	}
	b.takeCheckpoint(model.KindInitial)
	return b
}

// takeCheckpoint is the procedure of Figure 6: reset sent_to, reset the
// simple entries of the other processes and this process's causal row,
// record the checkpoint with the current TDV, and open the next interval.
func (b *bhmr) takeCheckpoint(kind model.CheckpointKind) {
	b.takeCheckpointPred(kind, "")
}

// takeCheckpointPred is takeCheckpoint with the forced-checkpoint
// attribution (the visible-condition clause that fired).
func (b *bhmr) takeCheckpointPred(kind model.CheckpointKind, predicate string) {
	if b.simple != nil {
		for j := range b.simple {
			if j != b.proc {
				b.simple[j] = false
			}
		}
	}
	keep := b.proc
	if b.kind == KindBHMRCausalOnly {
		keep = -1 // variant B also keeps the diagonal entry false
	}
	b.causal.ClearRowExcept(b.proc, keep)
	b.recordPred(kind, predicate)
}

func (b *bhmr) TakeBasicCheckpoint() { b.takeCheckpoint(model.KindBasic) }

func (b *bhmr) OnSend(to int) (Piggyback, bool) {
	b.sentTo[to] = true
	b.events++
	if !b.pbSnapOK {
		b.pbSnap = Piggyback{TDV: b.tdv.Clone(), Causal: b.causal.Clone()}
		if b.simple != nil {
			b.pbSnap.Simple = b.simple.Clone()
		}
		b.pbSnapOK = true
	}
	return b.pbSnap, false
}

func (b *bhmr) CheckpointAfterSend() { b.takeCheckpointPred(model.KindForced, "after-send") }

func (b *bhmr) OnArrival(from int, pb Piggyback) bool {
	b.invalidateSnapshot() // merge below mutates the piggybacked state
	predicate := b.condition(pb)
	if predicate != "" {
		b.takeCheckpointPred(model.KindForced, predicate)
	}
	b.merge(from, pb)
	b.events++
	return predicate != ""
}

// condition evaluates the variant's visible condition on the pre-delivery
// state, returning the name of the clause that fired ("" when delivery
// needs no forced checkpoint). C1 is checked first, so a message firing
// both clauses is attributed to C1.
func (b *bhmr) condition(pb Piggyback) string {
	if b.c1(pb) {
		return "C1"
	}
	switch b.kind {
	case KindBHMR:
		if b.c2(pb) {
			return "C2"
		}
	case KindBHMRNoSimple:
		if b.c2prime(pb) {
			return "C2'"
		}
	default: // KindBHMRCausalOnly: C1 alone
	}
	return ""
}

// c1 is predicate C1: to this process's knowledge there is a breakable
// non-causal message chain, formed by m followed by a message already sent
// in the current interval, that has no causal sibling:
//
//	∃j: sent_to[j] ∧ ∃k: (m.TDV[k] > TDV[k] ∧ ¬m.causal[k][j])
func (b *bhmr) c1(pb Piggyback) bool {
	for j := range b.sentTo {
		if !b.sentTo[j] {
			continue
		}
		for k := range b.tdv {
			if pb.TDV[k] > b.tdv[k] && !pb.Causal.At(k, j) {
				return true
			}
		}
	}
	return false
}

// c2 is predicate C2: m closes a causal message chain issued from the
// current interval (m.TDV[i] = TDV[i]) that crossed a checkpoint
// (¬m.simple[i]) — breaking it here is the only way to prevent a
// non-causal chain from some C_{k,z} back to C_{k,z-1}.
func (b *bhmr) c2(pb Piggyback) bool {
	return pb.TDV[b.proc] == b.tdv[b.proc] && !pb.Simple[b.proc]
}

// c2prime is variant A's replacement for C2: m closes a causal chain
// issued from the current interval and brings any new dependency.
func (b *bhmr) c2prime(pb Piggyback) bool {
	return pb.TDV[b.proc] == b.tdv[b.proc] && b.newDependency(pb)
}

// merge applies the control-variable update of Figure 6 after the
// (possibly forced) checkpoint and before the delivery.
func (b *bhmr) merge(from int, pb Piggyback) {
	for k := range b.tdv {
		switch {
		case pb.TDV[k] > b.tdv[k]:
			b.tdv[k] = pb.TDV[k]
			if b.simple != nil {
				b.simple[k] = pb.Simple[k]
			}
			b.causal.CopyRow(k, pb.Causal)
		case pb.TDV[k] == b.tdv[k]:
			if b.simple != nil {
				b.simple[k] = b.simple[k] && pb.Simple[k]
			}
			b.causal.OrRow(k, pb.Causal)
		}
	}
	b.causal.Set(from, b.proc, true)
	b.causal.OrColInto(b.proc, from)
	if b.kind == KindBHMRCausalOnly {
		b.causal.ClearDiagonal()
	}
}

func (b *bhmr) WireSize() int {
	bits := func(n int) int { return (n + 7) / 8 }
	size := 4*b.n + bits(b.n*b.n) // TDV + causal matrix
	if b.kind == KindBHMR {
		size += bits(b.n) // simple array
	}
	return size
}

// Predicates exposes every visible condition of the protocol hierarchy,
// evaluated on this instance's current state for a message carrying pb.
// It exists so tests can verify the published implications pointwise
// (C1 ∨ C2 ⇒ C_FDAS ⇒ C_FDI and C_FDAS ⇒ C_NRAS ⇒ C_CBR).
type Predicates struct {
	C1, C2, C2Prime        bool
	FDAS, FDI, NRAS, CBR   bool
	NewDependency, Closing bool
}

// Evaluate computes all predicates on the instance's pre-delivery state.
// It requires pb to carry the full BHMR piggyback and must be called
// before OnArrival for the same message.
func (b *bhmr) Evaluate(pb Piggyback) Predicates {
	return Predicates{
		C1:            b.c1(pb),
		C2:            b.simple != nil && b.c2(pb),
		C2Prime:       b.c2prime(pb),
		FDAS:          b.afterFirstSend() && b.newDependency(pb),
		FDI:           b.events > 0 && b.newDependency(pb),
		NRAS:          b.afterFirstSend(),
		CBR:           b.events > 0,
		NewDependency: b.newDependency(pb),
		Closing:       pb.TDV[b.proc] == b.tdv[b.proc],
	}
}
