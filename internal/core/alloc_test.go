package core

import (
	"testing"
)

// TestOnSendAllocBudget locks in the piggyback snapshot cache: a burst of
// sends with no intervening checkpoint or delivery must reuse one cached
// snapshot, so steady-state OnSend allocates nothing. The budgets are
// deliberately tight — a regression to per-send cloning fails immediately.
func TestOnSendAllocBudget(t *testing.T) {
	const n = 8
	for _, kind := range Kinds() {
		if kind == KindCAS {
			// CAS closes the interval after every send, so each send
			// legitimately rebuilds the snapshot.
			continue
		}
		t.Run(kind.String(), func(t *testing.T) {
			inst, err := New(kind, 0, n, nil)
			if err != nil {
				t.Fatal(err)
			}
			inst.OnSend(1) // warm the snapshot cache
			avg := testing.AllocsPerRun(200, func() {
				inst.OnSend(1)
			})
			if avg > 0 {
				t.Errorf("steady-state OnSend allocates %.2f objects/op, want 0", avg)
			}
		})
	}
}

// TestOnSendSnapshotInvalidation verifies the cache is dropped on every
// state mutation: snapshots taken before and after a checkpoint or a
// delivery must differ, and earlier snapshots must stay intact.
func TestOnSendSnapshotInvalidation(t *testing.T) {
	inst, err := New(KindBHMR, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	pb1, _ := inst.OnSend(1)
	inst.TakeBasicCheckpoint()
	pb2, _ := inst.OnSend(1)
	if pb1.TDV[0] != 1 || pb2.TDV[0] != 2 {
		t.Fatalf("snapshots not invalidated across checkpoint: %v then %v", pb1.TDV, pb2.TDV)
	}

	// A delivery merges state: the next send must see the new dependency,
	// while the pre-delivery snapshot stays frozen.
	peer, err := New(KindBHMR, 1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	peer.TakeBasicCheckpoint()
	peerPB, _ := peer.OnSend(0)
	inst.OnArrival(1, peerPB)
	pb3, _ := inst.OnSend(1)
	if pb3.TDV[1] != peerPB.TDV[1] {
		t.Errorf("post-delivery snapshot misses merged dependency: %v", pb3.TDV)
	}
	if pb2.TDV[1] == pb3.TDV[1] {
		t.Errorf("pre-delivery snapshot mutated in place: %v", pb2.TDV)
	}
}
