package core

import (
	"testing"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/rgraph"
)

// harness couples protocol instances with a pattern builder, replicating
// what the simulator and the runtime do, so unit tests can drive exact
// interleavings and then hand the recorded pattern to the offline oracle.
type harness struct {
	t       *testing.T
	n       int
	builder *model.Builder
	insts   []Instance
}

type sentMsg struct {
	handle int
	from   int
	pb     Piggyback
}

func newHarness(t *testing.T, kind Kind, n int) *harness {
	t.Helper()
	h := &harness{t: t, n: n, builder: model.NewBuilder(n)}
	for i := 0; i < n; i++ {
		i := i
		inst, err := New(kind, i, n, func(rec CheckpointRecord) {
			if rec.Kind == model.KindInitial {
				return
			}
			h.builder.Checkpoint(model.ProcID(rec.Proc), rec.Kind, rec.TDV)
		})
		if err != nil {
			t.Fatalf("new instance %d: %v", i, err)
		}
		h.insts = append(h.insts, inst)
	}
	return h
}

// send performs the send event of from -> to and returns the in-flight
// message.
func (h *harness) send(from, to int) sentMsg {
	h.t.Helper()
	pb, forceAfter := h.insts[from].OnSend(to)
	handle := h.builder.Send(model.ProcID(from), model.ProcID(to))
	if forceAfter {
		h.insts[from].CheckpointAfterSend()
	}
	return sentMsg{handle: handle, from: from, pb: pb}
}

// deliver performs the arrival and delivery of m at process to, reporting
// whether the protocol forced a checkpoint.
func (h *harness) deliver(m sentMsg, to int) bool {
	h.t.Helper()
	forced := h.insts[to].OnArrival(m.from, m.pb.Clone())
	if err := h.builder.Deliver(m.handle); err != nil {
		h.t.Fatalf("deliver: %v", err)
	}
	return forced
}

func (h *harness) checkpoint(proc int) { h.insts[proc].TakeBasicCheckpoint() }

func (h *harness) pattern() *model.Pattern {
	h.t.Helper()
	p, err := h.builder.Finalize()
	if err != nil {
		h.t.Fatalf("finalize: %v", err)
	}
	return p
}

// figure3Drive replays the situation of Figure 3 of the paper on a live
// protocol. Processes: P_k=0, P_l=1, P_i=2, P_j=3.
//
// P_i sends m' (here m3) to P_j and later receives m from P_l, so every
// dependency m carries could start a non-causal chain [m m'] towards P_j.
// The drive arranges for *all* of those dependencies — on P_k, on P_l
// itself, and on P_j — to have causal siblings reaching P_j, and for the
// sibling knowledge to have travelled to P_l (through P_j's message m2,
// the σ” of the figure) before P_l sends m. The paper's protocol sees
// m.causal[·][j] true for every new dependency and must NOT force; FDAS
// sees only "new dependency after a send" and must.
func figure3Drive(h *harness) (forcedAtL, forcedAtI bool) {
	const (
		pk = 0
		pl = 1
		pi = 2
		pj = 3
	)
	// m' of the figure: P_i -> P_j, making sent_to_i[j] true. Delivered
	// right away (the chain [m m'] exists regardless of the real-time
	// order of its hops — that is what makes it a zigzag).
	m3 := h.send(pi, pj)
	h.deliver(m3, pj)
	// P_l -> P_j: gives P_l's current interval a causal path to P_j
	// (recorded by P_j as causal[l][j] = true).
	mx := h.send(pl, pj)
	h.deliver(mx, pj)
	// σ' of the figure: P_k -> P_j; P_j records causal[k][j] = true.
	m1 := h.send(pk, pj)
	h.deliver(m1, pj)
	// σ'' of the figure: P_j -> P_l. Under the paper's protocol P_l is not
	// forced: its only send (mx) targets P_j and every new dependency in
	// m2 is covered by m2.causal[·][j]. The merge hands P_l the full
	// sibling knowledge. (FDAS is forced already here.)
	m2 := h.send(pj, pl)
	forcedAtL = h.deliver(m2, pl)
	// m of the figure: P_l -> P_i.
	m := h.send(pl, pi)
	forcedAtI = h.deliver(m, pi)
	return forcedAtL, forcedAtI
}

func TestFigure3SiblingKnowledgeSuppressesForcedCheckpoint(t *testing.T) {
	h := newHarness(t, KindBHMR, 4)
	forcedAtL, forcedAtI := figure3Drive(h)
	if forcedAtL {
		t.Fatal("P_l forced on σ'' although every chain towards P_j is visibly doubled")
	}
	if forcedAtI {
		t.Fatal("BHMR forced although the non-causal chain is causally doubled and the doubling is visible")
	}
	// Let the oracle confirm no hidden dependency was created: the pattern
	// must satisfy RDT without any forced checkpoint.
	p := h.pattern()
	rep, err := rgraph.CheckRDT(p, 4)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.RDT {
		t.Fatalf("skipping the checkpoint broke RDT: %v", rep.Violations)
	}
	if err := rgraph.VerifyRecordedTDVs(p); err != nil {
		t.Fatalf("TDVs: %v", err)
	}
	if got := p.Stats().Forced; got != 0 {
		t.Errorf("forced checkpoints = %d, want 0", got)
	}
}

func TestFigure3FDASForcesWhereBHMRNeedNot(t *testing.T) {
	h := newHarness(t, KindFDAS, 4)
	forcedAtL, forcedAtI := figure3Drive(h)
	if !forcedAtI {
		t.Fatal("FDAS did not force at P_i — the suppression comparison is vacuous")
	}
	if !forcedAtL {
		t.Fatal("FDAS did not force at P_l either; expected both")
	}
	p := h.pattern()
	rep, err := rgraph.CheckRDT(p, 4)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.RDT {
		t.Fatalf("FDAS run not RDT: %v", rep.Violations)
	}
	if got := p.Stats().Forced; got != 2 {
		t.Errorf("forced checkpoints = %d, want 2", got)
	}
}

// TestHarnessMatchesOracleOnScriptedRuns drives a few scripted
// interleavings through every protocol and cross-checks the recorded
// vectors — a deterministic complement to the randomized soundness suite.
func TestHarnessMatchesOracleOnScriptedRuns(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			h := newHarness(t, kind, 3)
			ma := h.send(0, 1)
			mb := h.send(1, 2)
			h.deliver(mb, 2)
			h.checkpoint(2)
			mc := h.send(2, 0)
			h.deliver(ma, 1)
			h.deliver(mc, 0)
			h.checkpoint(0)
			md := h.send(0, 2)
			h.deliver(md, 2)
			p := h.pattern()
			if err := rgraph.VerifyRecordedTDVs(p); err != nil {
				t.Fatalf("TDVs: %v", err)
			}
			// Only the RDT protocols promise trackability; this very
			// interleaving is one where BCS (Z-cycle freedom only) leaves
			// untrackable R-paths behind.
			if kind == KindNone || kind == KindBCS {
				return
			}
			rep, err := rgraph.CheckRDT(p, 4)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if !rep.RDT {
				t.Fatalf("scripted run violated RDT: %v", rep.Violations)
			}
		})
	}
}
