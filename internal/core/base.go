package core

import (
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/vclock"
)

// base carries the state every protocol maintains: the transitive
// dependency vector, the sent_to array, and interval accounting.
type base struct {
	kind Kind
	proc int
	n    int
	sink Sink

	tdv    vclock.Vec
	sentTo vclock.Bools

	// events counts the send and delivery events of the current interval.
	events int
	forced int
	basic  int

	// sn is the checkpoint sequence number of the BCS protocol: bumped on
	// basic checkpoints, adopted from the piggyback on forced ones.
	sn int

	// pbSnap caches the piggyback snapshot of the current control state.
	// Sends do not change the piggybacked state (TDV, simple, causal, sn),
	// so consecutive sends with no intervening checkpoint or delivery can
	// share one immutable snapshot instead of cloning per message. Any
	// state mutation (recordPred, OnArrival) invalidates it.
	pbSnap   Piggyback
	pbSnapOK bool
}

func newBase(kind Kind, proc, n int, sink Sink) base {
	return base{
		kind:   kind,
		proc:   proc,
		n:      n,
		sink:   sink,
		tdv:    vclock.NewVec(n),
		sentTo: vclock.NewBools(n),
	}
}

func (b *base) Kind() Kind           { return b.kind }
func (b *base) Proc() int            { return b.proc }
func (b *base) TDV() vclock.Vec      { return b.tdv.Clone() }
func (b *base) CurrentInterval() int { return b.tdv[b.proc] }
func (b *base) Forced() int          { return b.forced }
func (b *base) Basic() int           { return b.basic }

// afterFirstSend reports whether a send occurred in the current interval
// (Wang's after_first_send flag, derivable from sent_to).
func (b *base) afterFirstSend() bool { return b.sentTo.Any() }

// record performs the protocol-independent part of take_checkpoint: it
// resets sent_to, announces the checkpoint (whose index is the current
// interval index) with a copy of the dependency vector, and advances
// TDV[proc] to the new interval.
func (b *base) record(kind model.CheckpointKind) {
	b.recordPred(kind, "")
}

// recordPred is record with the forced-checkpoint attribution: predicate
// names the visible condition that fired (empty for basic and initial
// checkpoints).
func (b *base) recordPred(kind model.CheckpointKind, predicate string) {
	b.invalidateSnapshot()
	b.sentTo.Reset()
	b.events = 0
	switch kind {
	case model.KindForced:
		b.forced++
	case model.KindBasic:
		b.basic++
	}
	if b.sink != nil {
		b.sink(CheckpointRecord{
			Proc:      b.proc,
			Index:     b.tdv[b.proc],
			Kind:      kind,
			TDV:       b.tdv.Clone(),
			Predicate: predicate,
		})
	}
	b.tdv[b.proc]++
}

// invalidateSnapshot drops the cached piggyback snapshot; it must be
// called before any mutation of the piggybacked control state.
func (b *base) invalidateSnapshot() { b.pbSnapOK = false }

// newDependency reports whether the piggybacked vector carries a dependency
// the local vector does not know yet (∃k: m.TDV[k] > TDV[k]).
func (b *base) newDependency(pb Piggyback) bool {
	for k := range b.tdv {
		if pb.TDV[k] > b.tdv[k] {
			return true
		}
	}
	return false
}

// vector is the instance type for all protocols whose per-process state is
// just the base: the uncoordinated baseline and the index/flag protocols
// None, FDAS, FDI, NRAS, CBR, CAS. Their only difference is the visible
// condition evaluated on arrival (and, for CAS, the checkpoint-after-send
// rule).
type vector struct {
	base
}

var _ Instance = (*vector)(nil)

func newVector(kind Kind, proc, n int, sink Sink) *vector {
	v := &vector{base: newBase(kind, proc, n, sink)}
	v.record(model.KindInitial)
	return v
}

func (v *vector) TakeBasicCheckpoint() {
	v.sn++
	v.record(model.KindBasic)
}

func (v *vector) OnSend(to int) (Piggyback, bool) {
	v.sentTo[to] = true
	v.events++
	if !v.pbSnapOK {
		v.pbSnap = Piggyback{TDV: v.tdv.Clone()}
		if v.kind == KindBCS {
			v.pbSnap.SN = v.sn
		}
		v.pbSnapOK = true
	}
	return v.pbSnap, v.kind == KindCAS
}

func (v *vector) CheckpointAfterSend() { v.recordPred(model.KindForced, "after-send") }

func (v *vector) OnArrival(_ int, pb Piggyback) bool {
	v.invalidateSnapshot() // the merge below mutates the piggybacked state
	predicate := v.condition(pb)
	if predicate != "" {
		if v.kind == KindBCS {
			// Adopt the sender's sequence number: the forced checkpoint
			// joins the consistent cut of that number.
			v.sn = pb.SN
		}
		v.recordPred(model.KindForced, predicate)
	}
	v.tdv.MaxInto(pb.TDV)
	v.events++
	return predicate != ""
}

// condition evaluates the protocol's visible condition for a message about
// to be delivered, returning the name of the predicate that fired ("" when
// no forced checkpoint is needed).
func (v *vector) condition(pb Piggyback) string {
	switch v.kind {
	case KindBCS:
		if pb.SN > v.sn {
			return "future-sn"
		}
	case KindFDAS:
		if v.afterFirstSend() && v.newDependency(pb) {
			return "fdas"
		}
	case KindFDI:
		if v.events > 0 && v.newDependency(pb) {
			return "fdi"
		}
	case KindNRAS:
		if v.afterFirstSend() {
			return "nras"
		}
	case KindCBR:
		if v.events > 0 {
			return "cbr"
		}
	default: // KindNone, KindCAS: never forced on arrival
	}
	return ""
}

func (v *vector) WireSize() int {
	switch v.kind {
	case KindBCS:
		return 4 // the checkpoint sequence number
	case KindFDAS, KindFDI:
		return 4 * v.n // the dependency vector
	default: // None, NRAS, CBR, CAS need no piggybacked control information
		return 0
	}
}
