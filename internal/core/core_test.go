package core

import (
	"testing"

	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/vclock"
)

// recorder collects checkpoint records from an instance.
type recorder struct {
	recs []CheckpointRecord
}

func (r *recorder) sink(rec CheckpointRecord) { r.recs = append(r.recs, rec) }

func newInst(t *testing.T, k Kind, proc, n int) (Instance, *recorder) {
	t.Helper()
	rec := &recorder{}
	inst, err := New(k, proc, n, rec.sink)
	if err != nil {
		t.Fatalf("new %v: %v", k, err)
	}
	return inst, rec
}

func TestNewValidatesArguments(t *testing.T) {
	if _, err := New(KindBHMR, 3, 3, nil); err == nil {
		t.Error("accepted out-of-range process")
	}
	if _, err := New(KindBHMR, -1, 3, nil); err == nil {
		t.Error("accepted negative process")
	}
	if _, err := New(Kind(99), 0, 3, nil); err == nil {
		t.Error("accepted unknown kind")
	}
	if _, err := New(KindBHMR, 0, 0, nil); err == nil {
		t.Error("accepted empty system")
	}
}

func TestAllKindsTakeInitialCheckpoint(t *testing.T) {
	for _, k := range Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			inst, rec := newInst(t, k, 1, 3)
			if len(rec.recs) != 1 {
				t.Fatalf("records = %d, want 1", len(rec.recs))
			}
			r := rec.recs[0]
			if r.Kind != model.KindInitial || r.Index != 0 || r.Proc != 1 {
				t.Errorf("initial record = %+v", r)
			}
			if !r.TDV.Equal(vclock.NewVec(3)) {
				t.Errorf("initial TDV = %v, want zeros", r.TDV)
			}
			if inst.CurrentInterval() != 1 {
				t.Errorf("interval = %d, want 1", inst.CurrentInterval())
			}
			if inst.Proc() != 1 || inst.Kind() != k {
				t.Errorf("identity wrong: %d %v", inst.Proc(), inst.Kind())
			}
		})
	}
}

func TestBasicCheckpointAdvancesInterval(t *testing.T) {
	for _, k := range Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			inst, rec := newInst(t, k, 0, 2)
			inst.TakeBasicCheckpoint()
			if inst.CurrentInterval() != 2 {
				t.Errorf("interval = %d, want 2", inst.CurrentInterval())
			}
			if inst.Basic() != 1 || inst.Forced() != 0 {
				t.Errorf("counters basic=%d forced=%d", inst.Basic(), inst.Forced())
			}
			last := rec.recs[len(rec.recs)-1]
			if last.Kind != model.KindBasic || last.Index != 1 || last.TDV[0] != 1 {
				t.Errorf("record = %+v", last)
			}
		})
	}
}

func TestOnSendPiggybackContents(t *testing.T) {
	tests := []struct {
		kind       Kind
		wantSimple bool
		wantCausal bool
	}{
		{KindNone, false, false},
		{KindBCS, false, false},
		{KindFDAS, false, false},
		{KindFDI, false, false},
		{KindNRAS, false, false},
		{KindCBR, false, false},
		{KindCAS, false, false},
		{KindBHMR, true, true},
		{KindBHMRNoSimple, false, true},
		{KindBHMRCausalOnly, false, true},
	}
	for _, tt := range tests {
		t.Run(tt.kind.String(), func(t *testing.T) {
			inst, _ := newInst(t, tt.kind, 0, 3)
			pb, forceAfter := inst.OnSend(1)
			if forceAfter != (tt.kind == KindCAS) {
				t.Errorf("forceAfter = %v", forceAfter)
			}
			if pb.TDV == nil || pb.TDV[0] != 1 {
				t.Errorf("piggyback TDV = %v", pb.TDV)
			}
			if (pb.Simple != nil) != tt.wantSimple {
				t.Errorf("simple present = %v, want %v", pb.Simple != nil, tt.wantSimple)
			}
			if (pb.Causal != nil) != tt.wantCausal {
				t.Errorf("causal present = %v, want %v", pb.Causal != nil, tt.wantCausal)
			}
		})
	}
}

func TestPiggybackIsACopy(t *testing.T) {
	a, _ := newInst(t, KindBHMR, 0, 2)
	pb, _ := a.OnSend(1)
	// Mutating the instance afterwards must not change the piggyback.
	a.TakeBasicCheckpoint()
	if pb.TDV[0] != 1 {
		t.Errorf("piggyback TDV mutated: %v", pb.TDV)
	}
	clone := pb.Clone()
	clone.TDV[0] = 9
	clone.Simple[0] = false
	clone.Causal.Set(0, 1, true)
	if pb.TDV[0] == 9 || !pb.Simple[0] || pb.Causal.At(0, 1) {
		t.Error("Clone aliases original piggyback")
	}
}

func TestCASCheckpointsAfterEverySend(t *testing.T) {
	inst, rec := newInst(t, KindCAS, 0, 2)
	for s := 0; s < 3; s++ {
		_, force := inst.OnSend(1)
		if !force {
			t.Fatal("CAS did not request checkpoint after send")
		}
		inst.CheckpointAfterSend()
	}
	if inst.Forced() != 3 {
		t.Errorf("forced = %d, want 3", inst.Forced())
	}
	if got := rec.recs[len(rec.recs)-1].Index; got != 3 {
		t.Errorf("last index = %d, want 3", got)
	}
}

// shuttle delivers a message between two instances, returning whether the
// receiver was forced to checkpoint.
func shuttle(from, to Instance) bool {
	pb, forceAfter := from.OnSend(to.Proc())
	if forceAfter {
		from.CheckpointAfterSend()
	}
	return to.OnArrival(from.Proc(), pb.Clone())
}

func TestFDASForcesOnNewDependencyAfterSend(t *testing.T) {
	// P0 sends to P1, then receives a message carrying a new dependency:
	// FDAS must force a checkpoint before the delivery.
	p0, _ := newInst(t, KindFDAS, 0, 2)
	p1, _ := newInst(t, KindFDAS, 1, 2)

	if forced := shuttle(p0, p1); forced {
		t.Fatal("P1 forced with empty interval")
	}
	// P1 answers; its piggyback carries TDV[1] = 1, new for P0, and P0 has
	// sent in its current interval.
	if forced := shuttle(p1, p0); !forced {
		t.Fatal("FDAS did not force on new dependency after send")
	}
	if p0.Forced() != 1 {
		t.Errorf("forced = %d, want 1", p0.Forced())
	}
	// TDV merged after the forced checkpoint.
	if got := p0.TDV(); got[1] != 1 {
		t.Errorf("TDV = %v, want entry 1 = 1", got)
	}
}

func TestFDASDoesNotForceWithoutPriorSend(t *testing.T) {
	p0, _ := newInst(t, KindFDAS, 0, 2)
	p1, _ := newInst(t, KindFDAS, 1, 2)
	if forced := shuttle(p1, p0); forced {
		t.Fatal("FDAS forced although no send occurred in the interval")
	}
}

func TestNRASForcesOnAnyDeliveryAfterSend(t *testing.T) {
	p0, _ := newInst(t, KindNRAS, 0, 2)
	p1, _ := newInst(t, KindNRAS, 1, 2)
	// P0 delivers without having sent: not forced.
	if forced := shuttle(p1, p0); forced {
		t.Fatal("NRAS forced on receive-only interval")
	}
	// P1 sent above and now delivers: forced, even though the message
	// brings no dependency P1 does not already know.
	if forced := shuttle(p0, p1); !forced {
		t.Fatal("NRAS did not force on delivery after send")
	}
}

func TestCBRForcesOnNonEmptyInterval(t *testing.T) {
	p0, _ := newInst(t, KindCBR, 0, 2)
	p1, _ := newInst(t, KindCBR, 1, 2)
	if forced := shuttle(p0, p1); forced {
		t.Fatal("CBR forced on empty interval")
	}
	// Second delivery: interval now holds the first delivery.
	if forced := shuttle(p0, p1); !forced {
		t.Fatal("CBR did not force on non-empty interval")
	}
}

func TestFDIForcesOnNewDependencyInNonEmptyInterval(t *testing.T) {
	p0, _ := newInst(t, KindFDI, 0, 3)
	p1, _ := newInst(t, KindFDI, 1, 3)
	p2, _ := newInst(t, KindFDI, 2, 3)
	// P2 delivers from P0: empty interval, not forced.
	if forced := shuttle(p0, p2); forced {
		t.Fatal("FDI forced on empty interval")
	}
	// P2 delivers from P1: non-empty interval, new dependency => forced,
	// even though P2 never sent (FDAS would not force here).
	if forced := shuttle(p1, p2); !forced {
		t.Fatal("FDI did not force")
	}
}

func TestNoneNeverForces(t *testing.T) {
	p0, _ := newInst(t, KindNone, 0, 2)
	p1, _ := newInst(t, KindNone, 1, 2)
	for i := 0; i < 5; i++ {
		if shuttle(p0, p1) || shuttle(p1, p0) {
			t.Fatal("uncoordinated protocol forced a checkpoint")
		}
	}
	if p0.Forced()+p1.Forced() != 0 {
		t.Error("forced counters non-zero")
	}
}

// TestBHMRLessConservativeThanFDAS reproduces the canonical situation where
// FDAS forces but the paper's protocol does not: a request/response pair
// with no intervening checkpoint. The response closes a *simple* causal
// chain issued from P0's current interval, so every dependency it brings is
// causally doubled and no checkpoint is needed.
func TestBHMRLessConservativeThanFDAS(t *testing.T) {
	bh0, _ := newInst(t, KindBHMR, 0, 2)
	bh1, _ := newInst(t, KindBHMR, 1, 2)
	if forced := shuttle(bh0, bh1); forced {
		t.Fatal("request forced a checkpoint")
	}
	if forced := shuttle(bh1, bh0); forced {
		t.Fatal("BHMR forced on a causally doubled dependency")
	}

	// Same exchange under FDAS: the response carries TDV[1]=1 > 0 and P0
	// sent in its interval, so FDAS forces.
	fd0, _ := newInst(t, KindFDAS, 0, 2)
	fd1, _ := newInst(t, KindFDAS, 1, 2)
	if forced := shuttle(fd0, fd1); forced {
		t.Fatal("request forced a checkpoint")
	}
	if forced := shuttle(fd1, fd0); !forced {
		t.Fatal("FDAS did not force — hierarchy test is vacuous")
	}
}

// TestBHMRC2Scenario reproduces Figure 4's structure: a causal chain leaves
// P0's current interval, crosses a checkpoint at P1, and returns to P0.
// Only P0 can break the resulting non-causal chain from C_{1,z} to
// C_{1,z-1}, so condition C2 must fire.
func TestBHMRC2Scenario(t *testing.T) {
	p0, _ := newInst(t, KindBHMR, 0, 2)
	p1, _ := newInst(t, KindBHMR, 1, 2)

	if forced := shuttle(p0, p1); forced { // m' : P0 -> P1
		t.Fatal("first hop forced")
	}
	p1.TakeBasicCheckpoint()                // C_{1,z} : the chain now crosses a checkpoint
	if forced := shuttle(p1, p0); !forced { // m'' : P1 -> P0, closes the chain
		t.Fatal("C2 did not force although the returning chain is non-simple")
	}
	if p0.Forced() != 1 {
		t.Errorf("forced = %d, want 1", p0.Forced())
	}
}

// TestBHMRVariantsOnC2Scenario checks both published variants also break
// the Figure 4 chain (they are more conservative than the full protocol).
func TestBHMRVariantsOnC2Scenario(t *testing.T) {
	for _, k := range []Kind{KindBHMRNoSimple, KindBHMRCausalOnly} {
		t.Run(k.String(), func(t *testing.T) {
			p0, _ := newInst(t, k, 0, 2)
			p1, _ := newInst(t, k, 1, 2)
			if forced := shuttle(p0, p1); forced {
				t.Fatal("first hop forced")
			}
			p1.TakeBasicCheckpoint()
			if forced := shuttle(p1, p0); !forced {
				t.Fatalf("%v did not break the returning chain", k)
			}
		})
	}
}

// TestVariantsMoreConservativeThanFull: on the plain request/response (no
// checkpoint at the responder) the full protocol takes no forced
// checkpoint; variant A forces via C2' and variant B via C1 (its causal
// diagonal is permanently false). This is the price of the smaller
// piggyback the paper describes in Section 5.1.
func TestVariantsMoreConservativeThanFull(t *testing.T) {
	for _, tt := range []struct {
		kind   Kind
		forced bool
	}{
		{KindBHMR, false},
		{KindBHMRNoSimple, true},
		{KindBHMRCausalOnly, true},
	} {
		t.Run(tt.kind.String(), func(t *testing.T) {
			p0, _ := newInst(t, tt.kind, 0, 2)
			p1, _ := newInst(t, tt.kind, 1, 2)
			if forced := shuttle(p0, p1); forced {
				t.Fatal("request forced")
			}
			if forced := shuttle(p1, p0); forced != tt.forced {
				t.Errorf("response forced = %v, want %v", forced, tt.forced)
			}
		})
	}
}

func TestBHMRSimpleSelfEntryInvariant(t *testing.T) {
	p0, _ := newInst(t, KindBHMR, 0, 3)
	p1, _ := newInst(t, KindBHMR, 1, 3)
	for i := 0; i < 4; i++ {
		shuttle(p0, p1)
		shuttle(p1, p0)
		p1.TakeBasicCheckpoint()
		bh, ok := p0.(*bhmr)
		if !ok {
			t.Fatal("unexpected instance type")
		}
		if !bh.simple[0] {
			t.Fatal("simple[self] lost its permanently-true invariant")
		}
		if bh.tdv[0] != bh.CurrentInterval() {
			t.Fatal("TDV[self] is not the current interval")
		}
	}
}

func TestBHMRCausalOnlyDiagonalStaysFalse(t *testing.T) {
	p0, _ := newInst(t, KindBHMRCausalOnly, 0, 3)
	p1, _ := newInst(t, KindBHMRCausalOnly, 1, 3)
	p2, _ := newInst(t, KindBHMRCausalOnly, 2, 3)
	for i := 0; i < 3; i++ {
		shuttle(p0, p1)
		shuttle(p1, p2)
		shuttle(p2, p0)
		p1.TakeBasicCheckpoint()
	}
	for _, inst := range []Instance{p0, p1, p2} {
		bh := inst.(*bhmr)
		for k := 0; k < 3; k++ {
			if bh.causal.At(k, k) {
				t.Fatalf("diagonal (%d,%d) set on %v", k, k, inst.Proc())
			}
		}
	}
}

func TestPredicateImplicationsOnCraftedPiggybacks(t *testing.T) {
	// For a BHMR instance in an arbitrary (here: post-send) state, the
	// paper's implications must hold for any piggyback: C1 ∨ C2 ⇒ C_FDAS,
	// C2 ⇒ C2', and C_FDAS ⇒ C_FDI ∧ C_NRAS.
	inst, _ := newInst(t, KindBHMR, 0, 3)
	inst.OnSend(1)
	bh := inst.(*bhmr)

	pbs := []Piggyback{
		{TDV: vclock.Vec{0, 1, 0}, Simple: vclock.Bools{true, true, false}, Causal: vclock.IdentityMatrix(3)},
		{TDV: vclock.Vec{1, 2, 2}, Simple: vclock.Bools{false, true, false}, Causal: vclock.NewMatrix(3)},
		{TDV: vclock.Vec{0, 0, 0}, Simple: vclock.Bools{true, true, true}, Causal: vclock.IdentityMatrix(3)},
		{TDV: vclock.Vec{1, 3, 1}, Simple: vclock.Bools{false, false, false}, Causal: vclock.NewMatrix(3)},
	}
	for i, pb := range pbs {
		pred := bh.Evaluate(pb)
		if (pred.C1 || pred.C2) && !pred.FDAS {
			t.Errorf("pb %d: C1∨C2 without C_FDAS: %+v", i, pred)
		}
		if pred.C2 && !pred.C2Prime {
			t.Errorf("pb %d: C2 without C2': %+v", i, pred)
		}
		if pred.FDAS && (!pred.FDI || !pred.NRAS) {
			t.Errorf("pb %d: C_FDAS without C_FDI/C_NRAS: %+v", i, pred)
		}
		if pred.NRAS && !pred.CBR {
			t.Errorf("pb %d: C_NRAS without C_CBR: %+v", i, pred)
		}
	}
}

func TestWireSizes(t *testing.T) {
	const n = 8
	sizes := make(map[Kind]int)
	for _, k := range Kinds() {
		inst, _ := newInst(t, k, 0, n)
		sizes[k] = inst.WireSize()
	}
	if sizes[KindNone] != 0 || sizes[KindNRAS] != 0 || sizes[KindCBR] != 0 || sizes[KindCAS] != 0 {
		t.Errorf("flag protocols should piggyback nothing: %v", sizes)
	}
	if sizes[KindFDAS] != 4*n {
		t.Errorf("FDAS = %d, want %d", sizes[KindFDAS], 4*n)
	}
	if sizes[KindBHMR] <= sizes[KindBHMRNoSimple] {
		t.Errorf("full BHMR (%d) should exceed variant A (%d)", sizes[KindBHMR], sizes[KindBHMRNoSimple])
	}
	if sizes[KindBHMRNoSimple] != sizes[KindBHMRCausalOnly] {
		t.Errorf("variants A and B should match: %v", sizes)
	}
	if sizes[KindBHMR] <= sizes[KindFDAS] {
		t.Errorf("BHMR (%d) must pay more than FDAS (%d)", sizes[KindBHMR], sizes[KindFDAS])
	}
}

func TestKindStringAndParse(t *testing.T) {
	for _, k := range Kinds() {
		parsed, err := ParseKind(k.String())
		if err != nil {
			t.Errorf("parse %v: %v", k, err)
		}
		if parsed != k {
			t.Errorf("round trip %v -> %v", k, parsed)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("parsed unknown name")
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestRDTKindsExcludesNone(t *testing.T) {
	for _, k := range RDTKinds() {
		if k == KindNone {
			t.Fatal("KindNone listed as an RDT protocol")
		}
	}
	for _, k := range RDTKinds() {
		if k == KindBCS {
			t.Fatal("KindBCS listed as an RDT protocol")
		}
	}
	if len(RDTKinds()) != len(Kinds())-2 {
		t.Errorf("RDTKinds = %v", RDTKinds())
	}
}

func TestNilSinkIsAllowed(t *testing.T) {
	for _, k := range Kinds() {
		inst, err := New(k, 0, 2, nil)
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		inst.TakeBasicCheckpoint()
		pb, force := inst.OnSend(1)
		if force {
			inst.CheckpointAfterSend()
		}
		inst.OnArrival(1, Piggyback{TDV: pb.TDV.Clone(), Simple: vclock.NewBools(2), Causal: vclock.IdentityMatrix(2)})
	}
}

func TestBCSForcesOnHigherSequenceNumber(t *testing.T) {
	p0, _ := newInst(t, KindBCS, 0, 2)
	p1, _ := newInst(t, KindBCS, 1, 2)
	// Equal sequence numbers: no forced checkpoint.
	if forced := shuttle(p0, p1); forced {
		t.Fatal("BCS forced on equal sequence number")
	}
	// P0 takes two basic checkpoints: its number jumps ahead.
	p0.TakeBasicCheckpoint()
	p0.TakeBasicCheckpoint()
	if forced := shuttle(p0, p1); !forced {
		t.Fatal("BCS did not force on a message from the future")
	}
	// The forced checkpoint adopted the number: the same number again does
	// not force.
	if forced := shuttle(p0, p1); forced {
		t.Fatal("BCS forced twice for the same sequence number")
	}
	if p1.Forced() != 1 {
		t.Errorf("forced = %d, want 1", p1.Forced())
	}
}

func TestBCSWireSize(t *testing.T) {
	inst, _ := newInst(t, KindBCS, 0, 64)
	if got := inst.WireSize(); got != 4 {
		t.Errorf("wire size = %d, want 4 (independent of n)", got)
	}
	pb, _ := inst.OnSend(1)
	if pb.SN != 0 {
		t.Errorf("piggybacked SN = %d, want 0 after only the initial checkpoint", pb.SN)
	}
	inst.TakeBasicCheckpoint()
	pb, _ = inst.OnSend(1)
	if pb.SN != 1 {
		t.Errorf("piggybacked SN = %d, want 1 after a basic checkpoint", pb.SN)
	}
	clone := pb.Clone()
	if clone.SN != pb.SN {
		t.Error("Clone dropped the sequence number")
	}
}
