package core

import (
	"testing"

	"github.com/rdt-go/rdt/internal/vclock"
)

// mkPB builds a full BHMR piggyback for crafting merge scenarios.
func mkPB(tdv []int, simple []bool, set ...[2]int) Piggyback {
	n := len(tdv)
	m := vclock.IdentityMatrix(n)
	for _, rc := range set {
		m.Set(rc[0], rc[1], true)
	}
	return Piggyback{TDV: vclock.Vec(tdv), Simple: vclock.Bools(simple), Causal: m}
}

// TestMergeOverwritesOnGreaterIndex: a piggyback carrying a strictly newer
// interval of P_k must replace row k of the causal matrix and the simple
// entry, not accumulate into them (the knowledge concerns a *different*
// checkpoint interval).
func TestMergeOverwritesOnGreaterIndex(t *testing.T) {
	inst, _ := newInst(t, KindBHMR, 0, 3)
	bh := inst.(*bhmr)

	// Seed stale knowledge about P_1's interval 0... first install interval 1
	// knowledge with causal[1][2] set.
	pb1 := mkPB([]int{0, 1, 0}, []bool{false, true, false}, [2]int{1, 2})
	bh.OnArrival(1, pb1)
	if !bh.causal.At(1, 2) || bh.tdv[1] != 1 {
		t.Fatalf("setup failed: tdv=%v causal=\n%v", bh.tdv, bh.causal)
	}

	// Now interval 2 of P_1 arrives without that path: row must be replaced.
	pb2 := mkPB([]int{0, 2, 0}, []bool{false, false, false})
	bh.OnArrival(1, pb2)
	if bh.tdv[1] != 2 {
		t.Errorf("tdv[1] = %d, want 2", bh.tdv[1])
	}
	if bh.causal.At(1, 2) {
		t.Error("stale causal[1][2] survived a newer interval")
	}
	if bh.simple[1] {
		t.Error("stale simple[1] survived a newer interval")
	}
}

// TestMergeAccumulatesOnEqualIndex: knowledge about the *same* interval is
// additive for the causal matrix (OR) and conjunctive for simple (AND).
func TestMergeAccumulatesOnEqualIndex(t *testing.T) {
	inst, _ := newInst(t, KindBHMR, 0, 4)
	bh := inst.(*bhmr)

	// Two messages reporting on the same interval 1 of P_1, with different
	// causal paths known.
	pbA := mkPB([]int{0, 1, 0, 0}, []bool{false, true, false, false}, [2]int{1, 2})
	pbB := mkPB([]int{0, 1, 0, 0}, []bool{false, false, false, false}, [2]int{1, 3})
	bh.OnArrival(1, pbA)
	bh.OnArrival(1, pbB)
	if !bh.causal.At(1, 2) || !bh.causal.At(1, 3) {
		t.Errorf("equal-interval knowledge not accumulated:\n%v", bh.causal)
	}
	if bh.simple[1] {
		t.Error("simple[1] should be false: one report said non-simple")
	}
}

// TestMergeSetsSenderColumnTransitively: after a delivery from P_s, every
// process l with a known path to P_s gains a path to the receiver
// (causal[l][i] |= causal[l][s]).
func TestMergeSetsSenderColumnTransitively(t *testing.T) {
	inst, _ := newInst(t, KindBHMR, 2, 4)
	bh := inst.(*bhmr)

	// The piggyback says: C_{0,1} has a trackable path to C_{1,1} (row 0,
	// column 1 true) and the sender is P_1.
	pb := mkPB([]int{1, 1, 0, 0}, []bool{true, true, false, false}, [2]int{0, 1})
	bh.OnArrival(1, pb)
	if !bh.causal.At(1, 2) {
		t.Error("causal[sender][receiver] not set")
	}
	if !bh.causal.At(0, 2) {
		t.Error("transitive closure through the sender column missing: P_0 -> P_1 -> P_2")
	}
}

// TestMergeIgnoresOlderIndexes: a piggyback about an older interval leaves
// local knowledge untouched.
func TestMergeIgnoresOlderIndexes(t *testing.T) {
	inst, _ := newInst(t, KindBHMR, 0, 3)
	bh := inst.(*bhmr)
	bh.OnArrival(1, mkPB([]int{0, 2, 0}, []bool{false, true, false}, [2]int{1, 2}))
	if !bh.causal.At(1, 2) {
		t.Fatal("setup failed")
	}
	// Old news about interval 1 cannot clear interval-2 knowledge.
	bh.OnArrival(1, mkPB([]int{0, 1, 0}, []bool{false, false, false}))
	if bh.tdv[1] != 2 || !bh.causal.At(1, 2) {
		t.Errorf("older piggyback corrupted state: tdv=%v", bh.tdv)
	}
}

// TestTakeCheckpointResetsOwnRowOnly: a local checkpoint resets the
// process's own causal row (except the diagonal) and the simple entries,
// but keeps knowledge about other processes' intervals.
func TestTakeCheckpointResetsOwnRowOnly(t *testing.T) {
	inst, _ := newInst(t, KindBHMR, 0, 3)
	bh := inst.(*bhmr)
	bh.OnArrival(1, mkPB([]int{0, 1, 0}, []bool{false, true, false}, [2]int{1, 2}, [2]int{0, 1}))
	// The merge copied row 1 and set causal[1][0]=true, closure col 0.
	inst.TakeBasicCheckpoint()
	if !bh.causal.At(0, 0) {
		t.Error("diagonal cleared by checkpoint")
	}
	for c := 1; c < 3; c++ {
		if bh.causal.At(0, c) {
			t.Errorf("own row entry (0,%d) survived checkpoint", c)
		}
	}
	if !bh.causal.At(1, 2) {
		t.Error("knowledge about P_1 wrongly cleared by local checkpoint")
	}
	if bh.simple[1] {
		t.Error("simple[1] survived checkpoint")
	}
	if !bh.simple[0] {
		t.Error("simple[self] must stay true")
	}
}
