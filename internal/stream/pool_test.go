package stream

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/service"
)

func poolTestService(t *testing.T, dir string) *service.Service {
	t.Helper()
	cfg := service.Config{}
	if dir != "" {
		cfg.DataDir = dir
		cfg.SnapshotEvery = 8
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dir != "" {
		if _, err := svc.Recover(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Drain(ctx)
	})
	return svc
}

func testBatch(n int) []service.Event {
	events := make([]service.Event, n)
	for i := range events {
		events[i] = service.Event{Op: service.OpCheckpoint, Proc: i % 2}
	}
	return events
}

// TestPoolFollowsMoved: a member's gate answers MOVED for sessions it
// does not own; the pool follows the redirect to the owner.
func TestPoolFollowsMoved(t *testing.T) {
	svcA := poolTestService(t, "")
	svcB := poolTestService(t, "")
	srvB, err := Serve("127.0.0.1:0", Config{Service: svcB})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close() //nolint:errcheck
	svcA.SetGate(func(id string) error {
		if strings.HasPrefix(id, "b-") {
			return &service.MovedError{Owner: "b", HTTP: "unused", Stream: srvB.Addr()}
		}
		return nil
	}, nil)
	srvA, err := Serve("127.0.0.1:0", Config{Service: svcA})
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close() //nolint:errcheck

	pool := NewPool([]string{srvA.Addr()})
	defer pool.Close() //nolint:errcheck
	ch, addr, err := pool.Open("b-42", 2, "p")
	if err != nil {
		t.Fatal(err)
	}
	if addr != srvB.Addr() {
		t.Fatalf("pool landed on %s, want owner %s", addr, srvB.Addr())
	}
	if err := ch.Send(testBatch(4)); err != nil {
		t.Fatal(err)
	}
	if err := ch.Seal(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ch.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	sess, err := svcB.Session("b-42")
	if err != nil {
		t.Fatal(err)
	}
	if v := sess.Verdict(0); v.EventsApplied != 4 {
		t.Fatalf("owner applied %d events, want 4", v.EventsApplied)
	}
}

// TestPoolResumeAfterRestart: the owner restarts from its data dir and
// the pool resumes the channel at the durable dedup watermark — every
// event applied exactly once whether or not its ack survived the cut.
func TestPoolResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	svc1, err := service.New(service.Config{DataDir: dir, SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.Recover(); err != nil {
		t.Fatal(err)
	}
	srv1, err := Serve("127.0.0.1:0", Config{Service: svc1})
	if err != nil {
		t.Fatal(err)
	}

	pool := NewPool([]string{srv1.Addr()})
	defer pool.Close() //nolint:errcheck
	ch, _, err := pool.Open("restart-1", 2, "p")
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Send(testBatch(5)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err = ch.Flush(ctx)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	// One batch deliberately left un-flushed across the cut: its ack
	// may or may not arrive before the server dies.
	if err := ch.Send(testBatch(3)); err != nil {
		t.Fatal(err)
	}

	_ = srv1.Close()
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = svc1.Drain(dctx)
	dcancel()
	if err != nil {
		t.Fatal(err)
	}

	svc2 := poolTestService(t, dir)
	srv2, err := Serve("127.0.0.1:0", Config{Service: svc2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close() //nolint:errcheck

	pool2 := NewPool([]string{srv2.Addr()})
	defer pool2.Close() //nolint:errcheck
	ch2, addr, err := pool2.Resume(ch)
	if err != nil {
		t.Fatal(err)
	}
	if addr != srv2.Addr() {
		t.Fatalf("resumed at %s, want %s", addr, srv2.Addr())
	}
	if err := ch2.Send(testBatch(2)); err != nil {
		t.Fatal(err)
	}
	if err := ch2.Seal(); err != nil {
		t.Fatal(err)
	}
	fctx, fcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer fcancel()
	if err := ch2.Flush(fctx); err != nil {
		t.Fatal(err)
	}
	sess, err := svc2.Session("restart-1")
	if err != nil {
		t.Fatal(err)
	}
	if v := sess.Verdict(0); v.EventsApplied != 10 {
		t.Fatalf("applied %d events across restart, want exactly 10", v.EventsApplied)
	}
}

// TestRedirector: the router's stream listener speaks just enough
// RDTSTRM1 to bounce every OPEN at the session's owner.
func TestRedirector(t *testing.T) {
	svc := poolTestService(t, "")
	srv, err := Serve("127.0.0.1:0", Config{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck

	rd, err := ServeRedirector("127.0.0.1:0", func(id string) (string, bool) {
		return srv.Addr(), true
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close() //nolint:errcheck

	pool := NewPool([]string{rd.Addr()})
	defer pool.Close() //nolint:errcheck
	ch, addr, err := pool.Open("red-1", 2, "p")
	if err != nil {
		t.Fatal(err)
	}
	if addr != srv.Addr() {
		t.Fatalf("landed on %s, want %s", addr, srv.Addr())
	}
	if err := ch.Send(testBatch(2)); err != nil {
		t.Fatal(err)
	}
	if err := ch.Seal(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ch.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// A redirector with no stream owner reports a session error.
	rd2, err := ServeRedirector("127.0.0.1:0", func(id string) (string, bool) {
		return "", false
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rd2.Close() //nolint:errcheck
	pool2 := NewPool([]string{rd2.Addr()})
	defer pool2.Close() //nolint:errcheck
	if _, _, err := pool2.Open("red-2", 2, "p"); err == nil {
		t.Fatal("open through ownerless redirector succeeded; want error")
	}
}
