package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/binenc"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/service"
)

// Config tunes a stream Server. Service is required; everything else
// falls back to a default.
type Config struct {
	// Service receives the decoded batches — through the exact same
	// Session apply path the HTTP ingest uses, so durability and verdict
	// semantics are shared.
	Service *service.Service
	// Registry receives the rdt_stream_* metrics; may be nil.
	Registry *obs.Registry
	// MaxFrame bounds one frame payload, in bytes. Oversized frames are
	// rejected with a clean protocol error before any allocation.
	MaxFrame int
	// Window is the per-channel credit window, in events: the most a
	// client may have sent but unacked. It bounds the server's
	// per-channel memory and is the backpressure mechanism — an
	// overloaded server simply acks (and thus replenishes) late.
	Window int
	// HandshakeTimeout bounds the wait for the client magic.
	HandshakeTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	return c
}

// Server accepts RDTSTRM1 connections and feeds the checking service.
type Server struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	conns    map[*serverConn]struct{}
	draining bool

	wg sync.WaitGroup

	mConns        *obs.Gauge
	mConnsTotal   *obs.Counter
	mChansTotal   *obs.Counter
	mEvents       *obs.Counter
	mDups         *obs.Counter
	mBackpressure *obs.Counter
	hApply        *obs.Histogram
}

// Serve starts a stream server on addr (":0" picks a port).
func Serve(addr string, cfg Config) (*Server, error) {
	if cfg.Service == nil {
		return nil, errors.New("stream: Config.Service is required")
	}
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen %s: %w", addr, err)
	}
	reg := cfg.Registry
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		conns: make(map[*serverConn]struct{}),

		mConns:        reg.Gauge("rdt_stream_connections"),
		mConnsTotal:   reg.Counter("rdt_stream_connections_total"),
		mChansTotal:   reg.Counter("rdt_stream_channels_total"),
		mEvents:       reg.Counter("rdt_stream_events_total"),
		mDups:         reg.Counter("rdt_stream_dup_frames_total"),
		mBackpressure: reg.Counter("rdt_stream_backpressure_waits_total"),
		// Stream latencies live in the µs-to-ms band; the decade-wide
		// LatencyBuckets would flatten them into two bars.
		hApply: reg.Histogram("rdt_stream_batch_apply_seconds", obs.MicroLatencyBuckets),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) frames(kind string) *obs.Counter {
	return s.cfg.Registry.Counter("rdt_stream_frames_total", "type", kind)
}

func (s *Server) protoErrors(code int) *obs.Counter {
	return s.cfg.Registry.Counter("rdt_stream_errors_total", "code", codeString(code))
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed: Shutdown or Close
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			_ = c.Close()
			continue
		}
		sc := newServerConn(s, c)
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.mConns.Add(1)
		s.mConnsTotal.Inc()
		s.wg.Add(1)
		go sc.serve()
	}
}

func (s *Server) dropConn(sc *serverConn) {
	s.mu.Lock()
	_, ok := s.conns[sc]
	delete(s.conns, sc)
	s.mu.Unlock()
	if ok {
		s.mConns.Add(-1)
	}
}

// Shutdown drains gracefully: the listener closes, every connection is
// told GOODBYE (stop sending, collect your acks), and Shutdown waits —
// up to the context deadline — for clients to hang up before forcing
// the stragglers closed. Events already accepted are acked through the
// normal path, so a well-behaved client loses nothing.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	for _, sc := range conns {
		sc.goodbye()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, sc := range conns {
			sc.close()
		}
		s.wg.Wait()
		return fmt.Errorf("stream: shutdown: %w", ctx.Err())
	}
}

// Close tears the server down immediately.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	s.draining = true
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.close()
	}
	s.wg.Wait()
	return err
}

// ackNote is one completion the session worker reports back to the
// connection: frame seq of channel ch applied (or failed), events many
// events' credit to return.
type ackNote struct {
	ch     uint64
	seq    uint64
	events int
	err    error
	start  time.Time
}

// serverConn is one accepted connection: a reader goroutine decoding
// and enqueueing frames, and an ack goroutine coalescing apply
// completions into ACK frames.
type serverConn struct {
	srv *Server
	fc  *frameConn

	acks     chan ackNote
	closedCh chan struct{}
	closed   sync.Once

	// Reader-goroutine state (no locking needed).
	chans    map[uint64]*serverChan
	nextChan uint64

	// eventBufs recycles decoded event slices: a slice travels to the
	// session queue and comes back through the batch's apply notify.
	eventBufs sync.Pool
}

type serverChan struct {
	id       uint64
	sess     *service.Session
	producer string
}

func newServerConn(s *Server, c net.Conn) *serverConn {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &serverConn{
		srv:      s,
		fc:       newFrameConn(c, s.cfg.MaxFrame),
		acks:     make(chan ackNote, 4096),
		closedCh: make(chan struct{}),
		chans:    make(map[uint64]*serverChan),
	}
}

func (sc *serverConn) close() {
	sc.closed.Do(func() {
		close(sc.closedCh)
		_ = sc.fc.Close()
	})
}

// goodbye asks the client to wind down; the connection stays open for
// the client's remaining acks until it hangs up.
func (sc *serverConn) goodbye() {
	_ = sc.fc.writeFrame([]byte{frameGoodbye})
}

// abort reports a connection-fatal protocol error and hangs up.
func (sc *serverConn) abort(code int, detail string) {
	sc.srv.protoErrors(code).Inc()
	var buf []byte
	buf = append(buf, frameError)
	buf = binenc.AppendInt(buf, code)
	buf = binenc.AppendUvarint(buf, 0)
	buf = binenc.AppendString(buf, detail)
	_ = sc.fc.writeFrame(buf)
	sc.close()
}

func (sc *serverConn) serve() {
	defer sc.srv.wg.Done()
	defer sc.srv.dropConn(sc)
	defer sc.close()

	if err := sc.handshake(); err != nil {
		sc.abort(CodeHandshake, err.Error())
		return
	}
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		sc.ackLoop()
	}()
	sc.readLoop()
	sc.close()
	<-ackDone
}

func (sc *serverConn) handshake() error {
	_ = sc.fc.c.SetReadDeadline(time.Now().Add(sc.srv.cfg.HandshakeTimeout))
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(sc.fc.r, magic[:]); err != nil {
		return fmt.Errorf("reading magic: %v", err)
	}
	if string(magic[:]) != Magic {
		return fmt.Errorf("bad magic %q", magic)
	}
	_ = sc.fc.c.SetReadDeadline(time.Time{})
	var buf []byte
	buf = append(buf, frameHello)
	buf = binenc.AppendInt(buf, Version)
	buf = binenc.AppendInt(buf, sc.srv.cfg.Window)
	buf = binenc.AppendInt(buf, sc.srv.cfg.MaxFrame)
	return sc.fc.writeFrame(buf)
}

func (sc *serverConn) readLoop() {
	for {
		payload, err := sc.fc.readFrame()
		if err != nil {
			var tooBig errFrameTooBig
			switch {
			case errors.As(err, &tooBig):
				sc.abort(CodeFrameTooBig, err.Error())
			case errors.Is(err, errBadCRC):
				sc.abort(CodeMalformed, err.Error())
			}
			return // EOF, reset, or closed by abort: done either way
		}
		r := binenc.NewReader(payload)
		var ok bool
		switch typ := r.Byte(); typ {
		case frameOpen:
			ok = sc.handleOpen(r)
		case frameEvents:
			ok = sc.handleEvents(r)
		case frameSeal:
			ok = sc.handleSeal(r)
		case frameClose:
			sc.srv.frames("close").Inc()
			delete(sc.chans, r.Uvarint())
			ok = true
		default:
			sc.abort(CodeMalformed, fmt.Sprintf("unknown frame type 0x%02x", typ))
		}
		if !ok {
			return
		}
	}
}

// chanError reports a channel-scoped failure; the connection lives on.
func (sc *serverConn) chanError(ch uint64, code int, detail string) {
	sc.srv.protoErrors(code).Inc()
	var buf []byte
	buf = append(buf, frameError)
	buf = binenc.AppendInt(buf, code)
	buf = binenc.AppendUvarint(buf, ch)
	buf = binenc.AppendString(buf, detail)
	_ = sc.fc.writeFrame(buf)
}

func (sc *serverConn) handleOpen(r *binenc.Reader) bool {
	sc.srv.frames("open").Inc()
	id := r.String()
	n := r.Int()
	producer := r.String()
	if err := r.Done(); err != nil {
		sc.abort(CodeMalformed, "open: "+err.Error())
		return false
	}
	svc := sc.srv.cfg.Service
	sess, err := svc.Session(id)
	if errors.Is(err, service.ErrNoSession) {
		sess, err = svc.CreateSession(id, n)
		if errors.Is(err, service.ErrSessionExists) {
			// Lost a create race; the winner's session serves us.
			sess, err = svc.Session(id)
		}
	}
	var mv *service.MovedError
	switch {
	case errors.As(err, &mv):
		// The stream wire's redirect: detail carries the owner's stream
		// address, the client reconnects there and resumes via OPENOK.
		sc.chanError(0, CodeMoved, mv.Stream)
		return true
	case errors.Is(err, service.ErrDraining):
		sc.chanError(0, CodeDraining, err.Error())
		return true
	case err != nil:
		sc.chanError(0, CodeSession, err.Error())
		return true
	case sess.N != n:
		sc.chanError(0, CodeSession,
			fmt.Sprintf("session %q has %d processes, open asked for %d", id, sess.N, n))
		return true
	}
	sc.nextChan++
	ch := &serverChan{id: sc.nextChan, sess: sess, producer: producer}
	sc.chans[ch.id] = ch
	sc.srv.mChansTotal.Inc()

	var buf []byte
	buf = append(buf, frameOpenOK)
	buf = binenc.AppendUvarint(buf, ch.id)
	buf = binenc.AppendString(buf, id)
	buf = binenc.AppendInt(buf, sess.N)
	buf = binenc.AppendUvarint(buf, sess.ProducerSeq(producer)+1)
	buf = binenc.AppendInt(buf, sc.srv.cfg.Window)
	if err := sc.fc.writeFrame(buf); err != nil {
		return false
	}
	return true
}

func (sc *serverConn) getEventBuf() []service.Event {
	if v := sc.eventBufs.Get(); v != nil {
		return (*(v.(*[]service.Event)))[:0]
	}
	return nil
}

func (sc *serverConn) putEventBuf(buf []service.Event) {
	if buf != nil { // seal frames carry no buffer
		sc.eventBufs.Put(&buf)
	}
}

func (sc *serverConn) handleEvents(r *binenc.Reader) bool {
	sc.srv.frames("events").Inc()
	start := time.Now()
	id := r.Uvarint()
	seq := r.Uvarint()
	maxBatch := sc.srv.cfg.Service.Config().MaxBatch
	count := r.Int()
	if r.Err() == nil && (count == 0 || count > maxBatch) {
		sc.abort(CodeBatchTooBig, fmt.Sprintf("events frame carries %d events, limit %d", count, maxBatch))
		return false
	}
	ch, ok := sc.chans[id]
	if r.Err() == nil && !ok {
		sc.abort(CodeUnknownChan, fmt.Sprintf("events for unopened channel %d", id))
		return false
	}
	events := sc.getEventBuf()
	for i := 0; i < count && r.Err() == nil; i++ {
		var ev service.Event
		if err := readEvent(r, &ev); err != nil {
			sc.putEventBuf(events)
			sc.abort(CodeMalformed, fmt.Sprintf("events frame, event %d: %v", i, err))
			return false
		}
		events = append(events, ev)
	}
	if err := r.Done(); err != nil {
		sc.putEventBuf(events)
		sc.abort(CodeMalformed, "events frame: "+err.Error())
		return false
	}
	return sc.submit(ch, seq, events, false, start)
}

func (sc *serverConn) handleSeal(r *binenc.Reader) bool {
	sc.srv.frames("seal").Inc()
	start := time.Now()
	id := r.Uvarint()
	seq := r.Uvarint()
	if err := r.Done(); err != nil {
		sc.abort(CodeMalformed, "seal frame: "+err.Error())
		return false
	}
	ch, ok := sc.chans[id]
	if !ok {
		sc.abort(CodeUnknownChan, fmt.Sprintf("seal for unopened channel %d", id))
		return false
	}
	return sc.submit(ch, seq, nil, true, start)
}

// submit hands one mutating frame to the session, blocking — the
// stream's backpressure is TCP pushback, not 429 — while the session
// queue is full. Duplicate frames (replays of an accepted sequence) are
// re-acked through a queue barrier so the ack orders after the original
// application.
func (sc *serverConn) submit(ch *serverChan, seq uint64, events []service.Event, seal bool, start time.Time) bool {
	nEvents := len(events)
	notify := sc.notifyFunc(ch.id, seq, events, nEvents, start)
	backoff := 200 * time.Microsecond
	reresolved := 0
	for {
		dup, err := ch.sess.EnqueueSeq(ch.producer, seq, events, seal, notify)
		switch {
		case dup:
			// The original is (at least) still queued; ack behind it. The
			// barrier carries the frame's event count as credit: the client
			// spent window resending, and only an ack returns it.
			sc.srv.mDups.Inc()
			sc.putEventBuf(events)
			barrier := sc.notifyFunc(ch.id, seq, nil, nEvents, start)
			for {
				if err := ch.sess.EnqueueNotify(nil, barrier); !errors.Is(err, service.ErrBackpressure) {
					if err != nil {
						sc.chanError(ch.id, CodeSession, err.Error())
					}
					break
				}
				sc.srv.mBackpressure.Inc()
				if !sc.sleep(&backoff) {
					return false
				}
			}
			return true
		case errors.Is(err, service.ErrBackpressure):
			sc.srv.mBackpressure.Inc()
			if !sc.sleep(&backoff) {
				return false
			}
			continue
		case errors.Is(err, service.ErrSeqGap):
			sc.putEventBuf(events)
			sc.abort(CodeSeqGap, err.Error())
			return false
		case errors.Is(err, service.ErrClosed):
			// The session object went away under the channel — evicted, or
			// passivated for a shard handoff. Re-resolve through the service:
			// a fresh live session means a local reactivation (retry against
			// it); a MovedError means the session now lives elsewhere.
			if fresh, rerr := sc.srv.cfg.Service.Session(ch.sess.ID); rerr == nil {
				if fresh != ch.sess && reresolved < 4 {
					reresolved++
					ch.sess = fresh
					continue
				}
			} else if mv := (*service.MovedError)(nil); errors.As(rerr, &mv) {
				sc.putEventBuf(events)
				sc.chanError(ch.id, CodeMoved, mv.Stream)
				return true
			}
			sc.putEventBuf(events)
			sc.chanError(ch.id, CodeSession, err.Error())
			return true
		case err != nil:
			// Sealed, failed, degraded, closed: the channel is done but
			// the connection (and its other channels) lives on.
			sc.putEventBuf(events)
			sc.chanError(ch.id, CodeSession, err.Error())
			return true
		}
		sc.srv.mEvents.Add(int64(nEvents))
		return true
	}
}

// sleep backs off between backpressure retries; false means the
// connection closed while waiting.
func (sc *serverConn) sleep(backoff *time.Duration) bool {
	select {
	case <-sc.closedCh:
		return false
	case <-time.After(*backoff):
	}
	if *backoff < 2*time.Millisecond {
		*backoff *= 2
	}
	return true
}

// notifyFunc builds the apply-completion callback for one frame: it
// recycles the event buffer and posts the ack note carrying credit
// events of window back. It runs on the session worker goroutine and
// must not block: a full ack channel (a client not reading acks while
// pushing thousands of frames) closes the connection rather than
// stalling the session worker.
func (sc *serverConn) notifyFunc(ch, seq uint64, events []service.Event, credit int, start time.Time) func(error) {
	return func(err error) {
		if events != nil {
			sc.putEventBuf(events)
		}
		select {
		case sc.acks <- ackNote{ch: ch, seq: seq, events: credit, err: err, start: start}:
		case <-sc.closedCh:
		default:
			sc.close()
		}
	}
}

// ackLoop coalesces apply completions into cumulative ACK frames: all
// notes immediately available are merged per channel before writing, so
// a burst of small batches costs one frame, not hundreds.
func (sc *serverConn) ackLoop() {
	type agg struct {
		seq    uint64
		credit int
	}
	pending := make(map[uint64]*agg)
	var order []uint64
	collect := func(n ackNote) {
		sc.srv.hApply.Observe(time.Since(n.start).Seconds())
		if n.err != nil {
			sc.chanError(n.ch, CodeSession, n.err.Error())
			return
		}
		a := pending[n.ch]
		if a == nil {
			a = &agg{}
			pending[n.ch] = a
			order = append(order, n.ch)
		}
		if n.seq > a.seq {
			a.seq = n.seq
		}
		a.credit += n.events
	}
	var buf []byte
	for {
		select {
		case <-sc.closedCh:
			return
		case n := <-sc.acks:
			collect(n)
		}
	drain:
		for {
			select {
			case n := <-sc.acks:
				collect(n)
			default:
				break drain
			}
		}
		for _, ch := range order {
			a := pending[ch]
			buf = buf[:0]
			buf = append(buf, frameAck)
			buf = binenc.AppendUvarint(buf, ch)
			buf = binenc.AppendUvarint(buf, a.seq)
			buf = binenc.AppendInt(buf, a.credit)
			if err := sc.fc.writeFrame(buf); err != nil {
				sc.close()
				return
			}
			delete(pending, ch)
		}
		order = order[:0]
	}
}

// connCount reports live connections (tests).
func (s *Server) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}
