package stream

import (
	"fmt"
	"math/rand"

	"github.com/rdt-go/rdt/internal/service"
)

// Traffic deterministically generates always-valid event streams for
// load generation and differential testing: message ids are unique,
// every deliver names an in-flight message, and every process index is
// in range — so the session under load never fails an apply, and the
// same (shape, n, seed) triple produces the same events on every run.
// The shapes mirror the scenario corpus's traffic modes.
type Traffic struct {
	shape    string
	n        int
	rng      *rand.Rand
	nextMsg  int
	inflight []int // undelivered message ids
}

// TrafficShapes lists the supported shapes.
var TrafficShapes = []string{"random", "ring", "pairs", "client-server"}

// NewTraffic builds a generator for one of TrafficShapes over n
// processes, seeded for reproducibility.
func NewTraffic(shape string, n int, seed int64) (*Traffic, error) {
	switch shape {
	case "random", "ring", "pairs", "client-server":
	default:
		return nil, fmt.Errorf("stream: unknown traffic shape %q (have %v)", shape, TrafficShapes)
	}
	if n < 1 {
		return nil, fmt.Errorf("stream: traffic needs at least 1 process, got %d", n)
	}
	return &Traffic{
		shape: shape,
		n:     n,
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// Next appends count freshly generated events to dst and returns it.
func (t *Traffic) Next(dst []service.Event, count int) []service.Event {
	for i := 0; i < count; i++ {
		dst = append(dst, t.next())
	}
	return dst
}

func (t *Traffic) next() service.Event {
	// A single process can only checkpoint.
	if t.n == 1 {
		return service.Event{Op: service.OpCheckpoint, Proc: 0}
	}
	// Mix: mostly message traffic with periodic checkpoints, biased
	// toward delivery when too much is in flight so state stays bounded.
	roll := t.rng.Intn(100)
	switch {
	case roll < 20:
		return service.Event{Op: service.OpCheckpoint, Proc: t.rng.Intn(t.n)}
	case roll < 60 && len(t.inflight) < 4*t.n, len(t.inflight) == 0:
		src, dst := t.pair()
		msg := t.nextMsg
		t.nextMsg++
		t.inflight = append(t.inflight, msg)
		return service.Event{Op: service.OpSend, Proc: src, Peer: dst, Msg: msg}
	default:
		i := t.rng.Intn(len(t.inflight))
		msg := t.inflight[i]
		t.inflight[i] = t.inflight[len(t.inflight)-1]
		t.inflight = t.inflight[:len(t.inflight)-1]
		return service.Event{Op: service.OpDeliver, Msg: msg}
	}
}

// pair picks a (sender, receiver) according to the shape.
func (t *Traffic) pair() (src, dst int) {
	switch t.shape {
	case "ring":
		src = t.rng.Intn(t.n)
		return src, (src + 1) % t.n
	case "pairs":
		src = t.rng.Intn(t.n)
		dst = src ^ 1
		if dst >= t.n { // odd n: the unpaired last process talks to 0
			dst = 0
		}
		return src, dst
	case "client-server":
		if t.rng.Intn(2) == 0 {
			return 0, 1 + t.rng.Intn(t.n-1) // server replies to a client
		}
		return 1 + t.rng.Intn(t.n-1), 0 // client calls the server
	default: // random
		src = t.rng.Intn(t.n)
		dst = t.rng.Intn(t.n - 1)
		if dst >= src {
			dst++
		}
		return src, dst
	}
}
