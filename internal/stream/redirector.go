package stream

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/binenc"
)

// Redirector is the stream wire's router front end: a listener that
// speaks just enough RDTSTRM1 to answer every OPEN with a MOVED error
// naming the session's owner, so a Pool client entering the cluster
// at the router lands on the right daemon in one hop. It never
// accepts events — the data path always runs client-to-owner.
type Redirector struct {
	ln    net.Listener
	owner func(sessionID string) (addr string, ok bool)
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// ServeRedirector starts a redirect-only stream listener on addr.
// owner resolves a session id to its owner's stream address; ok=false
// means the owner has no stream wire (reported as a session error).
func ServeRedirector(addr string, owner func(sessionID string) (string, bool)) (*Redirector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen %s: %w", addr, err)
	}
	rd := &Redirector{ln: ln, owner: owner}
	rd.wg.Add(1)
	go rd.acceptLoop()
	return rd, nil
}

// Addr returns the bound listen address.
func (rd *Redirector) Addr() string { return rd.ln.Addr().String() }

// Close stops the listener and waits for in-flight handshakes.
func (rd *Redirector) Close() error {
	rd.mu.Lock()
	rd.closed = true
	rd.mu.Unlock()
	err := rd.ln.Close()
	rd.wg.Wait()
	return err
}

func (rd *Redirector) acceptLoop() {
	defer rd.wg.Done()
	for {
		c, err := rd.ln.Accept()
		if err != nil {
			return
		}
		rd.wg.Add(1)
		go func() {
			defer rd.wg.Done()
			rd.serveConn(c)
		}()
	}
}

// serveConn handshakes and answers OPENs with MOVED until the client
// hangs up — which a Pool does right after its first redirect.
func (rd *Redirector) serveConn(c net.Conn) {
	defer c.Close() //nolint:errcheck
	fc := newFrameConn(c, DefaultMaxFrame)
	_ = c.SetDeadline(time.Now().Add(30 * time.Second))
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(fc.r, magic[:]); err != nil || string(magic[:]) != Magic {
		return
	}
	var buf []byte
	buf = append(buf, frameHello)
	buf = binenc.AppendInt(buf, Version)
	buf = binenc.AppendInt(buf, DefaultWindow)
	buf = binenc.AppendInt(buf, DefaultMaxFrame)
	if err := fc.writeFrame(buf); err != nil {
		return
	}
	for {
		_ = c.SetDeadline(time.Now().Add(30 * time.Second))
		payload, err := fc.readFrame()
		if err != nil {
			return
		}
		r := binenc.NewReader(payload)
		if typ := r.Byte(); typ != frameOpen {
			rd.sendError(fc, CodeSession, "redirector: only OPEN is served here")
			return
		}
		id := r.String()
		r.Int()        // n: unused, the owner validates it
		_ = r.String() // producer
		if err := r.Done(); err != nil {
			rd.sendError(fc, CodeMalformed, "open: "+err.Error())
			return
		}
		addr, ok := rd.owner(id)
		if !ok {
			rd.sendError(fc, CodeSession, fmt.Sprintf("session %q: owner has no stream wire", id))
			continue
		}
		rd.sendError(fc, CodeMoved, addr)
	}
}

func (rd *Redirector) sendError(fc *frameConn, code int, detail string) {
	var buf []byte
	buf = append(buf, frameError)
	buf = binenc.AppendInt(buf, code)
	buf = binenc.AppendUvarint(buf, 0)
	buf = binenc.AppendString(buf, detail)
	_ = fc.writeFrame(buf)
}
