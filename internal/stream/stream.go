// Package stream implements the binary streaming ingest path of the
// checking service: the RDTSTRM1 protocol, a length-prefixed,
// CRC-framed binary wire spoken over long-lived TCP connections, built
// for sustained event rates the per-request HTTP/JSON surface cannot
// reach. The JSON API remains the compatibility and query surface;
// this wire only ingests.
//
// A connection opens with the 8-byte client magic "RDTSTRM1", answered
// by a HELLO frame; everything after is frames in both directions,
// framed exactly like the WAL (length, CRC32C, payload):
//
//	4 bytes  payload length, little endian
//	4 bytes  CRC32C (Castagnoli) of the payload
//	n bytes  payload = frame type byte + binenc-encoded fields
//
// One connection multiplexes any number of sessions as channels: OPEN
// binds a (session, producer) pair to a small channel id, EVENTS and
// SEAL frames carry that id plus a per-producer sequence number, and
// the server answers with cumulative ACK frames once the events are
// applied — for durable sessions, after they are persisted, so an ack
// is a durability receipt. Flow control is a credit window: the server
// grants a budget of in-flight (sent but unacked) events per channel
// at OPEN and replenishes it with every ack, so an overdriven server
// withholds credit instead of answering 429s.
//
// Sequence numbers make ingest at-least-once with exactly-once effect:
// a client that loses its connection replays every unacked frame on a
// new connection, and the server drops frames at or below the
// producer's accepted sequence — including frames that were accepted
// but not yet applied when the connection died — re-acking them once
// the originals have been applied.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"

	"github.com/rdt-go/rdt/internal/binenc"
	"github.com/rdt-go/rdt/internal/service"
)

// Magic is the 8-byte string a client writes before any frame.
const Magic = "RDTSTRM1"

// Version is the protocol revision announced in HELLO.
const Version = 1

// Defaults for the zero Config.
const (
	// DefaultMaxFrame bounds one frame payload, in bytes.
	DefaultMaxFrame = 1 << 20
	// DefaultWindow is the per-channel credit window, in events.
	DefaultWindow = 1 << 14
)

// Frame types. Client-to-server types have the high bit clear.
const (
	frameOpen    = 0x01 // id string, n, producer string
	frameEvents  = 0x02 // chan, seq, count, events
	frameSeal    = 0x03 // chan, seq
	frameClose   = 0x04 // chan
	frameHello   = 0x81 // version, window, maxFrame
	frameOpenOK  = 0x82 // chan, id string, n, nextSeq, window
	frameAck     = 0x83 // chan, seq, credit
	frameError   = 0x84 // code, chan (0 = connection), detail string
	frameGoodbye = 0x85 // server draining
)

// Protocol error codes carried by ERROR frames.
const (
	CodeMalformed    = 1 // unparseable frame, bad CRC, bad event encoding
	CodeFrameTooBig  = 2 // frame length beyond the advertised maximum
	CodeUnknownChan  = 3 // frame names a channel that was never opened
	CodeSession      = 4 // the session rejected the operation (detail says why)
	CodeSeqGap       = 5 // producer skipped ahead of its accepted sequence
	CodeDraining     = 6 // server is shutting down; no new channels
	CodeHandshake    = 7 // bad magic or handshake violation
	CodeBatchTooBig  = 8 // events frame beyond the service's batch limit
	CodeUnauthorized = 9 // reserved
	// CodeMoved is the stream wire's 307: the session lives on another
	// cluster member, whose stream address rides in the error detail.
	// Clients reconnect there and resume from the OPENOK sequence point.
	CodeMoved = 10
)

func codeString(code int) string {
	switch code {
	case CodeMalformed:
		return "malformed"
	case CodeFrameTooBig:
		return "frame-too-big"
	case CodeUnknownChan:
		return "unknown-channel"
	case CodeSession:
		return "session"
	case CodeSeqGap:
		return "seq-gap"
	case CodeDraining:
		return "draining"
	case CodeHandshake:
		return "handshake"
	case CodeBatchTooBig:
		return "batch-too-big"
	case CodeMoved:
		return "moved"
	default:
		return fmt.Sprintf("code-%d", code)
	}
}

// ProtocolError is a stream-level failure reported by the peer or
// detected locally; Code is one of the Code constants.
type ProtocolError struct {
	Code   int
	Detail string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("stream: %s: %s", codeString(e.Code), e.Detail)
}

// MovedTo extracts the owner's stream address from a MOVED error; ok
// is false for anything else (including owners without a stream wire,
// whose MOVED carries an empty address).
func MovedTo(err error) (addr string, ok bool) {
	var pe *ProtocolError
	if errors.As(err, &pe) && pe.Code == CodeMoved && pe.Detail != "" {
		return pe.Detail, true
	}
	return "", false
}

const frameHeaderSize = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameConn is the shared framing layer: buffered reads with a bounds
// check before any allocation, and mutex-serialized buffered writes
// (acks, errors, and opens interleave from different goroutines).
type frameConn struct {
	c    net.Conn
	r    io.Reader
	rbuf []byte // reused frame payload buffer
	rhdr [frameHeaderSize]byte

	wmu  sync.Mutex
	whdr [frameHeaderSize]byte
	max  int
}

func newFrameConn(c net.Conn, maxFrame int) *frameConn {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &frameConn{c: c, r: c, max: maxFrame}
}

// errFrameTooBig distinguishes the oversized-length case so the server
// can answer with a clean protocol error before hanging up — without
// ever allocating for the claimed length.
type errFrameTooBig struct{ n, max int }

func (e errFrameTooBig) Error() string {
	return fmt.Sprintf("frame payload %d bytes exceeds limit %d", e.n, e.max)
}

var errBadCRC = errors.New("frame CRC mismatch")

// readFrame reads one frame payload into the connection's reused
// buffer; the returned slice is valid until the next call.
func (fc *frameConn) readFrame() ([]byte, error) {
	if _, err := io.ReadFull(fc.r, fc.rhdr[:]); err != nil {
		return nil, err
	}
	length := int(binary.LittleEndian.Uint32(fc.rhdr[:4]))
	want := binary.LittleEndian.Uint32(fc.rhdr[4:])
	if length == 0 || length > fc.max {
		return nil, errFrameTooBig{length, fc.max}
	}
	if cap(fc.rbuf) < length {
		fc.rbuf = make([]byte, length)
	}
	payload := fc.rbuf[:length]
	if _, err := io.ReadFull(fc.r, payload); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != want {
		return nil, errBadCRC
	}
	return payload, nil
}

// writeFrame frames and writes one payload. Safe for concurrent use.
func (fc *frameConn) writeFrame(payload []byte) error {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	binary.LittleEndian.PutUint32(fc.whdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fc.whdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := fc.c.Write(fc.whdr[:]); err != nil {
		return err
	}
	_, err := fc.c.Write(payload)
	return err
}

func (fc *frameConn) Close() error { return fc.c.Close() }

// Event encoding inside EVENTS frames: an op byte then the op's fields
// as uvarints. Strings never cross the wire per event — ops and
// checkpoint kinds are single bytes — which is what makes the decode
// path allocation-free per event.
const (
	evCheckpoint = 1 // proc, kind byte (0 basic, 1 forced)
	evSend       = 2 // proc, peer, msg
	evDeliver    = 3 // msg
)

// appendEvent appends one event's wire form.
func appendEvent(buf []byte, ev *service.Event) ([]byte, error) {
	if ev.Proc < 0 || ev.Peer < 0 || ev.Msg < 0 {
		return buf, fmt.Errorf("negative field in event %+v", *ev)
	}
	switch ev.Op {
	case service.OpCheckpoint:
		var kind byte
		switch ev.Kind {
		case "", "basic":
		case "forced":
			kind = 1
		default:
			return buf, fmt.Errorf("unknown checkpoint kind %q", ev.Kind)
		}
		buf = append(buf, evCheckpoint)
		buf = binenc.AppendInt(buf, ev.Proc)
		buf = append(buf, kind)
	case service.OpSend:
		buf = append(buf, evSend)
		buf = binenc.AppendInt(buf, ev.Proc)
		buf = binenc.AppendInt(buf, ev.Peer)
		buf = binenc.AppendInt(buf, ev.Msg)
	case service.OpDeliver:
		buf = append(buf, evDeliver)
		buf = binenc.AppendInt(buf, ev.Msg)
	default:
		return buf, fmt.Errorf("unknown op %q", ev.Op)
	}
	return buf, nil
}

// readEvent decodes one event in place; bounds failures latch in r,
// domain failures (unknown op or kind byte) return an error.
func readEvent(r *binenc.Reader, ev *service.Event) error {
	*ev = service.Event{}
	switch op := r.Byte(); op {
	case evCheckpoint:
		ev.Op = service.OpCheckpoint
		ev.Proc = r.Int()
		switch kind := r.Byte(); {
		case kind == 0:
			// Basic is the wire default; leave Kind empty.
		case kind == 1:
			ev.Kind = "forced"
		case r.Err() == nil:
			return fmt.Errorf("bad checkpoint kind byte %d", kind)
		}
	case evSend:
		ev.Op = service.OpSend
		ev.Proc = r.Int()
		ev.Peer = r.Int()
		ev.Msg = r.Int()
	case evDeliver:
		ev.Op = service.OpDeliver
		ev.Msg = r.Int()
	default:
		if r.Err() == nil {
			return fmt.Errorf("unknown event op byte %d", op)
		}
	}
	return r.Err()
}
