package stream

import (
	"errors"
	"net"
	"reflect"
	"testing"

	"github.com/rdt-go/rdt/internal/binenc"
	"github.com/rdt-go/rdt/internal/service"
)

// pipeConns returns two ends of a real TCP connection (net.Pipe has no
// buffering, which deadlocks single-goroutine write-then-read tests).
func pipeConns(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close() //nolint:errcheck
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	if cerr != nil {
		t.Fatalf("dial: %v", cerr)
	}
	<-done
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	t.Cleanup(func() { client.Close(); server.Close() }) //nolint:errcheck
	return client, server
}

func TestFrameRoundTrip(t *testing.T) {
	c, s := pipeConns(t)
	w := newFrameConn(c, 0)
	r := newFrameConn(s, 0)
	payloads := [][]byte{
		{0x01},
		[]byte("hello frames"),
		make([]byte, 64*1024),
	}
	for i := range payloads[2] {
		payloads[2][i] = byte(i)
	}
	for _, p := range payloads {
		if err := w.writeFrame(p); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := r.readFrame()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d mismatch: %d bytes vs %d", i, len(got), len(want))
		}
	}
}

func TestFrameBadCRC(t *testing.T) {
	c, s := pipeConns(t)
	r := newFrameConn(s, 0)
	// Hand-build a frame with a wrong checksum.
	hdr := []byte{3, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}
	if _, err := c.Write(append(hdr, 'a', 'b', 'c')); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := r.readFrame(); !errors.Is(err, errBadCRC) {
		t.Fatalf("read: %v, want CRC mismatch", err)
	}
}

func TestFrameTooBigRejectedWithoutReading(t *testing.T) {
	c, s := pipeConns(t)
	r := newFrameConn(s, 1024)
	// Claimed length far beyond the limit; no payload follows — the
	// reader must fail on the header alone, not try to allocate or read.
	hdr := []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}
	if _, err := c.Write(hdr); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, err := r.readFrame()
	var tooBig errFrameTooBig
	if !errors.As(err, &tooBig) {
		t.Fatalf("read: %v, want frame-too-big", err)
	}
	if cap(r.rbuf) != 0 {
		t.Fatalf("reader allocated %d bytes for an oversized frame", cap(r.rbuf))
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	events := []service.Event{
		{Op: service.OpCheckpoint, Proc: 0},
		{Op: service.OpCheckpoint, Proc: 3, Kind: "basic"},
		{Op: service.OpCheckpoint, Proc: 7, Kind: "forced"},
		{Op: service.OpSend, Proc: 1, Peer: 2, Msg: 40},
		{Op: service.OpDeliver, Msg: 40},
		{Op: service.OpSend, Proc: 1023, Peer: 0, Msg: 1 << 40},
	}
	var buf []byte
	var err error
	for i := range events {
		if buf, err = appendEvent(buf, &events[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	r := binenc.NewReader(buf)
	for i := range events {
		var got service.Event
		if err := readEvent(r, &got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := events[i]
		if want.Kind == "basic" {
			want.Kind = "" // basic is the wire default
		}
		if got != want {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
	if err := r.Done(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
}

func TestEventCodecRejects(t *testing.T) {
	for _, ev := range []service.Event{
		{Op: "reset", Proc: 1},
		{Op: service.OpCheckpoint, Proc: -1},
		{Op: service.OpCheckpoint, Proc: 1, Kind: "weird"},
		{Op: service.OpSend, Proc: 0, Peer: 1, Msg: -7},
	} {
		if _, err := appendEvent(nil, &ev); err == nil {
			t.Errorf("appendEvent accepted %+v", ev)
		}
	}
	var got service.Event
	if err := readEvent(binenc.NewReader([]byte{99}), &got); err == nil {
		t.Error("readEvent accepted unknown op byte")
	}
	if err := readEvent(binenc.NewReader([]byte{evCheckpoint, 1, 9}), &got); err == nil {
		t.Error("readEvent accepted unknown checkpoint kind byte")
	}
	if err := readEvent(binenc.NewReader([]byte{evSend, 1}), &got); err == nil {
		t.Error("readEvent accepted truncated send")
	}
}

func TestTrafficDeterministicAndValid(t *testing.T) {
	for _, shape := range TrafficShapes {
		for _, n := range []int{1, 2, 3, 5, 8} {
			tr1, err := NewTraffic(shape, n, 42)
			if err != nil {
				t.Fatalf("%s/%d: %v", shape, n, err)
			}
			tr2, _ := NewTraffic(shape, n, 42)
			a := tr1.Next(nil, 2000)
			b := tr2.Next(nil, 2000)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s/%d: same seed, different traffic", shape, n)
			}

			// Validity: a live session must apply every event.
			svc, err := service.New(service.Config{})
			if err != nil {
				t.Fatalf("%s/%d new service: %v", shape, n, err)
			}
			sess, err := svc.CreateSession("t", n)
			if err != nil {
				t.Fatalf("%s/%d create: %v", shape, n, err)
			}
			for i := 0; i < len(a); i += 100 {
				if err := sess.Enqueue(a[i : i+100]); err != nil {
					t.Fatalf("%s/%d enqueue: %v", shape, n, err)
				}
			}
			v := flushVerdict(t, sess)
			if v.State != service.StateActive || v.EventsApplied != int64(len(a)) {
				t.Fatalf("%s/%d: state %s err %q, applied %d/%d",
					shape, n, v.State, v.Error, v.EventsApplied, len(a))
			}
		}
	}
	if _, err := NewTraffic("bogus", 3, 1); err == nil {
		t.Error("accepted unknown shape")
	}
}
