package stream

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/binenc"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/service"
)

// ErrConnClosed reports an operation on a client whose connection died.
var ErrConnClosed = errors.New("stream: connection closed")

// ErrGoodbye reports a send attempted after the server announced drain.
var ErrGoodbye = errors.New("stream: server said goodbye")

// Option configures a Client.
type Option func(*Client)

// WithRegistry points client-side metrics (ack round-trip time on
// rdt_stream_ack_rtt_seconds) at reg.
func WithRegistry(reg *obs.Registry) Option {
	return func(c *Client) {
		c.hRTT = reg.Histogram("rdt_stream_ack_rtt_seconds", obs.MicroLatencyBuckets)
	}
}

// WithAckObserver installs a callback invoked for every acked frame
// with the frame's event count and its send-to-ack round trip — the
// hook load generators hang latency histograms on. fn runs on the
// client's reader goroutine and must be fast.
func WithAckObserver(fn func(events int, rtt time.Duration)) Option {
	return func(c *Client) { c.ackObs = fn }
}

// Client is one RDTSTRM1 connection. All methods are safe for
// concurrent use; a connection multiplexes any number of channels.
type Client struct {
	fc     *frameConn
	hRTT   *obs.Histogram
	ackObs func(int, time.Duration)

	// Window and MaxFrame are the server's advertised limits (HELLO).
	Window   int
	MaxFrame int

	// openMu serializes (pending append, OPEN write) pairs so server
	// replies — answered in arrival order — pair with the FIFO.
	openMu sync.Mutex

	mu      sync.Mutex
	chans   map[uint64]*Chan
	pending []pendingOpen // FIFO: opens awaiting OPENOK/ERROR
	err     error         // connection-fatal error, sticky
	goodbye bool

	readerDone chan struct{}
}

type openResult struct {
	ch  *Chan
	err error
}

// pendingOpen pairs an awaiting open with the producer it named, so the
// OPENOK handler can stamp the resulting channel (OPENOK itself does
// not echo the producer).
type pendingOpen struct {
	res      chan openResult
	producer string
}

// Dial connects, performs the handshake, and starts the reader.
func Dial(addr string, opts ...Option) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	c := &Client{
		fc:         newFrameConn(conn, DefaultMaxFrame),
		chans:      make(map[uint64]*Chan),
		readerDone: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte(Magic)); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("stream: handshake: %w", err)
	}
	payload, err := c.fc.readFrame()
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("stream: handshake: %w", err)
	}
	r := binenc.NewReader(payload)
	if typ := r.Byte(); typ != frameHello {
		_ = conn.Close()
		return nil, fmt.Errorf("stream: handshake: expected HELLO, got frame 0x%02x", typ)
	}
	version := r.Int()
	c.Window = r.Int()
	c.MaxFrame = r.Int()
	if err := r.Done(); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("stream: handshake: %w", err)
	}
	if version != Version {
		_ = conn.Close()
		return nil, fmt.Errorf("stream: server speaks version %d, want %d", version, Version)
	}
	_ = conn.SetDeadline(time.Time{})
	c.fc.max = c.MaxFrame
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; every channel and waiter fails with
// ErrConnClosed.
func (c *Client) Close() error {
	err := c.fc.Close()
	<-c.readerDone
	return err
}

// fatal fails the connection: every channel, pending open, and waiter
// learns err.
func (c *Client) fatal(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = nil
	chans := make([]*Chan, 0, len(c.chans))
	for _, ch := range c.chans {
		chans = append(chans, ch)
	}
	c.mu.Unlock()
	for _, p := range pending {
		p.res <- openResult{err: err}
	}
	for _, ch := range chans {
		ch.fail(err)
	}
	_ = c.fc.Close()
}

// Err reports the connection-fatal error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Goodbye reports whether the server announced drain: stop opening and
// sending, collect remaining acks, hang up.
func (c *Client) Goodbye() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.goodbye
}

// Open binds a channel to session id (created with n processes if
// absent) for the given producer name. The returned channel's sends
// continue the producer's sequence where the server left it; a caller
// replaying an older connection's unacked frames rewinds first (see
// Rewind).
func (c *Client) Open(id string, n int, producer string) (*Chan, error) {
	res := make(chan openResult, 1)
	c.openMu.Lock()
	c.mu.Lock()
	if err := c.openErrLocked(); err != nil {
		c.mu.Unlock()
		c.openMu.Unlock()
		return nil, err
	}
	c.pending = append(c.pending, pendingOpen{res: res, producer: producer})
	c.mu.Unlock()
	var buf []byte
	buf = append(buf, frameOpen)
	buf = binenc.AppendString(buf, id)
	buf = binenc.AppendInt(buf, n)
	buf = binenc.AppendString(buf, producer)
	err := c.fc.writeFrame(buf)
	c.openMu.Unlock()
	if err != nil {
		c.fatal(err)
		return nil, err
	}
	r := <-res
	return r.ch, r.err
}

func (c *Client) openErrLocked() error {
	if c.err != nil {
		return c.err
	}
	if c.goodbye {
		return ErrGoodbye
	}
	return nil
}

// Chan is one open (session, producer) stream on a client connection.
type Chan struct {
	c *Client
	// ID is the wire channel id; SessionID, N, and Producer echo the
	// open; Next is the sequence the server expects next from this
	// producer — the resume point after a reconnect.
	ID        uint64
	SessionID string
	N         int
	Producer  string
	Next      uint64

	// sendMu serializes Send/Seal through the wire write: frames must
	// leave in sequence order or the server reports a gap. It also owns
	// wbuf, the reused encode buffer.
	sendMu sync.Mutex
	wbuf   []byte

	mu       sync.Mutex
	cond     *sync.Cond
	credit   int
	nextSeq  uint64
	inflight map[uint64]inflightRec
	err      error
}

// inflightRec remembers a sent, unacked frame: enough to replay it on a
// new connection and to time its ack.
type inflightRec struct {
	events []service.Event
	seal   bool
	sentAt time.Time
}

// Batch is one replayable unacked frame (see Unacked).
type Batch struct {
	Seq    uint64
	Events []service.Event
	Seal   bool
}

func (ch *Chan) fail(err error) {
	ch.mu.Lock()
	if ch.err == nil {
		ch.err = err
	}
	ch.cond.Broadcast()
	ch.mu.Unlock()
}

// Err reports the channel's sticky failure, if any.
func (ch *Chan) Err() error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.err
}

// Send transmits one batch of events as a single frame, blocking while
// the credit window is exhausted. The channel retains events until the
// frame is acked (replay on reconnect needs it); the caller must not
// modify the slice after Send.
func (ch *Chan) Send(events []service.Event) error {
	if len(events) == 0 {
		return errors.New("stream: empty batch")
	}
	if len(events) > ch.c.Window {
		return fmt.Errorf("stream: batch of %d events exceeds the %d-event window", len(events), ch.c.Window)
	}
	ch.sendMu.Lock()
	defer ch.sendMu.Unlock()

	// Encode first — a batch the wire cannot carry should fail without
	// consuming credit or a sequence number.
	buf := ch.wbuf[:0]
	buf = append(buf, frameEvents)
	buf = binenc.AppendUvarint(buf, ch.ID)
	const seqReserve = 10 // uvarint64 max; seq is patched in below
	seqAt := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = binenc.AppendInt(buf, len(events))
	var err error
	for i := range events {
		if buf, err = appendEvent(buf, &events[i]); err != nil {
			ch.wbuf = buf[:0]
			return fmt.Errorf("stream: encoding event %d: %w", i, err)
		}
	}
	if len(buf) > ch.c.MaxFrame {
		ch.wbuf = buf[:0]
		return fmt.Errorf("stream: frame of %d bytes exceeds the server's %d-byte limit", len(buf), ch.c.MaxFrame)
	}

	ch.mu.Lock()
	for ch.err == nil && !ch.c.Goodbye() && ch.credit < len(events) {
		ch.cond.Wait()
	}
	if ch.err != nil {
		err := ch.err
		ch.mu.Unlock()
		return err
	}
	if ch.c.Goodbye() {
		ch.mu.Unlock()
		return ErrGoodbye
	}
	seq := ch.nextSeq
	ch.credit -= len(events)
	ch.nextSeq = seq + 1
	ch.inflight[seq] = inflightRec{events: events, sentAt: time.Now()}
	ch.mu.Unlock()

	// Patch the reserved sequence slot: fixed-width uvarint (all but the
	// last byte carry continuation bits) so the frame length is stable.
	for i := 0; i < seqReserve-1; i++ {
		buf[seqAt+i] = byte(seq&0x7f) | 0x80
		seq >>= 7
	}
	buf[seqAt+seqReserve-1] = byte(seq)
	ch.wbuf = buf
	if err := ch.c.fc.writeFrame(buf); err != nil {
		ch.c.fatal(err)
		return err
	}
	return nil
}

// Seal transmits a seal frame. It consumes a sequence number but no
// credit; the ack arrives once the seal has been applied (for a durable
// session: persisted).
func (ch *Chan) Seal() error {
	ch.sendMu.Lock()
	defer ch.sendMu.Unlock()
	ch.mu.Lock()
	if ch.err != nil {
		err := ch.err
		ch.mu.Unlock()
		return err
	}
	seq := ch.nextSeq
	ch.nextSeq = seq + 1
	ch.inflight[seq] = inflightRec{seal: true, sentAt: time.Now()}
	ch.mu.Unlock()
	buf := ch.wbuf[:0]
	buf = append(buf, frameSeal)
	buf = binenc.AppendUvarint(buf, ch.ID)
	buf = binenc.AppendUvarint(buf, seq)
	ch.wbuf = buf
	if err := ch.c.fc.writeFrame(buf); err != nil {
		ch.c.fatal(err)
		return err
	}
	return nil
}

// Flush blocks until every frame sent on the channel has been acked —
// applied server-side, persisted for durable sessions — or the channel
// fails.
func (ch *Chan) Flush(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		ch.mu.Lock()
		ch.cond.Broadcast()
		ch.mu.Unlock()
	})
	defer stop()
	ch.mu.Lock()
	defer ch.mu.Unlock()
	for ch.err == nil && len(ch.inflight) > 0 && ctx.Err() == nil {
		ch.cond.Wait()
	}
	if ch.err != nil {
		return ch.err
	}
	return ctx.Err()
}

// NextSeq returns the sequence the next Send or Seal will assign.
// Comparing it across a failed send tells whether the frame was
// recorded in flight (a later Resume replays it) or never made it
// past encoding (the caller re-sends it itself).
func (ch *Chan) NextSeq() uint64 {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.nextSeq
}

// Unacked returns the frames sent but never acked, ordered by
// sequence — what a caller replays (after Rewind) on a fresh
// connection when this one died mid-window.
func (ch *Chan) Unacked() []Batch {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	out := make([]Batch, 0, len(ch.inflight))
	for seq, rec := range ch.inflight {
		out = append(out, Batch{Seq: seq, Events: rec.events, Seal: rec.seal})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Rewind moves the channel's next send sequence back to seq, so the
// following sends replay an older connection's unacked frames. Frames
// the server already accepted are deduplicated and re-acked; the rest
// are applied fresh. seq must not exceed the current next sequence.
func (ch *Chan) Rewind(seq uint64) error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if seq == 0 || seq > ch.nextSeq {
		return fmt.Errorf("stream: cannot rewind to seq %d (next is %d)", seq, ch.nextSeq)
	}
	ch.nextSeq = seq
	return nil
}

// Close releases the channel id on the wire. In-flight acks for the
// channel are discarded.
func (ch *Chan) Close() error {
	c := ch.c
	c.mu.Lock()
	delete(c.chans, ch.ID)
	c.mu.Unlock()
	var buf []byte
	buf = append(buf, frameClose)
	buf = binenc.AppendUvarint(buf, ch.ID)
	return c.fc.writeFrame(buf)
}

// ack processes one cumulative ACK: all inflight frames at or below seq
// are done, and credit events of window come back (dup re-acks return
// the credit their resends consumed, so credit is granted even when seq
// is stale).
func (ch *Chan) ack(seq uint64, credit int, c *Client) {
	now := time.Now()
	ch.mu.Lock()
	ch.credit += credit
	for s, rec := range ch.inflight {
		if s <= seq {
			delete(ch.inflight, s)
			rtt := now.Sub(rec.sentAt)
			c.hRTT.Observe(rtt.Seconds())
			if c.ackObs != nil {
				c.ackObs(len(rec.events), rtt)
			}
		}
	}
	ch.cond.Broadcast()
	ch.mu.Unlock()
}

func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		payload, err := c.fc.readFrame()
		if err != nil {
			c.fatal(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		r := binenc.NewReader(payload)
		switch typ := r.Byte(); typ {
		case frameOpenOK:
			c.handleOpenOK(r)
		case frameAck:
			id := r.Uvarint()
			seq := r.Uvarint()
			credit := r.Int()
			if r.Done() != nil {
				c.fatal(fmt.Errorf("%w: malformed ack", ErrConnClosed))
				return
			}
			c.mu.Lock()
			ch := c.chans[id]
			c.mu.Unlock()
			if ch != nil {
				ch.ack(seq, credit, c)
			}
		case frameError:
			code := r.Int()
			id := r.Uvarint()
			detail := r.String()
			if r.Done() != nil {
				c.fatal(fmt.Errorf("%w: malformed error frame", ErrConnClosed))
				return
			}
			perr := &ProtocolError{Code: code, Detail: detail}
			if id == 0 {
				// Channel 0 scopes the error to the connection — which,
				// given the server answers in order, means the oldest
				// pending open if one exists, the whole connection if not.
				c.mu.Lock()
				var res chan openResult
				if len(c.pending) > 0 {
					res = c.pending[0].res
					c.pending = c.pending[1:]
				}
				c.mu.Unlock()
				if res != nil {
					res <- openResult{err: perr}
					continue
				}
				c.fatal(perr)
				return
			}
			c.mu.Lock()
			ch := c.chans[id]
			c.mu.Unlock()
			if ch != nil {
				ch.fail(perr)
			}
		case frameGoodbye:
			c.mu.Lock()
			c.goodbye = true
			chans := make([]*Chan, 0, len(c.chans))
			for _, ch := range c.chans {
				chans = append(chans, ch)
			}
			c.mu.Unlock()
			for _, ch := range chans {
				// Wake blocked senders so they observe the drain.
				ch.mu.Lock()
				ch.cond.Broadcast()
				ch.mu.Unlock()
			}
		default:
			c.fatal(fmt.Errorf("%w: unexpected frame 0x%02x", ErrConnClosed, typ))
			return
		}
	}
}

func (c *Client) handleOpenOK(r *binenc.Reader) {
	id := r.Uvarint()
	sessID := r.String()
	n := r.Int()
	next := r.Uvarint()
	window := r.Int()
	if r.Done() != nil {
		c.fatal(fmt.Errorf("%w: malformed open-ok", ErrConnClosed))
		return
	}
	ch := &Chan{
		c:         c,
		ID:        id,
		SessionID: sessID,
		N:         n,
		Next:      next,
		credit:    window,
		nextSeq:   next,
		inflight:  make(map[uint64]inflightRec),
	}
	ch.cond = sync.NewCond(&ch.mu)
	c.mu.Lock()
	var res chan openResult
	if len(c.pending) > 0 {
		res = c.pending[0].res
		ch.Producer = c.pending[0].producer
		c.pending = c.pending[1:]
	}
	c.chans[id] = ch
	c.mu.Unlock()
	if res != nil {
		res <- openResult{ch: ch}
	}
}
