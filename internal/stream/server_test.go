package stream

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/binenc"
	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/service"
)

// startServer boots a service plus a stream server on a loopback port.
func startServer(t *testing.T, svcCfg service.Config, streamCfg Config) (*service.Service, *Server) {
	t.Helper()
	svc, err := service.New(svcCfg)
	if err != nil {
		t.Fatalf("new service: %v", err)
	}
	streamCfg.Service = svc
	srv, err := Serve("127.0.0.1:0", streamCfg)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Drain(ctx)
	})
	return svc, srv
}

func flushVerdict(t *testing.T, sess *service.Session) *service.Verdict {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sess.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return sess.Verdict(0)
}

func TestStreamBasic(t *testing.T) {
	reg := obs.NewRegistry()
	svc, srv := startServer(t, service.Config{}, Config{Registry: reg})

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close() //nolint:errcheck
	if c.Window != DefaultWindow || c.MaxFrame != DefaultMaxFrame {
		t.Fatalf("hello advertised window=%d maxFrame=%d", c.Window, c.MaxFrame)
	}

	ch, err := c.Open("s1", 3, "p0")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if ch.SessionID != "s1" || ch.N != 3 || ch.Next != 1 {
		t.Fatalf("chan = %+v", ch)
	}

	tr, _ := NewTraffic("random", 3, 7)
	total := 0
	for i := 0; i < 20; i++ {
		batch := tr.Next(nil, 50)
		total += len(batch)
		if err := ch.Send(batch); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := ch.Seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ch.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}

	sess, err := svc.Session("s1")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	v := sess.Verdict(0)
	if v.State != service.StateSealed || v.EventsApplied != int64(total) {
		t.Fatalf("verdict state=%s applied=%d want sealed/%d (err %q)",
			v.State, v.EventsApplied, total, v.Error)
	}
	if got := reg.Counter("rdt_stream_events_total").Value(); got != int64(total) {
		t.Errorf("rdt_stream_events_total = %d, want %d", got, total)
	}
	if reg.Histogram("rdt_stream_batch_apply_seconds", obs.MicroLatencyBuckets).Count() == 0 {
		t.Error("no batch-apply latency observations")
	}
}

func TestStreamOpenExistingAndMismatch(t *testing.T) {
	svc, srv := startServer(t, service.Config{}, Config{})
	if _, err := svc.CreateSession("pre", 4); err != nil {
		t.Fatalf("create: %v", err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close() //nolint:errcheck

	if ch, err := c.Open("pre", 4, "p"); err != nil || ch.N != 4 {
		t.Fatalf("open existing: %v (%+v)", err, ch)
	}
	_, err = c.Open("pre", 2, "p")
	var perr *ProtocolError
	if !errors.As(err, &perr) || perr.Code != CodeSession {
		t.Fatalf("open with wrong n: %v, want session protocol error", err)
	}
	// The connection survives a failed open.
	if _, err := c.Open("fresh", 2, "p"); err != nil {
		t.Fatalf("open after failed open: %v", err)
	}
}

// rawConn speaks just enough protocol by hand to probe error paths.
type rawConn struct {
	t  *testing.T
	fc *frameConn
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() }) //nolint:errcheck
	if _, err := conn.Write([]byte(Magic)); err != nil {
		t.Fatalf("magic: %v", err)
	}
	fc := newFrameConn(conn, DefaultMaxFrame)
	payload, err := fc.readFrame()
	if err != nil || payload[0] != frameHello {
		t.Fatalf("hello: %v (%v)", err, payload)
	}
	return &rawConn{t: t, fc: fc}
}

func (rc *rawConn) open(id string, n int, producer string) uint64 {
	rc.t.Helper()
	var buf []byte
	buf = append(buf, frameOpen)
	buf = binenc.AppendString(buf, id)
	buf = binenc.AppendInt(buf, n)
	buf = binenc.AppendString(buf, producer)
	if err := rc.fc.writeFrame(buf); err != nil {
		rc.t.Fatalf("open: %v", err)
	}
	payload, err := rc.fc.readFrame()
	if err != nil || payload[0] != frameOpenOK {
		rc.t.Fatalf("open-ok: %v (% x)", err, payload)
	}
	return binenc.NewReader(payload[1:]).Uvarint()
}

// expectError reads frames until an ERROR arrives and returns its code,
// failing if the connection closes first.
func (rc *rawConn) expectError() int {
	rc.t.Helper()
	for {
		payload, err := rc.fc.readFrame()
		if err != nil {
			rc.t.Fatalf("waiting for error frame: %v", err)
		}
		if payload[0] != frameError {
			continue
		}
		return binenc.NewReader(payload[1:]).Int()
	}
}

func TestStreamOversizedFrameRejected(t *testing.T) {
	_, srv := startServer(t, service.Config{}, Config{MaxFrame: 4096})
	rc := dialRaw(t, srv.Addr())
	// Header claiming a 16 MiB payload; nothing follows.
	hdr := []byte{0, 0, 0, 1, 0, 0, 0, 0}
	if _, err := rc.fc.c.Write(hdr); err != nil {
		t.Fatalf("write: %v", err)
	}
	if code := rc.expectError(); code != CodeFrameTooBig {
		t.Fatalf("error code %d, want frame-too-big", code)
	}
	// The server hangs up after a connection-fatal error.
	if _, err := rc.fc.readFrame(); !errors.Is(err, io.EOF) {
		t.Fatalf("after abort: %v, want EOF", err)
	}
}

func TestStreamBatchLimitRejected(t *testing.T) {
	_, srv := startServer(t, service.Config{MaxBatch: 8}, Config{})
	rc := dialRaw(t, srv.Addr())
	ch := rc.open("s", 2, "p")
	var buf []byte
	buf = append(buf, frameEvents)
	buf = binenc.AppendUvarint(buf, ch)
	buf = binenc.AppendUvarint(buf, 1)
	buf = binenc.AppendInt(buf, 9) // one past the service's MaxBatch
	for i := 0; i < 9; i++ {
		buf = append(buf, evCheckpoint)
		buf = binenc.AppendInt(buf, 0)
		buf = append(buf, 0)
	}
	if err := rc.fc.writeFrame(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if code := rc.expectError(); code != CodeBatchTooBig {
		t.Fatalf("error code %d, want batch-too-big", code)
	}
}

func TestStreamSeqGapAborts(t *testing.T) {
	_, srv := startServer(t, service.Config{}, Config{})
	rc := dialRaw(t, srv.Addr())
	ch := rc.open("s", 2, "p")
	var buf []byte
	buf = append(buf, frameEvents)
	buf = binenc.AppendUvarint(buf, ch)
	buf = binenc.AppendUvarint(buf, 5) // skips 1..4
	buf = binenc.AppendInt(buf, 1)
	buf = append(buf, evCheckpoint)
	buf = binenc.AppendInt(buf, 0)
	buf = append(buf, 0)
	if err := rc.fc.writeFrame(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if code := rc.expectError(); code != CodeSeqGap {
		t.Fatalf("error code %d, want seq-gap", code)
	}
}

func TestStreamUnknownChannelAborts(t *testing.T) {
	_, srv := startServer(t, service.Config{}, Config{})
	rc := dialRaw(t, srv.Addr())
	var buf []byte
	buf = append(buf, frameSeal)
	buf = binenc.AppendUvarint(buf, 42)
	buf = binenc.AppendUvarint(buf, 1)
	if err := rc.fc.writeFrame(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if code := rc.expectError(); code != CodeUnknownChan {
		t.Fatalf("error code %d, want unknown-channel", code)
	}
}

func TestStreamDupReplayAppliesOnce(t *testing.T) {
	svc, srv := startServer(t, service.Config{}, Config{})
	tr, _ := NewTraffic("ring", 3, 11)
	batches := make([][]service.Event, 6)
	for i := range batches {
		batches[i] = tr.Next(nil, 25)
	}

	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	ch1, err := c1.Open("s", 3, "gen")
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	for i, b := range batches {
		if err := ch1.Send(b); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ch1.Flush(ctx); err != nil {
		t.Fatalf("flush 1: %v", err)
	}
	_ = c1.Close()

	// A second connection replays EVERY frame — all duplicates. The
	// server must re-ack them without applying anything twice.
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer c2.Close() //nolint:errcheck
	ch2, err := c2.Open("s", 3, "gen")
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	if ch2.Next != uint64(len(batches))+1 {
		t.Fatalf("resume seq %d, want %d", ch2.Next, len(batches)+1)
	}
	if err := ch2.Rewind(1); err != nil {
		t.Fatalf("rewind: %v", err)
	}
	for i, b := range batches {
		if err := ch2.Send(b); err != nil {
			t.Fatalf("resend %d: %v", i, err)
		}
	}
	if err := ch2.Flush(ctx); err != nil {
		t.Fatalf("flush 2: %v", err)
	}

	total := 0
	for _, b := range batches {
		total += len(b)
	}
	sess, _ := svc.Session("s")
	if v := sess.Verdict(0); v.EventsApplied != int64(total) {
		t.Fatalf("applied %d events, want exactly %d", v.EventsApplied, total)
	}
}

func TestStreamCreditWindowBlocksAndRecovers(t *testing.T) {
	_, srv := startServer(t, service.Config{}, Config{Window: 32})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close() //nolint:errcheck
	ch, err := c.Open("s", 2, "p")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	tr, _ := NewTraffic("pairs", 2, 3)
	// 40 batches of 16 events through a 32-event window: every second
	// send must wait for an ack. Liveness is the assertion.
	for i := 0; i < 40; i++ {
		if err := ch.Send(tr.Next(nil, 16)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ch.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func TestStreamGracefulDrain(t *testing.T) {
	_, srv := startServer(t, service.Config{}, Config{})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close() //nolint:errcheck
	ch, err := c.Open("s", 2, "p")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	tr, _ := NewTraffic("random", 2, 5)
	if err := ch.Send(tr.Next(nil, 100)); err != nil {
		t.Fatalf("send: %v", err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// The in-flight frame is acked through the drain.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ch.Flush(ctx); err != nil {
		t.Fatalf("flush during drain: %v", err)
	}
	// Goodbye eventually stops new sends.
	deadline := time.Now().Add(5 * time.Second)
	for !c.Goodbye() {
		if time.Now().After(deadline) {
			t.Fatal("goodbye never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	if err := ch.Send(tr.Next(nil, 10)); !errors.Is(err, ErrGoodbye) {
		t.Fatalf("send after goodbye: %v, want ErrGoodbye", err)
	}
	_ = c.Close()
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
