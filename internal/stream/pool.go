package stream

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// PoolMaxHops bounds MOVED redirects plus endpoint failovers per open;
// a healthy cluster answers in one hop, a mid-rebalance cluster in two.
const PoolMaxHops = 16

// Pool is a cluster-aware stream client: one lazily dialed connection
// per member endpoint, opens that follow MOVED redirects to a session's
// owner, and resume that replays a dead channel's unacked frames from
// the new owner's OPENOK sequence point. Safe for concurrent use.
type Pool struct {
	opts []Option

	mu      sync.Mutex
	seeds   []string // configured endpoints, round-robin entry points
	next    int
	clients map[string]*Client
}

// NewPool builds a pool over the given member stream endpoints. The
// options apply to every connection the pool dials.
func NewPool(endpoints []string, opts ...Option) *Pool {
	return &Pool{
		opts:    opts,
		seeds:   append([]string(nil), endpoints...),
		clients: make(map[string]*Client),
	}
}

// pick returns the next entry-point endpoint, round-robin.
func (p *Pool) pick() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	addr := p.seeds[p.next%len(p.seeds)]
	p.next++
	return addr
}

// client returns the pooled connection to addr, dialing if absent and
// redialing if the cached one has died.
func (p *Pool) client(addr string) (*Client, error) {
	p.mu.Lock()
	c := p.clients[addr]
	p.mu.Unlock()
	if c != nil && c.Err() == nil && !c.Goodbye() {
		return c, nil
	}
	if c != nil {
		_ = c.Close()
	}
	fresh, err := Dial(addr, p.opts...)
	if err != nil {
		p.mu.Lock()
		if p.clients[addr] == c {
			delete(p.clients, addr)
		}
		p.mu.Unlock()
		return nil, err
	}
	p.mu.Lock()
	// A concurrent caller may have redialed first; keep the winner.
	if cur := p.clients[addr]; cur != nil && cur != c && cur.Err() == nil {
		p.mu.Unlock()
		_ = fresh.Close()
		return cur, nil
	}
	p.clients[addr] = fresh
	p.mu.Unlock()
	return fresh, nil
}

// drop forgets a dead connection so the next use redials.
func (p *Pool) drop(addr string, c *Client) {
	p.mu.Lock()
	if p.clients[addr] == c {
		delete(p.clients, addr)
	}
	p.mu.Unlock()
	_ = c.Close()
}

// Open binds a channel to session id on whichever member owns it:
// it enters at a seed endpoint and follows MOVED redirects (and routes
// around dead members) until an owner answers. It returns the channel
// and the endpoint that accepted it.
func (p *Pool) Open(id string, n int, producer string) (*Chan, string, error) {
	addr := p.pick()
	var lastErr error
	for hop := 0; hop < PoolMaxHops; hop++ {
		c, err := p.client(addr)
		if err != nil {
			// Member down (possibly mid-restart): try another entry point
			// after a beat; its ring will redirect us to the live owner.
			lastErr = err
			time.Sleep(25 * time.Millisecond)
			addr = p.pick()
			continue
		}
		ch, err := c.Open(id, n, producer)
		if moved, ok := MovedTo(err); ok {
			addr = moved
			continue
		}
		switch {
		case err == nil:
			return ch, addr, nil
		case errors.Is(err, ErrConnClosed) || errors.Is(err, ErrGoodbye) || c.Err() != nil:
			// The shared connection died under the open — another
			// channel's protocol abort, a server restart, or a raced
			// goodbye. The raw transport error may not wrap ErrConnClosed,
			// so also trust the connection's own post-mortem. Redial.
			p.drop(addr, c)
			lastErr = err
			addr = p.pick()
			continue
		default:
			return nil, "", err
		}
	}
	return nil, "", fmt.Errorf("stream: open %q: no owner after %d hops: %w", id, PoolMaxHops, lastErr)
}

// Resume re-opens a dead channel's (session, producer) stream on the
// current owner and replays the frames the old connection never got
// acked. The server's OPENOK names the next sequence it expects, so
// frames it accepted before the cut (acks lost in flight) are skipped
// here and the rest land exactly once. Returns the fresh channel with
// the replay in flight (Flush to collect the acks) and the endpoint
// now serving the session.
//
// old stays usable as the replay source across retries: its unacked
// set is a stable superset of what any aborted attempt re-sent, and
// each retry re-reads the server's resume point.
func (p *Pool) Resume(old *Chan) (*Chan, string, error) {
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		ch, addr, err := p.resumeOnce(old)
		if err == nil {
			return ch, addr, nil
		}
		lastErr = err
		var pe *ProtocolError
		// Moved and draining obviously warrant another hop. A sequence
		// gap during the replay means the owner's copy moved (or was
		// superseded) between the OPENOK and the replayed frame — also
		// transient under churn: the next attempt re-reads the resume
		// point. Anything else is a real protocol failure.
		if errors.As(err, &pe) && pe.Code != CodeMoved && pe.Code != CodeDraining && pe.Code != CodeSeqGap {
			return nil, "", err
		}
		time.Sleep(time.Duration(attempt+1) * 25 * time.Millisecond)
	}
	return nil, "", fmt.Errorf("stream: resume %q: %w", old.SessionID, lastErr)
}

func (p *Pool) resumeOnce(old *Chan) (*Chan, string, error) {
	batches := old.Unacked()
	ch, addr, err := p.Open(old.SessionID, old.N, old.Producer)
	if err != nil {
		return nil, "", err
	}
	if len(batches) == 0 && ch.Next < old.NextSeq() {
		// Every frame this channel ever sent was acked, yet the owner's
		// resume point is behind them: it is serving a stale copy whose
		// covering state is still in flight between members. Fail the
		// resume so the caller retries, rather than silently continuing
		// against state that forgot acked events.
		_ = ch.Close()
		return nil, "", fmt.Errorf("stream: resume %q: owner resume point %d behind acked %d (stale copy in flight?)",
			old.SessionID, ch.Next, old.NextSeq()-1)
	}
	next := ch.Next
	for _, b := range batches {
		if b.Seq < next {
			continue // accepted before the cut; only the ack was lost
		}
		if b.Seq != next {
			_ = ch.Close()
			return nil, "", fmt.Errorf("stream: resume %q: unacked frames jump %d -> %d (server expects %d)",
				old.SessionID, next-1, b.Seq, ch.Next)
		}
		if b.Seal {
			err = ch.Seal()
		} else {
			err = ch.Send(b.Events)
		}
		if err != nil {
			return nil, "", err
		}
		next++
	}
	return ch, addr, nil
}

// Close tears down every pooled connection.
func (p *Pool) Close() error {
	p.mu.Lock()
	clients := make([]*Client, 0, len(p.clients))
	for _, c := range p.clients {
		clients = append(clients, c)
	}
	p.clients = make(map[string]*Client)
	p.mu.Unlock()
	var first error
	for _, c := range clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
