package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/cluster"
	"github.com/rdt-go/rdt/internal/model"
	"github.com/rdt-go/rdt/internal/recovery"
	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/transport"
	"github.com/rdt-go/rdt/internal/vtime"
)

// Result is what one scenario run produced.
type Result struct {
	Name string
	// Verdict is "rdt" or "violation" for the final incarnation's
	// recorded pattern, judged by the batch analyzer and cross-checked
	// against an online replay.
	Verdict string
	// Pattern is the final incarnation's communication-and-checkpoint
	// pattern.
	Pattern *model.Pattern
	// Delivered counts application deliveries across all incarnations.
	Delivered int
	// Lost counts messages lost across the run: per-recovery losses plus
	// the final lossy stop.
	Lost int
	// Recovered lists processes that crashed and were autonomously
	// recovered by the supervisor, in the order their failovers
	// completed.
	Recovered []int
	// Line is the recovery line computed from the final store.
	Line []int
	// SimTime is how much virtual time the run covered.
	SimTime time.Duration
	// Transcript is the deterministic run log: one line per directive
	// and (in unsupervised runs) per delivery, byte-identical across
	// runs of the same file.
	Transcript string
	// Failures lists every violated 'expect' assertion; empty means the
	// scenario passed.
	Failures []string
}

// Passed reports whether every expectation held.
func (r *Result) Passed() bool { return len(r.Failures) == 0 }

// runner is the live state of one scenario execution.
type runner struct {
	sc    *Scenario
	v     *vtime.Virtual
	start time.Time

	faulty *transport.Faulty // current incarnation's injector, nil without faults
	cur    *cluster.Cluster  // current incarnation (unsupervised)
	sup    *cluster.Supervisor

	mu        sync.Mutex
	lines     []string
	delivered int
	nextFault *transport.Faulty // injector built by the pending recovery attempt

	msgSeq     int
	lost       int
	recovered  []int
	crashedNow []int
	lastInc    int
	runErr     error
}

// Run executes a parsed scenario to completion under a virtual clock and
// checks its expectations. The returned error reports a harness failure
// (the run could not be executed); expectation mismatches are reported
// in Result.Failures instead.
func Run(sc *Scenario) (*Result, error) {
	r := &runner{sc: sc, v: vtime.NewVirtual(time.Time{})}
	r.start = r.v.Now()

	trans, faulty := r.newStack(sc.Seed)
	r.faulty = faulty
	c, err := cluster.New(cluster.Config{
		N:           sc.N,
		Protocol:    sc.Protocol,
		Transport:   trans,
		Store:       storage.NewMemory(),
		LogPayloads: true,
		Handler:     r.onDeliver,
		OnError:     r.onError,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	r.cur = c

	if sc.Supervise {
		sup, err := cluster.Supervise(c, cluster.SupervisorConfig{
			Interval:     10 * time.Millisecond,
			Seed:         sc.Seed,
			DrainTimeout: 100 * time.Millisecond,
			Clock:        r.v,
			Options:      r.recoverOptions,
			OnRecover:    r.onRecover,
		})
		if err != nil {
			r.abandon()
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		r.sup = sup
		r.lastInc = 1
	}

	r.logf("scenario %s procs=%d protocol=%v seed=%d", sc.Name, sc.N, sc.Protocol, sc.Seed)
	res, err := r.run()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	return res, nil
}

// newStack builds one incarnation's transport stack on the shared
// virtual clock: local delivery jitter, then the fault injector when the
// scenario needs one, then retransmission.
func (r *runner) newStack(seed int64) (transport.Transport, *transport.Faulty) {
	var t transport.Transport = transport.NewLocalWith(transport.LocalConfig{
		MaxDelay: r.sc.Delay,
		Seed:     seed,
		Clock:    r.v,
	})
	var faulty *transport.Faulty
	if r.sc.needsFaulty() {
		faulty = transport.WithFaults(t, transport.FaultConfig{
			Seed:    seed,
			Default: r.sc.Faults,
			Clock:   r.v,
		})
		t = faulty
	}
	if r.sc.Reliable {
		t = transport.Reliable(t, transport.ReliableConfig{
			Seed:  seed,
			Clock: r.v,
			OnGiveUp: func(f transport.Frame, err error) {
				if r.sup != nil {
					r.sup.OnGiveUp(f, err)
				}
			},
		})
	}
	return t, faulty
}

// recoverOptions supplies each supervised recovery attempt with a fresh
// store and a fresh virtual-clock transport stack. The attempt's
// injector is staged and only becomes the run's current one when the
// recovery succeeds (onRecover).
func (r *runner) recoverOptions(incarnation, attempt int) cluster.RecoverOptions {
	t, faulty := r.newStack(r.sc.Seed + int64(incarnation)*100 + int64(attempt))
	r.mu.Lock()
	r.nextFault = faulty
	r.mu.Unlock()
	return cluster.RecoverOptions{
		Store:     storage.NewMemory(),
		Transport: t,
	}
}

// onRecover commits a successful failover: the staged injector becomes
// current and the crashes it repaired are recorded as recovered.
func (r *runner) onRecover(res *cluster.RecoverResult) {
	r.mu.Lock()
	r.faulty = r.nextFault
	r.lost += len(res.Lost)
	r.mu.Unlock()
}

func (r *runner) onDeliver(n *cluster.Node, from int, payload []byte) {
	r.mu.Lock()
	r.delivered++
	if !r.sc.Supervise {
		r.lines = append(r.lines, fmt.Sprintf("t=%v deliver %d<-%d %s",
			r.v.Now().Sub(r.start), n.Proc(), from, payload))
	}
	r.mu.Unlock()
}

func (r *runner) onError(err error) {
	r.mu.Lock()
	if r.runErr == nil {
		r.runErr = err
	}
	r.mu.Unlock()
}

func (r *runner) logf(format string, args ...any) {
	r.mu.Lock()
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

// stepf logs one directive line, stamped with its virtual instant.
func (r *runner) stepf(format string, args ...any) {
	r.logf("t=%v %s", r.v.Now().Sub(r.start), fmt.Sprintf(format, args...))
}

// cl is the current incarnation.
func (r *runner) cl() *cluster.Cluster {
	if r.sup != nil {
		return r.sup.Cluster()
	}
	return r.cur
}

func (r *runner) settle() { r.cl().Settle() }

// advance moves virtual time forward by dt, firing every due timer in
// deterministic order and quiescing the cluster between firings so
// exactly one operation is in flight at a time.
func (r *runner) advance(dt time.Duration) {
	if dt > 0 {
		r.v.AdvanceUntilIdle(dt, r.settle)
	}
}

// drain keeps advancing until the timer heap is empty (bounded — a
// supervised run's probe ticker re-arms forever, so one window is the
// whole drain there).
func (r *runner) drain() {
	if r.sup != nil {
		r.advance(r.sc.Drain)
		return
	}
	for i := 0; r.v.Pending() > 0 && i < 64; i++ {
		r.advance(r.sc.Drain)
	}
}

// abandon tears the run down after a harness error.
func (r *runner) abandon() {
	if r.sup != nil {
		r.sup.Stop()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _ = r.cl().StopLossy(ctx)
}

func (r *runner) run() (*Result, error) {
	prev := time.Duration(0)
	for _, st := range r.sc.Steps {
		r.advance(st.At - prev)
		prev = st.At
		if err := r.exec(st); err != nil {
			r.abandon()
			return nil, err
		}
		r.settle()
		r.mu.Lock()
		err := r.runErr
		r.mu.Unlock()
		if err != nil {
			r.abandon()
			return nil, err
		}
	}
	r.drain()
	return r.finish()
}

// exec runs one directive. Directives addressed to a crashed process
// log a rejection instead of failing the run — crashing a process and
// then racing traffic into it is exactly what a chaos scenario does.
func (r *runner) exec(st Step) error {
	c := r.cl()
	switch st.Op {
	case OpCheckpoint:
		if err := c.Node(st.A).Checkpoint(); err != nil {
			r.stepf("checkpoint %d rejected: %v", st.A, err)
			return nil
		}
		r.stepf("checkpoint %d", st.A)
	case OpSend:
		r.send(c, st.A, st.B)
	case OpBcast:
		r.stepf("bcast %d", st.A)
		for to := 0; to < r.sc.N; to++ {
			if to != st.A {
				r.send(c, st.A, to)
			}
		}
	case OpTraffic:
		r.stepf("traffic %s rounds=%d", st.Mode, st.Rounds)
		r.traffic(st)
	case OpPartition:
		r.faulty.Partition(st.A, st.B)
		r.stepf("partition %d %d", st.A, st.B)
	case OpHeal:
		r.faulty.Heal(st.A, st.B)
		r.stepf("heal %d %d", st.A, st.B)
	case OpHealAll:
		r.faulty.HealAll()
		r.stepf("heal-all")
	case OpIsolate:
		for p := 0; p < r.sc.N; p++ {
			if p != st.A {
				r.faulty.Partition(st.A, p)
			}
		}
		r.stepf("disconnect %d for=%v", st.A, st.Dur)
	case OpReconnect:
		for p := 0; p < r.sc.N; p++ {
			if p != st.A {
				r.faulty.Heal(st.A, p)
			}
		}
		r.stepf("reconnect %d", st.A)
	case OpCrash:
		if err := c.Node(st.A).Crash(); err != nil {
			r.stepf("crash %d rejected: %v", st.A, err)
			return nil
		}
		r.crashedNow = append(r.crashedNow, st.A)
		r.stepf("crash %d", st.A)
	case OpRestart:
		if err := c.Restart(st.A); err != nil {
			r.stepf("restart %d rejected: %v", st.A, err)
			return nil
		}
		r.stepf("restart %d", st.A)
	case OpRecover:
		return r.recoverNow()
	case OpAwaitRecovery:
		return r.awaitRecovery()
	case OpSettle:
		r.drain()
		r.stepf("settle")
	}
	return nil
}

// send issues one tagged message and settles, so builder handles and
// sequence numbers are assigned in schedule order.
func (r *runner) send(c *cluster.Cluster, from, to int) {
	tag := fmt.Sprintf("m%d", r.msgSeq)
	r.msgSeq++
	if err := c.Node(from).Send(to, []byte(tag)); err != nil {
		r.stepf("send %d %d rejected: %v", from, to, err)
		return
	}
	r.stepf("send %d %d %s", from, to, tag)
	c.Settle()
}

// traffic expands one traffic directive: per round, every alive process
// sends along the mode's topology, then every alive process checkpoints
// — the paper's environments, made concrete.
func (r *runner) traffic(st Step) {
	c := r.cl()
	crashed := make(map[int]bool)
	for _, p := range c.Crashed() {
		crashed[p] = true
	}
	alive := func(p int) bool { return !crashed[p] }
	rng := rand.New(rand.NewSource(r.sc.Seed ^ 0x7261666369)) // "traffic"
	for round := 0; round < st.Rounds; round++ {
		switch st.Mode {
		case TrafficRing:
			for i := 0; i < r.sc.N; i++ {
				to := (i + 1) % r.sc.N
				if alive(i) && alive(to) {
					r.send(c, i, to)
				}
			}
		case TrafficPairs:
			for i := 0; i+1 < r.sc.N; i += 2 {
				if alive(i) && alive(i+1) {
					r.send(c, i, i+1)
					r.send(c, i+1, i)
				}
			}
		case TrafficClientServer:
			for i := 1; i < r.sc.N; i++ {
				if alive(i) && alive(0) {
					r.send(c, i, 0)
					r.send(c, 0, i)
				}
			}
		case TrafficRandom:
			for i := 0; i < r.sc.N; i++ {
				from := rng.Intn(r.sc.N)
				to := rng.Intn(r.sc.N - 1)
				if to >= from {
					to++
				}
				if alive(from) && alive(to) {
					r.send(c, from, to)
				}
			}
		case TrafficDBTxn:
			// One distributed transaction per round, two-phase-commit
			// shape: the coordinator (process 0) sends prepare to every
			// participant, each participant answers with its vote, and
			// the coordinator broadcasts the decision. The checkpoint
			// sweep below is the transaction boundary every process
			// forces before the next transaction starts.
			for i := 1; i < r.sc.N; i++ {
				if alive(0) && alive(i) {
					r.send(c, 0, i) // prepare
					r.send(c, i, 0) // vote
				}
			}
			for i := 1; i < r.sc.N; i++ {
				if alive(0) && alive(i) {
					r.send(c, 0, i) // decision
				}
			}
		}
		for i := 0; i < r.sc.N; i++ {
			if alive(i) {
				if err := c.Node(i).Checkpoint(); err == nil {
					r.stepf("checkpoint %d", i)
					c.Settle()
				}
			}
		}
	}
}

// recoverNow runs one unsupervised full rollback recovery: stop the
// current incarnation lossily, compute the recovery line, start a new
// incarnation on a fresh virtual transport with the crossing messages
// replayed.
func (r *runner) recoverNow() error {
	t, faulty := r.newStack(r.sc.Seed + 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // drained by the schedule; classify stragglers as lost now
	res, err := r.cur.Recover(ctx, cluster.RecoverOptions{
		Store:     storage.NewMemory(),
		Transport: t,
	})
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	r.cur = res.Cluster
	r.faulty = faulty
	r.mu.Lock()
	r.lost += len(res.Lost)
	r.mu.Unlock()
	r.stepf("recover line=%v rollback=%d replayed=%d lost=%d",
		[]int(res.Plan.Line), res.Plan.TotalRollback(), len(res.Replayed), len(res.Lost))
	return nil
}

// awaitRecovery pumps virtual time until the supervisor completes a
// failover (the incarnation number moves past the last one awaited).
// The supervisor goroutine runs on the scheduler's time, so each pump
// pairs a virtual advance with a real yield; a real deadline bounds the
// wait.
func (r *runner) awaitRecovery() error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case <-r.sup.Done():
			return fmt.Errorf("await-recovery: supervisor escalated and stopped")
		default:
		}
		if inc := r.sup.Incarnation(); inc > r.lastInc {
			r.lastInc = inc
			r.recovered = append(r.recovered, r.crashedNow...)
			r.crashedNow = nil
			r.stepf("recovered incarnation=%d", inc)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("await-recovery: no failover after %v virtual", r.v.Now().Sub(r.start))
		}
		r.v.Advance(10 * time.Millisecond)
		time.Sleep(200 * time.Microsecond)
	}
}

// finish stops the run, computes the verdict (batch, cross-checked
// online), the recovery line, and the expectation failures.
func (r *runner) finish() (*Result, error) {
	if r.sup != nil {
		r.sup.Stop()
	}
	c := r.cl()
	finalStore := c.Store()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // virtual drain already ran; anything still in flight is lost
	pattern, lostMsgs, err := c.StopLossy(ctx)
	if err != nil {
		return nil, fmt.Errorf("stop: %w", err)
	}

	res := &Result{
		Name:      r.sc.Name,
		Pattern:   pattern,
		Recovered: r.recovered,
		SimTime:   r.v.Now().Sub(r.start),
	}
	r.mu.Lock()
	res.Delivered = r.delivered
	res.Lost = r.lost + len(lostMsgs)
	runErr := r.runErr
	r.mu.Unlock()
	if runErr != nil {
		return nil, fmt.Errorf("cluster error: %w", runErr)
	}

	report, err := rgraph.CheckRDT(pattern, 4)
	if err != nil {
		return nil, fmt.Errorf("batch check: %w", err)
	}
	inc, err := rgraph.ReplayIncremental(pattern)
	if err != nil {
		return nil, fmt.Errorf("online replay: %w", err)
	}
	if inc.RDT() != report.RDT {
		return nil, fmt.Errorf("verdict divergence: batch rdt=%v, online rdt=%v (violations=%d)",
			report.RDT, inc.RDT(), inc.Violations())
	}
	res.Verdict = "violation"
	if report.RDT {
		res.Verdict = "rdt"
	}

	mgr, err := recovery.NewManager(finalStore, r.sc.N)
	if err != nil {
		return nil, fmt.Errorf("recovery manager: %w", err)
	}
	bounds, err := mgr.Latest()
	if err == nil {
		if plan, perr := mgr.LineFrom(bounds); perr == nil {
			res.Line = append([]int(nil), plan.Line...)
		}
	}

	r.stepf("verdict %s delivered=%d lost=%d", res.Verdict, res.Delivered, res.Lost)
	if res.Line != nil {
		r.logf("line %v", res.Line)
	}
	r.mu.Lock()
	res.Transcript = strings.Join(r.lines, "\n") + "\n"
	r.mu.Unlock()

	res.Failures = r.checkExpect(res)
	return res, nil
}

// checkExpect compares the result against the scenario's trailer.
func (r *runner) checkExpect(res *Result) []string {
	var fails []string
	e := r.sc.Expect
	if e.Verdict != "" && res.Verdict != e.Verdict {
		fails = append(fails, fmt.Sprintf("verdict: want %s, have %s", e.Verdict, res.Verdict))
	}
	if res.Delivered < e.MinDelivered {
		fails = append(fails, fmt.Sprintf("delivered: want >=%d, have %d", e.MinDelivered, res.Delivered))
	}
	if e.HasLost && res.Lost != e.Lost {
		fails = append(fails, fmt.Sprintf("lost: want %d, have %d", e.Lost, res.Lost))
	}
	for _, want := range e.Recovered {
		found := false
		for _, got := range res.Recovered {
			if got == want {
				found = true
				break
			}
		}
		if !found {
			fails = append(fails, fmt.Sprintf("recovered: process %d was not autonomously recovered (recovered=%v)", want, res.Recovered))
		}
	}
	if e.HasLine {
		match := len(res.Line) == len(e.Line)
		if match {
			for i := range e.Line {
				if res.Line[i] != e.Line[i] {
					match = false
					break
				}
			}
		}
		if !match {
			fails = append(fails, fmt.Sprintf("line: want %v, have %v", e.Line, res.Line))
		}
	}
	return fails
}
