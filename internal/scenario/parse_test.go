package scenario

import (
	"strings"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/core"
)

// TestParseFull: every header, directive, and expectation round-trips
// into the expected structure.
func TestParseFull(t *testing.T) {
	src := `
# full grammar exercise
scenario everything
procs 4
protocol fdas
seed 99
delay 3ms
drain 100ms
faults drop=0.1,dup=0.2,reorder=0.3,err=0.05,delay=4ms
reliable

at 0ms   checkpoint 0
at 1ms   send 0 1       # trailing comment
at 2     bcast 2
at 5ms   traffic ring rounds=2
at 10ms  partition 0 1
at 12ms  heal 0 1
at 13ms  heal-all
at 20ms  disconnect 3 for=10ms
at 40ms  crash 1
at 45ms  restart 1
at 50ms  recover
at 60ms  settle

expect verdict rdt
expect line 1,2,0,1
expect min-delivered 5
expect lost 2
`
	sc, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "everything" || sc.N != 4 || sc.Protocol != core.KindFDAS || sc.Seed != 99 {
		t.Fatalf("header: %+v", sc)
	}
	if sc.Delay != 3*time.Millisecond || sc.Drain != 100*time.Millisecond {
		t.Fatalf("timing: delay=%v drain=%v", sc.Delay, sc.Drain)
	}
	if !sc.HasFaults || sc.Faults.Drop != 0.1 || sc.Faults.MaxExtraDelay != 4*time.Millisecond {
		t.Fatalf("faults: %+v", sc.Faults)
	}
	if !sc.Reliable || sc.Supervise {
		t.Fatalf("flags: reliable=%v supervise=%v", sc.Reliable, sc.Supervise)
	}
	// 12 directives, plus the reconnect the disconnect desugars into.
	if len(sc.Steps) != 13 {
		t.Fatalf("steps: %d, want 13", len(sc.Steps))
	}
	// "at 2" without a unit is milliseconds.
	var bcast *Step
	for i := range sc.Steps {
		if sc.Steps[i].Op == OpBcast {
			bcast = &sc.Steps[i]
		}
	}
	if bcast == nil || bcast.At != 2*time.Millisecond {
		t.Fatalf("bare-number duration: %+v", bcast)
	}
	// The desugared reconnect lands at 20ms+10ms, sorted into place.
	found := false
	for _, st := range sc.Steps {
		if st.Op == OpReconnect && st.A == 3 && st.At == 30*time.Millisecond {
			found = true
		}
	}
	if !found {
		t.Fatal("disconnect did not desugar into a reconnect at 30ms")
	}
	if sc.Expect.Verdict != "rdt" || !sc.Expect.HasLine || sc.Expect.MinDelivered != 5 ||
		!sc.Expect.HasLost || sc.Expect.Lost != 2 {
		t.Fatalf("expect: %+v", sc.Expect)
	}
}

// TestParseSortsEqualInstantsByFileOrder: two directives at the same
// instant keep their file order after sorting.
func TestParseSortsEqualInstantsByFileOrder(t *testing.T) {
	sc, err := Parse(strings.NewReader(`
scenario order
procs 3
at 5ms send 1 0
at 5ms send 0 1
at 1ms checkpoint 2
`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Steps[0].Op != OpCheckpoint {
		t.Fatalf("first step %v, want the 1ms checkpoint", sc.Steps[0].Op)
	}
	if sc.Steps[1].A != 1 || sc.Steps[2].A != 0 {
		t.Fatalf("equal instants reordered: %+v", sc.Steps[1:])
	}
}

// TestParseErrors: malformed input is rejected with the offending line.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no name", "procs 3\nat 0ms settle\n", "missing 'scenario NAME'"},
		{"one proc", "scenario x\nprocs 1\n", "procs must be >= 2"},
		{"bad directive", "scenario x\nprocs 2\nat 0ms fly 0\n", `unknown directive "fly"`},
		{"bad header", "scenario x\nprocs 2\nwarp 9\n", `unknown header "warp"`},
		{"proc range", "scenario x\nprocs 2\nat 0ms checkpoint 5\n", "out of range"},
		{"self send", "scenario x\nprocs 2\nat 0ms send 1 1\n", "distinct"},
		{"neg instant", "scenario x\nprocs 2\nat -1ms settle\n", "negative instant"},
		{"bad verdict", "scenario x\nprocs 2\nexpect verdict maybe\n", "verdict must be"},
		{"bad mode", "scenario x\nprocs 2\nat 0ms traffic mesh rounds=1\n", "unknown traffic mode"},
		{"zero rounds", "scenario x\nprocs 2\nat 0ms traffic ring rounds=0\n", "rounds>=1"},
		{"await unsupervised", "scenario x\nprocs 2\nat 0ms await-recovery\n", "needs 'supervise'"},
		{"recover supervised", "scenario x\nprocs 2\nsupervise\nat 0ms recover\n", "conflicts with 'supervise'"},
		{"line arity", "scenario x\nprocs 3\nexpect line 1,2\n", "expect line has 2 entries"},
		{"bad fault key", "scenario x\nprocs 2\nfaults lag=0.5\n", `unknown key "lag"`},
		{"fault prob range", "scenario x\nprocs 2\nfaults drop=1.5\n", "out of [0,1]"},
		{"zero window", "scenario x\nprocs 2\nat 0ms disconnect 1 for=0ms\n", "must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.src))
			if err == nil {
				t.Fatal("parse accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzParse: the parser never panics and never returns a scenario that
// fails its own validation.
func FuzzParse(f *testing.F) {
	f.Add("scenario x\nprocs 3\nat 0ms traffic ring rounds=2\nexpect verdict rdt\n")
	f.Add("scenario y\nprocs 2\nfaults drop=0.5\nreliable\nat 5ms send 0 1\nat 9 disconnect 1 for=3ms\n")
	f.Add("scenario z\nprocs 4\nsupervise\nat 0ms crash 2\nat 1ms await-recovery\nexpect recovered 2\n")
	f.Add("# comment\n\nscenario w\nprocs 2\nprotocol bcs\nseed -1\ndelay 250us\nat 0 settle\nexpect lost 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		sc, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if verr := sc.validate(); verr != nil {
			t.Fatalf("Parse accepted a scenario its own validate rejects: %v", verr)
		}
	})
}
