package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/rdt-go/rdt/internal/core"
)

// Generate builds a random but fully determined scenario from a seed:
// bursts of topology traffic interleaved with partitions, disconnect
// windows, and crash/recover cycles, spanning span of virtual time. The
// same seed always yields the same scenario, so a soak failure is a
// one-line reproducer.
func Generate(seed int64, span time.Duration) *Scenario {
	rng := rand.New(rand.NewSource(seed))
	protocols := []core.Kind{core.KindBHMR, core.KindFDAS, core.KindBCS, core.KindBHMRNoSimple}
	modes := []string{TrafficRing, TrafficPairs, TrafficClientServer, TrafficRandom, TrafficDBTxn}

	sc := &Scenario{
		Name:     fmt.Sprintf("soak-%d", seed),
		N:        3 + rng.Intn(4),
		Protocol: protocols[rng.Intn(len(protocols))],
		Seed:     seed,
		Delay:    time.Duration(1+rng.Intn(4)) * time.Millisecond,
	}
	if rng.Intn(2) == 0 {
		sc.HasFaults = true
		sc.Faults.Drop = 0.05 * rng.Float64()
		sc.Faults.Duplicate = 0.05 * rng.Float64()
		sc.Faults.Reorder = 0.2 * rng.Float64()
		sc.Faults.MaxExtraDelay = time.Duration(rng.Intn(5)) * time.Millisecond
		sc.Reliable = true
	}

	seq := 0
	add := func(at time.Duration, st Step) {
		st.At = at
		st.seq = seq
		seq++
		sc.Steps = append(sc.Steps, st)
	}

	// Walk virtual time forward, dropping an event burst every few
	// seconds; the long idle gaps between bursts cost nothing under the
	// virtual clock but make the soak cover hours of simulated operation.
	gap := span / 24
	at := time.Duration(0)
	partitioned := false
	for at < span-gap {
		switch rng.Intn(6) {
		case 0, 1, 2: // traffic burst
			add(at, Step{Op: OpTraffic, A: -1, B: -1,
				Mode: modes[rng.Intn(len(modes))], Rounds: 1 + rng.Intn(3)})
		case 3: // partition window
			if !partitioned && sc.N >= 2 {
				a := rng.Intn(sc.N)
				b := rng.Intn(sc.N - 1)
				if b >= a {
					b++
				}
				add(at, Step{Op: OpPartition, A: a, B: b})
				add(at+gap/2, Step{Op: OpHeal, A: a, B: b})
				partitioned = true
			}
		case 4: // mobile host drops off the network for a while
			p := rng.Intn(sc.N)
			add(at, Step{Op: OpIsolate, A: p, B: -1, Dur: gap / 2})
			add(at+gap/2, Step{Op: OpReconnect, A: p, B: -1})
		case 5: // crash, let traffic run degraded, then recover
			p := rng.Intn(sc.N)
			add(at, Step{Op: OpCrash, A: p, B: -1})
			add(at+gap/4, Step{Op: OpTraffic, A: -1, B: -1, Mode: TrafficRandom, Rounds: 1})
			add(at+gap/2, Step{Op: OpRecover, A: -1, B: -1})
		}
		at += gap
	}
	add(span, Step{Op: OpSettle, A: -1, B: -1})

	sc.withDefaults()
	sc.sortSteps()
	if err := sc.validate(); err != nil {
		panic(fmt.Sprintf("scenario: Generate(%d) built an invalid scenario: %v", seed, err))
	}
	return sc
}
