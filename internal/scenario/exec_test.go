package scenario

import (
	"strings"
	"testing"
)

const basicRDT = `
scenario basic-ring
procs 3
protocol bhmr
seed 7
delay 2ms

at 0ms  traffic ring rounds=2
at 20ms settle

expect verdict rdt
expect min-delivered 6
`

// TestRunBasic: a plain ring scenario executes, delivers everything,
// and the CIC protocol keeps the pattern RDT.
func TestRunBasic(t *testing.T) {
	sc, err := Parse(strings.NewReader(basicRDT))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("expectations failed: %v\ntranscript:\n%s", res.Failures, res.Transcript)
	}
	if res.Delivered < 6 {
		t.Fatalf("delivered %d < 6", res.Delivered)
	}
	t.Logf("verdict=%s delivered=%d lost=%d sim=%v", res.Verdict, res.Delivered, res.Lost, res.SimTime)
}

// TestRunDeterministic: two executions of the same file produce
// byte-identical transcripts — the core replay guarantee.
func TestRunDeterministic(t *testing.T) {
	run := func() string {
		sc, err := Parse(strings.NewReader(basicRDT))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res.Transcript
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("transcripts diverge:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

const chaosDrops = `
scenario ring-under-drops
procs 4
seed 11
faults drop=0.2,dup=0.1,reorder=0.2,delay=3ms
reliable

at 0ms  traffic ring rounds=3
at 50ms settle

expect verdict rdt
expect min-delivered 10
`

// TestRunFaultsReliable: drops and reordering under retransmission still
// deliver the traffic, deterministically.
func TestRunFaultsReliable(t *testing.T) {
	sc, err := Parse(strings.NewReader(chaosDrops))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Passed() {
		t.Fatalf("expectations failed: %v\ntranscript:\n%s", a.Failures, a.Transcript)
	}
	sc2, _ := Parse(strings.NewReader(chaosDrops))
	b, err := Run(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Transcript != b.Transcript {
		t.Fatal("fault schedule not deterministic across runs")
	}
}

const crashRecover = `
scenario crash-then-recover
procs 3
seed 5

at 0ms  traffic ring rounds=2
at 20ms crash 1
at 25ms recover
at 30ms traffic ring rounds=1
at 50ms settle

expect verdict rdt
`

// TestRunCrashRecover: an unsupervised full rollback recovery restarts
// the computation from the recovery line and traffic resumes.
func TestRunCrashRecover(t *testing.T) {
	sc, err := Parse(strings.NewReader(crashRecover))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("expectations failed: %v\ntranscript:\n%s", res.Failures, res.Transcript)
	}
	if res.Delivered < 3 {
		t.Fatalf("post-recovery traffic not delivered: %d", res.Delivered)
	}
	t.Logf("verdict=%s delivered=%d lost=%d", res.Verdict, res.Delivered, res.Lost)
}

const supervised = `
scenario supervised-failover
procs 3
seed 9
supervise

at 0ms   traffic ring rounds=2
at 30ms  crash 1
at 35ms  await-recovery
at 40ms  traffic ring rounds=1
at 60ms  settle

expect verdict rdt
expect recovered 1
`

// TestRunSupervised: the supervisor detects the crash via its virtual
// probe ticker, fails over to a new incarnation, and the scenario's
// outcome-level expectations hold.
func TestRunSupervised(t *testing.T) {
	sc, err := Parse(strings.NewReader(supervised))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("expectations failed: %v\ntranscript:\n%s", res.Failures, res.Transcript)
	}
	t.Logf("recovered=%v verdict=%s delivered=%d", res.Recovered, res.Verdict, res.Delivered)
}
