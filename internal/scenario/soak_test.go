package scenario

import (
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/core"
)

// TestGenerateDeterministic: the same seed yields the same scenario and
// the same run, byte for byte — a soak failure is reproducible from its
// seed alone.
func TestGenerateDeterministic(t *testing.T) {
	run := func() string {
		res, err := Run(Generate(42, 30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		return res.Transcript
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("generated run not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestSoak runs a corpus of generated chaos scenarios covering at least
// one hour of simulated operation. Virtual time makes the hour cheap:
// the long idle gaps between event bursts advance instantly, so the
// whole soak fits in a few wall-clock seconds.
func TestSoak(t *testing.T) {
	const (
		runs = 16
		span = 5 * time.Minute
	)
	total := time.Duration(0)
	for seed := int64(1); seed <= runs; seed++ {
		sc := Generate(seed, span)
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Passed() {
			t.Errorf("seed %d: %v", seed, res.Failures)
		}
		// The soak's real invariant: a protocol that guarantees RDT must
		// keep the property under every fault schedule thrown at it.
		if guaranteesRDT(sc.Protocol) && res.Verdict != "rdt" {
			t.Errorf("seed %d: protocol %v guarantees RDT but the run violated it\n%s",
				seed, sc.Protocol, res.Transcript)
		}
		total += res.SimTime
		t.Logf("seed=%d procs=%d protocol=%v verdict=%s delivered=%d lost=%d sim=%v",
			seed, sc.N, sc.Protocol, res.Verdict, res.Delivered, res.Lost, res.SimTime)
	}
	if total < time.Hour {
		t.Fatalf("soak covered only %v simulated, want >= 1h", total)
	}
	t.Logf("soak total: %v simulated", total)
}

func guaranteesRDT(k core.Kind) bool {
	for _, g := range core.RDTKinds() {
		if g == k {
			return true
		}
	}
	return false
}
