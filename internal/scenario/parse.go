package scenario

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/transport"
)

// ParseFile reads one scenario from a .rdts file.
func ParseFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Parse reads one scenario in the line-oriented text format. Blank
// lines and '#' comments (full-line or trailing) are ignored.
func Parse(r io.Reader) (*Scenario, error) {
	sc := &Scenario{}
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 64*1024), 64*1024)
	lineno := 0
	seq := 0
	for scan.Scan() {
		lineno++
		line := scan.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		var err error
		switch fields[0] {
		case "at":
			err = parseStep(sc, fields[1:], lineno, &seq)
		case "expect":
			err = parseExpect(sc, fields[1:])
		default:
			err = parseHeader(sc, fields)
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
	}
	if err := scan.Err(); err != nil {
		return nil, err
	}
	sc.withDefaults()
	sc.sortSteps()
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func parseHeader(sc *Scenario, fields []string) error {
	key := fields[0]
	want := func(n int) error {
		if len(fields) != n+1 {
			return fmt.Errorf("%s takes %d argument(s), have %d", key, n, len(fields)-1)
		}
		return nil
	}
	switch key {
	case "scenario":
		if err := want(1); err != nil {
			return err
		}
		sc.Name = fields[1]
	case "procs":
		if err := want(1); err != nil {
			return err
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("procs: %w", err)
		}
		sc.N = n
	case "protocol":
		if err := want(1); err != nil {
			return err
		}
		kind, err := core.ParseKind(fields[1])
		if err != nil {
			return err
		}
		sc.Protocol = kind
	case "seed":
		if err := want(1); err != nil {
			return err
		}
		s, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("seed: %w", err)
		}
		sc.Seed = s
	case "delay":
		if err := want(1); err != nil {
			return err
		}
		d, err := parseDur(fields[1])
		if err != nil {
			return fmt.Errorf("delay: %w", err)
		}
		sc.Delay = d
	case "drain":
		if err := want(1); err != nil {
			return err
		}
		d, err := parseDur(fields[1])
		if err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		sc.Drain = d
	case "faults":
		if err := want(1); err != nil {
			return err
		}
		probs, err := parseFaultMix(fields[1])
		if err != nil {
			return err
		}
		sc.Faults = probs
		sc.HasFaults = true
	case "reliable":
		if err := want(0); err != nil {
			return err
		}
		sc.Reliable = true
	case "supervise":
		if err := want(0); err != nil {
			return err
		}
		sc.Supervise = true
	default:
		return fmt.Errorf("unknown header %q", key)
	}
	return nil
}

// parseStep parses the tail of an "at DUR OP ..." line. Disconnect
// windows desugar into an isolate step now and a reconnect step at the
// window's end, so the executor sees a flat schedule.
func parseStep(sc *Scenario, fields []string, lineno int, seq *int) error {
	if len(fields) < 2 {
		return fmt.Errorf("at: want 'at DURATION OP ...'")
	}
	at, err := parseDur(fields[0])
	if err != nil {
		return fmt.Errorf("at: %w", err)
	}
	if at < 0 {
		return fmt.Errorf("at: negative instant %v", at)
	}
	op := fields[1]
	args := fields[2:]
	st := Step{At: at, A: -1, B: -1, Line: lineno}
	add := func(s Step) {
		s.seq = *seq
		*seq++
		sc.Steps = append(sc.Steps, s)
	}
	procArg := func(i int) (int, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%s: missing process argument", op)
		}
		p, err := strconv.Atoi(args[i])
		if err != nil {
			return 0, fmt.Errorf("%s: process %q: %w", op, args[i], err)
		}
		return p, nil
	}
	argc := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d argument(s), have %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case "checkpoint", "bcast", "crash", "restart":
		if err := argc(1); err != nil {
			return err
		}
		if st.A, err = procArg(0); err != nil {
			return err
		}
		switch op {
		case "checkpoint":
			st.Op = OpCheckpoint
		case "bcast":
			st.Op = OpBcast
		case "crash":
			st.Op = OpCrash
		case "restart":
			st.Op = OpRestart
		}
		add(st)
	case "send", "partition", "heal":
		if err := argc(2); err != nil {
			return err
		}
		if st.A, err = procArg(0); err != nil {
			return err
		}
		if st.B, err = procArg(1); err != nil {
			return err
		}
		switch op {
		case "send":
			st.Op = OpSend
		case "partition":
			st.Op = OpPartition
		case "heal":
			st.Op = OpHeal
		}
		add(st)
	case "heal-all", "recover", "await-recovery", "settle":
		if err := argc(0); err != nil {
			return err
		}
		switch op {
		case "heal-all":
			st.Op = OpHealAll
		case "recover":
			st.Op = OpRecover
		case "await-recovery":
			st.Op = OpAwaitRecovery
		case "settle":
			st.Op = OpSettle
		}
		add(st)
	case "traffic":
		if len(args) != 2 {
			return fmt.Errorf("traffic takes 'MODE rounds=N'")
		}
		st.Op = OpTraffic
		st.Mode = args[0]
		val, ok := strings.CutPrefix(args[1], "rounds=")
		if !ok {
			return fmt.Errorf("traffic: want rounds=N, have %q", args[1])
		}
		if st.Rounds, err = strconv.Atoi(val); err != nil {
			return fmt.Errorf("traffic rounds: %w", err)
		}
		add(st)
	case "disconnect":
		if len(args) != 2 {
			return fmt.Errorf("disconnect takes 'PROC for=DURATION'")
		}
		if st.A, err = procArg(0); err != nil {
			return err
		}
		val, ok := strings.CutPrefix(args[1], "for=")
		if !ok {
			return fmt.Errorf("disconnect: want for=DURATION, have %q", args[1])
		}
		d, err := parseDur(val)
		if err != nil {
			return fmt.Errorf("disconnect for: %w", err)
		}
		if d <= 0 {
			return fmt.Errorf("disconnect: window must be positive, have %v", d)
		}
		st.Op = OpIsolate
		st.Dur = d
		add(st)
		add(Step{At: at + d, Op: OpReconnect, A: st.A, B: -1, Line: lineno})
	default:
		return fmt.Errorf("unknown directive %q", op)
	}
	return nil
}

func parseExpect(sc *Scenario, fields []string) error {
	if len(fields) < 1 {
		return fmt.Errorf("expect: missing assertion")
	}
	switch fields[0] {
	case "verdict":
		if len(fields) != 2 {
			return fmt.Errorf("expect verdict takes 'rdt' or 'violation'")
		}
		sc.Expect.Verdict = fields[1]
	case "recovered":
		if len(fields) != 2 {
			return fmt.Errorf("expect recovered takes one process")
		}
		p, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("expect recovered: %w", err)
		}
		sc.Expect.Recovered = append(sc.Expect.Recovered, p)
	case "line":
		if len(fields) != 2 {
			return fmt.Errorf("expect line takes a comma-separated index list")
		}
		for _, part := range strings.Split(fields[1], ",") {
			i, err := strconv.Atoi(part)
			if err != nil {
				return fmt.Errorf("expect line: %w", err)
			}
			sc.Expect.Line = append(sc.Expect.Line, i)
		}
		sc.Expect.HasLine = true
	case "min-delivered":
		if len(fields) != 2 {
			return fmt.Errorf("expect min-delivered takes a count")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("expect min-delivered: %w", err)
		}
		sc.Expect.MinDelivered = n
	case "lost":
		if len(fields) != 2 {
			return fmt.Errorf("expect lost takes a count")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("expect lost: %w", err)
		}
		sc.Expect.Lost = n
		sc.Expect.HasLost = true
	default:
		return fmt.Errorf("unknown expectation %q", fields[0])
	}
	return nil
}

// parseDur parses a Go duration, also accepting a bare number as
// milliseconds (the format's natural unit).
func parseDur(s string) (time.Duration, error) {
	if n, err := strconv.Atoi(s); err == nil {
		return time.Duration(n) * time.Millisecond, nil
	}
	return time.ParseDuration(s)
}

// parseFaultMix parses "drop=0.05,dup=0.05,reorder=0.1,err=0.02,delay=3ms"
// — the same mix syntax rdtsim's -faults flag uses.
func parseFaultMix(s string) (transport.FaultProbs, error) {
	var p transport.FaultProbs
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return p, fmt.Errorf("faults: want key=value, have %q", part)
		}
		key, val := kv[0], kv[1]
		if key == "delay" {
			d, err := parseDur(val)
			if err != nil {
				return p, fmt.Errorf("faults delay: %w", err)
			}
			p.MaxExtraDelay = d
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return p, fmt.Errorf("faults %s: %w", key, err)
		}
		if f < 0 || f > 1 {
			return p, fmt.Errorf("faults %s: probability %v out of [0,1]", key, f)
		}
		switch key {
		case "drop":
			p.Drop = f
		case "dup":
			p.Duplicate = f
		case "reorder":
			p.Reorder = f
		case "err":
			p.SendError = f
		default:
			return p, fmt.Errorf("faults: unknown key %q", key)
		}
	}
	return p, nil
}
