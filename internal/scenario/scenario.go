// Package scenario is the deterministic chaos harness: a line-oriented
// text format describing a cluster run — topology and protocol, a
// traffic pattern, a fault schedule with virtual timestamps, and
// expected outcomes — plus an executor that drives the cluster runtime
// under a virtual clock so the same file and seed replay the same run,
// byte for byte.
//
// A scenario file has three sections. The header names the run and
// fixes its environment:
//
//	scenario ring-under-drops
//	procs 4
//	protocol bhmr
//	seed 7
//	delay 2ms
//	faults drop=0.05,dup=0.05,reorder=0.1,err=0.02,delay=3ms
//	reliable
//	supervise
//
// The body is a schedule of directives at virtual instants ("at" times
// are offsets from the run's start; equal instants execute in file
// order):
//
//	at 0ms    checkpoint 0
//	at 1ms    send 0 1
//	at 2ms    bcast 2
//	at 5ms    traffic ring rounds=3
//	at 10ms   partition 0 1
//	at 14ms   heal 0 1
//	at 20ms   disconnect 3 for=15ms
//	at 30ms   crash 1
//	at 35ms   restart 1
//	at 40ms   recover
//	at 50ms   await-recovery
//	at 60ms   settle
//
// The trailer asserts what the run must have produced:
//
//	expect verdict rdt
//	expect recovered 1
//	expect line 2,1,3,2
//	expect min-delivered 8
//
// Execution is deterministic by construction: every source of timing —
// transport delivery jitter, fault-injection delays, retransmission
// backoff, supervision probes — runs on one vtime.Virtual clock, fired
// in (deadline, registration) order, and the executor quiesces the
// cluster between any two firings (Cluster.Settle), so exactly one
// operation is in flight at a time. Supervised runs are deterministic
// at the outcome level (which process recovered, the final verdict);
// unsupervised runs produce byte-identical transcripts.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"github.com/rdt-go/rdt/internal/core"
	"github.com/rdt-go/rdt/internal/transport"
)

// Op is a directive kind of the scenario body.
type Op int

// The directives.
const (
	OpCheckpoint    Op = iota + 1 // checkpoint A
	OpSend                        // send A B
	OpBcast                       // bcast A
	OpTraffic                     // traffic Mode rounds=Rounds
	OpPartition                   // partition A B
	OpHeal                        // heal A B
	OpHealAll                     // heal-all
	OpIsolate                     // first half of disconnect: partition A from all
	OpReconnect                   // second half of disconnect: heal A with all
	OpCrash                       // crash A
	OpRestart                     // restart A
	OpRecover                     // recover (unsupervised full rollback-recovery)
	OpAwaitRecovery               // await-recovery (supervised)
	OpSettle                      // settle
)

var opNames = map[Op]string{
	OpCheckpoint: "checkpoint", OpSend: "send", OpBcast: "bcast",
	OpTraffic: "traffic", OpPartition: "partition", OpHeal: "heal",
	OpHealAll: "heal-all", OpIsolate: "disconnect", OpReconnect: "reconnect",
	OpCrash: "crash", OpRestart: "restart", OpRecover: "recover",
	OpAwaitRecovery: "await-recovery", OpSettle: "settle",
}

func (o Op) String() string { return opNames[o] }

// Traffic modes, the paper's environments plus a seeded random mix and
// a database-coordination round (the paper's motivating application).
const (
	TrafficRing         = "ring"
	TrafficPairs        = "pairs"
	TrafficClientServer = "clientserver"
	TrafficRandom       = "random"
	TrafficDBTxn        = "dbtxn"
)

// Step is one scheduled directive.
type Step struct {
	At     time.Duration // virtual offset from the run's start
	Op     Op
	A, B   int           // process operands (-1 when unused)
	Dur    time.Duration // disconnect window
	Mode   string        // traffic mode
	Rounds int           // traffic rounds
	seq    int           // file order, the tiebreak for equal instants
	Line   int           // source line, for error messages
}

// Expect is the trailer: what the finished run must show.
type Expect struct {
	// Verdict is "", "rdt", or "violation".
	Verdict string
	// Recovered lists processes that must have been autonomously
	// recovered (supervised runs: detected, failed over, and running in
	// the final incarnation).
	Recovered []int
	// Line, when HasLine, is the expected recovery line computed from
	// the final store.
	Line    []int
	HasLine bool
	// MinDelivered is the minimum number of application deliveries.
	MinDelivered int
	// Lost, when HasLost, is the exact number of lost messages.
	Lost    int
	HasLost bool
}

// Scenario is one parsed chaos scenario.
type Scenario struct {
	Name     string
	N        int
	Protocol core.Kind
	Seed     int64
	// Delay bounds the base transport's delivery jitter.
	Delay time.Duration
	// Faults is the injected fault mix; HasFaults records whether the
	// file set one (partitions alone also force the injector on).
	Faults    transport.FaultProbs
	HasFaults bool
	Reliable  bool
	Supervise bool
	// Drain is the virtual window the executor keeps advancing after
	// the last directive until the timer heap is empty (unsupervised)
	// or once (supervised).
	Drain time.Duration

	Steps  []Step
	Expect Expect
}

// Defaults of the zero header fields.
const (
	DefaultDelay = 2 * time.Millisecond
	DefaultDrain = 250 * time.Millisecond
)

// withDefaults normalizes a parsed scenario.
func (sc *Scenario) withDefaults() {
	if sc.Protocol == 0 {
		sc.Protocol = core.KindBHMR
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Delay <= 0 {
		sc.Delay = DefaultDelay
	}
	if sc.Drain <= 0 {
		sc.Drain = DefaultDrain
	}
}

// needsFaulty reports whether the run must wrap its transport in the
// fault injector (explicit mix, or any partition-family directive).
func (sc *Scenario) needsFaulty() bool {
	if sc.HasFaults {
		return true
	}
	for _, st := range sc.Steps {
		switch st.Op {
		case OpPartition, OpHeal, OpHealAll, OpIsolate, OpReconnect:
			return true
		}
	}
	return false
}

// sortSteps orders the schedule by (instant, file order).
func (sc *Scenario) sortSteps() {
	sort.SliceStable(sc.Steps, func(i, j int) bool {
		if sc.Steps[i].At != sc.Steps[j].At {
			return sc.Steps[i].At < sc.Steps[j].At
		}
		return sc.Steps[i].seq < sc.Steps[j].seq
	})
}

// validate rejects scenarios the executor cannot run.
func (sc *Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing 'scenario NAME' header")
	}
	if sc.N < 2 {
		return fmt.Errorf("scenario %s: procs must be >= 2, have %d", sc.Name, sc.N)
	}
	checkProc := func(st Step, p int) error {
		if p < 0 || p >= sc.N {
			return fmt.Errorf("scenario %s line %d: process %d out of range [0,%d)", sc.Name, st.Line, p, sc.N)
		}
		return nil
	}
	for _, st := range sc.Steps {
		switch st.Op {
		case OpCheckpoint, OpBcast, OpIsolate, OpReconnect, OpCrash, OpRestart:
			if err := checkProc(st, st.A); err != nil {
				return err
			}
		case OpSend, OpPartition, OpHeal:
			if err := checkProc(st, st.A); err != nil {
				return err
			}
			if err := checkProc(st, st.B); err != nil {
				return err
			}
			if st.A == st.B {
				return fmt.Errorf("scenario %s line %d: %v needs two distinct processes", sc.Name, st.Line, st.Op)
			}
		case OpTraffic:
			if st.Rounds < 1 {
				return fmt.Errorf("scenario %s line %d: traffic needs rounds>=1", sc.Name, st.Line)
			}
			switch st.Mode {
			case TrafficRing, TrafficPairs, TrafficClientServer, TrafficRandom, TrafficDBTxn:
			default:
				return fmt.Errorf("scenario %s line %d: unknown traffic mode %q", sc.Name, st.Line, st.Mode)
			}
		case OpAwaitRecovery:
			if !sc.Supervise {
				return fmt.Errorf("scenario %s line %d: await-recovery needs 'supervise'", sc.Name, st.Line)
			}
		case OpRecover:
			if sc.Supervise {
				return fmt.Errorf("scenario %s line %d: recover conflicts with 'supervise' (the supervisor owns failover)", sc.Name, st.Line)
			}
		}
	}
	for _, p := range sc.Expect.Recovered {
		if !sc.Supervise {
			return fmt.Errorf("scenario %s: 'expect recovered' needs 'supervise'", sc.Name)
		}
		if p < 0 || p >= sc.N {
			return fmt.Errorf("scenario %s: expect recovered %d out of range [0,%d)", sc.Name, p, sc.N)
		}
	}
	if sc.Expect.HasLine && len(sc.Expect.Line) != sc.N {
		return fmt.Errorf("scenario %s: expect line has %d entries, want %d", sc.Name, len(sc.Expect.Line), sc.N)
	}
	switch sc.Expect.Verdict {
	case "", "rdt", "violation":
	default:
		return fmt.Errorf("scenario %s: expect verdict must be 'rdt' or 'violation', have %q", sc.Name, sc.Expect.Verdict)
	}
	return nil
}
