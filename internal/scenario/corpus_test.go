package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden transcripts")

// TestCorpus runs every seed scenario in corpus/ and checks its
// expectations; unsupervised scenarios additionally run twice and must
// produce byte-identical transcripts.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob("corpus/*.rdts")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("corpus has %d scenarios, want >= 10", len(files))
	}
	for _, file := range files {
		file := file
		t.Run(strings.TrimSuffix(filepath.Base(file), ".rdts"), func(t *testing.T) {
			t.Parallel()
			sc, err := ParseFile(file)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Passed() {
				t.Fatalf("expectations failed: %v\ntranscript:\n%s", res.Failures, res.Transcript)
			}
			if !sc.Supervise {
				sc2, _ := ParseFile(file)
				res2, err := Run(sc2)
				if err != nil {
					t.Fatal(err)
				}
				if res.Transcript != res2.Transcript {
					t.Fatal("transcript not reproducible across runs")
				}
			}
		})
	}
}

// TestGoldenTranscript pins the exact transcript of one corpus scenario:
// any change to scheduling, fault injection, or checker behavior that
// shifts the deterministic replay shows up as a byte diff here. Refresh
// with: go test ./internal/scenario -run TestGolden -update
func TestGoldenTranscript(t *testing.T) {
	const (
		src    = "corpus/figure1-zigzag.rdts"
		golden = "testdata/figure1-zigzag.golden"
	)
	sc, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(res.Transcript), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if res.Transcript != string(want) {
		t.Fatalf("transcript drifted from golden:\n--- want ---\n%s\n--- have ---\n%s", want, res.Transcript)
	}
}
