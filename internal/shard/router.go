package shard

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
)

// RouterConfig configures the cluster front end.
type RouterConfig struct {
	// Members is the initial membership (epoch 1).
	Members []Member
	// VNodes is the virtual-node count per member; 0 means default.
	VNodes int
	// Registry receives the rdt_router_* metrics; may be nil.
	Registry *obs.Registry
	// Client issues config pushes and fan-out reads.
	Client *http.Client
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Router is the scale-out front end: one stable address clients can
// point at while sessions live across a cluster. It proxies every
// per-session request to the session's owner (no client redirect
// dance needed), mints ids for empty creates so the hash has
// something to route, fans list requests out to every member, and is
// the cluster's membership administrator — adds and removals build a
// new ring epoch and push it to every member, which triggers the
// members' own handoff rebalancing.
//
// Smart clients may bypass the router entirely: every member answers
// 307 (HTTP) or MOVED (stream) for sessions it does not own.
type Router struct {
	client *http.Client
	logf   func(string, ...any)
	vnodes int

	mu   sync.Mutex
	ring *Ring

	// adminMu serializes membership changes end to end, so concurrent
	// admin requests cannot mint the same epoch twice.
	adminMu sync.Mutex

	proxy *httputil.ReverseProxy

	cProxied *obs.Counter
	cFanout  *obs.Counter
	cPushes  *obs.Counter
	gEpoch   *obs.Gauge
}

type targetKey struct{}

// NewRouter builds a router over the initial membership. Call
// Bootstrap to push the initial ring at the members.
func NewRouter(cfg RouterConfig) (*Router, error) {
	ring, err := New(1, cfg.VNodes, cfg.Members)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	reg := cfg.Registry
	rt := &Router{
		client: client,
		logf:   cfg.Logf,
		vnodes: ring.VNodes,
		ring:   ring,

		cProxied: reg.Counter("rdt_router_proxied_total"),
		cFanout:  reg.Counter("rdt_router_fanout_total"),
		cPushes:  reg.Counter("rdt_router_ring_pushes_total"),
		gEpoch:   reg.Gauge("rdt_router_ring_epoch"),
	}
	rt.gEpoch.Set(int64(ring.Epoch))
	rt.proxy = &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(pr.In.Context().Value(targetKey{}).(*url.URL))
			pr.Out.Host = pr.In.Host
		},
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			writeError(w, http.StatusBadGateway, "proxy: %v", err)
		},
	}
	return rt, nil
}

func (rt *Router) logfSafe(format string, args ...any) {
	if rt.logf != nil {
		rt.logf(format, args...)
	}
}

// Ring returns the current ring.
func (rt *Router) Ring() *Ring {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring
}

// Bootstrap pushes the current ring at every member, retrying each
// briefly — members may still be binding their listeners.
func (rt *Router) Bootstrap(ctx context.Context) error {
	ring := rt.Ring()
	var firstErr error
	for _, m := range ring.Members {
		var err error
		for attempt := 0; attempt < 40; attempt++ {
			if err = rt.pushRing(ring, m); err == nil {
				break
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(100 * time.Millisecond):
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("push ring to %s: %w", m.Name, err)
		}
	}
	return firstErr
}

// pushRing POSTs one ring at one member.
func (rt *Router) pushRing(ring *Ring, m Member) error {
	body, err := json.Marshal(ring)
	if err != nil {
		return err
	}
	resp, err := rt.client.Post("http://"+m.HTTP+"/v1/shard/ring", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(respBody))
	}
	rt.cPushes.Inc()
	return nil
}

// Handler returns the router's HTTP surface.
func (rt *Router) Handler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.healthz)
	mux.HandleFunc("GET /v1/shard/ring", rt.getRing)
	mux.HandleFunc("POST /v1/shard/members", rt.postMembers)
	mux.HandleFunc("POST /v1/sessions", rt.createSession)
	mux.HandleFunc("GET /v1/sessions", rt.listSessions)
	mux.HandleFunc("/v1/sessions/{id}", rt.proxySession)
	mux.HandleFunc("/v1/sessions/{id}/{rest...}", rt.proxySession)
	if reg != nil {
		mux.Handle("GET /metrics", obs.MetricsHandler(reg))
	}
	return mux
}

func (rt *Router) healthz(w http.ResponseWriter, r *http.Request) {
	ring := rt.Ring()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"epoch":   ring.Epoch,
		"members": ring.Names(),
	})
}

func (rt *Router) getRing(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Ring())
}

// proxyTo forwards the request to the member owning id.
func (rt *Router) proxyTo(w http.ResponseWriter, r *http.Request, id string) {
	owner := rt.Ring().Owner(id)
	rt.cProxied.Inc()
	target := &url.URL{Scheme: "http", Host: owner.HTTP}
	rt.proxy.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), targetKey{}, target)))
}

func (rt *Router) proxySession(w http.ResponseWriter, r *http.Request) {
	rt.proxyTo(w, r, r.PathValue("id"))
}

// createSession routes a create by its session id, minting one for
// requests that leave the id to the server — the consistent hash
// needs an id before any member can own the session.
func (rt *Router) createSession(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 4096))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req struct {
		ID string `json:"id"`
		N  int    `json:"n"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.ID == "" {
		var buf [8]byte
		if _, err := rand.Read(buf[:]); err != nil {
			writeError(w, http.StatusInternalServerError, "mint id: %v", err)
			return
		}
		req.ID = "s-" + hex.EncodeToString(buf[:])
		body, _ = json.Marshal(req)
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	rt.proxyTo(w, r, req.ID)
}

// listSessions fans out to every member and merges.
func (rt *Router) listSessions(w http.ResponseWriter, r *http.Request) {
	rt.cFanout.Inc()
	ring := rt.Ring()
	merged := struct {
		Sessions []json.RawMessage `json:"sessions"`
	}{Sessions: []json.RawMessage{}}
	for _, m := range ring.Members {
		resp, err := rt.client.Get("http://" + m.HTTP + "/v1/sessions")
		if err != nil {
			writeError(w, http.StatusBadGateway, "list from %s: %v", m.Name, err)
			return
		}
		var one struct {
			Sessions []json.RawMessage `json:"sessions"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&one)
		_ = resp.Body.Close()
		if err != nil {
			writeError(w, http.StatusBadGateway, "list from %s: decode: %v", m.Name, err)
			return
		}
		merged.Sessions = append(merged.Sessions, one.Sessions...)
	}
	writeJSON(w, http.StatusOK, merged)
}

// memberChange is the membership-admin request body.
type memberChange struct {
	Action string `json:"action"` // "add" or "remove"
	Member Member `json:"member"` // full member for add; name alone suffices for remove
}

// postMembers applies one membership change: it builds the next ring
// epoch and pushes it at the union of old and new members — the
// removed member included, since adopting a ring that excludes it is
// exactly how it learns to hand every session off — then installs it
// as the router's routing table. Push failures to the surviving
// members fail the request (routing against a ring the members do not
// hold would strand traffic); a failure to reach a removed member is
// reported but tolerated, that member may simply be dead.
func (rt *Router) postMembers(w http.ResponseWriter, r *http.Request) {
	var req memberChange
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	rt.mu.Lock()
	cur := rt.ring
	rt.mu.Unlock()

	var members []Member
	var departed []Member
	switch req.Action {
	case "add":
		if _, ok := cur.MemberByName(req.Member.Name); ok {
			writeError(w, http.StatusConflict, "member %q already present", req.Member.Name)
			return
		}
		members = append(append([]Member(nil), cur.Members...), req.Member)
	case "remove":
		for _, m := range cur.Members {
			if m.Name == req.Member.Name {
				departed = append(departed, m)
			} else {
				members = append(members, m)
			}
		}
		if len(departed) == 0 {
			writeError(w, http.StatusNotFound, "member %q not in ring", req.Member.Name)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown action %q", req.Action)
		return
	}
	next, err := New(cur.Epoch+1, rt.vnodes, members)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Carry the ownership history: a member that just joined has no
	// displaced rings of its own to walk for pull-on-miss sources.
	next.Prev = ChainCopy(cur, maxRingHistory-1)

	for _, m := range next.Members {
		if err := rt.pushRing(next, m); err != nil {
			writeError(w, http.StatusBadGateway, "push ring to %s: %v", m.Name, err)
			return
		}
	}
	for _, m := range departed {
		if err := rt.pushRing(next, m); err != nil {
			rt.logfSafe("router: ring push to departing member %s failed: %v", m.Name, err)
		}
	}

	rt.mu.Lock()
	// A concurrent change may have advanced the ring; keep the newest.
	if next.Epoch > rt.ring.Epoch {
		rt.ring = next
	}
	rt.mu.Unlock()
	rt.gEpoch.Set(int64(next.Epoch))
	rt.logfSafe("router: ring epoch %d: %s %q (%d members)", next.Epoch, req.Action, req.Member.Name, len(next.Members))
	writeJSON(w, http.StatusOK, next)
}

// OwnerOf resolves a session id to its owner's stream address under
// the current ring — the stream redirect listener's lookup. ok is
// false when the owner advertises no stream wire.
func (rt *Router) OwnerOf(id string) (string, bool) {
	m := rt.Ring().Owner(id)
	return m.Stream, m.Stream != ""
}
