package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/service"
	"github.com/rdt-go/rdt/internal/stream"
)

// driveChurnSession streams batches through the pool with the cluster
// client's recorded-vs-not retry discipline, tolerating handoffs at any
// instant. Goroutine-safe: returns an error instead of failing the test.
func driveChurnSession(pool *stream.Pool, id string, procs, batches, batchSize int, seed int64) error {
	ch, _, err := pool.Open(id, procs, "churn")
	if err != nil {
		return fmt.Errorf("%s: open: %w", id, err)
	}
	tr, err := stream.NewTraffic("random", procs, seed)
	if err != nil {
		return err
	}
	send := func(batch []service.Event) error {
		for attempt := 0; attempt < 20; attempt++ {
			pre := ch.NextSeq()
			err := ch.Send(batch)
			if err == nil {
				return nil
			}
			recorded := ch.NextSeq() > pre
			nch, _, rerr := pool.Resume(ch)
			if rerr != nil {
				// State mid-flight between members; resume again shortly.
				time.Sleep(25 * time.Millisecond)
				continue
			}
			ch = nch
			if recorded {
				return nil
			}
		}
		return fmt.Errorf("%s: send kept failing across resumes", id)
	}
	for i := 0; i < batches; i++ {
		if err := send(tr.Next(nil, batchSize)); err != nil {
			return err
		}
	}
	for attempt := 0; attempt < 20; attempt++ {
		pre := ch.NextSeq()
		err := ch.Seal()
		if err == nil {
			break
		}
		recorded := ch.NextSeq() > pre
		nch, _, rerr := pool.Resume(ch)
		if rerr != nil {
			time.Sleep(25 * time.Millisecond)
			continue
		}
		ch = nch
		if recorded {
			break
		}
	}
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		err := ch.Flush(ctx)
		cancel()
		if err == nil {
			return nil
		}
		if attempt >= 20 {
			return fmt.Errorf("%s: flush kept failing across resumes: %w", id, err)
		}
		nch, _, rerr := pool.Resume(ch)
		if rerr != nil {
			time.Sleep(25 * time.Millisecond)
			continue
		}
		ch = nch
	}
}

// TestClusterChurnStress is the shard smoke's schedule in-process:
// producers stream through the pool nonstop while one member is removed
// and another joins, with no barrier between the config pushes and the
// traffic. Every session must end with exactly batches*batchSize events
// applied and a verdict identical to an uninterrupted in-memory replay.
func TestClusterChurnStress(t *testing.T) {
	a := startMember(t, "a", t.TempDir())
	defer a.stop(t)
	b := startMember(t, "b", t.TempDir())
	defer b.stop(t)
	c := startMember(t, "c", t.TempDir())
	defer c.stop(t)
	d := startMember(t, "d", t.TempDir())
	defer d.stop(t)

	ring1, err := New(1, 0, []Member{a.Member(), b.Member(), c.Member()})
	if err != nil {
		t.Fatal(err)
	}
	adoptAll(t, ring1, a, b, c)

	const (
		sessions  = 8
		procs     = 3
		batches   = 30
		batchSize = 16
	)

	pool := stream.NewPool([]string{a.ssrv.Addr(), b.ssrv.Addr(), c.ssrv.Addr()})
	defer pool.Close() //nolint:errcheck

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- driveChurnSession(pool, fmt.Sprintf("churn-%d", s), procs, batches, batchSize, int64(100+s))
		}()
	}

	// Membership churn lands while the producers are mid-stream; the
	// adoption order is scrambled across members, as real config pushes
	// race each other.
	time.Sleep(20 * time.Millisecond)
	ring2, err := New(2, 0, []Member{a.Member(), b.Member()})
	if err != nil {
		t.Fatal(err)
	}
	ring2.Prev = ring1
	adoptAll(t, ring2, c, a, b)
	time.Sleep(20 * time.Millisecond)
	ring3, err := New(3, 0, []Member{a.Member(), b.Member(), d.Member()})
	if err != nil {
		t.Fatal(err)
	}
	ring3.Prev = ChainCopy(ring2, maxRingHistory-1)
	adoptAll(t, ring3, d, b, a, c)

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	a.node.WaitRebalance()
	b.node.WaitRebalance()
	c.node.WaitRebalance()
	d.node.WaitRebalance()

	// The removed member must end the run holding nothing.
	if ids, _ := c.svc.SessionsOnDisk(); len(ids) != 0 {
		t.Errorf("removed member still holds %v", ids)
	}

	members := map[string]*member{"a": a, "b": b, "d": d}
	for s := 0; s < sessions; s++ {
		id := fmt.Sprintf("churn-%d", s)
		owner := members[ring3.Owner(id).Name]
		if owner == nil {
			t.Fatalf("session %s owned by departed member", id)
		}
		sess, err := owner.svc.Session(id)
		if err != nil {
			t.Fatalf("session %s on owner %s: %v", id, owner.name, err)
		}
		if got, want := sess.Verdict(0).EventsApplied, int64(batches*batchSize); got != want {
			t.Errorf("session %s: %d events applied, want exactly %d", id, got, want)
			for _, m := range []*member{a, b, c, d} {
				ids, _ := m.svc.SessionsOnDisk()
				t.Logf("DEBUG [%s] holds %v (live %q: %v)", m.name, ids, id, m.svc.Live(id))
			}
		}
		tr, err := stream.NewTraffic("random", procs, int64(100+s))
		if err != nil {
			t.Fatal(err)
		}
		var all []service.Event
		for i := 0; i < batches; i++ {
			all = tr.Next(all, batchSize)
		}
		ref, stop := referenceSession(t, id, procs, all)
		compareSessions(t, id, sess, ref)
		stop()
	}
}
