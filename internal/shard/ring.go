// Package shard makes rdtserved horizontally scalable: a consistent-
// hash ring assigns every session id to exactly one cluster member,
// each daemon runs a Node that gates session access on ownership (and
// answers MOVED/307 for everything it does not own), and membership
// changes move sessions between daemons as passivate → ship the
// session directory → reactivate, preserving the stream wire's
// exactly-once dedup across the move.
//
// Membership is config-push, not gossip: a ring is an epoch-numbered
// value pushed to every member over HTTP (POST /v1/shard/ring), and a
// member adopts a ring iff its epoch is newer than the one it holds.
// The push origin is whoever administers the cluster — typically the
// rdtrouterd front end — which makes the whole system deterministic
// and testable on a virtual clock: no timeouts, no probabilistic
// convergence, just explicit epochs.
package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member: enough that a
// three-member ring splits within a few percent of evenly, small
// enough that building a ring stays trivial.
const DefaultVNodes = 64

// Member is one cluster daemon: a stable name plus its advertised
// addresses. Stream may be empty for members without a binary wire.
type Member struct {
	Name   string `json:"name"`
	HTTP   string `json:"http"`
	Stream string `json:"stream,omitempty"`
}

// Ring is one immutable membership epoch: which members exist and,
// via consistent hashing with virtual nodes, which member owns any
// session id. Build rings with New or Parse; a Ring is never mutated
// after construction (membership changes make a new Ring with a
// higher epoch).
type Ring struct {
	Epoch   uint64   `json:"epoch"`
	VNodes  int      `json:"vnodes"`
	Members []Member `json:"members"`
	// Prev chains the displaced rings (bounded depth), so a config push
	// carries the recent ownership history: a member that just joined
	// learns from it where a session's state may still be parked while
	// handoffs from older epochs are in flight.
	Prev *Ring `json:"prev,omitempty"`

	points []point // sorted hash circle, built at construction
}

// point is one virtual node on the hash circle.
type point struct {
	hash   uint64
	member int // index into Members
}

// hash64 is fnv64a with a splitmix64 finalizer. Raw FNV of short keys
// (session ids, "name#vnode") has weak high-bit avalanche, and the
// circle orders points by the full 64-bit value — without the mix,
// points and ids cluster into a narrow band and the arcs stay lumpy no
// matter how many virtual nodes a member gets.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// New validates and builds a ring. Members are sorted by name, so two
// rings built from the same set in any order are identical — Owner is
// a pure function of (epoch-independent) membership.
func New(epoch uint64, vnodes int, members []Member) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("shard: ring has no members")
	}
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	seen := make(map[string]bool, len(ms))
	for _, m := range ms {
		if m.Name == "" {
			return nil, fmt.Errorf("shard: member with empty name")
		}
		if m.HTTP == "" {
			return nil, fmt.Errorf("shard: member %q has no http address", m.Name)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("shard: duplicate member %q", m.Name)
		}
		seen[m.Name] = true
	}
	r := &Ring{Epoch: epoch, VNodes: vnodes, Members: ms}
	r.points = make([]point, 0, len(ms)*vnodes)
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(m.Name + "#" + strconv.Itoa(v)), member: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break by name so the circle is
		// still a pure function of membership.
		return r.Members[a.member].Name < r.Members[b.member].Name
	})
	return r, nil
}

// Parse decodes and validates a ring pushed over the wire, rebuilding
// the hash circle at every level of the Prev chain (depth-bounded).
func Parse(data []byte) (*Ring, error) {
	var raw Ring
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("shard: parse ring: %w", err)
	}
	return build(&raw, 8)
}

func build(raw *Ring, depth int) (*Ring, error) {
	r, err := New(raw.Epoch, raw.VNodes, raw.Members)
	if err != nil {
		return nil, err
	}
	if raw.Prev != nil && depth > 0 {
		prev, err := build(raw.Prev, depth-1)
		if err != nil {
			return nil, fmt.Errorf("shard: ring epoch %d: prev: %w", raw.Epoch, err)
		}
		r.Prev = prev
	}
	return r, nil
}

// ChainCopy returns a shallow copy of r whose Prev chain is copied and
// truncated to depth links — so extending a chain never mutates a ring
// someone else holds, and pushed rings stay bounded.
func ChainCopy(r *Ring, depth int) *Ring {
	if r == nil || depth <= 0 {
		return nil
	}
	c := *r
	c.Prev = ChainCopy(r.Prev, depth-1)
	return &c
}

// Owner returns the member owning the session id: the first virtual
// node at or clockwise of the id's hash.
func (r *Ring) Owner(id string) Member {
	h := hash64(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the circle
	}
	return r.Members[r.points[i].member]
}

// MemberByName looks a member up by name.
func (r *Ring) MemberByName(name string) (Member, bool) {
	for _, m := range r.Members {
		if m.Name == name {
			return m, true
		}
	}
	return Member{}, false
}

// Names returns the member names, sorted.
func (r *Ring) Names() []string {
	out := make([]string, len(r.Members))
	for i, m := range r.Members {
		out[i] = m.Name
	}
	return out
}
