package shard

import (
	"fmt"
	"strings"
)

// ParseMembers parses the command-line membership syntax shared by
// rdtserved and rdtrouterd:
//
//	name=HTTPADDR[+STREAMADDR],name=HTTPADDR[+STREAMADDR],...
//
// e.g. "a=127.0.0.1:8081+127.0.0.1:9081,b=127.0.0.1:8082". '+' splits
// the two addresses because ':' already lives inside each one.
func ParseMembers(s string) ([]Member, error) {
	var members []Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addrs, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("shard: member %q: want name=HTTPADDR[+STREAMADDR]", part)
		}
		httpAddr, streamAddr, _ := strings.Cut(addrs, "+")
		if httpAddr == "" {
			return nil, fmt.Errorf("shard: member %q has no http address", name)
		}
		members = append(members, Member{Name: name, HTTP: httpAddr, Stream: streamAddr})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("shard: empty member list")
	}
	return members, nil
}
