package shard

import (
	"encoding/json"
	"fmt"
	"testing"
)

func testMembers(names ...string) []Member {
	ms := make([]Member, len(names))
	for i, n := range names {
		ms[i] = Member{Name: n, HTTP: "127.0.0.1:1" + n}
	}
	return ms
}

func TestRingDeterministic(t *testing.T) {
	a, err := New(1, 0, testMembers("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	// Same membership handed over in a different order: same circle.
	b, err := New(7, 0, testMembers("c", "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("session-%d", i)
		if ao, bo := a.Owner(id).Name, b.Owner(id).Name; ao != bo {
			t.Fatalf("id %q: owner %q vs %q for reordered members", id, ao, bo)
		}
	}
}

func TestRingJSONRoundTrip(t *testing.T) {
	a, err := New(3, 32, testMembers("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if b.Epoch != a.Epoch || b.VNodes != a.VNodes || len(b.Members) != len(a.Members) {
		t.Fatalf("round trip changed the ring: %+v vs %+v", b, a)
	}
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("s%d", i)
		if a.Owner(id).Name != b.Owner(id).Name {
			t.Fatalf("id %q: owner changed across JSON round trip", id)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := New(1, 0, testMembers("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const total = 30000
	for i := 0; i < total; i++ {
		counts[r.Owner(fmt.Sprintf("sess-%d", i)).Name]++
	}
	for name, c := range counts {
		frac := float64(c) / total
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("member %s owns %.1f%% of ids; want a rough third (%v)", name, frac*100, counts)
		}
	}
}

// TestRingStabilityOnRemoval is the consistent-hashing property: ids
// owned by surviving members stay put when another member leaves.
func TestRingStabilityOnRemoval(t *testing.T) {
	before, err := New(1, 0, testMembers("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	after, err := New(2, 0, testMembers("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("k-%d", i)
		o := before.Owner(id).Name
		if o == "c" {
			continue // c's ids must move somewhere, anywhere
		}
		if after.Owner(id).Name != o {
			t.Fatalf("id %q moved from %s to %s although its owner survived",
				id, o, after.Owner(id).Name)
		}
	}
}

func TestRingValidation(t *testing.T) {
	cases := [][]Member{
		nil,
		{{Name: "", HTTP: "x"}},
		{{Name: "a", HTTP: ""}},
		{{Name: "a", HTTP: "x"}, {Name: "a", HTTP: "y"}},
	}
	for i, ms := range cases {
		if _, err := New(1, 0, ms); err == nil {
			t.Errorf("case %d: New accepted invalid members %+v", i, ms)
		}
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("a=127.0.0.1:8081+127.0.0.1:9081, b=127.0.0.1:8082")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{Name: "a", HTTP: "127.0.0.1:8081", Stream: "127.0.0.1:9081"},
		{Name: "b", HTTP: "127.0.0.1:8082"},
	}
	if len(ms) != 2 || ms[0] != want[0] || ms[1] != want[1] {
		t.Fatalf("got %+v, want %+v", ms, want)
	}
	for _, bad := range []string{"", "noequals", "=addr", "a="} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q) accepted", bad)
		}
	}
}
