package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/rdt-go/rdt/internal/service"
)

// maxImportBody bounds one shipped session directory.
const maxImportBody = 1 << 30

// Register mounts the node's cluster endpoints on mux, next to the
// service's /v1/sessions API:
//
//	GET    /v1/shard/ring                  — adopted ring (404 before one)
//	POST   /v1/shard/ring                  — config push: adopt a newer ring
//	GET    /v1/shard/sessions/{id}/export  — passivate + ship a session
//	POST   /v1/shard/sessions/{id}/import  — install a shipped session
//	DELETE /v1/shard/sessions/{id}/local   — drop a passivated local copy
func (n *Node) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/shard/ring", n.getRing)
	mux.HandleFunc("POST /v1/shard/ring", n.postRing)
	mux.HandleFunc("GET /v1/shard/sessions/{id}/export", n.exportSession)
	mux.HandleFunc("POST /v1/shard/sessions/{id}/import", n.importSession)
	mux.HandleFunc("DELETE /v1/shard/sessions/{id}/local", n.dropLocal)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (n *Node) getRing(w http.ResponseWriter, r *http.Request) {
	ring := n.Ring()
	if ring == nil {
		writeError(w, http.StatusNotFound, "no ring adopted")
		return
	}
	writeJSON(w, http.StatusOK, ring)
}

func (n *Node) postRing(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	ring, err := Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	adopted, err := n.AdoptRing(ring)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"adopted": adopted, "epoch": ring.Epoch})
}

// exportSession ships one session's directory. While this daemon's
// ring still assigns the id here, the export is refused with 409:
// the requester is acting on a newer ring this daemon has not adopted
// yet, and exporting now would let a still-routed client reactivate
// the session mid-move. The requester retries; the config push wins
// the race within milliseconds.
func (n *Node) exportSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if ring := n.Ring(); ring != nil && ring.Owner(id).Name == n.self {
		writeError(w, http.StatusConflict, "still the owner of %q under epoch %d", id, ring.Epoch)
		return
	}
	files, err := n.svc.ExportSession(id)
	switch {
	case errors.Is(err, service.ErrNoSession):
		if n.shippedRecently(id) {
			// Not "never existed": this member held the session and
			// handed its state off. 410 tells the puller the state is
			// in flight so it waits instead of creating a fresh (empty,
			// conflicting) incarnation of the session.
			writeError(w, http.StatusGone, "session %q was handed off from this member", id)
			return
		}
		writeError(w, http.StatusNotFound, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, files)
}

func (n *Node) importSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxImportBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var files map[string][]byte
	if err := json.Unmarshal(body, &files); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	err = n.svc.ImportSession(id, files)
	switch {
	case errors.Is(err, service.ErrSessionLive):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, service.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, service.ErrStateDiverged):
		// Should be impossible for same-lineage copies; refuse loudly so
		// the sender keeps its copy and an operator can reconcile.
		n.logfSafe("shard: REFUSED import of session %q: %v", id, err)
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n.cIn.Inc()
	n.clearShipped(id)
	// A chained move can land a session on a member that no longer owns
	// it (the sender acted on an older ring). Accepting is still right —
	// the sender may hold the only copy — but the state must not strand
	// here behind the gate: forward it straight to the current owner.
	n.maybeForward(id)
	writeJSON(w, http.StatusOK, map[string]any{"imported": id})
}

func (n *Node) dropLocal(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// This ack means the puller holds the state: record the drop first
	// so a concurrent pull walk sees "shipped away", not "never existed".
	n.recordShipped(id)
	dropped := n.svc.DropPassivated(id)
	if !dropped && !n.svc.HasLocal(id) {
		n.clearShipped(id)
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": dropped})
}
