package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/rdt-go/rdt/internal/obs"
	"github.com/rdt-go/rdt/internal/service"
)

// NodeConfig configures one daemon's shard agent.
type NodeConfig struct {
	// Self is this daemon's member name; it must appear in every ring
	// the node adopts.
	Self string
	// Service is the local checking service. It must be durable
	// (-data-dir): handoff ships session directories.
	Service *service.Service
	// Registry receives the rdt_shard_* metrics; may be nil.
	Registry *obs.Registry
	// Client issues the node's peer HTTP calls (exports, imports,
	// drops). Defaults to a 30s-timeout client.
	Client *http.Client
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Node is the shard agent inside one rdtserved: it holds the adopted
// ring, gates every session lookup on ownership (installed into the
// service via SetGate), pulls moved-in sessions from their previous
// owner on first touch, and pushes away sessions this daemon no
// longer owns after a ring change.
type Node struct {
	self   string
	svc    *service.Service
	client *http.Client
	logf   func(string, ...any)

	mu      sync.Mutex
	ring    *Ring
	hist    []*Ring                  // displaced rings, newest first; pull-on-miss sources
	pulls   map[string]chan struct{} // per-id pull singleflight
	shipped map[string]time.Time     // ids whose copy left here; export answers 410, not 404

	rebalances sync.WaitGroup

	gEpoch    *obs.Gauge
	gMembers  *obs.Gauge
	cRedirect *obs.Counter
	cOut      *obs.Counter
	cIn       *obs.Counter
	cPulls    *obs.Counter
	hHandoff  *obs.Histogram
}

// NewNode builds the agent and installs its ownership gate into the
// service. Adopt a ring (directly or via the HTTP handler) before
// expecting redirects; an ungated or ringless node serves every id.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("shard: NodeConfig.Self is required")
	}
	if cfg.Service == nil {
		return nil, errors.New("shard: NodeConfig.Service is required")
	}
	if cfg.Service.Config().DataDir == "" {
		return nil, errors.New("shard: sharding requires a durable service (-data-dir): handoff ships session directories")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	reg := cfg.Registry
	n := &Node{
		self:    cfg.Self,
		svc:     cfg.Service,
		client:  client,
		logf:    cfg.Logf,
		pulls:   make(map[string]chan struct{}),
		shipped: make(map[string]time.Time),

		gEpoch:    reg.Gauge("rdt_shard_ring_epoch"),
		gMembers:  reg.Gauge("rdt_shard_ring_members"),
		cRedirect: reg.Counter("rdt_shard_redirects_total"),
		cOut:      reg.Counter("rdt_shard_handoffs_total", "direction", "out"),
		cIn:       reg.Counter("rdt_shard_handoffs_total", "direction", "in"),
		cPulls:    reg.Counter("rdt_shard_pulls_total"),
		hHandoff:  reg.Histogram("rdt_shard_handoff_seconds", obs.LatencyBuckets),
	}
	cfg.Service.SetGate(n.checkGate, n.healthInfo)
	return n, nil
}

func (n *Node) logfSafe(format string, args ...any) {
	if n.logf != nil {
		n.logf(format, args...)
	}
}

// Ring returns the adopted ring (nil before the first adoption).
func (n *Node) Ring() *Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring
}

// maxRingHistory bounds the displaced rings kept as pull-on-miss
// sources. Rapid successive membership changes can leave a session's
// state several epochs behind its current owner (it is still being
// shipped along the chain of previous owners), so a single "previous
// ring" is not enough to find it; eight epochs of history is far more
// than any sane admin cadence outruns.
const maxRingHistory = 8

// AdoptRing installs a ring iff its epoch is newer than the current
// one, keeping the displaced ring as a pull-on-miss source, and —
// when the adoption changed anything — starts a background rebalance
// pushing away every local session the new ring assigns elsewhere.
// Adoption is idempotent per epoch, so config pushes may be retried
// freely.
func (n *Node) AdoptRing(r *Ring) (adopted bool, err error) {
	if _, ok := r.MemberByName(n.self); !ok {
		// A ring without us still gets adopted: it is exactly how a
		// leaving member learns to hand everything off. Redirect targets
		// come from the ring, not from self-membership.
		n.logfSafe("shard: adopting ring epoch %d which excludes this member (%s): handing all sessions off", r.Epoch, n.self)
	}
	n.mu.Lock()
	if n.ring != nil && r.Epoch <= n.ring.Epoch {
		cur := n.ring.Epoch
		n.mu.Unlock()
		if r.Epoch == cur {
			return false, nil // duplicate push
		}
		return false, fmt.Errorf("shard: ring epoch %d is older than adopted epoch %d", r.Epoch, cur)
	}
	// The pull-on-miss history merges what this node displaced itself
	// with the Prev chain the push carried (a fresh member's only view
	// of past ownership), deduplicated by epoch, newest first.
	merged := n.hist
	if n.ring != nil {
		merged = append([]*Ring{n.ring}, merged...)
	}
	for p := r.Prev; p != nil; p = p.Prev {
		merged = append(merged, p)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Epoch > merged[j].Epoch })
	hist := merged[:0:0]
	for _, h := range merged {
		if len(hist) > 0 && hist[len(hist)-1].Epoch == h.Epoch {
			continue
		}
		if h.Epoch >= r.Epoch {
			continue // never keep the adopted ring (or newer) as "history"
		}
		hist = append(hist, h)
	}
	if len(hist) > maxRingHistory {
		hist = hist[:maxRingHistory]
	}
	n.hist = hist
	n.ring = r
	n.mu.Unlock()
	n.gEpoch.Set(int64(r.Epoch))
	n.gMembers.Set(int64(len(r.Members)))
	n.logfSafe("shard: adopted ring epoch %d (%d members)", r.Epoch, len(r.Members))
	n.rebalances.Add(1)
	go func() {
		defer n.rebalances.Done()
		n.rebalance(r)
	}()
	return true, nil
}

// WaitRebalance blocks until every in-flight rebalance has finished
// (tests and smoke scripts; ordinary operation never waits).
func (n *Node) WaitRebalance() { n.rebalances.Wait() }

// checkGate is the ownership gate the service runs on every session
// lookup/create. nil means serve locally (pulling the session's state
// from its previous owner first if a ring change moved it here).
func (n *Node) checkGate(id string) error {
	n.mu.Lock()
	ring := n.ring
	hist := n.hist
	n.mu.Unlock()
	if ring == nil {
		return nil
	}
	owner := ring.Owner(id)
	if owner.Name == n.self {
		return n.ensureLocal(id, hist)
	}
	n.cRedirect.Inc()
	return &service.MovedError{Owner: owner.Name, HTTP: owner.HTTP, Stream: owner.Stream}
}

// errShippedAway marks a pull source that answered 410 Gone: it held
// the session's state and deliberately dropped its copy after shipping
// it to another member. The state therefore exists and is (or was
// moments ago) in flight — the puller must wait for it to land
// somewhere, never conclude the session is brand new.
var errShippedAway = errors.New("shard: session state shipped away")

// shippedTTL bounds how long a drop is remembered. In-flight hops are
// bounded by the peer HTTP client timeout (30s); anything older is a
// session that long since landed elsewhere.
const shippedTTL = 60 * time.Second

// inFlightWait bounds how long ensureLocal waits for in-flight state
// to land before failing the request (the client retries; the session
// is never silently recreated empty).
const inFlightWait = 15 * time.Second

// recordShipped remembers that this member deliberately dropped its
// copy of id because the state moved to another member. While the
// memory lasts, the export handler answers 410 Gone instead of 404 for
// the id, which is what lets a new owner's pull walk distinguish "this
// session never existed" (safe to create fresh) from "its state is in
// flight between members" (creating now would fork an empty incarnation
// that later wins import conflicts against the real state). The ledger
// is in-memory: if this process dies right after the drop, the receiver
// already holds the state durably — it 200'd before we dropped.
func (n *Node) recordShipped(id string) {
	now := time.Now()
	n.mu.Lock()
	for k, t := range n.shipped {
		if now.Sub(t) > shippedTTL {
			delete(n.shipped, k)
		}
	}
	n.shipped[id] = now
	n.mu.Unlock()
}

// clearShipped forgets a recorded drop — the state came back here.
func (n *Node) clearShipped(id string) {
	n.mu.Lock()
	delete(n.shipped, id)
	n.mu.Unlock()
}

// shippedRecently reports whether this member dropped id's state after
// handing it off within the ledger's memory.
func (n *Node) shippedRecently(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	t, ok := n.shipped[id]
	return ok && time.Since(t) <= shippedTTL
}

// pullSources lists the members that may still hold id's state: its
// owner under each displaced ring, newest epoch first, deduplicated,
// self excluded.
func (n *Node) pullSources(id string, hist []*Ring) []Member {
	var srcs []Member
	seen := map[string]bool{n.self: true}
	for _, h := range hist {
		m := h.Owner(id)
		if !seen[m.Name] {
			seen[m.Name] = true
			srcs = append(srcs, m)
		}
	}
	return srcs
}

// ensureLocal makes sure a session this daemon owns is present before
// the service touches it: if we hold no state, pull the session
// directory from whichever previous owner still has it, walking the
// ring history newest first — under rapid membership changes the state
// may lag several epochs behind. Only a unanimous "never had it" from
// every source lets the create path proceed: a source answering 410
// (it shipped the state away) proves the session exists and its state
// is in flight between members, so the walk re-runs until the state
// lands here or at a source. Without that distinction the walk is a
// time-of-check race — the state can complete a hop mid-walk (landing
// at an already-polled source while the shipper drops its copy), every
// source answers 404, and the owner forks a fresh empty incarnation
// that later wins import conflicts against the real state, destroying
// it. A pull that fails outright fails the request — the client
// retries and the session is never silently recreated empty while its
// real state sits on an old owner.
func (n *Node) ensureLocal(id string, hist []*Ring) error {
	srcs := n.pullSources(id, hist)
	if len(srcs) == 0 {
		return nil
	}
	deadline := time.Now().Add(inFlightWait)
	for {
		if n.svc.HasLocal(id) {
			return nil
		}
		n.mu.Lock()
		ch, inFlight := n.pulls[id]
		if inFlight {
			n.mu.Unlock()
			<-ch
			continue // winner pulled (or proved absence); re-check
		}
		ch = make(chan struct{})
		n.pulls[id] = ch
		n.mu.Unlock()

		pulled, sawShipped := false, false
		var hardErr error
		for _, src := range srcs {
			err := n.pull(id, src)
			switch {
			case err == nil:
				pulled = true
			case errors.Is(err, errShippedAway):
				sawShipped = true
			case errors.Is(err, service.ErrNoSession):
				// keep walking
			default:
				hardErr = err
			}
			if pulled || hardErr != nil {
				break
			}
		}

		n.mu.Lock()
		delete(n.pulls, id)
		n.mu.Unlock()
		close(ch)

		switch {
		case pulled:
			return nil
		case hardErr != nil:
			return hardErr
		case sawShipped:
			// The state exists and is in flight. Wait for the import to
			// land (here via a push, or at a source we can pull from)
			// and look again.
			if time.Now().After(deadline) {
				return fmt.Errorf("shard: session %q state is in flight but never landed", id)
			}
			time.Sleep(5 * time.Millisecond)
		default:
			// Unanimously never existed. Before treating that as a
			// fresh create, let in-flight handoffs land: our own
			// superseded rebalance may still be shipping the very state
			// we looked for along the old owner chain.
			n.rebalances.Wait()
			n.logfSafe("shard: session %q absent at every previous owner: treating as new", id)
			return nil // whatever landed (or nothing did): the service looks again
		}
	}
}

// pull fetches id's session directory from src, installs it locally,
// and acknowledges so src deletes its copy. The export side answers
// 409 while it still believes it owns the id (its ring push is
// lagging ours); we retry briefly — config pushes land within
// milliseconds of each other.
func (n *Node) pull(id string, src Member) error {
	n.cPulls.Inc()
	start := time.Now()
	var files map[string][]byte
	for attempt := 0; ; attempt++ {
		var status int
		var err error
		files, status, err = n.fetchExport(src, id)
		if err == nil {
			break
		}
		if status == http.StatusConflict && attempt < 40 {
			time.Sleep(25 * time.Millisecond)
			continue
		}
		return fmt.Errorf("shard: pull %q from %s: %w", id, src.Name, err)
	}
	err := n.svc.ImportSession(id, files)
	switch {
	case err == nil:
		n.clearShipped(id)
		n.logfSafe("shard: pulled session %q from %s in %s", id, src.Name, time.Since(start).Round(time.Millisecond))
	case errors.Is(err, service.ErrSessionLive):
		// A copy already landed here (the push import won the race);
		// the fetched bytes are redundant, the drop ack below still
		// applies. The gate's in-flight discipline guarantees the local
		// copy is the same lineage, not a fresh empty incarnation.
		n.logfSafe("shard: fetched session %q from %s but a local copy already won", id, src.Name)
	case errors.Is(err, service.ErrStateDiverged):
		// Forked state: keep both copies (no drop ack) for reconciliation.
		n.logfSafe("shard: session %q state at %s DIVERGED from local copy: keeping both", id, src.Name)
		return fmt.Errorf("shard: pull %q: %w", id, err)
	default:
		return fmt.Errorf("shard: pull %q: install: %w", id, err)
	}
	// Ack so the old owner drops its (now stale) copy. Best effort: a
	// failure leaves a dead directory behind the gate, cleaned up by
	// the next rebalance that touches it.
	n.dropRemote(src, id)
	n.cIn.Inc()
	n.hHandoff.Observe(time.Since(start).Seconds())
	// A ring adopted mid-pull can reassign the id before the state
	// lands; the epoch's rebalance walk already ran and missed it.
	n.maybeForward(id)
	return nil
}

// maybeForward ships a freshly landed local copy onward when the
// adopted ring no longer assigns the id here. State can land after
// this member's rebalance walk for the current epoch finished (a pull
// or import that started under an older ring), and nothing else
// re-enumerates local sessions — without this the copy would strand
// behind the ownership gate while the owner serves an older copy.
// Runs in the background; a client still streaming into the copy can
// make one export attempt lose its passivation race, so the forward
// retries briefly (the gate stops the client reactivating here, so
// the race clears as soon as its stream drops).
func (n *Node) maybeForward(id string) {
	ring := n.Ring()
	if ring == nil || ring.Owner(id).Name == n.self {
		return
	}
	n.rebalances.Add(1)
	go func() {
		defer n.rebalances.Done()
		var err error
		for attempt := 0; attempt < 40; attempt++ {
			if attempt > 0 {
				time.Sleep(50 * time.Millisecond)
			}
			// Re-resolve each try: the ring may have moved on (possibly
			// back to us), or the copy may have been pulled away.
			ring := n.Ring()
			if ring == nil {
				return
			}
			owner := ring.Owner(id)
			if owner.Name == n.self || !n.svc.HasLocal(id) {
				return
			}
			n.logfSafe("shard: session %q landed here but %s owns it: forwarding", id, owner.Name)
			if err = n.handoffOut(id, owner); err == nil {
				return
			}
		}
		n.logfSafe("shard: forward %q: %v", id, err)
	}()
}

// fetchExport GETs one session's files from a peer. status is the
// HTTP status when the error came from a non-200 response.
func (n *Node) fetchExport(src Member, id string) (map[string][]byte, int, error) {
	resp, err := n.client.Get("http://" + src.HTTP + "/v1/shard/sessions/" + id + "/export")
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close() //nolint:errcheck
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, resp.StatusCode, service.ErrNoSession
	case http.StatusGone:
		return nil, resp.StatusCode, errShippedAway
	default:
		return nil, resp.StatusCode, fmt.Errorf("export: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var files map[string][]byte
	if err := json.Unmarshal(body, &files); err != nil {
		return nil, resp.StatusCode, fmt.Errorf("export: decode: %w", err)
	}
	return files, resp.StatusCode, nil
}

func (n *Node) dropRemote(peer Member, id string) {
	req, err := http.NewRequest(http.MethodDelete, "http://"+peer.HTTP+"/v1/shard/sessions/"+id+"/local", nil)
	if err != nil {
		return
	}
	resp, err := n.client.Do(req)
	if err != nil {
		n.logfSafe("shard: drop ack for %q to %s failed: %v", id, peer.Name, err)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}

// rebalance pushes away every local session the ring assigns to
// another member. It runs in the background after adoption; sessions
// whose clients reach the new owner first are pulled from here
// instead, and the two paths converge (import is first-wins, the
// loser just drops its copy).
func (n *Node) rebalance(r *Ring) {
	ids, err := n.svc.SessionsOnDisk()
	if err != nil {
		n.logfSafe("shard: rebalance scan: %v", err)
		return
	}
	moved := 0
	for _, id := range ids {
		// Skip ids the ring still assigns here — and re-check the
		// current ring each iteration so a newer adoption mid-walk wins.
		if cur := n.Ring(); cur != nil && cur.Epoch != r.Epoch {
			n.logfSafe("shard: rebalance for epoch %d superseded by %d", r.Epoch, cur.Epoch)
			return
		}
		owner := r.Owner(id)
		if owner.Name == n.self {
			continue
		}
		if err := n.handoffOut(id, owner); err != nil {
			n.logfSafe("shard: handoff %q to %s: %v", id, owner.Name, err)
			continue
		}
		moved++
	}
	if moved > 0 {
		n.logfSafe("shard: rebalance epoch %d: moved %d sessions", r.Epoch, moved)
	}
}

// handoffOut passivates one session and ships it to its owner. An
// owner that already has the session (it pulled first) counts as
// success; either way the local copy is dropped only after the owner
// holds the state — and the handoff is complete only once the drop
// actually lands, so a session that slips back to life here (an
// activation re-reading the directory between the export and the
// drop) is re-shipped at its newer state instead of living on behind
// the gate.
func (n *Node) handoffOut(id string, owner Member) error {
	start := time.Now()
	for attempt := 0; ; attempt++ {
		if attempt > 8 {
			return fmt.Errorf("handoff %q: local copy keeps reactivating", id)
		}
		files, err := n.svc.ExportSession(id)
		if err != nil {
			if errors.Is(err, service.ErrNoSession) {
				return nil // pulled away (and dropped) underneath the walk
			}
			return err
		}
		body, err := json.Marshal(files)
		if err != nil {
			return err
		}
		resp, err := n.client.Post("http://"+owner.HTTP+"/v1/shard/sessions/"+id+"/import",
			"application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		_ = resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusConflict:
			// Already present there: the pull path won, or an earlier
			// attempt's image landed. Dropping ours is correct because the
			// receiver keeps the covering copy (watermark-resolved import)
			// and the gate never creates a session while its state is in
			// flight (the shipped ledger turns the would-be 404 into a 410
			// the owner waits on) — whatever the owner holds is this
			// state's own lineage, at least as new as the shipped image.
		default:
			return fmt.Errorf("import: %s: %s", resp.Status, bytes.TrimSpace(respBody))
		}
		// Remember the drop before performing it: until the ledger entry
		// expires, our export handler answers 410 ("shipped away") rather
		// than 404 ("never existed") for this id, keeping a concurrent pull
		// walk from concluding the session is brand new.
		n.recordShipped(id)
		if !n.svc.DropPassivated(id) && n.svc.HasLocal(id) {
			// An activation re-installed the session from the very
			// directory the export read, so the local copy lives on and
			// will grow past the image just shipped. It is authoritative
			// again: clear the tombstone and ship the newer state.
			n.clearShipped(id)
			continue
		}
		n.cOut.Inc()
		n.hHandoff.Observe(time.Since(start).Seconds())
		n.logfSafe("shard: handed session %q off to %s in %s", id, owner.Name, time.Since(start).Round(time.Millisecond))
		return nil
	}
}

// healthInfo is the /healthz "shard" block.
func (n *Node) healthInfo() any {
	n.mu.Lock()
	ring := n.ring
	n.mu.Unlock()
	info := map[string]any{"self": n.self}
	if ring == nil {
		info["ring"] = nil
		return info
	}
	info["epoch"] = ring.Epoch
	info["members"] = ring.Names()
	return info
}
