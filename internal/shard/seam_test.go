package shard

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rdt-go/rdt/internal/rgraph"
	"github.com/rdt-go/rdt/internal/service"
	"github.com/rdt-go/rdt/internal/storage"
	"github.com/rdt-go/rdt/internal/stream"
)

// The handoff-seam differential tests: kill the session's owner at a
// nasty moment — right after a WAL append, mid-snapshot rename, or in
// the middle of a membership-change transfer — restart or fail over,
// let the client resume over the stream wire, and demand the final
// verdict, recovery line, and violation witnesses be bit-identical to
// an uninterrupted single-service run of the same events, and that the
// verdict agree with the batch checker. Zero lost events, zero
// duplicated events, across the seam.

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy %s -> %s: %v", src, dst, err)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// compareSessions demands got and want agree on verdict, recovery
// line, and explain witnesses, and that the verdict matches the batch
// checker over want's pattern.
func compareSessions(t *testing.T, label string, got, want *service.Session) {
	t.Helper()
	gv, wv := got.Verdict(0), want.Verdict(0)
	if g, w := mustJSON(t, gv), mustJSON(t, wv); g != w {
		t.Errorf("%s: verdict diverged\n got: %s\nwant: %s", label, g, w)
	}
	gl, gerr := got.Line()
	wl, werr := want.Line()
	if (gerr == nil) != (werr == nil) {
		t.Errorf("%s: line errors diverged: %v vs %v", label, gerr, werr)
	} else if gerr == nil {
		if g, w := mustJSON(t, gl), mustJSON(t, wl); g != w {
			t.Errorf("%s: recovery line diverged\n got: %s\nwant: %s", label, g, w)
		}
	}
	gp, gw, gerr := got.Explain(0)
	wp, ww, werr := want.Explain(0)
	if (gerr == nil) != (werr == nil) {
		t.Errorf("%s: explain errors diverged: %v vs %v", label, gerr, werr)
	} else if gerr == nil {
		if g, w := mustJSON(t, gw), mustJSON(t, ww); g != w {
			t.Errorf("%s: witnesses diverged\n got: %s\nwant: %s", label, g, w)
		}
		if g, w := mustJSON(t, gp), mustJSON(t, wp); g != w {
			t.Errorf("%s: patterns diverged", label)
		}
	}
	p, _, err := want.Snapshot()
	if err != nil {
		t.Fatalf("%s: snapshot: %v", label, err)
	}
	rep, err := rgraph.CheckRDT(p, 0)
	if err != nil {
		t.Fatalf("%s: CheckRDT: %v", label, err)
	}
	if rep.RDT != gv.RDT || rep.RPathPairs != gv.RPathPairs || rep.TrackablePairs != gv.TrackablePairs {
		t.Errorf("%s: verdict (rdt=%v rpaths=%d trackable=%d) disagrees with batch CheckRDT (rdt=%v rpaths=%d trackable=%d)",
			label, gv.RDT, gv.RPathPairs, gv.TrackablePairs, rep.RDT, rep.RPathPairs, rep.TrackablePairs)
	}
}

// sendRetry sends one batch with the cluster client's recorded-vs-not
// discipline: a failed send whose frame was recorded in flight is
// replayed by Resume; an unrecorded one must be sent again by us.
// Replaces *chp with the resumed channel on failover.
func sendRetry(t *testing.T, pool *stream.Pool, chp **stream.Chan, batch []service.Event) {
	t.Helper()
	for attempt := 0; attempt < 10; attempt++ {
		ch := *chp
		pre := ch.NextSeq()
		err := ch.Send(batch)
		if err == nil {
			return
		}
		recorded := ch.NextSeq() > pre
		nch, _, rerr := pool.Resume(ch)
		if rerr != nil {
			t.Fatalf("resume after send failure (%v): %v", err, rerr)
		}
		*chp = nch
		if recorded {
			return
		}
	}
	t.Fatal("send kept failing across resumes")
}

func sealFlush(t *testing.T, pool *stream.Pool, chp **stream.Chan) {
	t.Helper()
	for attempt := 0; attempt < 10; attempt++ {
		ch := *chp
		pre := ch.NextSeq()
		err := ch.Seal()
		if err != nil {
			recorded := ch.NextSeq() > pre
			nch, _, rerr := pool.Resume(ch)
			if rerr != nil {
				t.Fatalf("resume after seal failure (%v): %v", err, rerr)
			}
			*chp = nch
			if recorded {
				break
			}
			continue
		}
		break
	}
	for attempt := 0; attempt < 10; attempt++ {
		ch := *chp
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := ch.Flush(ctx)
		cancel()
		if err == nil {
			return
		}
		nch, _, rerr := pool.Resume(ch)
		if rerr != nil {
			t.Fatalf("resume after flush failure (%v): %v", err, rerr)
		}
		*chp = nch
	}
	t.Fatal("flush kept failing across resumes")
}

// referenceSession replays all events on an uninterrupted in-memory
// service and seals it.
func referenceSession(t *testing.T, id string, procs int, events []service.Event) (*service.Session, func()) {
	t.Helper()
	ref, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = ref.Drain(ctx)
	}
	sess, err := ref.CreateSession(id, procs)
	if err != nil {
		stop()
		t.Fatal(err)
	}
	if err := sess.Enqueue(events); err != nil {
		stop()
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sess.Seal(ctx); err != nil {
		stop()
		t.Fatal(err)
	}
	return sess, stop
}

// runRestartSeam is the single-owner crash shape shared by the
// after-append and mid-snapshot kill points: capture the owner's data
// directory at the crash instant (arm decides when), kill the owner,
// restart a replacement from the captured image under a new ring
// epoch, and let the client resume and finish.
//
// The capture hook must BLOCK the session worker until the kill is
// done: a real crash stops the world at the capture instant, and any
// ack emitted between capture and kill would make the client drop a
// batch the image never saw.
func runRestartSeam(t *testing.T, seed int64, arm func(t *testing.T, m *member, id, crashDir string, capture func())) {
	dirA := t.TempDir()
	crashDir := t.TempDir()
	mA := startMember(t, "a", dirA)
	killed := false
	defer func() {
		if !killed {
			mA.stop(t)
		}
	}()
	ring1, err := New(1, 0, []Member{mA.Member()})
	if err != nil {
		t.Fatal(err)
	}
	adoptAll(t, ring1, mA)
	id := idOwnedBy(t, ring1, "a", "seam")

	const (
		procs     = 3
		batchSize = 10
		preBatch  = 5  // applied and flushed before arming
		midBatch  = 10 // sent across the crash window
		postBatch = 3  // sent after failover
	)
	tr, err := stream.NewTraffic("random", procs, seed)
	if err != nil {
		t.Fatal(err)
	}
	var all []service.Event
	batch := func() []service.Event {
		b := tr.Next(nil, batchSize)
		all = append(all, b...)
		return b
	}

	pool1 := stream.NewPool([]string{mA.ssrv.Addr()})
	defer pool1.Close()
	ch, _, err := pool1.Open(id, procs, "seamprod")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < preBatch; i++ {
		if err := ch.Send(batch()); err != nil {
			t.Fatal(err)
		}
	}
	fctx, fcancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = ch.Flush(fctx)
	fcancel()
	if err != nil {
		t.Fatal(err)
	}

	// The capture: copy the data dir, then park the worker until the
	// owner is killed.
	sig := make(chan struct{})
	unblock := make(chan struct{})
	var unblockOnce sync.Once
	release := func() { unblockOnce.Do(func() { close(unblock) }) }
	defer release()
	capture := func() {
		copyDir(t, dirA, crashDir)
		close(sig)
		<-unblock
	}
	arm(t, mA, id, crashDir, capture)

	// Send across the crash window. The hook fires on one of these and
	// parks the worker; the rest queue unacked.
	for i := 0; i < midBatch; i++ {
		if err := ch.Send(batch()); err != nil {
			t.Fatalf("mid send %d: %v", i, err)
		}
	}
	select {
	case <-sig:
	case <-time.After(10 * time.Second):
		t.Fatal("crash hook never fired")
	}
	mA.kill()
	killed = true
	release()

	// The replacement recovers from the crash image at new addresses;
	// epoch 2 re-announces the member.
	mA2 := startMember(t, "a", crashDir)
	defer mA2.stop(t)
	ring2, err := New(2, 0, []Member{mA2.Member()})
	if err != nil {
		t.Fatal(err)
	}
	ring2.Prev = ring1
	adoptAll(t, ring2, mA2)

	pool2 := stream.NewPool([]string{mA2.ssrv.Addr()})
	defer pool2.Close()
	ch2, _, err := pool2.Resume(ch)
	if err != nil {
		t.Fatalf("resume onto replacement: %v", err)
	}
	for i := 0; i < postBatch; i++ {
		sendRetry(t, pool2, &ch2, batch())
	}
	sealFlush(t, pool2, &ch2)

	got, err := mA2.svc.Session(id)
	if err != nil {
		t.Fatalf("session on replacement: %v", err)
	}
	want, stop := referenceSession(t, id, procs, all)
	defer stop()
	compareSessions(t, "restart seam", got, want)

	// Exactly-once, stated directly: the replacement applied each of
	// the generated events exactly once.
	if gv := got.Verdict(0); gv.EventsApplied != int64(len(all)) {
		t.Errorf("replacement applied %d events, want %d", gv.EventsApplied, len(all))
	}
	// Drain the dead owner's service so the test leaves nothing running.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = mA.svc.Drain(ctx)
}

func TestSeamKillAfterAppend(t *testing.T) {
	runRestartSeam(t, 101, func(t *testing.T, m *member, id, crashDir string, capture func()) {
		var armed atomic.Bool
		var once sync.Once
		restore := service.SetCrashHooks(func(sessionID string) {
			if !armed.Load() || sessionID != id {
				return
			}
			once.Do(capture)
		}, nil)
		t.Cleanup(restore)
		armed.Store(true)
	})
}

func TestSeamKillMidSnapshot(t *testing.T) {
	runRestartSeam(t, 202, func(t *testing.T, m *member, id, crashDir string, capture func()) {
		dir := m.dir
		var armed atomic.Bool
		var once sync.Once
		prev := storage.TestingBeforeRename
		storage.TestingBeforeRename = func(path string) {
			if !armed.Load() || !strings.HasPrefix(path, dir) || !strings.Contains(filepath.Base(path), "snap_") {
				return
			}
			once.Do(capture)
		}
		t.Cleanup(func() { storage.TestingBeforeRename = prev })
		armed.Store(true)
	})
}

// TestSeamKillMidTransfer kills the old owner in the middle of a
// membership-change handoff — after its export, while the new owner is
// still staging the import — then lets the client fail over to the new
// owner and finish.
func TestSeamKillMidTransfer(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	mA := startMember(t, "a", dirA)
	killed := false
	defer func() {
		if !killed {
			mA.stop(t)
		}
	}()
	mB := startMember(t, "b", dirB)
	defer mB.stop(t)
	ring1, err := New(1, 0, []Member{mA.Member(), mB.Member()})
	if err != nil {
		t.Fatal(err)
	}
	adoptAll(t, ring1, mA, mB)
	id := idOwnedBy(t, ring1, "a", "xfer")

	const procs = 3
	tr, err := stream.NewTraffic("pairs", procs, 303)
	if err != nil {
		t.Fatal(err)
	}
	var all []service.Event
	batch := func() []service.Event {
		b := tr.Next(nil, 10)
		all = append(all, b...)
		return b
	}

	pool := stream.NewPool([]string{mA.ssrv.Addr(), mB.ssrv.Addr()})
	defer pool.Close()
	ch, addr, err := pool.Open(id, procs, "xferprod")
	if err != nil {
		t.Fatal(err)
	}
	if addr != mA.ssrv.Addr() {
		t.Fatalf("opened at %s, want owner %s", addr, mA.ssrv.Addr())
	}
	for i := 0; i < 6; i++ {
		if err := ch.Send(batch()); err != nil {
			t.Fatal(err)
		}
	}
	fctx, fcancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = ch.Flush(fctx)
	fcancel()
	if err != nil {
		t.Fatal(err)
	}

	// Kill the exporter the instant the importer stages its files.
	sig := make(chan struct{})
	var once sync.Once
	prev := storage.TestingBeforeRename
	storage.TestingBeforeRename = func(path string) {
		if !strings.Contains(path, "#import#"+id) {
			return
		}
		once.Do(func() {
			mA.kill()
			close(sig)
		})
	}
	t.Cleanup(func() { storage.TestingBeforeRename = prev })

	// b takes over: adopt on the new owner first, then on the departing
	// member, whose rebalance ships the session — and dies mid-import.
	ring2, err := New(2, 0, []Member{mB.Member()})
	if err != nil {
		t.Fatal(err)
	}
	ring2.Prev = ring1
	adoptAll(t, ring2, mB, mA)
	select {
	case <-sig:
		killed = true
	case <-time.After(10 * time.Second):
		t.Fatal("transfer never reached the import stage")
	}
	mA.node.WaitRebalance()
	mB.node.WaitRebalance()

	// The client fails over and finishes on b.
	for i := 0; i < 4; i++ {
		sendRetry(t, pool, &ch, batch())
	}
	sealFlush(t, pool, &ch)

	if !mB.svc.HasLocal(id) {
		t.Fatal("session did not land on the new owner")
	}
	got, err := mB.svc.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	want, stop := referenceSession(t, id, procs, all)
	defer stop()
	compareSessions(t, "mid-transfer seam", got, want)
	if gv := got.Verdict(0); gv.EventsApplied != int64(len(all)) {
		t.Errorf("new owner applied %d events, want %d", gv.EventsApplied, len(all))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = mA.svc.Drain(ctx)
}
